package kerberos

import (
	"errors"
	"strings"
	"testing"
	"time"

	"kerberos/internal/core"
)

func testRealm(t testing.TB) *Realm {
	t.Helper()
	r, err := NewRealm(RealmConfig{Name: "ATHENA.MIT.EDU", MasterPassword: "master"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestFullProtocolFig9 is Figure 9 through the public API: login, TGT,
// service ticket, application request, mutual authentication.
func TestFullProtocolFig9(t *testing.T) {
	realm := testRealm(t)
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	tab, err := realm.AddService("rlogin", "priam")
	if err != nil {
		t.Fatal(err)
	}

	user, err := realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	service := Principal{Name: "rlogin", Instance: "priam", Realm: realm.Name}
	cred, err := user.GetCredentials(service)
	if err != nil {
		t.Fatal(err)
	}
	if cred.Service != service {
		t.Errorf("credential service = %v", cred.Service)
	}
	apReq, session, err := user.MkReq(service, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	server := realm.NewServiceContext("rlogin", "priam", tab)
	sess, err := server.ReadRequest(apReq, Addr{127, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Client.Name != "jis" || sess.Checksum != 42 {
		t.Errorf("server saw %v cksum=%d", sess.Client, sess.Checksum)
	}
	if err := session.VerifyReply(sess.Reply); err != nil {
		t.Errorf("mutual auth failed: %v", err)
	}
	// Session traffic both ways.
	priv := sess.MkPriv([]byte("hello"))
	if data, err := session.RdPriv(priv, Addr{}); err != nil || string(data) != "hello" {
		t.Errorf("session priv: %q %v", data, err)
	}
}

// TestRealmAdminFlow: ServeAdmin + kpasswd through the facade.
func TestRealmAdminFlow(t *testing.T) {
	realm := testRealm(t)
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	if err := realm.AddAdmin("jis", "admin-secret"); err != nil {
		t.Fatal(err)
	}
	addr, err := realm.ServeAdmin()
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || realm.AdminAddr() != addr {
		t.Fatal("admin address wrong")
	}
	// Idempotent.
	addr2, err := realm.ServeAdmin()
	if err != nil || addr2 != addr {
		t.Error("second ServeAdmin changed address")
	}
	if err := realm.ChangePassword("jis", "zanzibar", "new-pass"); err != nil {
		t.Fatal(err)
	}
	if _, err := realm.NewLoggedInClient("jis", "zanzibar"); err == nil {
		t.Error("old password survived")
	}
	if _, err := realm.NewLoggedInClient("jis", "new-pass"); err != nil {
		t.Errorf("new password rejected: %v", err)
	}
}

// TestRealmSlavesAndPropagation through the facade.
func TestRealmSlavesAndPropagation(t *testing.T) {
	realm, err := NewRealm(RealmConfig{
		Name: "ATHENA.MIT.EDU", MasterPassword: "master", Slaves: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer realm.Close()
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	if len(realm.SlaveAddrs()) != 2 || len(realm.KDCAddrs()) != 3 {
		t.Fatal("slave topology wrong")
	}
	// Before propagation a slave-only client fails; after, it works.
	slaveCfg := &Config{Realms: map[string][]string{realm.Name: realm.SlaveAddrs()}, Timeout: 2 * time.Second}
	c := NewClient(Principal{Name: "jis", Realm: realm.Name}, slaveCfg)
	c.Addr = Addr{127, 0, 0, 1}
	if _, err := c.Login("zanzibar"); err == nil {
		t.Error("slave served a user before propagation")
	}
	if err := realm.Propagate(); err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(Principal{Name: "jis", Realm: realm.Name}, slaveCfg)
	c2.Addr = Addr{127, 0, 0, 1}
	if _, err := c2.Login("zanzibar"); err != nil {
		t.Errorf("slave login after propagation: %v", err)
	}
}

// TestTrustRealmFacade: §7.2 in three lines of API.
func TestTrustRealmFacade(t *testing.T) {
	a := testRealm(t)
	b, err := NewRealm(RealmConfig{Name: "LCS.MIT.EDU", MasterPassword: "other"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := TrustRealm(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	tab, err := b.AddService("rlogin", "ai-lab")
	if err != nil {
		t.Fatal(err)
	}
	user, err := a.NewLoggedInClient("jis", "zanzibar", b)
	if err != nil {
		t.Fatal(err)
	}
	remote := Principal{Name: "rlogin", Instance: "ai-lab", Realm: b.Name}
	apReq, _, err := user.MkReq(remote, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	svc := b.NewServiceContext("rlogin", "ai-lab", tab)
	sess, err := svc.ReadRequest(apReq, Addr{127, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Client.Realm != a.Name {
		t.Errorf("client realm = %s, want original realm %s", sess.Client.Realm, a.Name)
	}
}

// TestRealmValidation: basic misuse errors.
func TestRealmValidation(t *testing.T) {
	if _, err := NewRealm(RealmConfig{}); err == nil {
		t.Error("empty realm name accepted")
	}
	realm := testRealm(t)
	if err := realm.AddUser("jis", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := realm.AddUser("jis", "pw"); err == nil {
		t.Error("duplicate user accepted")
	}
	if err := realm.ChangePassword("jis", "pw", "new"); err == nil ||
		!strings.Contains(err.Error(), "not running") {
		t.Errorf("ChangePassword without admin server = %v", err)
	}
	// Wrong password surfaces as a decryption failure, not a KDC error.
	if _, err := realm.NewLoggedInClient("jis", "wrong"); err == nil {
		t.Error("wrong password accepted")
	}
	var pe *ProtocolError
	_, err := realm.NewLoggedInClient("ghost", "x")
	if !errors.As(err, &pe) || pe.Code != core.ErrPrincipalUnknown {
		t.Errorf("unknown user error = %v", err)
	}
}

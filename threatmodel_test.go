package kerberos

// Threat-model tests for the §8 discussion: what a thief can and cannot
// do with stolen credentials, and how lifetime bounds the damage.

import (
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/testclock"
)

// TestStolenTicketFileOtherHost: a ticket file copied off a workstation
// is useless from any other address — tickets are bound to the
// workstation's IP (§4.1).
func TestStolenTicketFileOtherHost(t *testing.T) {
	clk := testclock.New(time.Date(1988, 2, 9, 12, 0, 0, 0, time.UTC))
	clock := clk.Now
	realm, err := NewRealm(RealmConfig{Name: "ATHENA.MIT.EDU", MasterPassword: "m", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer realm.Close()
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	tab, err := realm.AddService("rlogin", "priam")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	svc := Principal{Name: "rlogin", Instance: "priam", Realm: realm.Name}
	if _, err := victim.GetCredentials(svc); err != nil {
		t.Fatal(err)
	}

	// The thief copies the ticket file to their own machine.
	stolen, err := UnmarshalCredCache(victim.Cache.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	thief := NewClient(victim.Principal, realm.ClientConfig())
	thief.Cache = stolen
	thief.Addr = Addr{10, 66, 66, 66} // the thief's real address
	thief.Clock = clock

	server := realm.NewServiceContext("rlogin", "priam", tab)
	msg, _, err := thief.MkReq(svc, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// The service sees the request arriving from the thief's address,
	// which doesn't match the address sealed in the ticket.
	if _, err := server.ReadRequest(msg, thief.Addr); err == nil {
		t.Fatal("stolen ticket honored from another host")
	}
	// Even a thief who also forges the victim's address in their own
	// authenticator fails: the transport address betrays them.
	thief2 := NewClient(victim.Principal, realm.ClientConfig())
	thief2.Cache = stolen
	thief2.Addr = Addr{127, 0, 0, 1} // forged to match the ticket
	thief2.Clock = clock
	clk.Advance(2 * time.Second)
	msg2, _, err := thief2.MkReq(svc, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.ReadRequest(msg2, Addr{10, 66, 66, 66}); err == nil {
		t.Fatal("address-forged authenticator honored from the wrong transport address")
	}
}

// TestStolenTicketSameHostWindow: §8's residual risk — on the same
// (public) workstation, a stolen ticket works until it expires; after
// expiry it is dead everywhere. This is exactly the tradeoff the
// lifetime policy manages.
func TestStolenTicketSameHostWindow(t *testing.T) {
	clk := testclock.New(time.Date(1988, 2, 9, 12, 0, 0, 0, time.UTC))
	clock := clk.Now
	realm, err := NewRealm(RealmConfig{Name: "ATHENA.MIT.EDU", MasterPassword: "m", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer realm.Close()
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	tab, err := realm.AddService("rlogin", "priam")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	svc := Principal{Name: "rlogin", Instance: "priam", Realm: realm.Name}
	if _, err := victim.GetCredentials(svc); err != nil {
		t.Fatal(err)
	}
	stolen, err := UnmarshalCredCache(victim.Cache.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	thief := NewClient(victim.Principal, realm.ClientConfig())
	thief.Cache = stolen
	thief.Addr = Addr{127, 0, 0, 1} // same public workstation
	thief.Clock = clock
	server := realm.NewServiceContext("rlogin", "priam", tab)

	// Within the lifetime: the theft works (the paper's §8 worry).
	clk.Advance(time.Hour)
	msg, _, err := thief.MkReq(svc, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.ReadRequest(msg, thief.Addr); err != nil {
		t.Fatalf("within lifetime, same host: expected the known exposure, got %v", err)
	}
	// After expiry: dead. The thief cannot refresh anything without the
	// password.
	clk.Advance(9 * time.Hour)
	if _, _, err := thief.MkReq(svc, 0, false); err == nil {
		t.Fatal("expired stolen cache still produced requests")
	}
	if _, err := thief.GetCredentials(svc); err == nil {
		t.Fatal("thief refreshed credentials without the password")
	}
}

// TestPasswordNeverOnWire: sniffing every KDC exchange of a login must
// reveal neither the password nor the password-derived key.
func TestPasswordNeverOnWire(t *testing.T) {
	// The AS request is the only thing the client sends, and it is built
	// before the password is even used; check its contents directly.
	req := (&core.AuthRequest{
		Client:  core.Principal{Name: "jis", Realm: "ATHENA.MIT.EDU"},
		Service: core.TGSPrincipal("ATHENA.MIT.EDU", "ATHENA.MIT.EDU"),
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(time.Now()),
	}).Encode()
	password := "zanzibar"
	key := PasswordKey(core.Principal{Name: "jis", Realm: "ATHENA.MIT.EDU"}, password)
	if containsBytes(req, []byte(password)) || containsBytes(req, key[:]) {
		t.Fatal("AS request leaks password material")
	}
}

func containsBytes(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

package kerberos_test

import (
	"fmt"
	"log"

	"kerberos"
)

// ExampleRealm shows the three authentication phases of the paper
// (Figure 9) against an in-process realm.
func ExampleRealm() {
	realm, err := kerberos.NewRealm(kerberos.RealmConfig{
		Name:           "ATHENA.MIT.EDU",
		MasterPassword: "master-password",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer realm.Close()

	realm.AddUser("jis", "zanzibar")
	srvtab, _ := realm.AddService("rlogin", "priam")

	// Phase 1: initial ticket (kinit).
	user, err := realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		log.Fatal(err)
	}
	// Phases 2+3: service ticket, then the application exchange with
	// mutual authentication.
	service := kerberos.Principal{Name: "rlogin", Instance: "priam", Realm: realm.Name}
	apReq, session, err := user.MkReq(service, 0, true)
	if err != nil {
		log.Fatal(err)
	}
	server := realm.NewServiceContext("rlogin", "priam", srvtab)
	serverSession, err := server.ReadRequest(apReq, kerberos.Addr{127, 0, 0, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server authenticated:", serverSession.Client)
	fmt.Println("mutual auth ok:", session.VerifyReply(serverSession.Reply) == nil)
	// Output:
	// server authenticated: jis@ATHENA.MIT.EDU
	// mutual auth ok: true
}

// ExampleTrustRealm shows §7.2 cross-realm authentication.
func ExampleTrustRealm() {
	athena, _ := kerberos.NewRealm(kerberos.RealmConfig{Name: "ATHENA.MIT.EDU", MasterPassword: "a"})
	defer athena.Close()
	lcs, _ := kerberos.NewRealm(kerberos.RealmConfig{Name: "LCS.MIT.EDU", MasterPassword: "b"})
	defer lcs.Close()
	if err := kerberos.TrustRealm(athena, lcs); err != nil {
		log.Fatal(err)
	}
	athena.AddUser("jis", "zanzibar")
	lcs.AddService("rlogin", "ai-lab")

	user, err := athena.NewLoggedInClient("jis", "zanzibar", lcs)
	if err != nil {
		log.Fatal(err)
	}
	cred, err := user.GetCredentials(kerberos.Principal{
		Name: "rlogin", Instance: "ai-lab", Realm: "LCS.MIT.EDU"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ticket for:", cred.Service)
	fmt.Println("issued by realm:", cred.TicketRealm)
	// Output:
	// ticket for: rlogin.ai-lab@LCS.MIT.EDU
	// issued by realm: LCS.MIT.EDU
}

// ExampleParsePrincipal parses the naming forms of Figure 2.
func ExampleParsePrincipal() {
	for _, s := range []string{"bcn", "treese.root", "rlogin.priam@ATHENA.MIT.EDU"} {
		p, _ := kerberos.ParsePrincipal(s)
		fmt.Printf("name=%q instance=%q realm=%q\n", p.Name, p.Instance, p.Realm)
	}
	// Output:
	// name="bcn" instance="" realm=""
	// name="treese" instance="root" realm=""
	// name="rlogin" instance="priam" realm="ATHENA.MIT.EDU"
}

package kerberos

// The benchmark harness regenerates the paper's figures and quantitative
// claims (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded results):
//
//	Fig 2–4   building blocks (names, tickets, authenticators)
//	Fig 5–9   the protocol exchanges
//	Fig 10    master+slave authentication service
//	Fig 12    administration protocol
//	Fig 13    database propagation (swept over database size)
//	§9        Athena-scale workload (5,000 users / 650 ws / 65 servers)
//	Appendix  NFS: trusted vs per-op Kerberos vs hybrid credential map
//	§2.1      protection levels (safe vs private messages)
//	§7.2      cross-realm authentication
//	§8        ticket-lifetime tradeoff (ablation)
//
// Run: go test -bench=. -benchmem .

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kadm"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/kprop"
	"kerberos/internal/nfs"
	"kerberos/internal/testclock"
	"kerberos/internal/vfs"
	"kerberos/internal/workload"
)

const benchRealm = "ATHENA.MIT.EDU"

var loopback = Addr{127, 0, 0, 1}

// benchEnv is a realm with one user and one service, shared machinery
// for the protocol benchmarks.
type benchEnv struct {
	realm   *Realm
	user    *Client
	service Principal
	tab     *Srvtab
	seq     atomic.Uint32
}

func newBenchEnv(b *testing.B) *benchEnv {
	b.Helper()
	realm, err := NewRealm(RealmConfig{Name: benchRealm, MasterPassword: "master"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { realm.Close() })
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		b.Fatal(err)
	}
	tab, err := realm.AddService("rlogin", "priam")
	if err != nil {
		b.Fatal(err)
	}
	user, err := realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		b.Fatal(err)
	}
	return &benchEnv{
		realm:   realm,
		user:    user,
		service: Principal{Name: "rlogin", Instance: "priam", Realm: benchRealm},
		tab:     tab,
	}
}

// BenchmarkFig2NameParse measures principal parsing and formatting.
func BenchmarkFig2NameParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := ParsePrincipal("rlogin.priam@ATHENA.MIT.EDU")
		if err != nil {
			b.Fatal(err)
		}
		if p.String() == "" {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig3TicketSeal measures building and sealing a ticket in the
// server key — the KDC's core unit of work.
func BenchmarkFig3TicketSeal(b *testing.B) {
	serverKey, _ := des.NewRandomKey()
	sess, _ := des.NewRandomKey()
	tkt := &core.Ticket{
		Server:     core.Principal{Name: "rlogin", Instance: "priam", Realm: benchRealm},
		Client:     core.Principal{Name: "jis", Realm: benchRealm},
		Addr:       core.Addr(loopback),
		Issued:     core.TimeFromGo(time.Unix(567705600, 0)),
		Life:       core.DefaultTGTLife,
		SessionKey: sess,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed := tkt.Seal(serverKey)
		if _, err := core.OpenTicket(serverKey, sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Authenticator measures building, sealing, and verifying
// an authenticator in the session key.
func BenchmarkFig4Authenticator(b *testing.B) {
	sess, _ := des.NewRandomKey()
	client := core.Principal{Name: "jis", Realm: benchRealm}
	now := time.Unix(567705600, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auth := core.NewAuthenticator(client, core.Addr(loopback), now, uint32(i))
		sealed := auth.Seal(sess)
		if _, err := core.OpenAuthenticator(sess, sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5InitialTicket measures the full AS exchange (Figure 5):
// request encode, KDC handling (lookup, session key, ticket seal, reply
// seal), and client-side decryption with the password key.
func BenchmarkFig5InitialTicket(b *testing.B) {
	env := newBenchEnv(b)
	userKey := PasswordKey(core.Principal{Name: "jis", Realm: benchRealm}, "zanzibar")
	req := &core.AuthRequest{
		Client:  core.Principal{Name: "jis", Realm: benchRealm},
		Service: core.TGSPrincipal(benchRealm, benchRealm),
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(time.Now()),
	}
	enc := req.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := env.realm.KDC.Handle(enc, core.Addr(loopback))
		rep, err := core.DecodeAuthReply(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rep.Open(userKey); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8ServerTicket measures the TGS exchange (Figure 8): fresh
// authenticator under the TGT session key, KDC handling, reply opened
// with the TGT session key.
func BenchmarkFig8ServerTicket(b *testing.B) {
	env := newBenchEnv(b)
	tgt, ok := env.user.Cache.Get(core.TGSPrincipal(benchRealm, benchRealm), time.Now())
	if !ok {
		b.Fatal("no TGT")
	}
	userP := core.Principal{Name: "jis", Realm: benchRealm}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auth := core.NewAuthenticator(userP, core.Addr(loopback), time.Now(), env.seq.Add(1))
		req := &core.TGSRequest{
			APReq: core.APRequest{
				TicketRealm:   benchRealm,
				Ticket:        tgt.Ticket,
				Authenticator: auth.Seal(tgt.SessionKey),
			},
			Service: core.Principal{Name: "rlogin", Instance: "priam", Realm: benchRealm},
			Life:    core.MaxLife,
			Time:    core.TimeFromGo(time.Now()),
		}
		raw := env.realm.KDC.Handle(req.Encode(), core.Addr(loopback))
		rep, err := core.DecodeAuthReply(raw)
		if err != nil {
			b.Fatal(core.IfErrorMessage(raw))
		}
		if _, err := rep.Open(tgt.SessionKey); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKDCParallelAS hammers the KDC's AS path from all cores at
// once — the §9 morning-login storm concentrated on one machine. Only
// the server side runs, so the number reported is pure KDC capacity;
// the request bytes are shared because Handle never retains or mutates
// its input.
func BenchmarkKDCParallelAS(b *testing.B) {
	env := newBenchEnv(b)
	req := (&core.AuthRequest{
		Client:  core.Principal{Name: "jis", Realm: benchRealm},
		Service: core.TGSPrincipal(benchRealm, benchRealm),
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(time.Now()),
	}).Encode()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			raw := env.realm.KDC.Handle(req, core.Addr(loopback))
			if err := core.IfErrorMessage(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKDCParallelTGS drives concurrent TGS exchanges through one
// KDC. Every iteration presents a fresh authenticator (distinct
// checksum), so all of them pass — and stress — the sharded replay
// cache rather than short-circuiting on a duplicate.
func BenchmarkKDCParallelTGS(b *testing.B) {
	env := newBenchEnv(b)
	tgt, ok := env.user.Cache.Get(core.TGSPrincipal(benchRealm, benchRealm), time.Now())
	if !ok {
		b.Fatal("no TGT")
	}
	userP := core.Principal{Name: "jis", Realm: benchRealm}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			auth := core.NewAuthenticator(userP, core.Addr(loopback), time.Now(), env.seq.Add(1))
			req := &core.TGSRequest{
				APReq: core.APRequest{
					TicketRealm:   benchRealm,
					Ticket:        tgt.Ticket,
					Authenticator: auth.Seal(tgt.SessionKey),
				},
				Service: core.Principal{Name: "rlogin", Instance: "priam", Realm: benchRealm},
				Life:    core.MaxLife,
				Time:    core.TimeFromGo(time.Now()),
			}
			raw := env.realm.KDC.Handle(req.Encode(), core.Addr(loopback))
			if err := core.IfErrorMessage(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKDCBatchAS measures the KDC's batched AS pipeline: one
// HandleBatch call carrying 64 independent requests, the shape the ring
// transport presents under a flood. All DES work runs through the
// bitsliced engine (64 lanes ≥ the batch threshold); the ns/req metric
// is the per-request cost to compare against BenchmarkKDCParallelAS's
// scalar ns/op.
func BenchmarkKDCBatchAS(b *testing.B) {
	env := newBenchEnv(b)
	req := (&core.AuthRequest{
		Client:  core.Principal{Name: "jis", Realm: benchRealm},
		Service: core.TGSPrincipal(benchRealm, benchRealm),
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(time.Now()),
	}).Encode()
	const width = 64
	batch := make([]kdc.BatchRequest, width)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = kdc.BatchRequest{Msg: req, From: core.Addr(loopback)}
		}
		env.realm.KDC.HandleBatch(batch)
	}
	b.StopTimer()
	for j := range batch {
		if err := core.IfErrorMessage(batch[j].Reply); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*width), "ns/req")
}

// BenchmarkKDCBatchedUDP measures AS throughput over the real loopback
// UDP path with a bounded in-flight window: 32 clients each keep one
// request outstanding, so the ring transport sees genuine arrival
// concurrency and coalesces it into multi-request batches. One
// iteration is one completed request/reply round trip.
func BenchmarkKDCBatchedUDP(b *testing.B) {
	env := newBenchEnv(b)
	addr := env.realm.KDCAddrs()[0]
	req := (&core.AuthRequest{
		Client:  core.Principal{Name: "jis", Realm: benchRealm},
		Service: core.TGSPrincipal(benchRealm, benchRealm),
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(time.Now()),
	}).Encode()
	const window = 32
	conns := make([]net.Conn, window)
	for i := range conns {
		conn, err := net.Dial("udp4", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		conns[i] = conn
	}
	buf := make([]byte, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := range conns {
		if _, err := conns[i].Write(req); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < b.N; i++ {
		conn := conns[i%window]
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.IfErrorMessage(buf[:n]); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Write(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6RequestService measures the application request (Figure
// 6): krb_mk_req with cached credentials plus the server's krb_rd_req.
func BenchmarkFig6RequestService(b *testing.B) {
	env := newBenchEnv(b)
	svc := env.realm.NewServiceContext("rlogin", "priam", env.tab)
	if _, err := env.user.GetCredentials(env.service); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, _, err := env.user.MkReq(env.service, env.seq.Add(1), false)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.ReadRequest(msg, loopback); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7MutualAuth adds the server's proof and the client's
// verification (Figure 7) on top of Figure 6.
func BenchmarkFig7MutualAuth(b *testing.B) {
	env := newBenchEnv(b)
	svc := env.realm.NewServiceContext("rlogin", "priam", env.tab)
	if _, err := env.user.GetCredentials(env.service); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, session, err := env.user.MkReq(env.service, env.seq.Add(1), true)
		if err != nil {
			b.Fatal(err)
		}
		sess, err := svc.ReadRequest(msg, loopback)
		if err != nil {
			b.Fatal(err)
		}
		if err := session.VerifyReply(sess.Reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9FullLogin measures the complete Figure 9 sequence over
// real loopback sockets: AS exchange, TGS exchange, AP exchange with
// mutual authentication — one user session end to end.
func BenchmarkFig9FullLogin(b *testing.B) {
	env := newBenchEnv(b)
	svc := env.realm.NewServiceContext("rlogin", "priam", env.tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		user, err := env.realm.NewLoggedInClient("jis", "zanzibar")
		if err != nil {
			b.Fatal(err)
		}
		msg, session, err := user.MkReq(env.service, env.seq.Add(1), true)
		if err != nil {
			b.Fatal(err)
		}
		sess, err := svc.ReadRequest(msg, loopback)
		if err != nil {
			b.Fatal(err)
		}
		if err := session.VerifyReply(sess.Reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10SlaveOffload measures aggregate AS throughput as
// read-only slave copies are added beside the master (Figure 10) and
// clients spread their requests across all copies. On a single machine
// the copies share the CPU, so the figure to watch is that throughput
// does not degrade as requests spread — on distinct machines each copy
// adds its own capacity.
func BenchmarkFig10SlaveOffload(b *testing.B) {
	for _, kdcs := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("kdcs=%d", kdcs), func(b *testing.B) {
			realm, err := NewRealm(RealmConfig{
				Name: benchRealm, MasterPassword: "master", Slaves: kdcs - 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer realm.Close()
			if err := realm.AddUser("jis", "zanzibar"); err != nil {
				b.Fatal(err)
			}
			if err := realm.Propagate(); err != nil {
				b.Fatal(err)
			}
			// In-process handlers for all copies.
			handlers := []func([]byte, core.Addr) []byte{realm.KDC.Handle}
			for i := 0; i < kdcs-1; i++ {
				handlers = append(handlers, kdc.New(benchRealm, realm.slaveDBs[i]).Handle)
			}
			req := (&core.AuthRequest{
				Client:  core.Principal{Name: "jis", Realm: benchRealm},
				Service: core.TGSPrincipal(benchRealm, benchRealm),
				Life:    core.DefaultTGTLife,
				Time:    core.TimeFromGo(time.Now()),
			}).Encode()
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					h := handlers[next.Add(1)%uint64(len(handlers))]
					raw := h(req, core.Addr(loopback))
					if err := core.IfErrorMessage(raw); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkFig12AdminChange measures the administration protocol
// (Figure 12): the in-process authorize+execute path, and the full
// kpasswd flow (AS exchange for a changepw ticket, mutual auth with the
// KDBM, private-message command) over sockets.
func BenchmarkFig12AdminChange(b *testing.B) {
	b.Run("execute", func(b *testing.B) {
		realm, err := NewRealm(RealmConfig{Name: benchRealm, MasterPassword: "master"})
		if err != nil {
			b.Fatal(err)
		}
		defer realm.Close()
		if err := realm.AddUser("jis", "zanzibar"); err != nil {
			b.Fatal(err)
		}
		acl, _ := kadm.NewACL()
		srv := kadm.NewServer(benchRealm, realm.DB, acl)
		requester := core.Principal{Name: "jis", Realm: benchRealm}
		key, _ := des.NewRandomKey()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := srv.Execute(requester, &kadm.Request{
				Op: kadm.OpChangePassword, Name: "jis", Key: key,
			})
			if !rep.OK {
				b.Fatal(rep.Text)
			}
		}
	})
	b.Run("kpasswd-full", func(b *testing.B) {
		realm, err := NewRealm(RealmConfig{Name: benchRealm, MasterPassword: "master"})
		if err != nil {
			b.Fatal(err)
		}
		defer realm.Close()
		if err := realm.AddUser("jis", "zanzibar"); err != nil {
			b.Fatal(err)
		}
		if _, err := realm.ServeAdmin(); err != nil {
			b.Fatal(err)
		}
		pw := "zanzibar"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next := fmt.Sprintf("pw-%d", i)
			if err := realm.ChangePassword("jis", pw, next); err != nil {
				b.Fatal(err)
			}
			pw = next
		}
	})
}

// BenchmarkFig13Propagation measures a full database push (dump, sealed
// checksum, transfer, verify, swap) over sockets, swept across database
// sizes (Figure 13; the paper's deployment was ~5,000 users).
func BenchmarkFig13Propagation(b *testing.B) {
	for _, size := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("principals=%d", size), func(b *testing.B) {
			db := kdb.New(des.StringToKey("master", benchRealm))
			tgsKey, _ := des.NewRandomKey()
			if err := db.Add(core.TGSName, benchRealm, tgsKey, 0, "init", time.Now()); err != nil {
				b.Fatal(err)
			}
			spec := workload.Spec{Users: size, Services: 0, Workstations: 1, Seed: 1}
			if err := workload.Install(db, spec, benchRealm, time.Now()); err != nil {
				b.Fatal(err)
			}
			slaveDB := kdb.New(db.MasterKey())
			slave := kprop.NewSlave(slaveDB, nil)
			l, err := kprop.Serve(slave, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			m := kprop.NewMaster(db, []string{l.Addr()}, nil)
			dumpBytes := len(db.Dump())
			b.SetBytes(int64(dumpBytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.PropagateAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkS9AthenaScale replays the §9 deployment: one benchmark
// iteration is one user session (an AS exchange plus three TGS
// exchanges, all cryptographically verified) drawn from a population of
// 5,000 users on 650 workstations against 65 services.
func BenchmarkS9AthenaScale(b *testing.B) {
	spec := workload.Athena
	server, _, err := workload.NewRealmServer(spec, benchRealm)
	if err != nil {
		b.Fatal(err)
	}
	d := &workload.Driver{
		Spec: spec, Realm: benchRealm,
		Handle:          server.Handle,
		TicketsPerLogin: 3,
	}
	m := &workload.Metrics{}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) % spec.Users
			if err := d.RunUser(i, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if f := m.Failures.Load(); f != 0 {
		b.Fatalf("%d failures", f)
	}
	b.ReportMetric(float64(m.ASExchanges.Load()+m.TGSExchanges.Load())/float64(b.N), "exchanges/session")
	// Per-exchange latency quantiles from the driver's histograms — the
	// tail, not just the mean the ns/op column reports.
	as, tgs := m.ASLatency.Snapshot(), m.TGSLatency.Snapshot()
	b.ReportMetric(float64(as.Quantile(0.50).Nanoseconds()), "as-p50-ns")
	b.ReportMetric(float64(as.Quantile(0.99).Nanoseconds()), "as-p99-ns")
	b.ReportMetric(float64(tgs.Quantile(0.50).Nanoseconds()), "tgs-p50-ns")
	b.ReportMetric(float64(tgs.Quantile(0.99).Nanoseconds()), "tgs-p99-ns")
}

// --- Appendix: the NFS envelope calculation -----------------------------

// nfsBench builds a file server in the given mode with a mounted (or
// authenticated) client, returning closures performing one read and one
// write of the given size. This is experiment A1: the cost of placing
// authentication per-operation versus at mount time, over "all disk read
// and write activities".
func nfsBench(b *testing.B, mode nfs.AuthMode, size int) (read, write func()) {
	b.Helper()
	realm, err := NewRealm(RealmConfig{Name: benchRealm, MasterPassword: "master"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { realm.Close() })
	if err := realm.AddUser("alice", "alice-pw"); err != nil {
		b.Fatal(err)
	}
	tab, err := realm.AddService("nfs", "helen")
	if err != nil {
		b.Fatal(err)
	}
	nfsPrincipal := core.Principal{Name: "nfs", Instance: "helen", Realm: benchRealm}

	fs := vfs.New()
	aliceCred := vfs.Cred{UID: 1001, GIDs: []uint32{100}}
	fs.MkdirAll("/mit/alice", vfs.Root, 0o755)
	fs.Chown("/mit/alice", vfs.Root, 1001, 100)
	payload := make([]byte, size)
	if err := fs.Write("/mit/alice/data", aliceCred, payload, 0o600); err != nil {
		b.Fatal(err)
	}
	server := nfs.NewServer(nfs.ServerConfig{
		Realm: benchRealm, FS: fs, Mode: mode, Friendly: false,
		Principal: nfsPrincipal, Keytab: tab,
		Accounts: []nfs.Account{{Username: "alice", Cred: aliceCred}},
	})

	krb, err := realm.NewLoggedInClient("alice", "alice-pw")
	if err != nil {
		b.Fatal(err)
	}
	// Warm the ticket cache so per-op mode measures authentication, not
	// KDC traffic.
	if _, err := krb.GetCredentials(nfsPrincipal); err != nil {
		b.Fatal(err)
	}
	if mode == nfs.ModeMapped {
		// One Kerberos-moderated mapping request at "mount time".
		apReq, _, err := krb.MkReq(nfsPrincipal, 1001, false)
		if err != nil {
			b.Fatal(err)
		}
		resp := server.Handle((&nfs.Request{Op: nfs.OpKrbMap, Auth: apReq,
			Cred: nfs.Credential{UID: 1001}}).Encode(), core.Addr(loopback))
		if r, _ := nfs.DecodeResponse(resp); r == nil || !r.OK {
			b.Fatal("mount mapping failed")
		}
	}
	var seq atomic.Uint32
	do := func(req *nfs.Request) {
		req.Cred = nfs.Credential{UID: 1001, GIDs: []uint32{100}}
		if mode == nfs.ModePerOpKerberos {
			auth, _, err := krb.MkReq(nfsPrincipal, seq.Add(1), false)
			if err != nil {
				b.Fatal(err)
			}
			req.Auth = auth
		}
		raw := server.Handle(req.Encode(), core.Addr(loopback))
		resp, err := nfs.DecodeResponse(raw)
		if err != nil || !resp.OK {
			b.Fatalf("%v failed: %v %s", req.Op, err, resp.Err)
		}
	}
	read = func() { do(&nfs.Request{Op: nfs.OpRead, Path: "/mit/alice/data"}) }
	write = func() {
		do(&nfs.Request{Op: nfs.OpWrite, Path: "/mit/alice/data",
			Data: payload, Mode: 0o600})
	}
	return read, write
}

// runA1 executes the read and write sub-benchmarks for one mode.
func runA1(b *testing.B, mode nfs.AuthMode) {
	for _, size := range []int{1024, 8192} {
		b.Run(fmt.Sprintf("read=%dB", size), func(b *testing.B) {
			read, _ := nfsBench(b, mode, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				read()
			}
		})
		b.Run(fmt.Sprintf("write=%dB", size), func(b *testing.B) {
			_, write := nfsBench(b, mode, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				write()
			}
		})
	}
}

// BenchmarkA1NFSTrusted is unmodified NFS: believe the packet.
func BenchmarkA1NFSTrusted(b *testing.B) { runA1(b, nfs.ModeTrusted) }

// BenchmarkA1NFSHybridMap is the shipped design: kernel credential map,
// Kerberos only at mount time.
func BenchmarkA1NFSHybridMap(b *testing.B) { runA1(b, nfs.ModeMapped) }

// BenchmarkA1NFSPerOpAuth is the rejected design: "Including a Kerberos
// authentication on each disk transaction would add a fair number of
// full-blown encryptions (done in software) per transaction and ...
// would have delivered unacceptable performance."
func BenchmarkA1NFSPerOpAuth(b *testing.B) { runA1(b, nfs.ModePerOpKerberos) }

// BenchmarkA2CredMap measures the kernel mapping-table operations the
// appendix's new system call provides.
func BenchmarkA2CredMap(b *testing.B) {
	cred := vfs.Cred{UID: 1001, GIDs: []uint32{100, 200}}
	b.Run("lookup-hit", func(b *testing.B) {
		cm := nfs.NewCredMap()
		key := nfs.MapKey{Addr: core.Addr(loopback), UID: 501}
		cm.Add(key, cred)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := cm.Lookup(key); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("lookup-miss", func(b *testing.B) {
		cm := nfs.NewCredMap()
		key := nfs.MapKey{Addr: core.Addr(loopback), UID: 501}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cm.Lookup(key)
		}
	})
	b.Run("add-delete", func(b *testing.B) {
		cm := nfs.NewCredMap()
		key := nfs.MapKey{Addr: core.Addr(loopback), UID: 501}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cm.Add(key, cred)
			cm.Delete(key)
		}
	})
	b.Run("flush-uid-1000", func(b *testing.B) {
		b.StopTimer()
		for i := 0; i < b.N; i++ {
			cm := nfs.NewCredMap()
			for j := 0; j < 1000; j++ {
				cm.Add(nfs.MapKey{Addr: core.Addr{10, 0, byte(j >> 8), byte(j)}, UID: 501}, cred)
			}
			b.StartTimer()
			cm.FlushUID(cred.UID)
			b.StopTimer()
		}
	})
}

// BenchmarkP1Messages compares the §2.1 protection levels at several
// message sizes: safe (keyed checksum, plaintext) vs private (PCBC
// encryption) — the speed/security tradeoff the library offers.
func BenchmarkP1Messages(b *testing.B) {
	key, _ := des.NewRandomKey()
	now := time.Now()
	for _, size := range []int{64, 1024, 8192} {
		data := make([]byte, size)
		b.Run(fmt.Sprintf("safe=%dB", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				msg := core.MakeSafe(key, data, core.Addr(loopback), now)
				if _, err := core.ReadSafe(key, msg, core.Addr(loopback), now); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("priv=%dB", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				msg := core.MakePriv(key, data, core.Addr(loopback), now)
				if _, err := core.ReadPriv(key, msg, core.Addr(loopback), now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP2DESModes measures the encryption library's modes (§2.2's
// speed/security tradeoff, including the PCBC extension).
func BenchmarkP2DESModes(b *testing.B) {
	key, _ := des.NewRandomKey()
	c := des.NewCipher(key)
	iv := make([]byte, 8)
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for _, mode := range []des.Mode{des.ModeECB, des.ModeCBC, des.ModePCBC} {
		b.Run(mode.String(), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if err := c.Encrypt(mode, dst, src, iv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkX1CrossRealm measures obtaining a remote-realm service ticket
// from scratch (local TGS for the cross-realm TGT, then the remote TGS),
// over real sockets (§7.2).
func BenchmarkX1CrossRealm(b *testing.B) {
	a, err := NewRealm(RealmConfig{Name: benchRealm, MasterPassword: "a"})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	remote, err := NewRealm(RealmConfig{Name: "LCS.MIT.EDU", MasterPassword: "b"})
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Close()
	if err := TrustRealm(a, remote); err != nil {
		b.Fatal(err)
	}
	if err := a.AddUser("jis", "zanzibar"); err != nil {
		b.Fatal(err)
	}
	if _, err := remote.AddService("rlogin", "ai-lab"); err != nil {
		b.Fatal(err)
	}
	user, err := a.NewLoggedInClient("jis", "zanzibar", remote)
	if err != nil {
		b.Fatal(err)
	}
	tgt, ok := user.Cache.Get(core.TGSPrincipal(benchRealm, benchRealm), time.Now())
	if !ok {
		b.Fatal("no TGT")
	}
	remoteSvc := Principal{Name: "rlogin", Instance: "ai-lab", Realm: "LCS.MIT.EDU"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reset the cache to just the TGT so every iteration performs
		// both TGS exchanges.
		user.Cache.Destroy()
		user.Cache.Store(tgt)
		if _, err := user.GetCredentials(remoteSvc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1LifetimeSweep is the §8 ablation: one iteration simulates a
// 16-hour workday under a given TGT lifetime — the user touches a
// service every 5 minutes, re-entering the password (an AS exchange)
// whenever the TGT has expired. Shorter lifetimes mean more password
// prompts; longer ones widen the stolen-ticket exposure window. The
// companion TestT1LifetimeTable prints the tradeoff table.
func BenchmarkT1LifetimeSweep(b *testing.B) {
	env := newWorkdayEnv(b)
	for _, life := range []time.Duration{30 * time.Minute, 2 * time.Hour, 8 * time.Hour, 21 * time.Hour} {
		b.Run(fmt.Sprintf("life=%v", life), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kinits, _ := env.simulateWorkday(b, life)
				if kinits == 0 {
					b.Fatal("no logins")
				}
			}
		})
	}
}

// workdayEnv is a fake-clock realm reused across simulated days.
type workdayEnv struct {
	realm *Realm
	clock *testclock.Clock
	day   int
}

func newWorkdayEnv(tb testing.TB) *workdayEnv {
	tb.Helper()
	env := &workdayEnv{clock: testclock.New(time.Date(1988, 2, 9, 8, 0, 0, 0, time.UTC))}
	realm, err := NewRealm(RealmConfig{
		Name: benchRealm, MasterPassword: "m",
		Clock: env.clock.Now,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { realm.Close() })
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		tb.Fatal(err)
	}
	if _, err := realm.AddService("rlogin", "priam"); err != nil {
		tb.Fatal(err)
	}
	// The benchmark simulates years of workdays; renew every entry far
	// past the few-years registration default so the §2.2 expiration
	// does not end the experiment.
	farFuture := time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, id := range realm.DB.List() {
		name, instance, _ := strings.Cut(id, ".")
		if err := realm.DB.SetExpiration(name, instance, farFuture, "bench", env.clock.Now()); err != nil {
			tb.Fatal(err)
		}
	}
	env.realm = realm
	return env
}

// simulateWorkday drives the realm through a 16-hour day with a service
// touch every 5 minutes under the given TGT lifetime, returning how many
// password entries (kinits) were needed and the number of service
// touches. Each simulated day starts 24h after the previous one so
// authenticators never collide in the KDC's replay cache.
func (env *workdayEnv) simulateWorkday(tb testing.TB, tgtLife time.Duration) (kinits, touches int) {
	tb.Helper()
	env.day++
	env.clock.Set(time.Date(1988, 2, 9, 8, 0, 0, 0, time.UTC).AddDate(0, 0, env.day))
	svc := Principal{Name: "rlogin", Instance: "priam", Realm: benchRealm}

	c := NewClient(Principal{Name: "jis", Realm: benchRealm}, env.realm.ClientConfig())
	c.Addr = loopback
	c.Clock = env.clock.Now
	life := core.LifetimeFromDuration(tgtLife)

	end := env.clock.Now().Add(16 * time.Hour)
	for env.clock.Now().Before(end) {
		// Need a valid TGT?
		if _, ok := c.Cache.Get(core.TGSPrincipal(benchRealm, benchRealm), env.clock.Now()); !ok {
			if _, err := c.LoginService("zanzibar", core.TGSPrincipal(benchRealm, benchRealm), life); err != nil {
				tb.Fatal(err)
			}
			kinits++
		}
		if _, err := c.GetCredentials(svc); err != nil {
			tb.Fatal(err)
		}
		touches++
		env.clock.Advance(5 * time.Minute)
	}
	return kinits, touches
}

// TestT1LifetimeTable prints the §8 tradeoff table recorded in
// EXPERIMENTS.md: password entries per day and exposure window per TGT
// lifetime.
func TestT1LifetimeTable(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation")
	}
	env := newWorkdayEnv(t)
	t.Logf("%-12s %-18s %-18s", "TGT life", "kinits / 16h day", "exposure window")
	for _, life := range []time.Duration{30 * time.Minute, time.Hour, 2 * time.Hour,
		4 * time.Hour, 8 * time.Hour, 21 * time.Hour} {
		kinits, touches := env.simulateWorkday(t, life)
		t.Logf("%-12v %-18d %-18v (touches=%d)", life, kinits, life, touches)
	}
}

// --- §9 at a-thousand-times scale ---------------------------------------

// s9x1000State holds the (expensive) S9x1000 fixture, built once per
// test binary: a 16-shard master with the full population, a sharded
// read-only replica fed by kprop, and a 3-instance KDC cluster over the
// replica.
var s9x1000State struct {
	once      sync.Once
	err       error
	spec      workload.Spec
	master    *kdb.Database
	replica   *kdb.Database
	propAddr  string
	cluster   *kdc.Cluster
	selectors []*kdc.Selector
}

// s9x1000Spec scales §9 by 1000: 5M users, 650k workstations, 65k
// services. KERB_S9X1000_SCALE divides the population for smoke runs
// (e.g. =1000 gives the classic Athena population).
func s9x1000Spec() workload.Spec {
	spec := workload.Spec{Users: 5_000_000, Workstations: 650_000, Services: 65_000, Seed: 9}
	if div := os.Getenv("KERB_S9X1000_SCALE"); div != "" {
		var d int
		fmt.Sscanf(div, "%d", &d)
		if d > 1 {
			spec.Users /= d
			spec.Workstations /= d
			spec.Services /= d
		}
	}
	return spec
}

func s9x1000Setup() error {
	s := &s9x1000State
	s.once.Do(func() {
		s.spec = s9x1000Spec()
		const shards = 16
		newSharded := func() *kdb.Database {
			stores := make([]kdb.Store, shards)
			for i := range stores {
				stores[i] = kdb.NewMemStore()
			}
			return kdb.NewSharded(client.PasswordKey(
				core.Principal{Name: "K", Instance: "M", Realm: benchRealm}, "master"), stores)
		}
		s.master = newSharded()
		now := time.Now()
		tgsKey, err := des.NewRandomKey()
		if err != nil {
			s.err = err
			return
		}
		if err := s.master.Add(core.TGSName, benchRealm, tgsKey, 0, "kdb_init", now); err != nil {
			s.err = err
			return
		}
		clear(tgsKey[:])
		if s.err = workload.Install(s.master, s.spec, benchRealm, now); s.err != nil {
			return
		}
		// Seed the replica shard by shard — the same per-shard dumps
		// kprop v3 ships, without paying for sockets on 300+ MB of dump.
		s.replica = newSharded()
		for i := 0; i < shards; i++ {
			if s.err = s.replica.LoadDumpShard(i, s.master.DumpShard(i)); s.err != nil {
				return
			}
		}
		s.replica.SetReadOnly(true)
		slave := kprop.NewSlave(s.replica, nil)
		l, err := kprop.Serve(slave, "127.0.0.1:0")
		if err != nil {
			s.err = err
			return
		}
		s.propAddr = l.Addr()
		// Three KDC instances over the replica, with one sticky selector
		// per instance; the driver round-robins sessions across them.
		s.cluster, s.err = kdc.NewCluster(benchRealm, s.replica, 3)
		if s.err != nil {
			return
		}
		for i := 0; i < len(s.cluster.Addrs()); i++ {
			s.selectors = append(s.selectors, s.cluster.Selector())
		}
	})
	return s.err
}

// BenchmarkS9x1000 is the scaling headline: the §9 deployment a
// thousand times over — 5,000,000 principals on 650,000 workstations —
// served by a sharded principal database behind a load-balanced
// 3-instance KDC cluster, with kprop v3 shipping per-shard deltas to
// the replica. One iteration is one user session (AS + three TGS over
// real UDP sockets). Reported alongside ns/op: sessions/s throughput,
// client-observed p99 per exchange, and the master→replica propagation
// lag for a 1,000-user churn round.
func BenchmarkS9x1000(b *testing.B) {
	if err := s9x1000Setup(); err != nil {
		b.Fatal(err)
	}
	s := &s9x1000State
	var pick atomic.Uint64
	d := &workload.Driver{
		Spec: s.spec, Realm: benchRealm,
		Exchange: func(req []byte) ([]byte, error) {
			sel := s.selectors[int(pick.Add(1))%len(s.selectors)]
			return sel.Exchange(req, 10*time.Second)
		},
		Addr:            core.Addr{127, 0, 0, 1},
		TicketsPerLogin: 3,
	}
	m := &workload.Metrics{}
	var next atomic.Uint64
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			// Stride through the population so successive sessions hit
			// different shards and different decrypted-key cache lines.
			i := int(next.Add(1)*104_729) % s.spec.Users
			if err := d.RunUser(i, m); err != nil {
				b.Fatalf("user %d: %v", i, err)
			}
		}
	})
	b.StopTimer()
	elapsed := time.Since(start)
	if f := m.Failures.Load(); f != 0 {
		b.Fatalf("%d failures", f)
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "sessions/s")
	as, tgs := m.ASLatency.Snapshot(), m.TGSLatency.Snapshot()
	b.ReportMetric(float64(as.Quantile(0.99).Nanoseconds()), "as-p99-ns")
	b.ReportMetric(float64(tgs.Quantile(0.99).Nanoseconds()), "tgs-p99-ns")

	// Propagation lag: a 1,000-user churn round on the master, shipped
	// to the replica as per-shard deltas over the real socket.
	churn := 1000.0 / float64(s.spec.Users)
	if _, err := workload.Churn(s.master, s.spec, benchRealm, churn, int64(b.N), time.Now()); err != nil {
		b.Fatal(err)
	}
	mp := kprop.NewMaster(s.master, []string{s.propAddr}, nil)
	propStart := time.Now()
	if err := mp.PropagateAll(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(time.Since(propStart).Nanoseconds())/1e6, "prop-lag-ms")
	if s.replica.Digest() != s.master.Digest() {
		b.Fatal("replica diverged after churn propagation")
	}

	// Put the churned users' install-time passwords back (and ship the
	// restore) so the next harness invocation's sessions still decrypt.
	if _, err := workload.Revert(s.master, s.spec, benchRealm, churn, int64(b.N), time.Now()); err != nil {
		b.Fatal(err)
	}
	if err := mp.PropagateAll(); err != nil {
		b.Fatal(err)
	}
}

package kerberos

// End-to-end observability: wire a Collector and a Registry into a
// realm, run the Figure 9 protocol walkthrough, and assert the exact
// trace-event sequence and the metric counts it must produce.

import (
	"strings"
	"testing"

	"kerberos/internal/obs"
)

// TestFigure9TraceSequence replays TestFullProtocolFig9 with tracing on
// and pins the emitted sequence: one AS exchange, one TGS exchange, one
// mutually-authenticated application request — in that order, each
// successful, each attributed to the right principals.
func TestFigure9TraceSequence(t *testing.T) {
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	realm, err := NewRealm(RealmConfig{
		Name:           "ATHENA.MIT.EDU",
		MasterPassword: "master",
		Registry:       reg,
		TraceSink:      col,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer realm.Close()
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	tab, err := realm.AddService("rlogin", "priam")
	if err != nil {
		t.Fatal(err)
	}

	user, err := realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	service := Principal{Name: "rlogin", Instance: "priam", Realm: realm.Name}
	apReq, session, err := user.MkReq(service, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	server := realm.NewServiceContext("rlogin", "priam", tab)
	sess, err := server.ReadRequest(apReq, Addr{127, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := session.VerifyReply(sess.Reply); err != nil {
		t.Fatal(err)
	}

	events := col.Events()
	want := []struct {
		kind      obs.Kind
		principal string
		service   string
	}{
		{obs.ExchangeAS, "jis@ATHENA.MIT.EDU", "krbtgt.ATHENA.MIT.EDU@ATHENA.MIT.EDU"},
		{obs.ExchangeTGS, "jis@ATHENA.MIT.EDU", "rlogin.priam@ATHENA.MIT.EDU"},
		{obs.MutualAuth, "jis@ATHENA.MIT.EDU", "rlogin.priam@ATHENA.MIT.EDU"},
	}
	if len(events) != len(want) {
		for _, e := range events {
			t.Logf("  %s", e)
		}
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i, w := range want {
		e := events[i]
		if e.Kind != w.kind {
			t.Errorf("event %d: kind = %s, want %s", i, e.Kind, w.kind)
		}
		if e.Principal != w.principal {
			t.Errorf("event %d: principal = %q, want %q", i, e.Principal, w.principal)
		}
		if e.Service != w.service {
			t.Errorf("event %d: service = %q, want %q", i, e.Service, w.service)
		}
		if !e.OK() {
			t.Errorf("event %d: unexpected error %q", i, e.Err)
		}
		if e.Duration <= 0 {
			t.Errorf("event %d: duration = %v", i, e.Duration)
		}
		if e.Bytes == 0 {
			t.Errorf("event %d: zero reply bytes", i)
		}
	}
	// Ticket version numbers ride along on the KDC replies.
	if events[0].KVNO != 1 || events[1].KVNO != 1 {
		t.Errorf("KDC event KVNOs = %d, %d, want 1, 1", events[0].KVNO, events[1].KVNO)
	}

	// The same run must be visible through the registry.
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, line := range []string{
		"kdc_as_requests 1",
		"kdc_tgs_requests 1",
		"kdc_errors 0",
		"kdc_as_latency_count 1",
		"kdc_tgs_latency_count 1",
		"kdc_replay_checks 1",
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("metrics snapshot missing %q:\n%s", line, text)
		}
	}
}

// TestTraceRecordsFailures: a login for an unregistered principal
// surfaces as a failed AS event carrying the protocol error code, and
// the error counter moves. (A merely wrong password never reaches the
// KDC's error path — faithful to v4, the KDC seals the reply under
// whatever key the database holds and the workstation fails to decrypt
// it, so no failure event is expected for that case.)
func TestTraceRecordsFailures(t *testing.T) {
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	realm, err := NewRealm(RealmConfig{
		Name:           "ATHENA.MIT.EDU",
		MasterPassword: "master",
		Registry:       reg,
		TraceSink:      col,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer realm.Close()
	if _, err := realm.NewLoggedInClient("nobody", "zanzibar"); err == nil {
		t.Fatal("login for unknown principal succeeded")
	}

	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	e := events[0]
	if e.Kind != obs.ExchangeAS || e.OK() {
		t.Errorf("event = %s, want failed AS exchange", e)
	}
	if e.Err != "principal unknown" {
		t.Errorf("err = %q, want the principal-unknown code", e.Err)
	}
	if reg.Counter("kdc_errors").Load() == 0 {
		t.Error("kdc_errors did not move")
	}
}

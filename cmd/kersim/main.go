// Command kersim drives the deterministic realm simulator: a scenario
// file (or the canned athena-day) is executed in virtual time against
// real in-process KDC instances, and the day's counters, latency
// quantiles, and event trace come back. It is also the entry point for
// the saturation analyzer that writes BENCH_realm.json.
//
//	kersim -scenario athena-day -scale 0.2          # one scaled day, summary
//	kersim -scenario scenarios/athena-day.json      # the same day from its file
//	kersim -scenario athena-day -scale 0.1 -verify  # run twice, require byte-identical runs
//	kersim -scenario athena-day -trace              # dump the event trace
//	kersim -analyze -out BENCH_realm.json           # calibrate + binary-search every topology
//	kersim -dump                                    # print the canned scenario as JSON
//
// Everything inside a run happens on the simulated clock; the only
// wall-clock use is the analyzer's service-time calibration.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"kerberos/internal/sim"
)

func main() {
	var (
		scenario = flag.String("scenario", "athena-day", "scenario JSON file, or the literal athena-day")
		scale    = flag.Float64("scale", 1.0, "population scale for the canned scenario (0, 1]")
		verify   = flag.Bool("verify", false, "run the scenario twice and require byte-identical trace and metrics")
		trace    = flag.Bool("trace", false, "print the event trace")
		metrics  = flag.Bool("metrics", false, "print the metrics snapshot")
		dump     = flag.Bool("dump", false, "print the resolved scenario as JSON and exit")
		analyze  = flag.Bool("analyze", false, "run the saturation analyzer over the benchmark topologies")
		out      = flag.String("out", "BENCH_realm.json", "output path for -analyze")
		slo      = flag.Duration("slo", 25*time.Millisecond, "p99 SLO for -analyze")
		window   = flag.Duration("window", 0, "probe window for -analyze (default 20s)")
	)
	flag.Parse()

	if *analyze {
		opts := sim.SaturationOpts{SLO: *slo, Window: *window}
		if err := sim.BenchRealm(*out, opts, 0.2); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	sc, err := load(*scenario, *scale)
	if err != nil {
		fatal(err)
	}
	if *dump {
		data, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}

	res, err := run(sc)
	if err != nil {
		fatal(err)
	}
	if *verify {
		res2, err := run(sc)
		if err != nil {
			fatal(err)
		}
		if !bytes.Equal(res.Trace, res2.Trace) {
			fatal(fmt.Errorf("determinism violation: two runs of %s produced different traces", sc.Name))
		}
		if !bytes.Equal(res.MetricsText, res2.MetricsText) {
			fatal(fmt.Errorf("determinism violation: two runs of %s produced different metrics", sc.Name))
		}
		fmt.Println("verify: two runs byte-identical")
	}
	if *trace {
		os.Stdout.Write(res.Trace)
	}
	if *metrics {
		os.Stdout.Write(res.MetricsText)
	}
	fmt.Println(res.Summary())
}

// load resolves the scenario argument: the canned day at the given
// scale, or a scenario file. Scaling a file is the file's own business
// (its cohort sizes are explicit), so -scale only applies to the
// canned name.
func load(name string, scale float64) (*sim.Scenario, error) {
	if name == "athena-day" {
		return sim.AthenaDay(scale), nil
	}
	return sim.Load(name)
}

func run(sc *sim.Scenario) (*sim.Result, error) {
	s, err := sim.New(sc)
	if err != nil {
		return nil, err
	}
	return s.Execute(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kersim:", err)
	os.Exit(1)
}

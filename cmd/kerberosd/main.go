// Command kerberosd is the authentication server (§2.2): it answers the
// initial-ticket and ticket-granting exchanges over UDP and TCP. It
// performs read-only database operations, so it runs equally well over
// the master database or a slave's propagated copy (-slave).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/obs"
)

func main() {
	var (
		realm  = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		dbPath = flag.String("db", "principal.db", "database file")
		dbDir  = flag.String("dbdir", "",
			"segment-log database directory (sharded, append-only); overrides -db")
		shards = flag.Int("shards", 0,
			"shard count for a new -dbdir database (0 autodetects an existing one, or 1 for a new one)")
		addr  = flag.String("addr", "127.0.0.1:7500", "listen address (udp+tcp)")
		slave = flag.Bool("slave", false, "serve a read-only slave copy")
		admin = flag.String("admin", "",
			"admin listener address serving /metrics, /healthz and /debug/pprof (e.g. 127.0.0.1:7600); empty disables")
		reload = flag.Duration("reload-interval", time.Second,
			"how often to re-read the database file when it changes (kadmind/kpropd write it); 0 disables; ignored with -dbdir")
	)
	flag.Parse()

	fmt.Fprint(os.Stderr, "Master database password: ")
	line, _ := bufio.NewReader(os.Stdin).ReadString('\n')
	masterPw := strings.TrimRight(line, "\r\n")
	masterKey := des.StringToKey(masterPw, *realm)
	// The database holds its own copy of the master key; wipe the local
	// when main unwinds (§4.1 keyzero discipline). Registered before the
	// open/load error exits so every path is covered.
	defer clear(masterKey[:])

	var db *kdb.Database
	var segs []*kdb.SegmentStore
	if *dbDir != "" {
		n := *shards
		if n <= 0 {
			if detected, err := kdb.DetectShards(*dbDir); err != nil {
				log.Fatalf("kerberosd: %v", err)
			} else if detected > 0 {
				n = detected
			} else {
				n = 1
			}
		}
		var err error
		db, segs, err = kdb.OpenSegmentDB(masterKey, *dbDir, n, kdb.SegmentOptions{})
		if err != nil {
			log.Fatalf("kerberosd: %v", err)
		}
		*reload = 0 // the segment log is this process's own durable store
	} else {
		db = kdb.New(masterKey)
		if err := db.Load(*dbPath); err != nil {
			log.Fatalf("kerberosd: %v", err)
		}
	}
	if *slave {
		db.SetReadOnly(true)
	}
	logger := log.New(os.Stderr, "kerberosd ", log.LstdFlags)
	reg := obs.NewRegistry()
	reg.GaugeFunc("kdc_db_principals", func() int64 { return int64(db.Len()) })
	reg.GaugeFunc("kdb_shards", func() int64 { return int64(db.Shards()) })
	if db.Shards() > 1 {
		for i := 0; i < db.Shards(); i++ {
			i := i
			reg.GaugeFunc(fmt.Sprintf("kdb_shard_len{shard=%q}", fmt.Sprint(i)),
				func() int64 { return int64(db.ShardLen(i)) })
			reg.GaugeFunc(fmt.Sprintf("kdb_shard_serial{shard=%q}", fmt.Sprint(i)),
				func() int64 { return int64(db.ShardSerial(i)) })
		}
	}
	// Startup/memory gauges (segment databases only): how long the cold
	// start took, how much of it was segment-tail replay, and the bytes
	// the loaded base keeps resident (mapped snapshot + entry slab).
	// Realm-level startup is the slowest shard; the rest sum.
	if len(segs) > 0 {
		stats := make([]kdb.StartupStats, len(segs))
		for i, s := range segs {
			stats[i] = s.StartupStats()
		}
		var startupNS, resident int64
		var replayed int64
		mapped := true
		for _, st := range stats {
			if st.StartupNS > startupNS {
				startupNS = st.StartupNS
			}
			replayed += int64(st.ReplayRecords)
			resident += st.ResidentBytes
			mapped = mapped && st.MappedBase
		}
		reg.GaugeFunc("kdb_startup_ms", func() int64 { return startupNS / 1e6 })
		reg.GaugeFunc("kdb_replay_records", func() int64 { return replayed })
		reg.GaugeFunc("kdb_resident_bytes", func() int64 { return resident })
		mappedVal := int64(0)
		if mapped {
			mappedVal = 1
		}
		reg.GaugeFunc("kdb_base_mapped", func() int64 { return mappedVal })
	}
	server := kdc.New(*realm, db, kdc.WithLogger(logger), kdc.WithRegistry(reg))
	l, err := kdc.Serve(server, *addr)
	if err != nil {
		log.Fatalf("kerberosd: %v", err)
	}
	if *admin != "" {
		a, err := obs.ServeAdmin(*admin, reg)
		if err != nil {
			log.Fatalf("kerberosd: %v", err)
		}
		defer a.Close()
		logger.Printf("admin listener (metrics, pprof) on %s", a.Addr())
	}
	role := "master"
	if *slave {
		role = "slave"
	}
	logger.Printf("serving realm %s (%s, %d principals) on %s", *realm, role, db.Len(), l.Addr())

	// The historical daemons shared one ndbm file on the master machine;
	// our in-memory store re-reads the file when another daemon (kadmind,
	// kpropd) has rewritten it.
	stopReload := make(chan struct{})
	if *reload > 0 {
		go func() {
			var lastMod time.Time
			if fi, err := os.Stat(*dbPath); err == nil {
				lastMod = fi.ModTime()
			}
			ticker := time.NewTicker(*reload)
			defer ticker.Stop()
			for {
				select {
				case <-stopReload:
					return
				case <-ticker.C:
					fi, err := os.Stat(*dbPath)
					if err != nil || !fi.ModTime().After(lastMod) {
						continue
					}
					lastMod = fi.ModTime()
					if err := db.Load(*dbPath); err != nil {
						logger.Printf("reloading database: %v", err)
						continue
					}
					logger.Printf("reloaded database (%d principals)", db.Len())
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopReload)
	l.Close()
	logger.Printf("served %d AS and %d TGS requests (%d errors)",
		server.Metrics().ASRequests.Load(), server.Metrics().TGSRequests.Load(),
		server.Metrics().Errors.Load())
}

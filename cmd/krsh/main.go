// Command krsh runs a command on a remote host, authenticating with
// Kerberos first and falling back to the .rhosts method if that fails
// (§7.1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kerberos/internal/apps/rsh"
	"kerberos/internal/client"
	"kerberos/internal/core"
)

func tktFile() string {
	if f := os.Getenv("KRBTKFILE"); f != "" {
		return f
	}
	return fmt.Sprintf("/tmp/tkt%d", os.Getuid())
}

func main() {
	var (
		realm = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		kdcs  = flag.String("kdc", "127.0.0.1:7500", "comma-separated KDC addresses")
		host  = flag.String("host", "priam", "remote host name (service instance)")
		addr  = flag.String("hostaddr", "127.0.0.1:7540", "remote krshd address")
		file  = flag.String("tktfile", tktFile(), "ticket file")
		user  = flag.String("user", "", "local username for the .rhosts fallback")
		ws    = flag.String("addr", "127.0.0.1", "this workstation's address")
		encr  = flag.Bool("x", false, "encrypted session: command and output travel as private messages")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: krsh [flags] COMMAND...")
		os.Exit(2)
	}
	command := strings.Join(flag.Args(), " ")
	service := core.Principal{Name: "rcmd", Instance: *host, Realm: *realm}

	// Try Kerberos when a ticket file exists.
	var krb *client.Client
	if cc, err := client.LoadCredCache(*file); err == nil {
		krb = client.New(cc.Principal(), &client.Config{
			Realms:  map[string][]string{*realm: strings.Split(*kdcs, ",")},
			Timeout: 3 * time.Second,
		})
		krb.Cache = cc
		krb.Addr = core.AddrFromString(*ws)
	}
	localUser := *user
	if localUser == "" && krb != nil {
		localUser = krb.Principal.Name
	}
	var res rsh.Result
	var err error
	if *encr {
		if krb == nil {
			fmt.Fprintln(os.Stderr, "krsh: -x requires Kerberos tickets (run kinit)")
			os.Exit(1)
		}
		res, err = rsh.RunPrivate(krb, *addr, service, command)
	} else {
		res, err = rsh.Run(krb, *addr, service, localUser, command)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "krsh:", err)
		os.Exit(1)
	}
	fmt.Println(res.Output)
	// Persist any freshly obtained service tickets.
	if krb != nil {
		_ = krb.Cache.Save(*file)
	}
}

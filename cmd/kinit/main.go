// Command kinit obtains a ticket-granting ticket (§6.1): "the user can
// run the kinit program to obtain a new ticket for the ticket-granting
// server. As when logging in, a password must be provided in order to
// get it."
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
)

// tktFile resolves the ticket file path like the classic library:
// $KRBTKFILE or /tmp/tkt<uid>.
func tktFile() string {
	if f := os.Getenv("KRBTKFILE"); f != "" {
		return f
	}
	return fmt.Sprintf("/tmp/tkt%d", os.Getuid())
}

func main() {
	var (
		realm   = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		kdcs    = flag.String("kdc", "127.0.0.1:7500", "comma-separated KDC addresses (master first)")
		user    = flag.String("user", "", "principal (name or name.instance)")
		life    = flag.Duration("life", 8*time.Hour, "requested ticket lifetime")
		file    = flag.String("tktfile", tktFile(), "ticket file")
		wsAddr  = flag.String("addr", "127.0.0.1", "this workstation's address")
		timeout = flag.Duration("timeout", 3*time.Second,
			"total budget for the KDC exchange, covering UDP retransmissions and failover to slave KDCs")
	)
	flag.Parse()
	if *user == "" {
		fmt.Fprintln(os.Stderr, "kinit: -user required")
		os.Exit(1)
	}
	p, err := core.ParsePrincipal(*user)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kinit:", err)
		os.Exit(1)
	}
	p = p.WithRealm(*realm)

	fmt.Fprintf(os.Stderr, "Password for %v: ", p)
	line, _ := bufio.NewReader(os.Stdin).ReadString('\n')
	password := strings.TrimRight(line, "\r\n")

	c := client.New(p, &client.Config{
		Realms:  map[string][]string{p.Realm: strings.Split(*kdcs, ",")},
		Timeout: *timeout,
	})
	c.Addr = core.AddrFromString(*wsAddr)
	cred, err := c.LoginService(password,
		core.TGSPrincipal(p.Realm, p.Realm), core.LifetimeFromDuration(*life))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kinit:", err)
		os.Exit(1)
	}
	if err := c.Cache.Save(*file); err != nil {
		fmt.Fprintln(os.Stderr, "kinit:", err)
		os.Exit(1)
	}
	fmt.Printf("ticket-granting ticket for %v, expires %v\n", p, cred.ExpiresAt().Local())
}

// Command kadmin is the administrator's interface to the KDBM (§5.2,
// §6.3): adding principals, changing other principals' passwords, and
// inspecting the database. "An administrator is required to enter the
// password for their admin instance name when they invoke the kadmin
// program."
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kadm"
)

func main() {
	var (
		realm = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		kdcs  = flag.String("kdc", "127.0.0.1:7500", "comma-separated KDC addresses")
		kdbm  = flag.String("kdbm", "127.0.0.1:7510", "KDBM (kadmind) address")
		admin = flag.String("admin", "", "administrator username (admin instance is implied)")
		ws    = flag.String("addr", "127.0.0.1", "this workstation's address")
	)
	flag.Parse()
	args := flag.Args()
	if *admin == "" || len(args) == 0 {
		usage()
	}

	adminP := core.Principal{Name: *admin, Instance: core.AdminInstance, Realm: *realm}
	in := bufio.NewReader(os.Stdin)
	fmt.Fprintf(os.Stderr, "Admin password for %v: ", adminP)
	line, _ := in.ReadString('\n')
	adminPw := strings.TrimRight(line, "\r\n")

	c := client.New(adminP, &client.Config{
		Realms:  map[string][]string{*realm: strings.Split(*kdcs, ",")},
		Timeout: 3 * time.Second,
	})
	c.Addr = core.AddrFromString(*ws)

	switch args[0] {
	case "add":
		if len(args) != 2 {
			usage()
		}
		target := mustPrincipal(args[1], *realm)
		fmt.Fprintf(os.Stderr, "Password for new principal %v: ", target)
		pwLine, _ := in.ReadString('\n')
		key := client.PasswordKey(target, strings.TrimRight(pwLine, "\r\n"))
		defer clear(key[:])
		check(kadm.AddPrincipal(c, *kdbm, adminPw, target, key, 0))
		fmt.Printf("added %v\n", target)

	case "addrandom":
		if len(args) != 2 {
			usage()
		}
		target := mustPrincipal(args[1], *realm)
		key, err := des.NewRandomKey()
		check(err)
		defer clear(key[:])
		check(kadm.AddPrincipal(c, *kdbm, adminPw, target, key, 0))
		fmt.Printf("added %v with a random key\n", target)

	case "cpw":
		if len(args) != 2 {
			usage()
		}
		target := mustPrincipal(args[1], *realm)
		fmt.Fprintf(os.Stderr, "New password for %v: ", target)
		pwLine, _ := in.ReadString('\n')
		key := client.PasswordKey(target, strings.TrimRight(pwLine, "\r\n"))
		defer clear(key[:])
		check(kadm.ChangeOtherPassword(c, *kdbm, adminPw, target, key))
		fmt.Printf("changed password for %v\n", target)

	case "list":
		listing, err := kadm.ListPrincipals(c, *kdbm, adminPw)
		check(err)
		fmt.Print(listing)

	default:
		usage()
	}
}

func mustPrincipal(s, realm string) core.Principal {
	p, err := core.ParsePrincipal(s)
	check(err)
	return p.WithRealm(realm)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kadmin:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: kadmin -admin NAME [flags] COMMAND
commands:
  add NAME[.INSTANCE]        add a principal (prompts for its password)
  addrandom NAME[.INSTANCE]  add a principal with a random key
  cpw NAME[.INSTANCE]        change a principal's password
  list                       list database entries`)
	os.Exit(2)
}

// Command kdb_init initializes a realm's master database (§6.3: "The
// Kerberos administrator's job begins with running a program to
// initialize the database"): it creates the essential principals — the
// ticket-granting service and the KDBM change-password service — plus an
// initial administrator, and writes the database file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdb"
)

func main() {
	var (
		realm   = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		dbPath  = flag.String("db", "principal.db", "database file to create")
		admin   = flag.String("admin", "", "username to register with an admin instance")
		aclPath = flag.String("acl", "kadm.acl", "ACL file to write when -admin is given")
	)
	flag.Parse()

	in := bufio.NewReader(os.Stdin)
	masterPw := prompt(in, "Master database password: ")
	db := kdb.New(des.StringToKey(masterPw, *realm))
	now := time.Now()

	tgsKey, err := des.NewRandomKey()
	check(err)
	defer clear(tgsKey[:])
	check(db.Add(core.TGSName, *realm, tgsKey, 0, "kdb_init", now))
	cpKey, err := des.NewRandomKey()
	check(err)
	defer clear(cpKey[:])
	check(db.Add(core.ChangePwName, core.ChangePwInstance, cpKey, 12, "kdb_init", now))

	if *admin != "" {
		adminPw := prompt(in, fmt.Sprintf("Password for %s.admin: ", *admin))
		p := core.Principal{Name: *admin, Instance: core.AdminInstance, Realm: *realm}
		check(db.Add(*admin, core.AdminInstance, client.PasswordKey(p, adminPw), 0, "kdb_init", now))
		acl := fmt.Sprintf("# KDBM access control list\n%s\n", p)
		check(os.WriteFile(*aclPath, []byte(acl), 0o600))
		fmt.Printf("wrote %s\n", *aclPath)
	}
	check(db.Save(*dbPath))
	fmt.Printf("initialized realm %s in %s (%d principals)\n", *realm, *dbPath, db.Len())
}

func prompt(in *bufio.Reader, msg string) string {
	fmt.Fprint(os.Stderr, msg)
	line, err := in.ReadString('\n')
	if err != nil && line == "" {
		check(err)
	}
	return strings.TrimRight(line, "\r\n")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdb_init:", err)
		os.Exit(1)
	}
}

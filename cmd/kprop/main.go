// Command kprop pushes the master database to slave kpropd daemons
// (§5.3, Figure 13), either once or on the hourly schedule the paper
// describes. It speaks kprop v2: slaves that advertise a verifiable
// (serial, digest) receive only the compressed journal segment they are
// missing; everything else falls back to a compressed full dump. Slaves
// are updated in parallel with bounded fan-out.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kprop"
	"kerberos/internal/obs"
)

func main() {
	var (
		realm    = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		dbPath   = flag.String("db", "principal.db", "master database file")
		slaves   = flag.String("slaves", "", "comma-separated kpropd addresses")
		interval = flag.Duration("interval", 0, "propagation interval (0 = push once and exit; the paper used 1h)")
		fanout   = flag.Int("fanout", kprop.DefaultFanout, "how many slaves to update concurrently (1 = serial)")
		full     = flag.Bool("full", false, "always send full dumps, never deltas")
		journal  = flag.Int("journal", kdb.DefaultJournalCap, "change-journal retention (entries); slaves further behind get a full dump")
		retries  = flag.Int("retries", 2, "per-slave retries within a round")
		backoff  = flag.Duration("backoff", 250*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
		reload   = flag.Duration("reload", 2*time.Second,
			"how often to re-read the database file when it changes (kadmind writes it); changes are journaled as deltas; 0 disables")
		admin = flag.String("admin", "",
			"admin listener address serving /metrics, /healthz and /debug/pprof (e.g. 127.0.0.1:7602); empty disables")
	)
	flag.Parse()
	if *slaves == "" {
		log.Fatal("kprop: -slaves required")
	}

	fmt.Fprint(os.Stderr, "Master database password: ")
	line, _ := bufio.NewReader(os.Stdin).ReadString('\n')
	masterPw := strings.TrimRight(line, "\r\n")

	db := kdb.New(des.StringToKey(masterPw, *realm))
	if err := db.Load(*dbPath); err != nil {
		log.Fatalf("kprop: %v", err)
	}
	db.SetJournalCap(*journal)
	logger := log.New(os.Stderr, "kprop ", log.LstdFlags)
	reg := obs.NewRegistry()
	reg.GaugeFunc("kprop_db_principals", func() int64 { return int64(db.Len()) })

	opts := []kprop.Option{
		kprop.WithRegistry(reg),
		kprop.WithFanout(*fanout),
		kprop.WithRetry(*retries, *backoff),
	}
	if *full {
		opts = append(opts, kprop.WithForceFull())
	}
	m := kprop.NewMaster(db, strings.Split(*slaves, ","), logger, opts...)

	if *admin != "" {
		a, err := obs.ServeAdmin(*admin, reg)
		if err != nil {
			log.Fatalf("kprop: %v", err)
		}
		defer a.Close()
		logger.Printf("admin listener (metrics, pprof) on %s", a.Addr())
	}

	if err := m.PropagateAll(); err != nil {
		logger.Printf("initial push: %v", err)
	}
	if *interval == 0 {
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	go m.Run(ctx, *interval)

	// kadmind owns the database file; when it changes, diff the new
	// contents into the journal so the churn ships as a delta instead of
	// restarting the lineage (which would force full dumps everywhere).
	stopReload := make(chan struct{})
	if *reload > 0 {
		go func() {
			var lastMod time.Time
			if fi, err := os.Stat(*dbPath); err == nil {
				lastMod = fi.ModTime()
			}
			ticker := time.NewTicker(*reload)
			defer ticker.Stop()
			for {
				select {
				case <-stopReload:
					return
				case <-ticker.C:
					fi, err := os.Stat(*dbPath)
					if err != nil || !fi.ModTime().After(lastMod) {
						continue
					}
					lastMod = fi.ModTime()
					data, err := os.ReadFile(*dbPath)
					if err != nil {
						logger.Printf("re-reading database: %v", err)
						continue
					}
					entries, _, err := kdb.ParseDumpFull(data)
					if err != nil {
						logger.Printf("re-reading database: %v", err)
						continue
					}
					n, err := db.SyncFrom(entries)
					if err != nil {
						logger.Printf("syncing database: %v", err)
						continue
					}
					if n > 0 {
						logger.Printf("journaled %d changes from %s (serial %d)", n, *dbPath, db.Serial())
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopReload)
	cancel()
}

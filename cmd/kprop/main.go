// Command kprop pushes the master database to slave kpropd daemons
// (§5.3, Figure 13), either once or on the hourly schedule the paper
// describes.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kprop"
)

func main() {
	var (
		realm    = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		dbPath   = flag.String("db", "principal.db", "master database file")
		slaves   = flag.String("slaves", "", "comma-separated kpropd addresses")
		interval = flag.Duration("interval", 0, "propagation interval (0 = push once and exit; the paper used 1h)")
	)
	flag.Parse()
	if *slaves == "" {
		log.Fatal("kprop: -slaves required")
	}

	fmt.Fprint(os.Stderr, "Master database password: ")
	line, _ := bufio.NewReader(os.Stdin).ReadString('\n')
	masterPw := strings.TrimRight(line, "\r\n")

	db := kdb.New(des.StringToKey(masterPw, *realm))
	if err := db.Load(*dbPath); err != nil {
		log.Fatalf("kprop: %v", err)
	}
	logger := log.New(os.Stderr, "kprop ", log.LstdFlags)
	m := kprop.NewMaster(db, strings.Split(*slaves, ","), logger)

	if err := m.PropagateAll(); err != nil {
		logger.Printf("initial push: %v", err)
	}
	if *interval == 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	go m.Run(ctx, *interval)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	cancel()
	_ = time.Second
}

// Command kervet is the realm's static-analysis suite: it loads and
// type-checks the repository from source (stdlib only — go/parser,
// go/types, go/importer; no x/tools) and enforces the invariants the
// compiler cannot see but the paper's security argument depends on:
//
//	consttime   secret keys and keyed checksums are compared in
//	            constant time (crypto/subtle), §2.1/§4.3
//	keyzero     key material materialized into locals is zeroized
//	            (somewhere) before return, §4.1
//	deferwipe   the wipes keyzero found cover EVERY exit path — early
//	            returns and panic paths included (kerflow CFG)
//	secretflow  key material never flows into fmt/log/error sinks,
//	            telemetry, or unsealed writes (kerflow taint)
//	lockflow    mutex discipline: per-path lock/unlock balance, no
//	            order inversions, no snapshot-before-lock races
//	            (kerflow lockset)
//	clockuse    protocol code reads time only through the injected
//	            clock abstraction, §2/§4.6
//	hotpath     //kerb:hotpath functions (the PR 1 zero-alloc AS/TGS
//	            path) stay free of fmt, map/closure allocation, and
//	            map-order nondeterminism
//	wiresym     exported wire structs with Encode have a matching
//	            Decode and a golden vector under internal/wire/testdata
//
// Usage:
//
//	kervet [flags] [packages]     # default ./...
//
//	-json                  emit findings as a JSON array on stdout
//	-baseline FILE         suppress findings recorded in FILE; only
//	                       new findings fail the run
//	-write-baseline FILE   record current findings into FILE and exit 0
//
// Diagnostics print as file:line: analyzer: message; the exit status is
// non-zero if any (non-baselined) diagnostic is emitted. Suppress a
// finding permanently with a justified directive:
// //kerb:ignore <analyzer> -- <reason>. Baseline entries are keyed on
// (analyzer, file, message) without line numbers, so unrelated edits
// that shift lines do not invalidate the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kerberos/internal/analysis"
	"kerberos/internal/analysis/clockuse"
	"kerberos/internal/analysis/consttime"
	"kerberos/internal/analysis/deferwipe"
	"kerberos/internal/analysis/hotpath"
	"kerberos/internal/analysis/keyzero"
	"kerberos/internal/analysis/lockflow"
	"kerberos/internal/analysis/secretflow"
	"kerberos/internal/analysis/wiresym"
)

// protocolPkgs are the packages whose time reads must flow through the
// clock abstraction: everywhere a skew window, lifetime, or replay
// decision is made. Observability, the workload driver, and the CLI
// tools legitimately read the wall clock.
var protocolPkgs = []string{
	"kerberos/internal/core",
	"kerberos/internal/kdc",
	"kerberos/internal/client",
	"kerberos/internal/replay",
	"kerberos/internal/wire",
	"kerberos/internal/des",
	"kerberos/internal/kprop",
}

// wirePkgs are where wire structs live; wiresym's Encode/Decode/golden
// contract applies there.
var wirePkgs = []string{
	"kerberos/internal/core",
	"kerberos/internal/wire",
	"kerberos/internal/kprop",
}

// lockPkgs hold the shard, store, and replay-cache mutexes whose
// discipline lockflow enforces.
var lockPkgs = []string{
	"kerberos/internal/kdb",
	"kerberos/internal/replay",
	"kerberos/internal/kdc",
	"kerberos/internal/kprop",
}

// noTaintPkgs are exempt from secretflow: the cipher implementation
// necessarily manipulates raw key bytes below the Seal boundary.
var noTaintPkgs = []string{
	"kerberos/internal/des",
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baseline := flag.String("baseline", "", "suppress findings recorded in this file")
	writeBaseline := flag.String("write-baseline", "", "record current findings into this file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kervet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range allAnalyzers(".") {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(flag.Args(), os.Stdout, options{
		json: *jsonOut, baseline: *baseline, writeBaseline: *writeBaseline,
	}))
}

type options struct {
	json          bool
	baseline      string
	writeBaseline string
}

func allAnalyzers(modRoot string) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		consttime.Analyzer,
		keyzero.Analyzer,
		deferwipe.Analyzer,
		secretflow.Analyzer,
		lockflow.Analyzer,
		clockuse.Analyzer,
		hotpath.Analyzer,
		wiresym.New(filepath.Join(modRoot, "internal", "wire", "testdata")),
	}
}

func run(patterns []string, out *os.File, opt options) int {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kervet:", err)
		return 2
	}
	analyzers := allAnalyzers(loader.ModRoot)
	for _, a := range analyzers {
		analysis.RegisterIgnorable(a.Name)
	}
	paths, err := loader.Match(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kervet:", err)
		return 2
	}
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kervet:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, analyzers, scope)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kervet:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for i := range diags {
		// Module-relative paths: stable in CI logs, clickable in editors,
		// and machine-independent in baseline files.
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if opt.writeBaseline != "" {
		if err := writeBaselineFile(opt.writeBaseline, diags); err != nil {
			fmt.Fprintln(os.Stderr, "kervet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "kervet: wrote %d finding(s) to %s\n", len(diags), opt.writeBaseline)
		return 0
	}
	if opt.baseline != "" {
		known, err := readBaselineFile(opt.baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kervet:", err)
			return 2
		}
		diags = filterBaselined(diags, known)
	}

	if opt.json {
		if err := printJSON(out, diags); err != nil {
			fmt.Fprintln(os.Stderr, "kervet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kervet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// scope decides which analyzers examine which packages.
func scope(a *analysis.Analyzer, pkg *analysis.Package) bool {
	switch a.Name {
	case "clockuse":
		return hasPrefix(pkg.Path, protocolPkgs)
	case "wiresym":
		return hasPrefix(pkg.Path, wirePkgs)
	case "lockflow":
		return hasPrefix(pkg.Path, lockPkgs)
	case "secretflow":
		return !hasPrefix(pkg.Path, noTaintPkgs)
	default:
		return true
	}
}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// ---- machine-readable output ----

// jsonDiag mirrors the fields CI consumers (and the problem matcher's
// JSON mode) need; line/col are 1-based.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(out *os.File, diags []analysis.Diagnostic) error {
	js := make([]jsonDiag, len(diags))
	for i, d := range diags {
		js[i] = jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ---- baseline ----

// baselineKey identifies a finding across line-number drift: the file,
// the analyzer, and the message, but not the position within the file.
func baselineKey(d analysis.Diagnostic) string {
	return d.Analyzer + "\t" + filepath.ToSlash(d.Pos.Filename) + "\t" + d.Message
}

func writeBaselineFile(path string, diags []analysis.Diagnostic) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# kervet baseline: one finding per line as analyzer<TAB>file<TAB>message.")
	fmt.Fprintln(w, "# Findings listed here are suppressed by `kervet -baseline`; new findings still fail.")
	for _, d := range diags {
		fmt.Fprintln(w, baselineKey(d))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func readBaselineFile(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	known := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		known[line]++
	}
	return known, sc.Err()
}

// filterBaselined drops findings present in the baseline, multiset-
// style: a baseline entry absorbs at most as many findings as it was
// recorded times, so a duplicated regression still fails.
func filterBaselined(diags []analysis.Diagnostic, known map[string]int) []analysis.Diagnostic {
	var fresh []analysis.Diagnostic
	for _, d := range diags {
		k := baselineKey(d)
		if known[k] > 0 {
			known[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh
}

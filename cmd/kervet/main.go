// Command kervet is the realm's static-analysis suite: it loads and
// type-checks the repository from source (stdlib only — go/parser,
// go/types, go/importer; no x/tools) and enforces the invariants the
// compiler cannot see but the paper's security argument depends on:
//
//	consttime  secret keys and keyed checksums are compared in
//	           constant time (crypto/subtle), §2.1/§4.3
//	keyzero    key material materialized into locals is zeroized on
//	           all return paths, §4.1
//	clockuse   protocol code reads time only through the injected
//	           clock abstraction, §2/§4.6
//	hotpath    //kerb:hotpath functions (the PR 1 zero-alloc AS/TGS
//	           path) stay free of fmt, map/closure allocation, and
//	           map-order nondeterminism
//	wiresym    exported wire structs with Encode have a matching
//	           Decode and a golden vector under internal/wire/testdata
//
// Usage:
//
//	kervet [packages]     # default ./...
//
// Diagnostics print as file:line: analyzer: message; the exit status is
// non-zero if any diagnostic is emitted. Suppress a finding with a
// justified directive: //kerb:ignore <analyzer> -- <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kerberos/internal/analysis"
	"kerberos/internal/analysis/clockuse"
	"kerberos/internal/analysis/consttime"
	"kerberos/internal/analysis/hotpath"
	"kerberos/internal/analysis/keyzero"
	"kerberos/internal/analysis/wiresym"
)

// protocolPkgs are the packages whose time reads must flow through the
// clock abstraction: everywhere a skew window, lifetime, or replay
// decision is made. Observability, the workload driver, and the CLI
// tools legitimately read the wall clock.
var protocolPkgs = []string{
	"kerberos/internal/core",
	"kerberos/internal/kdc",
	"kerberos/internal/client",
	"kerberos/internal/replay",
	"kerberos/internal/wire",
	"kerberos/internal/des",
	"kerberos/internal/kprop",
}

// wirePkgs are where wire structs live; wiresym's Encode/Decode/golden
// contract applies there.
var wirePkgs = []string{
	"kerberos/internal/core",
	"kerberos/internal/wire",
	"kerberos/internal/kprop",
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kervet [packages]\n\nAnalyzers:\n")
		for _, a := range allAnalyzers(".") {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(run(flag.Args(), os.Stdout))
}

func allAnalyzers(modRoot string) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		consttime.Analyzer,
		keyzero.Analyzer,
		clockuse.Analyzer,
		hotpath.Analyzer,
		wiresym.New(filepath.Join(modRoot, "internal", "wire", "testdata")),
	}
}

func run(patterns []string, out *os.File) int {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kervet:", err)
		return 2
	}
	analyzers := allAnalyzers(loader.ModRoot)
	for _, a := range analyzers {
		analysis.RegisterIgnorable(a.Name)
	}
	paths, err := loader.Match(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kervet:", err)
		return 2
	}
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kervet:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, analyzers, scope)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kervet:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		// Print module-relative paths: stable in CI logs, clickable in
		// editors.
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(out, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kervet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// scope decides which analyzers examine which packages.
func scope(a *analysis.Analyzer, pkg *analysis.Package) bool {
	switch a.Name {
	case "clockuse":
		return hasPrefix(pkg.Path, protocolPkgs)
	case "wiresym":
		return hasPrefix(pkg.Path, wirePkgs)
	default:
		return true
	}
}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

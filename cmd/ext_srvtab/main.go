// Command ext_srvtab extracts service keys into a srvtab file (§6.3):
// "some data (including the server's key) must be extracted from the
// database and installed in a file on the server's machine. The default
// file is /etc/srvtab."
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kadm"
)

func main() {
	var (
		realm = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		kdcs  = flag.String("kdc", "127.0.0.1:7500", "comma-separated KDC addresses")
		kdbm  = flag.String("kdbm", "127.0.0.1:7510", "KDBM (kadmind) address")
		admin = flag.String("admin", "", "administrator username")
		out   = flag.String("out", "srvtab", "srvtab file to write")
		ws    = flag.String("addr", "127.0.0.1", "this workstation's address")
	)
	flag.Parse()
	services := flag.Args()
	if *admin == "" || len(services) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ext_srvtab -admin NAME [flags] SERVICE.INSTANCE ...")
		os.Exit(2)
	}

	adminP := core.Principal{Name: *admin, Instance: core.AdminInstance, Realm: *realm}
	fmt.Fprintf(os.Stderr, "Admin password for %v: ", adminP)
	line, _ := bufio.NewReader(os.Stdin).ReadString('\n')
	adminPw := strings.TrimRight(line, "\r\n")

	c := client.New(adminP, &client.Config{
		Realms:  map[string][]string{*realm: strings.Split(*kdcs, ",")},
		Timeout: 3 * time.Second,
	})
	c.Addr = core.AddrFromString(*ws)

	tab := client.NewSrvtab()
	for _, svc := range services {
		p, err := core.ParsePrincipal(svc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ext_srvtab:", err)
			os.Exit(1)
		}
		p = p.WithRealm(*realm)
		key, kvno, err := kadm.ExtractKey(c, *kdbm, adminPw, p)
		defer clear(key[:])
		if err != nil {
			fmt.Fprintln(os.Stderr, "ext_srvtab:", err)
			os.Exit(1)
		}
		tab.Set(p, kvno, key)
		fmt.Printf("extracted key for %v (kvno %d)\n", p, kvno)
	}
	if err := tab.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "ext_srvtab:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// Command krshd is the Kerberized remote-shell daemon of §7.1. It
// authenticates clients with Kerberos first and falls back to .rhosts
// address checks, exactly as Athena's rshd did.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"kerberos/internal/apps/rsh"
	"kerberos/internal/client"
	"kerberos/internal/core"
)

func main() {
	var (
		realm    = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		hostname = flag.String("hostname", "priam", "this host's name (service instance)")
		srvtab   = flag.String("srvtab", "srvtab", "srvtab file with the rcmd.<host> key")
		addr     = flag.String("addr", "127.0.0.1:7540", "listen address")
		rhosts   = flag.String("rhosts", "", "comma-separated addr/user pairs to trust (fallback)")
	)
	flag.Parse()

	tab, err := client.LoadSrvtab(*srvtab)
	if err != nil {
		log.Fatalf("krshd: %v", err)
	}
	svcP := core.Principal{Name: "rcmd", Instance: *hostname, Realm: *realm}
	server := &rsh.Server{
		Hostname: *hostname,
		Svc:      client.NewService(svcP, tab),
		Rhosts:   rsh.NewRhosts(),
	}
	for _, pair := range strings.Split(*rhosts, ",") {
		if pair == "" {
			continue
		}
		host, user, ok := strings.Cut(pair, "/")
		if !ok {
			log.Fatalf("krshd: bad -rhosts entry %q", pair)
		}
		server.Rhosts.Allow(core.AddrFromString(host), user)
	}
	l, err := rsh.Serve(server, *addr)
	if err != nil {
		log.Fatalf("krshd: %v", err)
	}
	fmt.Fprintf(os.Stderr, "krshd: serving %v on %s\n", svcP, l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	l.Close()
}

// Command kdestroy erases the user's tickets (§6.1): run automatically
// at logout, or by hand when leaving a public workstation.
package main

import (
	"flag"
	"fmt"
	"os"

	"kerberos/internal/client"
)

func tktFile() string {
	if f := os.Getenv("KRBTKFILE"); f != "" {
		return f
	}
	return fmt.Sprintf("/tmp/tkt%d", os.Getuid())
}

func main() {
	file := flag.String("tktfile", tktFile(), "ticket file")
	quiet := flag.Bool("q", false, "no output on success")
	flag.Parse()

	if err := client.DestroyFile(*file); err != nil {
		fmt.Fprintln(os.Stderr, "kdestroy:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Println("Tickets destroyed.")
	}
}

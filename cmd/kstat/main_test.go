package main

import (
	"strings"
	"testing"
	"time"

	"kerberos/internal/obs"
)

// snapshotText builds a real registry snapshot so the parser is tested
// against exactly what obs.WriteText emits.
func snapshotText(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("kdc_as_requests").Add(120)
	reg.Gauge("kdc_db_principals").Set(5000)
	h := reg.Histogram("kdc_as_latency")
	for i := 0; i < 99; i++ {
		h.Observe(12 * time.Microsecond)
	}
	h.Observe(9 * time.Millisecond)
	var sh obs.SizeHistogram
	reg.RegisterSizeHistogram("kdc_batch_size", &sh)
	for _, n := range []int64{1, 1, 4, 17, 64} {
		sh.Observe(n)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestParseMetrics(t *testing.T) {
	s := parseMetrics(snapshotText(t), time.Now())
	if s.scalars["kdc_as_requests"] != 120 {
		t.Errorf("counter = %d", s.scalars["kdc_as_requests"])
	}
	if s.scalars["kdc_db_principals"] != 5000 {
		t.Errorf("gauge = %d", s.scalars["kdc_db_principals"])
	}
	if s.scalars["kdc_as_latency_count"] != 100 {
		t.Errorf("hist count = %d", s.scalars["kdc_as_latency_count"])
	}
	bs := s.buckets["kdc_as_latency"]
	if len(bs) == 0 || bs[len(bs)-1].count != 100 {
		t.Errorf("buckets = %v", bs)
	}
	if got := s.histBases(); len(got) != 1 || got[0] != "kdc_as_latency" {
		t.Errorf("histBases = %v", got)
	}
	// Size histograms parse into their own bucket map and base list.
	if got := s.sizeHistBases(); len(got) != 1 || got[0] != "kdc_batch_size" {
		t.Errorf("sizeHistBases = %v", got)
	}
	if s.scalars["kdc_batch_size_count"] != 5 || s.scalars["kdc_batch_size_max"] != 64 {
		t.Errorf("size hist scalars = %v", s.scalars)
	}
	sbs := s.sizeBuckets["kdc_batch_size"]
	if len(sbs) == 0 || sbs[len(sbs)-1].count != 5 {
		t.Errorf("size buckets = %v", sbs)
	}
	if len(s.buckets["kdc_batch_size"]) != 0 {
		t.Error("size buckets leaked into the duration bucket map")
	}
}

func TestRender(t *testing.T) {
	now := time.Now()
	prev := parseMetrics("kdc_as_requests 100\n", now.Add(-2*time.Second))
	cur := parseMetrics(snapshotText(t), now)
	var b strings.Builder
	render(&b, "127.0.0.1:7600", cur, prev)
	out := b.String()
	for _, want := range []string{
		"kdc_as_requests", "10.0/s", "kdc_as_latency", "p99", "p50",
		"kdc_batch_size", "mean 17.4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Histogram component scalars fold into the histogram block, not the
	// scalar table.
	if strings.Contains(out, "kdc_as_latency_p50_ns") {
		t.Errorf("histogram field leaked into scalar table:\n%s", out)
	}
	if strings.Contains(out, "kdc_batch_size_p50") || strings.Contains(out, "kdc_batch_size_sum") {
		t.Errorf("size histogram field leaked into scalar table:\n%s", out)
	}
}

// TestRenderPropagationPanel: a kprop master registry gets the
// propagation panel — per-slave lag rows, delta/full mix, bytes rate —
// and labeled gauges stay out of the flat scalar table.
func TestRenderPropagationPanel(t *testing.T) {
	now := time.Now()
	text := "kprop_serial 120\n" +
		"kprop_delta_rounds 9\n" +
		"kprop_full_rounds 1\n" +
		"kprop_bytes 5000\n" +
		"kprop_delta_bytes 800\n" +
		"kprop_full_bytes 4200\n" +
		"kprop_slave_lag{slave=\"10.0.0.2:7520\"} 0\n" +
		"kprop_slave_lag{slave=\"10.0.0.3:7520\"} 40\n"
	prev := parseMetrics("kprop_bytes 3000\n", now.Add(-2*time.Second))
	cur := parseMetrics(text, now)
	var b strings.Builder
	render(&b, "127.0.0.1:7602", cur, prev)
	out := b.String()
	for _, want := range []string{
		"propagation",
		"9 delta / 1 full (90% delta)",
		"slave 10.0.0.3:7520",
		"lag 40 serials",
		"(1000.0/s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "kprop_slave_lag{") {
		t.Errorf("labeled gauge leaked into scalar table:\n%s", out)
	}

	// A slave-side registry gets its own flavor of the panel.
	slave := parseMetrics("kpropd_serial 80\nkpropd_deltas 7\nkpropd_fulls 2\n"+
		"kpropd_resyncs 1\nkpropd_rejected 0\nkpropd_bytes 900\nkpropd_last_bytes 120\n", now)
	b.Reset()
	render(&b, "x", slave, nil)
	if out := b.String(); !strings.Contains(out, "7 delta / 2 full, 1 resyncs") {
		t.Errorf("slave panel missing install mix:\n%s", out)
	}

	// Registries without propagation metrics are untouched.
	b.Reset()
	render(&b, "x", parseMetrics("kdc_as_requests 1\n", now), nil)
	if strings.Contains(b.String(), "propagation") {
		t.Errorf("propagation panel rendered for a KDC registry:\n%s", b.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]bucket{{1000, 0}, {2000, 0}}); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]bucket{{1000, 10}, {2000, 10}, {4000, 90}})
	if len([]rune(got)) != 3 {
		t.Errorf("sparkline = %q", got)
	}
	if strings.ContainsRune(got, ' ') && !strings.HasSuffix(got, "█") {
		t.Errorf("sparkline scaling off: %q", got)
	}
}

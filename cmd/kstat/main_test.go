package main

import (
	"strings"
	"testing"
	"time"

	"kerberos/internal/obs"
)

// snapshotText builds a real registry snapshot so the parser is tested
// against exactly what obs.WriteText emits.
func snapshotText(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("kdc_as_requests").Add(120)
	reg.Gauge("kdc_db_principals").Set(5000)
	h := reg.Histogram("kdc_as_latency")
	for i := 0; i < 99; i++ {
		h.Observe(12 * time.Microsecond)
	}
	h.Observe(9 * time.Millisecond)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestParseMetrics(t *testing.T) {
	s := parseMetrics(snapshotText(t), time.Now())
	if s.scalars["kdc_as_requests"] != 120 {
		t.Errorf("counter = %d", s.scalars["kdc_as_requests"])
	}
	if s.scalars["kdc_db_principals"] != 5000 {
		t.Errorf("gauge = %d", s.scalars["kdc_db_principals"])
	}
	if s.scalars["kdc_as_latency_count"] != 100 {
		t.Errorf("hist count = %d", s.scalars["kdc_as_latency_count"])
	}
	bs := s.buckets["kdc_as_latency"]
	if len(bs) == 0 || bs[len(bs)-1].count != 100 {
		t.Errorf("buckets = %v", bs)
	}
	if got := s.histBases(); len(got) != 1 || got[0] != "kdc_as_latency" {
		t.Errorf("histBases = %v", got)
	}
}

func TestRender(t *testing.T) {
	now := time.Now()
	prev := parseMetrics("kdc_as_requests 100\n", now.Add(-2*time.Second))
	cur := parseMetrics(snapshotText(t), now)
	var b strings.Builder
	render(&b, "127.0.0.1:7600", cur, prev)
	out := b.String()
	for _, want := range []string{"kdc_as_requests", "10.0/s", "kdc_as_latency", "p99", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Histogram component scalars fold into the histogram block, not the
	// scalar table.
	if strings.Contains(out, "kdc_as_latency_p50_ns") {
		t.Errorf("histogram field leaked into scalar table:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]bucket{{1000, 0}, {2000, 0}}); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]bucket{{1000, 10}, {2000, 10}, {4000, 90}})
	if len([]rune(got)) != 3 {
		t.Errorf("sparkline = %q", got)
	}
	if strings.ContainsRune(got, ' ') && !strings.HasSuffix(got, "█") {
		t.Errorf("sparkline scaling off: %q", got)
	}
}

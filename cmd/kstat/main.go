// Command kstat is a live dashboard over a Kerberos server's admin
// listener (kerberosd -admin, or anything serving an obs.Registry via
// obs.ServeAdmin). It polls the /metrics text snapshot, derives
// per-second rates from successive scrapes, and renders counters,
// gauges, and latency histograms (p50/p95/p99 plus a bucket sparkline)
// in place.
//
//	kstat -addr 127.0.0.1:7600             # refresh every 2s
//	kstat -addr 127.0.0.1:7600 -once       # one snapshot, then exit
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one parsed scrape: scalar metrics by name, duration
// histogram buckets by base name in le_ns order, and size histogram
// buckets (unitless counts — batch sizes, window occupancy) in le order.
type sample struct {
	when        time.Time
	scalars     map[string]int64
	buckets     map[string][]bucket
	sizeBuckets map[string][]bucket
}

type bucket struct {
	leNS  int64 // upper bound (ns for duration hists, a count for size hists); -1 for +Inf
	count int64 // cumulative
}

// parseMetrics reads the admin listener's text format (see
// obs.Registry.WriteText): "name value" lines plus cumulative
// name_bucket{le_ns="bound"} (duration) and name_bucket{le="bound"}
// (size) lines.
func parseMetrics(text string, when time.Time) *sample {
	s := &sample{when: when, scalars: map[string]int64{},
		buckets: map[string][]bucket{}, sizeBuckets: map[string][]bucket{}}
	for _, line := range strings.Split(text, "\n") {
		name, value, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok || name == "" {
			continue
		}
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			continue
		}
		if base, rest, isBucket := strings.Cut(name, "_bucket{le_ns=\""); isBucket {
			if le, ok := parseBound(rest); ok {
				s.buckets[base] = append(s.buckets[base], bucket{leNS: le, count: n})
			}
			continue
		}
		if base, rest, isBucket := strings.Cut(name, "_bucket{le=\""); isBucket {
			if le, ok := parseBound(rest); ok {
				s.sizeBuckets[base] = append(s.sizeBuckets[base], bucket{leNS: le, count: n})
			}
			continue
		}
		s.scalars[name] = n
	}
	return s
}

// parseBound decodes the tail of a bucket label: `bound"}` where bound
// is an integer or +Inf (reported as -1).
func parseBound(rest string) (int64, bool) {
	bound := strings.TrimSuffix(rest, "\"}")
	if bound == "+Inf" {
		return -1, true
	}
	le, err := strconv.ParseInt(bound, 10, 64)
	return le, err == nil
}

// histBases returns the base names that look like duration histograms
// (a _count companion plus nanosecond quantile lines), sorted.
func (s *sample) histBases() []string {
	var bases []string
	for name := range s.scalars {
		if base, ok := strings.CutSuffix(name, "_count"); ok {
			if _, ok := s.scalars[base+"_p50_ns"]; ok {
				bases = append(bases, base)
			}
		}
	}
	sort.Strings(bases)
	return bases
}

// sizeHistBases returns the base names that look like size histograms:
// a _count companion plus unitless quantile lines (_p50 without _ns).
func (s *sample) sizeHistBases() []string {
	var bases []string
	for name := range s.scalars {
		if base, ok := strings.CutSuffix(name, "_count"); ok {
			if _, isSize := s.scalars[base+"_p50"]; isSize {
				if _, isDur := s.scalars[base+"_p50_ns"]; !isDur {
					bases = append(bases, base)
				}
			}
		}
	}
	sort.Strings(bases)
	return bases
}

// isHistField reports whether name belongs to one of the histogram
// families (duration fields for bases, unitless fields for sizeBases),
// so the scalar table can skip it.
func isHistField(name string, bases, sizeBases []string) bool {
	for _, b := range bases {
		if strings.HasPrefix(name, b+"_") {
			switch strings.TrimPrefix(name, b+"_") {
			case "count", "sum_ns", "max_ns", "p50_ns", "p95_ns", "p99_ns":
				return true
			}
		}
	}
	for _, b := range sizeBases {
		if strings.HasPrefix(name, b+"_") {
			switch strings.TrimPrefix(name, b+"_") {
			case "count", "sum", "max", "p50", "p99":
				return true
			}
		}
	}
	return false
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// sparkline renders per-bucket (non-cumulative) counts as a compact bar
// row, scaled to the largest bucket.
func sparkline(bs []bucket) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	prev, peak := int64(0), int64(0)
	per := make([]int64, len(bs))
	for i, b := range bs {
		per[i] = b.count - prev
		prev = b.count
		if per[i] > peak {
			peak = per[i]
		}
	}
	if peak == 0 {
		return ""
	}
	var out strings.Builder
	for _, n := range per {
		idx := int(n * int64(len(levels)-1) / peak)
		if n > 0 && idx == 0 {
			idx = 1
		}
		out.WriteRune(levels[idx])
	}
	return out.String()
}

// render writes the dashboard for cur, with rates derived against prev
// (which may be nil on the first scrape).
func render(w io.Writer, addr string, cur, prev *sample) {
	fmt.Fprintf(w, "kstat %s  %s\n\n", addr, cur.when.Format("15:04:05"))

	bases := cur.histBases()
	sizeBases := cur.sizeHistBases()
	var names []string
	for name := range cur.scalars {
		// Labeled series (e.g. kprop_slave_lag{slave="..."}) render in
		// their own panel, not the flat scalar table.
		if !isHistField(name, bases, sizeBases) && !strings.Contains(name, "{") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if startupPanelMetrics[name] {
			continue // rendered in the startup/memory panel below
		}
		v := cur.scalars[name]
		rate := ""
		if prev != nil {
			if dt := cur.when.Sub(prev.when).Seconds(); dt > 0 {
				if pv, ok := prev.scalars[name]; ok && v >= pv {
					rate = fmt.Sprintf("  %8.1f/s", float64(v-pv)/dt)
				}
			}
		}
		fmt.Fprintf(w, "  %-28s %12d%s\n", name, v, rate)
	}

	renderStartup(w, cur)
	renderShards(w, cur, prev)
	renderPropagation(w, cur, prev)

	for _, base := range bases {
		fmt.Fprintf(w, "\n  %s  (n=%d)\n", base, cur.scalars[base+"_count"])
		fmt.Fprintf(w, "    p50 %-10s p95 %-10s p99 %-10s max %-10s\n",
			fmtDur(cur.scalars[base+"_p50_ns"]), fmtDur(cur.scalars[base+"_p95_ns"]),
			fmtDur(cur.scalars[base+"_p99_ns"]), fmtDur(cur.scalars[base+"_max_ns"]))
		if bs := cur.buckets[base]; len(bs) > 0 {
			lo, hi := bs[0].leNS, bs[len(bs)-1].leNS
			hiLabel := "+Inf"
			if hi >= 0 {
				hiLabel = fmtDur(hi)
			}
			fmt.Fprintf(w, "    [%s … %s] %s\n", fmtDur(lo), hiLabel, sparkline(bs))
		}
	}

	// Size histograms: batch widths, gather-window occupancy — unitless
	// counts, so the quantiles and bounds render as plain integers.
	for _, base := range sizeBases {
		count := cur.scalars[base+"_count"]
		fmt.Fprintf(w, "\n  %s  (n=%d)\n", base, count)
		mean := ""
		if count > 0 {
			mean = fmt.Sprintf(" mean %-8.1f", float64(cur.scalars[base+"_sum"])/float64(count))
		}
		fmt.Fprintf(w, "    p50 %-10d p99 %-10d max %-10d%s\n",
			cur.scalars[base+"_p50"], cur.scalars[base+"_p99"], cur.scalars[base+"_max"], mean)
		if bs := cur.sizeBuckets[base]; len(bs) > 0 {
			lo, hi := bs[0].leNS, bs[len(bs)-1].leNS
			hiLabel := "+Inf"
			if hi >= 0 {
				hiLabel = strconv.FormatInt(hi, 10)
			}
			fmt.Fprintf(w, "    [%d … %s] %s\n", lo, hiLabel, sparkline(bs))
		}
	}
}

// rate formats the per-second growth of a counter between scrapes, or
// "" when there is no prior sample to difference against.
func rate(cur, prev *sample, name string) string {
	if prev == nil {
		return ""
	}
	dt := cur.when.Sub(prev.when).Seconds()
	pv, ok := prev.scalars[name]
	if dt <= 0 || !ok || cur.scalars[name] < pv {
		return ""
	}
	return fmt.Sprintf(" (%.1f/s)", float64(cur.scalars[name]-pv)/dt)
}

// startupPanelMetrics are the cold-start gauges a segment-log
// kerberosd exports; they render as one panel instead of scattered
// rows in the scalar table.
var startupPanelMetrics = map[string]bool{
	"kdb_startup_ms":     true,
	"kdb_replay_records": true,
	"kdb_resident_bytes": true,
	"kdb_base_mapped":    true,
}

// renderStartup draws the startup/memory panel when the scraped
// registry belongs to a segment-log kerberosd: how long the realm took
// to come up (slowest shard), how much of that was segment-tail
// replay, and what the loaded base keeps resident.
func renderStartup(w io.Writer, cur *sample) {
	ms, ok := cur.scalars["kdb_startup_ms"]
	if !ok {
		return
	}
	base := "decoded (flat or unmapped base)"
	if cur.scalars["kdb_base_mapped"] == 1 {
		base = "mmapped KDB4 snapshot"
	}
	fmt.Fprintf(w, "\n  startup / memory\n")
	fmt.Fprintf(w, "    cold start %-8s replayed %d tail records\n",
		fmt.Sprintf("%dms", ms), cur.scalars["kdb_replay_records"])
	fmt.Fprintf(w, "    resident %s  base: %s\n",
		fmtBytes(cur.scalars["kdb_resident_bytes"]), base)
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// renderShards draws the per-shard panel when the scraped registry
// belongs to a sharded kerberosd: each shard's principal count, journal
// serial, and mutation rate (serials per second between scrapes).
func renderShards(w io.Writer, cur, prev *sample) {
	n, ok := cur.scalars["kdb_shards"]
	if !ok || n <= 1 {
		return
	}
	fmt.Fprintf(w, "\n  shards (%d)\n", n)
	for i := int64(0); i < n; i++ {
		lenName := fmt.Sprintf(`kdb_shard_len{shard="%d"}`, i)
		serName := fmt.Sprintf(`kdb_shard_serial{shard="%d"}`, i)
		if _, ok := cur.scalars[lenName]; !ok {
			continue
		}
		fmt.Fprintf(w, "    shard %-4d %10d principals  serial %-10d%s\n",
			i, cur.scalars[lenName], cur.scalars[serName], rate(cur, prev, serName))
	}
}

// renderPropagation draws the kprop/kpropd panel when the scraped
// registry belongs to a propagation daemon: the delta/full round mix,
// bytes-on-wire rate, and per-slave replication lag in journal serials.
func renderPropagation(w io.Writer, cur, prev *sample) {
	_, isMaster := cur.scalars["kprop_serial"]
	_, isSlave := cur.scalars["kpropd_serial"]
	if !isMaster && !isSlave {
		return
	}
	fmt.Fprintf(w, "\n  propagation\n")
	if isMaster {
		deltas, fulls := cur.scalars["kprop_delta_rounds"], cur.scalars["kprop_full_rounds"]
		mix := "no rounds yet"
		if total := deltas + fulls; total > 0 {
			mix = fmt.Sprintf("%d delta / %d full (%.0f%% delta)",
				deltas, fulls, 100*float64(deltas)/float64(total))
		}
		fmt.Fprintf(w, "    serial %-10d rounds: %s\n", cur.scalars["kprop_serial"], mix)
		fmt.Fprintf(w, "    bytes on wire %d%s  delta %d  full %d\n",
			cur.scalars["kprop_bytes"], rate(cur, prev, "kprop_bytes"),
			cur.scalars["kprop_delta_bytes"], cur.scalars["kprop_full_bytes"])
	}
	if isSlave {
		fmt.Fprintf(w, "    serial %-10d installed: %d delta / %d full, %d resyncs, %d rejected\n",
			cur.scalars["kpropd_serial"], cur.scalars["kpropd_deltas"],
			cur.scalars["kpropd_fulls"], cur.scalars["kpropd_resyncs"],
			cur.scalars["kpropd_rejected"])
		fmt.Fprintf(w, "    bytes received %d%s  last update %d bytes\n",
			cur.scalars["kpropd_bytes"], rate(cur, prev, "kpropd_bytes"),
			cur.scalars["kpropd_last_bytes"])
	}
	var lags []string
	for name := range cur.scalars {
		if strings.HasPrefix(name, `kprop_slave_lag{slave="`) {
			lags = append(lags, name)
		}
	}
	sort.Strings(lags)
	for _, name := range lags {
		addr := strings.TrimSuffix(strings.TrimPrefix(name, `kprop_slave_lag{slave="`), `"}`)
		fmt.Fprintf(w, "    slave %-24s lag %d serials\n", addr, cur.scalars[name])
	}
}

func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("kstat: %s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "admin listener address (kerberosd -admin)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "print one snapshot and exit")
	)
	flag.Parse()
	url := "http://" + *addr + "/metrics"

	var prev *sample
	for {
		text, err := scrape(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kstat: %v\n", err)
			os.Exit(1)
		}
		cur := parseMetrics(text, time.Now())
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear and home
		}
		render(os.Stdout, *addr, cur, prev)
		if *once {
			return
		}
		prev = cur
		time.Sleep(*interval)
	}
}

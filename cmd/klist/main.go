// Command klist displays the tickets in the user's ticket file (§6.1):
// "A user executing the klist command out of curiosity may be surprised
// at all the tickets which have silently been obtained on her/his
// behalf."
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kerberos/internal/client"
)

func tktFile() string {
	if f := os.Getenv("KRBTKFILE"); f != "" {
		return f
	}
	return fmt.Sprintf("/tmp/tkt%d", os.Getuid())
}

func main() {
	file := flag.String("tktfile", tktFile(), "ticket file")
	flag.Parse()

	cc, err := client.LoadCredCache(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "klist:", err)
		os.Exit(1)
	}
	fmt.Printf("Ticket file: %s\nPrincipal:   %v\n\n", *file, cc.Principal())
	fmt.Printf("%-24s %-24s %s\n", "Issued", "Expires", "Principal")
	now := time.Now()
	for _, c := range cc.List() {
		status := ""
		if !c.Valid(now) {
			status = "  (expired)"
		}
		fmt.Printf("%-24s %-24s %v%s\n",
			c.Issued.Go().Local().Format("Jan 2 15:04:05 2006"),
			c.ExpiresAt().Local().Format("Jan 2 15:04:05 2006"),
			c.Service, status)
	}
}

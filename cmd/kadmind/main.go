// Command kadmind is the KDBM administration server of §5: the only
// daemon with write access to the database, so it runs exclusively on
// the master machine (Figure 11). It authorizes self-service password
// changes directly and everything else against the ACL file; every
// request, permitted or denied, is logged.
//
// The database is opened write-through: every change lands in the file
// before the reply goes out, so the colocated kerberosd (which re-reads
// the file on change) and the hourly kprop always see current data —
// the role ndbm played on the Athena master.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"kerberos/internal/des"
	"kerberos/internal/kadm"
	"kerberos/internal/kdb"
)

func main() {
	var (
		realm   = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		dbPath  = flag.String("db", "principal.db", "master database file")
		aclPath = flag.String("acl", "kadm.acl", "access control list file")
		addr    = flag.String("addr", "127.0.0.1:7510", "listen address (tcp)")
	)
	// -save-interval is accepted for compatibility; the store is
	// write-through so there is nothing left to save periodically.
	flag.Int("save-interval", 0, "obsolete: the database is write-through")
	flag.Parse()

	fmt.Fprint(os.Stderr, "Master database password: ")
	line, _ := bufio.NewReader(os.Stdin).ReadString('\n')
	masterPw := strings.TrimRight(line, "\r\n")

	store, err := kdb.OpenFileStore(*dbPath)
	if err != nil {
		log.Fatalf("kadmind: %v", err)
	}
	db := kdb.NewWithStore(des.StringToKey(masterPw, *realm), store)
	acl, err := kadm.LoadACL(*aclPath)
	if err != nil {
		log.Fatalf("kadmind: %v", err)
	}
	logger := log.New(os.Stderr, "kadmind ", log.LstdFlags)
	server := kadm.NewServer(*realm, db, acl, kadm.WithLogger(logger))
	l, err := kadm.Serve(server, *addr)
	if err != nil {
		log.Fatalf("kadmind: %v", err)
	}
	logger.Printf("KDBM for realm %s on %s (%d principals, %d ACL entries)",
		*realm, l.Addr(), db.Len(), acl.Len())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	l.Close()
}

// Command kpropd is the slave-side propagation daemon of §5.3: it
// receives updates from kprop — incremental deltas when its (serial,
// digest) checks out against the master's journal, full database dumps
// otherwise — verifies the checksum sealed in the master database key,
// installs verified updates atomically into the local read-only copy,
// and saves them crash-safely for the colocated slave kerberosd.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kprop"
	"kerberos/internal/obs"
)

func main() {
	var (
		realm  = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		dbPath = flag.String("db", "principal.slave.db", "slave database file")
		addr   = flag.String("addr", "127.0.0.1:7520", "listen address (tcp)")
		admin  = flag.String("admin", "",
			"admin listener address serving /metrics, /healthz and /debug/pprof (e.g. 127.0.0.1:7603); empty disables")
	)
	flag.Parse()

	fmt.Fprint(os.Stderr, "Master database password: ")
	line, _ := bufio.NewReader(os.Stdin).ReadString('\n')
	masterPw := strings.TrimRight(line, "\r\n")

	db := kdb.New(des.StringToKey(masterPw, *realm))
	if err := db.Load(*dbPath); err != nil && !os.IsNotExist(err) {
		// A fresh slave starts empty; anything else is fatal.
		if _, statErr := os.Stat(*dbPath); statErr == nil {
			log.Fatalf("kpropd: %v", err)
		}
	}
	logger := log.New(os.Stderr, "kpropd ", log.LstdFlags)
	reg := obs.NewRegistry()
	reg.GaugeFunc("kpropd_db_principals", func() int64 { return int64(db.Len()) })
	slave := kprop.NewSlave(db, logger, kprop.WithRegistry(reg))
	l, err := kprop.Serve(slave, *addr)
	if err != nil {
		log.Fatalf("kpropd: %v", err)
	}
	logger.Printf("receiving for realm %s on %s", *realm, l.Addr())

	if *admin != "" {
		a, err := obs.ServeAdmin(*admin, reg)
		if err != nil {
			log.Fatalf("kpropd: %v", err)
		}
		defer a.Close()
		logger.Printf("admin listener (metrics, pprof) on %s", a.Addr())
	}

	// Persist each installed update. Save writes via temp+fsync+rename,
	// so a crash mid-save leaves the previous dump intact.
	stop := make(chan struct{})
	go func() {
		last := uint64(0)
		ticker := time.NewTicker(2 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := slave.Updates(); n != last {
					last = n
					if err := db.Save(*dbPath); err != nil {
						logger.Printf("saving: %v", err)
					} else {
						logger.Printf("saved update %d to %s (serial %d)", n, *dbPath, db.Serial())
					}
				}
			case <-stop:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	l.Close()
}

// Command kpasswd changes the user's Kerberos password (§5.2): "They
// are required to enter their old password when they invoke the program.
// This password is used to fetch a ticket for the KDBM server."
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kadm"
)

func main() {
	var (
		realm = flag.String("realm", "ATHENA.MIT.EDU", "realm name")
		kdcs  = flag.String("kdc", "127.0.0.1:7500", "comma-separated KDC addresses")
		kdbm  = flag.String("kdbm", "127.0.0.1:7510", "KDBM (kadmind) address on the master")
		user  = flag.String("user", "", "principal (name or name.instance)")
		ws    = flag.String("addr", "127.0.0.1", "this workstation's address")
	)
	flag.Parse()
	if *user == "" {
		fmt.Fprintln(os.Stderr, "kpasswd: -user required")
		os.Exit(1)
	}
	p, err := core.ParsePrincipal(*user)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kpasswd:", err)
		os.Exit(1)
	}
	p = p.WithRealm(*realm)

	in := bufio.NewReader(os.Stdin)
	read := func(prompt string) string {
		fmt.Fprint(os.Stderr, prompt)
		line, _ := in.ReadString('\n')
		return strings.TrimRight(line, "\r\n")
	}
	oldPw := read(fmt.Sprintf("Old password for %v: ", p))
	newPw := read("New password: ")
	if read("Retype new password: ") != newPw {
		fmt.Fprintln(os.Stderr, "kpasswd: passwords do not match")
		os.Exit(1)
	}

	c := client.New(p, &client.Config{
		Realms:  map[string][]string{p.Realm: strings.Split(*kdcs, ",")},
		Timeout: 3 * time.Second,
	})
	c.Addr = core.AddrFromString(*ws)
	if err := kadm.ChangePassword(c, *kdbm, oldPw, newPw); err != nil {
		fmt.Fprintln(os.Stderr, "kpasswd:", err)
		os.Exit(1)
	}
	fmt.Println("Password changed.")
}

// Command ktrace regenerates Figure 9 of the paper as an annotated wire
// trace: it stands up an in-process realm, performs the three
// authentication phases, and prints every message as an eavesdropper
// would see it (sealed fields are opaque lengths) alongside what each
// authorized party decrypts.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kerberos"
	"kerberos/internal/core"
)

func main() {
	hex := flag.Bool("hex", false, "also hexdump each message")
	flag.Parse()

	realm, err := kerberos.NewRealm(kerberos.RealmConfig{
		Name: "ATHENA.MIT.EDU", MasterPassword: "trace-master",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer realm.Close()
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		log.Fatal(err)
	}
	srvtab, err := realm.AddService("rlogin", "priam")
	if err != nil {
		log.Fatal(err)
	}

	show := func(arrow, what string, msg []byte) {
		fmt.Printf("%-14s %s\n", arrow, core.Describe(msg))
		_ = what
		if *hex {
			fmt.Println(indent(core.Hexdump(msg, 64)))
		}
	}
	note := func(format string, args ...any) { fmt.Printf("%14s %s\n", "", fmt.Sprintf(format, args...)) }

	fmt.Println("Figure 9: the Kerberos authentication protocols, on the wire")
	fmt.Println()

	// ---- Phase 1: initial ticket (Figure 5) ---------------------------
	fmt.Println("Phase 1 — getting the initial ticket (Figure 5)")
	user := kerberos.NewClient(kerberos.Principal{Name: "jis", Realm: realm.Name}, realm.ClientConfig())
	user.Addr = kerberos.Addr{127, 0, 0, 1}

	// Reconstruct the messages the library exchanges, so each can be
	// printed. (Identical to what Client.Login sends.)
	asReq := &core.AuthRequest{
		Client:  core.Principal{Name: "jis", Realm: realm.Name},
		Service: core.TGSPrincipal(realm.Name, realm.Name),
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(core.NowFunc()),
	}
	show("C -> AS:", "as-req", asReq.Encode())
	asRaw := realm.KDC.Handle(asReq.Encode(), core.Addr{127, 0, 0, 1})
	show("AS -> C:", "as-rep", asRaw)
	asRep, err := core.DecodeAuthReply(asRaw)
	if err != nil {
		log.Fatal(err)
	}
	userKey := kerberos.PasswordKey(core.Principal{Name: "jis", Realm: realm.Name}, "zanzibar")
	defer clear(userKey[:])
	tgtPart, err := asRep.Open(userKey)
	if err != nil {
		log.Fatal(err)
	}
	note("C decrypts with the password key: session key + TGT (still sealed for the TGS), life %v", tgtPart.Life.Duration())

	// ---- Phase 2: server ticket via the TGS (Figure 8) ----------------
	fmt.Println()
	fmt.Println("Phase 2 — getting a server ticket (Figure 8)")
	auth := core.NewAuthenticator(core.Principal{Name: "jis", Realm: realm.Name},
		core.Addr{127, 0, 0, 1}, core.NowFunc(), 0)
	tgsReq := &core.TGSRequest{
		APReq: core.APRequest{
			TicketRealm:   realm.Name,
			Ticket:        tgtPart.Ticket,
			Authenticator: auth.Seal(tgtPart.SessionKey),
		},
		Service: core.Principal{Name: "rlogin", Instance: "priam", Realm: realm.Name},
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(core.NowFunc()),
	}
	show("C -> TGS:", "tgs-req", tgsReq.Encode())
	tgsRaw := realm.KDC.Handle(tgsReq.Encode(), core.Addr{127, 0, 0, 1})
	show("TGS -> C:", "tgs-rep", tgsRaw)
	tgsRep, err := core.DecodeAuthReply(tgsRaw)
	if err != nil {
		log.Fatal(core.IfErrorMessage(tgsRaw))
	}
	svcPart, err := tgsRep.Open(tgtPart.SessionKey)
	if err != nil {
		log.Fatal(err)
	}
	note("C decrypts with the TGT session key — no password needed; ticket for %v", svcPart.Server)

	// ---- Phase 3: the application exchange (Figures 6 and 7) ----------
	fmt.Println()
	fmt.Println("Phase 3 — requesting the service, with mutual authentication (Figures 6–7)")
	auth2 := core.NewAuthenticator(core.Principal{Name: "jis", Realm: realm.Name},
		core.Addr{127, 0, 0, 1}, core.NowFunc(), 0)
	apReq := &core.APRequest{
		KVNO:          svcPart.KVNO,
		TicketRealm:   realm.Name,
		Ticket:        svcPart.Ticket,
		Authenticator: auth2.Seal(svcPart.SessionKey),
		MutualAuth:    true,
	}
	show("C -> S:", "ap-req", apReq.Encode())

	service := realm.NewServiceContext("rlogin", "priam", srvtab)
	sess, err := service.ReadRequest(apReq.Encode(), kerberos.Addr{127, 0, 0, 1})
	if err != nil {
		log.Fatal(err)
	}
	note("S decrypts the ticket with its own key, then the authenticator with the session key:")
	note("  %s", core.DescribeAuthenticator(auth2))
	note("S is now certain the client is %v", sess.Client)
	show("S -> C:", "ap-rep", sess.Reply)
	apRep, err := core.DecodeAPReply(sess.Reply)
	if err != nil {
		log.Fatal(err)
	}
	if err := apRep.Verify(svcPart.SessionKey, auth2); err != nil {
		log.Fatal(err)
	}
	note("C verifies {timestamp+1}: the server is authentic too")
	fmt.Println()
	fmt.Println("Both sides now share a session key known to no one else.")
	os.Exit(0)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "                " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}

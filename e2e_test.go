package kerberos

// End-to-end test of the command-line programs: builds every binary and
// walks an administrator's day from §6.3 — initialize the database,
// start the daemons, register a user and a service, kinit / klist /
// kpasswd / kdestroy, extract a srvtab, run a Kerberized remote command,
// and propagate the database to a slave that then serves logins.

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"kerberos/internal/kdb"
)

const e2eRealm = "E2E.TEST.REALM"

// buildBinaries compiles every cmd into dir once per test run.
func buildBinaries(t *testing.T, dir string) map[string]string {
	t.Helper()
	names := []string{
		"kdb_init", "kerberosd", "kadmind", "kprop", "kpropd",
		"kinit", "klist", "kdestroy", "kpasswd", "kadmin",
		"ext_srvtab", "krsh", "krshd", "ktrace", "kstat",
	}
	bins := make(map[string]string, len(names))
	for _, n := range names {
		out := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+n)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", n, err, msg)
		}
		bins[n] = out
	}
	return bins
}

// run executes a binary to completion with the given stdin lines.
func run(t *testing.T, bin string, stdin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

// daemon starts a long-running binary and scans its stderr for the
// "on ADDR" line announcing the bound address.
func daemon(t *testing.T, bin string, stdin string, args ...string) (addr string) {
	t.Helper()
	return daemonN(t, bin, stdin, 1, args...)[0]
}

// daemonN is daemon for binaries that announce several listeners (e.g.
// kerberosd -admin prints the admin address before the protocol one);
// it returns the first n announced addresses in announcement order.
func daemonN(t *testing.T, bin string, stdin string, n int, args ...string) []string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	re := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	sc := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	found := make(chan string, n)
	go func() {
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case found <- m[1]:
				default:
				}
			}
		}
	}()
	addrs := make([]string, 0, n)
	for len(addrs) < n {
		select {
		case a := <-found:
			// Keep draining stderr so the daemon never blocks on a full pipe.
			addrs = append(addrs, a)
		case <-deadline:
			t.Fatalf("%s announced %d of %d addresses", bin, len(addrs), n)
		}
	}
	return addrs
}

func TestEndToEndBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every binary")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir)
	dbPath := filepath.Join(dir, "principal.db")
	aclPath := filepath.Join(dir, "kadm.acl")
	tktPath := filepath.Join(dir, "tkt")
	const masterPw = "e2e-master-password"

	// --- kdb_init: create the realm with an administrator -------------
	out, err := run(t, bins["kdb_init"], masterPw+"\nadmin-pw\n",
		"-realm", e2eRealm, "-db", dbPath, "-admin", "root", "-acl", aclPath)
	if err != nil {
		t.Fatalf("kdb_init: %v\n%s", err, out)
	}
	if !strings.Contains(out, "initialized realm") {
		t.Fatalf("kdb_init output: %s", out)
	}

	// --- daemons -------------------------------------------------------
	kdcAddrs := daemonN(t, bins["kerberosd"], masterPw+"\n", 2,
		"-realm", e2eRealm, "-db", dbPath, "-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0")
	adminAddr, kdcAddr := kdcAddrs[0], kdcAddrs[1] // admin is announced first
	kdbmAddr := daemon(t, bins["kadmind"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-acl", aclPath, "-addr", "127.0.0.1:0",
		"-save-interval", "1")

	// --- kadmin: the administrator registers a user and a service -----
	out, err = run(t, bins["kadmin"], "admin-pw\nuser-pw-1\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"add", "jis")
	if err != nil {
		t.Fatalf("kadmin add: %v\n%s", err, out)
	}
	out, err = run(t, bins["kadmin"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"addrandom", "rcmd.e2ehost")
	if err != nil {
		t.Fatalf("kadmin addrandom: %v\n%s", err, out)
	}
	out, err = run(t, bins["kadmin"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"list")
	if err != nil || !strings.Contains(out, "jis.") || !strings.Contains(out, "rcmd.e2ehost") {
		t.Fatalf("kadmin list: %v\n%s", err, out)
	}

	// --- kinit / klist ---------------------------------------------------
	// kadmind saves its database every second and kerberosd reloads it on
	// change, so the new principal takes a couple of seconds to become
	// visible to the KDC.
	waitFor(t, 20*time.Second, func() bool {
		out, err = run(t, bins["kinit"], "user-pw-1\n",
			"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath)
		return err == nil
	})
	if !strings.Contains(out, "ticket-granting ticket for jis@"+e2eRealm) {
		t.Fatalf("kinit output: %s", out)
	}
	out, err = run(t, bins["klist"], "", "-tktfile", tktPath)
	if err != nil || !strings.Contains(out, "krbtgt."+e2eRealm) {
		t.Fatalf("klist: %v\n%s", err, out)
	}
	// A wrong password must fail.
	out, err = run(t, bins["kinit"], "wrong-guess\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath+".bad")
	if err == nil {
		t.Fatalf("kinit with wrong password succeeded:\n%s", out)
	}

	// --- ext_srvtab + krshd + krsh --------------------------------------
	srvtabPath := filepath.Join(dir, "srvtab")
	out, err = run(t, bins["ext_srvtab"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"-out", srvtabPath, "rcmd.e2ehost")
	if err != nil || !strings.Contains(out, "extracted key for rcmd.e2ehost") {
		t.Fatalf("ext_srvtab: %v\n%s", err, out)
	}
	rshAddr := daemon(t, bins["krshd"], "",
		"-realm", e2eRealm, "-hostname", "e2ehost", "-srvtab", srvtabPath,
		"-addr", "127.0.0.1:0")
	out, err = run(t, bins["krsh"], "",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-host", "e2ehost",
		"-hostaddr", rshAddr, "-tktfile", tktPath, "whoami")
	if err != nil || !strings.Contains(out, "jis@"+e2eRealm+" via kerberos") {
		t.Fatalf("krsh: %v\n%s", err, out)
	}

	// --- kpasswd ---------------------------------------------------------
	out, err = run(t, bins["kpasswd"], "user-pw-1\nuser-pw-2\nuser-pw-2\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-user", "jis")
	if err != nil || !strings.Contains(out, "Password changed.") {
		t.Fatalf("kpasswd: %v\n%s", err, out)
	}
	// New password works once the change has propagated to the KDC's
	// copy; after that, the old one must be dead.
	waitFor(t, 20*time.Second, func() bool {
		out, err = run(t, bins["kinit"], "user-pw-2\n",
			"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath)
		return err == nil
	})
	if out, err = run(t, bins["kinit"], "user-pw-1\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath+".old"); err == nil {
		t.Fatalf("old password still valid:\n%s", out)
	}

	// --- propagation to a slave that then serves logins -----------------
	// kadmind saves the database every second; wait until the on-disk
	// master database carries jis's post-kpasswd key (kvno 2) before
	// dumping it to the slave.
	masterKey := StringToKey(masterPw, e2eRealm)
	waitFor(t, 20*time.Second, func() bool {
		db := kdb.New(masterKey)
		if err := db.Load(dbPath); err != nil {
			return false
		}
		e, err := db.Get("jis", "")
		return err == nil && e.KVNO == 2
	})
	slaveDB := filepath.Join(dir, "slave.db")
	kpropdAddr := daemon(t, bins["kpropd"], masterPw+"\n",
		"-realm", e2eRealm, "-db", slaveDB, "-addr", "127.0.0.1:0")
	out, err = run(t, bins["kprop"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-slaves", kpropdAddr)
	if err != nil {
		t.Fatalf("kprop: %v\n%s", err, out)
	}
	// Wait for the slave to save its copy, then serve from it.
	waitFor(t, 15*time.Second, func() bool {
		_, err := os.Stat(slaveDB)
		return err == nil
	})
	slaveKDC := daemon(t, bins["kerberosd"], masterPw+"\n",
		"-realm", e2eRealm, "-db", slaveDB, "-addr", "127.0.0.1:0", "-slave")
	out, err = run(t, bins["kinit"], "user-pw-2\n",
		"-realm", e2eRealm, "-kdc", slaveKDC, "-user", "jis",
		"-tktfile", filepath.Join(dir, "tkt-slave"))
	if err != nil {
		t.Fatalf("kinit against slave: %v\n%s", err, out)
	}

	// --- ktrace: the Figure 9 wire trace ---------------------------------
	out, err = run(t, bins["ktrace"], "")
	if err != nil || !strings.Contains(out, "Both sides now share a session key") {
		t.Fatalf("ktrace: %v\n%s", err, out)
	}

	// --- kstat: live metrics from the master's admin listener ------------
	// The kinits above went through the master KDC, so its AS latency
	// histogram must be non-empty by now.
	out, err = run(t, bins["kstat"], "", "-addr", adminAddr, "-once")
	if err != nil {
		t.Fatalf("kstat: %v\n%s", err, out)
	}
	for _, want := range []string{"kdc_as_requests", "kdc_as_latency", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("kstat output missing %q:\n%s", want, out)
		}
	}
	if m := regexp.MustCompile(`kdc_as_latency\s+\(n=(\d+)\)`).FindStringSubmatch(out); m == nil || m[1] == "0" {
		t.Fatalf("kstat shows empty AS latency histogram:\n%s", out)
	}

	// --- kdestroy --------------------------------------------------------
	out, err = run(t, bins["kdestroy"], "", "-tktfile", tktPath)
	if err != nil || !strings.Contains(out, "Tickets destroyed.") {
		t.Fatalf("kdestroy: %v\n%s", err, out)
	}
	if _, err := os.Stat(tktPath); !os.IsNotExist(err) {
		t.Error("ticket file survived kdestroy")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestIncrementalPropagationE2E exercises kprop v2 across real
// processes: a kprop daemon watching the kadmind-owned database file
// pushes to two kpropd slaves — one bootstrapping from empty (a
// retention gap, healed by a full dump) and one whose database has
// silently diverged from the master's lineage (detected by the rolling
// digest, healed by a full resync). Once both converge, further kadmind
// writes ship as compressed deltas, and the kstat propagation panel
// over kprop's admin listener reports the round mix and per-slave lag.
func TestIncrementalPropagationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every binary")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir)
	dbPath := filepath.Join(dir, "principal.db")
	aclPath := filepath.Join(dir, "kadm.acl")
	const masterPw = "prop-master-password"

	if out, err := run(t, bins["kdb_init"], masterPw+"\nadmin-pw\n",
		"-realm", e2eRealm, "-db", dbPath, "-admin", "root", "-acl", aclPath); err != nil {
		t.Fatalf("kdb_init: %v\n%s", err, out)
	}
	kdcAddr := daemon(t, bins["kerberosd"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-addr", "127.0.0.1:0")
	kdbmAddr := daemon(t, bins["kadmind"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-acl", aclPath, "-addr", "127.0.0.1:0",
		"-save-interval", "1")

	addUser := func(name string) {
		t.Helper()
		if out, err := run(t, bins["kadmin"], "admin-pw\n"+name+"-pw\n",
			"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
			"add", name); err != nil {
			t.Fatalf("kadmin add %s: %v\n%s", name, err, out)
		}
	}
	masterKey := StringToKey(masterPw, e2eRealm)
	onDisk := func(path, name string) func() bool {
		return func() bool {
			db := kdb.New(masterKey)
			if err := db.Load(path); err != nil {
				return false
			}
			_, err := db.Get(name, "")
			return err == nil
		}
	}

	addUser("prop1")
	waitFor(t, 20*time.Second, onDisk(dbPath, "prop1"))

	// Slave 1 bootstraps from nothing: its first update must be a full
	// dump (the master's journal cannot reach back to serial 0).
	slave1DB := filepath.Join(dir, "slave1.db")
	s1 := daemonN(t, bins["kpropd"], masterPw+"\n", 2,
		"-realm", e2eRealm, "-db", slave1DB, "-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0")
	s1Addr, s1Admin := s1[0], s1[1]

	// Slave 2 starts from a forged copy of the master database: same
	// serial, tampered lineage digest — the §5.3 nightmare of a slave
	// that silently drifted. The master must detect the divergence and
	// heal it with a full resync, never a delta.
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	entries, meta, err := kdb.ParseDumpFull(data)
	if err != nil {
		t.Fatal(err)
	}
	slave2DB := filepath.Join(dir, "slave2.db")
	forged := kdb.EncodeEntriesAt(entries, kdb.DumpMeta{Serial: meta.Serial, Digest: meta.Digest ^ 0xdeadbeef})
	if err := os.WriteFile(slave2DB, forged, 0o600); err != nil {
		t.Fatal(err)
	}
	s2 := daemonN(t, bins["kpropd"], masterPw+"\n", 2,
		"-realm", e2eRealm, "-db", slave2DB, "-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0")
	s2Addr, s2Admin := s2[0], s2[1]

	// The kprop daemon: push every 500ms, re-reading the kadmind-owned
	// database file into the journal as it changes.
	propAdmin := daemon(t, bins["kprop"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-slaves", s1Addr+","+s2Addr,
		"-interval", "500ms", "-reload", "300ms", "-admin", "127.0.0.1:0")

	kstat := func(addr string) string {
		t.Helper()
		out, err := run(t, bins["kstat"], "", "-addr", addr, "-once")
		if err != nil {
			t.Fatalf("kstat %s: %v\n%s", addr, err, out)
		}
		return out
	}
	metric := func(out, name string) int {
		m := regexp.MustCompile(regexp.QuoteMeta(name) + `\s+(\d+)`).FindStringSubmatch(out)
		if m == nil {
			return -1
		}
		n, _ := strconv.Atoi(m[1])
		return n
	}

	// Both slaves heal via full dumps: one retention gap, one divergence.
	waitFor(t, 20*time.Second, func() bool {
		out := kstat(propAdmin)
		return metric(out, "kprop_fallback_retention") >= 1 &&
			metric(out, "kprop_fallback_divergence") >= 1 &&
			metric(out, "kprop_full_rounds") >= 2
	})

	// New churn now ships as deltas to both converged slaves.
	addUser("prop2")
	waitFor(t, 20*time.Second, func() bool {
		return metric(kstat(propAdmin), "kprop_delta_rounds") >= 2
	})

	// The kstat propagation panel over the master's registry.
	out := kstat(propAdmin)
	for _, want := range []string{"propagation", "% delta)", "slave " + s1Addr, "slave " + s2Addr, "lag"} {
		if !strings.Contains(out, want) {
			t.Fatalf("kstat propagation panel missing %q:\n%s", want, out)
		}
	}

	// Slave-side panels: the bootstrap slave took a full then deltas; the
	// divergent slave never accepted anything but a full resync first.
	s1Out, s2Out := kstat(s1Admin), kstat(s2Admin)
	if metric(s1Out, "kpropd_fulls") < 1 || metric(s1Out, "kpropd_deltas") < 1 {
		t.Fatalf("slave1 install mix wrong:\n%s", s1Out)
	}
	if metric(s2Out, "kpropd_fulls") < 1 || metric(s2Out, "kpropd_deltas") < 1 {
		t.Fatalf("slave2 install mix wrong:\n%s", s2Out)
	}

	// Convergence is durable: both slaves' saved databases carry prop2 on
	// the master's exact (serial, digest) lineage.
	waitFor(t, 20*time.Second, onDisk(slave1DB, "prop2"))
	waitFor(t, 20*time.Second, onDisk(slave2DB, "prop2"))
	mdb, s2db := kdb.New(masterKey), kdb.New(masterKey)
	if err := mdb.Load(dbPath); err != nil {
		t.Fatal(err)
	}
	if err := s2db.Load(slave2DB); err != nil {
		t.Fatal(err)
	}
	if s2db.Serial() == 0 || s2db.Serial() > mdb.Serial() ||
		(s2db.Serial() == mdb.Serial() && s2db.Digest() != mdb.Digest()) {
		t.Fatalf("slave2 lineage (%d, %x) never rejoined master (%d, %x)",
			s2db.Serial(), s2db.Digest(), mdb.Serial(), mdb.Digest())
	}
}

// TestKrshEncryptedMode drives the -x flag of the krsh binary.
func TestKrshEncryptedMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir)
	dbPath := filepath.Join(dir, "principal.db")
	tktPath := filepath.Join(dir, "tkt")
	const masterPw = "x-master"

	if out, err := run(t, bins["kdb_init"], masterPw+"\nadmin-pw\n",
		"-realm", e2eRealm, "-db", dbPath, "-admin", "root",
		"-acl", filepath.Join(dir, "acl")); err != nil {
		t.Fatalf("kdb_init: %v\n%s", err, out)
	}
	kdcAddr := daemon(t, bins["kerberosd"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-addr", "127.0.0.1:0")
	kdbmAddr := daemon(t, bins["kadmind"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-acl", filepath.Join(dir, "acl"),
		"-addr", "127.0.0.1:0")
	if out, err := run(t, bins["kadmin"], "admin-pw\nuser-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"add", "jis"); err != nil {
		t.Fatalf("kadmin: %v\n%s", err, out)
	}
	if out, err := run(t, bins["kadmin"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"addrandom", "rcmd.xhost"); err != nil {
		t.Fatalf("kadmin addrandom: %v\n%s", err, out)
	}
	srvtabPath := filepath.Join(dir, "srvtab")
	if out, err := run(t, bins["ext_srvtab"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"-out", srvtabPath, "rcmd.xhost"); err != nil {
		t.Fatalf("ext_srvtab: %v\n%s", err, out)
	}
	var out string
	var err error
	waitFor(t, 20*time.Second, func() bool {
		out, err = run(t, bins["kinit"], "user-pw\n",
			"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath)
		return err == nil
	})
	rshAddr := daemon(t, bins["krshd"], "",
		"-realm", e2eRealm, "-hostname", "xhost", "-srvtab", srvtabPath,
		"-addr", "127.0.0.1:0")
	out, err = run(t, bins["krsh"], "",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-host", "xhost",
		"-hostaddr", rshAddr, "-tktfile", tktPath, "-x", "whoami")
	if err != nil || !strings.Contains(out, "via kerberos-private") {
		t.Fatalf("krsh -x: %v\n%s", err, out)
	}
}

package kerberos

// End-to-end test of the command-line programs: builds every binary and
// walks an administrator's day from §6.3 — initialize the database,
// start the daemons, register a user and a service, kinit / klist /
// kpasswd / kdestroy, extract a srvtab, run a Kerberized remote command,
// and propagate the database to a slave that then serves logins.

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"kerberos/internal/kdb"
)

const e2eRealm = "E2E.TEST.REALM"

// buildBinaries compiles every cmd into dir once per test run.
func buildBinaries(t *testing.T, dir string) map[string]string {
	t.Helper()
	names := []string{
		"kdb_init", "kerberosd", "kadmind", "kprop", "kpropd",
		"kinit", "klist", "kdestroy", "kpasswd", "kadmin",
		"ext_srvtab", "krsh", "krshd", "ktrace", "kstat",
	}
	bins := make(map[string]string, len(names))
	for _, n := range names {
		out := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+n)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", n, err, msg)
		}
		bins[n] = out
	}
	return bins
}

// run executes a binary to completion with the given stdin lines.
func run(t *testing.T, bin string, stdin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

// daemon starts a long-running binary and scans its stderr for the
// "on ADDR" line announcing the bound address.
func daemon(t *testing.T, bin string, stdin string, args ...string) (addr string) {
	t.Helper()
	return daemonN(t, bin, stdin, 1, args...)[0]
}

// daemonN is daemon for binaries that announce several listeners (e.g.
// kerberosd -admin prints the admin address before the protocol one);
// it returns the first n announced addresses in announcement order.
func daemonN(t *testing.T, bin string, stdin string, n int, args ...string) []string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	re := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
	sc := bufio.NewScanner(stderr)
	deadline := time.After(30 * time.Second)
	found := make(chan string, n)
	go func() {
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case found <- m[1]:
				default:
				}
			}
		}
	}()
	addrs := make([]string, 0, n)
	for len(addrs) < n {
		select {
		case a := <-found:
			// Keep draining stderr so the daemon never blocks on a full pipe.
			addrs = append(addrs, a)
		case <-deadline:
			t.Fatalf("%s announced %d of %d addresses", bin, len(addrs), n)
		}
	}
	return addrs
}

func TestEndToEndBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every binary")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir)
	dbPath := filepath.Join(dir, "principal.db")
	aclPath := filepath.Join(dir, "kadm.acl")
	tktPath := filepath.Join(dir, "tkt")
	const masterPw = "e2e-master-password"

	// --- kdb_init: create the realm with an administrator -------------
	out, err := run(t, bins["kdb_init"], masterPw+"\nadmin-pw\n",
		"-realm", e2eRealm, "-db", dbPath, "-admin", "root", "-acl", aclPath)
	if err != nil {
		t.Fatalf("kdb_init: %v\n%s", err, out)
	}
	if !strings.Contains(out, "initialized realm") {
		t.Fatalf("kdb_init output: %s", out)
	}

	// --- daemons -------------------------------------------------------
	kdcAddrs := daemonN(t, bins["kerberosd"], masterPw+"\n", 2,
		"-realm", e2eRealm, "-db", dbPath, "-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0")
	adminAddr, kdcAddr := kdcAddrs[0], kdcAddrs[1] // admin is announced first
	kdbmAddr := daemon(t, bins["kadmind"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-acl", aclPath, "-addr", "127.0.0.1:0",
		"-save-interval", "1")

	// --- kadmin: the administrator registers a user and a service -----
	out, err = run(t, bins["kadmin"], "admin-pw\nuser-pw-1\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"add", "jis")
	if err != nil {
		t.Fatalf("kadmin add: %v\n%s", err, out)
	}
	out, err = run(t, bins["kadmin"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"addrandom", "rcmd.e2ehost")
	if err != nil {
		t.Fatalf("kadmin addrandom: %v\n%s", err, out)
	}
	out, err = run(t, bins["kadmin"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"list")
	if err != nil || !strings.Contains(out, "jis.") || !strings.Contains(out, "rcmd.e2ehost") {
		t.Fatalf("kadmin list: %v\n%s", err, out)
	}

	// --- kinit / klist ---------------------------------------------------
	// kadmind saves its database every second and kerberosd reloads it on
	// change, so the new principal takes a couple of seconds to become
	// visible to the KDC.
	waitFor(t, 20*time.Second, func() bool {
		out, err = run(t, bins["kinit"], "user-pw-1\n",
			"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath)
		return err == nil
	})
	if !strings.Contains(out, "ticket-granting ticket for jis@"+e2eRealm) {
		t.Fatalf("kinit output: %s", out)
	}
	out, err = run(t, bins["klist"], "", "-tktfile", tktPath)
	if err != nil || !strings.Contains(out, "krbtgt."+e2eRealm) {
		t.Fatalf("klist: %v\n%s", err, out)
	}
	// A wrong password must fail.
	out, err = run(t, bins["kinit"], "wrong-guess\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath+".bad")
	if err == nil {
		t.Fatalf("kinit with wrong password succeeded:\n%s", out)
	}

	// --- ext_srvtab + krshd + krsh --------------------------------------
	srvtabPath := filepath.Join(dir, "srvtab")
	out, err = run(t, bins["ext_srvtab"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"-out", srvtabPath, "rcmd.e2ehost")
	if err != nil || !strings.Contains(out, "extracted key for rcmd.e2ehost") {
		t.Fatalf("ext_srvtab: %v\n%s", err, out)
	}
	rshAddr := daemon(t, bins["krshd"], "",
		"-realm", e2eRealm, "-hostname", "e2ehost", "-srvtab", srvtabPath,
		"-addr", "127.0.0.1:0")
	out, err = run(t, bins["krsh"], "",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-host", "e2ehost",
		"-hostaddr", rshAddr, "-tktfile", tktPath, "whoami")
	if err != nil || !strings.Contains(out, "jis@"+e2eRealm+" via kerberos") {
		t.Fatalf("krsh: %v\n%s", err, out)
	}

	// --- kpasswd ---------------------------------------------------------
	out, err = run(t, bins["kpasswd"], "user-pw-1\nuser-pw-2\nuser-pw-2\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-user", "jis")
	if err != nil || !strings.Contains(out, "Password changed.") {
		t.Fatalf("kpasswd: %v\n%s", err, out)
	}
	// New password works once the change has propagated to the KDC's
	// copy; after that, the old one must be dead.
	waitFor(t, 20*time.Second, func() bool {
		out, err = run(t, bins["kinit"], "user-pw-2\n",
			"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath)
		return err == nil
	})
	if out, err = run(t, bins["kinit"], "user-pw-1\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath+".old"); err == nil {
		t.Fatalf("old password still valid:\n%s", out)
	}

	// --- propagation to a slave that then serves logins -----------------
	// kadmind saves the database every second; wait until the on-disk
	// master database carries jis's post-kpasswd key (kvno 2) before
	// dumping it to the slave.
	masterKey := StringToKey(masterPw, e2eRealm)
	waitFor(t, 20*time.Second, func() bool {
		db := kdb.New(masterKey)
		if err := db.Load(dbPath); err != nil {
			return false
		}
		e, err := db.Get("jis", "")
		return err == nil && e.KVNO == 2
	})
	slaveDB := filepath.Join(dir, "slave.db")
	kpropdAddr := daemon(t, bins["kpropd"], masterPw+"\n",
		"-realm", e2eRealm, "-db", slaveDB, "-addr", "127.0.0.1:0")
	out, err = run(t, bins["kprop"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-slaves", kpropdAddr)
	if err != nil {
		t.Fatalf("kprop: %v\n%s", err, out)
	}
	// Wait for the slave to save its copy, then serve from it.
	waitFor(t, 15*time.Second, func() bool {
		_, err := os.Stat(slaveDB)
		return err == nil
	})
	slaveKDC := daemon(t, bins["kerberosd"], masterPw+"\n",
		"-realm", e2eRealm, "-db", slaveDB, "-addr", "127.0.0.1:0", "-slave")
	out, err = run(t, bins["kinit"], "user-pw-2\n",
		"-realm", e2eRealm, "-kdc", slaveKDC, "-user", "jis",
		"-tktfile", filepath.Join(dir, "tkt-slave"))
	if err != nil {
		t.Fatalf("kinit against slave: %v\n%s", err, out)
	}

	// --- ktrace: the Figure 9 wire trace ---------------------------------
	out, err = run(t, bins["ktrace"], "")
	if err != nil || !strings.Contains(out, "Both sides now share a session key") {
		t.Fatalf("ktrace: %v\n%s", err, out)
	}

	// --- kstat: live metrics from the master's admin listener ------------
	// The kinits above went through the master KDC, so its AS latency
	// histogram must be non-empty by now.
	out, err = run(t, bins["kstat"], "", "-addr", adminAddr, "-once")
	if err != nil {
		t.Fatalf("kstat: %v\n%s", err, out)
	}
	for _, want := range []string{"kdc_as_requests", "kdc_as_latency", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("kstat output missing %q:\n%s", want, out)
		}
	}
	if m := regexp.MustCompile(`kdc_as_latency\s+\(n=(\d+)\)`).FindStringSubmatch(out); m == nil || m[1] == "0" {
		t.Fatalf("kstat shows empty AS latency histogram:\n%s", out)
	}

	// --- kdestroy --------------------------------------------------------
	out, err = run(t, bins["kdestroy"], "", "-tktfile", tktPath)
	if err != nil || !strings.Contains(out, "Tickets destroyed.") {
		t.Fatalf("kdestroy: %v\n%s", err, out)
	}
	if _, err := os.Stat(tktPath); !os.IsNotExist(err) {
		t.Error("ticket file survived kdestroy")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestKrshEncryptedMode drives the -x flag of the krsh binary.
func TestKrshEncryptedMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir)
	dbPath := filepath.Join(dir, "principal.db")
	tktPath := filepath.Join(dir, "tkt")
	const masterPw = "x-master"

	if out, err := run(t, bins["kdb_init"], masterPw+"\nadmin-pw\n",
		"-realm", e2eRealm, "-db", dbPath, "-admin", "root",
		"-acl", filepath.Join(dir, "acl")); err != nil {
		t.Fatalf("kdb_init: %v\n%s", err, out)
	}
	kdcAddr := daemon(t, bins["kerberosd"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-addr", "127.0.0.1:0")
	kdbmAddr := daemon(t, bins["kadmind"], masterPw+"\n",
		"-realm", e2eRealm, "-db", dbPath, "-acl", filepath.Join(dir, "acl"),
		"-addr", "127.0.0.1:0")
	if out, err := run(t, bins["kadmin"], "admin-pw\nuser-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"add", "jis"); err != nil {
		t.Fatalf("kadmin: %v\n%s", err, out)
	}
	if out, err := run(t, bins["kadmin"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"addrandom", "rcmd.xhost"); err != nil {
		t.Fatalf("kadmin addrandom: %v\n%s", err, out)
	}
	srvtabPath := filepath.Join(dir, "srvtab")
	if out, err := run(t, bins["ext_srvtab"], "admin-pw\n",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-kdbm", kdbmAddr, "-admin", "root",
		"-out", srvtabPath, "rcmd.xhost"); err != nil {
		t.Fatalf("ext_srvtab: %v\n%s", err, out)
	}
	var out string
	var err error
	waitFor(t, 20*time.Second, func() bool {
		out, err = run(t, bins["kinit"], "user-pw\n",
			"-realm", e2eRealm, "-kdc", kdcAddr, "-user", "jis", "-tktfile", tktPath)
		return err == nil
	})
	rshAddr := daemon(t, bins["krshd"], "",
		"-realm", e2eRealm, "-hostname", "xhost", "-srvtab", srvtabPath,
		"-addr", "127.0.0.1:0")
	out, err = run(t, bins["krsh"], "",
		"-realm", e2eRealm, "-kdc", kdcAddr, "-host", "xhost",
		"-hostaddr", rshAddr, "-tktfile", tktPath, "-x", "whoami")
	if err != nil || !strings.Contains(out, "via kerberos-private") {
		t.Fatalf("krsh -x: %v\n%s", err, out)
	}
}

// Package kerberos is a from-scratch reproduction of the system
// described in Steiner, Neuman & Schiller, "Kerberos: An Authentication
// Service for Open Network Systems" (USENIX Winter 1988): the trusted
// third-party authentication service built at MIT's Project Athena,
// together with its database, administration server, replication
// software, user programs, and the Kerberized applications the paper
// describes (including the NFS credential-mapping case study from the
// appendix).
//
// This package is the public facade: it re-exports the main types of the
// internal packages and provides Realm, a complete in-process Kerberos
// realm (database + authentication server + optional administration
// server) listening on loopback sockets — the quickest way to stand up a
// working deployment, and what the examples and benchmarks build on.
//
// The layering below mirrors Figure 1 of the paper:
//
//	internal/des     encryption library (DES, CBC/PCBC, string-to-key)
//	internal/core    tickets, authenticators, protocol messages
//	internal/kdb     database library
//	internal/kdc     authentication server (AS + TGS)
//	internal/kadm    administration server (KDBM) + kadmin/kpasswd
//	internal/kprop   database propagation (kprop/kpropd)
//	internal/client  applications library + user programs' logic
//	internal/nfs     the appendix's Kerberized NFS
package kerberos

import (
	"fmt"
	"log"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kadm"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/kprop"
	"kerberos/internal/obs"
)

// Re-exported core types. See the internal packages for full
// documentation.
type (
	// Principal is a Kerberos name: name.instance@realm (§3).
	Principal = core.Principal
	// Lifetime is a ticket lifetime in 5-minute units.
	Lifetime = core.Lifetime
	// Addr is a client network address as carried in tickets.
	Addr = core.Addr
	// Key is a DES key.
	Key = des.Key
	// Client performs the user-side protocol (kinit, TGS exchanges,
	// krb_mk_req).
	Client = client.Client
	// Credentials is one cached ticket plus session key.
	Credentials = client.Credentials
	// Service is the server side of application authentication
	// (krb_rd_req).
	Service = client.Service
	// Srvtab is the server key file (/etc/srvtab, §6.3).
	Srvtab = client.Srvtab
	// Config is the client-side realm configuration (KDC addresses).
	Config = client.Config
	// ProtocolError is a protocol-level failure with its error code.
	ProtocolError = core.ProtocolError
)

// Re-exported constructors and helpers.
var (
	// ParsePrincipal parses "name.instance@realm".
	ParsePrincipal = core.ParsePrincipal
	// TGSPrincipal names a ticket-granting service.
	TGSPrincipal = core.TGSPrincipal
	// StringToKey converts a password and salt to a DES key.
	StringToKey = des.StringToKey
	// PasswordKey converts a principal's password to its private key.
	PasswordKey = client.PasswordKey
	// NewRandomKey generates a fresh session/service key.
	NewRandomKey = des.NewRandomKey
	// NewSrvtab creates an empty server key file.
	NewSrvtab = client.NewSrvtab
	// NewClient creates a client for a principal.
	NewClient = client.New
	// NewService creates a server-side authentication context.
	NewService = client.NewService
	// NewCredCache creates an empty credential cache.
	NewCredCache = client.NewCredCache
	// UnmarshalCredCache parses a serialized ticket file.
	UnmarshalCredCache = client.UnmarshalCredCache
	// LoadCredCache reads a ticket file from disk.
	LoadCredCache = client.LoadCredCache
)

// DefaultTGTLife is the 8-hour ticket-granting-ticket lifetime of §6.1.
const DefaultTGTLife = core.DefaultTGTLife

// RealmConfig configures an in-process realm.
type RealmConfig struct {
	// Name is the realm name, e.g. "ATHENA.MIT.EDU".
	Name string
	// MasterPassword derives the master database key.
	MasterPassword string
	// Clock substitutes the time source everywhere (tests/simulations).
	Clock func() time.Time
	// Logger receives server logs; nil discards them.
	Logger *log.Logger
	// Slaves is how many read-only slave KDCs to run beside the master
	// (Figure 10). Each gets its own database copy and listener.
	Slaves int
	// Registry, when non-nil, collects metrics from every server the
	// realm runs (master KDC, KDBM, propagation). Serve it with
	// obs.ServeAdmin and watch it with cmd/kstat.
	Registry *obs.Registry
	// TraceSink, when non-nil, receives one structured event per
	// completed exchange across all of the realm's servers.
	TraceSink obs.Sink
}

// Realm is a complete in-process Kerberos realm: the master database,
// a master KDC listener, optional slave KDCs with propagation, and
// (after ServeAdmin) a KDBM administration server.
type Realm struct {
	Name string
	// DB is the master database.
	DB *kdb.Database
	// KDC is the master authentication server.
	KDC *kdc.Server

	cfg       RealmConfig
	listener  *kdc.Listener
	slaves    []*kdc.Listener
	slaveDBs  []*kdb.Database
	kpropd    []*kprop.Listener
	kpropdS   []*kprop.Slave
	kpropM    *kprop.Master
	adminL    *kadm.Listener
	adminACL  *kadm.ACL
	clockFunc func() time.Time
}

// NewRealm creates the realm: initializes the database with the
// essential principals (the realm's TGS and the KDBM service, §6.3) and
// starts the authentication server(s) on loopback.
func NewRealm(cfg RealmConfig) (*Realm, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("kerberos: realm name required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	r := &Realm{
		Name:      cfg.Name,
		DB:        kdb.New(des.StringToKey(cfg.MasterPassword, cfg.Name)),
		cfg:       cfg,
		clockFunc: clock,
	}
	now := clock()
	tgsKey, err := des.NewRandomKey()
	defer clear(tgsKey[:]) // before the error check: cover every exit path
	if err != nil {
		return nil, err
	}
	if err := r.DB.Add(core.TGSName, cfg.Name, tgsKey, 0, "kdb_init", now); err != nil {
		return nil, err
	}
	cpKey, err := des.NewRandomKey()
	defer clear(cpKey[:]) // before the error check: cover every exit path
	if err != nil {
		return nil, err
	}
	if err := r.DB.Add(core.ChangePwName, core.ChangePwInstance, cpKey, 12, "kdb_init", now); err != nil {
		return nil, err
	}

	opts := []kdc.Option{kdc.WithClock(clock)}
	if cfg.Logger != nil {
		opts = append(opts, kdc.WithLogger(cfg.Logger))
	}
	if cfg.TraceSink != nil {
		opts = append(opts, kdc.WithTraceSink(cfg.TraceSink))
	}
	// Only the master KDC publishes on the registry — the slaves would
	// collide on the same metric names. Their exchanges still trace.
	masterOpts := opts
	if cfg.Registry != nil {
		masterOpts = append(append([]kdc.Option{}, opts...), kdc.WithRegistry(cfg.Registry))
	}
	r.KDC = kdc.New(cfg.Name, r.DB, masterOpts...)
	r.listener, err = kdc.Serve(r.KDC, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Slaves; i++ {
		if err := r.addSlave(opts); err != nil {
			r.Close()
			return nil, err
		}
	}
	r.adminACL, _ = kadm.NewACL()
	return r, nil
}

func (r *Realm) addSlave(opts []kdc.Option) error {
	sdb := kdb.New(r.DB.MasterKey())
	slave := kprop.NewSlave(sdb, r.cfg.Logger)
	pl, err := kprop.Serve(slave, "127.0.0.1:0")
	if err != nil {
		return err
	}
	sl, err := kdc.Serve(kdc.New(r.Name, sdb, opts...), "127.0.0.1:0")
	if err != nil {
		pl.Close()
		return err
	}
	r.slaveDBs = append(r.slaveDBs, sdb)
	r.kpropd = append(r.kpropd, pl)
	r.kpropdS = append(r.kpropdS, slave)
	r.slaves = append(r.slaves, sl)
	return nil
}

// KDCAddrs returns all KDC addresses, master first then slaves — the
// order clients try them (§5.3 availability).
func (r *Realm) KDCAddrs() []string {
	addrs := []string{r.listener.Addr()}
	for _, s := range r.slaves {
		addrs = append(addrs, s.Addr())
	}
	return addrs
}

// MasterAddr returns the master KDC address.
func (r *Realm) MasterAddr() string { return r.listener.Addr() }

// SlaveAddrs returns only the slave KDC addresses.
func (r *Realm) SlaveAddrs() []string {
	addrs := make([]string, len(r.slaves))
	for i, s := range r.slaves {
		addrs[i] = s.Addr()
	}
	return addrs
}

// Propagate pushes the master database to every slave (Figure 13) —
// what the hourly kprop cron job does.
func (r *Realm) Propagate() error {
	if r.kpropM == nil {
		addrs := make([]string, len(r.kpropd))
		for i, l := range r.kpropd {
			addrs[i] = l.Addr()
		}
		var kopts []kprop.Option
		if r.cfg.Registry != nil {
			kopts = append(kopts, kprop.WithRegistry(r.cfg.Registry))
		}
		if r.cfg.TraceSink != nil {
			kopts = append(kopts, kprop.WithTraceSink(r.cfg.TraceSink))
		}
		r.kpropM = kprop.NewMaster(r.DB, addrs, r.cfg.Logger, kopts...)
	}
	return r.kpropM.PropagateAll()
}

// ClientConfig returns a client configuration pointing at this realm's
// KDCs (and optionally other realms').
func (r *Realm) ClientConfig(others ...*Realm) *Config {
	cfg := &Config{
		Realms:  map[string][]string{r.Name: r.KDCAddrs()},
		Timeout: 2 * time.Second,
	}
	for _, o := range others {
		cfg.Realms[o.Name] = o.KDCAddrs()
	}
	return cfg
}

// AddUser registers a user principal with a password.
func (r *Realm) AddUser(username, password string) error {
	p := core.Principal{Name: username, Realm: r.Name}
	return r.DB.Add(username, "", client.PasswordKey(p, password), 0, "register", r.clockFunc())
}

// AddAdmin registers an admin-instance principal and places it on the
// KDBM access control list (§5.1).
func (r *Realm) AddAdmin(username, password string) error {
	p := core.Principal{Name: username, Instance: core.AdminInstance, Realm: r.Name}
	if err := r.DB.Add(username, core.AdminInstance,
		client.PasswordKey(p, password), 0, "kdb_init", r.clockFunc()); err != nil {
		return err
	}
	return r.adminACL.Add(p)
}

// AddService registers a service principal with a fresh random key
// (§6.3: "assigned a private key, usually ... an automatically generated
// random key") and returns a srvtab holding it, ready to install on the
// server's machine.
func (r *Realm) AddService(name, instance string) (*Srvtab, error) {
	key, err := des.NewRandomKey()
	defer clear(key[:]) // before the error check: cover every exit path
	if err != nil {
		return nil, err
	}
	if err := r.DB.Add(name, instance, key, 0, "kadmin", r.clockFunc()); err != nil {
		return nil, err
	}
	tab := client.NewSrvtab()
	tab.Set(core.Principal{Name: name, Instance: instance, Realm: r.Name}, 1, key)
	return tab, nil
}

// NewLoggedInClient builds a client for a user, sets its workstation
// address to loopback (matching what the KDC sees), and performs the
// initial ticket exchange.
func (r *Realm) NewLoggedInClient(username, password string, others ...*Realm) (*Client, error) {
	c := client.New(core.Principal{Name: username, Realm: r.Name}, r.ClientConfig(others...))
	c.Addr = core.Addr{127, 0, 0, 1}
	c.Clock = r.cfg.Clock
	if _, err := c.Login(password); err != nil {
		return nil, err
	}
	return c, nil
}

// NewServiceContext builds the server-side verifier for a service
// registered with AddService.
func (r *Realm) NewServiceContext(name, instance string, tab *Srvtab) *Service {
	svc := client.NewService(core.Principal{Name: name, Instance: instance, Realm: r.Name}, tab)
	svc.Clock = r.cfg.Clock
	svc.Sink = r.cfg.TraceSink
	return svc
}

// ServeAdmin starts the KDBM administration server (Figure 11: master
// machine only) and returns its address.
func (r *Realm) ServeAdmin() (string, error) {
	if r.adminL != nil {
		return r.adminL.Addr(), nil
	}
	opts := []kadm.Option{}
	if r.cfg.Clock != nil {
		opts = append(opts, kadm.WithClock(r.cfg.Clock))
	}
	if r.cfg.Logger != nil {
		opts = append(opts, kadm.WithLogger(r.cfg.Logger))
	}
	if r.cfg.Registry != nil {
		opts = append(opts, kadm.WithRegistry(r.cfg.Registry))
	}
	if r.cfg.TraceSink != nil {
		opts = append(opts, kadm.WithTraceSink(r.cfg.TraceSink))
	}
	srv := kadm.NewServer(r.Name, r.DB, r.adminACL, opts...)
	l, err := kadm.Serve(srv, "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	r.adminL = l
	return l.Addr(), nil
}

// TrustRealm establishes the §7.2 inter-realm relationship: both realms
// record the same shared key, enabling cross-realm authentication in
// both directions.
func TrustRealm(a, b *Realm) error {
	shared, err := des.NewRandomKey()
	if err != nil {
		return err
	}
	now := a.clockFunc()
	if err := kdc.RegisterCrossRealm(a.DB, b.Name, shared, now); err != nil {
		return err
	}
	return kdc.RegisterCrossRealm(b.DB, a.Name, shared, now)
}

// ChangePassword runs the kpasswd flow against this realm's KDBM server
// (ServeAdmin must have been called).
func (r *Realm) ChangePassword(username, oldPassword, newPassword string) error {
	if r.adminL == nil {
		return fmt.Errorf("kerberos: administration server not running")
	}
	c := client.New(core.Principal{Name: username, Realm: r.Name}, r.ClientConfig())
	c.Addr = core.Addr{127, 0, 0, 1}
	c.Clock = r.cfg.Clock
	return kadm.ChangePassword(c, r.adminL.Addr(), oldPassword, newPassword)
}

// AdminAddr returns the KDBM address, empty if not serving.
func (r *Realm) AdminAddr() string {
	if r.adminL == nil {
		return ""
	}
	return r.adminL.Addr()
}

// Close shuts down every listener.
func (r *Realm) Close() error {
	if r.listener != nil {
		r.listener.Close()
	}
	for _, s := range r.slaves {
		s.Close()
	}
	for _, p := range r.kpropd {
		p.Close()
	}
	if r.adminL != nil {
		r.adminL.Close()
	}
	return nil
}

package kerberos

// Runs every example program end to end and checks its key output
// lines, so the examples can never rot.

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs every example")
	}
	cases := []struct {
		name string
		want []string
	}{
		{"quickstart", []string{
			"phase 1: TGT for krbtgt.ATHENA.MIT.EDU@ATHENA.MIT.EDU",
			"phase 3: server authenticated client as jis@ATHENA.MIT.EDU",
			"client verified the server",
		}},
		{"nfs", []string{
			"constructed passwd entry: jis:*:1001:100:",
			"wrote ~/paper.tex as uid 1001",
			"after logout the same forgery fails",
		}},
		{"crossrealm", []string{
			"obtained ticket for rlogin.ai-lab@LCS.MIT.EDU",
			"originally authenticated by realm ATHENA.MIT.EDU",
		}},
		{"replication", []string{
			"master down: slave KDC served the login",
			"after the next propagation, slaves serve the new user too",
		}},
		{"rsh", []string{
			"via kerberos",
			"via rhosts",
			"pop STAT -> \"+OK 1 messages\"",
			"zephyr notice: from=jis@ATHENA.MIT.EDU",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+c.name).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.name, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", c.name, want, out)
				}
			}
		})
	}
}

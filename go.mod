module kerberos

go 1.22

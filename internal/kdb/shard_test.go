package kdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

func TestShardIndexAgreesWithShardIndexID(t *testing.T) {
	cases := []struct{ name, instance string }{
		{"jis", ""}, {"rcmd", "mole"}, {"changepw", "kerberos"},
		{"u.000", ""}, {"", ""}, {"a", "b.c"},
	}
	for _, n := range []int{1, 2, 3, 8, 16, 97} {
		for _, c := range cases {
			byParts := ShardIndex(c.name, c.instance, n)
			byID := ShardIndexID(ID(c.name, c.instance), n)
			if byParts != byID {
				t.Errorf("ShardIndex(%q,%q,%d)=%d but ShardIndexID=%d",
					c.name, c.instance, n, byParts, byID)
			}
			if byParts < 0 || byParts >= n {
				t.Errorf("ShardIndex(%q,%q,%d)=%d out of range", c.name, c.instance, n, byParts)
			}
		}
	}
}

func TestShardIndexSpreadsPrincipals(t *testing.T) {
	const n = 16
	counts := make([]int, n)
	for i := 0; i < 10000; i++ {
		counts[ShardIndex(fmt.Sprintf("u%05d", i), "", n)]++
	}
	for i, c := range counts {
		// Perfect balance is 625; FNV on structured names should land
		// every shard within a loose factor of two.
		if c < 300 || c > 1200 {
			t.Errorf("shard %d holds %d of 10000 principals (poor spread)", i, c)
		}
	}
}

// randomOps generates a deterministic mixed op sequence for the
// equivalence tests.
type storeOp struct {
	kind int // 0 put, 1 delete, 2 batch, 3 replaceAll
	e    *Entry
	ups  []*Entry
	dels []string
	all  []*Entry
}

func mkEntry(i, rev int) *Entry {
	return &Entry{
		Name:       fmt.Sprintf("u%03d", i),
		Instance:   fmt.Sprintf("i%d", i%3),
		EncKey:     []byte{byte(i), byte(rev), 3, 4, 5, 6, 7, 8},
		KVNO:       uint8(1 + rev%5),
		Expiration: t0.Add(time.Duration(i) * time.Hour),
		MaxLife:    core.Lifetime(i % 256),
		ModTime:    t0.Add(time.Duration(rev) * time.Minute),
		ModBy:      "prop",
	}
}

func randomOps(rng *rand.Rand, n int) []storeOp {
	ops := make([]storeOp, 0, n)
	for len(ops) < n {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			ops = append(ops, storeOp{kind: 0, e: mkEntry(rng.Intn(60), rng.Intn(9))})
		case 5, 6:
			ops = append(ops, storeOp{kind: 1, e: mkEntry(rng.Intn(60), 0)})
		case 7, 8:
			var ups []*Entry
			var dels []string
			for k := 0; k < 1+rng.Intn(5); k++ {
				ups = append(ups, mkEntry(rng.Intn(60), rng.Intn(9)))
			}
			for k := 0; k < rng.Intn(3); k++ {
				dels = append(dels, mkEntry(rng.Intn(60), 0).ID())
			}
			ops = append(ops, storeOp{kind: 2, ups: ups, dels: dels})
		default:
			var all []*Entry
			for k := 0; k < rng.Intn(20); k++ {
				all = append(all, mkEntry(rng.Intn(60), rng.Intn(9)))
			}
			ops = append(ops, storeOp{kind: 3, all: all})
		}
	}
	return ops
}

func applyOp(s Store, op storeOp) {
	switch op.kind {
	case 0:
		s.Put(op.e)
	case 1:
		s.Delete(op.e.ID())
	case 2:
		s.ApplyBatch(op.ups, op.dels)
	case 3:
		s.ReplaceAll(op.all)
	}
}

func snapshotStore(s Store) []*Entry {
	var out []*Entry
	s.Range(func(e *Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// TestShardedStoreEquivalence is the property test of the tentpole: a
// ShardedStore driven by any op sequence is observationally equivalent
// to a flat MemStore driven by the same sequence — same Fetch results,
// same Len, and the same globally sorted Range (so dumps over either are
// byte-identical).
func TestShardedStoreEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 13} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + shards)))
			flat := NewMemStore()
			sharded := NewShardedStore(shards)
			for _, op := range randomOps(rng, 400) {
				applyOp(flat, op)
				applyOp(sharded, op)
			}
			if flat.Len() != sharded.Len() {
				t.Fatalf("Len: flat %d, sharded %d", flat.Len(), sharded.Len())
			}
			a, b := snapshotStore(flat), snapshotStore(sharded)
			if len(a) != len(b) {
				t.Fatalf("Range lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if !entryEqual(a[i], b[i]) {
					t.Fatalf("Range[%d]: flat %s, sharded %s", i, a[i].ID(), b[i].ID())
				}
				if got, ok := sharded.Fetch(a[i].ID()); !ok || !entryEqual(got, a[i]) {
					t.Fatalf("Fetch(%s) disagrees", a[i].ID())
				}
				if got, ok := sharded.FetchShared(a[i].ID()); !ok || !entryEqual(got, a[i]) {
					t.Fatalf("FetchShared(%s) disagrees", a[i].ID())
				}
			}
			if dumpA, dumpB := EncodeEntries(a), EncodeEntries(b); !bytes.Equal(dumpA, dumpB) {
				t.Fatal("dumps over equivalent stores differ")
			}
			// Missing IDs answer identically too.
			if _, ok := sharded.Fetch("nobody.nowhere"); ok {
				t.Fatal("phantom entry in sharded store")
			}
		})
	}
}

// TestShardedDatabaseEquivalence drives a sharded Database and a classic
// single-shard one through the same mutation sequence and asserts the
// observable state matches: Serial (total mutations), entries, List
// order, and dump entry payloads.
func TestShardedDatabaseEquivalence(t *testing.T) {
	master := des.StringToKey("master-password", "ATHENA.MIT.EDU")
	flat := New(master)
	stores := make([]Store, 8)
	for i := range stores {
		stores[i] = NewMemStore()
	}
	sharded := NewSharded(master, stores)

	key := des.StringToKey("pw", "R")
	for i := 0; i < 120; i++ {
		name := fmt.Sprintf("u%03d", i%40)
		switch i % 4 {
		case 0:
			flat.Add(name, "", key, core.DefaultTGTLife, "t", t0)
			sharded.Add(name, "", key, core.DefaultTGTLife, "t", t0)
		case 1:
			k2 := des.StringToKey(fmt.Sprintf("pw%d", i), "R")
			flat.SetKey(name, "", k2, "t", t0)
			sharded.SetKey(name, "", k2, "t", t0)
		case 2:
			flat.SetExpiration(name, "", t0.Add(time.Duration(i)*time.Hour), "t", t0)
			sharded.SetExpiration(name, "", t0.Add(time.Duration(i)*time.Hour), "t", t0)
		default:
			flat.Delete(name, "")
			sharded.Delete(name, "")
		}
	}
	if flat.Serial() != sharded.Serial() {
		t.Fatalf("Serial: flat %d, sharded %d", flat.Serial(), sharded.Serial())
	}
	if flat.Len() != sharded.Len() {
		t.Fatalf("Len: flat %d, sharded %d", flat.Len(), sharded.Len())
	}
	listA, listB := flat.List(), sharded.List()
	if len(listA) != len(listB) {
		t.Fatalf("List lengths differ: %d vs %d", len(listA), len(listB))
	}
	for i := range listA {
		if listA[i] != listB[i] {
			t.Fatalf("List[%d]: %s vs %s", i, listA[i], listB[i])
		}
	}
	for _, id := range listA {
		name, instance := splitID(id)
		ea, _ := flat.Get(name, instance)
		eb, err := sharded.Get(name, instance)
		if err != nil || !entryEqual(ea, eb) {
			t.Fatalf("Get(%s) disagrees (%v)", id, err)
		}
		ka, _ := flat.Key(ea)
		kb, err := sharded.Key(eb)
		if err != nil || ka != kb {
			t.Fatalf("Key(%s) disagrees (%v)", id, err)
		}
	}
	// Dump entry payloads agree (the v3 header differs by design).
	ea, _ := ParseDump(flat.Dump())
	eb, err := ParseDump(sharded.Dump())
	if err != nil {
		t.Fatal(err)
	}
	if len(ea) != len(eb) {
		t.Fatalf("dump entries: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if !entryEqual(ea[i], eb[i]) {
			t.Fatalf("dump entry %d differs: %s vs %s", i, ea[i].ID(), eb[i].ID())
		}
	}
}

// TestShardedDumpRoundTrip proves v3 dump/load resumes every shard's
// lineage on a same-shape database and restarts it on a different shape.
func TestShardedDumpRoundTrip(t *testing.T) {
	master := des.StringToKey("m", "R")
	mk := func(n int) *Database {
		stores := make([]Store, n)
		for i := range stores {
			stores[i] = NewMemStore()
		}
		return NewSharded(master, stores)
	}
	src := mk(4)
	addN(t, src, 50)
	dump := src.Dump()

	same := mk(4)
	if err := same.LoadDump(dump); err != nil {
		t.Fatal(err)
	}
	if same.Len() != 50 || same.Serial() != src.Serial() || same.Digest() != src.Digest() {
		t.Fatalf("same-shape load: len %d serial %d digest %x", same.Len(), same.Serial(), same.Digest())
	}
	for i := 0; i < 4; i++ {
		if same.ShardSerial(i) != src.ShardSerial(i) || same.ShardDigest(i) != src.ShardDigest(i) {
			t.Fatalf("shard %d lineage not resumed", i)
		}
	}

	other := mk(8)
	if err := other.LoadDump(dump); err != nil {
		t.Fatal(err)
	}
	if other.Len() != 50 {
		t.Fatalf("cross-shape load: len %d", other.Len())
	}
	if other.Serial() != 0 {
		t.Fatalf("cross-shape load must restart lineage, serial %d", other.Serial())
	}

	// Per-shard dumps round-trip shard by shard.
	dst := mk(4)
	for i := 0; i < 4; i++ {
		if err := dst.LoadDumpShard(i, src.DumpShard(i)); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Len() != 50 || dst.Serial() != src.Serial() {
		t.Fatalf("per-shard load: len %d serial %d", dst.Len(), dst.Serial())
	}
	// A shard dump routed to the wrong shard is rejected.
	for i := 0; i < 4; i++ {
		if src.ShardLen(i) == 0 {
			continue
		}
		wrong := (i + 1) % 4
		if err := dst.LoadDumpShard(wrong, src.DumpShard(i)); err == nil {
			t.Fatalf("misrouted shard dump %d→%d accepted", i, wrong)
		}
		break
	}
}

// TestShardedDeltaPlane exercises per-shard ChangesSince/ApplyChanges —
// the unit the kprop v3 plane ships.
func TestShardedDeltaPlane(t *testing.T) {
	master := des.StringToKey("m", "R")
	mk := func() *Database {
		stores := make([]Store, 4)
		for i := range stores {
			stores[i] = NewMemStore()
		}
		return NewSharded(master, stores)
	}
	src := mk()
	dst := mk()
	addN(t, src, 30)
	for i := 0; i < 4; i++ {
		if err := dst.LoadDumpShard(i, src.DumpShard(i)); err != nil {
			t.Fatal(err)
		}
	}
	addN2 := func(db *Database, from, to int) {
		for i := from; i < to; i++ {
			key := des.StringToKey(fmt.Sprintf("pw%d", i), "ATHENA.MIT.EDU")
			if err := db.Add(fmt.Sprintf("user%03d", i), "", key, core.DefaultTGTLife, "test", t0); err != nil {
				t.Fatal(err)
			}
		}
	}
	addN2(src, 30, 45)
	for i := 0; i < 4; i++ {
		changes, verdict := src.ChangesSinceShard(i, dst.ShardSerial(i), dst.ShardDigest(i))
		if verdict != DeltaOK {
			t.Fatalf("shard %d verdict %v", i, verdict)
		}
		if err := dst.ApplyChangesShard(i, changes, src.ShardDigest(i)); err != nil {
			t.Fatalf("shard %d apply: %v", i, err)
		}
	}
	if dst.Len() != 45 || dst.Digest() != src.Digest() {
		t.Fatalf("after per-shard deltas: len %d digest %x vs %x", dst.Len(), dst.Digest(), src.Digest())
	}
	// Misrouted changes are rejected before anything applies.
	changes, verdict := src.ChangesSinceShard(0, 0, 0)
	if verdict != DeltaOK || len(changes) == 0 {
		t.Skip("no retained changes for shard 0")
	}
	for i := 1; i < 4; i++ {
		if err := dst.ApplyChangesShard(i, changes, 0); err == nil {
			t.Fatalf("misrouted delta for shard 0 accepted by shard %d", i)
		}
		break
	}
	// Whole-database delta calls on a sharded database refuse rather
	// than guess.
	if _, v := src.ChangesSince(0, 0); v != FallbackRetention {
		t.Fatalf("whole-db ChangesSince on sharded db = %v", v)
	}
	if err := dst.ApplyChanges(nil, 0); err == nil {
		t.Fatal("whole-db ApplyChanges on sharded db accepted")
	}
}

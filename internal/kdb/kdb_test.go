package kdb

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

var t0 = time.Date(1988, 2, 9, 12, 0, 0, 0, time.UTC)

func newTestDB(t testing.TB) *Database {
	t.Helper()
	return New(des.StringToKey("master-password", "ATHENA.MIT.EDU"))
}

func TestAddGetKeyRoundTrip(t *testing.T) {
	db := newTestDB(t)
	key := des.StringToKey("zanzibar", "ATHENA.MIT.EDUjis")
	if err := db.Add("jis", "", key, core.DefaultTGTLife, "kdb_init", t0); err != nil {
		t.Fatal(err)
	}
	e, err := db.Get("jis", "")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "jis" || e.Instance != "" || e.KVNO != 1 {
		t.Errorf("entry = %+v", e)
	}
	if !e.Expiration.Equal(t0.Add(DefaultExpiration)) {
		t.Errorf("expiration = %v, want a few years out", e.Expiration)
	}
	got, err := db.Key(e)
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Error("decrypted key differs from stored key")
	}
	// Keys in the store are never in the clear.
	for i := 0; i+des.KeySize <= len(e.EncKey); i++ {
		if [8]byte(e.EncKey[i:i+8]) == [8]byte(key) {
			t.Error("raw key visible inside stored entry")
		}
	}
}

func TestAddDuplicateAndInvalid(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := db.Add("jis", "", key, 0, "x", t0); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("jis", "", key, 0, "x", t0); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate add error = %v", err)
	}
	if err := db.Add("", "", key, 0, "x", t0); err == nil {
		t.Error("empty name accepted")
	}
	if err := db.Add("a@b", "", key, 0, "x", t0); err == nil {
		t.Error("name with @ accepted")
	}
}

func TestGetMissing(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Get("nobody", ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing principal error = %v", err)
	}
}

func TestSetKeyBumpsKVNO(t *testing.T) {
	db := newTestDB(t)
	k1 := des.StringToKey("old", "R")
	k2 := des.StringToKey("new", "R")
	if err := db.Add("jis", "", k1, 0, "x", t0); err != nil {
		t.Fatal(err)
	}
	if err := db.SetKey("jis", "", k2, "jis", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	e, _ := db.Get("jis", "")
	if e.KVNO != 2 {
		t.Errorf("KVNO = %d, want 2", e.KVNO)
	}
	if e.ModBy != "jis" || !e.ModTime.Equal(t0.Add(time.Hour)) {
		t.Errorf("administrative info not updated: %+v", e)
	}
	got, err := db.Key(e)
	if err != nil || got != k2 {
		t.Errorf("new key = %v, %v", got, err)
	}
	if err := db.SetKey("ghost", "", k2, "x", t0); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetKey on missing principal = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := db.Add("tmp", "host", key, 0, "x", t0); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("tmp", "host"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("tmp", "host"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted entry still present")
	}
	if err := db.Delete("tmp", "host"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete error = %v", err)
	}
}

// TestReadOnlySlave reproduces §5: "slave copies are read-only", but
// propagation (LoadDump) still refreshes them.
func TestReadOnlySlave(t *testing.T) {
	master := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := master.Add("jis", "", key, 0, "x", t0); err != nil {
		t.Fatal(err)
	}

	slave := New(master.MasterKey())
	slave.SetReadOnly(true)
	if !slave.ReadOnly() {
		t.Fatal("slave not read-only")
	}
	if err := slave.Add("evil", "", key, 0, "x", t0); !errors.Is(err, ErrReadOnly) {
		t.Errorf("slave Add = %v", err)
	}
	if err := slave.SetKey("jis", "", key, "x", t0); !errors.Is(err, ErrReadOnly) {
		t.Errorf("slave SetKey = %v", err)
	}
	if err := slave.Delete("jis", ""); !errors.Is(err, ErrReadOnly) {
		t.Errorf("slave Delete = %v", err)
	}
	// Propagation bypasses read-only.
	if err := slave.LoadDump(master.Dump()); err != nil {
		t.Fatal(err)
	}
	e, err := slave.Get("jis", "")
	if err != nil {
		t.Fatal(err)
	}
	if k, err := slave.Key(e); err != nil || k != key {
		t.Errorf("slave cannot decrypt propagated key: %v", err)
	}
}

func TestWrongMasterKey(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := db.Add("jis", "", key, 0, "x", t0); err != nil {
		t.Fatal(err)
	}
	e, _ := db.Get("jis", "")
	other := New(des.StringToKey("wrong-master", "R"))
	if _, err := other.Key(e); !errors.Is(err, ErrMasterKey) {
		t.Errorf("wrong master key error = %v", err)
	}
}

func TestDumpDeterministicAndComplete(t *testing.T) {
	db := newTestDB(t)
	for _, name := range []string{"zeta", "alpha", "mu", "krbtgt", "rlogin"} {
		key, _ := des.NewRandomKey()
		if err := db.Add(name, "inst", key, 42, "init", t0); err != nil {
			t.Fatal(err)
		}
	}
	d1 := db.Dump()
	d2 := db.Dump()
	if string(d1) != string(d2) {
		t.Error("dump not deterministic")
	}
	entries, err := ParseDump(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("parsed %d entries, want 5", len(entries))
	}
	// Sorted by ID.
	for i := 1; i < len(entries); i++ {
		if entries[i-1].ID() >= entries[i].ID() {
			t.Error("dump not sorted")
		}
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := db.Add("jis", "", key, 95, "init", t0); err != nil {
		t.Fatal(err)
	}
	if err := db.SetKey("jis", "", key, "jis", t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}

	db2 := New(db.MasterKey())
	if err := db2.LoadDump(db.Dump()); err != nil {
		t.Fatal(err)
	}
	e1, _ := db.Get("jis", "")
	e2, err := db2.Get("jis", "")
	if err != nil {
		t.Fatal(err)
	}
	if e1.KVNO != e2.KVNO || !e1.Expiration.Equal(e2.Expiration) ||
		e1.MaxLife != e2.MaxLife || e1.ModBy != e2.ModBy || !e1.ModTime.Equal(e2.ModTime) {
		t.Errorf("entries differ after dump/load:\n%+v\n%+v", e1, e2)
	}
}

func TestParseDumpRejectsCorruption(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	for _, n := range []string{"a", "b", "c"} {
		if err := db.Add(n, "", key, 0, "x", t0); err != nil {
			t.Fatal(err)
		}
	}
	dump := db.Dump()
	if _, err := ParseDump(nil); err == nil {
		t.Error("nil dump accepted")
	}
	if _, err := ParseDump([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ParseDump(dump[:len(dump)-3]); err == nil {
		t.Error("truncated dump accepted")
	}
	if _, err := ParseDump(append(append([]byte(nil), dump...), 1, 2, 3)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestDumpChecksumDetectsTampering(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := db.Add("jis", "", key, 0, "x", t0); err != nil {
		t.Fatal(err)
	}
	dump := db.Dump()
	sum := DumpChecksum(db.MasterKey(), dump)
	mut := append([]byte(nil), dump...)
	mut[len(mut)/2] ^= 1
	if DumpChecksum(db.MasterKey(), mut) == sum {
		t.Error("tampered dump has same checksum")
	}
	// A host without the master key computes a different checksum, so it
	// cannot forge an acceptable dump.
	if DumpChecksum(des.StringToKey("intruder", "R"), dump) == sum {
		t.Error("checksum not keyed by master key")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := db.Add("jis", "", key, 0, "x", t0); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/principal.db"
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2 := New(db.MasterKey())
	if err := db2.Load(path); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 1 {
		t.Errorf("loaded %d entries, want 1", db2.Len())
	}
	if err := db2.Load(path + ".missing"); err == nil {
		t.Error("missing file loaded")
	}
}

func TestExpiredEntry(t *testing.T) {
	e := &Entry{Expiration: t0}
	if e.Expired(t0.Add(-time.Hour)) {
		t.Error("entry expired before its date")
	}
	if !e.Expired(t0.Add(time.Hour)) {
		t.Error("entry not expired after its date")
	}
	if (&Entry{}).Expired(t0) {
		t.Error("zero expiration should mean never")
	}
}

func TestListAndRange(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	for _, n := range []string{"c", "a", "b"} {
		if err := db.Add(n, "", key, 0, "x", t0); err != nil {
			t.Fatal(err)
		}
	}
	ids := db.List()
	if len(ids) != 3 || ids[0] != "a." || ids[1] != "b." || ids[2] != "c." {
		t.Errorf("List = %v", ids)
	}
	count := 0
	db.Range(func(e *Entry) bool {
		count++
		return count < 2 // early stop
	})
	if count != 2 {
		t.Errorf("Range visited %d entries after early stop, want 2", count)
	}
}

// TestEntryIsolation: entries handed out must not alias store internals.
func TestEntryIsolation(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := db.Add("jis", "", key, 0, "x", t0); err != nil {
		t.Fatal(err)
	}
	e, _ := db.Get("jis", "")
	e.EncKey[0] ^= 0xff
	e.KVNO = 99
	e2, _ := db.Get("jis", "")
	if e2.KVNO == 99 || e2.EncKey[0] == e.EncKey[0] {
		t.Error("mutating a fetched entry changed the store")
	}
}

// TestDumpRoundTripProperty: Dump→ParseDump is lossless for arbitrary
// names within component rules.
func TestDumpRoundTripProperty(t *testing.T) {
	master := des.StringToKey("m", "R")
	f := func(names []string) bool {
		db := New(master)
		key, _ := des.NewRandomKey()
		added := 0
		for _, raw := range names {
			name := ""
			for _, r := range raw {
				if r > 0x20 && r < 0x7f && r != '.' && r != '@' && len(name) < 20 {
					name += string(r)
				}
			}
			if name == "" {
				continue
			}
			if err := db.Add(name, "", key, 0, "q", t0); err == nil {
				added++
			}
		}
		db2 := New(master)
		if err := db2.LoadDump(db.Dump()); err != nil {
			return false
		}
		return db2.Len() == added
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDump10k(b *testing.B) {
	db := New(des.StringToKey("m", "R"))
	key, _ := des.NewRandomKey()
	for i := 0; i < 10000; i++ {
		name := "user" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		db.Add(name, ID("inst", string(rune('0'+i%10)))[:5], key, 0, "x", t0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Dump()
	}
}

func TestSetExpiration(t *testing.T) {
	db := newTestDB(t)
	key, _ := des.NewRandomKey()
	if err := db.Add("jis", "", key, 0, "x", t0); err != nil {
		t.Fatal(err)
	}
	renewal := t0.AddDate(10, 0, 0)
	if err := db.SetExpiration("jis", "", renewal, "kadmin", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	e, _ := db.Get("jis", "")
	if !e.Expiration.Equal(renewal) || e.ModBy != "kadmin" {
		t.Errorf("entry after renewal: %+v", e)
	}
	if err := db.SetExpiration("ghost", "", renewal, "x", t0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing principal = %v", err)
	}
	db.SetReadOnly(true)
	if err := db.SetExpiration("jis", "", renewal, "x", t0); !errors.Is(err, ErrReadOnly) {
		t.Errorf("read-only = %v", err)
	}
}

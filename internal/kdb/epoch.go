package kdb

import (
	"sort"
	"sync"
	"sync/atomic"
)

// EpochStore is the lock-free-read Store the KDC serves from. The
// RWMutex stores (MemStore) make every read take a shared lock; at
// high core counts the lock word itself becomes the contention point —
// every GetRO bounces the cache line even though readers conflict with
// nothing. EpochStore removes the read-side lock entirely with
// epoch-style publication:
//
//   - The whole index lives behind one atomic.Pointer. A reader loads
//     the pointer once and works on an immutable snapshot; it takes no
//     lock, writes no shared memory, and cannot be blocked by writers.
//   - Writers (serialized by a mutex, matching the Database's per-shard
//     write discipline) never mutate a published index. They copy the
//     touched bucket plus the small spine above it, splice in the
//     change, and publish a new index with one atomic store.
//   - Readers that loaded the old pointer keep a fully consistent old
//     snapshot; the GC retires it when the last reader drops it — the
//     grace period comes for free.
//
// The index itself is two layers. The bulk of the data sits in an
// ID-sorted entry slab with an open-addressed hash table over it — the
// form a KDB4 snapshot materializes into with O(1) allocations. On top
// rides a small copy-on-write delta trie (64×64 fan-out of slots)
// holding everything written since the slab was built; a fixed-depth
// trie keeps the per-write copy cost at ~3 small nodes regardless of
// delta size. When the delta outgrows a fraction of the slab it is
// folded down into a fresh slab off the write lock's critical reads —
// amortized O(1) per write.
//
// A batch (ApplyBatch, the kprop delta install) mutates one private
// copy and publishes once, so concurrent readers observe none or all
// of the batch, exactly like MemStore's single lock window.
type EpochStore struct {
	mu  sync.Mutex // writers only; readers never touch it
	idx atomic.Pointer[epochIndex]
}

const deltaFan = 64 // trie fan-out per level (two levels: 4096 buckets)

// epochIndex is one immutable published version of the store. The base
// takes one of two forms: a heap slab (slab != nil path), or a
// snapshot-backed snapBase (snap != nil) serving lookups straight from
// the mapped KDB4 records so cold start touches no per-entry memory.
type epochIndex struct {
	slab  []Entry   // ID-sorted base entries; strings may alias an mmap
	snap  *snapBase // lazily-materialized mapped base; nil when slab-backed
	table []int32   // open-addressed: hash slot -> base index, -1 empty
	root  [deltaFan]*deltaMid
	live  int // live entries (base + delta upserts - tombstones)
	dirty int // delta slots (upserts + tombstones); fold trigger
}

type deltaMid struct {
	buckets [deltaFan]*deltaBucket
}

type deltaBucket struct {
	slots []deltaSlot
}

// deltaSlot is one overlay record: an upsert (e != nil) or a tombstone
// shadowing a slab entry (e == nil).
type deltaSlot struct {
	h  uint64
	id string
	e  *Entry
}

// snapBase serves an epoch's base straight from a mapped KDB4
// snapshot. Probes compare names against zero-copy arena views, so a
// cold start installs the mapping and the precomputed probe table and
// is done — no per-entry decode, no slab fill, no rehash. The first
// time a record is actually returned it is materialized once into ents
// (first-fill-wins CAS, the entryKeyCache discipline), so each
// principal pays its decode on first use and a stable *Entry identity
// afterwards — which is also what lets the per-entry key cache stick.
type snapBase struct {
	sn   *Snapshot
	ents []atomic.Pointer[Entry]
}

// matchPair reports whether record j is (name, instance), comparing
// against the arena without materializing anything.
func (sb *snapBase) matchPair(j int, name, instance string) bool {
	n, inst := sb.sn.nameInstAt(j)
	return n == name && inst == instance
}

// entry returns the stable materialized form of record j.
func (sb *snapBase) entry(j int) *Entry {
	if p := sb.ents[j].Load(); p != nil {
		return p
	}
	e := new(Entry)
	sb.sn.decodeRecord(j, e)
	if sb.ents[j].CompareAndSwap(nil, e) {
		return e
	}
	return sb.ents[j].Load()
}

// baseLen returns the number of base records (either form).
func (ix *epochIndex) baseLen() int {
	if ix.snap != nil {
		return len(ix.snap.ents)
	}
	return len(ix.slab)
}

// baseCompareID three-way compares base record j's ID to id in
// joined-string order (the merge order fold and Range walk in).
func (ix *epochIndex) baseCompareID(j int, id string) int {
	if sb := ix.snap; sb != nil {
		name, inst := sb.sn.nameInstAt(j)
		return comparePairID(name, inst, id)
	}
	return compareEntryID(&ix.slab[j], id)
}

// baseCopyAt copies base record j for a rebuilt slab, carrying the key
// cache along when the record has a materialized form.
func (ix *epochIndex) baseCopyAt(j int) Entry {
	if sb := ix.snap; sb != nil {
		if p := sb.ents[j].Load(); p != nil {
			return copyEntry(p)
		}
		var e Entry
		sb.sn.decodeRecord(j, &e)
		return e
	}
	return copyEntry(&ix.slab[j])
}

// baseCloneAt clones base record j (Range's per-entry copy).
func (ix *epochIndex) baseCloneAt(j int) *Entry {
	if sb := ix.snap; sb != nil {
		if p := sb.ents[j].Load(); p != nil {
			return p.clone()
		}
		var e Entry
		sb.sn.decodeRecord(j, &e)
		return e.clone()
	}
	return ix.slab[j].clone()
}

// NewEpochStore returns an empty store.
func NewEpochStore() *EpochStore {
	s := &EpochStore{}
	s.idx.Store(&epochIndex{})
	return s
}

// hashID is the FNV-1a hash of a rendered "name.instance" ID — the
// same stream ShardIndexID runs, kept separate so the table hash and
// the shard router can evolve independently.
func hashID(id string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64
	}
	return h
}

// hashPair is hashID over the ID the (name, instance) pair would
// render to, without materializing it.
func hashPair(name, instance string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	h ^= uint64('.')
	h *= fnvPrime64
	for i := 0; i < len(instance); i++ {
		h ^= uint64(instance[i])
		h *= fnvPrime64
	}
	return h
}

// entryIsID reports whether e's ID equals id without rendering it.
func entryIsID(e *Entry, id string) bool {
	n := len(e.Name)
	return len(id) == n+1+len(e.Instance) &&
		id[n] == '.' && id[:n] == e.Name && id[n+1:] == e.Instance
}

// idIsPair reports whether id equals ID(name, instance) without
// rendering the pair.
func idIsPair(id, name, instance string) bool {
	n := len(name)
	return len(id) == n+1+len(instance) &&
		id[:n] == name && id[n] == '.' && id[n+1:] == instance
}

// compareEntryID three-way compares e's ID to id in joined-string
// order (Name + "." + Instance, the order every Range and dump uses)
// without materializing the join.
func compareEntryID(e *Entry, id string) int {
	return comparePairID(e.Name, e.Instance, id)
}

// comparePairID is compareEntryID over a bare (name, instance) pair —
// the form a mapped snapshot record decodes to.
func comparePairID(name, instance, id string) int {
	n := len(name)
	if n < len(id) {
		if c := strcmp(name, id[:n]); c != 0 {
			return c
		}
		rest := id[n:] // non-empty: the joined ID's "." + instance vs rest
		if rest[0] != '.' {
			if '.' < rest[0] {
				return -1
			}
			return 1
		}
		return strcmp(instance, rest[1:])
	}
	// The name alone is at least as long as id. If its prefix differs,
	// that decides; otherwise the joined ID strictly extends id (with
	// the rest of the name and/or "." + instance), so it sorts after.
	if c := strcmp(name[:len(id)], id); c != 0 {
		return c
	}
	return 1
}

func strcmp(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// lookup resolves id against the index: delta first (authoritative for
// anything it holds, including tombstones), then the slab table.
func (ix *epochIndex) lookup(h uint64, id string) (*Entry, bool) {
	if mid := ix.root[h&(deltaFan-1)]; mid != nil {
		if b := mid.buckets[(h>>6)&(deltaFan-1)]; b != nil {
			for i := range b.slots {
				s := &b.slots[i]
				if s.h == h && s.id == id {
					if s.e == nil {
						return nil, false // tombstone
					}
					return s.e, true
				}
			}
		}
	}
	return ix.baseLookup(h, id)
}

// lookupPair is lookup keyed by the (name, instance) pair, so the hot
// path never renders the joined ID.
func (ix *epochIndex) lookupPair(h uint64, name, instance string) (*Entry, bool) {
	if mid := ix.root[h&(deltaFan-1)]; mid != nil {
		if b := mid.buckets[(h>>6)&(deltaFan-1)]; b != nil {
			for i := range b.slots {
				s := &b.slots[i]
				if s.h == h && idIsPair(s.id, name, instance) {
					if s.e == nil {
						return nil, false
					}
					return s.e, true
				}
			}
		}
	}
	if len(ix.table) == 0 {
		return nil, false
	}
	mask := uint64(len(ix.table) - 1)
	if sb := ix.snap; sb != nil {
		for i := h & mask; ; i = (i + 1) & mask {
			j := ix.table[i]
			if j < 0 {
				return nil, false
			}
			if sb.matchPair(int(j), name, instance) {
				return sb.entry(int(j)), true
			}
		}
	}
	for i := h & mask; ; i = (i + 1) & mask {
		j := ix.table[i]
		if j < 0 {
			return nil, false
		}
		e := &ix.slab[j]
		if e.Name == name && e.Instance == instance {
			return e, true
		}
	}
}

func (ix *epochIndex) baseLookup(h uint64, id string) (*Entry, bool) {
	if len(ix.table) == 0 {
		return nil, false
	}
	mask := uint64(len(ix.table) - 1)
	if sb := ix.snap; sb != nil {
		for i := h & mask; ; i = (i + 1) & mask {
			j := ix.table[i]
			if j < 0 {
				return nil, false
			}
			name, inst := sb.sn.nameInstAt(int(j))
			if idIsPair(id, name, inst) {
				return sb.entry(int(j)), true
			}
		}
	}
	for i := h & mask; ; i = (i + 1) & mask {
		j := ix.table[i]
		if j < 0 {
			return nil, false
		}
		e := &ix.slab[j]
		if entryIsID(e, id) {
			return e, true
		}
	}
}

// Fetch implements Store.
func (s *EpochStore) Fetch(id string) (*Entry, bool) {
	e, ok := s.FetchShared(id)
	if !ok {
		return nil, false
	}
	return e.clone(), true
}

// FetchShared implements Store: one atomic load, zero locks, zero
// allocations. Entries are immutable-and-replaced, so sharing is safe.
func (s *EpochStore) FetchShared(id string) (*Entry, bool) {
	return s.idx.Load().lookup(hashID(id), id)
}

// FetchSharedPair is FetchShared keyed by the un-joined (name,
// instance) pair — the KDC's GetRO path, which must not allocate even
// for the ID string.
//
//kerb:hotpath
func (s *EpochStore) FetchSharedPair(name, instance string) (*Entry, bool) {
	return s.idx.Load().lookupPair(hashPair(name, instance), name, instance)
}

// Len implements Store.
func (s *EpochStore) Len() int { return s.idx.Load().live }

// Put implements Store.
func (s *EpochStore) Put(e *Entry) {
	c := e.clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked([]*Entry{c}, nil)
}

// Delete implements Store.
func (s *EpochStore) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(nil, []string{id})
}

// ApplyBatch implements Store: the whole batch lands in one
// publication, so readers see none or all of it.
func (s *EpochStore) ApplyBatch(upserts []*Entry, deletes []string) {
	clones := make([]*Entry, len(upserts))
	for i, e := range upserts {
		clones[i] = e.clone()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(clones, deletes)
}

// ReplaceAll implements Store: a fresh slab, published once.
func (s *EpochStore) ReplaceAll(entries []*Entry) {
	slab := make([]Entry, len(entries))
	for i, e := range entries {
		slab[i] = *e.clone()
	}
	ensureSortedSlab(slab)
	ix := indexSlab(slab)
	s.mu.Lock()
	s.idx.Store(ix)
	s.mu.Unlock()
}

// InstallSlab publishes a caller-built slab directly, without cloning
// — the cold-start path installing entries materialized from a KDB4
// snapshot (which already owns them and keeps their backing memory
// alive). The slab must be ID-sorted with unique IDs; a snapshot is by
// construction, and anything else is re-sorted defensively.
func (s *EpochStore) InstallSlab(slab []Entry) {
	ensureSortedSlab(slab)
	ix := indexSlab(slab)
	s.mu.Lock()
	s.idx.Store(ix)
	s.mu.Unlock()
}

// installSnapshot publishes a snapshot-backed base: the mapped records
// themselves serve lookups through the snapshot's prebuilt probe table
// (which may alias the mapping), and entries materialize lazily on
// first fetch. This is the KDB4 cold-start path — install cost is O(1)
// in the principal count. The snapshot must stay open for the life of
// the store: delta folds copy arena-aliased strings into heap slabs,
// so even after the snap base is folded away its mapping is referenced.
func (s *EpochStore) installSnapshot(sn *Snapshot, table []int32) {
	ix := &epochIndex{
		snap:  &snapBase{sn: sn, ents: make([]atomic.Pointer[Entry], sn.Count())},
		table: table,
		live:  sn.Count(),
	}
	s.mu.Lock()
	s.idx.Store(ix)
	s.mu.Unlock()
}

// ensureSortedSlab sorts the slab by ID when it is not already (bulk
// callers pass dump order, which is sorted; the check is one pass).
func ensureSortedSlab(slab []Entry) {
	sorted := true
	for i := 1; i < len(slab); i++ {
		if compareEntryID(&slab[i-1], slab[i].ID()) >= 0 {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(slab, func(i, j int) bool {
			return compareEntryID(&slab[i], slab[j].ID()) < 0
		})
	}
}

// sortedEntriesByID returns entries in joined-ID order, copying only
// when the input is not already sorted (bulk callers pass dump order).
func sortedEntriesByID(entries []*Entry) []*Entry {
	for i := 1; i < len(entries); i++ {
		if compareEntryID(entries[i-1], entries[i].ID()) >= 0 {
			c := append([]*Entry(nil), entries...)
			sort.Slice(c, func(i, j int) bool {
				return compareEntryID(c[i], c[j].ID()) < 0
			})
			return c
		}
	}
	return entries
}

// indexSlab builds the published index for a sorted slab: the
// open-addressed table at load factor ≤ 0.5.
func indexSlab(slab []Entry) *epochIndex {
	ix := &epochIndex{slab: slab, live: len(slab)}
	if len(slab) == 0 {
		return ix
	}
	size := 1
	for size < len(slab)*2 {
		size <<= 1
	}
	table := make([]int32, size)
	for i := range table {
		table[i] = -1
	}
	mask := uint64(size - 1)
	for j := range slab {
		h := hashPair(slab[j].Name, slab[j].Instance)
		for i := h & mask; ; i = (i + 1) & mask {
			if table[i] < 0 {
				table[i] = int32(j)
				break
			}
		}
	}
	ix.table = table
	return ix
}

// epochBuilder accumulates one batch of mutations into a private copy
// of the index, cloning each trie node at most once per batch.
type epochBuilder struct {
	ix           *epochIndex
	clonedMid    [deltaFan]bool
	clonedBucket [deltaFan][deltaFan]bool
}

// applyLocked installs a batch: clone-and-mutate, then one publish.
// Callers hold s.mu.
func (s *EpochStore) applyLocked(upserts []*Entry, deletes []string) {
	cur := s.idx.Load()
	next := &epochIndex{
		slab:  cur.slab,
		snap:  cur.snap,
		table: cur.table,
		root:  cur.root, // array copy: 64 pointers
		live:  cur.live,
		dirty: cur.dirty,
	}
	b := &epochBuilder{ix: next}
	for _, e := range upserts {
		b.upsert(e)
	}
	for _, id := range deletes {
		b.delete(id)
	}
	if next.dirty > foldThreshold(len(next.slab)) {
		next = next.fold()
	}
	s.idx.Store(next)
}

// bucket returns the delta bucket for h, cloned for this batch.
func (b *epochBuilder) bucket(h uint64) *deltaBucket {
	ri := h & (deltaFan - 1)
	mi := (h >> 6) & (deltaFan - 1)
	mid := b.ix.root[ri]
	switch {
	case mid == nil:
		mid = &deltaMid{}
		b.ix.root[ri] = mid
		b.clonedMid[ri] = true
	case !b.clonedMid[ri]:
		c := *mid
		mid = &c
		b.ix.root[ri] = mid
		b.clonedMid[ri] = true
	}
	bk := mid.buckets[mi]
	switch {
	case bk == nil:
		bk = &deltaBucket{}
		mid.buckets[mi] = bk
		b.clonedBucket[ri][mi] = true
	case !b.clonedBucket[ri][mi]:
		bk = &deltaBucket{slots: append([]deltaSlot(nil), bk.slots...)}
		mid.buckets[mi] = bk
		b.clonedBucket[ri][mi] = true
	}
	return bk
}

func (b *epochBuilder) upsert(e *Entry) {
	id := e.ID()
	h := hashID(id)
	bk := b.bucket(h)
	for i := range bk.slots {
		s := &bk.slots[i]
		if s.h == h && s.id == id {
			if s.e == nil {
				b.ix.live++ // resurrecting a tombstoned ID
			}
			s.e = e
			return
		}
	}
	bk.slots = append(bk.slots, deltaSlot{h: h, id: id, e: e})
	b.ix.dirty++
	if _, inBase := b.ix.baseLookup(h, id); !inBase {
		b.ix.live++
	}
}

func (b *epochBuilder) delete(id string) {
	h := hashID(id)
	bk := b.bucket(h)
	for i := range bk.slots {
		s := &bk.slots[i]
		if s.h == h && s.id == id {
			if s.e == nil {
				return // already deleted
			}
			b.ix.live--
			if _, inBase := b.ix.baseLookup(h, id); inBase {
				s.e = nil // keep the tombstone shadowing the slab
			} else {
				bk.slots = append(bk.slots[:i], bk.slots[i+1:]...)
				b.ix.dirty--
			}
			return
		}
	}
	if _, inBase := b.ix.baseLookup(h, id); inBase {
		bk.slots = append(bk.slots, deltaSlot{h: h, id: id})
		b.ix.dirty++
		b.ix.live--
	}
}

// foldThreshold is the delta size that triggers a fold. Growing with
// the slab keeps the amortized fold cost per write constant (each fold
// copies ≤ ~5× the writes that paid for it) while the floor stops tiny
// databases from folding on every write.
func foldThreshold(slabLen int) int {
	t := slabLen / 4
	if t < 1024 {
		t = 1024
	}
	return t
}

// sortedOverlay flattens the delta trie into ID order.
func (ix *epochIndex) sortedOverlay() []deltaSlot {
	if ix.dirty == 0 {
		return nil
	}
	overlay := make([]deltaSlot, 0, ix.dirty)
	for _, mid := range ix.root {
		if mid == nil {
			continue
		}
		for _, bk := range mid.buckets {
			if bk != nil {
				overlay = append(overlay, bk.slots...)
			}
		}
	}
	sort.Slice(overlay, func(i, j int) bool { return overlay[i].id < overlay[j].id })
	return overlay
}

// fold merges the delta down into a fresh slab + table. Entry values
// are copied field-wise so the per-entry decrypted-key cache pointer
// transfers atomically (readers may be CASing it on the old slab while
// the fold runs). A snapshot-backed base folds the same way — its
// records decode into the new slab (aliasing the mapping, which the
// owning SegmentStore keeps open until Close).
func (ix *epochIndex) fold() *epochIndex {
	overlay := ix.sortedOverlay()
	n := ix.baseLen()
	slab := make([]Entry, 0, ix.live)
	si, oi := 0, 0
	for si < n || oi < len(overlay) {
		switch {
		case oi >= len(overlay):
			slab = append(slab, ix.baseCopyAt(si))
			si++
		case si >= n:
			if overlay[oi].e != nil {
				slab = append(slab, copyEntry(overlay[oi].e))
			}
			oi++
		default:
			c := ix.baseCompareID(si, overlay[oi].id)
			switch {
			case c < 0:
				slab = append(slab, ix.baseCopyAt(si))
				si++
			case c > 0:
				if overlay[oi].e != nil {
					slab = append(slab, copyEntry(overlay[oi].e))
				}
				oi++
			default:
				if overlay[oi].e != nil {
					slab = append(slab, copyEntry(overlay[oi].e))
				}
				si++
				oi++
			}
		}
	}
	return indexSlab(slab)
}

// Range implements Store: a clone per entry in globally sorted ID
// order, merging the sorted slab with the sorted overlay (identical
// output to MemStore.Range over the same contents, so dumps stay
// byte-identical).
func (s *EpochStore) Range(fn func(*Entry) bool) {
	ix := s.idx.Load()
	overlay := ix.sortedOverlay()
	n := ix.baseLen()
	si, oi := 0, 0
	for si < n || oi < len(overlay) {
		var e *Entry
		switch {
		case oi >= len(overlay):
			e = ix.baseCloneAt(si)
			si++
		case si >= n:
			e = cloneSlot(overlay[oi].e)
			oi++
		default:
			c := ix.baseCompareID(si, overlay[oi].id)
			switch {
			case c < 0:
				e = ix.baseCloneAt(si)
				si++
			case c > 0:
				e = cloneSlot(overlay[oi].e)
				oi++
			default:
				e = cloneSlot(overlay[oi].e)
				si++
				oi++
			}
		}
		if e == nil {
			continue // tombstone
		}
		if !fn(e) {
			return
		}
	}
}

// cloneSlot clones a delta slot's entry, passing tombstones through.
func cloneSlot(e *Entry) *Entry {
	if e == nil {
		return nil
	}
	return e.clone()
}

// SlabStats reports the published index shape (observability: resident
// cost and delta pressure).
func (s *EpochStore) SlabStats() (slabLen, deltaLen, tableLen int) {
	ix := s.idx.Load()
	return ix.baseLen(), ix.dirty, len(ix.table)
}

package kdb

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

func addN(t testing.TB, db *Database, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := des.StringToKey(fmt.Sprintf("pw%d", i), "ATHENA.MIT.EDU")
		if err := db.Add(fmt.Sprintf("user%03d", i), "", key, core.DefaultTGTLife, "test", t0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSerialAdvancesOnEveryWrite(t *testing.T) {
	db := newTestDB(t)
	if db.Serial() != 0 {
		t.Fatalf("fresh serial = %d", db.Serial())
	}
	addN(t, db, 3)
	if db.Serial() != 3 {
		t.Fatalf("serial after 3 adds = %d", db.Serial())
	}
	key, _ := des.NewRandomKey()
	if err := db.SetKey("user000", "", key, "test", t0); err != nil {
		t.Fatal(err)
	}
	if err := db.SetExpiration("user001", "", t0.Add(time.Hour), "test", t0); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("user002", ""); err != nil {
		t.Fatal(err)
	}
	if db.Serial() != 6 {
		t.Fatalf("serial after 6 writes = %d", db.Serial())
	}
	if db.JournalLen() != 6 {
		t.Fatalf("journal len = %d", db.JournalLen())
	}
	if db.Digest() == 0 {
		t.Fatal("digest still zero after writes")
	}
}

func TestChangesSinceDeltaAndApply(t *testing.T) {
	master := newTestDB(t)
	addN(t, master, 5)

	// Slave starts from a full dump of the master.
	slave := New(master.masterKey)
	slave.SetReadOnly(true)
	if err := slave.LoadDump(master.Dump()); err != nil {
		t.Fatal(err)
	}
	if slave.Serial() != master.Serial() || slave.Digest() != master.Digest() {
		t.Fatalf("slave at (%d,%x), master at (%d,%x)",
			slave.Serial(), slave.Digest(), master.Serial(), master.Digest())
	}

	// Up to date: empty delta.
	if ch, v := master.ChangesSince(slave.Serial(), slave.Digest()); v != DeltaOK || len(ch) != 0 {
		t.Fatalf("up-to-date = (%d changes, %v)", len(ch), v)
	}

	// Master churns: a password change, a delete, a new principal.
	key, _ := des.NewRandomKey()
	if err := master.SetKey("user001", "", key, "admin", t0); err != nil {
		t.Fatal(err)
	}
	if err := master.Delete("user004", ""); err != nil {
		t.Fatal(err)
	}
	if err := master.Add("newbie", "", des.StringToKey("pw", "R"), core.DefaultTGTLife, "admin", t0); err != nil {
		t.Fatal(err)
	}

	ch, v := master.ChangesSince(slave.Serial(), slave.Digest())
	if v != DeltaOK {
		t.Fatalf("verdict = %v", v)
	}
	if len(ch) != 3 {
		t.Fatalf("delta carries %d changes, want 3", len(ch))
	}
	if err := slave.ApplyChanges(ch, master.Digest()); err != nil {
		t.Fatal(err)
	}
	if slave.Serial() != master.Serial() || slave.Digest() != master.Digest() {
		t.Fatalf("slave diverged after apply: (%d,%x) vs (%d,%x)",
			slave.Serial(), slave.Digest(), master.Serial(), master.Digest())
	}
	if !bytes.Equal(slave.Dump(), master.Dump()) {
		t.Fatal("slave contents differ from master after delta apply")
	}
	// The deleted principal is gone, the new one resolvable.
	if _, err := slave.Get("user004", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted principal err = %v", err)
	}
	if _, err := slave.Get("newbie", ""); err != nil {
		t.Fatalf("new principal err = %v", err)
	}
	// The key cache must not serve the pre-delta key.
	e, err := slave.Get("user001", "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := slave.Key(e)
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatal("slave served stale key after delta apply")
	}
}

func TestChangesSinceFallbacks(t *testing.T) {
	master := newTestDB(t)
	master.SetJournalCap(4)
	addN(t, master, 10) // journal retains only serials 7..10

	// Too far behind: retention fallback.
	if _, v := master.ChangesSince(2, 123); v != FallbackRetention {
		t.Fatalf("stale slave verdict = %v", v)
	}
	// Ahead of the master: a slave from the future (or another lineage).
	if _, v := master.ChangesSince(99, 123); v != FallbackAhead {
		t.Fatalf("ahead verdict = %v", v)
	}
	// Known serial, wrong digest: divergence.
	if _, v := master.ChangesSince(8, 0xdeadbeef); v != FallbackDivergence {
		t.Fatalf("divergent verdict = %v", v)
	}
	// Same serial, wrong digest: divergence too.
	if _, v := master.ChangesSince(master.Serial(), 0xdeadbeef); v != FallbackDivergence {
		t.Fatalf("same-serial divergent verdict = %v", v)
	}
	// Boundary: the oldest retained change is serial 7, so a slave at 6
	// is servable via the pre-base digest.
	var at6 uint64
	{
		// Rebuild the digest history independently to find the value at 6.
		probe := newTestDB(t)
		addN(t, probe, 6)
		at6 = probe.Digest()
	}
	ch, v := master.ChangesSince(6, at6)
	if v != DeltaOK || len(ch) != 4 {
		t.Fatalf("boundary delta = (%d changes, %v)", len(ch), v)
	}
}

func TestApplyChangesRejectsGapsAndReplays(t *testing.T) {
	master := newTestDB(t)
	addN(t, master, 3)
	slave := New(master.masterKey)
	slave.SetReadOnly(true)
	if err := slave.LoadDump(master.Dump()); err != nil {
		t.Fatal(err)
	}
	addN2 := func() []Change {
		key, _ := des.NewRandomKey()
		if err := master.SetKey("user000", "", key, "x", t0); err != nil {
			t.Fatal(err)
		}
		ch, v := master.ChangesSince(slave.Serial(), slave.Digest())
		if v != DeltaOK {
			t.Fatalf("verdict %v", v)
		}
		return ch
	}
	ch := addN2()
	if err := slave.ApplyChanges(ch, master.Digest()); err != nil {
		t.Fatal(err)
	}
	// Replay: first serial ≤ current.
	if err := slave.ApplyChanges(ch, 0); !errors.Is(err, ErrSerialGap) {
		t.Fatalf("replay err = %v", err)
	}
	// Gap: skip ahead.
	gap := []Change{{Serial: slave.Serial() + 5, Op: ChangeDelete, Entry: &Entry{Name: "x"}}}
	if err := slave.ApplyChanges(gap, 0); !errors.Is(err, ErrSerialGap) {
		t.Fatalf("gap err = %v", err)
	}
	// Wrong digest: all-or-nothing, nothing applied.
	ch2 := addN2()
	before := slave.Serial()
	if err := slave.ApplyChanges(ch2, 0xbad); !errors.Is(err, ErrSerialGap) {
		t.Fatalf("digest err = %v", err)
	}
	if slave.Serial() != before {
		t.Fatal("failed apply advanced the serial")
	}
	if err := slave.ApplyChanges(ch2, master.Digest()); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeChangesRoundTrip(t *testing.T) {
	master := newTestDB(t)
	addN(t, master, 4)
	if err := master.Delete("user002", ""); err != nil {
		t.Fatal(err)
	}
	ch, v := master.ChangesSince(0, 0)
	if v != DeltaOK || len(ch) != 5 {
		t.Fatalf("delta = (%d, %v)", len(ch), v)
	}
	enc := EncodeChanges(ch)
	dec, err := DecodeChanges(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(ch) {
		t.Fatalf("decoded %d changes, want %d", len(dec), len(ch))
	}
	for i := range ch {
		if dec[i].Serial != ch[i].Serial || dec[i].Op != ch[i].Op ||
			!entryEqual(dec[i].Entry, ch[i].Entry) && ch[i].Op == ChangeUpsert {
			t.Fatalf("change %d round-trip mismatch", i)
		}
	}
	// Re-encoding the decoded set is byte-identical (canonical form).
	if !bytes.Equal(EncodeChanges(dec), enc) {
		t.Fatal("re-encode differs")
	}
}

func TestDecodeChangesRejectsCorruption(t *testing.T) {
	master := newTestDB(t)
	addN(t, master, 2)
	ch, _ := master.ChangesSince(0, 0)
	enc := EncodeChanges(ch)
	cases := map[string][]byte{
		"empty":        {},
		"short":        enc[:6],
		"bad magic":    append([]byte("XXXX"), enc[4:]...),
		"trailing":     append(append([]byte(nil), enc...), 0xff),
		"huge count":   append([]byte{'K', 'C', 'H', '1', 0xff, 0xff, 0xff, 0xff}, enc[8:]...),
		"truncated":    enc[:len(enc)-3],
		"unknown op":   func() []byte { b := append([]byte(nil), enc...); b[8] = 99; return b }(),
		"serial break": func() []byte { b := append([]byte(nil), enc...); b[16] ^= 0x01; return b }(),
	}
	for name, data := range cases {
		if _, err := DecodeChanges(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDumpV2CarriesMetaAndV1StillLoads(t *testing.T) {
	db := newTestDB(t)
	addN(t, db, 3)
	dump := db.Dump()
	entries, meta, err := ParseDumpFull(dump)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Serial != 3 || meta.Digest != db.Digest() || len(entries) != 3 {
		t.Fatalf("meta = %+v, %d entries", meta, len(entries))
	}
	// A v1 dump (legacy) still parses, at serial 0.
	v1 := EncodeEntries(entries)
	got, meta1, err := ParseDumpFull(v1)
	if err != nil {
		t.Fatal(err)
	}
	if meta1 != (DumpMeta{}) || len(got) != 3 {
		t.Fatalf("v1 meta = %+v, %d entries", meta1, len(got))
	}
	// LoadDump adopts the v2 meta.
	slave := New(db.masterKey)
	if err := slave.LoadDump(dump); err != nil {
		t.Fatal(err)
	}
	if slave.Serial() != 3 || slave.Digest() != db.Digest() {
		t.Fatalf("slave meta after load = (%d, %x)", slave.Serial(), slave.Digest())
	}
}

func TestFileStorePersistsSerialAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kdb")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	mk := des.StringToKey("master", "R")
	db := NewWithStore(mk, fs)
	addN(t, db, 4)
	wantSerial, wantDigest := db.Serial(), db.Digest()

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	db2 := NewWithStore(mk, fs2)
	if db2.Serial() != wantSerial || db2.Digest() != wantDigest {
		t.Fatalf("reopened at (%d, %x), want (%d, %x)",
			db2.Serial(), db2.Digest(), wantSerial, wantDigest)
	}
	// Writes resume the same lineage.
	if err := db2.Delete("user000", ""); err != nil {
		t.Fatal(err)
	}
	if db2.Serial() != wantSerial+1 {
		t.Fatalf("serial after resume-write = %d", db2.Serial())
	}
}

func TestSyncFromJournalsDiff(t *testing.T) {
	db := newTestDB(t)
	addN(t, db, 5)
	base := db.Serial()

	// Build the "file changed" view: one password change, one delete,
	// one addition, rest untouched.
	entries, err := ParseDump(db.Dump())
	if err != nil {
		t.Fatal(err)
	}
	var next []*Entry
	for _, e := range entries {
		if e.Name == "user003" {
			continue // deleted
		}
		if e.Name == "user001" {
			c := *e
			c.KVNO++
			c.EncKey = append([]byte(nil), e.EncKey...)
			c.EncKey[0] ^= 0xff
			e = &c
		}
		next = append(next, e)
	}
	next = append(next, &Entry{
		Name: "added", Instance: "", EncKey: entries[0].EncKey,
		KVNO: 1, Expiration: t0.Add(time.Hour), MaxLife: core.DefaultTGTLife,
		ModTime: t0, ModBy: "sync",
	})

	n, err := db.SyncFrom(next)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("SyncFrom journaled %d changes, want 3", n)
	}
	if db.Serial() != base+3 {
		t.Fatalf("serial = %d, want %d", db.Serial(), base+3)
	}
	if _, err := db.Get("user003", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted entry err = %v", err)
	}
	if _, err := db.Get("added", ""); err != nil {
		t.Fatalf("added entry err = %v", err)
	}
	// Idempotent: same view again journals nothing.
	if n, err := db.SyncFrom(next); err != nil || n != 0 {
		t.Fatalf("second SyncFrom = (%d, %v)", n, err)
	}
}

func TestJournalRetentionTrim(t *testing.T) {
	db := newTestDB(t)
	db.SetJournalCap(8)
	addN(t, db, 20)
	if db.JournalLen() != 8 {
		t.Fatalf("journal len = %d, want 8", db.JournalLen())
	}
	// Serial 12 is the last trimmed change; a slave at 12 is servable via
	// the pre-base digest, a slave at 11 is not.
	probe := newTestDB(t)
	addN(t, probe, 12)
	if ch, v := db.ChangesSince(12, probe.Digest()); v != DeltaOK || len(ch) != 8 {
		t.Fatalf("boundary = (%d, %v)", len(ch), v)
	}
	if _, v := db.ChangesSince(11, 1); v != FallbackRetention {
		t.Fatalf("past-retention verdict = %v", v)
	}
}

// TestKillMidSaveLeavesOldDump proves the temp+fsync+rename discipline:
// a process killed while saving leaves either the old dump or the new
// one, never a torn file. The child process overwrites a dump in a loop
// until the parent kills it mid-flight.
func TestKillMidSaveLeavesOldDump(t *testing.T) {
	if os.Getenv("KDB_KILL_CHILD") == "1" {
		path := os.Getenv("KDB_KILL_PATH")
		db := New(des.StringToKey("master", "R"))
		for i := 0; ; i++ {
			key := des.StringToKey(fmt.Sprintf("pw%d", i), "R")
			name := fmt.Sprintf("churn%06d", i)
			if err := db.Add(name, "", key, core.DefaultTGTLife, "child", t0); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := db.Save(path); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "kdb")
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run", "TestKillMidSaveLeavesOldDump")
		cmd.Env = append(os.Environ(), "KDB_KILL_CHILD=1", "KDB_KILL_PATH="+path)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(50+round*40) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()

		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) && round == 0 {
				continue // killed before the very first save landed
			}
			t.Fatal(err)
		}
		if _, _, err := ParseDumpFull(data); err != nil {
			t.Fatalf("round %d: dump torn after kill: %v", round, err)
		}
	}
}

// TestDecodeChangesImplausibleCount proves a hostile count prefix cannot
// amplify a tiny delta into a multi-megabyte pre-allocation: each change
// needs at least 11 bytes of payload, so any count the payload cannot
// hold is rejected up front.
func TestDecodeChangesImplausibleCount(t *testing.T) {
	hostile := append([]byte{'K', 'C', 'H', '1', 0xff, 0xff, 0xff, 0xff}, make([]byte, 32)...)
	if _, err := DecodeChanges(hostile); !errors.Is(err, ErrBadChanges) {
		t.Fatalf("hostile count accepted: %v", err)
	}
	// A plausible-but-wrong count still fails structurally, not by panic.
	short := append([]byte{'K', 'C', 'H', '1', 0, 0, 0, 2}, make([]byte, 22)...)
	if _, err := DecodeChanges(short); !errors.Is(err, ErrBadChanges) {
		t.Fatalf("truncated payload accepted: %v", err)
	}
	// The boundary holds: a real one-change set still decodes.
	db := newTestDB(t)
	addN(t, db, 1)
	changes, verdict := db.ChangesSince(0, 0)
	if verdict != DeltaOK {
		t.Fatalf("verdict %v", verdict)
	}
	enc := EncodeChanges(changes)
	if got, err := DecodeChanges(enc); err != nil || len(got) != 1 {
		t.Fatalf("legitimate change set rejected: %v", err)
	}
}

package kdb

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// TestEpochStoreBasics exercises Put/Fetch/Delete/Len through the
// delta trie: a slab entry shadowed by a tombstone, a deleted entry
// resurrected by a later Put, and batch atomicity of ApplyBatch.
func TestEpochStoreBasics(t *testing.T) {
	s := NewEpochStore()
	if s.Len() != 0 {
		t.Fatalf("empty store Len = %d", s.Len())
	}
	for i := 0; i < 10; i++ {
		s.Put(mkEntry(i, 0))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	e5 := mkEntry(5, 0)
	got, ok := s.Fetch(e5.ID())
	if !ok || got.Name != e5.Name || got.KVNO != e5.KVNO {
		t.Fatalf("Fetch(%q) = %+v, %v", e5.ID(), got, ok)
	}

	// Tombstone shadows, then a later Put resurrects with new bits.
	s.Delete(e5.ID())
	if _, ok := s.Fetch(e5.ID()); ok {
		t.Fatal("deleted entry still fetchable")
	}
	if s.Len() != 9 {
		t.Fatalf("Len after delete = %d, want 9", s.Len())
	}
	s.Put(mkEntry(5, 3))
	got, ok = s.Fetch(e5.ID())
	if !ok || got.KVNO != mkEntry(5, 3).KVNO {
		t.Fatalf("resurrected entry = %+v, %v", got, ok)
	}
	if s.Len() != 10 {
		t.Fatalf("Len after resurrect = %d, want 10", s.Len())
	}

	// Double-delete and delete-of-missing are no-ops on Len.
	s.Delete(e5.ID())
	s.Delete(e5.ID())
	s.Delete("no.such")
	if s.Len() != 9 {
		t.Fatalf("Len after double delete = %d, want 9", s.Len())
	}

	// ApplyBatch: an upsert and a delete land together.
	s.ApplyBatch([]*Entry{mkEntry(20, 1)}, []string{mkEntry(1, 0).ID()})
	if _, ok := s.Fetch(mkEntry(1, 0).ID()); ok {
		t.Fatal("batched delete missed")
	}
	if _, ok := s.Fetch(mkEntry(20, 1).ID()); !ok {
		t.Fatal("batched upsert missed")
	}
}

// TestEpochStoreFetchIsolation verifies Fetch hands back clones:
// mutating the result must not leak into the store, and mutating the
// caller's entry after Put must not either.
func TestEpochStoreFetchIsolation(t *testing.T) {
	s := NewEpochStore()
	in := mkEntry(1, 0)
	s.Put(in)
	in.EncKey[0] ^= 0xff
	in.ModBy = "tampered"

	a, _ := s.Fetch(mkEntry(1, 0).ID())
	if a.ModBy == "tampered" || a.EncKey[0] != mkEntry(1, 0).EncKey[0] {
		t.Fatal("Put did not clone its argument")
	}
	a.EncKey[0] ^= 0xff
	b, _ := s.Fetch(mkEntry(1, 0).ID())
	if b.EncKey[0] != mkEntry(1, 0).EncKey[0] {
		t.Fatal("Fetch result aliases store memory")
	}
}

// TestEpochStoreRangeMergeOrder checks that Range merges the base slab
// and the delta overlay into a single joined-ID-sorted stream, skipping
// tombstones. The names include a '-' (which sorts below '.') so tuple
// order and joined-ID order disagree — the merge must use joined IDs.
func TestEpochStoreRangeMergeOrder(t *testing.T) {
	mk := func(name, inst string, kvno uint8) *Entry {
		return &Entry{
			Name: name, Instance: inst,
			EncKey: []byte{kvno, 2, 3, 4, 5, 6, 7, 8},
			KVNO:   kvno, Expiration: t0, ModTime: t0, ModBy: "t",
		}
	}
	s := NewEpochStore()
	// Base slab: InstallSlab sorts by joined ID itself.
	slab := []Entry{*mk("a", "z", 1), *mk("a-m", "x", 1), *mk("b", "", 1), *mk("c", "q", 1)}
	s.InstallSlab(slab)
	// Delta: one update, one insert between base entries, one delete.
	s.Put(mk("a", "z", 9))
	s.Put(mk("a-z", "y", 1))
	s.Delete("c.q")

	var ids []string
	var kvnos []uint8
	s.Range(func(e *Entry) bool {
		ids = append(ids, e.ID())
		kvnos = append(kvnos, e.KVNO)
		return true
	})
	want := []string{"a-m.x", "a-z.y", "a.z", "b."}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("Range ids not sorted: %v", ids)
	}
	if len(ids) != len(want) {
		t.Fatalf("Range ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Range ids = %v, want %v", ids, want)
		}
	}
	if kvnos[2] != 9 {
		t.Fatalf("delta update not visible in Range: kvnos = %v", kvnos)
	}
}

// TestEpochStoreFold drives enough churn through the delta trie to
// cross the fold threshold several times and checks that lookups,
// Len, and Range stay correct while the slab absorbs the overlay.
func TestEpochStoreFold(t *testing.T) {
	s := NewEpochStore()
	live := map[string]uint8{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 1200; i++ {
			n := (round*7 + i) % 900
			e := mkEntry(n, round)
			if i%5 == 4 {
				s.Delete(e.ID())
				delete(live, e.ID())
			} else {
				s.Put(e)
				live[e.ID()] = e.KVNO
			}
		}
	}
	if s.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(live))
	}
	slabLen, deltaLen, _ := s.SlabStats()
	if deltaLen > foldThreshold(slabLen) {
		t.Fatalf("delta never folded: slab %d delta %d", slabLen, deltaLen)
	}
	seen := 0
	s.Range(func(e *Entry) bool {
		kvno, ok := live[e.ID()]
		if !ok {
			t.Fatalf("Range yields dead entry %q", e.ID())
		}
		if e.KVNO != kvno {
			t.Fatalf("Range yields stale %q: kvno %d want %d", e.ID(), e.KVNO, kvno)
		}
		seen++
		return true
	})
	if seen != len(live) {
		t.Fatalf("Range saw %d entries, want %d", seen, len(live))
	}
	for id, kvno := range live {
		e, ok := s.Fetch(id)
		if !ok || e.KVNO != kvno {
			t.Fatalf("Fetch(%q) after folds = %+v, %v", id, e, ok)
		}
	}
}

// snapshotEpochStore round-trips entries through a KDB4 snapshot and
// installs it as an EpochStore's lazily-materialized base — the shape a
// segment store's cold start produces.
func snapshotEpochStore(tb testing.TB, entries []*Entry) *EpochStore {
	tb.Helper()
	data, err := EncodeKDB4(sortedEntriesByID(entries), DumpMeta{Serial: uint64(len(entries)), Digest: 7})
	if err != nil {
		tb.Fatal(err)
	}
	sn, err := ParseKDB4(data)
	if err != nil {
		tb.Fatal(err)
	}
	table, err := sn.Index()
	if err != nil {
		tb.Fatal(err)
	}
	s := NewEpochStore()
	s.installSnapshot(sn, table)
	return s
}

// TestGetROAllocs is the AllocsPerRun guard for the //kerb:hotpath
// annotations on Database.GetRO and EpochStore.FetchSharedPair. It
// covers every residency of a principal: the heap base slab, the
// snapshot-backed base (where the warm-up run pays the one lazy
// materialization), and the delta trie (recent writes).
func TestGetROAllocs(t *testing.T) {
	master := des.StringToKey("master-password", "ATHENA.MIT.EDU")
	for _, base := range []string{"slab", "snapshot"} {
		entries := make([]*Entry, 64)
		for i := range entries {
			entries[i] = mkEntry(i, 0)
		}
		var store *EpochStore
		if base == "snapshot" {
			store = snapshotEpochStore(t, entries)
		} else {
			store = NewEpochStore()
			slab := make([]Entry, len(entries))
			for i, e := range entries {
				slab[i] = *e
			}
			store.InstallSlab(slab)
		}
		db := NewWithStore(master, store)

		key := des.StringToKey("zanzibar", "ATHENA.MIT.EDUfresh")
		if err := db.Add("fresh", "delta", key, core.DefaultTGTLife, "t", t0); err != nil {
			t.Fatal(err)
		}

		baseHit := mkEntry(17, 0)
		for _, tc := range []struct{ name, instance string }{
			{baseHit.Name, baseHit.Instance}, // base residency
			{"fresh", "delta"},               // delta-trie residency
		} {
			allocs := testing.AllocsPerRun(100, func() {
				e, err := db.GetRO(tc.name, tc.instance)
				if err != nil || e == nil {
					t.Fatalf("GetRO(%q, %q): %v", tc.name, tc.instance, err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s base: GetRO(%q, %q) allocates %.1f objects/op, want 0",
					base, tc.name, tc.instance, allocs)
			}
		}
	}
}

// TestSnapshotBaseStore exercises the lazily-materialized snapshot
// base end to end: lookups decode in place, repeated fetches return
// one stable identity (the key-cache contract), deltas shadow and
// resurrect mapped records, and a fold absorbs the snapshot base into
// a heap slab without losing anything.
func TestSnapshotBaseStore(t *testing.T) {
	const n = 300
	entries := make([]*Entry, n)
	for i := range entries {
		entries[i] = mkEntry(i, 0)
	}
	s := snapshotEpochStore(t, entries)
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}

	// Every record resolves, and resolves to the same pointer twice.
	for _, want := range entries {
		e, ok := s.FetchShared(want.ID())
		if !ok || e.Name != want.Name || e.KVNO != want.KVNO || string(e.EncKey) != string(want.EncKey) {
			t.Fatalf("FetchShared(%q) = %+v, %v", want.ID(), e, ok)
		}
		again, _ := s.FetchShared(want.ID())
		if e != again {
			t.Fatalf("FetchShared(%q) returned two identities", want.ID())
		}
	}
	if _, ok := s.Fetch("no.such"); ok {
		t.Fatal("missing ID resolved against snapshot base")
	}

	// Delta over the mapped base: update, tombstone, resurrect.
	upd := mkEntry(7, 4)
	s.Put(upd)
	if e, _ := s.Fetch(upd.ID()); e == nil || e.KVNO != upd.KVNO {
		t.Fatalf("update over snapshot base not visible: %+v", e)
	}
	s.Delete(mkEntry(9, 0).ID())
	if _, ok := s.Fetch(mkEntry(9, 0).ID()); ok {
		t.Fatal("tombstone does not shadow mapped record")
	}
	if s.Len() != n-1 {
		t.Fatalf("Len after tombstone = %d, want %d", s.Len(), n-1)
	}
	s.Put(mkEntry(9, 2))
	if s.Len() != n {
		t.Fatalf("Len after resurrect = %d, want %d", s.Len(), n)
	}

	// Range merges mapped base and delta in joined-ID order.
	var ids []string
	s.Range(func(e *Entry) bool {
		ids = append(ids, e.ID())
		return true
	})
	if len(ids) != n || !sort.StringsAreSorted(ids) {
		t.Fatalf("Range yielded %d ids (sorted=%v), want %d sorted", len(ids), sort.StringsAreSorted(ids), n)
	}

	// Concurrent first-touch materialization: many readers race the
	// per-record CAS; each must observe a correct entry (run with -race).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				want := entries[(g*53+i)%n]
				e, ok := s.FetchShared(want.ID())
				if !ok || e.Name != want.Name {
					t.Errorf("concurrent FetchShared(%q) = %+v, %v", want.ID(), e, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Enough churn to cross the fold threshold: the snapshot base must
	// fold into a heap slab with nothing lost.
	extra := foldThreshold(n) + 50
	for i := 0; i < extra; i++ {
		s.Put(mkEntry(1000+i, 1))
	}
	if s.idx.Load().snap != nil {
		t.Fatal("snapshot base survived a fold")
	}
	if s.Len() != n+extra {
		t.Fatalf("Len after fold = %d, want %d", s.Len(), n+extra)
	}
	for i := 0; i < n; i++ {
		want := mkEntry(i, 0)
		if i == 7 {
			want = mkEntry(7, 4)
		} else if i == 9 {
			want = mkEntry(9, 2)
		}
		e, ok := s.Fetch(want.ID())
		if !ok || e.KVNO != want.KVNO {
			t.Fatalf("post-fold Fetch(%q) = %+v, %v", want.ID(), e, ok)
		}
	}
}

// TestEpochChurnRace hammers lock-free readers (GetRO + the per-entry
// key cache) against churning writers (Add/SetKey/Delete) across fold
// boundaries. Run with -race; the invariant checked here is weaker —
// every successful read must decrypt to the key of SOME version that
// was written for that principal.
func TestEpochChurnRace(t *testing.T) {
	master := des.StringToKey("master-password", "ATHENA.MIT.EDU")
	db := New(master)

	const principals = 40
	name := func(i int) string { return fmt.Sprintf("u%02d", i) }
	pw := func(i, rev int) des.Key {
		return des.StringToKey(fmt.Sprintf("pw-%d-%d", i, rev), "R")
	}
	valid := make([]map[des.Key]bool, principals)
	var validMu sync.Mutex
	for i := 0; i < principals; i++ {
		valid[i] = map[des.Key]bool{pw(i, 0): true}
		if err := db.Add(name(i), "", pw(i, 0), core.DefaultTGTLife, "t", t0); err != nil {
			t.Fatal(err)
		}
	}

	writerOps := 1500
	if testing.Short() {
		writerOps = 300
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for op := 0; op < writerOps; op++ {
				i := (w*31 + op) % principals
				switch op % 7 {
				case 3:
					db.Delete(name(i), "")
				case 5:
					db.Add(name(i), "", pw(i, 0), core.DefaultTGTLife, "t", t0)
				default:
					rev := w*writerOps + op
					validMu.Lock()
					valid[i][pw(i, rev)] = true
					validMu.Unlock()
					db.SetKey(name(i), "", pw(i, rev), "t", t0.Add(time.Duration(op)*time.Second))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for op := 0; ; op++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (r*17 + op) % principals
				e, err := db.GetRO(name(i), "")
				if err != nil {
					continue // deleted window
				}
				k, err := db.Key(e)
				if err != nil {
					t.Errorf("Key(%s): %v", e.ID(), err)
					return
				}
				validMu.Lock()
				ok := valid[i][k]
				validMu.Unlock()
				if !ok {
					t.Errorf("Key(%s) returned a key never written for it", e.ID())
					return
				}
			}
		}(r)
	}
	// Readers run for the full duration of the churn, then drain.
	writers.Wait()
	close(stop)
	readers.Wait()

	// Post-churn: the store still answers consistently single-threaded.
	for i := 0; i < principals; i++ {
		e, err := db.GetRO(name(i), "")
		if err != nil {
			continue
		}
		if _, err := db.Key(e); err != nil {
			t.Fatalf("post-churn Key(%s): %v", e.ID(), err)
		}
	}
}

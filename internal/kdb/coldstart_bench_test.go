package kdb

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// buildColdStartDir seeds a segment database directory with n
// principals in the base (installed through LoadDump, which writes the
// base file directly) plus `tail` journaled rekeys left in the active
// segment, so a subsequent open exercises both the snapshot load and
// the replay path.
func buildColdStartDir(tb testing.TB, dir string, shards, n, tail int, legacy bool) {
	tb.Helper()
	master := des.StringToKey("master-password", "ATHENA.MIT.EDU")
	opt := SegmentOptions{NoFsync: true, LegacyBase: legacy}
	db, segs, err := OpenSegmentDB(master, dir, shards, opt)
	if err != nil {
		tb.Fatal(err)
	}
	entries := make([]*Entry, n)
	for i := range entries {
		entries[i] = &Entry{
			Name:       fmt.Sprintf("user%07d", i),
			Instance:   "",
			EncKey:     []byte{byte(i), byte(i >> 8), byte(i >> 16), 4, 5, 6, 7, 8},
			KVNO:       1,
			MaxLife:    core.DefaultTGTLife,
			Expiration: t0.AddDate(10, 0, 0),
			ModTime:    t0,
			ModBy:      "seed",
		}
	}
	entries = sortedEntriesByID(entries)
	dump := EncodeEntriesAt(entries, DumpMeta{Serial: uint64(n), Digest: 1})
	if err := db.LoadDump(dump); err != nil {
		tb.Fatal(err)
	}
	rekey := des.StringToKey("tailpw", "R")
	for i := 0; i < tail; i++ {
		name := fmt.Sprintf("user%07d", i%n)
		if err := db.SetKey(name, "", rekey, "tail", t0.Add(time.Duration(i)*time.Second)); err != nil {
			tb.Fatal(err)
		}
	}
	for _, s := range segs {
		if err := s.Close(); err != nil {
			tb.Fatal(err)
		}
	}
}

func coldStartScale(def int) int {
	if v := os.Getenv("KERB_COLDSTART_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// BenchmarkColdStart1M measures a full realm cold start — open every
// shard, map or decode the base, replay the unsealed tail — at 1M
// principals (override with KERB_COLDSTART_SCALE). The kdb4 variant
// maps the snapshot; the flat variant is the read-and-decode baseline
// the tentpole is measured against.
func BenchmarkColdStart1M(b *testing.B) {
	n := coldStartScale(1_000_000)
	const shards, tail = 8, 1000
	master := des.StringToKey("master-password", "ATHENA.MIT.EDU")
	for _, bc := range []struct {
		name   string
		legacy bool
	}{{"kdb4", false}, {"flat", true}} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			buildColdStartDir(b, dir, shards, n, tail, bc.legacy)
			runtime.GC() // retire the setup's garbage so iterations measure the open
			b.ResetTimer()
			var startupNS int64
			for i := 0; i < b.N; i++ {
				db, segs, err := OpenSegmentDB(master, dir, shards, SegmentOptions{NoFsync: true, LegacyBase: bc.legacy})
				if err != nil {
					b.Fatal(err)
				}
				if db.Len() != n {
					b.Fatalf("cold start found %d principals, want %d", db.Len(), n)
				}
				startupNS = 0
				for _, s := range segs {
					st := s.StartupStats()
					if st.StartupNS > startupNS {
						startupNS = st.StartupNS // realm start = slowest shard
					}
				}
				b.StopTimer()
				for _, s := range segs {
					s.Close()
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/principal")
			b.ReportMetric(float64(startupNS)/1e6, "shard-ms")
		})
	}
}

// TestColdStartSmoke is the CI budget gate: a 100k-principal realm
// must cold start well under a second. Gated behind an env var so
// ordinary test runs (and loaded CI machines running with -race) do
// not flake on wall-clock variance.
func TestColdStartSmoke(t *testing.T) {
	if os.Getenv("KERB_COLDSTART_SMOKE") != "1" {
		t.Skip("set KERB_COLDSTART_SMOKE=1 to run the cold-start budget gate")
	}
	n := coldStartScale(100_000)
	const shards, tail, budget = 8, 500, 1 * time.Second
	dir := t.TempDir()
	buildColdStartDir(t, dir, shards, n, tail, false)

	master := des.StringToKey("master-password", "ATHENA.MIT.EDU")
	start := time.Now()
	db, segs, err := OpenSegmentDB(master, dir, shards, SegmentOptions{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range segs {
			s.Close()
		}
	}()
	if db.Len() != n {
		t.Fatalf("cold start found %d principals, want %d", db.Len(), n)
	}
	replayed := 0
	for _, s := range segs {
		st := s.StartupStats()
		replayed += st.ReplayRecords
		if !st.MappedBase {
			t.Errorf("shard came up without a mapped KDB4 base")
		}
	}
	if replayed != tail {
		t.Errorf("replayed %d tail records, want %d", replayed, tail)
	}
	if elapsed > budget {
		t.Fatalf("%d-principal cold start took %v, budget %v", n, elapsed, budget)
	}
	t.Logf("%d principals, %d shards: cold start %v (%.0f ns/principal)",
		n, shards, elapsed, float64(elapsed.Nanoseconds())/float64(n))
}

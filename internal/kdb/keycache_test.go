package kdb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// TestKeyCacheHit verifies repeated Key calls for the same entry skip the
// master-key decryption and agree, and that the cache-hit path does not
// allocate — this is the per-ticket lookup on the KDC hot path.
func TestKeyCacheHit(t *testing.T) {
	db := newTestDB(t)
	key := des.StringToKey("zanzibar", "ATHENA.MIT.EDUjis")
	if err := db.Add("jis", "", key, core.DefaultTGTLife, "test", t0); err != nil {
		t.Fatal(err)
	}
	e, err := db.Get("jis", "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Key(e)
	if err != nil {
		t.Fatal(err)
	}
	if got != key {
		t.Fatal("first Key() wrong")
	}
	allocs := testing.AllocsPerRun(100, func() {
		k, err := db.Key(e)
		if err != nil || k != key {
			t.Fatal("cached Key() wrong")
		}
	})
	if allocs != 0 {
		t.Errorf("cached Key() allocates %.1f objects/op, want 0", allocs)
	}
}

// TestKeyCipherCached verifies KeyCipher returns a ready-to-use cipher
// and the same expansion on repeat calls.
func TestKeyCipherCached(t *testing.T) {
	db := newTestDB(t)
	key := des.StringToKey("zanzibar", "ATHENA.MIT.EDUjis")
	if err := db.Add("jis", "", key, core.DefaultTGTLife, "test", t0); err != nil {
		t.Fatal(err)
	}
	e, err := db.Get("jis", "")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := db.KeyCipher(e)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Key() != key {
		t.Error("cipher key differs from principal key")
	}
	c2, err := db.KeyCipher(e)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("repeat KeyCipher expanded the schedule again")
	}
}

// TestKeyCacheInvalidatedOnKVNOChange is the correctness condition for
// caching decrypted keys at all: after SetKey bumps the KVNO, Key must
// return the NEW key, never the cached old one.
func TestKeyCacheInvalidatedOnKVNOChange(t *testing.T) {
	db := newTestDB(t)
	oldKey := des.StringToKey("zanzibar", "ATHENA.MIT.EDUjis")
	if err := db.Add("jis", "", oldKey, core.DefaultTGTLife, "test", t0); err != nil {
		t.Fatal(err)
	}
	e, _ := db.Get("jis", "")
	if k, _ := db.Key(e); k != oldKey {
		t.Fatal("warm-up lookup wrong")
	}
	newKey := des.StringToKey("new-password", "ATHENA.MIT.EDUjis")
	if err := db.SetKey("jis", "", newKey, "kpasswd", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	e2, _ := db.Get("jis", "")
	if e2.KVNO != e.KVNO+1 {
		t.Fatalf("KVNO = %d, want %d", e2.KVNO, e.KVNO+1)
	}
	got, err := db.Key(e2)
	if err != nil {
		t.Fatal(err)
	}
	if got == oldKey {
		t.Fatal("stale cached key returned after password change")
	}
	if got != newKey {
		t.Fatal("wrong key after password change")
	}
	// A caller still holding the OLD entry must not be served the new
	// key: the cache is keyed by KVNO.
	if k, err := db.Key(e); err == nil && k == newKey {
		t.Error("old-KVNO entry served the new key")
	}
}

// TestKeyCacheInvalidatedOnReAdd covers the delete/re-register path: the
// fresh principal restarts at KVNO 1, which a stale cache entry for the
// old KVNO-1 key would shadow.
func TestKeyCacheInvalidatedOnReAdd(t *testing.T) {
	db := newTestDB(t)
	oldKey := des.StringToKey("first", "Xjis")
	db.Add("jis", "", oldKey, core.DefaultTGTLife, "test", t0)
	e, _ := db.Get("jis", "")
	db.Key(e) // warm the cache at KVNO 1
	if err := db.Delete("jis", ""); err != nil {
		t.Fatal(err)
	}
	newKey := des.StringToKey("second", "Xjis")
	if err := db.Add("jis", "", newKey, core.DefaultTGTLife, "test", t0); err != nil {
		t.Fatal(err)
	}
	e2, _ := db.Get("jis", "")
	got, err := db.Key(e2)
	if err != nil {
		t.Fatal(err)
	}
	if got != newKey {
		t.Error("re-registered principal served the pre-delete cached key")
	}
}

// TestGetROSharesEntry verifies the read-only fetch used by the KDC:
// same data as Get, no clone.
func TestGetROSharesEntry(t *testing.T) {
	db := newTestDB(t)
	key := des.StringToKey("zanzibar", "ATHENA.MIT.EDUjis")
	db.Add("jis", "", key, core.DefaultTGTLife, "test", t0)
	a, err := db.GetRO("jis", "")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := db.GetRO("jis", "")
	if a != b {
		t.Error("GetRO cloned the entry")
	}
	cl, _ := db.Get("jis", "")
	if cl == a {
		t.Error("Get returned the shared entry (callers may mutate it)")
	}
	if cl.Name != a.Name || cl.KVNO != a.KVNO || string(cl.EncKey) != string(a.EncKey) {
		t.Error("GetRO and Get disagree")
	}
}

// TestKeyCacheConcurrent races lookups against password changes; run
// under -race this is the cache's safety proof, and every observed key
// must be one the principal actually had at that KVNO.
func TestKeyCacheConcurrent(t *testing.T) {
	db := newTestDB(t)
	keys := make([]des.Key, 9)
	for i := range keys {
		keys[i] = des.StringToKey(fmt.Sprintf("pw-%d", i), "Xjis")
	}
	if err := db.Add("jis", "", keys[0], core.DefaultTGTLife, "test", t0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, err := db.GetRO("jis", "")
				if err != nil {
					t.Error(err)
					return
				}
				k, err := db.Key(e)
				if err != nil {
					continue // raced with SetKey; entry superseded
				}
				if int(e.KVNO) < 1 || int(e.KVNO) > len(keys) {
					t.Errorf("impossible KVNO %d", e.KVNO)
					return
				}
				if k != keys[e.KVNO-1] {
					t.Errorf("KVNO %d served wrong key", e.KVNO)
					return
				}
			}
		}()
	}
	for i := 1; i < len(keys); i++ {
		if err := db.SetKey("jis", "", keys[i], "kpasswd", t0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

package kdb

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

func openSegDB(t testing.TB, dir string, shards int, opt SegmentOptions) (*Database, []*SegmentStore) {
	t.Helper()
	db, segs, err := OpenSegmentDB(des.StringToKey("master-password", "ATHENA.MIT.EDU"), dir, shards, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range segs {
			s.Close()
		}
	})
	return db, segs
}

func TestSegmentStoreReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, segs := openSegDB(t, dir, 1, SegmentOptions{})
	addN(t, db, 10)
	key2 := des.StringToKey("newpw", "R")
	if err := db.SetKey("user003", "", key2, "t", t0); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("user007", ""); err != nil {
		t.Fatal(err)
	}
	serial, digest := db.Serial(), db.Digest()
	segs[0].Close()

	db2, _ := openSegDB(t, dir, 1, SegmentOptions{})
	if db2.Len() != 9 {
		t.Fatalf("reopened len = %d, want 9", db2.Len())
	}
	if db2.Serial() != serial || db2.Digest() != digest {
		t.Fatalf("reopened lineage (%d, %x), want (%d, %x)", db2.Serial(), db2.Digest(), serial, digest)
	}
	e, err := db2.Get("user003", "")
	if err != nil {
		t.Fatal(err)
	}
	if e.KVNO != 2 {
		t.Fatalf("KVNO after reopen = %d", e.KVNO)
	}
	if k, err := db2.Key(e); err != nil || k != key2 {
		t.Fatalf("key after reopen: %v", err)
	}
	if _, err := db2.Get("user007", ""); err == nil {
		t.Fatal("deleted entry survived reopen")
	}
}

// TestSegmentStoreAppendsNotRewrites is the acceptance criterion in
// file-size form: N mutations grow the active segment by O(change) each
// and never rewrite a base file.
func TestSegmentStoreAppendsNotRewrites(t *testing.T) {
	dir := t.TempDir()
	db, _ := openSegDB(t, dir, 1, SegmentOptions{SegmentBytes: 1 << 30, NoFsync: true})
	addN(t, db, 1)
	seg := filepath.Join(dir, shardDirName(0), segName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	size1 := fi.Size()
	addN2 := func(from, to int) {
		for i := from; i < to; i++ {
			key := des.StringToKey(fmt.Sprintf("pw%d", i), "R")
			if err := db.Add(fmt.Sprintf("user%03d", i), "", key, core.DefaultTGTLife, "test", t0); err != nil {
				t.Fatal(err)
			}
		}
	}
	addN2(1, 101)
	fi, _ = os.Stat(seg)
	perChange := float64(fi.Size()-size1) / 100
	if perChange > 256 {
		t.Fatalf("%.0f bytes appended per mutation — that is a rewrite, not an append", perChange)
	}
	for _, base := range []string{segBaseName, segBase4Name} {
		if _, err := os.Stat(filepath.Join(dir, shardDirName(0), base)); !os.IsNotExist(err) {
			t.Fatalf("base %s written on the mutation path", base)
		}
	}
}

func TestSegmentStoreSealAndCompact(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so a few dozen mutations seal several.
	db, segs := openSegDB(t, dir, 1, SegmentOptions{SegmentBytes: 512, CompactAfter: 2, NoFsync: true})
	addN(t, db, 60)
	if err := db.Delete("user010", ""); err != nil {
		t.Fatal(err)
	}
	if err := segs[0].Compact(); err != nil {
		t.Fatal(err)
	}
	if err := segs[0].CompactErr(); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, shardDirName(0))
	if _, err := os.Stat(filepath.Join(sub, segBase4Name)); err != nil {
		t.Fatalf("no KDB4 base after compaction: %v", err)
	}
	ents, _ := os.ReadDir(sub)
	segFiles := 0
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), segPrefix) {
			segFiles++
		}
	}
	if segFiles > 2 {
		t.Fatalf("%d segment files survive compaction", segFiles)
	}
	serial, digest := db.Serial(), db.Digest()
	segs[0].Close()

	// Replay = base + tail segments; contents and lineage identical.
	db2, _ := openSegDB(t, dir, 1, SegmentOptions{})
	if db2.Len() != 59 || db2.Serial() != serial || db2.Digest() != digest {
		t.Fatalf("after compaction+reopen: len %d serial %d digest %x, want 59 %d %x",
			db2.Len(), db2.Serial(), db2.Digest(), serial, digest)
	}
}

// TestSegmentStoreTornTailSweep truncates the active segment at every
// possible byte offset of its final record and proves each reopen
// recovers exactly the last complete mutation.
func TestSegmentStoreTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	db, segs := openSegDB(t, dir, 1, SegmentOptions{NoFsync: true})
	addN(t, db, 5)
	segs[0].Close()
	seg := filepath.Join(dir, shardDirName(0), segName(1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the offset where the last record begins.
	off, last := 0, 0
	for off < len(whole) {
		_, n, ok := readLogRecord(whole[off:])
		if !ok {
			t.Fatalf("undamaged segment unreadable at %d", off)
		}
		last = off
		off += n
	}
	for cut := last + 1; cut < len(whole); cut++ {
		work := t.TempDir()
		sub := filepath.Join(work, shardDirName(0))
		if err := os.MkdirAll(sub, 0o700); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, segName(1)), whole[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		db2, segs2 := openSegDB(t, work, 1, SegmentOptions{NoFsync: true})
		if db2.Len() != 4 {
			t.Fatalf("cut=%d: recovered %d entries, want 4 (last complete mutation)", cut, db2.Len())
		}
		if db2.Serial() != 4 {
			t.Fatalf("cut=%d: serial %d, want 4", cut, db2.Serial())
		}
		// The torn record is gone from disk: appending works and a further
		// reopen sees the new change.
		if err := db2.Add("fresh", "", des.StringToKey("x", "R"), core.DefaultTGTLife, "t", t0); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		segs2[0].Close()
		db3, _ := openSegDB(t, work, 1, SegmentOptions{NoFsync: true})
		if db3.Len() != 5 || db3.Serial() != 5 {
			t.Fatalf("cut=%d: after truncate+append reopen: len %d serial %d", cut, db3.Len(), db3.Serial())
		}
	}
}

// TestSegmentStoreCorruptionRefusesLoad proves damage anywhere but the
// tail is corruption, not a crash artifact, and refuses to load.
func TestSegmentStoreCorruptionRefusesLoad(t *testing.T) {
	dir := t.TempDir()
	// CompactAfter high enough that the sealed segments stay on disk.
	db, segs := openSegDB(t, dir, 1, SegmentOptions{SegmentBytes: 256, CompactAfter: 1000, NoFsync: true})
	addN(t, db, 30) // several sealed segments
	segs[0].Close()
	sub := filepath.Join(dir, shardDirName(0))
	// Flip a byte in the FIRST segment (not the last).
	seg1 := filepath.Join(sub, segName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg1, data, 0o600); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenSegmentDB(des.StringToKey("m", "R"), dir, 1, SegmentOptions{})
	if err == nil {
		t.Fatal("mid-history corruption loaded silently")
	}
}

// TestSegmentDBKillRecovers is the kill-the-process crash test: a child
// process mutates a segment database as fast as it can until SIGKILL,
// and the parent then reopens the directory and checks the recovered
// state is a consistent prefix: serial S means users 1..S' applied with
// no holes (S' = serial minus any torn tail), lineage intact.
func TestSegmentDBKillRecovers(t *testing.T) {
	if os.Getenv("KDB_SEGKILL_CHILD") == "1" {
		dir := os.Getenv("KDB_SEGKILL_DIR")
		db, _, err := OpenSegmentDB(des.StringToKey("m", "R"), dir, 2, SegmentOptions{SegmentBytes: 4096, NoFsync: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := 0; ; i++ {
			key := des.StringToKey(fmt.Sprintf("pw%d", i), "R")
			if err := db.Add(fmt.Sprintf("churn%06d", i), "", key, core.DefaultTGTLife, "child", t0); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	dir := t.TempDir()
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run", "TestSegmentDBKillRecovers")
		cmd.Env = append(os.Environ(), "KDB_SEGKILL_CHILD=1", "KDB_SEGKILL_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(60 * time.Millisecond)
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()

		db, segs, err := OpenSegmentDB(des.StringToKey("m", "R"), dir, 2, SegmentOptions{NoFsync: true})
		if err != nil {
			t.Fatalf("round %d: reopen after SIGKILL: %v", round, err)
		}
		// Every shard recovered a contiguous prefix: the total applied
		// mutations equal the number of present principals, and each
		// present principal decrypts under the master key.
		total := db.Serial()
		if uint64(db.Len()) != total {
			t.Fatalf("round %d: %d principals but serial %d", round, db.Len(), total)
		}
		seen := 0
		var badKey error
		db.Range(func(e *Entry) bool {
			seen++
			if _, err := db.Key(e); err != nil {
				badKey = fmt.Errorf("%s: %w", e.ID(), err)
				return false
			}
			return true
		})
		if badKey != nil {
			t.Fatalf("round %d: recovered entry undecryptable: %v", round, badKey)
		}
		if seen == 0 && round > 0 {
			t.Fatalf("round %d: child made no progress", round)
		}
		for _, s := range segs {
			s.Close()
		}
		// Next round continues over the recovered directory — reopening
		// a crashed database and crashing it again must also hold.
		os.RemoveAll(dir)
		dir = t.TempDir()
	}
}

// TestSegmentDBShardedReopen exercises the sharded open/reopen plane:
// shard count autodetection, mismatch rejection, and per-shard lineage.
func TestSegmentDBShardedReopen(t *testing.T) {
	dir := t.TempDir()
	db, segs := openSegDB(t, dir, 4, SegmentOptions{NoFsync: true})
	addN(t, db, 40)
	for _, s := range segs {
		s.Close()
	}
	if n, err := DetectShards(dir); err != nil || n != 4 {
		t.Fatalf("DetectShards = (%d, %v), want 4", n, err)
	}
	if _, _, err := OpenSegmentDB(des.StringToKey("m", "R"), dir, 8, SegmentOptions{}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	db2, _ := openSegDB(t, dir, 4, SegmentOptions{})
	if db2.Len() != 40 || db2.Serial() != 40 {
		t.Fatalf("sharded reopen: len %d serial %d", db2.Len(), db2.Serial())
	}
	if db2.Digest() != db.Digest() {
		t.Fatal("sharded reopen digest mismatch")
	}
}

// TestSegmentStoreReplaceAllStartsFresh proves bulk replacement (the
// propagation install path) collapses the directory to one base dump.
func TestSegmentStoreReplaceAllStartsFresh(t *testing.T) {
	dir := t.TempDir()
	db, segs := openSegDB(t, dir, 1, SegmentOptions{SegmentBytes: 256, NoFsync: true})
	addN(t, db, 20)

	src := newTestDB(t)
	addN(t, src, 7)
	if err := db.LoadDump(src.Dump()); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 7 || db.Serial() != src.Serial() || db.Digest() != src.Digest() {
		t.Fatalf("after LoadDump: len %d lineage (%d, %x)", db.Len(), db.Serial(), db.Digest())
	}
	segs[0].Close()
	db2, _ := openSegDB(t, dir, 1, SegmentOptions{})
	if db2.Len() != 7 || db2.Serial() != src.Serial() || db2.Digest() != src.Digest() {
		t.Fatalf("after LoadDump+reopen: len %d lineage (%d, %x)", db2.Len(), db2.Serial(), db2.Digest())
	}
}

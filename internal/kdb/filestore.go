package kdb

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// FileStore is a write-through Store: every mutation is persisted to the
// database file before it returns, the way ndbm gave the Athena daemons
// a single shared source of truth on the master machine. kadmind runs
// over a FileStore so password changes are durable immediately, and
// kerberosd (its own process) re-reads the file when its modification
// time changes.
type FileStore struct {
	mem  *MemStore
	path string

	mu         sync.Mutex // serializes file writes
	loadedMeta DumpMeta
	metaSource func() DumpMeta
}

// OpenFileStore opens (or creates) a file-backed store at path.
func OpenFileStore(path string) (*FileStore, error) {
	fs := &FileStore{mem: NewMemStore(), path: path}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh database; first mutation creates the file.
	case err != nil:
		return nil, fmt.Errorf("kdb: opening %s: %w", path, err)
	default:
		entries, meta, err := ParseDumpFull(data)
		if err != nil {
			return nil, fmt.Errorf("kdb: parsing %s: %w", path, err)
		}
		fs.mem.ReplaceAll(entries)
		fs.loadedMeta = meta
	}
	return fs, nil
}

// LoadedMeta reports the propagation metadata found in the file at open
// time, so the Database seeds its serial and digest from disk instead of
// starting a new lineage on every restart.
func (fs *FileStore) LoadedMeta() DumpMeta {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.loadedMeta
}

// SetMetaSource installs the callback persist() uses to stamp the
// current serial and digest into every file write. The Database wires
// this up so writes are recorded as meta-then-entries atomically.
func (fs *FileStore) SetMetaSource(fn func() DumpMeta) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.metaSource = fn
}

// persist writes the full store to disk atomically (temp+fsync+rename:
// a crash mid-write leaves the previous file intact).
//
// The in-memory snapshot is taken INSIDE the fs.mu window. Snapshotting
// before acquiring the lock loses updates: writer A snapshots, writer B
// mutates, snapshots, and persists, then A acquires the lock and writes
// its older snapshot over B's newer file — and the serial/digest stamped
// from metaSource under the lock would disagree with the stale entries
// beside them. Under the lock, the last file write always reflects the
// newest memory state (and at least one of any set of racing writers
// snapshots after all their mutations, so the final file is current).
func (fs *FileStore) persist() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var entries []*Entry
	fs.mem.Range(func(e *Entry) bool {
		entries = append(entries, e)
		return true
	})
	var meta DumpMeta
	if fs.metaSource != nil {
		meta = fs.metaSource()
	} else {
		meta = fs.loadedMeta
	}
	if err := WriteFileAtomic(fs.path, EncodeEntriesAt(entries, meta), 0o600); err != nil {
		return fmt.Errorf("kdb: persisting: %w", err)
	}
	return nil
}

// Fetch implements Store.
func (fs *FileStore) Fetch(id string) (*Entry, bool) { return fs.mem.Fetch(id) }

// FetchShared implements Store.
func (fs *FileStore) FetchShared(id string) (*Entry, bool) { return fs.mem.FetchShared(id) }

// Put implements Store, persisting before returning. A persistence
// failure panics: continuing with a diverged file would silently violate
// the single-definitive-copy rule of §5.
func (fs *FileStore) Put(e *Entry) {
	fs.mem.Put(e)
	if err := fs.persist(); err != nil {
		panic(err)
	}
}

// Delete implements Store.
func (fs *FileStore) Delete(id string) {
	fs.mem.Delete(id)
	if err := fs.persist(); err != nil {
		panic(err)
	}
}

// Range implements Store.
func (fs *FileStore) Range(fn func(*Entry) bool) { fs.mem.Range(fn) }

// Len implements Store.
func (fs *FileStore) Len() int { return fs.mem.Len() }

// ReplaceAll implements Store.
func (fs *FileStore) ReplaceAll(entries []*Entry) {
	fs.mem.ReplaceAll(entries)
	if err := fs.persist(); err != nil {
		panic(err)
	}
}

// ApplyBatch implements Store: one in-memory batch, one file write.
func (fs *FileStore) ApplyBatch(upserts []*Entry, deletes []string) {
	fs.mem.ApplyBatch(upserts, deletes)
	if err := fs.persist(); err != nil {
		panic(err)
	}
}

// EncodeEntries serializes entries in the v1 dump format (sorted input
// is not required; output follows input order, and MemStore.Range
// already sorts).
func EncodeEntries(entries []*Entry) []byte {
	return encodeEntriesMagic(entries, dumpMagic, DumpMeta{})
}

// EncodeEntriesAt serializes entries in the v2 dump format, carrying the
// propagation serial and digest.
func EncodeEntriesAt(entries []*Entry, meta DumpMeta) []byte {
	return encodeEntriesMagic(entries, dumpMagicV2, meta)
}

func encodeEntriesMagic(entries []*Entry, magic [4]byte, meta DumpMeta) []byte {
	buf := append([]byte(nil), magic[:]...)
	if magic == dumpMagicV2 {
		buf = binary.BigEndian.AppendUint64(buf, meta.Serial)
		buf = binary.BigEndian.AppendUint64(buf, meta.Digest)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = appendString(buf, e.Name)
		buf = appendString(buf, e.Instance)
		buf = appendEntryBody(buf, e)
	}
	return buf
}

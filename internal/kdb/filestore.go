package kdb

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// FileStore is a write-through Store: every mutation is persisted to the
// database file before it returns, the way ndbm gave the Athena daemons
// a single shared source of truth on the master machine. kadmind runs
// over a FileStore so password changes are durable immediately, and
// kerberosd (its own process) re-reads the file when its modification
// time changes.
type FileStore struct {
	mem  *MemStore
	path string

	mu sync.Mutex // serializes file writes
}

// OpenFileStore opens (or creates) a file-backed store at path.
func OpenFileStore(path string) (*FileStore, error) {
	fs := &FileStore{mem: NewMemStore(), path: path}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh database; first mutation creates the file.
	case err != nil:
		return nil, fmt.Errorf("kdb: opening %s: %w", path, err)
	default:
		entries, err := ParseDump(data)
		if err != nil {
			return nil, fmt.Errorf("kdb: parsing %s: %w", path, err)
		}
		fs.mem.ReplaceAll(entries)
	}
	return fs, nil
}

// persist writes the full store to disk atomically.
func (fs *FileStore) persist() error {
	var entries []*Entry
	fs.mem.Range(func(e *Entry) bool {
		entries = append(entries, e)
		return true
	})
	fs.mu.Lock()
	defer fs.mu.Unlock()
	tmp := fs.path + ".tmp"
	if err := os.WriteFile(tmp, EncodeEntries(entries), 0o600); err != nil {
		return fmt.Errorf("kdb: persisting: %w", err)
	}
	return os.Rename(tmp, fs.path)
}

// Fetch implements Store.
func (fs *FileStore) Fetch(id string) (*Entry, bool) { return fs.mem.Fetch(id) }

// FetchShared implements Store.
func (fs *FileStore) FetchShared(id string) (*Entry, bool) { return fs.mem.FetchShared(id) }

// Put implements Store, persisting before returning. A persistence
// failure panics: continuing with a diverged file would silently violate
// the single-definitive-copy rule of §5.
func (fs *FileStore) Put(e *Entry) {
	fs.mem.Put(e)
	if err := fs.persist(); err != nil {
		panic(err)
	}
}

// Delete implements Store.
func (fs *FileStore) Delete(id string) {
	fs.mem.Delete(id)
	if err := fs.persist(); err != nil {
		panic(err)
	}
}

// Range implements Store.
func (fs *FileStore) Range(fn func(*Entry) bool) { fs.mem.Range(fn) }

// Len implements Store.
func (fs *FileStore) Len() int { return fs.mem.Len() }

// ReplaceAll implements Store.
func (fs *FileStore) ReplaceAll(entries []*Entry) {
	fs.mem.ReplaceAll(entries)
	if err := fs.persist(); err != nil {
		panic(err)
	}
}

// EncodeEntries serializes entries in the dump format (sorted input is
// not required; output follows input order, and MemStore.Range already
// sorts).
func EncodeEntries(entries []*Entry) []byte {
	buf := append([]byte(nil), dumpMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = appendString(buf, e.Name)
		buf = appendString(buf, e.Instance)
		buf = appendBytes(buf, e.EncKey)
		buf = append(buf, e.KVNO)
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.Expiration.Unix()))
		buf = append(buf, byte(e.MaxLife))
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.ModTime.Unix()))
		buf = appendString(buf, e.ModBy)
	}
	return buf
}

//go:build !linux

package kdb

import "os"

// mapFile on platforms without a wired-up mmap path reads the file
// into a heap arena. Entries still alias one contiguous buffer — the
// zero-copy materialization is identical — only the page-cache sharing
// and lazy faulting of the linux path are lost.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, mapped bool, err error) {
	return readFallback(f, size)
}

package kdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"
	"unsafe"

	"kerberos/internal/core"
)

// KDB4 is the page-aligned snapshot format the segment-log compactor
// emits as its base. The flat KDB1/2/3 dump formats are decode-heavy:
// loading means parsing varints and allocating five objects per entry,
// which at millions of principals dominates a KDC's cold start (the
// §5.2 replication model has slaves reload from dumps, so realm
// availability is gated on exactly this path). KDB4 instead lays the
// database out so that startup is a map, not a parse:
//
//	page 0            header (magic, counts, lineage, section offsets,
//	                  header CRC)
//	record pages      fixed-width 48-byte records, globally ID-sorted
//	arena pages       raw string/key bytes the records point into
//	index pages       the open-addressing probe table (little-endian
//	                  int32 record indices, -1 empty), precomputed at
//	                  encode time so a load installs it instead of
//	                  rehashing every principal
//	CRC pages         one CRC-32C per data (record/arena/index) page
//
// Every section starts on a snapPage boundary so the file can be
// mmapped and the record table addressed directly. A record holds
// arena offsets and lengths for the entry's four variable fields plus
// its fixed scalars, so materializing an entry is a handful of stores
// into a preallocated slab — the strings alias the arena via
// unsafe.String and the sealed key aliases it directly, so a million-
// principal load performs O(1) allocations, not O(n).
//
// The per-page CRCs exist for the same reason the segment log frames
// records with CRCs: to tell a torn or bit-rotten snapshot from a good
// one before serving it. The checksum is CRC-32C (Castagnoli), which
// Go's hash/crc32 computes with hardware instructions on amd64/arm64 —
// validating the whole file costs far less than decoding it.
//
// Private keys inside a snapshot remain sealed in the master key, the
// same invariant every dump format has kept since §5.3.

// ErrBadSnapshot reports a KDB4 snapshot that failed structural or
// checksum validation. Unlike a torn segment tail (which is truncated
// away), snapshot damage is never recoverable in place: the base is
// written atomically, so a bad page is corruption, and the open
// refuses rather than serve a silently wrong database.
var ErrBadSnapshot = errors.New("kdb: corrupt KDB4 snapshot")

var snapMagic = [4]byte{'K', 'D', 'B', '4'}

const (
	snapVersion   = 1
	snapPage      = 4096
	snapRecSize   = 48
	snapHeaderLen = 88 // bytes of page 0 actually used (incl. CRC)
	maxSnapField  = 1<<16 - 1
)

// hostLittleEndian gates the zero-copy view of the snapshot's index
// section, which is stored little-endian (the native order of every
// platform this serves); a big-endian host decodes a heap copy instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

func snapPageAlign(n int) int { return (n + snapPage - 1) / snapPage * snapPage }

// IsKDB4 reports whether data begins with the KDB4 snapshot magic.
func IsKDB4(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == snapMagic
}

// EncodeKDB4 serializes entries (which must be ID-sorted; every Range
// and compaction fold already produces that order) into a KDB4
// snapshot carrying the given lineage. Instance and ModBy strings are
// interned in the arena — realms repeat a handful of instances and
// modifiers across millions of principals.
func EncodeKDB4(entries []*Entry, meta DumpMeta) ([]byte, error) {
	recBytes := len(entries) * snapRecSize
	recPad := snapPageAlign(recBytes)

	// First pass: size the arena. Interned (instance/modBy) strings
	// occupy one contiguous region at the front, in first-encounter
	// order; per-entry name and key bytes follow.
	intern := make(map[string]uint32)
	internLen := 0
	internOff := func(s string) {
		if _, ok := intern[s]; !ok {
			intern[s] = uint32(internLen)
			internLen += len(s)
		}
	}
	varLen := 0
	for _, e := range entries {
		if len(e.Name) > maxSnapField || len(e.Instance) > maxSnapField ||
			len(e.EncKey) > maxSnapField || len(e.ModBy) > maxSnapField {
			return nil, fmt.Errorf("%w: field over %d bytes", ErrBadSnapshot, maxSnapField)
		}
		varLen += len(e.Name) + len(e.EncKey)
		internOff(e.Instance)
		internOff(e.ModBy)
	}
	arenaLen := internLen + varLen
	if int64(arenaLen) > int64(^uint32(0)) {
		return nil, fmt.Errorf("%w: arena exceeds 4 GiB", ErrBadSnapshot)
	}
	arenaPad := snapPageAlign(arenaLen)
	idxCount := 0
	if len(entries) > 0 {
		idxCount = 1
		for idxCount < len(entries)*2 {
			idxCount <<= 1
		}
	}
	idxPad := snapPageAlign(idxCount * 4)
	dataPages := (recPad + arenaPad + idxPad) / snapPage
	crcPad := snapPageAlign(dataPages * 4)

	buf := make([]byte, snapPage+recPad+arenaPad+idxPad+crcPad)
	recOff := snapPage
	arenaOff := recOff + recPad
	idxOff := arenaOff + arenaPad
	crcOff := idxOff + idxPad

	// Arena fill. Interned strings land at their reserved offsets; the
	// per-entry name and key bytes follow in record order.
	arena := buf[arenaOff : arenaOff+arenaLen]
	for s, off := range intern {
		copy(arena[off:], s)
	}
	cursor := internLen
	put := func(b []byte) uint32 {
		off := uint32(cursor)
		copy(arena[cursor:], b)
		cursor += len(b)
		return off
	}
	for i, e := range entries {
		rec := buf[recOff+i*snapRecSize:]
		nameOff := put([]byte(e.Name))
		encOff := put(e.EncKey)
		binary.BigEndian.PutUint32(rec[0:4], nameOff)
		binary.BigEndian.PutUint32(rec[4:8], intern[e.Instance])
		binary.BigEndian.PutUint32(rec[8:12], encOff)
		binary.BigEndian.PutUint32(rec[12:16], intern[e.ModBy])
		binary.BigEndian.PutUint16(rec[16:18], uint16(len(e.Name)))
		binary.BigEndian.PutUint16(rec[18:20], uint16(len(e.Instance)))
		binary.BigEndian.PutUint16(rec[20:22], uint16(len(e.EncKey)))
		binary.BigEndian.PutUint16(rec[22:24], uint16(len(e.ModBy)))
		rec[24] = e.KVNO
		rec[25] = byte(e.MaxLife)
		binary.BigEndian.PutUint64(rec[32:40], uint64(e.Expiration.Unix()))
		binary.BigEndian.PutUint64(rec[40:48], uint64(e.ModTime.Unix()))
	}

	// Probe table: the same open addressing EpochStore uses at runtime
	// (hashPair, linear probing, load factor <= 0.5), precomputed here
	// so the loader installs it rather than rehashing every principal.
	if idxCount > 0 {
		idx := buf[idxOff : idxOff+idxCount*4]
		for i := range idx {
			idx[i] = 0xff // every slot -1 (empty)
		}
		mask := uint64(idxCount - 1)
		for j, e := range entries {
			h := hashPair(e.Name, e.Instance)
			for i := h & mask; ; i = (i + 1) & mask {
				if int32(binary.LittleEndian.Uint32(idx[i*4:])) < 0 {
					binary.LittleEndian.PutUint32(idx[i*4:], uint32(j))
					break
				}
			}
		}
	}

	// CRC table over the data pages, then the header.
	for p := 0; p < dataPages; p++ {
		page := buf[recOff+p*snapPage : recOff+(p+1)*snapPage]
		binary.BigEndian.PutUint32(buf[crcOff+p*4:], crc32.Checksum(page, snapCRCTable))
	}
	copy(buf[0:4], snapMagic[:])
	binary.BigEndian.PutUint32(buf[4:8], snapVersion)
	binary.BigEndian.PutUint32(buf[8:12], snapPage)
	binary.BigEndian.PutUint32(buf[12:16], uint32(len(entries)))
	binary.BigEndian.PutUint64(buf[16:24], meta.Serial)
	binary.BigEndian.PutUint64(buf[24:32], meta.Digest)
	binary.BigEndian.PutUint64(buf[32:40], uint64(recOff))
	binary.BigEndian.PutUint64(buf[40:48], uint64(arenaOff))
	binary.BigEndian.PutUint64(buf[48:56], uint64(arenaLen))
	binary.BigEndian.PutUint64(buf[56:64], uint64(crcOff))
	binary.BigEndian.PutUint32(buf[64:68], uint32(dataPages))
	binary.BigEndian.PutUint64(buf[68:76], uint64(idxOff))
	binary.BigEndian.PutUint64(buf[76:84], uint64(idxCount))
	binary.BigEndian.PutUint32(buf[84:88], crc32.Checksum(buf[0:84], snapCRCTable))
	return buf, nil
}

// readFallback loads the file into a heap buffer when mmap is
// unavailable; the returned unmap just drops the reference.
func readFallback(f *os.File, size int64) (data []byte, unmap func() error, mapped bool, err error) {
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, nil, false, err
	}
	return buf, func() error { return nil }, false, nil
}

// Snapshot is an open KDB4 snapshot: a validated, possibly mmapped
// byte range plus the section slices Materialize reads. Entries
// materialized from a Snapshot alias its memory; the Snapshot must not
// be closed while they are referenced.
type Snapshot struct {
	data    []byte
	unmap   func() error
	mapped  bool
	meta    DumpMeta
	count   int
	recs   []byte
	arena  []byte
	idx    []byte
}

// Meta returns the lineage the snapshot was written at.
func (sn *Snapshot) Meta() DumpMeta { return sn.meta }

// Count returns the number of records.
func (sn *Snapshot) Count() int { return sn.count }

// Mapped reports whether the snapshot is backed by an mmap (false on
// the portable ReadAt fallback).
func (sn *Snapshot) Mapped() bool { return sn.mapped }

// Bytes returns the size of the backing range (mapped or resident).
func (sn *Snapshot) Bytes() int64 { return int64(len(sn.data)) }

// Close releases the backing mapping. Entries materialized from the
// snapshot become invalid; callers must not use them afterwards.
func (sn *Snapshot) Close() error {
	if sn.unmap != nil {
		u := sn.unmap
		sn.unmap = nil
		sn.data, sn.recs, sn.arena, sn.idx = nil, nil, nil, nil
		return u()
	}
	return nil
}

// OpenKDB4 opens and validates a snapshot file, mmapping it on
// platforms that support it and falling back to reading it into a
// heap arena elsewhere.
func OpenKDB4(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, mapped, err := mapFile(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("kdb: mapping %s: %w", path, err)
	}
	sn, err := parseKDB4(data)
	if err != nil {
		unmap()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sn.unmap, sn.mapped = unmap, mapped
	return sn, nil
}

// ParseKDB4 validates a snapshot held in memory (compaction folds and
// tests; OpenKDB4 is the mmap path).
func ParseKDB4(data []byte) (*Snapshot, error) { return parseKDB4(data) }

func parseKDB4(data []byte) (*Snapshot, error) {
	if len(data) < snapPage || !IsKDB4(data) {
		return nil, ErrBadSnapshot
	}
	//kerb:ignore consttime -- CRC-32 detects torn disk writes, not forgery; nothing here is keyed
	if crc32.Checksum(data[0:84], snapCRCTable) != binary.BigEndian.Uint32(data[84:88]) {
		return nil, fmt.Errorf("%w: header checksum", ErrBadSnapshot)
	}
	if binary.BigEndian.Uint32(data[4:8]) != snapVersion ||
		binary.BigEndian.Uint32(data[8:12]) != snapPage {
		return nil, fmt.Errorf("%w: unknown version or page size", ErrBadSnapshot)
	}
	count := int(binary.BigEndian.Uint32(data[12:16]))
	meta := DumpMeta{
		Serial: binary.BigEndian.Uint64(data[16:24]),
		Digest: binary.BigEndian.Uint64(data[24:32]),
	}
	recOff := int64(binary.BigEndian.Uint64(data[32:40]))
	arenaOff := int64(binary.BigEndian.Uint64(data[40:48]))
	arenaLen := int64(binary.BigEndian.Uint64(data[48:56]))
	crcOff := int64(binary.BigEndian.Uint64(data[56:64]))
	dataPages := int64(binary.BigEndian.Uint32(data[64:68]))
	idxOff := int64(binary.BigEndian.Uint64(data[68:76]))
	idxCount := int64(binary.BigEndian.Uint64(data[76:84]))
	size := int64(len(data))
	switch {
	case recOff != snapPage,
		arenaOff != recOff+int64(snapPageAlign(count*snapRecSize)),
		arenaLen < 0 || arenaOff+arenaLen > idxOff,
		idxOff != arenaOff+int64(snapPageAlign(int(arenaLen))),
		idxCount < 0 || idxCount > int64(^uint32(0)),
		count > 0 && (idxCount < int64(count)*2 || idxCount&(idxCount-1) != 0),
		count == 0 && idxCount != 0,
		crcOff != idxOff+int64(snapPageAlign(int(idxCount*4))),
		dataPages != (crcOff-recOff)/snapPage,
		crcOff+int64(snapPageAlign(int(dataPages*4))) > size:
		return nil, fmt.Errorf("%w: section layout", ErrBadSnapshot)
	}
	for p := int64(0); p < dataPages; p++ {
		page := data[recOff+p*snapPage : recOff+(p+1)*snapPage]
		want := binary.BigEndian.Uint32(data[crcOff+p*4:])
		//kerb:ignore consttime -- CRC-32 detects torn disk writes, not forgery; nothing here is keyed
		if crc32.Checksum(page, snapCRCTable) != want {
			return nil, fmt.Errorf("%w: page %d checksum", ErrBadSnapshot, p)
		}
	}
	// Validate every record's arena references up front, so the lazy
	// decode paths (snapSlab, decodeRecord) can run unchecked: after
	// this pass a record can only be wrong if the CRCs above lied.
	recs := data[recOff : recOff+int64(count)*snapRecSize]
	aLen := uint32(arenaLen)
	for i := 0; i < count; i++ {
		rec := recs[i*snapRecSize : (i+1)*snapRecSize]
		nameOff := binary.BigEndian.Uint32(rec[0:4])
		instOff := binary.BigEndian.Uint32(rec[4:8])
		encOff := binary.BigEndian.Uint32(rec[8:12])
		modByOff := binary.BigEndian.Uint32(rec[12:16])
		nameLen := uint32(binary.BigEndian.Uint16(rec[16:18]))
		instLen := uint32(binary.BigEndian.Uint16(rec[18:20]))
		encLen := uint32(binary.BigEndian.Uint16(rec[20:22]))
		modByLen := uint32(binary.BigEndian.Uint16(rec[22:24]))
		if (nameLen > 0 && (nameLen > aLen || nameOff > aLen-nameLen)) ||
			(instLen > 0 && (instLen > aLen || instOff > aLen-instLen)) ||
			(encLen > 0 && (encLen > aLen || encOff > aLen-encLen)) ||
			(modByLen > 0 && (modByLen > aLen || modByOff > aLen-modByLen)) {
			return nil, fmt.Errorf("%w: record %d points outside arena", ErrBadSnapshot, i)
		}
	}
	return &Snapshot{
		data:  data,
		meta:  meta,
		count: count,
		recs:  data[recOff : recOff+int64(count*snapRecSize)],
		arena: data[arenaOff : arenaOff+arenaLen],
		idx:   data[idxOff : idxOff+idxCount*4],
	}, nil
}

// Index returns the snapshot's precomputed probe table (int32 record
// indices, -1 empty), zero-copy on little-endian hosts: the returned
// slice aliases the snapshot like materialized entries do, and is
// invalid after Close. Returns nil for an empty snapshot.
func (sn *Snapshot) Index() ([]int32, error) {
	n := len(sn.idx) / 4
	if n == 0 {
		return nil, nil
	}
	var table []int32
	if hostLittleEndian && uintptr(unsafe.Pointer(&sn.idx[0]))%4 == 0 {
		table = unsafe.Slice((*int32)(unsafe.Pointer(&sn.idx[0])), n)
	} else {
		table = make([]int32, n)
		for i := range table {
			table[i] = int32(binary.LittleEndian.Uint32(sn.idx[i*4:]))
		}
	}
	for _, v := range table {
		if int(v) >= sn.count {
			return nil, fmt.Errorf("%w: index slot out of range", ErrBadSnapshot)
		}
	}
	return table, nil
}

// nameInstAt returns record j's name and instance as zero-copy views
// into the arena (valid until Close). Offsets were validated at parse.
func (sn *Snapshot) nameInstAt(j int) (name, instance string) {
	rec := sn.recs[j*snapRecSize : (j+1)*snapRecSize]
	if n := int(binary.BigEndian.Uint16(rec[16:18])); n > 0 {
		off := binary.BigEndian.Uint32(rec[0:4])
		name = unsafe.String(&sn.arena[off], n)
	}
	if n := int(binary.BigEndian.Uint16(rec[18:20])); n > 0 {
		off := binary.BigEndian.Uint32(rec[4:8])
		instance = unsafe.String(&sn.arena[off], n)
	}
	return name, instance
}

// decodeRecord materializes record j into e. Strings and the sealed
// key alias the arena; offsets were validated at parse so this runs
// unchecked. The caller owns e (typically a stack or slab slot).
func (sn *Snapshot) decodeRecord(j int, e *Entry) {
	rec := sn.recs[j*snapRecSize : (j+1)*snapRecSize]
	e.Name, e.Instance = sn.nameInstAt(j)
	if n := int(binary.BigEndian.Uint16(rec[22:24])); n > 0 {
		off := binary.BigEndian.Uint32(rec[12:16])
		e.ModBy = unsafe.String(&sn.arena[off], n)
	} else {
		e.ModBy = ""
	}
	if n := uint32(binary.BigEndian.Uint16(rec[20:22])); n > 0 {
		off := binary.BigEndian.Uint32(rec[8:12])
		e.EncKey = sn.arena[off : off+n : off+n]
	} else {
		e.EncKey = nil
	}
	e.KVNO = rec[24]
	e.MaxLife = core.Lifetime(rec[25])
	e.Expiration = time.Unix(int64(binary.BigEndian.Uint64(rec[32:40])), 0).UTC()
	e.ModTime = time.Unix(int64(binary.BigEndian.Uint64(rec[40:48])), 0).UTC()
}

// Materialize builds the entry slab: one []Entry allocation whose
// strings and sealed keys alias the snapshot's arena. The slab is in
// the snapshot's record order (ID-sorted by construction).
func (sn *Snapshot) Materialize() ([]Entry, error) {
	slab := make([]Entry, sn.count)
	for i := range slab {
		sn.decodeRecord(i, &slab[i])
	}
	return slab, nil
}

// MaterializePtrs is Materialize for callers that want []*Entry (the
// compaction fold); the pointers index one shared slab.
func (sn *Snapshot) MaterializePtrs() ([]*Entry, error) {
	slab, err := sn.Materialize()
	if err != nil {
		return nil, err
	}
	out := make([]*Entry, len(slab))
	for i := range slab {
		out[i] = &slab[i]
	}
	return out, nil
}

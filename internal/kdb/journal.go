package kdb

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Incremental propagation support (the kprop v2 plane). The paper's §4.3
// scheme ships the whole database "about once an hour"; at millions of
// principals that is the dominant replication cost, so the database now
// keeps a monotonic serial, a rolling content digest, and a bounded
// in-memory journal of entry-level changes. A slave that advertises a
// (serial, digest) the master can still verify receives only the journal
// segment it is missing — O(churn) instead of O(database) — and anything
// the master cannot verify (serial out of retention, digest mismatch, a
// slave from a different lineage) falls back to a full dump.
//
// The digest is a chained FNV-1a over the canonical encoding of every
// change since the last full load. It is NOT an integrity mechanism —
// transit integrity stays with the master-key CBC checksum of §5.3 — it
// exists to detect divergence: two databases at the same serial whose
// histories differ will disagree in their digests, and the slave is then
// healed with a full resync rather than silently drifting.

// ChangeOp distinguishes journal operations.
type ChangeOp uint8

// Journal operations.
const (
	ChangeUpsert ChangeOp = 1 // Entry carries the full new record
	ChangeDelete ChangeOp = 2 // Entry carries only Name/Instance
)

// Change is one journaled mutation: the serial it was applied under and
// the entry it created, replaced, or removed.
type Change struct {
	Serial uint64
	Op     ChangeOp
	Entry  *Entry
}

// journalRec pairs a change with the database digest after applying it.
type journalRec struct {
	change Change
	digest uint64
}

// DefaultJournalCap bounds the in-memory journal: at 1% hourly churn it
// retains several propagation rounds even for a 100k-principal realm.
const DefaultJournalCap = 8192

// Errors returned by the delta-apply path.
var (
	ErrSerialGap  = errors.New("kdb: serial gap (full resync required)")
	ErrBadChanges = errors.New("kdb: malformed change set")
)

var changesMagic = [4]byte{'K', 'C', 'H', '1'}

// minChangeSize is the smallest possible encoded change: one op byte, an
// eight-byte serial, and two zero-length (one varint byte each) strings.
const minChangeSize = 11

// chainDigest folds one canonically encoded change into the rolling
// database digest (FNV-1a 64; divergence detection, not integrity).
func chainDigest(prev uint64, encodedChange []byte) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(prev >> (56 - 8*i))
	}
	h.Write(seed[:])
	h.Write(encodedChange)
	return h.Sum64()
}

// appendChange serializes one change canonically (the encoding both the
// journal digest and the kprop delta payload use).
func appendChange(buf []byte, c Change) []byte {
	buf = append(buf, byte(c.Op))
	u64 := func(b []byte, v uint64) []byte {
		return append(b,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	buf = u64(buf, c.Serial)
	buf = appendString(buf, c.Entry.Name)
	buf = appendString(buf, c.Entry.Instance)
	if c.Op == ChangeUpsert {
		buf = appendEntryBody(buf, c.Entry)
	}
	return buf
}

// encodeChange serializes a single change (journal digest unit).
func encodeChange(c Change) []byte { return appendChange(nil, c) }

// EncodeChanges serializes a journal segment for the wire. The serials
// ride inside, so a keyed checksum of this buffer covers them.
func EncodeChanges(changes []Change) []byte {
	buf := append([]byte(nil), changesMagic[:]...)
	var n [4]byte
	n[0], n[1], n[2], n[3] = byte(len(changes)>>24), byte(len(changes)>>16), byte(len(changes)>>8), byte(len(changes))
	buf = append(buf, n[:]...)
	for _, c := range changes {
		buf = appendChange(buf, c)
	}
	return buf
}

// DecodeChanges parses a wire journal segment, validating structure and
// strictly ascending, contiguous serials.
func DecodeChanges(data []byte) ([]Change, error) {
	if len(data) < 8 || [4]byte(data[:4]) != changesMagic {
		return nil, ErrBadChanges
	}
	count := uint32(data[4])<<24 | uint32(data[5])<<16 | uint32(data[6])<<8 | uint32(data[7])
	// Each change is ≥ 11 bytes (op + serial + two empty strings), so a
	// count the payload cannot possibly hold is rejected before the
	// pre-allocation below can amplify a small hostile delta into a
	// multi-megabyte reservation.
	if uint64(count) > uint64(len(data))/minChangeSize {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadChanges, count)
	}
	r := dumpReader{data: data[8:]}
	changes := make([]Change, 0, count)
	for i := uint32(0); i < count; i++ {
		op := ChangeOp(r.u8())
		c := Change{Op: op, Serial: r.u64()}
		e := &Entry{Name: r.str(), Instance: r.str()}
		switch op {
		case ChangeUpsert:
			readEntryBody(&r, e)
		case ChangeDelete:
			// name+instance only
		default:
			return nil, fmt.Errorf("%w: unknown op %d", ErrBadChanges, op)
		}
		if r.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadChanges, r.err)
		}
		c.Entry = e
		if n := len(changes); n > 0 && c.Serial != changes[n-1].Serial+1 {
			return nil, fmt.Errorf("%w: serials not contiguous", ErrBadChanges)
		}
		changes = append(changes, c)
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadChanges, len(r.data))
	}
	return changes, nil
}

// Serial returns the database's monotonic change serial: the shard
// serial of a single-shard database, the sum of the shard serials of a
// sharded one (each shard advances by one per journaled mutation, so
// the sum is still monotonic and counts total mutations).
func (db *Database) Serial() uint64 {
	if len(db.shards) == 1 {
		return db.shards[0].serial.Load()
	}
	var sum uint64
	for _, sh := range db.shards {
		sum += sh.serial.Load()
	}
	return sum
}

// Digest returns the rolling content digest at the current serial (the
// XOR-fold of the shard digests for a sharded database — an order-
// independent divergence indicator; the per-shard digests remain the
// authoritative lineage checks).
func (db *Database) Digest() uint64 {
	if len(db.shards) == 1 {
		return db.shards[0].digest.Load()
	}
	var fold uint64
	for _, sh := range db.shards {
		fold ^= sh.digest.Load()
	}
	return fold
}

// ShardSerial returns shard i's monotonic change serial.
func (db *Database) ShardSerial(i int) uint64 { return db.shards[i].serial.Load() }

// ShardDigest returns shard i's rolling content digest.
func (db *Database) ShardDigest(i int) uint64 { return db.shards[i].digest.Load() }

// SetJournalCap bounds each shard's in-memory change journal (0 restores
// the default). Retention is the delta horizon: a slave further behind
// than the journal reaches gets a full dump.
func (db *Database) SetJournalCap(n int) {
	if n <= 0 {
		n = DefaultJournalCap
	}
	for _, sh := range db.shards {
		sh.wmu.Lock()
		sh.journalCap = n
		sh.trimJournalLocked(true)
		sh.wmu.Unlock()
	}
}

// JournalLen reports how many changes are currently retained across all
// shards.
func (db *Database) JournalLen() int {
	n := 0
	for _, sh := range db.shards {
		sh.wmu.Lock()
		n += len(sh.journal)
		sh.wmu.Unlock()
	}
	return n
}

// apply journals one mutation and applies it to the shard store
// durably. Callers hold sh.wmu. The serial and digest are advanced
// before the store mutation so a persisting Store (FileStore via its
// meta source, SegmentStore via the log record) writes the post-change
// lineage alongside the data. A store that persists via a change log
// receives the already-encoded record, so the mutation appends O(change)
// bytes instead of rewriting the database.
func (sh *dbShard) apply(op ChangeOp, e *Entry) {
	c := Change{Serial: sh.serial.Load() + 1, Op: op, Entry: e.clone()}
	enc := encodeChange(c)
	digest := chainDigest(sh.digest.Load(), enc)
	sh.serial.Store(c.Serial)
	sh.digest.Store(digest)
	sh.journal = append(sh.journal, journalRec{change: c, digest: digest})
	sh.trimJournalLocked(false)
	if sh.clog != nil {
		rec := LogRec{Enc: enc, Serial: c.Serial, Digest: digest}
		var err error
		if op == ChangeDelete {
			err = sh.clog.ApplyLogged([]LogRec{rec}, nil, []string{c.Entry.ID()})
		} else {
			err = sh.clog.ApplyLogged([]LogRec{rec}, []*Entry{c.Entry}, nil)
		}
		if err != nil {
			// Same discipline as FileStore: continuing with a diverged
			// log would silently violate the single-definitive-copy rule.
			panic(fmt.Errorf("kdb: appending change: %w", err))
		}
		return
	}
	if op == ChangeDelete {
		sh.store.Delete(c.Entry.ID())
	} else {
		sh.store.Put(e)
	}
}

// trimJournalLocked drops the oldest records past the cap, remembering
// the digest of the newest dropped one (the pre-retention boundary).
// Trimming is amortized: the journal is allowed to grow 25% past the cap
// before one bulk copy drops it back down, so a long mutation burst
// (a million-principal install) pays O(1) amortized per change instead
// of one full-journal copy per change. exact forces an immediate trim
// to the cap (SetJournalCap shrinking retention).
func (sh *dbShard) trimJournalLocked(exact bool) {
	cap := sh.journalCap
	if cap <= 0 {
		cap = DefaultJournalCap
	}
	slack := cap / 4
	if exact {
		slack = 0
	}
	if len(sh.journal) <= cap+slack {
		return
	}
	drop := len(sh.journal) - cap
	sh.preBaseDigest = sh.journal[drop-1].digest
	sh.journal = append(sh.journal[:0:0], sh.journal[drop:]...)
}

// resetJournalLocked empties the journal after a bulk replacement; the
// current digest becomes the retention boundary.
func (sh *dbShard) resetJournalLocked(serial, digest uint64) {
	sh.serial.Store(serial)
	sh.digest.Store(digest)
	sh.journal = nil
	sh.preBaseDigest = digest
}

// DeltaVerdict says how the master can serve a slave at a given state.
type DeltaVerdict uint8

// ChangesSince verdicts.
const (
	DeltaOK            DeltaVerdict = iota // changes returned (possibly none)
	FallbackRetention                      // slave older than the journal reaches
	FallbackAhead                          // slave claims a serial beyond the master's
	FallbackDivergence                     // serial known but digest disagrees
)

// String names the verdict for logs.
func (v DeltaVerdict) String() string {
	switch v {
	case DeltaOK:
		return "delta"
	case FallbackRetention:
		return "retention"
	case FallbackAhead:
		return "ahead"
	case FallbackDivergence:
		return "divergence"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// ChangesSince returns the journal segment a slave at (serial, digest)
// is missing, verifying the digest against the master's history at that
// serial. Any verdict other than DeltaOK means the slave must be healed
// with a full dump. On a sharded database the per-shard journals are the
// delta planes — use ChangesSinceShard; the whole-database call reports
// FallbackRetention (full resync) rather than guessing.
func (db *Database) ChangesSince(serial, digest uint64) ([]Change, DeltaVerdict) {
	if len(db.shards) != 1 {
		return nil, FallbackRetention
	}
	return db.shards[0].changesSince(serial, digest)
}

// ChangesSinceShard is ChangesSince against shard i's journal.
func (db *Database) ChangesSinceShard(i int, serial, digest uint64) ([]Change, DeltaVerdict) {
	return db.shards[i].changesSince(serial, digest)
}

func (sh *dbShard) changesSince(serial, digest uint64) ([]Change, DeltaVerdict) {
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	cur := sh.serial.Load()
	switch {
	case serial > cur:
		return nil, FallbackAhead
	case serial == cur:
		if digest != sh.digest.Load() {
			return nil, FallbackDivergence
		}
		return nil, DeltaOK
	}
	if len(sh.journal) == 0 {
		return nil, FallbackRetention
	}
	base := sh.journal[0].change.Serial // oldest retained change
	if serial < base-1 {
		return nil, FallbackRetention
	}
	// Digest the master had at the slave's serial.
	var at uint64
	if serial == base-1 {
		at = sh.preBaseDigest
	} else {
		at = sh.journal[serial-base].digest
	}
	if at != digest {
		return nil, FallbackDivergence
	}
	seg := sh.journal
	if serial >= base {
		seg = sh.journal[serial-base+1:]
	}
	changes := make([]Change, len(seg))
	for i, rec := range seg {
		changes[i] = rec.change
	}
	return changes, DeltaOK
}

// ApplyChanges installs a verified journal segment on a slave copy,
// bypassing the read-only discipline exactly like LoadDump. The segment
// must start at the slave's current serial + 1 (no gaps, no replays) and,
// when wantDigest is nonzero, must chain to it — otherwise nothing is
// applied and the caller should request a full resync. On a sharded
// database deltas are per-shard: use ApplyChangesShard.
func (db *Database) ApplyChanges(changes []Change, wantDigest uint64) error {
	if len(db.shards) != 1 {
		return fmt.Errorf("%w: sharded database needs per-shard deltas", ErrSerialGap)
	}
	return db.shards[0].applyChanges(changes, wantDigest)
}

// ApplyChangesShard is ApplyChanges against shard i. Every change must
// belong to shard i (the master sharded them the same way); a misrouted
// change is rejected before anything is applied.
func (db *Database) ApplyChangesShard(i int, changes []Change, wantDigest uint64) error {
	for _, c := range changes {
		if c.Entry == nil {
			return ErrBadChanges
		}
		if ShardIndex(c.Entry.Name, c.Entry.Instance, len(db.shards)) != i {
			return fmt.Errorf("%w: change for %s does not belong to shard %d",
				ErrBadChanges, c.Entry.ID(), i)
		}
	}
	return db.shards[i].applyChanges(changes, wantDigest)
}

func (sh *dbShard) applyChanges(changes []Change, wantDigest uint64) error {
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	cur := sh.serial.Load()
	if len(changes) == 0 {
		if wantDigest != 0 && wantDigest != sh.digest.Load() {
			return fmt.Errorf("%w: digest mismatch at serial %d", ErrSerialGap, cur)
		}
		return nil
	}
	if changes[0].Serial != cur+1 {
		return fmt.Errorf("%w: have serial %d, delta starts at %d", ErrSerialGap, cur, changes[0].Serial)
	}
	// Validate and chain the digest before touching the store: the apply
	// must be all-or-nothing.
	digest := sh.digest.Load()
	digests := make([]uint64, len(changes))
	recs := make([]LogRec, len(changes))
	var upserts []*Entry
	var deletes []string
	for i, c := range changes {
		if c.Entry == nil || c.Serial != cur+1+uint64(i) {
			return ErrBadChanges
		}
		switch c.Op {
		case ChangeUpsert:
			upserts = append(upserts, c.Entry)
		case ChangeDelete:
			deletes = append(deletes, c.Entry.ID())
		default:
			return ErrBadChanges
		}
		enc := encodeChange(c)
		digest = chainDigest(digest, enc)
		digests[i] = digest
		recs[i] = LogRec{Enc: enc, Serial: c.Serial, Digest: digest}
	}
	if wantDigest != 0 && digest != wantDigest {
		return fmt.Errorf("%w: digest mismatch after serial %d", ErrSerialGap, changes[len(changes)-1].Serial)
	}
	if sh.clog != nil {
		if err := sh.clog.ApplyLogged(recs, upserts, deletes); err != nil {
			return fmt.Errorf("kdb: appending delta: %w", err)
		}
	} else {
		sh.store.ApplyBatch(upserts, deletes)
	}
	for i, c := range changes {
		sh.journal = append(sh.journal, journalRec{change: c, digest: digests[i]})
	}
	sh.serial.Store(changes[len(changes)-1].Serial)
	sh.digest.Store(digest)
	sh.trimJournalLocked(false)
	return nil
}

// SyncFrom diffs freshly loaded entries (a re-read of the on-disk
// database another daemon wrote) against the current contents and
// journals the differences as ordinary upserts/deletes — the master-side
// path that turns "the file changed" into an O(churn) delta instead of a
// new lineage. Returns how many changes were recorded.
func (db *Database) SyncFrom(entries []*Entry) (int, error) {
	if err := db.writable(); err != nil {
		return 0, err
	}
	// Partition the new state per shard, then diff each shard under its
	// own lock — cross-shard entries never interleave in one journal.
	parts := make([][]*Entry, len(db.shards))
	for _, e := range entries {
		i := 0
		if len(db.shards) > 1 {
			i = ShardIndex(e.Name, e.Instance, len(db.shards))
		}
		parts[i] = append(parts[i], e)
	}
	changed := 0
	for i, sh := range db.shards {
		changed += sh.syncFrom(parts[i])
	}
	return changed, nil
}

func (sh *dbShard) syncFrom(entries []*Entry) int {
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	next := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		next[e.ID()] = e
	}
	changed := 0
	// Deletions first: entries present here but absent in the new state.
	var gone []*Entry
	sh.store.Range(func(e *Entry) bool {
		if _, ok := next[e.ID()]; !ok {
			gone = append(gone, e)
		}
		return true
	})
	for _, e := range gone {
		sh.apply(ChangeDelete, &Entry{Name: e.Name, Instance: e.Instance})
		changed++
	}
	// Upserts: new or differing entries, in deterministic order.
	seen := make(map[string]bool, len(next))
	for _, e := range entries {
		if seen[e.ID()] {
			continue
		}
		seen[e.ID()] = true
		if old, ok := sh.store.FetchShared(e.ID()); ok && entryEqual(old, e) {
			continue
		}
		sh.apply(ChangeUpsert, e)
		changed++
	}
	return changed
}

// entryEqual compares every propagated field.
func entryEqual(a, b *Entry) bool {
	return a.Name == b.Name && a.Instance == b.Instance &&
		string(a.EncKey) == string(b.EncKey) && a.KVNO == b.KVNO &&
		a.Expiration.Equal(b.Expiration) && a.MaxLife == b.MaxLife &&
		a.ModTime.Equal(b.ModTime) && a.ModBy == b.ModBy
}

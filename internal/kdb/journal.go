package kdb

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Incremental propagation support (the kprop v2 plane). The paper's §4.3
// scheme ships the whole database "about once an hour"; at millions of
// principals that is the dominant replication cost, so the database now
// keeps a monotonic serial, a rolling content digest, and a bounded
// in-memory journal of entry-level changes. A slave that advertises a
// (serial, digest) the master can still verify receives only the journal
// segment it is missing — O(churn) instead of O(database) — and anything
// the master cannot verify (serial out of retention, digest mismatch, a
// slave from a different lineage) falls back to a full dump.
//
// The digest is a chained FNV-1a over the canonical encoding of every
// change since the last full load. It is NOT an integrity mechanism —
// transit integrity stays with the master-key CBC checksum of §5.3 — it
// exists to detect divergence: two databases at the same serial whose
// histories differ will disagree in their digests, and the slave is then
// healed with a full resync rather than silently drifting.

// ChangeOp distinguishes journal operations.
type ChangeOp uint8

// Journal operations.
const (
	ChangeUpsert ChangeOp = 1 // Entry carries the full new record
	ChangeDelete ChangeOp = 2 // Entry carries only Name/Instance
)

// Change is one journaled mutation: the serial it was applied under and
// the entry it created, replaced, or removed.
type Change struct {
	Serial uint64
	Op     ChangeOp
	Entry  *Entry
}

// journalRec pairs a change with the database digest after applying it.
type journalRec struct {
	change Change
	digest uint64
}

// DefaultJournalCap bounds the in-memory journal: at 1% hourly churn it
// retains several propagation rounds even for a 100k-principal realm.
const DefaultJournalCap = 8192

// Errors returned by the delta-apply path.
var (
	ErrSerialGap  = errors.New("kdb: serial gap (full resync required)")
	ErrBadChanges = errors.New("kdb: malformed change set")
)

var changesMagic = [4]byte{'K', 'C', 'H', '1'}

// chainDigest folds one canonically encoded change into the rolling
// database digest (FNV-1a 64; divergence detection, not integrity).
func chainDigest(prev uint64, encodedChange []byte) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(prev >> (56 - 8*i))
	}
	h.Write(seed[:])
	h.Write(encodedChange)
	return h.Sum64()
}

// appendChange serializes one change canonically (the encoding both the
// journal digest and the kprop delta payload use).
func appendChange(buf []byte, c Change) []byte {
	buf = append(buf, byte(c.Op))
	u64 := func(b []byte, v uint64) []byte {
		return append(b,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	buf = u64(buf, c.Serial)
	buf = appendString(buf, c.Entry.Name)
	buf = appendString(buf, c.Entry.Instance)
	if c.Op == ChangeUpsert {
		buf = appendEntryBody(buf, c.Entry)
	}
	return buf
}

// encodeChange serializes a single change (journal digest unit).
func encodeChange(c Change) []byte { return appendChange(nil, c) }

// EncodeChanges serializes a journal segment for the wire. The serials
// ride inside, so a keyed checksum of this buffer covers them.
func EncodeChanges(changes []Change) []byte {
	buf := append([]byte(nil), changesMagic[:]...)
	var n [4]byte
	n[0], n[1], n[2], n[3] = byte(len(changes)>>24), byte(len(changes)>>16), byte(len(changes)>>8), byte(len(changes))
	buf = append(buf, n[:]...)
	for _, c := range changes {
		buf = appendChange(buf, c)
	}
	return buf
}

// DecodeChanges parses a wire journal segment, validating structure and
// strictly ascending, contiguous serials.
func DecodeChanges(data []byte) ([]Change, error) {
	if len(data) < 8 || [4]byte(data[:4]) != changesMagic {
		return nil, ErrBadChanges
	}
	count := uint32(data[4])<<24 | uint32(data[5])<<16 | uint32(data[6])<<8 | uint32(data[7])
	if uint64(count) > uint64(len(data)) { // each change is ≥ 11 bytes
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadChanges, count)
	}
	r := dumpReader{data: data[8:]}
	changes := make([]Change, 0, count)
	for i := uint32(0); i < count; i++ {
		op := ChangeOp(r.u8())
		c := Change{Op: op, Serial: r.u64()}
		e := &Entry{Name: r.str(), Instance: r.str()}
		switch op {
		case ChangeUpsert:
			readEntryBody(&r, e)
		case ChangeDelete:
			// name+instance only
		default:
			return nil, fmt.Errorf("%w: unknown op %d", ErrBadChanges, op)
		}
		if r.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadChanges, r.err)
		}
		c.Entry = e
		if n := len(changes); n > 0 && c.Serial != changes[n-1].Serial+1 {
			return nil, fmt.Errorf("%w: serials not contiguous", ErrBadChanges)
		}
		changes = append(changes, c)
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadChanges, len(r.data))
	}
	return changes, nil
}

// Serial returns the database's monotonic change serial. It advances by
// one on every journaled mutation and jumps on a full dump install.
func (db *Database) Serial() uint64 { return db.serial.Load() }

// Digest returns the rolling content digest at the current serial.
func (db *Database) Digest() uint64 { return db.digest.Load() }

// SetJournalCap bounds the in-memory change journal (0 restores the
// default). Retention is the delta horizon: a slave further behind than
// the journal reaches gets a full dump.
func (db *Database) SetJournalCap(n int) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if n <= 0 {
		n = DefaultJournalCap
	}
	db.journalCap = n
	db.trimJournalLocked()
}

// JournalLen reports how many changes are currently retained.
func (db *Database) JournalLen() int {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	return len(db.journal)
}

// record journals one mutation. Callers hold db.wmu and apply the store
// mutation after recording, so a persisting Store (FileStore) writes the
// post-change serial and digest alongside the entries.
func (db *Database) record(op ChangeOp, e *Entry) {
	c := Change{Serial: db.serial.Load() + 1, Op: op, Entry: e.clone()}
	db.serial.Store(c.Serial)
	db.digest.Store(chainDigest(db.digest.Load(), encodeChange(c)))
	db.journal = append(db.journal, journalRec{change: c, digest: db.digest.Load()})
	db.trimJournalLocked()
}

// trimJournalLocked drops the oldest records past the cap, remembering
// the digest of the newest dropped one (the pre-retention boundary).
func (db *Database) trimJournalLocked() {
	cap := db.journalCap
	if cap <= 0 {
		cap = DefaultJournalCap
	}
	if len(db.journal) <= cap {
		return
	}
	drop := len(db.journal) - cap
	db.preBaseDigest = db.journal[drop-1].digest
	db.journal = append(db.journal[:0:0], db.journal[drop:]...)
}

// resetJournalLocked empties the journal after a bulk replacement; the
// current digest becomes the retention boundary.
func (db *Database) resetJournalLocked(serial, digest uint64) {
	db.serial.Store(serial)
	db.digest.Store(digest)
	db.journal = nil
	db.preBaseDigest = digest
}

// DeltaVerdict says how the master can serve a slave at a given state.
type DeltaVerdict uint8

// ChangesSince verdicts.
const (
	DeltaOK            DeltaVerdict = iota // changes returned (possibly none)
	FallbackRetention                      // slave older than the journal reaches
	FallbackAhead                          // slave claims a serial beyond the master's
	FallbackDivergence                     // serial known but digest disagrees
)

// String names the verdict for logs.
func (v DeltaVerdict) String() string {
	switch v {
	case DeltaOK:
		return "delta"
	case FallbackRetention:
		return "retention"
	case FallbackAhead:
		return "ahead"
	case FallbackDivergence:
		return "divergence"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// ChangesSince returns the journal segment a slave at (serial, digest)
// is missing, verifying the digest against the master's history at that
// serial. Any verdict other than DeltaOK means the slave must be healed
// with a full dump.
func (db *Database) ChangesSince(serial, digest uint64) ([]Change, DeltaVerdict) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	cur := db.serial.Load()
	switch {
	case serial > cur:
		return nil, FallbackAhead
	case serial == cur:
		if digest != db.digest.Load() {
			return nil, FallbackDivergence
		}
		return nil, DeltaOK
	}
	if len(db.journal) == 0 {
		return nil, FallbackRetention
	}
	base := db.journal[0].change.Serial // oldest retained change
	if serial < base-1 {
		return nil, FallbackRetention
	}
	// Digest the master had at the slave's serial.
	var at uint64
	if serial == base-1 {
		at = db.preBaseDigest
	} else {
		at = db.journal[serial-base].digest
	}
	if at != digest {
		return nil, FallbackDivergence
	}
	seg := db.journal
	if serial >= base {
		seg = db.journal[serial-base+1:]
	}
	changes := make([]Change, len(seg))
	for i, rec := range seg {
		changes[i] = rec.change
	}
	return changes, DeltaOK
}

// ApplyChanges installs a verified journal segment on a slave copy,
// bypassing the read-only discipline exactly like LoadDump. The segment
// must start at the slave's current serial + 1 (no gaps, no replays) and,
// when wantDigest is nonzero, must chain to it — otherwise nothing is
// applied and the caller should request a full resync.
func (db *Database) ApplyChanges(changes []Change, wantDigest uint64) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	cur := db.serial.Load()
	if len(changes) == 0 {
		if wantDigest != 0 && wantDigest != db.digest.Load() {
			return fmt.Errorf("%w: digest mismatch at serial %d", ErrSerialGap, cur)
		}
		return nil
	}
	if changes[0].Serial != cur+1 {
		return fmt.Errorf("%w: have serial %d, delta starts at %d", ErrSerialGap, cur, changes[0].Serial)
	}
	// Validate and chain the digest before touching the store: the apply
	// must be all-or-nothing.
	digest := db.digest.Load()
	digests := make([]uint64, len(changes))
	var upserts []*Entry
	var deletes []string
	for i, c := range changes {
		if c.Entry == nil || c.Serial != cur+1+uint64(i) {
			return ErrBadChanges
		}
		switch c.Op {
		case ChangeUpsert:
			upserts = append(upserts, c.Entry)
		case ChangeDelete:
			deletes = append(deletes, c.Entry.ID())
		default:
			return ErrBadChanges
		}
		digest = chainDigest(digest, encodeChange(c))
		digests[i] = digest
	}
	if wantDigest != 0 && digest != wantDigest {
		return fmt.Errorf("%w: digest mismatch after serial %d", ErrSerialGap, changes[len(changes)-1].Serial)
	}
	db.store.ApplyBatch(upserts, deletes)
	for i, c := range changes {
		db.invalidateKey(c.Entry.Name, c.Entry.Instance)
		db.journal = append(db.journal, journalRec{change: c, digest: digests[i]})
	}
	db.serial.Store(changes[len(changes)-1].Serial)
	db.digest.Store(digest)
	db.trimJournalLocked()
	return nil
}

// SyncFrom diffs freshly loaded entries (a re-read of the on-disk
// database another daemon wrote) against the current contents and
// journals the differences as ordinary upserts/deletes — the master-side
// path that turns "the file changed" into an O(churn) delta instead of a
// new lineage. Returns how many changes were recorded.
func (db *Database) SyncFrom(entries []*Entry) (int, error) {
	if err := db.writable(); err != nil {
		return 0, err
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	next := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		next[e.ID()] = e
	}
	changed := 0
	// Deletions first: entries present here but absent in the new state.
	var gone []*Entry
	db.store.Range(func(e *Entry) bool {
		if _, ok := next[e.ID()]; !ok {
			gone = append(gone, e)
		}
		return true
	})
	for _, e := range gone {
		db.record(ChangeDelete, &Entry{Name: e.Name, Instance: e.Instance})
		db.store.Delete(e.ID())
		db.invalidateKey(e.Name, e.Instance)
		changed++
	}
	// Upserts: new or differing entries, in deterministic order.
	seen := make(map[string]bool, len(next))
	for _, e := range entries {
		if seen[e.ID()] {
			continue
		}
		seen[e.ID()] = true
		if old, ok := db.store.Fetch(e.ID()); ok && entryEqual(old, e) {
			continue
		}
		db.record(ChangeUpsert, e)
		db.store.Put(e)
		db.invalidateKey(e.Name, e.Instance)
		changed++
	}
	return changed, nil
}

// entryEqual compares every propagated field.
func entryEqual(a, b *Entry) bool {
	return a.Name == b.Name && a.Instance == b.Instance &&
		string(a.EncKey) == string(b.EncKey) && a.KVNO == b.KVNO &&
		a.Expiration.Equal(b.Expiration) && a.MaxLife == b.MaxLife &&
		a.ModTime.Equal(b.ModTime) && a.ModBy == b.ModBy
}

// Package kdb is the Kerberos database library (§2.2, §5): "a record is
// held for each principal, containing the name, private key, and
// expiration date of the principal, along with some administrative
// information."
//
// Like the Athena implementation — which moved from INGRES to ndbm — the
// storage layer is a replaceable module behind the Store interface; the
// provided MemStore keeps records in memory and serializes to a binary
// dump for file persistence and for the hourly full-database propagation
// of §5.3. All private keys are encrypted in the master database key
// ("All passwords in the Kerberos database are encrypted in the master
// database key"), so dumps and slave transfers never expose raw keys.
package kdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// DefaultExpiration is how far in the future a new principal's entry
// expires: "usually set to a few years into the future at registration"
// (§2.2).
const DefaultExpiration = 3 * 365 * 24 * time.Hour

// Entry is one principal record. The private key is held encrypted in
// the master database key; use Database.Key to recover it.
type Entry struct {
	Name     string // primary name
	Instance string // instance ("" is the default instance)

	EncKey []byte // principal's private key, sealed in the master key
	KVNO   uint8  // key version, bumped on every password change

	Expiration time.Time // entry invalid after this date
	MaxLife    core.Lifetime

	// Administrative information.
	ModTime time.Time // last modification
	ModBy   string    // principal that made the last modification

	// keycache caches the entry's decrypted private key and expanded
	// schedule (*entryKeyCache), filled by Database.Key on first use.
	// Stored entries are immutable-and-replaced, so a cache riding on
	// the entry can never serve a stale key: any mutation (password
	// change, delta install, reload) produces a new Entry with an empty
	// cache, and the old entry keeps the key that matches its own KVNO.
	// Accessed only via atomic.LoadPointer/CompareAndSwapPointer — a raw
	// unsafe.Pointer rather than atomic.Pointer so Entry values stay
	// plainly copyable (clone, slabs) without tripping copylocks.
	keycache unsafe.Pointer
}

// ID renders the store key for a (name, instance) pair.
func ID(name, instance string) string { return name + "." + instance }

// ID returns the entry's store key.
func (e *Entry) ID() string { return ID(e.Name, e.Instance) }

// Principal returns the entry's principal in the given realm.
func (e *Entry) Principal(realm string) core.Principal {
	return core.Principal{Name: e.Name, Instance: e.Instance, Realm: realm}
}

// Expired reports whether the entry is past its expiration date.
func (e *Entry) Expired(now time.Time) bool {
	return !e.Expiration.IsZero() && now.After(e.Expiration)
}

// clone returns a deep copy so callers can't mutate store internals.
// Field-wise (not *e) for two reasons: the copy must not carry the key
// cache of an entry it may be about to diverge from, and a plain read
// of the keycache field would race with a concurrent CAS fill.
func (e *Entry) clone() *Entry {
	return &Entry{
		Name:       e.Name,
		Instance:   e.Instance,
		EncKey:     append([]byte(nil), e.EncKey...),
		KVNO:       e.KVNO,
		Expiration: e.Expiration,
		MaxLife:    e.MaxLife,
		ModTime:    e.ModTime,
		ModBy:      e.ModBy,
	}
}

// copyEntry copies an entry value for a rebuilt slab, carrying the key
// cache along (the entry is unchanged, so its cache stays valid; the
// pointer is read atomically because readers may be filling it).
func copyEntry(e *Entry) Entry {
	c := Entry{
		Name:       e.Name,
		Instance:   e.Instance,
		EncKey:     e.EncKey,
		KVNO:       e.KVNO,
		Expiration: e.Expiration,
		MaxLife:    e.MaxLife,
		ModTime:    e.ModTime,
		ModBy:      e.ModBy,
	}
	c.keycache = atomic.LoadPointer(&e.keycache)
	return c
}

// Store is the replaceable storage module. Implementations must be safe
// for concurrent use.
type Store interface {
	// Fetch returns the entry for the key, or false.
	Fetch(id string) (*Entry, bool)
	// FetchShared returns the stored entry without copying it. The
	// caller must treat the result as read-only: stored entries are
	// immutable (mutation replaces the whole entry), so sharing is safe
	// and the KDC's per-request lookups avoid a clone.
	FetchShared(id string) (*Entry, bool)
	// Put inserts or replaces an entry.
	Put(e *Entry)
	// Delete removes an entry; deleting a missing entry is a no-op.
	Delete(id string)
	// Range calls fn for every entry in unspecified order until fn
	// returns false.
	Range(fn func(*Entry) bool)
	// Len returns the number of entries.
	Len() int
	// ReplaceAll atomically swaps the whole contents (propagation).
	ReplaceAll(entries []*Entry)
	// ApplyBatch applies a set of upserts and deletes in one atomic
	// step: readers see either none or all of the batch (incremental
	// propagation installs a delta this way).
	ApplyBatch(upserts []*Entry, deletes []string)
}

// PairFetcher is the optional fast-read extension a Store may provide:
// a shared fetch keyed by the un-joined (name, instance) pair, so the
// KDC's per-request lookup never renders (allocates) the ID string.
// EpochStore and SegmentStore implement it.
type PairFetcher interface {
	FetchSharedPair(name, instance string) (*Entry, bool)
}

// MemStore is the in-memory Store, the reproduction's stand-in for ndbm.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string]*Entry)}
}

// Fetch implements Store.
func (s *MemStore) Fetch(id string) (*Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[id]
	if !ok {
		return nil, false
	}
	return e.clone(), true
}

// FetchShared implements Store. Entries in the map are never mutated in
// place (Put stores a fresh clone), so handing out the pointer is safe
// as long as the caller does not write through it.
func (s *MemStore) FetchShared(id string) (*Entry, bool) {
	s.mu.RLock()
	e, ok := s.m[id]
	s.mu.RUnlock()
	return e, ok
}

// Put implements Store.
func (s *MemStore) Put(e *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[e.ID()] = e.clone()
}

// Delete implements Store.
func (s *MemStore) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
}

// Range implements Store. Entries are cloned; iteration order is sorted
// by ID for determinism (dumps must be byte-identical across runs).
func (s *MemStore) Range(fn func(*Entry) bool) {
	s.mu.RLock()
	ids := make([]string, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]*Entry, len(ids))
	for i, id := range ids {
		entries[i] = s.m[id].clone()
	}
	s.mu.RUnlock()
	for _, e := range entries {
		if !fn(e) {
			return
		}
	}
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// ReplaceAll implements Store.
func (s *MemStore) ReplaceAll(entries []*Entry) {
	m := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		m[e.ID()] = e.clone()
	}
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
}

// ApplyBatch implements Store: one lock window for the whole batch, so
// concurrent readers never observe a half-applied delta.
func (s *MemStore) ApplyBatch(upserts []*Entry, deletes []string) {
	clones := make([]*Entry, len(upserts))
	for i, e := range upserts {
		clones[i] = e.clone()
	}
	s.mu.Lock()
	for _, e := range clones {
		s.m[e.ID()] = e
	}
	for _, id := range deletes {
		delete(s.m, id)
	}
	s.mu.Unlock()
}

// Errors returned by Database operations.
var (
	ErrNotFound  = errors.New("kdb: principal not found")
	ErrExists    = errors.New("kdb: principal already exists")
	ErrReadOnly  = errors.New("kdb: database is read-only (slave copy)")
	ErrMasterKey = errors.New("kdb: master key cannot decrypt entry")
)

// Database wraps one or more Store shards with the master database key
// and the read-only discipline of §5: "there is always only one
// definitive copy of the Kerberos database ... Other machines may
// possess read-only copies."
//
// Because every private key in the store is sealed in the master key,
// naive operation pays a master-key DES decryption on every ticket
// issued. The decrypted key (and its expanded schedule) is therefore
// cached on the Entry itself, filled lazily with one atomic CAS. Since
// stored entries are immutable-and-replaced, the cache needs no
// invalidation protocol: a password change or srvtab rotation installs
// a new Entry whose cache is empty, and takes effect immediately.
//
// A Database built with New/NewWithStore has exactly one shard and
// behaves as the classic single-lock-domain database. NewSharded splits
// the principal space by FNV-1a hash of ID(name, instance) into N
// independent shards, each with its own store, lock domain, and change
// journal (per-shard serial + digest), so mutations and kprop deltas on
// different shards never contend — and reads over an EpochStore-backed
// shard take no lock at all.
type Database struct {
	masterKey    des.Key
	masterCipher *des.Cipher // master key expanded once

	mu       sync.RWMutex
	readOnly bool

	shards []*dbShard
}

// dbShard is one independent slice of the principal space: a store and
// the incremental-propagation state of journal.go. wmu serializes
// mutations so the journal order is the store apply order; serial and
// digest are atomics so reads never contend with writers. pair caches
// the store's PairFetcher extension so the per-request lookup skips
// the interface assertion.
type dbShard struct {
	store Store
	pair  PairFetcher    // non-nil when store supports pair reads
	clog  ChangeLogStore // non-nil when store persists via a change log

	wmu           sync.Mutex
	serial        atomic.Uint64
	digest        atomic.Uint64
	journal       []journalRec
	journalCap    int
	preBaseDigest uint64
}

// entryKeyCache is an entry's decrypted private key and its expanded
// schedule — the immutable value Entry.keycache points at once filled.
type entryKeyCache struct {
	key    des.Key
	cipher *des.Cipher
}

// New creates a database over a fresh EpochStore (lock-free reads).
func New(masterKey des.Key) *Database {
	return NewWithStore(masterKey, NewEpochStore())
}

// NewWithStore creates a single-shard database over a caller-provided
// Store. A store that carries propagation metadata (FileStore or
// SegmentStore re-opening an existing database) seeds the serial and
// digest, and is handed a source for persisting them alongside the
// entries.
func NewWithStore(masterKey des.Key, store Store) *Database {
	return NewSharded(masterKey, []Store{store})
}

// NewSharded creates a database over one shard per provided store.
// Principals are assigned to shards by ShardIndex of their ID; the
// shard count is fixed for the lifetime of the database (and of its
// on-disk form — re-sharding is a dump/reload).
func NewSharded(masterKey des.Key, stores []Store) *Database {
	if len(stores) == 0 {
		panic("kdb: NewSharded needs at least one store")
	}
	db := &Database{
		masterKey:    masterKey,
		masterCipher: des.NewCipher(masterKey),
		shards:       make([]*dbShard, len(stores)),
	}
	for i, store := range stores {
		sh := &dbShard{store: store}
		if pf, ok := store.(PairFetcher); ok {
			sh.pair = pf
		}
		if cs, ok := store.(ChangeLogStore); ok {
			sh.clog = cs
		}
		if ms, ok := store.(interface{ LoadedMeta() DumpMeta }); ok {
			meta := ms.LoadedMeta()
			sh.serial.Store(meta.Serial)
			sh.digest.Store(meta.Digest)
			sh.preBaseDigest = meta.Digest
		}
		if ms, ok := store.(interface{ SetMetaSource(func() DumpMeta) }); ok {
			ms.SetMetaSource(func() DumpMeta {
				return DumpMeta{Serial: sh.serial.Load(), Digest: sh.digest.Load()}
			})
		}
		db.shards[i] = sh
	}
	return db
}

// Shards reports the shard count (1 for New/NewWithStore databases).
func (db *Database) Shards() int { return len(db.shards) }

// shard routes a principal to its shard.
func (db *Database) shard(name, instance string) *dbShard {
	if len(db.shards) == 1 {
		return db.shards[0]
	}
	return db.shards[ShardIndex(name, instance, len(db.shards))]
}

// SetReadOnly marks the database as a slave copy; all mutation fails
// with ErrReadOnly until propagation replaces the contents.
func (db *Database) SetReadOnly(ro bool) {
	db.mu.Lock()
	db.readOnly = ro
	db.mu.Unlock()
}

// ReadOnly reports whether the database is a slave copy.
func (db *Database) ReadOnly() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.readOnly
}

// MasterKey returns the master database key (needed by propagation to
// authenticate dumps, §5.3).
func (db *Database) MasterKey() des.Key { return db.masterKey }

// Len returns the number of principals.
func (db *Database) Len() int {
	n := 0
	for _, sh := range db.shards {
		n += sh.store.Len()
	}
	return n
}

// ShardLen returns the number of principals in shard i.
func (db *Database) ShardLen(i int) int { return db.shards[i].store.Len() }

func (db *Database) writable() error {
	if db.ReadOnly() {
		return ErrReadOnly
	}
	return nil
}

// Add registers a new principal with the given private key. modBy names
// the administrator (or program) making the change.
func (db *Database) Add(name, instance string, key des.Key, maxLife core.Lifetime, modBy string, now time.Time) error {
	if err := db.writable(); err != nil {
		return err
	}
	if !(core.Principal{Name: name, Instance: instance}).Valid() {
		return fmt.Errorf("kdb: invalid principal %q", ID(name, instance))
	}
	sh := db.shard(name, instance)
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	// Existence check only: FetchShared avoids cloning the EncKey of an
	// entry we are about to reject anyway.
	if _, ok := sh.store.FetchShared(ID(name, instance)); ok {
		return fmt.Errorf("%w: %s", ErrExists, ID(name, instance))
	}
	e := &Entry{
		Name:       name,
		Instance:   instance,
		EncKey:     db.masterCipher.Seal(key[:]),
		KVNO:       1,
		Expiration: now.Add(DefaultExpiration),
		MaxLife:    maxLife,
		ModTime:    now,
		ModBy:      modBy,
	}
	sh.apply(ChangeUpsert, e)
	return nil
}

// Get fetches a principal's entry as a private copy the caller may
// mutate.
func (db *Database) Get(name, instance string) (*Entry, error) {
	e, ok := db.shard(name, instance).store.Fetch(ID(name, instance))
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, ID(name, instance))
	}
	return e, nil
}

// GetRO fetches a principal's entry without copying it. The caller must
// treat the entry as read-only. This is the KDC's per-request lookup
// path: no clone, no lock (over an EpochStore), no allocation — the
// pair fetch never even renders the ID string.
//
//kerb:hotpath
func (db *Database) GetRO(name, instance string) (*Entry, error) {
	sh := db.shard(name, instance)
	if sh.pair != nil {
		if e, ok := sh.pair.FetchSharedPair(name, instance); ok {
			return e, nil
		}
		return nil, notFoundErr(name, instance)
	}
	e, ok := sh.store.FetchShared(ID(name, instance))
	if !ok {
		return nil, notFoundErr(name, instance)
	}
	return e, nil
}

// notFoundErr builds the miss-path error off the hot path (the miss
// allocates regardless; keeping fmt out of GetRO keeps the annotation
// honest).
func notFoundErr(name, instance string) error {
	return fmt.Errorf("%w: %s", ErrNotFound, ID(name, instance))
}

// Key returns an entry's decrypted private key, from the entry's own
// cache when filled, otherwise by a master-key decryption (the result
// is cached on the entry with one CAS). No KVNO validation is needed:
// the cache lives and dies with the immutable entry it describes.
//
//kerb:hotpath
func (db *Database) Key(e *Entry) (des.Key, error) {
	ck, err := db.cachedKey(e)
	if err != nil {
		return des.Key{}, err
	}
	return ck.key, nil
}

// KeyCipher returns the expanded schedule of an entry's decrypted
// private key, cached alongside the key itself.
func (db *Database) KeyCipher(e *Entry) (*des.Cipher, error) {
	ck, err := db.cachedKey(e)
	if err != nil {
		return nil, err
	}
	return ck.cipher, nil
}

func (db *Database) cachedKey(e *Entry) (*entryKeyCache, error) {
	if p := atomic.LoadPointer(&e.keycache); p != nil {
		return (*entryKeyCache)(p), nil
	}
	plain, err := db.masterCipher.Unseal(e.EncKey)
	// The unsealed buffer is the principal's private key in the clear;
	// wipe it on every return path (§4.1 keyzero discipline).
	defer clear(plain)
	if err != nil || len(plain) != des.KeySize {
		return nil, ErrMasterKey
	}
	ck := &entryKeyCache{}
	copy(ck.key[:], plain)
	ck.cipher = des.NewCipher(ck.key)
	// First fill wins, so every caller sees one stable cache identity
	// (losers re-load the winner and drop their duplicate).
	atomic.CompareAndSwapPointer(&e.keycache, nil, unsafe.Pointer(ck))
	return (*entryKeyCache)(atomic.LoadPointer(&e.keycache)), nil
}

// SetKey changes a principal's private key (password change or srvtab
// rotation), bumping the key version number.
func (db *Database) SetKey(name, instance string, key des.Key, modBy string, now time.Time) error {
	if err := db.writable(); err != nil {
		return err
	}
	sh := db.shard(name, instance)
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	e, ok := sh.store.Fetch(ID(name, instance))
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, ID(name, instance))
	}
	e.EncKey = db.masterCipher.Seal(key[:])
	e.KVNO++
	e.ModTime = now
	e.ModBy = modBy
	sh.apply(ChangeUpsert, e)
	return nil
}

// SetExpiration changes a principal's expiration date — the
// administrative renewal that keeps long-lived accounts alive past the
// few-years default of §2.2.
func (db *Database) SetExpiration(name, instance string, expiration time.Time, modBy string, now time.Time) error {
	if err := db.writable(); err != nil {
		return err
	}
	sh := db.shard(name, instance)
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	e, ok := sh.store.Fetch(ID(name, instance))
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, ID(name, instance))
	}
	e.Expiration = expiration
	e.ModTime = now
	e.ModBy = modBy
	sh.apply(ChangeUpsert, e)
	return nil
}

// Delete removes a principal.
func (db *Database) Delete(name, instance string) error {
	if err := db.writable(); err != nil {
		return err
	}
	sh := db.shard(name, instance)
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	// Existence check only: no need to clone the doomed entry's EncKey.
	if _, ok := sh.store.FetchShared(ID(name, instance)); !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, ID(name, instance))
	}
	sh.apply(ChangeDelete, &Entry{Name: name, Instance: instance})
	return nil
}

// Range iterates the database in deterministic (globally ID-sorted)
// order, merging the per-shard sorted ranges.
func (db *Database) Range(fn func(*Entry) bool) {
	if len(db.shards) == 1 {
		db.shards[0].store.Range(fn)
		return
	}
	rangeMerged(db.stores(), fn)
}

// stores returns the per-shard stores in shard order.
func (db *Database) stores() []Store {
	stores := make([]Store, len(db.shards))
	for i, sh := range db.shards {
		stores[i] = sh.store
	}
	return stores
}

// rangeMerged iterates a set of stores (each of which ranges in sorted
// order) as one globally ID-sorted sequence — the k-way merge that keeps
// sharded dumps byte-identical to their single-store equivalents.
func rangeMerged(stores []Store, fn func(*Entry) bool) {
	lists := make([][]*Entry, len(stores))
	for i, s := range stores {
		lists[i] = make([]*Entry, 0, s.Len())
		s.Range(func(e *Entry) bool {
			lists[i] = append(lists[i], e)
			return true
		})
	}
	heads := make([]int, len(lists))
	for {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || l[heads[i]].ID() < lists[best][heads[best]].ID() {
				best = i
			}
		}
		if best < 0 {
			return
		}
		e := lists[best][heads[best]]
		heads[best]++
		if !fn(e) {
			return
		}
	}
}

// List returns all entry IDs in sorted order (kadmin's listing).
func (db *Database) List() []string {
	ids := make([]string, 0, db.Len())
	db.Range(func(e *Entry) bool {
		ids = append(ids, e.ID())
		return true
	})
	return ids
}

package kdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
	"unsafe"

	"kerberos/internal/des"
)

// entryStructBytes approximates one slab entry's in-memory index cost
// (the string/key bytes themselves are counted with the mapping).
const entryStructBytes = int64(unsafe.Sizeof(Entry{}))

// flatResidentEstimate approximates the heap cost of entries decoded
// from a legacy flat base: struct plus owned variable-length data.
func flatResidentEstimate(entries []*Entry) int64 {
	n := int64(0)
	for _, e := range entries {
		n += entryStructBytes +
			int64(len(e.Name)+len(e.Instance)+len(e.EncKey)+len(e.ModBy))
	}
	return n
}

// SegmentStore is the append-only disk backend that replaces the
// rewrite-the-world FileStore on the master's mutation path. The on-disk
// form is a base snapshot plus a sequence of segment logs:
//
//	base.kdb4         page-aligned KDB4 snapshot at some (serial, digest)
//	seg-00000001.log  framed change records after the base
//	seg-00000002.log  ...
//
// (Pre-KDB4 databases carry a base.kdb v2 dump instead; both load, and
// the first compaction upgrades the base to KDB4 unless the LegacyBase
// option pins the old format.)
//
// A mutation appends one framed record — the same canonical appendChange
// encoding the journal digest and the kprop delta plane already use — to
// the active (highest-numbered) segment: O(change) bytes written, never a
// full-file rewrite. When the active segment passes SegmentBytes it is
// sealed by opening the next segment; sealed segments are immutable. A
// background compactor folds sealed segments into a fresh base snapshot
// and deletes them, bounding startup replay to O(one segment) on top of
// mapping the base: a KDB4 base is mmapped and materialized with O(1)
// allocations, so cold start is page faults, not parsing.
//
// Crash safety is by construction: records carry a CRC and are applied
// only when complete, so a torn tail (the process died mid-append) is
// detected and truncated back to the last whole record; the base is
// replaced via temp+fsync+rename with the directory fsynced before any
// folded segment is unlinked; and a crash between installing a new
// base and deleting the segments it folded is harmless because replay
// skips records at or below the base serial.
type SegmentStore struct {
	dir string
	opt SegmentOptions

	mem  *EpochStore
	snap *Snapshot // mmapped base the mem slab aliases; nil for flat bases

	startupNS     int64 // wall-clock open-to-serving time
	replayRecords int   // segment records replayed at open
	residentBytes int64 // mapping + index estimate at open

	// fileMu serializes everything that touches the files: appends,
	// sealing, compaction install, ReplaceAll. The in-memory apply
	// happens inside the same window so file order and memory order
	// cannot diverge (the FileStore lost-update race, fixed here by
	// design rather than by care).
	fileMu     sync.Mutex
	active     *os.File
	activeSeq  uint64
	activeSize int64
	sealed     []uint64 // sealed segment seqs, ascending, not yet compacted

	baseMeta   DumpMeta // meta of the current base.kdb
	lastMeta   DumpMeta // meta of the newest appended record
	loadedMeta DumpMeta // meta observed at open time (after replay)
	metaSource func() DumpMeta

	compactCh  chan struct{}
	done       chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup
	compactMu  sync.Mutex // one compaction at a time
	compactErr error
	compacts   int // completed compactions (tests)
}

// SegmentOptions tunes a SegmentStore.
type SegmentOptions struct {
	// SegmentBytes seals the active segment once it reaches this size.
	// Default 1 MiB.
	SegmentBytes int64
	// CompactAfter triggers background compaction once this many sealed
	// segments accumulate. Default 4.
	CompactAfter int
	// NoFsync skips the fsync after each append (benchmarks; a crash may
	// lose the tail but never corrupts — torn records truncate away).
	NoFsync bool
	// LegacyBase writes v2 dump bases (base.kdb) instead of KDB4
	// snapshots — the pre-KDB4 on-disk form, kept selectable for the
	// cold-start baseline benchmark and format-compat tests.
	LegacyBase bool
}

func (o *SegmentOptions) defaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.CompactAfter <= 0 {
		o.CompactAfter = 4
	}
}

// LogRec is one durable change record: the canonical encoding plus the
// lineage coordinates it moves the database to.
type LogRec struct {
	Enc    []byte // appendChange encoding (op, serial, id, body)
	Serial uint64
	Digest uint64
}

// ChangeLogStore is a Store that persists via a change log: the Database
// hands it already-encoded journal records so a mutation's durable cost
// is O(change), not O(database).
type ChangeLogStore interface {
	Store
	// ApplyLogged durably appends recs and applies the corresponding
	// upserts/deletes to memory as one atomic step.
	ApplyLogged(recs []LogRec, upserts []*Entry, deletes []string) error
}

// ErrBadSegment reports a segment log that failed structural validation
// somewhere other than its tail.
var ErrBadSegment = errors.New("kdb: corrupt segment log")

const (
	segBaseName  = "base.kdb"  // legacy v2 dump base
	segBase4Name = "base.kdb4" // KDB4 snapshot base (preferred)
	segPrefix    = "seg-"
	segSuffix    = ".log"
	recHeader    = 4 + 4 + 8 + 8 // len + crc + serial + digest
	maxLogRecord = 1 << 24
)

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// appendLogRecord frames one record:
//
//	[u32 payload len][u32 CRC-32 (IEEE) of payload][payload]
//	payload = [u64 serial][u64 digest][appendChange encoding]
//
// The serial and digest ride in the frame (redundant with the encoding)
// so replay can filter already-folded records without parsing entries.
func appendLogRecord(buf []byte, rec LogRec) []byte {
	payloadLen := 16 + len(rec.Enc)
	buf = binary.BigEndian.AppendUint32(buf, uint32(payloadLen))
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	buf = binary.BigEndian.AppendUint64(buf, rec.Serial)
	buf = binary.BigEndian.AppendUint64(buf, rec.Digest)
	buf = append(buf, rec.Enc...)
	crc := crc32.ChecksumIEEE(buf[start+4:])
	binary.BigEndian.PutUint32(buf[start:], crc)
	return buf
}

// decodeOneChange parses a single appendChange encoding.
func decodeOneChange(data []byte) (Change, error) {
	r := dumpReader{data: data}
	op := ChangeOp(r.u8())
	c := Change{Op: op, Serial: r.u64()}
	e := &Entry{Name: r.str(), Instance: r.str()}
	switch op {
	case ChangeUpsert:
		readEntryBody(&r, e)
	case ChangeDelete:
		// name+instance only
	default:
		return Change{}, fmt.Errorf("%w: unknown op %d", ErrBadChanges, op)
	}
	if r.err != nil {
		return Change{}, fmt.Errorf("%w: %v", ErrBadChanges, r.err)
	}
	if len(r.data) != 0 {
		return Change{}, fmt.Errorf("%w: %d trailing bytes", ErrBadChanges, len(r.data))
	}
	c.Entry = e
	return c, nil
}

// OpenSegmentStore opens (or creates) a segment-log store in dir.
//
//kerb:clockadapter -- measures wall-clock startup cost for the kdb_startup_ms gauge; no protocol time derives from it
func OpenSegmentStore(dir string, opt SegmentOptions) (*SegmentStore, error) {
	start := time.Now()
	opt.defaults()
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("kdb: opening segment store: %w", err)
	}
	s := &SegmentStore{
		dir:       dir,
		opt:       opt,
		mem:       NewEpochStore(),
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if err := s.load(); err != nil {
		if s.snap != nil {
			s.snap.Close()
		}
		return nil, err
	}
	s.startupNS = time.Since(start).Nanoseconds()
	s.wg.Add(1)
	go s.compactor()
	if len(s.sealed) >= s.opt.CompactAfter {
		s.kickCompactor()
	}
	return s, nil
}

// load replays base + segments into memory and opens the active segment.
// A KDB4 base is preferred over a legacy flat one: whenever both exist
// the KDB4 file is the newer (bases are only written by compaction and
// ReplaceAll, both of which remove the other format after installing).
func (s *SegmentStore) load() error {
	if sn, err := OpenKDB4(filepath.Join(s.dir, segBase4Name)); err == nil {
		table, terr := sn.Index()
		if terr != nil {
			sn.Close()
			return fmt.Errorf("kdb: loading %s: %w", segBase4Name, terr)
		}
		// The records serve reads in place: install the mapping and its
		// precomputed probe table, and entries materialize lazily on
		// first fetch. Startup cost is validation, not decoding.
		s.mem.installSnapshot(sn, table)
		s.snap = sn
		s.baseMeta = sn.Meta()
		s.lastMeta = sn.Meta()
		// Mapping plus the lazy-materialization pointer array; decoded
		// entries accrete on top as principals are first touched.
		s.residentBytes = sn.Bytes() + int64(sn.Count())*8
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("kdb: loading %s: %w", segBase4Name, err)
	} else if data, err := os.ReadFile(filepath.Join(s.dir, segBaseName)); err == nil {
		entries, meta, perr := ParseDumpFull(data)
		if perr != nil {
			return fmt.Errorf("kdb: parsing %s: %w", segBaseName, perr)
		}
		s.mem.ReplaceAll(entries)
		s.baseMeta = meta
		s.lastMeta = meta
		s.residentBytes = flatResidentEstimate(entries)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("kdb: reading %s: %w", segBaseName, err)
	}

	seqs, err := s.listSegments()
	if err != nil {
		return err
	}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		if err := s.replaySegment(seq, last); err != nil {
			return err
		}
	}
	if len(seqs) == 0 {
		s.activeSeq = 1
	} else {
		s.activeSeq = seqs[len(seqs)-1]
		s.sealed = seqs[:len(seqs)-1]
	}
	path := filepath.Join(s.dir, segName(s.activeSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o600)
	if err != nil {
		return fmt.Errorf("kdb: opening active segment: %w", err)
	}
	s.syncDir() // the active segment's directory entry must be durable
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("kdb: seeking active segment: %w", err)
	}
	s.active, s.activeSize = f, size
	s.loadedMeta = s.lastMeta
	return nil
}

func (s *SegmentStore) listSegments() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("kdb: listing %s: %w", s.dir, err)
	}
	var seqs []uint64
	for _, de := range ents {
		name := de.Name()
		if len(name) != len(segPrefix)+8+len(segSuffix) ||
			name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%d", &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// replaySegment applies one segment's records to memory. A structurally
// bad record in the last segment is a torn tail: the file is truncated
// back to the last whole record. The same damage anywhere else is
// corruption and refuses to load.
func (s *SegmentStore) replaySegment(seq uint64, last bool) error {
	path := filepath.Join(s.dir, segName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kdb: reading segment: %w", err)
	}
	off := 0
	for off < len(data) {
		rec, n, ok := readLogRecord(data[off:])
		if !ok {
			if !last {
				return fmt.Errorf("%w: %s at offset %d", ErrBadSegment, segName(seq), off)
			}
			// Torn tail: drop the partial record, keep everything before.
			if err := os.Truncate(path, int64(off)); err != nil {
				return fmt.Errorf("kdb: truncating torn segment: %w", err)
			}
			return nil
		}
		if rec.Serial > s.lastMeta.Serial {
			c, err := decodeOneChange(rec.Enc)
			if err != nil {
				if !last {
					return fmt.Errorf("%w: %s at offset %d: %v", ErrBadSegment, segName(seq), off, err)
				}
				if err := os.Truncate(path, int64(off)); err != nil {
					return fmt.Errorf("kdb: truncating torn segment: %w", err)
				}
				return nil
			}
			if c.Op == ChangeDelete {
				s.mem.Delete(c.Entry.ID())
			} else {
				s.mem.Put(c.Entry)
			}
			s.replayRecords++
			s.lastMeta = DumpMeta{Serial: rec.Serial, Digest: rec.Digest}
		}
		off += n
	}
	return nil
}

// readLogRecord parses one framed record from the head of data. ok is
// false when the record is incomplete or fails its CRC.
func readLogRecord(data []byte) (LogRec, int, bool) {
	if len(data) < recHeader {
		return LogRec{}, 0, false
	}
	payloadLen := int(binary.BigEndian.Uint32(data))
	if payloadLen < 16 || payloadLen > maxLogRecord || len(data) < 8+payloadLen {
		return LogRec{}, 0, false
	}
	crc := binary.BigEndian.Uint32(data[4:])
	payload := data[8 : 8+payloadLen]
	//kerb:ignore consttime -- CRC-32 detects torn disk writes, not forgery; nothing here is keyed
	if crc32.ChecksumIEEE(payload) != crc {
		return LogRec{}, 0, false
	}
	rec := LogRec{
		Serial: binary.BigEndian.Uint64(payload),
		Digest: binary.BigEndian.Uint64(payload[8:]),
		Enc:    payload[16:],
	}
	return rec, 8 + payloadLen, true
}

// LoadedMeta reports the lineage observed at open time (base plus segment
// replay), so the Database resumes the on-disk serial and digest.
func (s *SegmentStore) LoadedMeta() DumpMeta {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	return s.loadedMeta
}

// StartupStats is the cold-start cost observed when the store opened.
type StartupStats struct {
	StartupNS     int64 // open-to-serving wall time
	ReplayRecords int   // segment records replayed on top of the base
	ResidentBytes int64 // base mapping/heap + slab index estimate
	MappedBase    bool  // base came in via mmap (vs read or flat decode)
}

// StartupStats reports how this store came up (the kdb_startup_ms /
// kdb_replay_records / kdb_resident_bytes gauges).
func (s *SegmentStore) StartupStats() StartupStats {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	return StartupStats{
		StartupNS:     s.startupNS,
		ReplayRecords: s.replayRecords,
		ResidentBytes: s.residentBytes,
		MappedBase:    s.snap != nil && s.snap.Mapped(),
	}
}

// syncDir fsyncs the store directory, making renames, creations, and
// unlinks durable in order. Skipped under NoFsync.
func (s *SegmentStore) syncDir() error {
	if s.opt.NoFsync {
		return nil
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// baseFileName returns the base filename the store writes, and the one
// it must remove after installing (the other format).
func (s *SegmentStore) baseFileName() (write, stale string) {
	if s.opt.LegacyBase {
		return segBaseName, segBase4Name
	}
	return segBase4Name, segBaseName
}

// encodeBase renders entries in the store's base format. Entries must
// be ID-sorted (every fold and Range already is).
func (s *SegmentStore) encodeBase(entries []*Entry, meta DumpMeta) ([]byte, error) {
	if s.opt.LegacyBase {
		return EncodeEntriesAt(entries, meta), nil
	}
	return EncodeKDB4(entries, meta)
}

// installBase atomically writes the base file and makes the swap
// durable: rename, directory fsync, stale-format removal, directory
// fsync again. Only after installBase returns may the records the base
// covers be deleted — the ordering is what keeps a power cut from
// resurrecting folded segments.
func (s *SegmentStore) installBase(data []byte) error {
	write, stale := s.baseFileName()
	if err := WriteFileAtomic(filepath.Join(s.dir, write), data, 0o600); err != nil {
		return err
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("kdb: syncing %s after base install: %w", s.dir, err)
	}
	if err := os.Remove(filepath.Join(s.dir, stale)); err == nil {
		if err := s.syncDir(); err != nil {
			return fmt.Errorf("kdb: syncing %s after stale base removal: %w", s.dir, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("kdb: removing stale base: %w", err)
	}
	return nil
}

// SetMetaSource installs the callback ReplaceAll uses to stamp the base
// dump it writes. Append-path records carry their own lineage.
func (s *SegmentStore) SetMetaSource(fn func() DumpMeta) {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	s.metaSource = fn
}

// ApplyLogged implements ChangeLogStore: one buffered write of the framed
// records to the active segment, one fsync, one in-memory batch — all in
// a single lock window so file order is memory order.
func (s *SegmentStore) ApplyLogged(recs []LogRec, upserts []*Entry, deletes []string) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range recs {
		buf = appendLogRecord(buf, rec)
	}
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	if err := s.appendLocked(buf); err != nil {
		return err
	}
	s.lastMeta = DumpMeta{Serial: recs[len(recs)-1].Serial, Digest: recs[len(recs)-1].Digest}
	s.mem.ApplyBatch(upserts, deletes)
	s.maybeSealLocked()
	return nil
}

func (s *SegmentStore) appendLocked(buf []byte) error {
	if _, err := s.active.Write(buf); err != nil {
		return fmt.Errorf("kdb: appending segment record: %w", err)
	}
	if !s.opt.NoFsync {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("kdb: syncing segment: %w", err)
		}
	}
	s.activeSize += int64(len(buf))
	return nil
}

// maybeSealLocked rolls to the next segment once the active one is full.
func (s *SegmentStore) maybeSealLocked() {
	if s.activeSize < s.opt.SegmentBytes {
		return
	}
	next := s.activeSeq + 1
	f, err := os.OpenFile(filepath.Join(s.dir, segName(next)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		// Keep appending to the oversized segment; sealing retries on the
		// next append.
		return
	}
	// Make the new segment's directory entry durable before records
	// land in it; otherwise a power cut could keep the records' blocks
	// while losing the file that names them.
	s.syncDir()
	s.active.Close()
	s.sealed = append(s.sealed, s.activeSeq)
	s.active, s.activeSeq, s.activeSize = f, next, 0
	if len(s.sealed) >= s.opt.CompactAfter {
		s.kickCompactor()
	}
}

func (s *SegmentStore) kickCompactor() {
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

func (s *SegmentStore) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactCh:
			if err := s.Compact(); err != nil {
				s.fileMu.Lock()
				s.compactErr = err
				s.fileMu.Unlock()
			}
		}
	}
}

// readBaseForFold loads the current base (either format) as heap
// entries for a compaction fold. KDB4 bytes are read (not mmapped) so
// the folded entries' backing buffer is garbage-collected normally.
func (s *SegmentStore) readBaseForFold() ([]*Entry, DumpMeta, error) {
	if data, err := os.ReadFile(filepath.Join(s.dir, segBase4Name)); err == nil {
		sn, perr := ParseKDB4(data)
		if perr != nil {
			return nil, DumpMeta{}, fmt.Errorf("kdb: compacting: parsing %s: %w", segBase4Name, perr)
		}
		entries, merr := sn.MaterializePtrs()
		if merr != nil {
			return nil, DumpMeta{}, fmt.Errorf("kdb: compacting: %w", merr)
		}
		return entries, sn.Meta(), nil
	} else if !os.IsNotExist(err) {
		return nil, DumpMeta{}, fmt.Errorf("kdb: compacting: %w", err)
	}
	if data, err := os.ReadFile(filepath.Join(s.dir, segBaseName)); err == nil {
		entries, m, perr := ParseDumpFull(data)
		if perr != nil {
			return nil, DumpMeta{}, fmt.Errorf("kdb: compacting: parsing base: %w", perr)
		}
		return entries, m, nil
	} else if !os.IsNotExist(err) {
		return nil, DumpMeta{}, fmt.Errorf("kdb: compacting: %w", err)
	}
	return nil, DumpMeta{}, nil
}

// Compact folds the sealed segments into a fresh base snapshot and deletes
// them. Sealed segments and the current base are immutable, so the fold
// runs without blocking appends; only the final install (rename + segment
// deletion) takes the file lock. Safe to call concurrently with
// mutations; also called synchronously by tests.
func (s *SegmentStore) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.fileMu.Lock()
	seqs := append([]uint64(nil), s.sealed...)
	s.fileMu.Unlock()
	if len(seqs) == 0 {
		return nil
	}

	// Fold base + sealed segments outside the lock.
	byID := make(map[string]*Entry)
	meta := DumpMeta{}
	entries, m, err := s.readBaseForFold()
	if err != nil {
		return err
	}
	for _, e := range entries {
		byID[e.ID()] = e
	}
	meta = m
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(s.dir, segName(seq)))
		if err != nil {
			return fmt.Errorf("kdb: compacting: %w", err)
		}
		off := 0
		for off < len(data) {
			rec, n, ok := readLogRecord(data[off:])
			if !ok {
				return fmt.Errorf("%w: %s at offset %d (sealed)", ErrBadSegment, segName(seq), off)
			}
			if rec.Serial > meta.Serial {
				c, err := decodeOneChange(rec.Enc)
				if err != nil {
					return fmt.Errorf("kdb: compacting %s: %w", segName(seq), err)
				}
				if c.Op == ChangeDelete {
					delete(byID, c.Entry.ID())
				} else {
					byID[c.Entry.ID()] = c.Entry
				}
				meta = DumpMeta{Serial: rec.Serial, Digest: rec.Digest}
			}
			off += n
		}
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	baseEntries := make([]*Entry, len(ids))
	for i, id := range ids {
		baseEntries[i] = byID[id]
	}
	data, err := s.encodeBase(baseEntries, meta)
	if err != nil {
		return fmt.Errorf("kdb: compacting: encoding base: %w", err)
	}
	if err := s.installBase(data); err != nil {
		return fmt.Errorf("kdb: compacting: installing base: %w", err)
	}

	// Install: the new base is durable (file and directory entry both
	// fsynced) and covers everything in the folded segments, so deleting
	// them is safe — and a crash before the deletions is also safe,
	// because replay skips records at or below the base serial.
	s.fileMu.Lock()
	s.baseMeta = meta
	remaining := s.sealed[:0]
	folded := make(map[uint64]bool, len(seqs))
	for _, seq := range seqs {
		folded[seq] = true
	}
	for _, seq := range s.sealed {
		if !folded[seq] {
			remaining = append(remaining, seq)
		}
	}
	s.sealed = append([]uint64(nil), remaining...)
	s.compacts++
	s.fileMu.Unlock()
	for _, seq := range seqs {
		os.Remove(filepath.Join(s.dir, segName(seq)))
	}
	return nil
}

// Compactions reports how many background compactions have completed.
func (s *SegmentStore) Compactions() int {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	return s.compacts
}

// CompactErr returns the last background compaction error, if any.
func (s *SegmentStore) CompactErr() error {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	return s.compactErr
}

// Close stops the compactor, closes the active segment, and releases
// the base mapping. Entries served from the store (shared fetches over
// the mmapped slab) must not be used after Close — the same discipline
// file handles already imposed. Closing an already-closed store is a
// no-op.
func (s *SegmentStore) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	var err error
	if s.active != nil {
		if !s.opt.NoFsync {
			s.active.Sync()
		}
		err = s.active.Close()
		s.active = nil
	}
	if s.snap != nil {
		if cerr := s.snap.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.snap = nil
	}
	return err
}

// Fetch implements Store.
func (s *SegmentStore) Fetch(id string) (*Entry, bool) { return s.mem.Fetch(id) }

// FetchShared implements Store.
func (s *SegmentStore) FetchShared(id string) (*Entry, bool) { return s.mem.FetchShared(id) }

// FetchSharedPair implements PairFetcher: the KDC's lock-free,
// zero-allocation read path over the epoch index.
func (s *SegmentStore) FetchSharedPair(name, instance string) (*Entry, bool) {
	return s.mem.FetchSharedPair(name, instance)
}

// Put implements Store. Used standalone (outside a Database, which logs
// through ApplyLogged), the store synthesizes its own lineage record.
func (s *SegmentStore) Put(e *Entry) {
	if err := s.selfLog(ChangeUpsert, e); err != nil {
		panic(err)
	}
}

// Delete implements Store.
func (s *SegmentStore) Delete(id string) {
	name, instance := splitID(id)
	if err := s.selfLog(ChangeDelete, &Entry{Name: name, Instance: instance}); err != nil {
		panic(err)
	}
}

// selfLog journals one standalone mutation with a synthesized serial.
func (s *SegmentStore) selfLog(op ChangeOp, e *Entry) error {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	c := Change{Serial: s.lastMeta.Serial + 1, Op: op, Entry: e}
	enc := encodeChange(c)
	digest := chainDigest(s.lastMeta.Digest, enc)
	buf := appendLogRecord(nil, LogRec{Enc: enc, Serial: c.Serial, Digest: digest})
	if err := s.appendLocked(buf); err != nil {
		return err
	}
	s.lastMeta = DumpMeta{Serial: c.Serial, Digest: digest}
	if op == ChangeDelete {
		s.mem.Delete(e.ID())
	} else {
		s.mem.Put(e)
	}
	s.maybeSealLocked()
	return nil
}

// splitID undoes ID(): the instance is everything after the last dot
// (names may not contain dots; core.Principal.Valid enforces that).
func splitID(id string) (name, instance string) {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '.' {
			return id[:i], id[i+1:]
		}
	}
	return id, ""
}

// Range implements Store.
func (s *SegmentStore) Range(fn func(*Entry) bool) { s.mem.Range(fn) }

// Len implements Store.
func (s *SegmentStore) Len() int { return s.mem.Len() }

// ReplaceAll implements Store: bulk replacement (propagation install,
// LoadDump) writes a fresh base snapshot and starts an empty segment —
// the one legitimately whole-file write left, and it is O(new
// contents).
func (s *SegmentStore) ReplaceAll(entries []*Entry) {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	meta := s.lastMeta
	if s.metaSource != nil {
		meta = s.metaSource()
	}
	data, err := s.encodeBase(sortedEntriesByID(entries), meta)
	if err != nil {
		panic(fmt.Errorf("kdb: encoding base: %w", err))
	}
	if err := s.installBase(data); err != nil {
		panic(fmt.Errorf("kdb: replacing base: %w", err))
	}
	// Drop every segment: the new base supersedes them all.
	next := s.activeSeq + 1
	f, err := os.OpenFile(filepath.Join(s.dir, segName(next)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		panic(fmt.Errorf("kdb: rolling segment: %w", err))
	}
	s.syncDir()
	old := append(append([]uint64(nil), s.sealed...), s.activeSeq)
	s.active.Close()
	s.active, s.activeSeq, s.activeSize = f, next, 0
	s.sealed = nil
	s.baseMeta, s.lastMeta = meta, meta
	for _, seq := range old {
		os.Remove(filepath.Join(s.dir, segName(seq)))
	}
	s.mem.ReplaceAll(entries)
}

// ApplyBatch implements Store, self-logging each mutation (a Database
// routes batches through ApplyLogged instead).
func (s *SegmentStore) ApplyBatch(upserts []*Entry, deletes []string) {
	s.fileMu.Lock()
	defer s.fileMu.Unlock()
	var buf []byte
	meta := s.lastMeta
	for _, e := range upserts {
		c := Change{Serial: meta.Serial + 1, Op: ChangeUpsert, Entry: e}
		enc := encodeChange(c)
		meta = DumpMeta{Serial: c.Serial, Digest: chainDigest(meta.Digest, enc)}
		buf = appendLogRecord(buf, LogRec{Enc: enc, Serial: c.Serial, Digest: meta.Digest})
	}
	for _, id := range deletes {
		name, instance := splitID(id)
		c := Change{Serial: meta.Serial + 1, Op: ChangeDelete, Entry: &Entry{Name: name, Instance: instance}}
		enc := encodeChange(c)
		meta = DumpMeta{Serial: c.Serial, Digest: chainDigest(meta.Digest, enc)}
		buf = appendLogRecord(buf, LogRec{Enc: enc, Serial: c.Serial, Digest: meta.Digest})
	}
	if len(buf) > 0 {
		if err := s.appendLocked(buf); err != nil {
			panic(err)
		}
	}
	s.lastMeta = meta
	s.mem.ApplyBatch(upserts, deletes)
	s.maybeSealLocked()
}

// OpenSegmentDB opens (or creates) a sharded database over segment-log
// stores rooted at dir: shard i lives in dir/shard-NNN. The shard count
// is fixed at creation; reopening with a different count is an error
// (re-sharding is a dump/reload).
func OpenSegmentDB(masterKey des.Key, dir string, shards int, opt SegmentOptions) (*Database, []*SegmentStore, error) {
	if shards < 1 {
		shards = 1
	}
	if existing, err := DetectShards(dir); err != nil {
		return nil, nil, err
	} else if existing > 0 && existing != shards {
		return nil, nil, fmt.Errorf("kdb: %s holds %d shards, asked for %d (re-shard via dump/reload)", dir, existing, shards)
	}
	// Open every shard concurrently: each shard maps its own base and
	// replays its own segment tail, so an N-shard cold start is the
	// slowest shard, not the sum. Torn-tail handling and ErrBadSegment
	// semantics are per shard and unchanged; shard directories are
	// disjoint, so the loads share nothing.
	stores := make([]Store, shards)
	segs := make([]*SegmentStore, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := OpenSegmentStore(filepath.Join(dir, shardDirName(i)), opt)
			if err != nil {
				errs[i] = err
				return
			}
			stores[i], segs[i] = s, s
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Deterministic error (lowest shard wins) and no leaked stores.
			for _, s := range segs {
				if s != nil {
					s.Close()
				}
			}
			return nil, nil, err
		}
	}
	return NewSharded(masterKey, stores), segs, nil
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// DetectShards counts the shard-NNN subdirectories of a segment database
// root (0 when dir does not exist or holds none).
func DetectShards(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("kdb: listing %s: %w", dir, err)
	}
	n := 0
	for _, de := range ents {
		var i int
		if de.IsDir() {
			if _, err := fmt.Sscanf(de.Name(), "shard-%03d", &i); err == nil {
				n++
			}
		}
	}
	return n, nil
}

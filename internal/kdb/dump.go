package kdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// Database dumps (§5.3): "The master database is dumped every hour. The
// database is sent, in its entirety, to the slave machines, which then
// update their own databases." Private keys inside a dump remain sealed
// in the master key, so "the information passed from master to slave
// over the network is not useful to an eavesdropper."
//
// Format v2 prefixes the entries with the propagation metadata the
// incremental plane needs — the database serial and rolling digest — so
// a restarted master or slave resumes the same lineage instead of
// forcing a full resync. v1 dumps (no metadata) still load, at serial 0.

// Format v3 extends v2 for sharded databases: a vector of per-shard
// (serial, digest) pairs precedes the entries, so a same-shape database
// loading the dump resumes every shard's lineage. The entries themselves
// are shard-agnostic (globally ID-sorted); a database of a different
// shard shape can still load a v3 dump, at the cost of restarting its
// lineage (slaves heal with one full resync).
var (
	dumpMagic   = [4]byte{'K', 'D', 'B', '1'}
	dumpMagicV2 = [4]byte{'K', 'D', 'B', '2'}
	dumpMagicV3 = [4]byte{'K', 'D', 'B', '3'}
)

// maxDumpShards bounds the shard-count field of a v3 dump (structural
// validation, not a design limit).
const maxDumpShards = 1 << 12

// ErrBadDump reports a dump that failed structural validation.
var ErrBadDump = errors.New("kdb: malformed database dump")

// DumpMeta is the propagation metadata a v2 dump carries.
type DumpMeta struct {
	Serial uint64 // monotonic change serial at dump time
	Digest uint64 // rolling content digest at dump time
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

type dumpReader struct {
	data []byte
	err  error
}

func (r *dumpReader) bytes() []byte {
	if r.err != nil {
		return nil
	}
	n, used := binary.Uvarint(r.data)
	if used <= 0 || n > 1<<20 || uint64(len(r.data)-used) < n {
		r.err = ErrBadDump
		return nil
	}
	b := r.data[used : used+int(n)]
	r.data = r.data[used+int(n):]
	return b
}

func (r *dumpReader) str() string { return string(r.bytes()) }

func (r *dumpReader) u64() uint64 {
	if r.err != nil || len(r.data) < 8 {
		r.err = ErrBadDump
		return 0
	}
	v := binary.BigEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

func (r *dumpReader) u8() uint8 {
	if r.err != nil || len(r.data) < 1 {
		r.err = ErrBadDump
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

// appendEntryBody serializes the fields that follow an entry's name and
// instance — shared between full dumps and journal changes so the two
// planes cannot drift apart.
func appendEntryBody(buf []byte, e *Entry) []byte {
	buf = appendBytes(buf, e.EncKey)
	buf = append(buf, e.KVNO)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Expiration.Unix()))
	buf = append(buf, byte(e.MaxLife))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.ModTime.Unix()))
	return appendString(buf, e.ModBy)
}

// readEntryBody is the inverse of appendEntryBody.
func readEntryBody(r *dumpReader, e *Entry) {
	e.EncKey = append([]byte(nil), r.bytes()...)
	e.KVNO = r.u8()
	e.Expiration = time.Unix(int64(r.u64()), 0).UTC()
	e.MaxLife = core.Lifetime(r.u8())
	e.ModTime = time.Unix(int64(r.u64()), 0).UTC()
	e.ModBy = r.str()
}

// Dump serializes the entire database deterministically, including its
// propagation metadata. Keys stay sealed in the master key. A
// single-shard database emits the v2 format (byte-compatible with every
// earlier release); a sharded one emits v3 with the per-shard metadata
// vector. All shard write locks are held during the snapshot so the
// entries and every shard's (serial, digest) are one consistent cut.
func (db *Database) Dump() []byte {
	for _, sh := range db.shards {
		sh.wmu.Lock()
	}
	metas := make([]DumpMeta, len(db.shards))
	for i, sh := range db.shards {
		metas[i] = DumpMeta{Serial: sh.serial.Load(), Digest: sh.digest.Load()}
	}
	entries := make([]*Entry, 0, db.Len())
	collect := func(e *Entry) bool {
		entries = append(entries, e)
		return true
	}
	if len(db.shards) == 1 {
		db.shards[0].store.Range(collect)
	} else {
		rangeMerged(db.stores(), collect)
	}
	for _, sh := range db.shards {
		sh.wmu.Unlock()
	}
	if len(db.shards) == 1 {
		return EncodeEntriesAt(entries, metas[0])
	}
	return encodeEntriesV3(entries, metas)
}

// DumpShard serializes shard i alone, in the v2 format, under its own
// write lock — the unit the sharded propagation plane ships in parallel.
func (db *Database) DumpShard(i int) []byte {
	sh := db.shards[i]
	sh.wmu.Lock()
	meta := DumpMeta{Serial: sh.serial.Load(), Digest: sh.digest.Load()}
	entries := make([]*Entry, 0, sh.store.Len())
	sh.store.Range(func(e *Entry) bool {
		entries = append(entries, e)
		return true
	})
	sh.wmu.Unlock()
	return EncodeEntriesAt(entries, meta)
}

// encodeEntriesV3 serializes a sharded dump: magic, shard-meta vector,
// then the entry list in the shared layout.
func encodeEntriesV3(entries []*Entry, metas []DumpMeta) []byte {
	buf := append([]byte(nil), dumpMagicV3[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(metas)))
	for _, m := range metas {
		buf = binary.BigEndian.AppendUint64(buf, m.Serial)
		buf = binary.BigEndian.AppendUint64(buf, m.Digest)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = appendString(buf, e.Name)
		buf = appendString(buf, e.Instance)
		buf = appendEntryBody(buf, e)
	}
	return buf
}

// ParseDump decodes a dump into entries without installing them.
func ParseDump(dump []byte) ([]*Entry, error) {
	entries, _, err := ParseDumpFull(dump)
	return entries, err
}

// ParseDumpFull decodes a dump and its propagation metadata (zero for a
// v1 dump; for a v3 dump the shard metas aggregate the same way the
// Database does — serials sum, digests XOR-fold).
func ParseDumpFull(dump []byte) ([]*Entry, DumpMeta, error) {
	entries, metas, err := ParseDumpSharded(dump)
	if err != nil {
		return nil, DumpMeta{}, err
	}
	var meta DumpMeta
	if len(metas) == 1 {
		meta = metas[0]
	} else {
		for _, m := range metas {
			meta.Serial += m.Serial
			meta.Digest ^= m.Digest
		}
	}
	return entries, meta, nil
}

// ParseDumpSharded decodes a dump and its per-shard propagation metadata
// (a single meta for v1/v2 dumps).
func ParseDumpSharded(dump []byte) ([]*Entry, []DumpMeta, error) {
	if len(dump) < 8 {
		return nil, nil, ErrBadDump
	}
	body := dump[4:]
	var metas []DumpMeta
	switch [4]byte(dump[:4]) {
	case dumpMagic:
		metas = []DumpMeta{{}}
	case dumpMagicV2:
		if len(body) < 16 {
			return nil, nil, ErrBadDump
		}
		metas = []DumpMeta{{
			Serial: binary.BigEndian.Uint64(body),
			Digest: binary.BigEndian.Uint64(body[8:]),
		}}
		body = body[16:]
	case dumpMagicV3:
		if len(body) < 4 {
			return nil, nil, ErrBadDump
		}
		n := binary.BigEndian.Uint32(body)
		body = body[4:]
		if n == 0 || n > maxDumpShards || uint64(len(body)) < 16*uint64(n) {
			return nil, nil, fmt.Errorf("%w: implausible shard count %d", ErrBadDump, n)
		}
		metas = make([]DumpMeta, n)
		for i := range metas {
			metas[i].Serial = binary.BigEndian.Uint64(body)
			metas[i].Digest = binary.BigEndian.Uint64(body[8:])
			body = body[16:]
		}
	default:
		return nil, nil, ErrBadDump
	}
	entries, err := parseEntryList(body)
	if err != nil {
		return nil, nil, err
	}
	return entries, metas, nil
}

// parseEntryList decodes the count-prefixed entry layout every dump
// version shares.
func parseEntryList(body []byte) ([]*Entry, error) {
	if len(body) < 4 {
		return nil, ErrBadDump
	}
	count := binary.BigEndian.Uint32(body)
	r := dumpReader{data: body[4:]}
	entries := make([]*Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		e := &Entry{
			Name:     r.str(),
			Instance: r.str(),
		}
		readEntryBody(&r, e)
		if r.err != nil {
			return nil, r.err
		}
		entries = append(entries, e)
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadDump, len(r.data))
	}
	return entries, nil
}

// LoadDump atomically replaces the database contents with a dump,
// bypassing the read-only check — this is exactly how a slave's copy is
// refreshed by kpropd (§5.3). When the dump's shard shape matches the
// database's, each shard resumes the dump's (serial, digest) lineage;
// otherwise the contents load but the lineage restarts at zero (slaves
// of a re-sharded master heal with one full resync). The journal
// restarts either way — a full load is a new delta horizon.
//
// Per shard, the lineage reset happens before the store swap: a
// persisting store stamps its rewrite with the new metadata, never a
// stale serial next to new entries.
func (db *Database) LoadDump(dump []byte) error {
	entries, metas, err := ParseDumpSharded(dump)
	if err != nil {
		return err
	}
	n := len(db.shards)
	if len(metas) != n {
		metas = make([]DumpMeta, n) // different shard shape: new lineage
	}
	parts := make([][]*Entry, n)
	if n == 1 {
		parts[0] = entries
	} else {
		for _, e := range entries {
			i := ShardIndex(e.Name, e.Instance, n)
			parts[i] = append(parts[i], e)
		}
	}
	for i, sh := range db.shards {
		sh.wmu.Lock()
		sh.resetJournalLocked(metas[i].Serial, metas[i].Digest)
		sh.store.ReplaceAll(parts[i])
		sh.wmu.Unlock()
	}
	// No key-cache invalidation needed: the replacement installed fresh
	// entries, and decrypted-key caches ride on the entries themselves.
	return nil
}

// LoadDumpShard replaces shard i alone from a v1/v2 dump (the unit
// DumpShard produces). Every entry must belong to shard i under the
// database's shard shape; a misrouted dump is rejected before anything
// is applied.
func (db *Database) LoadDumpShard(i int, dump []byte) error {
	if len(dump) >= 4 && [4]byte(dump[:4]) == dumpMagicV3 {
		return fmt.Errorf("%w: shard load needs a per-shard (v2) dump", ErrBadDump)
	}
	entries, meta, err := ParseDumpFull(dump)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if ShardIndex(e.Name, e.Instance, len(db.shards)) != i {
			return fmt.Errorf("%w: entry %s does not belong to shard %d", ErrBadDump, e.ID(), i)
		}
	}
	sh := db.shards[i]
	sh.wmu.Lock()
	sh.resetJournalLocked(meta.Serial, meta.Digest)
	sh.store.ReplaceAll(entries)
	sh.wmu.Unlock()
	return nil
}

// DumpChecksum computes the keyed checksum of a dump under the master
// database key: "First kprop sends a checksum of the new database it is
// about to send. The checksum is encrypted in the Kerberos master
// database key, which both the master and slave Kerberos machines
// possess" (§5.3).
func DumpChecksum(masterKey des.Key, dump []byte) uint64 {
	return des.CBCChecksum(masterKey, dump)
}

// WriteFileAtomic writes data to path with the crash-safe
// temp+fsync+rename discipline: a reader (or a restart) sees either the
// old contents or the new, never a torn file.
func WriteFileAtomic(path string, data []byte, mode os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, mode)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Save writes the dump to path with a 0600 mode, for the master's
// on-disk database and for backups ("would also be wise to maintain
// backups of the Master database", §6.3). The write is atomic and
// fsynced: a crash mid-save leaves the previous database intact.
func (db *Database) Save(path string) error {
	if err := WriteFileAtomic(path, db.Dump(), 0o600); err != nil {
		return fmt.Errorf("kdb: saving database: %w", err)
	}
	return nil
}

// Load reads a previously saved dump from path into the database.
func (db *Database) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kdb: loading database: %w", err)
	}
	return db.LoadDump(data)
}

package kdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// Database dumps (§5.3): "The master database is dumped every hour. The
// database is sent, in its entirety, to the slave machines, which then
// update their own databases." Private keys inside a dump remain sealed
// in the master key, so "the information passed from master to slave
// over the network is not useful to an eavesdropper."

var dumpMagic = [4]byte{'K', 'D', 'B', '1'}

// ErrBadDump reports a dump that failed structural validation.
var ErrBadDump = errors.New("kdb: malformed database dump")

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

type dumpReader struct {
	data []byte
	err  error
}

func (r *dumpReader) bytes() []byte {
	if r.err != nil {
		return nil
	}
	n, used := binary.Uvarint(r.data)
	if used <= 0 || n > 1<<20 || uint64(len(r.data)-used) < n {
		r.err = ErrBadDump
		return nil
	}
	b := r.data[used : used+int(n)]
	r.data = r.data[used+int(n):]
	return b
}

func (r *dumpReader) str() string { return string(r.bytes()) }

func (r *dumpReader) u64() uint64 {
	if r.err != nil || len(r.data) < 8 {
		r.err = ErrBadDump
		return 0
	}
	v := binary.BigEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

func (r *dumpReader) u8() uint8 {
	if r.err != nil || len(r.data) < 1 {
		r.err = ErrBadDump
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

// Dump serializes the entire database deterministically. Keys stay
// sealed in the master key.
func (db *Database) Dump() []byte {
	entries := make([]*Entry, 0, db.Len())
	db.store.Range(func(e *Entry) bool {
		entries = append(entries, e)
		return true
	})
	return EncodeEntries(entries)
}

// ParseDump decodes a dump into entries without installing them.
func ParseDump(dump []byte) ([]*Entry, error) {
	if len(dump) < 8 || [4]byte(dump[:4]) != dumpMagic {
		return nil, ErrBadDump
	}
	count := binary.BigEndian.Uint32(dump[4:8])
	r := dumpReader{data: dump[8:]}
	entries := make([]*Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		e := &Entry{
			Name:     r.str(),
			Instance: r.str(),
			EncKey:   append([]byte(nil), r.bytes()...),
			KVNO:     r.u8(),
		}
		e.Expiration = time.Unix(int64(r.u64()), 0).UTC()
		e.MaxLife = core.Lifetime(r.u8())
		e.ModTime = time.Unix(int64(r.u64()), 0).UTC()
		e.ModBy = r.str()
		if r.err != nil {
			return nil, r.err
		}
		entries = append(entries, e)
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadDump, len(r.data))
	}
	return entries, nil
}

// LoadDump atomically replaces the database contents with a dump,
// bypassing the read-only check — this is exactly how a slave's copy is
// refreshed by kpropd (§5.3).
func (db *Database) LoadDump(dump []byte) error {
	entries, err := ParseDump(dump)
	if err != nil {
		return err
	}
	db.store.ReplaceAll(entries)
	// The new contents may carry different keys for existing principals
	// (a dump from a rebuilt master can reuse KVNOs), so drop every
	// cached decrypted key rather than trust KVNO validation alone.
	db.invalidateAllKeys()
	return nil
}

// DumpChecksum computes the keyed checksum of a dump under the master
// database key: "First kprop sends a checksum of the new database it is
// about to send. The checksum is encrypted in the Kerberos master
// database key, which both the master and slave Kerberos machines
// possess" (§5.3).
func DumpChecksum(masterKey des.Key, dump []byte) uint64 {
	return des.CBCChecksum(masterKey, dump)
}

// Save writes the dump to path with a 0600 mode, for the master's
// on-disk database and for backups ("would also be wise to maintain
// backups of the Master database", §6.3).
func (db *Database) Save(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, db.Dump(), 0o600); err != nil {
		return fmt.Errorf("kdb: saving database: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("kdb: installing database: %w", err)
	}
	return nil
}

// Load reads a previously saved dump from path into the database.
func (db *Database) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kdb: loading database: %w", err)
	}
	return db.LoadDump(data)
}

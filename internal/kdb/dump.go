package kdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// Database dumps (§5.3): "The master database is dumped every hour. The
// database is sent, in its entirety, to the slave machines, which then
// update their own databases." Private keys inside a dump remain sealed
// in the master key, so "the information passed from master to slave
// over the network is not useful to an eavesdropper."
//
// Format v2 prefixes the entries with the propagation metadata the
// incremental plane needs — the database serial and rolling digest — so
// a restarted master or slave resumes the same lineage instead of
// forcing a full resync. v1 dumps (no metadata) still load, at serial 0.

var (
	dumpMagic   = [4]byte{'K', 'D', 'B', '1'}
	dumpMagicV2 = [4]byte{'K', 'D', 'B', '2'}
)

// ErrBadDump reports a dump that failed structural validation.
var ErrBadDump = errors.New("kdb: malformed database dump")

// DumpMeta is the propagation metadata a v2 dump carries.
type DumpMeta struct {
	Serial uint64 // monotonic change serial at dump time
	Digest uint64 // rolling content digest at dump time
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

type dumpReader struct {
	data []byte
	err  error
}

func (r *dumpReader) bytes() []byte {
	if r.err != nil {
		return nil
	}
	n, used := binary.Uvarint(r.data)
	if used <= 0 || n > 1<<20 || uint64(len(r.data)-used) < n {
		r.err = ErrBadDump
		return nil
	}
	b := r.data[used : used+int(n)]
	r.data = r.data[used+int(n):]
	return b
}

func (r *dumpReader) str() string { return string(r.bytes()) }

func (r *dumpReader) u64() uint64 {
	if r.err != nil || len(r.data) < 8 {
		r.err = ErrBadDump
		return 0
	}
	v := binary.BigEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

func (r *dumpReader) u8() uint8 {
	if r.err != nil || len(r.data) < 1 {
		r.err = ErrBadDump
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

// appendEntryBody serializes the fields that follow an entry's name and
// instance — shared between full dumps and journal changes so the two
// planes cannot drift apart.
func appendEntryBody(buf []byte, e *Entry) []byte {
	buf = appendBytes(buf, e.EncKey)
	buf = append(buf, e.KVNO)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Expiration.Unix()))
	buf = append(buf, byte(e.MaxLife))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.ModTime.Unix()))
	return appendString(buf, e.ModBy)
}

// readEntryBody is the inverse of appendEntryBody.
func readEntryBody(r *dumpReader, e *Entry) {
	e.EncKey = append([]byte(nil), r.bytes()...)
	e.KVNO = r.u8()
	e.Expiration = time.Unix(int64(r.u64()), 0).UTC()
	e.MaxLife = core.Lifetime(r.u8())
	e.ModTime = time.Unix(int64(r.u64()), 0).UTC()
	e.ModBy = r.str()
}

// Dump serializes the entire database deterministically, including its
// propagation metadata. Keys stay sealed in the master key.
func (db *Database) Dump() []byte {
	db.wmu.Lock()
	meta := DumpMeta{Serial: db.serial.Load(), Digest: db.digest.Load()}
	entries := make([]*Entry, 0, db.Len())
	db.store.Range(func(e *Entry) bool {
		entries = append(entries, e)
		return true
	})
	db.wmu.Unlock()
	return EncodeEntriesAt(entries, meta)
}

// ParseDump decodes a dump into entries without installing them.
func ParseDump(dump []byte) ([]*Entry, error) {
	entries, _, err := ParseDumpFull(dump)
	return entries, err
}

// ParseDumpFull decodes a dump and its propagation metadata (zero for a
// v1 dump).
func ParseDumpFull(dump []byte) ([]*Entry, DumpMeta, error) {
	var meta DumpMeta
	if len(dump) < 8 {
		return nil, meta, ErrBadDump
	}
	body := dump[4:]
	switch [4]byte(dump[:4]) {
	case dumpMagic:
	case dumpMagicV2:
		if len(body) < 16 {
			return nil, meta, ErrBadDump
		}
		meta.Serial = binary.BigEndian.Uint64(body)
		meta.Digest = binary.BigEndian.Uint64(body[8:])
		body = body[16:]
	default:
		return nil, meta, ErrBadDump
	}
	if len(body) < 4 {
		return nil, meta, ErrBadDump
	}
	count := binary.BigEndian.Uint32(body)
	r := dumpReader{data: body[4:]}
	entries := make([]*Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		e := &Entry{
			Name:     r.str(),
			Instance: r.str(),
		}
		readEntryBody(&r, e)
		if r.err != nil {
			return nil, meta, r.err
		}
		entries = append(entries, e)
	}
	if len(r.data) != 0 {
		return nil, meta, fmt.Errorf("%w: %d trailing bytes", ErrBadDump, len(r.data))
	}
	return entries, meta, nil
}

// LoadDump atomically replaces the database contents with a dump,
// bypassing the read-only check — this is exactly how a slave's copy is
// refreshed by kpropd (§5.3). The dump's serial and digest become the
// database's; the journal restarts (a full load is a new delta horizon).
func (db *Database) LoadDump(dump []byte) error {
	entries, meta, err := ParseDumpFull(dump)
	if err != nil {
		return err
	}
	db.wmu.Lock()
	db.store.ReplaceAll(entries)
	db.resetJournalLocked(meta.Serial, meta.Digest)
	db.wmu.Unlock()
	// The new contents may carry different keys for existing principals
	// (a dump from a rebuilt master can reuse KVNOs), so drop every
	// cached decrypted key rather than trust KVNO validation alone.
	db.invalidateAllKeys()
	return nil
}

// DumpChecksum computes the keyed checksum of a dump under the master
// database key: "First kprop sends a checksum of the new database it is
// about to send. The checksum is encrypted in the Kerberos master
// database key, which both the master and slave Kerberos machines
// possess" (§5.3).
func DumpChecksum(masterKey des.Key, dump []byte) uint64 {
	return des.CBCChecksum(masterKey, dump)
}

// WriteFileAtomic writes data to path with the crash-safe
// temp+fsync+rename discipline: a reader (or a restart) sees either the
// old contents or the new, never a torn file.
func WriteFileAtomic(path string, data []byte, mode os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, mode)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Save writes the dump to path with a 0600 mode, for the master's
// on-disk database and for backups ("would also be wise to maintain
// backups of the Master database", §6.3). The write is atomic and
// fsynced: a crash mid-save leaves the previous database intact.
func (db *Database) Save(path string) error {
	if err := WriteFileAtomic(path, db.Dump(), 0o600); err != nil {
		return fmt.Errorf("kdb: saving database: %w", err)
	}
	return nil
}

// Load reads a previously saved dump from path into the database.
func (db *Database) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kdb: loading database: %w", err)
	}
	return db.LoadDump(data)
}

package kdb

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// kdb4TestEntries builds a fixture set that exercises every field
// shape the format has to carry: empty instances, shared (interned)
// instance and modBy strings, long names, and varied scalars.
func kdb4TestEntries(n int) []*Entry {
	entries := make([]*Entry, n)
	for i := range entries {
		inst := ""
		if i%3 == 1 {
			inst = "host" // interned: repeats across entries
		} else if i%3 == 2 {
			inst = fmt.Sprintf("node%d", i%5)
		}
		entries[i] = &Entry{
			Name:       fmt.Sprintf("principal-%04d", i),
			Instance:   inst,
			EncKey:     []byte{byte(i), byte(i >> 8), 3, 4, 5, 6, 7, 8},
			KVNO:       uint8(i%250 + 1),
			MaxLife:    core.Lifetime(i % 256),
			Expiration: t0.Add(time.Duration(i) * time.Hour),
			ModTime:    t0.Add(time.Duration(i) * time.Minute),
			ModBy:      []string{"kadmind", "kprop", "kdb_init"}[i%3],
		}
	}
	return sortedEntriesByID(entries)
}

func entriesEqual(a, b *Entry) bool {
	return a.Name == b.Name && a.Instance == b.Instance &&
		bytes.Equal(a.EncKey, b.EncKey) && a.KVNO == b.KVNO &&
		a.MaxLife == b.MaxLife && a.Expiration.Equal(b.Expiration) &&
		a.ModTime.Equal(b.ModTime) && a.ModBy == b.ModBy
}

func TestKDB4RoundTrip(t *testing.T) {
	in := kdb4TestEntries(137)
	meta := DumpMeta{Serial: 9001, Digest: 0xfeedface}
	data, err := EncodeKDB4(in, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(data)%snapPage != 0 {
		t.Fatalf("snapshot length %d not page-aligned", len(data))
	}
	if !IsKDB4(data) {
		t.Fatal("IsKDB4 rejects its own encoding")
	}
	sn, err := ParseKDB4(data)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Count() != len(in) || sn.Meta() != meta {
		t.Fatalf("parsed count %d meta %+v", sn.Count(), sn.Meta())
	}
	out, err := sn.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("materialized %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if !entriesEqual(in[i], &out[i]) {
			t.Fatalf("entry %d differs:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

func TestKDB4OpenFile(t *testing.T) {
	in := kdb4TestEntries(50)
	data, err := EncodeKDB4(in, DumpMeta{Serial: 50, Digest: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), segBase4Name)
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	sn, err := OpenKDB4(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()
	if runtime.GOOS == "linux" && !sn.Mapped() {
		t.Error("snapshot not mmapped on linux")
	}
	out, err := sn.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if !entriesEqual(in[i], &out[i]) {
			t.Fatalf("entry %d differs after file round-trip", i)
		}
	}
}

// TestKDB4CorruptionDetected flips single bytes across the snapshot
// and requires each flip to be either caught (header CRC, per-page
// data CRCs, section-layout validation) or provably harmless: a flip
// that still parses must decode to exactly the original entries —
// flips in page padding are the only ones allowed through.
func TestKDB4CorruptionDetected(t *testing.T) {
	in := kdb4TestEntries(64)
	data, err := EncodeKDB4(in, DumpMeta{Serial: 64, Digest: 2})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for off := 0; off < len(data); off += 611 { // co-prime with snapPage: hits varied page offsets
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		sn, err := ParseKDB4(mut)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Errorf("flip at %d: error %v does not wrap ErrBadSnapshot", off, err)
			}
			caught++
			continue
		}
		out, err := sn.Materialize()
		if err != nil {
			caught++
			continue
		}
		if len(out) != len(in) {
			t.Fatalf("flip at %d: silently decoded %d entries, want %d", off, len(out), len(in))
		}
		for i := range in {
			if !entriesEqual(in[i], &out[i]) {
				t.Fatalf("flip at %d: silently corrupted entry %d", off, i)
			}
		}
	}
	if caught == 0 {
		t.Fatal("no corruption was ever detected — CRCs are not being checked")
	}
	// Truncations: mid-file and sub-header.
	for _, cut := range []int{len(data) - snapPage, snapPage / 2, 0} {
		if _, err := ParseKDB4(data[:cut]); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("truncation to %d bytes: %v", cut, err)
		}
	}
}

// TestFlatKDB4Equivalence is the format-equivalence property test: the
// same mutation history driven through a legacy flat-base store and a
// KDB4-base store must produce byte-identical dumps and identical
// serial/digest lineage, before and after compaction and reopen.
func TestFlatKDB4Equivalence(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	opts := []SegmentOptions{
		{SegmentBytes: 512, NoFsync: true, LegacyBase: true},
		{SegmentBytes: 512, NoFsync: true},
	}
	dbs := make([]*Database, 2)
	stores := make([][]*SegmentStore, 2)
	for i := range dbs {
		dbs[i], stores[i] = openSegDB(t, dirs[i], 2, opts[i])
	}

	// A deterministic interleaving of adds, rekeys, deletes, and
	// re-adds after delete. Both databases see the identical history;
	// per-op errors (duplicate add, rekey of a deleted principal) are
	// part of the history and must also agree.
	for op := 0; op < 200; op++ {
		name := fmt.Sprintf("u%03d", op%80)
		switch op % 5 {
		case 3:
			for _, db := range dbs {
				db.SetKey(name, "", des.StringToKey(fmt.Sprintf("re%d", op), "R"), "t", t0)
			}
		case 4:
			for _, db := range dbs {
				db.Delete(name, "")
			}
		default:
			key := des.StringToKey(fmt.Sprintf("pw%d", op), "R")
			for _, db := range dbs {
				db.Add(name, "", key, core.DefaultTGTLife, "t", t0)
			}
		}
	}

	check := func(stage string) {
		t.Helper()
		if dbs[0].Serial() != dbs[1].Serial() || dbs[0].Digest() != dbs[1].Digest() {
			t.Fatalf("%s: lineage diverged: (%d, %x) vs (%d, %x)", stage,
				dbs[0].Serial(), dbs[0].Digest(), dbs[1].Serial(), dbs[1].Digest())
		}
		if !bytes.Equal(dbs[0].Dump(), dbs[1].Dump()) {
			t.Fatalf("%s: dumps not byte-identical", stage)
		}
	}
	check("pre-compaction")

	for i := range stores {
		for _, s := range stores[i] {
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	check("post-compaction")

	// The bases on disk are different formats, as configured.
	if _, err := os.Stat(filepath.Join(dirs[0], shardDirName(0), segBaseName)); err != nil {
		t.Fatalf("legacy store has no flat base: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dirs[1], shardDirName(0), segBase4Name)); err != nil {
		t.Fatalf("KDB4 store has no KDB4 base: %v", err)
	}

	for i := range stores {
		for _, s := range stores[i] {
			s.Close()
		}
		dbs[i], stores[i] = openSegDB(t, dirs[i], 2, opts[i])
	}
	check("post-reopen")
}

// TestKDB4TornSwapRecovery covers the two crash shapes of the base
// swap: a leftover .tmp from a crash before rename is ignored on
// reopen, and a torn page inside an installed base refuses to load
// rather than serving silently corrupt principals.
func TestKDB4TornSwapRecovery(t *testing.T) {
	dir := t.TempDir()
	db, segs := openSegDB(t, dir, 1, SegmentOptions{SegmentBytes: 512, NoFsync: true})
	addN(t, db, 40)
	if err := segs[0].Compact(); err != nil {
		t.Fatal(err)
	}
	serial, digest := db.Serial(), db.Digest()
	segs[0].Close()
	sub := filepath.Join(dir, shardDirName(0))

	// Crash before rename: a garbage tmp next to a good base.
	tmp := filepath.Join(sub, segBase4Name+".tmp")
	if err := os.WriteFile(tmp, []byte("torn write from a dead compactor"), 0o600); err != nil {
		t.Fatal(err)
	}
	db2, segs2 := openSegDB(t, dir, 1, SegmentOptions{NoFsync: true})
	if db2.Len() != 40 || db2.Serial() != serial || db2.Digest() != digest {
		t.Fatalf("reopen with stale tmp: len %d lineage (%d, %x)", db2.Len(), db2.Serial(), db2.Digest())
	}
	segs2[0].Close()
	os.Remove(tmp)

	// Torn page inside the installed base: must refuse, not mis-serve.
	base := filepath.Join(sub, segBase4Name)
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0xff
	if err := os.WriteFile(base, mut, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenSegmentDB(des.StringToKey("master-password", "ATHENA.MIT.EDU"), dir, 1, SegmentOptions{NoFsync: true}); err == nil {
		t.Fatal("torn base page loaded silently")
	} else if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("torn base error %v does not wrap ErrBadSnapshot", err)
	}

	// Restore the good bytes: the store loads again.
	if err := os.WriteFile(base, data, 0o600); err != nil {
		t.Fatal(err)
	}
	db3, _ := openSegDB(t, dir, 1, SegmentOptions{NoFsync: true})
	if db3.Len() != 40 || db3.Serial() != serial {
		t.Fatalf("restored base: len %d serial %d", db3.Len(), db3.Serial())
	}
}

// TestSegmentDBKillDuringCompaction is the SIGKILL-at-swap regression
// test for satellite durability work: the child runs with compaction
// after every seal and tiny segments, so the kill lands inside or next
// to a base swap with high probability. Fsync stays ON in the child —
// the swap ordering (tmp fsync, rename, dir fsync, stale unlink, dir
// fsync) is what is under test.
func TestSegmentDBKillDuringCompaction(t *testing.T) {
	if os.Getenv("KDB_SWAPKILL_CHILD") == "1" {
		dir := os.Getenv("KDB_SWAPKILL_DIR")
		db, _, err := OpenSegmentDB(des.StringToKey("m", "R"), dir, 2, SegmentOptions{SegmentBytes: 2048, CompactAfter: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := 0; ; i++ {
			key := des.StringToKey(fmt.Sprintf("pw%d", i), "R")
			if err := db.Add(fmt.Sprintf("churn%06d", i), "", key, core.DefaultTGTLife, "child", t0); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	if testing.Short() {
		t.Skip("subprocess crash test")
	}

	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run", "TestSegmentDBKillDuringCompaction")
		cmd.Env = append(os.Environ(), "KDB_SWAPKILL_CHILD=1", "KDB_SWAPKILL_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(150 * time.Millisecond)
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()

		db, segs, err := OpenSegmentDB(des.StringToKey("m", "R"), dir, 2, SegmentOptions{NoFsync: true})
		if err != nil {
			t.Fatalf("round %d: reopen after SIGKILL mid-compaction: %v", round, err)
		}
		if uint64(db.Len()) != db.Serial() {
			t.Fatalf("round %d: %d principals but serial %d", round, db.Len(), db.Serial())
		}
		var badKey error
		db.Range(func(e *Entry) bool {
			if _, err := db.Key(e); err != nil {
				badKey = fmt.Errorf("%s: %w", e.ID(), err)
				return false
			}
			return true
		})
		if badKey != nil {
			t.Fatalf("round %d: recovered entry undecryptable: %v", round, badKey)
		}
		for _, s := range segs {
			s.Close()
		}
	}
}

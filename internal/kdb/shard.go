package kdb

// Shard routing. The principal space is split by FNV-1a hash of
// ID(name, instance) into a fixed number of shards. The hash is computed
// inline over the two components with the separator the ID would carry,
// so routing never materializes the joined string — a shard lookup on the
// KDC request path allocates nothing.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ShardIndex returns the shard a (name, instance) principal belongs to
// among n shards. n must be ≥ 1; with n == 1 the answer is always 0.
func ShardIndex(name, instance string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime64
	}
	h ^= uint64('.')
	h *= fnvPrime64
	for i := 0; i < len(instance); i++ {
		h ^= uint64(instance[i])
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// ShardIndexID is ShardIndex over an already-rendered "name.instance" ID.
// The two agree because ID() joins the components with the same '.' the
// inline hash feeds between them.
func ShardIndexID(id string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// ShardedStore is a Store that splits the key space across sub-stores by
// ShardIndexID, giving N independent lock domains behind the one Store
// interface. It exists for callers that want lock sharding without the
// per-shard journals of NewSharded — and as the reference subject of the
// sharded/flat equivalence property test.
type ShardedStore struct {
	subs []Store
}

// NewShardedStore returns a ShardedStore over n fresh MemStores.
func NewShardedStore(n int) *ShardedStore {
	if n < 1 {
		n = 1
	}
	subs := make([]Store, n)
	for i := range subs {
		subs[i] = NewMemStore()
	}
	return &ShardedStore{subs: subs}
}

// NewShardedStoreOf returns a ShardedStore over caller-provided
// sub-stores (one per shard).
func NewShardedStoreOf(subs []Store) *ShardedStore {
	if len(subs) == 0 {
		panic("kdb: NewShardedStoreOf needs at least one store")
	}
	return &ShardedStore{subs: subs}
}

// Shards reports the shard count.
func (ss *ShardedStore) Shards() int { return len(ss.subs) }

// Shard returns the sub-store for shard i.
func (ss *ShardedStore) Shard(i int) Store { return ss.subs[i] }

func (ss *ShardedStore) sub(id string) Store {
	return ss.subs[ShardIndexID(id, len(ss.subs))]
}

// Fetch implements Store.
func (ss *ShardedStore) Fetch(id string) (*Entry, bool) { return ss.sub(id).Fetch(id) }

// FetchShared implements Store.
func (ss *ShardedStore) FetchShared(id string) (*Entry, bool) { return ss.sub(id).FetchShared(id) }

// Put implements Store.
func (ss *ShardedStore) Put(e *Entry) { ss.sub(e.ID()).Put(e) }

// Delete implements Store.
func (ss *ShardedStore) Delete(id string) { ss.sub(id).Delete(id) }

// Range implements Store: the per-shard sorted ranges merge into one
// globally ID-sorted iteration, so dumps over a ShardedStore are
// byte-identical to dumps over a flat MemStore with the same contents.
func (ss *ShardedStore) Range(fn func(*Entry) bool) {
	if len(ss.subs) == 1 {
		ss.subs[0].Range(fn)
		return
	}
	rangeMerged(ss.subs, fn)
}

// Len implements Store.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, s := range ss.subs {
		n += s.Len()
	}
	return n
}

// ReplaceAll implements Store, partitioning the new contents per shard.
// The swap is atomic per shard, not across shards; bulk replacement
// callers (propagation) quiesce readers at the Database layer.
func (ss *ShardedStore) ReplaceAll(entries []*Entry) {
	parts := make([][]*Entry, len(ss.subs))
	for _, e := range entries {
		i := ShardIndexID(e.ID(), len(ss.subs))
		parts[i] = append(parts[i], e)
	}
	for i, s := range ss.subs {
		s.ReplaceAll(parts[i])
	}
}

// ApplyBatch implements Store, partitioning the batch per shard.
func (ss *ShardedStore) ApplyBatch(upserts []*Entry, deletes []string) {
	if len(ss.subs) == 1 {
		ss.subs[0].ApplyBatch(upserts, deletes)
		return
	}
	ups := make([][]*Entry, len(ss.subs))
	dels := make([][]string, len(ss.subs))
	for _, e := range upserts {
		i := ShardIndexID(e.ID(), len(ss.subs))
		ups[i] = append(ups[i], e)
	}
	for _, id := range deletes {
		i := ShardIndexID(id, len(ss.subs))
		dels[i] = append(dels[i], id)
	}
	for i, s := range ss.subs {
		if len(ups[i]) > 0 || len(dels[i]) > 0 {
			s.ApplyBatch(ups[i], dels[i])
		}
	}
}

//go:build linux

package kdb

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. The mapping is shared and
// page-cache backed: cold-start cost is the page faults actually
// taken, not a copy of the whole database, and two KDC processes on
// one host (kerberosd plus kadmind) share the resident pages.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, mapped bool, err error) {
	if size == 0 {
		return nil, func() error { return nil }, false, nil
	}
	if int64(int(size)) != size {
		return nil, nil, false, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems that refuse mmap (some network mounts) fall back to
		// a plain read; the snapshot still loads, just not zero-copy.
		return readFallback(f, size)
	}
	return data, func() error { return syscall.Munmap(data) }, true, nil
}

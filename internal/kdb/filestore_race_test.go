package kdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"kerberos/internal/des"
)

// TestFileStorePersistRace is the regression test for the lost-update
// race in FileStore.persist: the snapshot used to be taken OUTSIDE
// fs.mu, so two concurrent mutators could interleave as
//
//	A: snapshot (has A's write, not B's)
//	B: snapshot + persist (file has both)
//	A: persist           (file overwritten with the stale snapshot)
//
// publishing a file that is missing a mutation the in-memory store
// already holds. With the snapshot taken inside the same fs.mu window
// as the write, every published file reflects the memory state at its
// write time, so a value observed in the file can never regress.
//
// The test drives one principal's KVNO monotonically upward under heavy
// unrelated Put/Delete contention while a reader polls the (atomically
// renamed) file: any KVNO regression is exactly a stale snapshot
// overwriting a newer one. A final file==memory comparison closes the
// round. Run under -race in CI; the monotonicity probe also fails
// against the pre-fix snapshot placement without the race detector.
func TestFileStorePersistRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	path := filepath.Join(t.TempDir(), "race.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	// Bulk entries make each snapshot+write long enough to overlap other
	// writers' mutations.
	var bulk []*Entry
	for i := 0; i < 1500; i++ {
		k := des.StringToKey(fmt.Sprintf("bulk%d", i), "R")
		bulk = append(bulk, &Entry{
			Name:   fmt.Sprintf("bulk%04d", i),
			KVNO:   1,
			EncKey: append([]byte(nil), k[:]...),
		})
	}
	fs.ReplaceAll(bulk)

	const steps = 120
	const churners = 4
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Churners: unrelated mutations that keep fs.mu contended.
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := des.StringToKey(fmt.Sprintf("churn%d", w), "R")
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				name := fmt.Sprintf("churn%d-%d", w, i%3)
				if i%4 == 3 {
					fs.Delete(ID(name, ""))
					continue
				}
				fs.Put(&Entry{Name: name, KVNO: uint8(i%250 + 1), EncKey: append([]byte(nil), k[:]...)})
			}
		}(w)
	}

	// Reader: the file is written with temp+rename, so every read sees a
	// complete dump. The counter's KVNO must never move backwards.
	var regressed atomic.Int64 // packs old<<8|new on violation
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		last := uint8(0)
		for {
			select {
			case <-done:
				return
			default:
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			ents, _, err := ParseDumpFull(data)
			if err != nil {
				t.Errorf("reader: published file unparseable: %v", err)
				return
			}
			for _, e := range ents {
				if e.Name == "ctr" {
					if e.KVNO < last {
						regressed.CompareAndSwap(0, int64(last)<<8|int64(e.KVNO))
					}
					last = e.KVNO
				}
			}
		}
	}()

	ck := des.StringToKey("ctr", "R")
	for v := 1; v <= steps; v++ {
		fs.Put(&Entry{Name: "ctr", KVNO: uint8(v), EncKey: append([]byte(nil), ck[:]...)})
	}
	close(done)
	wg.Wait()
	rwg.Wait()

	if packed := regressed.Load(); packed != 0 {
		t.Fatalf("lost update: file's ctr KVNO regressed %d -> %d (stale snapshot overwrote a newer persist)",
			packed>>8, packed&0xff)
	}

	// Quiesced: the file must reflect the in-memory store exactly.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fileEnts, _, err := ParseDumpFull(data)
	if err != nil {
		t.Fatal(err)
	}
	var memEnts []*Entry
	fs.Range(func(e *Entry) bool { memEnts = append(memEnts, e); return true })
	sort.Slice(memEnts, func(i, j int) bool { return memEnts[i].ID() < memEnts[j].ID() })
	if len(fileEnts) != len(memEnts) {
		t.Fatalf("file has %d entries, memory has %d (lost update)", len(fileEnts), len(memEnts))
	}
	for i := range memEnts {
		f, m := fileEnts[i], memEnts[i]
		if f.ID() != m.ID() || f.KVNO != m.KVNO || !bytes.Equal(f.EncKey, m.EncKey) {
			t.Fatalf("file entry %s (kvno %d) != memory entry %s (kvno %d)",
				f.ID(), f.KVNO, m.ID(), m.KVNO)
		}
	}
}

package kdb

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"kerberos/internal/des"
)

func TestFileStoreWriteThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "principal.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	master := des.StringToKey("m", "R")
	db := NewWithStore(master, fs)
	key, _ := des.NewRandomKey()
	if err := db.Add("jis", "", key, 0, "t", t0); err != nil {
		t.Fatal(err)
	}

	// A second open — as another process would — sees the entry with no
	// explicit save having happened.
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	db2 := NewWithStore(master, fs2)
	e, err := db2.Get("jis", "")
	if err != nil {
		t.Fatal(err)
	}
	if k, err := db2.Key(e); err != nil || k != key {
		t.Errorf("key round trip: %v", err)
	}

	// Key change persists too.
	k2, _ := des.NewRandomKey()
	if err := db.SetKey("jis", "", k2, "t", t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	fs3, _ := OpenFileStore(path)
	db3 := NewWithStore(master, fs3)
	e3, _ := db3.Get("jis", "")
	if e3.KVNO != 2 {
		t.Errorf("kvno after reopen = %d", e3.KVNO)
	}
	// Deletes persist.
	if err := db.Delete("jis", ""); err != nil {
		t.Fatal(err)
	}
	fs4, _ := OpenFileStore(path)
	if fs4.Len() != 0 {
		t.Error("delete not persisted")
	}
}

func TestFileStoreFreshAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	// Fresh path: open succeeds with an empty store.
	fs, err := OpenFileStore(filepath.Join(dir, "new.db"))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 0 {
		t.Error("fresh store not empty")
	}
	// Corrupt file: open fails loudly.
	bad := filepath.Join(dir, "bad.db")
	if err := writeFile(bad, []byte("not a database")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(bad); err == nil {
		t.Error("corrupt database opened")
	}
}

func TestFileStoreReplaceAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slave.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	master := des.StringToKey("m", "R")
	db := NewWithStore(master, fs)

	src := New(master)
	key, _ := des.NewRandomKey()
	for _, n := range []string{"a", "b", "c"} {
		if err := src.Add(n, "", key, 0, "t", t0); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.LoadDump(src.Dump()); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 3 {
		t.Errorf("persisted %d entries after ReplaceAll", reopened.Len())
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

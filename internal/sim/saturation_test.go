package sim

import (
	"testing"
	"time"
)

// fixedSvc pins the service-time model so the analyzer tests are
// machine-independent — and deliberately slow (2ms per exchange, one
// worker per instance), so saturation lands at a few hundred QPS and
// probes stay small: one instance's open-loop ceiling is 1/2ms = 500
// exchanges/s, i.e. 250 logins-with-one-ticket per second.
var fixedSvc = ServiceModel{AS: Duration(2 * time.Millisecond), TGS: Duration(2 * time.Millisecond)}

// TestFindSaturation checks the binary search itself: it must converge
// on a positive sustainable rate below the open-loop ceiling, with the
// p99 at the found rate inside the SLO.
func TestFindSaturation(t *testing.T) {
	opts := SaturationOpts{
		SLO:     25 * time.Millisecond,
		Window:  2 * time.Second,
		StartQ:  30,
		CapQ:    2048,
		Service: fixedSvc,
		Seed:    5,
	}
	top := Topology{Name: "flat-x1", Shards: 1, Instances: 1, Workers: 1}
	res := FindSaturation(top, opts)
	if res.MaxQPS <= 0 {
		t.Fatalf("found no sustainable rate (probes %d)", res.Probes)
	}
	if res.MaxQPS >= float64(opts.CapQ) {
		t.Fatalf("max qps %v hit the search ceiling; the queue model is not saturating", res.MaxQPS)
	}
	if res.P99AtMax > opts.SLO {
		t.Fatalf("p99 at reported max = %v, above SLO %v", res.P99AtMax, opts.SLO)
	}
	if res.Probes < 3 {
		t.Fatalf("probes = %d; the search cannot have both expanded and bisected", res.Probes)
	}

	// Sanity-check the frontier: driving the same topology well past
	// the found rate must violate.
	ok, p99, _ := probe(top, fixedSvc, res.MaxQPS*4, opts)
	if ok {
		t.Fatalf("4x the reported max (%v qps) still sustained (p99 %v); search stopped early", res.MaxQPS*4, p99)
	}
}

// TestSaturationScalesWithInstances checks the comparative claim the
// BENCH_realm matrix rests on: with the same per-exchange cost, three
// instances must sustain materially more than one.
func TestSaturationScalesWithInstances(t *testing.T) {
	opts := SaturationOpts{
		SLO:     25 * time.Millisecond,
		Window:  2 * time.Second,
		StartQ:  30,
		CapQ:    2048,
		Service: fixedSvc,
		Seed:    5,
	}
	one := FindSaturation(Topology{Name: "x1", Shards: 16, Instances: 1, Workers: 1}, opts)
	three := FindSaturation(Topology{Name: "x3", Shards: 16, Instances: 3, Workers: 1}, opts)
	if three.MaxQPS < one.MaxQPS*1.5 {
		t.Fatalf("3 instances sustain %.0f qps vs %.0f for 1; expected at least 1.5x scaling",
			three.MaxQPS, one.MaxQPS)
	}
}

// TestCalibrate smoke-tests the wall-clock bridge: real exchanges
// against a live server must yield positive, plausible per-exchange
// costs (machine-dependent, so only ordering and bounds are asserted).
func TestCalibrate(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration times real crypto")
	}
	svc := Calibrate(Topology{Shards: 4}, 200)
	if svc.AS.D() < time.Microsecond || svc.TGS.D() < time.Microsecond {
		t.Fatalf("calibrated costs implausibly low: AS %v TGS %v", svc.AS.D(), svc.TGS.D())
	}
	if svc.AS.D() > 100*time.Millisecond || svc.TGS.D() > 100*time.Millisecond {
		t.Fatalf("calibrated costs implausibly high: AS %v TGS %v", svc.AS.D(), svc.TGS.D())
	}
}

package sim

import (
	"testing"
	"time"
)

// TestSkewEpidemic checks the §2/§4.6 failure mode end to end: a cohort
// whose workstation clocks drifted past the ±5-minute window logs in
// fine (the AS exchange carries no authenticator) but every TGS
// presentation is answered with a KDC error — ErrSkew, not a silent
// drop — and the counters attribute each rejection to skew, with the
// overload and timeout counters untouched.
func TestSkewEpidemic(t *testing.T) {
	const users = 20
	const retries = 1
	sc := &Scenario{
		Name:  "skew-epidemic",
		Seed:  7,
		Users: users,
		Cohorts: []CohortSpec{{
			Name: "drifted", Users: users,
			StormAt: Duration(5 * time.Minute), StormOver: Duration(5 * time.Minute),
			TicketsPerLogin: 1,
			Skew:            Duration(7 * time.Minute), // past the ±5m window
			Retries:         retries,
		}},
		Duration: Duration(time.Hour),
	}
	s, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Execute()
	m := res.Metrics

	// Logins succeed: drift is invisible to the AS exchange.
	if got := m.Logins.Load(); got != users {
		t.Fatalf("logins = %d, want %d: AS exchange must not be skew-checked", got, users)
	}
	if got := m.LoginFailures.Load(); got != 0 {
		t.Fatalf("login failures = %d, want 0", got)
	}

	// Every TGS presentation is refused, once per attempt: the initial
	// try plus each retry, for every drifted user.
	wantRejects := uint64(users * (1 + retries))
	if got := m.SkewRejections.Load(); got != wantRejects {
		t.Fatalf("skew rejections = %d, want %d", got, wantRejects)
	}
	if got := m.TGS.Load(); got != 0 {
		t.Fatalf("tgs successes = %d, want 0 for a fully drifted cohort", got)
	}
	if got := m.TGSFailures.Load(); got != users {
		t.Fatalf("tgs failures = %d, want %d (one per user after retries exhaust)", got, users)
	}

	// The client saw a reply each time — these are rejections, not
	// drops: nothing may show up as overload or timeout.
	if got := m.OverloadRejections.Load(); got != 0 {
		t.Fatalf("overload rejections = %d, want 0: skew must not be misattributed", got)
	}
	if got := m.Timeouts.Load(); got != 0 {
		t.Fatalf("timeouts = %d, want 0: rejection is a reply, not silence", got)
	}

	// The KDC-side counter agrees exactly: every ErrSkew reply was
	// counted as a skew error, distinguishable from generic errors.
	if got := res.KDC.SkewErrors; got != wantRejects {
		t.Fatalf("kdc_skew_errors = %d, want %d", got, wantRejects)
	}
	if res.KDC.Errors < res.KDC.SkewErrors {
		t.Fatalf("kdc errors %d < skew errors %d", res.KDC.Errors, res.KDC.SkewErrors)
	}
}

// TestOverloadIsNotSkew is the converse: a realm drowning in queue wait
// rejects requests too, but those must land in OverloadRejections with
// the skew counters at zero — the operator's cure (add capacity) is
// different from the skew cure (fix the clocks).
func TestOverloadIsNotSkew(t *testing.T) {
	const users = 80
	sc := &Scenario{
		Name:  "overload",
		Seed:  11,
		Users: users,
		Cohorts: []CohortSpec{{
			Name: "burst", Users: users,
			StormOver:       Duration(time.Second), // everyone at once
			TicketsPerLogin: 0,                     // logins alone saturate it
		}},
		Topology: Topology{Shards: 1, Instances: 1, Workers: 1},
		Service:  ServiceModel{AS: Duration(40 * time.Millisecond), TGS: Duration(40 * time.Millisecond)},
		Client: ClientModel{
			Timeout:     Duration(200 * time.Millisecond),
			MaxAttempts: 1,
		},
		Duration: Duration(time.Hour),
	}
	s, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Execute()
	m := res.Metrics

	if got := m.OverloadRejections.Load(); got == 0 {
		t.Fatalf("overload rejections = 0, want >0 (p99 %v, max %v over %d samples)",
			res.P99, res.MaxLatency, res.Samples)
	}
	if got := m.SkewRejections.Load(); got != 0 {
		t.Fatalf("skew rejections = %d, want 0 under pure overload", got)
	}
	if got := res.KDC.SkewErrors; got != 0 {
		t.Fatalf("kdc_skew_errors = %d, want 0 under pure overload", got)
	}
	if got := m.Logins.Load() + m.LoginFailures.Load(); got != users {
		t.Fatalf("logins+failures = %d, want %d", got, users)
	}
	if res.P99 <= sc.SLO.D() {
		t.Fatalf("p99 %v within SLO %v; scenario failed to saturate", res.P99, sc.SLO.D())
	}
}

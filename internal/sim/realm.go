package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/obs"
	"kerberos/internal/workload"
)

// instance is one simulated KDC server: a real kdc.Server sharing the
// realm database, fronted by a virtual queue of workers. handle is the
// current request path — the bare server, or a FaultInjector-wrapped
// version during a fault phase.
type instance struct {
	idx     int
	srv     *kdc.Server
	handle  func(msg []byte, from core.Addr) []byte
	workers []time.Time // per-worker busy-until, in virtual time
}

// Sim is one prepared simulation run: population installed, instances
// built, every cohort arrival / fault phase / churn round scheduled on
// the engine. Execute drives it to completion.
type Sim struct {
	sc   *Scenario
	spec workload.Spec
	eng  *Engine
	day  time.Time
	db   *kdb.Database
	reg  *obs.Registry

	metrics   Metrics
	instances []*instance
	sessions  []*session
	rng       *rand.Rand
	seq       uint32

	traced  bool
	modeled bool
	trace   strings.Builder

	samples        []time.Duration
	renewalOffsets []time.Duration
	replayLenMax   int
}

// Option customizes a Sim.
type Option func(*Sim)

// Untraced disables the event trace (saturation probes run millions of
// events; the trace is for scenario runs and determinism checks).
func Untraced() Option { return func(s *Sim) { s.traced = false } }

// Modeled skips the real cryptographic exchanges and drives the queue
// model alone — every delivered request succeeds after its modeled
// service time. Saturation probes use it: correctness is validated by
// the scenario tests, capacity is a function of the timing model.
func Modeled() Option { return func(s *Sim) { s.modeled = true } }

// WithObsRegistry additionally publishes the sim_* metrics on reg (a
// fresh internal registry is always built regardless).
func WithObsRegistry(reg *obs.Registry) Option {
	return func(s *Sim) { s.metrics.register(reg) }
}

// New builds a run for the scenario: realm database with the
// scenario's shard count, population install, one kdc.Server per
// instance on the shared engine clock, and every scenario event
// pre-scheduled.
func New(sc *Scenario, opts ...Option) (*Sim, error) {
	if _, err := sc.Normalize(); err != nil {
		return nil, err
	}
	day := sc.day()
	s := &Sim{
		sc:     sc,
		spec:   workload.Spec{Users: sc.Users, Workstations: sc.Workstations, Services: sc.Services, Seed: sc.Seed},
		eng:    NewEngine(day),
		day:    day,
		reg:    obs.NewRegistry(),
		rng:    rand.New(rand.NewSource(sc.Seed)),
		traced: true,
	}
	s.metrics.register(s.reg)
	for _, o := range opts {
		o(s)
	}

	// The realm database: per-shard MemStores, deterministic master and
	// TGS keys (key material never shows in the trace, but deterministic
	// inputs keep every layer reproducible on principle).
	stores := make([]kdb.Store, sc.Topology.Shards)
	for i := range stores {
		stores[i] = kdb.NewMemStore()
	}
	master := client.PasswordKey(core.Principal{Name: "K", Instance: "M", Realm: sc.Realm}, "sim-master")
	s.db = kdb.NewSharded(master, stores)
	tgsKey := des.StringToKey("sim-tgs", sc.Realm)
	defer clear(tgsKey[:])
	if err := s.db.Add(core.TGSName, sc.Realm, tgsKey, 0, "kdb_init", day); err != nil {
		return nil, fmt.Errorf("sim: installing TGS key: %w", err)
	}
	if !s.modeled {
		if err := workload.Install(s.db, s.spec, sc.Realm, day); err != nil {
			return nil, fmt.Errorf("sim: installing population: %w", err)
		}
	}

	for i := 0; i < sc.Topology.Instances; i++ {
		srv := kdc.New(sc.Realm, s.db, kdc.WithClock(s.eng.Clock().Now))
		inst := &instance{idx: i, srv: srv, handle: srv.Handle,
			workers: make([]time.Time, sc.Topology.Workers)}
		s.instances = append(s.instances, inst)
	}

	s.scheduleCohorts()
	s.scheduleFaults()
	s.scheduleChurn()
	s.scheduleSampling()
	return s, nil
}

// Engine exposes the event engine (tests schedule probes on it).
func (s *Sim) Engine() *Engine { return s.eng }

// Metrics exposes the run's counters while it executes.
func (s *Sim) Metrics() *Metrics { return &s.metrics }

// Registry exposes the run's obs registry (sim_* metrics).
func (s *Sim) Registry() *obs.Registry { return s.reg }

// tracef appends one deterministic event-trace line, stamped with the
// virtual offset from scenario start.
func (s *Sim) tracef(format string, args ...any) {
	if !s.traced {
		return
	}
	fmt.Fprintf(&s.trace, "+%v "+format+"\n",
		append([]any{s.eng.Now().Sub(s.day)}, args...)...)
}

// nextSeq hands out authenticator sequence numbers.
func (s *Sim) nextSeq() uint32 {
	s.seq++
	return s.seq
}

// svcTime draws the virtual service time for one exchange.
func (s *Sim) svcTime(kind exKind) time.Duration {
	base := s.sc.Service.AS.D()
	if kind == exTGS {
		base = s.sc.Service.TGS.D()
	}
	if j := s.sc.Service.Jitter.D(); j > 0 {
		base += time.Duration(s.rng.Int63n(int64(2*j))) - j
		if base < time.Microsecond {
			base = time.Microsecond
		}
	}
	return base
}

// scheduleCohorts turns every cohort member into a login event at its
// storm arrival instant.
func (s *Sim) scheduleCohorts() {
	n := len(s.instances)
	for ci, cs := range s.sc.Cohorts {
		co := cs.cohort()
		arrivals := co.Storm.Arrivals(workload.ArrivalSeed(s.sc.Seed, ci), co.Users)
		for j := 0; j < co.Users; j++ {
			sess := &session{
				sim:  s,
				co:   co,
				user: co.User(j),
				addr: s.spec.WorkstationAddr(co.User(j) % max(s.spec.Workstations, 1)),
				pref: (ci*31 + j) % n,
			}
			s.sessions = append(s.sessions, sess)
			s.eng.At(s.day.Add(arrivals[j]), sess.login)
		}
	}
}

// scheduleFaults arms each fault phase: at its start the target
// instance's handler is wrapped in a seeded FaultInjector; at its end
// the bare handler is restored and the injector's counters fold into
// the run metrics.
func (s *Sim) scheduleFaults() {
	for pi, f := range s.sc.Faults {
		pi, f := pi, f
		s.eng.At(s.day.Add(f.At.D()), func() {
			inst := s.instances[f.Instance]
			inj := kdc.NewFaultInjector(f.spec(s.sc.Seed, pi))
			inst.handle = inj.WrapHandler(inst.srv.Handle)
			s.tracef("fault instance=%d drop=%.2f dup=%.2f for=%v", f.Instance, f.Drop, f.Dup, f.Dur.D())
			s.eng.After(f.Dur.D(), func() {
				inst.handle = inst.srv.Handle
				s.metrics.Duplicates.Add(uint64(inj.Duplicated.Load()))
				s.tracef("fault-clear instance=%d sent=%d dropped=%d", f.Instance, inj.Sent.Load(), inj.Dropped.Load())
			})
		})
	}
}

// scheduleChurn arms the kadmin write phases, reusing workload.Churn /
// workload.Revert so the simulated day feeds the same journaled write
// traffic a live realm would.
func (s *Sim) scheduleChurn() {
	if s.modeled {
		return
	}
	for ci, ch := range s.sc.Churn {
		round := int64(ci + 1)
		ch := ch
		s.eng.At(s.day.Add(ch.At.D()), func() {
			n, err := workload.Churn(s.db, s.spec, s.sc.Realm, ch.Fraction, round, s.eng.Now())
			if err != nil {
				s.tracef("churn round=%d error=%v", round, err)
				return
			}
			s.metrics.ChurnChanges.Add(uint64(n))
			s.tracef("churn round=%d changes=%d", round, n)
			if ch.RevertAfter > 0 {
				s.eng.After(ch.RevertAfter.D(), func() {
					n, err := workload.Revert(s.db, s.spec, s.sc.Realm, ch.Fraction, round, s.eng.Now())
					if err != nil {
						s.tracef("revert round=%d error=%v", round, err)
						return
					}
					s.metrics.ChurnChanges.Add(uint64(n))
					s.tracef("revert round=%d changes=%d", round, n)
				})
			}
		})
	}
}

// scheduleSampling walks the replay caches every simulated half hour;
// the maximum observed size is the renewal-wave test's memory bound.
func (s *Sim) scheduleSampling() {
	if s.modeled {
		return
	}
	var tick func()
	tick = func() {
		s.sampleReplayLen()
		if s.eng.Now().Sub(s.day) < s.sc.Duration.D() {
			s.eng.After(30*time.Minute, tick)
		}
	}
	s.eng.After(30*time.Minute, tick)
}

func (s *Sim) sampleReplayLen() {
	total := 0
	for _, inst := range s.instances {
		total += inst.srv.ReplayLen()
	}
	if total > s.replayLenMax {
		s.replayLenMax = total
	}
}

// exKind distinguishes the two exchange shapes for the service-time
// model.
type exKind int

const (
	exAS exKind = iota
	exTGS
)

// xstatus is the client-observed outcome of one exchange.
type xstatus int

const (
	xOK       xstatus = iota
	xErrReply         // server answered in time with a protocol error
	xOverload         // server answered, but past the client's deadline
	xTimeout          // no answer within the attempt budget
)

// exchange carries one request to the realm through the virtual
// network and queue model: pick the preferred instance, apply its
// fault injector, queue on its least-busy worker, charge the modeled
// service time, retransmit with doubling RTO toward the next instance
// on silence. The real handler runs at event time; the latency the
// client observes is entirely virtual.
func (s *Sim) exchange(sess *session, kind exKind, msg []byte) (reply []byte, done time.Time, status xstatus) {
	now := s.eng.Now()
	cm := s.sc.Client
	deadline := now.Add(cm.Timeout.D())
	sendAt := now
	n := len(s.instances)
	for attempt := 0; attempt < cm.MaxAttempts; attempt++ {
		inst := s.instances[(sess.pref+attempt)%n]
		if attempt > 0 {
			s.metrics.Retransmits.Inc()
		}
		delivered := true
		if s.modeled {
			reply = nil
		} else {
			reply = inst.handle(msg, sess.addr)
			delivered = reply != nil
		}
		if !delivered {
			// The datagram vanished: wait out the RTO (doubling per
			// attempt) and try the next instance in rotation.
			sendAt = sendAt.Add(rto(cm.RTO.D(), attempt))
			if sendAt.After(deadline) {
				break
			}
			continue
		}
		arrive := sendAt.Add(cm.RTT.D() / 2)
		w := 0
		for i := 1; i < len(inst.workers); i++ {
			if inst.workers[i].Before(inst.workers[w]) {
				w = i
			}
		}
		start := arrive
		if inst.workers[w].After(start) {
			start = inst.workers[w]
		}
		finish := start.Add(s.svcTime(kind))
		inst.workers[w] = finish
		replyAt := finish.Add(cm.RTT.D() / 2)
		wait := start.Sub(arrive)
		lat := replyAt.Sub(now)
		s.metrics.QueueWait.Observe(wait)
		s.metrics.Latency.Observe(lat)
		s.samples = append(s.samples, lat)
		if inst.idx != sess.pref {
			s.metrics.Failovers.Inc()
			sess.pref = inst.idx // sticky: stay on the survivor
		}
		if replyAt.After(deadline) {
			s.metrics.OverloadRejections.Inc()
			return nil, replyAt, xOverload
		}
		if !s.modeled {
			if core.IfErrorMessage(reply) != nil {
				return reply, replyAt, xErrReply
			}
		}
		return reply, replyAt, xOK
	}
	s.metrics.Timeouts.Inc()
	return nil, deadline, xTimeout
}

// rto returns the retransmission backoff for the given attempt:
// base << attempt, capped at 8× base.
func rto(base time.Duration, attempt int) time.Duration {
	if attempt > 3 {
		attempt = 3
	}
	return base << uint(attempt)
}

// Result is the outcome of one executed run.
type Result struct {
	Scenario *Scenario
	Steps    int

	Metrics     *Metrics
	MetricsText []byte
	Trace       []byte

	// Exact quantiles over every exchange's virtual latency.
	P50, P99, MaxLatency time.Duration
	Samples              int

	// ReplayLenMax is the largest combined replay-cache population
	// observed at any half-hour sample.
	ReplayLenMax int

	// RenewalOffsets are the virtual offsets (from scenario start) of
	// every successful renewal exchange, in completion order.
	RenewalOffsets []time.Duration

	// KDC aggregates the real servers' counters across instances.
	KDC struct {
		AS, TGS, Errors, SkewErrors, Retransmits uint64
	}
}

// Execute runs the scenario to its end and assembles the result.
func (s *Sim) Execute() *Result {
	s.eng.Run(s.day.Add(s.sc.Duration.D()))
	if !s.modeled {
		s.sampleReplayLen()
	}
	res := &Result{
		Scenario:       s.sc,
		Steps:          s.eng.Steps(),
		Metrics:        &s.metrics,
		MetricsText:    s.metrics.Text(),
		Trace:          []byte(s.trace.String()),
		P50:            quantile(s.samples, 0.50),
		P99:            quantile(s.samples, 0.99),
		MaxLatency:     quantile(s.samples, 1.0),
		Samples:        len(s.samples),
		ReplayLenMax:   s.replayLenMax,
		RenewalOffsets: s.renewalOffsets,
	}
	for _, inst := range s.instances {
		m := inst.srv.Metrics()
		res.KDC.AS += m.ASRequests.Load()
		res.KDC.TGS += m.TGSRequests.Load()
		res.KDC.Errors += m.Errors.Load()
		res.KDC.SkewErrors += m.SkewErrors.Load()
		res.KDC.Retransmits += m.TGSRetransmits.Load()
	}
	return res
}

// Summary renders the run in a few operator-facing lines.
func (r *Result) Summary() string {
	m := r.Metrics
	return fmt.Sprintf(
		"%s: %d events | logins %d (fail %d) tgs %d (fail %d) renewals %d (fail %d)\n"+
			"rejections: skew %d overload %d timeout %d | retransmits %d failovers %d dups %d\n"+
			"latency p50 %v p99 %v max %v over %d exchanges | replay cache max %d | churn %d",
		r.Scenario.Name, r.Steps,
		m.Logins.Load(), m.LoginFailures.Load(), m.TGS.Load(), m.TGSFailures.Load(),
		m.Renewals.Load(), m.RenewalFails.Load(),
		m.SkewRejections.Load(), m.OverloadRejections.Load(), m.Timeouts.Load(),
		m.Retransmits.Load(), m.Failovers.Load(), m.Duplicates.Load(),
		r.P50, r.P99, r.MaxLatency, r.Samples, r.ReplayLenMax, m.ChurnChanges.Load())
}

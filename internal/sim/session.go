package sim

import (
	"errors"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/workload"
)

// session animates one cohort member: login at the storm arrival, the
// cohort's quota of service tickets, and a renewal ~8 hours later. All
// cryptography is real — passwords derive keys, replies must open,
// authenticators must verify — only time is simulated. A cohort with
// nonzero Skew stamps every client-side timestamp with the drift, which
// is precisely what a workstation with a wrong clock does: its login
// (no timestamp check in the AS exchange) succeeds, and every
// authenticator it presents afterwards is refused with ErrSkew.
type session struct {
	sim  *Sim
	co   workload.Cohort
	user int
	addr core.Addr
	pref int

	loginAt time.Time
	ticket  []byte
	skey    des.Key
}

// skewedNow is the workstation's view of the current instant.
func (ss *session) skewedNow() time.Time {
	return ss.sim.eng.Now().Add(ss.co.Skew)
}

// login performs the AS exchange (§4.2) at the session's arrival
// instant and, on success, schedules the ticket chain and the renewal.
func (ss *session) login() {
	s := ss.sim
	now := s.eng.Now()
	ss.loginAt = now
	userP := s.spec.UserPrincipal(ss.user, s.sc.Realm)

	var msg []byte
	if !s.modeled {
		req := &core.AuthRequest{
			Client:  userP,
			Service: core.TGSPrincipal(s.sc.Realm, s.sc.Realm),
			Life:    core.DefaultTGTLife,
			Time:    core.TimeFromGo(ss.skewedNow()),
		}
		msg = req.Encode()
	}
	reply, done, st := s.exchange(ss, exAS, msg)
	switch st {
	case xOK:
		if !s.modeled {
			key := client.PasswordKey(userP, s.spec.UserPassword(ss.user))
			enc, err := openReply(reply, key)
			clear(key[:])
			if err != nil {
				s.metrics.LoginFailures.Inc()
				s.tracef("login badreply cohort=%s u=%05d err=%v", ss.co.Name, ss.user, err)
				return
			}
			ss.ticket = enc.Ticket
			ss.skey = enc.SessionKey
		}
		s.metrics.Logins.Inc()
		s.tracef("login ok cohort=%s u=%05d inst=%d", ss.co.Name, ss.user, ss.pref)
		if ss.co.TicketsPerLogin > 0 {
			s.eng.At(done.Add(s.sc.Client.Think.D()), func() {
				ss.tgs(0, false, ss.co.Retries)
			})
		}
		if ss.co.RenewAfter > 0 {
			renewAt := ss.loginAt.Add(ss.co.RenewAfter)
			if j := ss.co.RenewJitter; j > 0 {
				renewAt = renewAt.Add(time.Duration(s.rng.Int63n(int64(j))))
			}
			s.eng.At(renewAt, func() { ss.tgs(0, true, ss.co.Retries) })
		}
	case xErrReply:
		s.metrics.LoginFailures.Inc()
		s.tracef("login err cohort=%s u=%05d code=%v", ss.co.Name, ss.user, errCode(reply))
	case xOverload:
		s.metrics.LoginFailures.Inc()
		s.tracef("login overload cohort=%s u=%05d", ss.co.Name, ss.user)
	case xTimeout:
		s.metrics.LoginFailures.Inc()
		s.tracef("login timeout cohort=%s u=%05d", ss.co.Name, ss.user)
	}
}

// tgs performs one ticket-granting exchange (§4.4): the t-th service
// ticket of a login chain, or — with renewal set — the re-key wave's
// exchange on the aging TGT. retries is how many skew rejections this
// step may still retry through.
func (ss *session) tgs(t int, renewal bool, retries int) {
	s := ss.sim
	now := s.eng.Now()
	userP := s.spec.UserPrincipal(ss.user, s.sc.Realm)

	var msg []byte
	if !s.modeled {
		skewed := ss.skewedNow()
		auth := core.NewAuthenticator(userP, ss.addr, skewed, s.nextSeq())
		svc := s.spec.ServicePrincipal((ss.user+t)%max(s.spec.Services, 1), s.sc.Realm)
		req := &core.TGSRequest{
			APReq: core.APRequest{
				TicketRealm:   s.sc.Realm,
				Ticket:        ss.ticket,
				Authenticator: auth.Seal(ss.skey),
			},
			Service: svc,
			Life:    core.MaxLife,
			Time:    core.TimeFromGo(skewed),
		}
		msg = req.Encode()
	}
	reply, done, st := s.exchange(ss, exTGS, msg)
	kind := "tgs"
	if renewal {
		kind = "renew"
	}
	switch st {
	case xOK:
		if !s.modeled {
			if _, err := openReply(reply, ss.skey); err != nil {
				ss.tgsFail(renewal)
				s.tracef("%s badreply cohort=%s u=%05d err=%v", kind, ss.co.Name, ss.user, err)
				return
			}
		}
		s.metrics.TGS.Inc()
		if renewal {
			s.metrics.Renewals.Inc()
			ss.renewalOffset(now)
		}
		s.tracef("%s ok cohort=%s u=%05d n=%d", kind, ss.co.Name, ss.user, t)
		if !renewal && t+1 < ss.co.TicketsPerLogin {
			s.eng.At(done.Add(s.sc.Client.Think.D()), func() {
				ss.tgs(t+1, false, ss.co.Retries)
			})
		}
	case xErrReply:
		code := errCode(reply)
		if code == core.ErrSkew {
			s.metrics.SkewRejections.Inc()
			s.tracef("%s skew-reject cohort=%s u=%05d retries=%d", kind, ss.co.Name, ss.user, retries)
			if retries > 0 {
				// The drifted workstation does what drifted workstations
				// do: waits a moment and presents another bad timestamp.
				s.eng.After(s.sc.Client.RetryDelay.D(), func() {
					ss.tgs(t, renewal, retries-1)
				})
				return
			}
		} else {
			s.tracef("%s err cohort=%s u=%05d code=%v", kind, ss.co.Name, ss.user, code)
		}
		ss.tgsFail(renewal)
	case xOverload:
		ss.tgsFail(renewal)
		s.tracef("%s overload cohort=%s u=%05d", kind, ss.co.Name, ss.user)
	case xTimeout:
		ss.tgsFail(renewal)
		s.tracef("%s timeout cohort=%s u=%05d", kind, ss.co.Name, ss.user)
	}
}

func (ss *session) tgsFail(renewal bool) {
	ss.sim.metrics.TGSFailures.Inc()
	if renewal {
		ss.sim.metrics.RenewalFails.Inc()
	}
}

// renewalOffset records a successful renewal's virtual offset.
func (ss *session) renewalOffset(now time.Time) {
	s := ss.sim
	s.renewalOffsets = append(s.renewalOffsets, now.Sub(s.day))
}

// openReply decodes and opens an AuthReply under key.
func openReply(raw []byte, key des.Key) (*core.EncTicketReply, error) {
	rep, err := core.DecodeAuthReply(raw)
	if err != nil {
		return nil, err
	}
	return rep.Open(key)
}

// errCode extracts the protocol error code from an error reply.
func errCode(raw []byte) core.ErrorCode {
	err := core.IfErrorMessage(raw)
	var pe *core.ProtocolError
	if errors.As(err, &pe) {
		return pe.Code
	}
	return core.ErrGeneric
}

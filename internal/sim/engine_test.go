package sim

import (
	"testing"
	"time"
)

var t0 = time.Date(1988, 1, 25, 8, 0, 0, 0, time.UTC)

// TestEngineOrdering schedules events out of order and at shared
// instants and checks they fire in (time, schedule-order) sequence with
// the clock reading each event's own instant.
func TestEngineOrdering(t *testing.T) {
	eng := NewEngine(t0)
	var got []string
	rec := func(name string, at time.Duration) func() {
		return func() {
			if now := eng.Now(); !now.Equal(t0.Add(at)) {
				t.Errorf("event %s ran at clock %v, want %v", name, now, t0.Add(at))
			}
			got = append(got, name)
		}
	}
	eng.At(t0.Add(3*time.Second), rec("c1", 3*time.Second))
	eng.At(t0.Add(1*time.Second), rec("a", 1*time.Second))
	eng.At(t0.Add(3*time.Second), rec("c2", 3*time.Second)) // same instant: FIFO
	eng.After(2*time.Second, rec("b", 2*time.Second))

	steps := eng.Run(t0.Add(time.Minute))
	if steps != 4 {
		t.Fatalf("Run returned %d steps, want 4", steps)
	}
	want := []string{"a", "b", "c1", "c2"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if !eng.Now().Equal(t0.Add(time.Minute)) {
		t.Fatalf("after Run clock = %v, want parked at until", eng.Now())
	}
}

// TestEngineCascade checks that events scheduled from inside callbacks
// run within the same Run, and that events past the horizon stay
// pending.
func TestEngineCascade(t *testing.T) {
	eng := NewEngine(t0)
	fired := 0
	var chain func()
	chain = func() {
		fired++
		if fired < 5 {
			eng.After(time.Second, chain)
		}
	}
	eng.After(time.Second, chain)
	eng.At(t0.Add(time.Hour), func() { t.Error("past-horizon event fired") })

	eng.Run(t0.Add(10 * time.Second))
	if fired != 5 {
		t.Fatalf("cascade fired %d times, want 5", fired)
	}
	if eng.Clock().PendingTimers() != 1 {
		t.Fatalf("pending = %d, want the one past-horizon event", eng.Clock().PendingTimers())
	}
	if eng.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", eng.Steps())
	}
}

func TestEngineElapsed(t *testing.T) {
	eng := NewEngine(t0)
	eng.After(90*time.Minute, func() {})
	eng.Run(t0.Add(2 * time.Hour))
	if eng.Elapsed() != 2*time.Hour {
		t.Fatalf("Elapsed = %v, want 2h", eng.Elapsed())
	}
}

// TestEngineRunAllocs is the AllocsPerRun guard behind Run's
// //kerb:hotpath annotation (see hotpath_guard_test.go): stepping the
// event loop — draining due timers and parking the clock — must not
// itself allocate. Event closures own their allocations, so the guard
// measures steps over an already-drained queue.
func TestEngineRunAllocs(t *testing.T) {
	eng := NewEngine(t0)
	eng.After(time.Millisecond, func() {})
	until := t0.Add(time.Second)
	eng.Run(until)
	allocs := testing.AllocsPerRun(1000, func() {
		until = until.Add(time.Millisecond)
		eng.Run(until)
	})
	if allocs > 0 {
		t.Fatalf("Engine.Run allocates %.1f objects per step; the simulator inner loop must stay allocation-free", allocs)
	}
}

package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kerberos/internal/obs"
)

// Metrics aggregates one simulation run. Everything is driven from the
// single event-loop goroutine, but the fields are obs types so they
// register on an obs.Registry like every other subsystem and render on
// the same /metrics surface.
//
// The rejection taxonomy is the point of this struct: a realm under a
// skew epidemic and a realm under overload both "fail logins", but the
// operator's cure differs (fix the clocks vs add capacity), so the
// simulator keeps the causes apart —
//
//   - SkewRejections: the KDC answered with ErrSkew (drifted client);
//   - OverloadRejections: the KDC answered, but past the client's
//     deadline — queue wait ate the budget;
//   - Timeouts: no answer at all within the attempt budget (outage or
//     loss the retransmissions could not route around).
type Metrics struct {
	Logins        obs.Counter
	LoginFailures obs.Counter
	TGS           obs.Counter
	TGSFailures   obs.Counter
	Renewals      obs.Counter
	RenewalFails  obs.Counter

	SkewRejections     obs.Counter
	OverloadRejections obs.Counter
	Timeouts           obs.Counter

	Retransmits obs.Counter
	Failovers   obs.Counter
	Duplicates  obs.Counter

	ChurnChanges obs.Counter

	// Latency is the client-observed virtual round-trip distribution;
	// QueueWait isolates the time spent waiting for a free worker.
	Latency   obs.Histogram
	QueueWait obs.Histogram
}

// register publishes every field on reg under the sim_ prefix.
func (m *Metrics) register(reg *obs.Registry) {
	reg.RegisterCounter("sim_logins", &m.Logins)
	reg.RegisterCounter("sim_login_failures", &m.LoginFailures)
	reg.RegisterCounter("sim_tgs", &m.TGS)
	reg.RegisterCounter("sim_tgs_failures", &m.TGSFailures)
	reg.RegisterCounter("sim_renewals", &m.Renewals)
	reg.RegisterCounter("sim_renewal_failures", &m.RenewalFails)
	reg.RegisterCounter("sim_skew_rejections", &m.SkewRejections)
	reg.RegisterCounter("sim_overload_rejections", &m.OverloadRejections)
	reg.RegisterCounter("sim_timeouts", &m.Timeouts)
	reg.RegisterCounter("sim_retransmits", &m.Retransmits)
	reg.RegisterCounter("sim_failovers", &m.Failovers)
	reg.RegisterCounter("sim_duplicates", &m.Duplicates)
	reg.RegisterCounter("sim_churn_changes", &m.ChurnChanges)
	reg.RegisterHistogram("sim_latency", &m.Latency)
	reg.RegisterHistogram("sim_queue_wait", &m.QueueWait)
}

// Text renders a deterministic snapshot: fixed field order, counters
// and bucket-derived quantiles only — no wall-clock values, no
// process-global state — so two same-seed runs produce byte-identical
// output. This is what the determinism property test compares.
func (m *Metrics) Text() []byte {
	var b strings.Builder
	w := func(name string, v uint64) { fmt.Fprintf(&b, "%s %d\n", name, v) }
	w("sim_logins", m.Logins.Load())
	w("sim_login_failures", m.LoginFailures.Load())
	w("sim_tgs", m.TGS.Load())
	w("sim_tgs_failures", m.TGSFailures.Load())
	w("sim_renewals", m.Renewals.Load())
	w("sim_renewal_failures", m.RenewalFails.Load())
	w("sim_skew_rejections", m.SkewRejections.Load())
	w("sim_overload_rejections", m.OverloadRejections.Load())
	w("sim_timeouts", m.Timeouts.Load())
	w("sim_retransmits", m.Retransmits.Load())
	w("sim_failovers", m.Failovers.Load())
	w("sim_duplicates", m.Duplicates.Load())
	w("sim_churn_changes", m.ChurnChanges.Load())
	lat := m.Latency.Snapshot()
	fmt.Fprintf(&b, "sim_latency_count %d\n", lat.Count)
	fmt.Fprintf(&b, "sim_latency_p50 %v\n", lat.Quantile(0.50))
	fmt.Fprintf(&b, "sim_latency_p99 %v\n", lat.Quantile(0.99))
	qw := m.QueueWait.Snapshot()
	fmt.Fprintf(&b, "sim_queue_wait_p99 %v\n", qw.Quantile(0.99))
	return []byte(b.String())
}

// quantile computes an exact quantile from raw latency samples (the
// histogram's bucket bounds are factor-of-two; SLO decisions need
// better resolution). samples is not modified.
func quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

package sim

import (
	"encoding/json"
	"testing"
	"time"
)

func TestDurationJSON(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{`"8h"`, 8 * time.Hour},
		{`"500ms"`, 500 * time.Millisecond},
		{`"7h30m"`, 7*time.Hour + 30*time.Minute},
		{`1500000000`, 1500 * time.Millisecond}, // bare ns
	}
	for _, c := range cases {
		var d Duration
		if err := json.Unmarshal([]byte(c.in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if d.D() != c.want {
			t.Fatalf("unmarshal %s = %v, want %v", c.in, d.D(), c.want)
		}
	}
	// Round trip through the string form.
	out, err := json.Marshal(Duration(90 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	var back Duration
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.D() != 90*time.Minute {
		t.Fatalf("round trip = %v, want 90m", back.D())
	}
	if err := json.Unmarshal([]byte(`"eight hours"`), &back); err == nil {
		t.Fatal("nonsense duration unmarshaled without error")
	}
}

func TestNormalizeValidation(t *testing.T) {
	if _, err := (&Scenario{Name: "empty"}).Normalize(); err == nil {
		t.Fatal("scenario with no cohorts normalized")
	}
	bad := &Scenario{Name: "span", Users: 10,
		Cohorts: []CohortSpec{{Name: "c", FirstUser: 5, Users: 10, StormOver: Duration(time.Minute)}}}
	if _, err := bad.Normalize(); err == nil {
		t.Fatal("cohort spanning past the population normalized")
	}
	badFault := &Scenario{Name: "fault", Users: 10,
		Cohorts: []CohortSpec{{Name: "c", Users: 10, StormOver: Duration(time.Minute)}},
		Faults:  []FaultPhase{{Instance: 5, Drop: 1}}}
	if _, err := badFault.Normalize(); err == nil {
		t.Fatal("fault targeting a nonexistent instance normalized")
	}
}

// TestScenarioRoundTrip checks that a normalized scenario survives
// marshal → Parse unchanged — the property the scenario files rely on.
func TestScenarioRoundTrip(t *testing.T) {
	sc := AthenaDay(1)
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(sc)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Fatalf("round trip changed the scenario:\n%s\nvs\n%s", a, b)
	}
}

// TestCannedScenarioFileInSync pins scenarios/athena-day.json to the
// in-code canned scenario: the file is documentation that must not
// drift. Regenerate with: go run ./cmd/kersim -dump > scenarios/athena-day.json
func TestCannedScenarioFileInSync(t *testing.T) {
	file, err := Load("../../scenarios/athena-day.json")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(AthenaDay(1))
	b, _ := json.Marshal(file)
	if string(a) != string(b) {
		t.Fatal("scenarios/athena-day.json drifted from sim.AthenaDay(1); regenerate with: go run ./cmd/kersim -dump > scenarios/athena-day.json")
	}
}

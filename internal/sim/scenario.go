package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/kdc"
	"kerberos/internal/workload"
)

// Duration is a time.Duration that marshals to/from JSON as a Go
// duration string ("8h", "500ms"), so scenario files read like the
// paper's prose rather than nanosecond counts. A bare JSON number is
// accepted as nanoseconds.
type Duration time.Duration

// D returns the native duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("sim: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	ns, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("sim: bad duration %s: %w", b, err)
	}
	*d = Duration(ns)
	return nil
}

// Topology describes the KDC deployment a scenario runs against: how
// many database shards the principal space is split into, how many
// server instances share the (replicated) database, and how many
// request workers each instance runs — the capacity unit of the
// virtual queue model, matching the parallel UDP readers of a real
// kerberosd.
type Topology struct {
	Name      string `json:"name,omitempty"`
	Shards    int    `json:"shards"`
	Instances int    `json:"instances"`
	Workers   int    `json:"workers"`
}

// ServiceModel is the virtual service-time model: how long one AS or
// TGS exchange occupies a worker. In deterministic scenarios these are
// fixed constants (plus seeded jitter); the saturation analyzer
// calibrates them from real exchanges against the topology under test.
type ServiceModel struct {
	AS     Duration `json:"as"`
	TGS    Duration `json:"tgs"`
	Jitter Duration `json:"jitter,omitempty"`
}

// ClientModel is the workstation-side timing model, mirroring the PR-2
// resilience parameters: one round trip of network latency per
// exchange, a retransmission timeout that doubles per attempt and
// rotates to the next instance (failover), an overall per-exchange
// deadline, and the pause before a rejected client tries again.
type ClientModel struct {
	RTT         Duration `json:"rtt"`
	RTO         Duration `json:"rto"`
	Timeout     Duration `json:"timeout"`
	MaxAttempts int      `json:"max_attempts"`
	RetryDelay  Duration `json:"retry_delay"`
	Think       Duration `json:"think"`
}

// CohortSpec is the JSON form of a workload.Cohort plus its population
// slice: a named group of users, the window their logins storm in, and
// their renewal/skew behavior.
type CohortSpec struct {
	Name            string   `json:"name"`
	FirstUser       int      `json:"first_user"`
	Users           int      `json:"users"`
	StormAt         Duration `json:"storm_at"`
	StormOver       Duration `json:"storm_over"`
	TicketsPerLogin int      `json:"tickets_per_login"`
	RenewAfter      Duration `json:"renew_after,omitempty"`
	RenewJitter     Duration `json:"renew_jitter,omitempty"`
	Skew            Duration `json:"skew,omitempty"`
	Retries         int      `json:"retries,omitempty"`
}

// cohort lowers the spec to the workload package's temporal vocabulary.
func (c CohortSpec) cohort() workload.Cohort {
	return workload.Cohort{
		Name:            c.Name,
		FirstUser:       c.FirstUser,
		Users:           c.Users,
		Storm:           workload.Window{Start: c.StormAt.D(), Dur: c.StormOver.D()},
		TicketsPerLogin: c.TicketsPerLogin,
		RenewAfter:      c.RenewAfter.D(),
		RenewJitter:     c.RenewJitter.D(),
		Skew:            c.Skew.D(),
		Retries:         c.Retries,
	}
}

// FaultPhase puts a PR-2 FaultInjector in front of one instance for a
// span of virtual time: Drop 1.0 is an outage (the mid-burst slave
// failure), fractional Drop/Dup model a degraded segment.
type FaultPhase struct {
	Instance  int      `json:"instance"`
	At        Duration `json:"at"`
	Dur       Duration `json:"dur"`
	Drop      float64  `json:"drop"`
	Dup       float64  `json:"dup,omitempty"`
	DropFirst int      `json:"drop_first,omitempty"`
}

// spec builds the injector spec; the seed derives from the scenario
// seed and phase index so fault decisions replay exactly.
func (f FaultPhase) spec(scenarioSeed int64, phase int) kdc.FaultSpec {
	return kdc.FaultSpec{
		DropFirst: f.DropFirst,
		LossRate:  f.Drop,
		DupRate:   f.Dup,
		Seed:      scenarioSeed*31 + int64(phase),
	}
}

// ChurnPhase runs one workload.Churn round against the master database
// mid-scenario (the kadmin write traffic of a live realm), optionally
// reverted later so long scenarios can repeat.
type ChurnPhase struct {
	At          Duration `json:"at"`
	Fraction    float64  `json:"fraction"`
	RevertAfter Duration `json:"revert_after,omitempty"`
}

// Scenario is one simulated day: a population, a topology, the timing
// models, and the cohorts/faults/churn that give the day its shape.
// The zero value of most fields is filled by Normalize.
type Scenario struct {
	Name         string       `json:"name"`
	Seed         int64        `json:"seed"`
	Realm        string       `json:"realm"`
	Users        int          `json:"users"`
	Workstations int          `json:"workstations"`
	Services     int          `json:"services"`
	Day          string       `json:"day,omitempty"` // RFC3339 virtual start instant
	Duration     Duration     `json:"duration"`
	SLO          Duration     `json:"slo,omitempty"` // p99 latency objective
	Topology     Topology     `json:"topology"`
	Service      ServiceModel `json:"service"`
	Client       ClientModel  `json:"client"`
	Cohorts      []CohortSpec `json:"cohorts"`
	Faults       []FaultPhase `json:"faults,omitempty"`
	Churn        []ChurnPhase `json:"churn,omitempty"`
}

// simEpoch is the default virtual start: the paper's January 1988, a
// fixed instant so scenarios never touch the wall clock.
const simEpoch = "1988-01-25T08:00:00Z"

// Normalize fills defaults and validates; it returns the scenario for
// chaining.
func (s *Scenario) Normalize() (*Scenario, error) {
	if s.Realm == "" {
		s.Realm = "ATHENA.MIT.EDU"
	}
	if s.Day == "" {
		s.Day = simEpoch
	}
	if _, err := time.Parse(time.RFC3339, s.Day); err != nil {
		return nil, fmt.Errorf("sim: scenario %q: bad day: %w", s.Name, err)
	}
	if s.Users <= 0 {
		s.Users = 100
	}
	if s.Workstations <= 0 {
		s.Workstations = max(1, s.Users/8)
	}
	if s.Services <= 0 {
		s.Services = max(1, s.Users/80)
	}
	if s.Duration <= 0 {
		s.Duration = Duration(time.Hour)
	}
	if s.SLO <= 0 {
		s.SLO = Duration(25 * time.Millisecond)
	}
	t := &s.Topology
	if t.Shards <= 0 {
		t.Shards = 1
	}
	if t.Instances <= 0 {
		t.Instances = 1
	}
	if t.Workers <= 0 {
		t.Workers = 4
	}
	if t.Name == "" {
		t.Name = fmt.Sprintf("shard%d-x%d", t.Shards, t.Instances)
	}
	sm := &s.Service
	if sm.AS <= 0 {
		sm.AS = Duration(12 * time.Microsecond)
	}
	if sm.TGS <= 0 {
		sm.TGS = Duration(20 * time.Microsecond)
	}
	cm := &s.Client
	if cm.RTT <= 0 {
		cm.RTT = Duration(500 * time.Microsecond)
	}
	if cm.RTO <= 0 {
		cm.RTO = Duration(500 * time.Millisecond)
	}
	if cm.Timeout <= 0 {
		cm.Timeout = Duration(4 * time.Second)
	}
	if cm.MaxAttempts <= 0 {
		cm.MaxAttempts = 6
	}
	if cm.RetryDelay <= 0 {
		cm.RetryDelay = Duration(2 * time.Second)
	}
	if cm.Think <= 0 {
		cm.Think = Duration(100 * time.Millisecond)
	}
	if len(s.Cohorts) == 0 {
		return nil, fmt.Errorf("sim: scenario %q has no cohorts", s.Name)
	}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Name == "" {
			c.Name = fmt.Sprintf("cohort%d", i)
		}
		if c.Users <= 0 {
			return nil, fmt.Errorf("sim: cohort %q has no users", c.Name)
		}
		if c.FirstUser < 0 || c.FirstUser+c.Users > s.Users {
			return nil, fmt.Errorf("sim: cohort %q spans users [%d,%d) outside population of %d",
				c.Name, c.FirstUser, c.FirstUser+c.Users, s.Users)
		}
		if c.TicketsPerLogin < 0 {
			return nil, fmt.Errorf("sim: cohort %q: negative tickets per login", c.Name)
		}
	}
	for i, f := range s.Faults {
		if f.Instance < 0 || f.Instance >= t.Instances {
			return nil, fmt.Errorf("sim: fault %d targets instance %d of %d", i, f.Instance, t.Instances)
		}
	}
	return s, nil
}

// day returns the parsed virtual start instant (valid after Normalize).
func (s *Scenario) day() time.Time {
	t, _ := time.Parse(time.RFC3339, s.Day)
	return t.UTC()
}

// Parse decodes a scenario from JSON and normalizes it.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("sim: parsing scenario: %w", err)
	}
	return s.Normalize()
}

// Load reads a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return Parse(data)
}

// AthenaDay is the canned §9 day at scale (0 < scale ≤ 1 shrinks the
// population for smoke runs): a 9am login storm of students over half
// an hour and a staff cohort ahead of them, two service tickets per
// login, the whole population re-keying as a wave ~8h later, one of
// three KDC instances dying for 15 minutes in the middle of the
// morning burst, and a drifted-clock cohort (7 minutes fast — past the
// ±5-minute window) storming in at 9:10 and retrying through its
// rejections. Fixed seed; every run of the same scale is
// byte-identical.
func AthenaDay(scale float64) *Scenario {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := func(v int) int { return max(1, int(float64(v)*scale)) }
	students := n(1500)
	staff := n(300)
	drifted := n(120)
	sc := &Scenario{
		Name:         "athena-day",
		Seed:         1988,
		Realm:        "ATHENA.MIT.EDU",
		Users:        students + staff + drifted,
		Workstations: n(650),
		Services:     n(65),
		Duration:     Duration(10 * time.Hour),
		Topology:     Topology{Shards: 16, Instances: 3, Workers: 4},
		Cohorts: []CohortSpec{
			{
				Name: "staff", FirstUser: 0, Users: staff,
				StormAt: Duration(30 * time.Minute), StormOver: Duration(20 * time.Minute),
				TicketsPerLogin: 2,
				RenewAfter:      Duration(7*time.Hour + 30*time.Minute),
				RenewJitter:     Duration(12 * time.Minute),
			},
			{
				Name: "students", FirstUser: staff, Users: students,
				StormAt: Duration(time.Hour), StormOver: Duration(30 * time.Minute),
				TicketsPerLogin: 2,
				RenewAfter:      Duration(7*time.Hour + 30*time.Minute),
				RenewJitter:     Duration(15 * time.Minute),
			},
			{
				Name: "drifted", FirstUser: staff + students, Users: drifted,
				StormAt: Duration(time.Hour + 10*time.Minute), StormOver: Duration(10 * time.Minute),
				TicketsPerLogin: 1,
				Skew:            Duration(7 * time.Minute),
				Retries:         2,
			},
		},
		Faults: []FaultPhase{
			// One of the three instances dies mid-storm and comes back.
			{Instance: 1, At: Duration(time.Hour + 5*time.Minute), Dur: Duration(15 * time.Minute), Drop: 1.0},
		},
		Churn: []ChurnPhase{
			// Midday kadmin traffic: 1% of the realm changes passwords.
			{At: Duration(5 * time.Hour), Fraction: 0.01, RevertAfter: Duration(30 * time.Minute)},
		},
	}
	norm, err := sc.Normalize()
	if err != nil {
		panic("sim: canned athena-day scenario invalid: " + err.Error())
	}
	return norm
}

// skewTolerance re-exports the protocol constant for scenario authors
// reading this file: a cohort whose Skew exceeds it will be rejected.
const skewTolerance = core.ClockSkew

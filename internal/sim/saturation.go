package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/workload"
)

// The saturation analyzer answers the capacity question the temporal
// scenarios raise: how hard can a topology be driven before its p99
// violates the SLO? Method:
//
//  1. Calibrate: measure real AS and TGS service times against a live
//     in-process server built exactly like the topology under test
//     (same shard count — the only wall-clock reads in the package,
//     declared //kerb:clockadapter).
//  2. Probe: run a steady-arrival scenario at a candidate QPS in
//     modeled mode (queue dynamics with the calibrated service times;
//     millions of virtual requests in well under a second of wall
//     time) and take the exact p99 over every exchange.
//  3. Binary-search the highest QPS whose probe stays inside the SLO
//     with no overload rejections or timeouts.

// SaturationOpts parameterizes the search. Zero values get defaults.
type SaturationOpts struct {
	SLO     time.Duration // p99 objective (default 25ms)
	Window  time.Duration // virtual probe length (default 20s)
	StartQ  float64       // initial known-plausible QPS (default 500)
	CapQ    float64       // search ceiling (default 2^21)
	Service ServiceModel  // calibrated costs; zero → Calibrate is run
	Seed    int64
}

func (o *SaturationOpts) normalize() {
	if o.SLO <= 0 {
		o.SLO = 25 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 20 * time.Second
	}
	if o.StartQ <= 0 {
		o.StartQ = 500
	}
	if o.CapQ <= 0 {
		o.CapQ = 1 << 21
	}
	if o.Seed == 0 {
		o.Seed = 424242
	}
}

// SaturationResult reports one topology's capacity frontier.
type SaturationResult struct {
	Topology  Topology      `json:"topology"`
	MaxQPS    float64       `json:"max_qps"`
	P99AtMax  time.Duration `json:"p99_at_max_ns"`
	SLO       time.Duration `json:"slo_ns"`
	ASCost    time.Duration `json:"as_cost_ns"`
	TGSCost   time.Duration `json:"tgs_cost_ns"`
	Probes    int           `json:"probes"`
	Exchanges int           `json:"exchanges_simulated"`
}

// probeScenario builds the steady-load scenario for one candidate QPS:
// a single cohort whose storm spreads qps·window logins evenly across
// the window, one service ticket per login (so offered exchange rate is
// 2·qps), against the topology under test.
func probeScenario(top Topology, svc ServiceModel, qps float64, window time.Duration, seed int64) *Scenario {
	n := int(qps * window.Seconds())
	if n < 1 {
		n = 1
	}
	sc := &Scenario{
		Name:     fmt.Sprintf("probe-%s-%dqps", top.Name, int(qps)),
		Seed:     seed,
		Users:    n,
		Duration: Duration(window + 30*time.Second), // drain tail
		Topology: top,
		Service:  svc,
		Cohorts: []CohortSpec{{
			Name: "steady", Users: n,
			StormOver:       Duration(window),
			TicketsPerLogin: 1,
		}},
	}
	if _, err := sc.Normalize(); err != nil {
		panic("sim: probe scenario invalid: " + err.Error())
	}
	return sc
}

// probe runs one modeled probe and reports whether the topology
// sustained the rate, plus the observed p99 and exchange count.
func probe(top Topology, svc ServiceModel, qps float64, opts SaturationOpts) (ok bool, p99 time.Duration, exchanges int) {
	sc := probeScenario(top, svc, qps, opts.Window, opts.Seed)
	s, err := New(sc, Modeled(), Untraced())
	if err != nil {
		panic("sim: building probe: " + err.Error())
	}
	res := s.Execute()
	m := res.Metrics
	ok = res.P99 <= opts.SLO &&
		m.OverloadRejections.Load() == 0 &&
		m.Timeouts.Load() == 0
	return ok, res.P99, res.Samples
}

// FindSaturation binary-searches the max sustainable QPS for one
// topology. With a zero opts.Service it calibrates service times from
// real exchanges first.
func FindSaturation(top Topology, opts SaturationOpts) SaturationResult {
	opts.normalize()
	svc := opts.Service
	if svc.AS <= 0 || svc.TGS <= 0 {
		svc = Calibrate(top, 2000)
	}
	res := SaturationResult{
		Topology: top,
		SLO:      opts.SLO,
		ASCost:   svc.AS.D(),
		TGSCost:  svc.TGS.D(),
	}

	// Phase 1: double from the known-plausible start until violation.
	lo, hi := 0.0, opts.StartQ
	var p99AtLo time.Duration
	for {
		ok, p99, n := probe(top, svc, hi, opts)
		res.Probes++
		res.Exchanges += n
		if ok {
			lo, p99AtLo = hi, p99
			if hi >= opts.CapQ {
				break
			}
			hi *= 2
			continue
		}
		break
	}
	// Phase 2: bisect to ~2% of the answer.
	for lo > 0 && hi > lo*1.02 && hi-lo > 16 {
		mid := (lo + hi) / 2
		ok, p99, n := probe(top, svc, mid, opts)
		res.Probes++
		res.Exchanges += n
		if ok {
			lo, p99AtLo = mid, p99
		} else {
			hi = mid
		}
	}
	res.MaxQPS = lo
	res.P99AtMax = p99AtLo
	return res
}

// Calibrate measures real AS and TGS service times for the topology:
// it installs a small population over the topology's shard count and
// times n of each exchange against a live kdc.Server, returning the
// mean cost per exchange. This is the simulator's one bridge between
// virtual and wall time: capacity numbers mean nothing unless the
// service times are the machine's own.
//
//kerb:clockadapter -- calibration measures real crypto+lookup cost with the wall clock; results feed the virtual service-time model
func Calibrate(top Topology, n int) ServiceModel {
	if n <= 0 {
		n = 1000
	}
	const users = 64
	realm := "CALIB.MIT.EDU"
	day := time.Date(1988, 1, 25, 9, 0, 0, 0, time.UTC)
	spec := workload.Spec{Users: users, Workstations: 16, Services: 8, Seed: 7}

	shards := max(top.Shards, 1)
	stores := make([]kdb.Store, shards)
	for i := range stores {
		stores[i] = kdb.NewMemStore()
	}
	master := client.PasswordKey(core.Principal{Name: "K", Instance: "M", Realm: realm}, "calib-master")
	defer clear(master[:])
	db := kdb.NewSharded(master, stores)
	tgsKey := des.StringToKey("calib-tgs", realm)
	defer clear(tgsKey[:])
	if err := db.Add(core.TGSName, realm, tgsKey, 0, "kdb_init", day); err != nil {
		panic("sim: calibrate: " + err.Error())
	}
	if err := workload.Install(db, spec, realm, day); err != nil {
		panic("sim: calibrate: " + err.Error())
	}
	clk := func() time.Time { return day }
	srv := kdc.New(realm, db, kdc.WithClock(clk))

	// Pre-build the request batches so only server time is measured.
	asMsgs := make([][]byte, n)
	for i := range asMsgs {
		req := &core.AuthRequest{
			Client:  spec.UserPrincipal(i%users, realm),
			Service: core.TGSPrincipal(realm, realm),
			Life:    core.DefaultTGTLife,
			Time:    core.TimeFromGo(day),
		}
		asMsgs[i] = req.Encode()
	}
	from := spec.WorkstationAddr(0)
	// One real login yields the TGT the TGS batch presents.
	userP := spec.UserPrincipal(0, realm)
	key := client.PasswordKey(userP, spec.UserPassword(0))
	defer clear(key[:])
	enc, err := openReply(srv.Handle(asMsgs[0], from), key)
	if err != nil {
		panic("sim: calibrate login: " + err.Error())
	}
	tgsMsgs := make([][]byte, n)
	for i := range tgsMsgs {
		auth := core.NewAuthenticator(userP, from, day, uint32(i+1))
		req := &core.TGSRequest{
			APReq: core.APRequest{
				TicketRealm:   realm,
				Ticket:        enc.Ticket,
				Authenticator: auth.Seal(enc.SessionKey),
			},
			Service: spec.ServicePrincipal(i%8, realm),
			Life:    core.MaxLife,
			Time:    core.TimeFromGo(day),
		}
		tgsMsgs[i] = req.Encode()
	}

	t0 := time.Now()
	for _, m := range asMsgs {
		srv.Handle(m, from)
	}
	asCost := time.Since(t0) / time.Duration(n)
	t0 = time.Now()
	for _, m := range tgsMsgs {
		srv.Handle(m, from)
	}
	tgsCost := time.Since(t0) / time.Duration(n)

	if asCost < time.Microsecond {
		asCost = time.Microsecond
	}
	if tgsCost < time.Microsecond {
		tgsCost = time.Microsecond
	}
	return ServiceModel{AS: Duration(asCost), TGS: Duration(tgsCost)}
}

// BenchTopologies is the BENCH_realm.json topology matrix: the flat
// single-instance baseline, the 16-shard database, and the 16-shard
// three-instance cluster.
var BenchTopologies = []Topology{
	{Name: "flat-x1", Shards: 1, Instances: 1, Workers: 4},
	{Name: "shard16-x1", Shards: 16, Instances: 1, Workers: 4},
	{Name: "shard16-x3", Shards: 16, Instances: 3, Workers: 4},
}

// BenchRealm runs the full analysis — every topology in BenchTopologies
// plus one traced Athena-day pass — and writes BENCH_realm.json-shaped
// output to path.
//
//kerb:clockadapter -- bench entry point; drives Calibrate and stamps nothing time-dependent itself
func BenchRealm(path string, opts SaturationOpts, athenaScale float64) error {
	opts.normalize()
	out := struct {
		SLOms      float64                     `json:"slo_p99_ms"`
		Topologies map[string]SaturationResult `json:"topologies"`
		Order      []string                    `json:"topology_order"`
		AthenaDay  map[string]any              `json:"athena_day"`
	}{
		SLOms:      float64(opts.SLO) / float64(time.Millisecond),
		Topologies: map[string]SaturationResult{},
	}
	for _, top := range BenchTopologies {
		r := FindSaturation(top, opts)
		out.Topologies[top.Name] = r
		out.Order = append(out.Order, top.Name)
		fmt.Printf("== %-12s max %8.0f qps (p99 %v, AS %v, TGS %v, %d probes / %d exchanges)\n",
			top.Name, r.MaxQPS, r.P99AtMax, r.ASCost, r.TGSCost, r.Probes, r.Exchanges)
	}

	day, err := New(AthenaDay(athenaScale))
	if err != nil {
		return err
	}
	res := day.Execute()
	m := res.Metrics
	out.AthenaDay = map[string]any{
		"scale":               athenaScale,
		"events":              res.Steps,
		"logins":              m.Logins.Load(),
		"tgs":                 m.TGS.Load(),
		"renewals":            m.Renewals.Load(),
		"skew_rejections":     m.SkewRejections.Load(),
		"overload_rejections": m.OverloadRejections.Load(),
		"timeouts":            m.Timeouts.Load(),
		"failovers":           m.Failovers.Load(),
		"p99_ns":              res.P99,
		"replay_len_max":      res.ReplayLenMax,
	}
	fmt.Printf("== athena-day  %s\n", res.Summary())

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestAthenaDay runs the canned scenario at one fifth scale — staff and
// student login storms, a mid-burst death of one of the three KDC
// instances, the ~8h renewal wave, a drifted-clock cohort retrying
// through its rejections, and midday kadmin churn — and asserts the
// whole day's shape from the counters. Run twice to pin determinism at
// this scale too (the suite also runs under -race in CI).
func TestAthenaDay(t *testing.T) {
	scale := 0.2
	run := func() *Result {
		s, err := New(AthenaDay(scale))
		if err != nil {
			t.Fatal(err)
		}
		return s.Execute()
	}
	res := run()
	m := res.Metrics
	sc := res.Scenario

	staff := sc.Cohorts[0].Users
	students := sc.Cohorts[1].Users
	drifted := sc.Cohorts[2].Users
	all := uint64(staff + students + drifted)

	// Every member of every cohort gets logged in: the AS exchange is
	// blind to drift, and the outage is survivable by retransmission.
	if got := m.Logins.Load(); got != all {
		t.Fatalf("logins = %d, want %d", got, all)
	}
	if got := m.LoginFailures.Load()+m.Timeouts.Load(); got != 0 {
		t.Fatalf("login failures+timeouts = %d, want 0: the 2 surviving instances must absorb the outage", got)
	}

	// The outage is visible in the resilience counters: clients whose
	// preferred instance died retransmitted and switched.
	if m.Retransmits.Load() == 0 {
		t.Fatal("no retransmits despite a 15-minute instance outage mid-storm")
	}
	if m.Failovers.Load() == 0 {
		t.Fatal("no failovers despite a 15-minute instance outage mid-storm")
	}

	// The healthy cohorts get their service tickets and their renewal
	// wave; the drifted cohort gets neither.
	wantTGS := uint64(2*(staff+students)) + all - uint64(drifted) // 2 per login + 1 renewal each
	if got := m.TGS.Load(); got != wantTGS {
		t.Fatalf("tgs = %d, want %d", got, wantTGS)
	}
	if got := m.Renewals.Load(); got != uint64(staff+students) {
		t.Fatalf("renewals = %d, want %d", got, staff+students)
	}
	if got := m.RenewalFails.Load(); got != 0 {
		t.Fatalf("renewal failures = %d, want 0", got)
	}
	for i, off := range res.RenewalOffsets {
		if off < 8*time.Hour-5*time.Minute || off > 9*time.Hour+45*time.Minute {
			t.Fatalf("renewal %d at +%v outside the day's renewal band", i, off)
		}
	}

	// The skew epidemic: every drifted user rejected on the first try
	// and both retries, attributed to skew on both sides of the wire.
	wantSkew := uint64(drifted * 3)
	if got := m.SkewRejections.Load(); got != wantSkew {
		t.Fatalf("skew rejections = %d, want %d", got, wantSkew)
	}
	if got := res.KDC.SkewErrors; got != wantSkew {
		t.Fatalf("kdc skew errors = %d, want %d", got, wantSkew)
	}
	if got := m.OverloadRejections.Load(); got != 0 {
		t.Fatalf("overload rejections = %d, want 0: this day is within capacity", got)
	}

	// Midday kadmin churn ran and reverted.
	if m.ChurnChanges.Load() == 0 {
		t.Fatal("churn phase recorded no changes")
	}

	// The trace narrates the fault window.
	if !bytes.Contains(res.Trace, []byte("fault instance=1")) ||
		!bytes.Contains(res.Trace, []byte("fault-clear instance=1")) {
		t.Fatal("trace is missing the fault phase markers")
	}

	// Determinism at this scale: an independent second run agrees to
	// the byte.
	res2 := run()
	if !bytes.Equal(res.Trace, res2.Trace) {
		t.Fatal("two athena-day runs diverged:\n" + firstDiff(res.Trace, res2.Trace))
	}
	if !bytes.Equal(res.MetricsText, res2.MetricsText) {
		t.Fatalf("metrics diverged:\n%s\nvs\n%s", res.MetricsText, res2.MetricsText)
	}

	// Replay caches stay bounded across a 10-hour day.
	if res.ReplayLenMax == 0 || res.ReplayLenMax > int(wantTGS)/2 {
		t.Fatalf("replay high-water %d out of bounds (total tgs %d)", res.ReplayLenMax, wantTGS)
	}

	if !strings.Contains(res.Summary(), "athena-day") {
		t.Fatal("summary does not name the scenario")
	}
}

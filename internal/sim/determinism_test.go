package sim

import (
	"bytes"
	"testing"
)

// TestSameSeedByteIdentical is the determinism property test: the same
// seed and scenario must produce a byte-identical event trace and
// metrics snapshot on every run. Five fresh Sims of the scaled
// Athena day — fresh databases, fresh servers, fresh replay caches,
// real DES throughout — must agree to the byte. The suite runs under
// -race in CI, so this also proves the virtual day shares no unsynced
// state with the wall-clock world.
func TestSameSeedByteIdentical(t *testing.T) {
	const runs = 5
	var trace, metrics []byte
	for i := 0; i < runs; i++ {
		s, err := New(AthenaDay(0.05))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		res := s.Execute()
		if res.Samples == 0 {
			t.Fatalf("run %d simulated no exchanges", i)
		}
		if i == 0 {
			trace, metrics = res.Trace, res.MetricsText
			if len(trace) == 0 {
				t.Fatal("first run produced an empty trace")
			}
			continue
		}
		if !bytes.Equal(res.Trace, trace) {
			t.Fatalf("run %d: trace diverged from run 0\nrun0:\n%s\nrun%d:\n%s",
				i, firstDiff(trace, res.Trace), i, "")
		}
		if !bytes.Equal(res.MetricsText, metrics) {
			t.Fatalf("run %d: metrics diverged\nrun0:\n%s\nrun%d:\n%s", i, metrics, i, res.MetricsText)
		}
	}
}

// TestDifferentSeedsDiverge guards against the trace being trivially
// constant: a different seed must actually reshuffle the day.
func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed int64) []byte {
		sc := AthenaDay(0.05)
		sc.Seed = seed
		s, err := New(sc)
		if err != nil {
			t.Fatal(err)
		}
		return s.Execute().Trace
	}
	if bytes.Equal(run(1988), run(1989)) {
		t.Fatal("seeds 1988 and 1989 produced identical traces; arrival jitter is not seeded")
	}
}

// firstDiff renders the first diverging trace line pair for a readable
// failure.
func firstDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return "line " + itoa(i) + ":\n  " + string(la[i]) + "\n  " + string(lb[i])
		}
	}
	return "traces differ in length: " + itoa(len(la)) + " vs " + itoa(len(lb)) + " lines"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

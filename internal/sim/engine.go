// Package sim is the deterministic discrete-event realm simulator: it
// replays a day of realistic temporal load — §9's morning login storms,
// the synchronized renewal wave ~8 hours later, a KDC instance dying
// mid-burst, a cohort of workstations whose clocks drifted past the
// ±5-minute window — against real in-process KDC servers, entirely in
// simulated time.
//
// Two clocks are in play and must not be confused. Virtual time (the
// injected testclock) drives every protocol decision and every latency
// the simulator reports: arrivals, retransmission timeouts, queueing
// delay, ticket lifetimes, skew checks. Wall time appears in exactly
// one place — the calibration helper in saturation.go that measures
// how long a real KDC exchange takes on this machine, declared
// //kerb:clockadapter. Everything else is a pure function of the
// scenario and its seed, which is what makes a run's event trace and
// metrics snapshot byte-identical across executions.
//
// The moving parts:
//
//   - Engine (this file): a thin event loop over testclock's
//     deterministic timers — earliest deadline first, FIFO at equal
//     deadlines.
//   - Scenario (scenario.go): the JSON-loadable description of a day —
//     population, topology, cohorts with arrival windows, fault phases,
//     churn phases.
//   - Run (realm.go, session.go): the harness that installs the
//     population, builds the KDC instances, models each instance as a
//     small FIFO queue of workers in virtual time, and animates every
//     cohort member through login → service tickets → renewal.
//   - Saturation analyzer (saturation.go): binary-searches offered QPS
//     for the highest load a topology sustains without violating its
//     p99 SLO, emitting BENCH_realm.json.
package sim

import (
	"time"

	"kerberos/internal/testclock"
)

// Engine is the discrete-event loop: events are closures scheduled at
// virtual instants, executed in deterministic order by stepping the
// simulated clock from deadline to deadline.
type Engine struct {
	clock *testclock.Clock
	start time.Time
	steps int
}

// NewEngine creates an engine whose virtual clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{clock: testclock.New(start), start: start}
}

// Clock exposes the simulated clock; pass Clock().Now as the injected
// clock func to servers under simulation.
func (e *Engine) Clock() *testclock.Clock { return e.clock }

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.clock.Now() }

// Start returns the virtual instant the engine was created at.
func (e *Engine) Start() time.Time { return e.start }

// Elapsed returns how far virtual time has progressed since start.
func (e *Engine) Elapsed() time.Duration { return e.clock.Now().Sub(e.start) }

// Steps returns how many events have executed.
func (e *Engine) Steps() int { return e.steps }

// At schedules fn at virtual instant t (FIFO among events sharing t).
func (e *Engine) At(t time.Time, fn func()) {
	e.clock.At(t, func() {
		e.steps++
		fn()
	})
}

// After schedules fn d after the current virtual instant.
func (e *Engine) After(d time.Duration, fn func()) {
	e.At(e.clock.Now().Add(d), fn)
}

// Run executes events in order until the queue is empty or the next
// event lies beyond until, then parks the clock at until. It returns
// the number of events executed during this call.
//
// This is the simulator's inner loop — a saturation search steps it
// millions of times — so the loop itself must not allocate (the guard
// is TestEngineRunAllocs; scheduled event closures own their
// allocations).
//
//kerb:hotpath
func (e *Engine) Run(until time.Time) int {
	before := e.steps
	for {
		next, ok := e.clock.NextTimer()
		if !ok || next.After(until) {
			break
		}
		e.clock.Set(next)
	}
	if e.clock.Now().Before(until) {
		e.clock.Set(until)
	}
	return e.steps - before
}

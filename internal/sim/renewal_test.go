package sim

import (
	"testing"
	"time"
)

// TestRenewalWave drives a morning login storm and checks the §4.3
// ticket-lifetime consequence: every workstation comes back for a TGS
// exchange on its aging TGT inside the ~8-hour window — after the
// renewal point but before the DefaultTGTLife expiry — and the replay
// cache's skew-window sweep keeps its population bounded far below the
// day's total exchange count.
func TestRenewalWave(t *testing.T) {
	const users = 60
	stormAt := 10 * time.Minute
	stormOver := 10 * time.Minute
	renewAfter := 7*time.Hour + 30*time.Minute
	jitter := 10 * time.Minute
	sc := &Scenario{
		Name:  "renewal-wave",
		Seed:  42,
		Users: users,
		Cohorts: []CohortSpec{{
			Name: "shift", Users: users,
			StormAt: Duration(stormAt), StormOver: Duration(stormOver),
			TicketsPerLogin: 1,
			RenewAfter:      Duration(renewAfter),
			RenewJitter:     Duration(jitter),
		}},
		Duration: Duration(9 * time.Hour),
	}
	s, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Execute()
	m := res.Metrics

	if got := m.Logins.Load(); got != users {
		t.Fatalf("logins = %d, want %d", got, users)
	}
	if got := m.Renewals.Load(); got != users {
		t.Fatalf("renewals = %d, want %d (offsets: %d recorded)", got, users, len(res.RenewalOffsets))
	}
	if got := m.RenewalFails.Load(); got != 0 {
		t.Fatalf("renewal failures = %d, want 0: the TGT must still be honored at renewal time", got)
	}

	// Every renewal must land in the wave window: no earlier than the
	// first login's renewal point, no later than the last login's point
	// plus jitter — and always before the 7h55m DefaultTGTLife runs out
	// on the freshest login.
	lo := stormAt + renewAfter
	hi := stormAt + stormOver + renewAfter + jitter
	for i, off := range res.RenewalOffsets {
		if off < lo || off > hi {
			t.Fatalf("renewal %d at +%v outside wave window [%v, %v]", i, off, lo, hi)
		}
	}
	tgtLife := time.Duration(95) * 5 * time.Minute // core.DefaultTGTLife units
	if hi-stormAt > tgtLife {
		t.Fatalf("scenario is self-contradictory: latest renewal %v after its login exceeds TGT life %v",
			hi-stormAt, tgtLife)
	}

	// Memory bound: the replay cache holds only authenticators within
	// the skew window, so its high-water mark must stay near the burst
	// population, not accumulate toward the day's total TGS volume.
	totalTGS := int(m.TGS.Load())
	if totalTGS != 2*users { // one service ticket + one renewal each
		t.Fatalf("tgs exchanges = %d, want %d", totalTGS, 2*users)
	}
	if res.ReplayLenMax == 0 {
		t.Fatal("replay cache never sampled above zero; sampling is broken")
	}
	if res.ReplayLenMax > users+users/2 {
		t.Fatalf("replay cache high-water %d exceeds burst population %d: sweep is not bounding memory",
			res.ReplayLenMax, users)
	}
}

package des

import (
	"sync"
	"testing"
)

func schedKey(i int) Key {
	return FixParity(Key{byte(i), byte(i >> 8), byte(i >> 16), 1, 2, 3, 4, 5})
}

func TestSchedCacheReturnsWorkingCipher(t *testing.T) {
	s := NewSchedCache(16)
	key := schedKey(1)
	c := s.For(key)
	sealed := c.Seal([]byte("ticket"))
	plain, err := c.Unseal(sealed)
	if err != nil || string(plain) != "ticket" {
		t.Fatalf("cached cipher broken: %q, %v", plain, err)
	}
	// The same key must converge on the same expansion.
	if s.For(key) != c {
		t.Error("second For(key) returned a different Cipher")
	}
}

func TestSchedCacheForget(t *testing.T) {
	s := NewSchedCache(16)
	key := schedKey(2)
	c := s.For(key)
	s.Forget(key)
	if s.Len() != 0 {
		t.Errorf("len = %d after Forget, want 0", s.Len())
	}
	if s.For(key) == c {
		t.Error("Forget did not drop the cached schedule")
	}
	// Forgetting an absent key must not corrupt the count.
	s.Forget(schedKey(99))
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestSchedCacheEviction(t *testing.T) {
	const cap = 32
	s := NewSchedCache(cap)
	for i := 0; i < 10*cap; i++ {
		s.For(schedKey(i))
	}
	if n := s.Len(); n > cap {
		t.Errorf("cache holds %d schedules, cap is %d", n, cap)
	}
	// Evicted keys are re-expanded transparently.
	c := s.For(schedKey(0))
	if _, err := c.Unseal(c.Seal([]byte("x"))); err != nil {
		t.Fatal(err)
	}
}

// TestSchedCacheConcurrent storms the cache from many goroutines with a
// key space larger than the cap, so hits, misses, evictions, and
// Forgets all race. Run under -race this is the cache's safety proof.
func TestSchedCacheConcurrent(t *testing.T) {
	s := NewSchedCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := schedKey(i % 100)
				c := s.For(key)
				if c == nil || c.Key() != key {
					t.Error("For returned wrong cipher")
					return
				}
				if i%17 == 0 {
					s.Forget(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n < 0 || n > 64 {
		t.Errorf("len = %d after storm, want 0..64", n)
	}
}

// TestSchedCacheHitAllocs guards the hot path: a cache hit must not
// allocate (the whole point of caching the expansion).
func TestSchedCacheHitAllocs(t *testing.T) {
	s := NewSchedCache(16)
	key := schedKey(3)
	s.For(key)
	allocs := testing.AllocsPerRun(100, func() {
		if s.For(key) == nil {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkSchedCacheHit(b *testing.B) {
	s := NewSchedCache(16)
	key := schedKey(4)
	s.For(key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.For(key)
	}
}

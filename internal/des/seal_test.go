package des

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSealUnseal(t *testing.T) {
	key := randomKeyT(t)
	for _, msg := range [][]byte{
		nil,
		[]byte("x"),
		[]byte("exactly8"),
		[]byte("a private message from the Kerberos server carrying a password"),
		bytes.Repeat([]byte{0}, 1000),
	} {
		sealed := Seal(key, msg)
		if len(sealed)%BlockSize != 0 {
			t.Fatalf("sealed length %d not block aligned", len(sealed))
		}
		got, err := Unseal(key, sealed)
		if err != nil {
			t.Fatalf("unseal %d bytes: %v", len(msg), err)
		}
		if !bytes.Equal(got, msg) {
			t.Errorf("round trip mismatch for %d-byte message", len(msg))
		}
	}
}

func TestUnsealWrongKey(t *testing.T) {
	key := randomKeyT(t)
	wrong := randomKeyT(t)
	sealed := Seal(key, []byte("ticket-granting ticket"))
	if _, err := Unseal(wrong, sealed); err == nil {
		t.Error("wrong key unsealed successfully")
	}
}

func TestUnsealTamperDetection(t *testing.T) {
	key := randomKeyT(t)
	msg := bytes.Repeat([]byte("block..."), 8)
	sealed := Seal(key, msg)
	// Flip one bit in every position; all must be rejected.
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x40
		if _, err := Unseal(key, mut); err == nil {
			t.Fatalf("tampering at byte %d not detected", i)
		}
	}
}

func TestUnsealTruncationAndGarbage(t *testing.T) {
	key := randomKeyT(t)
	sealed := Seal(key, []byte("some payload that is long enough"))
	if _, err := Unseal(key, sealed[:len(sealed)-8]); err == nil {
		t.Error("truncated message accepted")
	}
	if _, err := Unseal(key, sealed[:5]); err == nil {
		t.Error("tiny fragment accepted")
	}
	if _, err := Unseal(key, nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := Unseal(key, make([]byte, 32)); err == nil {
		t.Error("zero garbage accepted")
	}
}

func TestSealUnsealProperty(t *testing.T) {
	key := randomKeyT(t)
	f := func(msg []byte) bool {
		got, err := Unseal(key, Seal(key, msg))
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSealFreshness: sealing is deterministic given key+message in this
// design (no confounder); the protocol gains freshness from timestamps in
// the plaintext, so two different messages must never share a prefix
// observable to an eavesdropper beyond the first block boundary. We check
// the weaker, essential property: different plaintexts give different
// ciphertexts.
func TestSealDistinctPlaintexts(t *testing.T) {
	key := randomKeyT(t)
	a := Seal(key, []byte("timestamp=1000"))
	b := Seal(key, []byte("timestamp=1001"))
	if bytes.Equal(a, b) {
		t.Error("distinct plaintexts sealed identically")
	}
}

// TestSealAllocs guards the single-allocation seal path: the only
// allocation is the output buffer (the header is written in place and
// encryption happens in place).
func TestSealAllocs(t *testing.T) {
	key := randomKeyT(t)
	c := NewCipher(key)
	msg := make([]byte, 100)
	allocs := testing.AllocsPerRun(100, func() {
		if len(c.Seal(msg)) == 0 {
			t.Fatal("empty")
		}
	})
	if allocs > 1 {
		t.Errorf("Cipher.Seal allocates %.1f objects/op, want <= 1", allocs)
	}
	// The package-level helper adds no allocation once the schedule is
	// cached.
	Seal(key, msg) // warm the cache
	allocs = testing.AllocsPerRun(100, func() {
		if len(Seal(key, msg)) == 0 {
			t.Fatal("empty")
		}
	})
	if allocs > 1 {
		t.Errorf("Seal allocates %.1f objects/op, want <= 1", allocs)
	}
}

// TestUnsealAllocs guards the unseal path: one allocation for the
// decryption buffer; the plaintext is a view into it.
func TestUnsealAllocs(t *testing.T) {
	key := randomKeyT(t)
	c := NewCipher(key)
	sealed := c.Seal(make([]byte, 100))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Unseal(sealed); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("Cipher.Unseal allocates %.1f objects/op, want <= 1", allocs)
	}
}

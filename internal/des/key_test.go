package des

import (
	"testing"
	"testing/quick"
)

func TestFixParity(t *testing.T) {
	k := FixParity(Key{0, 1, 2, 3, 0xfe, 0xff, 0x80, 0x7f})
	if !HasOddParity(k) {
		t.Errorf("FixParity result %x lacks odd parity", k)
	}
	// Idempotent.
	if FixParity(k) != k {
		t.Error("FixParity not idempotent")
	}
}

func TestOddParityProperty(t *testing.T) {
	f := func(k [8]byte) bool { return HasOddParity(FixParity(Key(k))) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsWeak(t *testing.T) {
	if !IsWeak(Key{0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01}) {
		t.Error("all-ones weak key not detected")
	}
	if IsWeak(Key{0x13, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1}) {
		t.Error("strong key flagged weak")
	}
}

func TestFixWeakProducesStrongParityKey(t *testing.T) {
	for _, w := range weakKeys {
		k := fixWeak(Key(w))
		if IsWeak(k) {
			t.Errorf("fixWeak(%x) still weak", w)
		}
		if !HasOddParity(k) {
			t.Errorf("fixWeak(%x) lost parity", w)
		}
	}
}

func TestNewRandomKey(t *testing.T) {
	seen := map[Key]bool{}
	for i := 0; i < 64; i++ {
		k, err := NewRandomKey()
		if err != nil {
			t.Fatal(err)
		}
		if !HasOddParity(k) {
			t.Fatalf("random key %x lacks parity", k)
		}
		if IsWeak(k) {
			t.Fatalf("random key %x is weak", k)
		}
		if seen[k] {
			t.Fatalf("random key %x repeated", k)
		}
		seen[k] = true
	}
}

func TestStringToKey(t *testing.T) {
	k1 := StringToKey("zanzibar", "ATHENA.MIT.EDU")
	k2 := StringToKey("zanzibar", "ATHENA.MIT.EDU")
	if k1 != k2 {
		t.Error("StringToKey not deterministic")
	}
	if !HasOddParity(k1) || IsWeak(k1) {
		t.Errorf("StringToKey produced bad key %x", k1)
	}
	if k1 == StringToKey("zanzibar", "LCS.MIT.EDU") {
		t.Error("salt does not affect key")
	}
	if k1 == StringToKey("zanzibaR", "ATHENA.MIT.EDU") {
		t.Error("password case does not affect key")
	}
	// Degenerate inputs must still give valid keys.
	for _, pw := range []string{"", "x", "a very long passphrase that spans several DES blocks easily"} {
		k := StringToKey(pw, "R")
		if !HasOddParity(k) || IsWeak(k) {
			t.Errorf("StringToKey(%q) produced bad key %x", pw, k)
		}
	}
}

// TestStringToKeyDistribution makes sure many related passwords map to
// distinct keys (the fan-fold must not collapse trivially).
func TestStringToKeyDistribution(t *testing.T) {
	seen := map[Key]string{}
	for _, pw := range []string{
		"a", "b", "ab", "ba", "aa", "bb",
		"password", "passwore", "Password", "password ",
		"12345678", "123456789", "87654321",
	} {
		k := StringToKey(pw, "REALM")
		if prev, dup := seen[k]; dup {
			t.Errorf("passwords %q and %q collide on key %x", prev, pw, k)
		}
		seen[k] = pw
	}
}

func TestCBCChecksum(t *testing.T) {
	key := StringToKey("master", "X")
	a := CBCChecksum(key, []byte("hello world"))
	if a != CBCChecksum(key, []byte("hello world")) {
		t.Error("checksum not deterministic")
	}
	if a == CBCChecksum(key, []byte("hello worle")) {
		t.Error("checksum ignores data")
	}
	other := StringToKey("other", "X")
	if a == CBCChecksum(other, []byte("hello world")) {
		t.Error("checksum ignores key")
	}
}

func BenchmarkStringToKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StringToKey("zanzibar", "ATHENA.MIT.EDU")
	}
}

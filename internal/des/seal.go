package des

import (
	"encoding/binary"
	"errors"
)

// Sealed-message helpers. Every encrypted structure in the protocol —
// tickets, authenticators, KDC reply bodies, private messages — is carried
// as a "sealed" byte string: an 8-byte header (payload length + keyed
// checksum) followed by the payload, zero-padded and encrypted in PCBC
// mode with the key itself as IV (the Kerberos v4 convention).
//
// PCBC propagates any ciphertext corruption through the remainder of the
// message (§2.2), and the checksum in the header detects it, so a sealed
// message that unseals cleanly is both confidential and intact.

// ErrIntegrity reports a sealed message that failed its checksum or
// structure checks after decryption — corruption, truncation, or a wrong
// key.
var ErrIntegrity = errors.New("des: sealed message integrity check failed")

const sealHeaderLen = 8

// Seal encrypts plaintext under key and returns the sealed ciphertext.
func Seal(key Key, plaintext []byte) []byte {
	buf := make([]byte, sealHeaderLen+len(plaintext))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(plaintext)))
	binary.BigEndian.PutUint32(buf[4:8], QuadChecksum(key, plaintext))
	copy(buf[sealHeaderLen:], plaintext)
	padded := Pad(buf)
	c := NewCipher(key)
	// Error is impossible: padded is block-aligned and iv is 8 bytes.
	_ = c.EncryptPCBC(padded, padded, key[:])
	return padded
}

// Unseal decrypts a sealed ciphertext and verifies its integrity,
// returning the original plaintext. A wrong key, truncated input, or any
// tampering yields ErrIntegrity.
func Unseal(key Key, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < sealHeaderLen || len(ciphertext)%BlockSize != 0 {
		return nil, ErrIntegrity
	}
	buf := make([]byte, len(ciphertext))
	c := NewCipher(key)
	if err := c.DecryptPCBC(buf, ciphertext, key[:]); err != nil {
		return nil, ErrIntegrity
	}
	n := binary.BigEndian.Uint32(buf[0:4])
	if int(n) > len(buf)-sealHeaderLen {
		return nil, ErrIntegrity
	}
	plaintext := buf[sealHeaderLen : sealHeaderLen+int(n)]
	if QuadChecksum(key, plaintext) != binary.BigEndian.Uint32(buf[4:8]) {
		return nil, ErrIntegrity
	}
	// Padding must be zeros; reject other trailing bytes.
	for _, b := range buf[sealHeaderLen+int(n):] {
		if b != 0 {
			return nil, ErrIntegrity
		}
	}
	return plaintext, nil
}

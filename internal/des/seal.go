package des

import (
	"encoding/binary"
	"errors"
)

// Sealed-message helpers. Every encrypted structure in the protocol —
// tickets, authenticators, KDC reply bodies, private messages — is carried
// as a "sealed" byte string: an 8-byte header (payload length + keyed
// checksum) followed by the payload, zero-padded and encrypted in PCBC
// mode with the key itself as IV (the Kerberos v4 convention).
//
// PCBC propagates any ciphertext corruption through the remainder of the
// message (§2.2), and the checksum in the header detects it, so a sealed
// message that unseals cleanly is both confidential and intact.
//
// The Cipher methods are the workhorses: they perform exactly one
// allocation (the output buffer) and reuse the cipher's expanded key
// schedule. The package-level Seal/Unseal functions route through the
// shared schedule cache so repeated use of the same key expands it once.

// ErrIntegrity reports a sealed message that failed its checksum or
// structure checks after decryption — corruption, truncation, or a wrong
// key.
var ErrIntegrity = errors.New("des: sealed message integrity check failed")

const sealHeaderLen = 8

// SealedLen returns the sealed size of an n-byte plaintext: header plus
// payload, rounded up to whole blocks.
func SealedLen(n int) int {
	return (sealHeaderLen + n + BlockSize - 1) / BlockSize * BlockSize
}

// Seal encrypts plaintext under the cipher's key and returns the sealed
// ciphertext in a fresh buffer (the only allocation it performs).
//
//kerb:hotpath
func (c *Cipher) Seal(plaintext []byte) []byte {
	buf := make([]byte, SealedLen(len(plaintext)))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(plaintext)))
	binary.BigEndian.PutUint32(buf[4:8], QuadChecksum(c.key, plaintext))
	copy(buf[sealHeaderLen:], plaintext)
	// Error is impossible: buf is block-aligned and the IV is 8 bytes.
	_ = c.EncryptPCBC(buf, buf, c.key[:])
	return buf
}

// Unseal decrypts a sealed ciphertext and verifies its integrity,
// returning the original plaintext. A wrong key, truncated input, or any
// tampering yields ErrIntegrity.
//
//kerb:hotpath
func (c *Cipher) Unseal(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < sealHeaderLen || len(ciphertext)%BlockSize != 0 {
		return nil, ErrIntegrity
	}
	buf := make([]byte, len(ciphertext))
	if err := c.DecryptPCBC(buf, ciphertext, c.key[:]); err != nil {
		return nil, ErrIntegrity
	}
	n := binary.BigEndian.Uint32(buf[0:4])
	if int(n) > len(buf)-sealHeaderLen {
		return nil, ErrIntegrity
	}
	plaintext := buf[sealHeaderLen : sealHeaderLen+int(n)]
	if !ChecksumEqual(QuadChecksum(c.key, plaintext), binary.BigEndian.Uint32(buf[4:8])) {
		return nil, ErrIntegrity
	}
	// Padding must be zeros; reject other trailing bytes.
	for _, b := range buf[sealHeaderLen+int(n):] {
		if b != 0 {
			return nil, ErrIntegrity
		}
	}
	return plaintext, nil
}

// Seal encrypts plaintext under key and returns the sealed ciphertext,
// reusing key's cached schedule.
//
//kerb:hotpath
func Seal(key Key, plaintext []byte) []byte {
	return sched.For(key).Seal(plaintext)
}

// Unseal decrypts a sealed ciphertext under key and verifies its
// integrity, reusing key's cached schedule.
func Unseal(key Key, ciphertext []byte) ([]byte, error) {
	return sched.For(key).Unseal(ciphertext)
}

// Package des is the encryption library of the reproduction: the Data
// Encryption Standard implemented from FIPS publication 46, together with
// the block modes the paper describes (ECB, CBC, and the Propagating CBC
// extension), the Kerberos password-to-key transformation, the keyed
// quadratic checksum used by safe messages, and sealed-message helpers.
//
// The paper (§2.2) describes the encryption library as an independent,
// replaceable module offering "several methods of encryption ... with
// tradeoffs between speed and security"; this package is that module.
package des

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the DES block size in bytes.
const BlockSize = 8

// KeySize is the DES key size in bytes (56 key bits + 8 parity bits).
const KeySize = 8

// Key is a DES key: 8 bytes, each carrying 7 key bits and an odd-parity
// low bit. The zero Key is invalid; obtain keys from NewRandomKey,
// StringToKey, or FixParity on raw bytes.
type Key [KeySize]byte

// ErrKeySize reports a key of the wrong length.
var ErrKeySize = errors.New("des: key must be 8 bytes")

// ErrInput reports ciphertext or plaintext whose length is not a multiple
// of the block size.
var ErrInput = errors.New("des: input not a multiple of the block size")

// Cipher is an expanded DES key: the 16 48-bit round subkeys, plus the
// key itself so sealed-message operations (which use the key as IV and
// checksum seed) need only the Cipher. It is safe for concurrent use
// after creation and never mutated, so one Cipher may be shared freely —
// see SchedCache for reusing expansions of long-lived keys.
type Cipher struct {
	subkeys [16]uint64 // the 48-bit round subkeys, MSB-aligned in the low 48 bits
	ks      [32]uint32 // the same subkeys as window-positioned word pairs (fast.go)
	key     Key
}

// NewCipher expands key into a Cipher.
func NewCipher(key Key) *Cipher {
	c := new(Cipher)
	c.key = key
	c.expandKey(key)
	return c
}

// Key returns the key this Cipher was expanded from.
func (c *Cipher) Key() Key { return c.key }

// NewCipherBytes expands an 8-byte key slice into a Cipher.
func NewCipherBytes(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, ErrKeySize
	}
	var k Key
	copy(k[:], key)
	return NewCipher(k), nil
}

// permute maps v, an nIn-bit value, through tab. Table entries are 1-based
// bit positions counted from the most significant bit, per FIPS 46.
func permute(v uint64, nIn int, tab []byte) uint64 {
	var out uint64
	for _, p := range tab {
		out = out<<1 | (v>>uint(nIn-int(p)))&1
	}
	return out
}

// rotate28 rotates a 28-bit value left by n bits.
func rotate28(v uint64, n byte) uint64 {
	return ((v << n) | (v >> (28 - n))) & 0x0fffffff
}

func (c *Cipher) expandKey(key Key) {
	k64 := binary.BigEndian.Uint64(key[:])
	k56 := permute(k64, 64, permutedChoice1[:])
	cHalf := k56 >> 28
	dHalf := k56 & 0x0fffffff
	for round := 0; round < 16; round++ {
		cHalf = rotate28(cHalf, keyRotations[round])
		dHalf = rotate28(dHalf, keyRotations[round])
		c.subkeys[round] = permute(cHalf<<28|dHalf, 56, permutedChoice2[:])
	}
	c.expandRoundWords()
}

// feistel is the DES cipher function f(R, K).
func feistel(r uint32, subkey uint64) uint32 {
	x := permute(uint64(r), 32, expansion[:]) ^ subkey
	var sOut uint64
	for i := 0; i < 8; i++ {
		six := byte(x>>uint(42-6*i)) & 0x3f
		row := (six>>4)&2 | six&1
		col := (six >> 1) & 0xf
		sOut = sOut<<4 | uint64(sBoxes[i][row*16+col])
	}
	return uint32(permute(sOut, 32, roundPermutation[:]))
}

// crypt runs the 16-round Feistel network with the subkeys in the given
// order (forward for encryption, reverse for decryption). It dispatches
// to the table-driven core in fast.go; cryptReference below is the
// bit-by-bit transcription of the standard kept as the test oracle.
func (c *Cipher) crypt(block uint64, decrypt bool) uint64 {
	return c.cryptFast(block, decrypt)
}

// cryptReference is the direct transcription of FIPS 46.
func (c *Cipher) cryptReference(block uint64, decrypt bool) uint64 {
	v := permute(block, 64, initialPermutation[:])
	l := uint32(v >> 32)
	r := uint32(v)
	for round := 0; round < 16; round++ {
		k := c.subkeys[round]
		if decrypt {
			k = c.subkeys[15-round]
		}
		l, r = r, l^feistel(r, k)
	}
	// The halves are swapped once more by the standard's pre-output step.
	return permute(uint64(r)<<32|uint64(l), 64, finalPermutation[:])
}

// EncryptBlock encrypts a single 8-byte block. dst and src may overlap.
func (c *Cipher) EncryptBlock(dst, src []byte) {
	out := c.crypt(binary.BigEndian.Uint64(src), false)
	binary.BigEndian.PutUint64(dst, out)
}

// DecryptBlock decrypts a single 8-byte block. dst and src may overlap.
func (c *Cipher) DecryptBlock(dst, src []byte) {
	out := c.crypt(binary.BigEndian.Uint64(src), true)
	binary.BigEndian.PutUint64(dst, out)
}

// checkBlocks validates that dst and src describe whole blocks.
func checkBlocks(dst, src []byte) error {
	if len(src)%BlockSize != 0 {
		return ErrInput
	}
	if len(dst) < len(src) {
		return fmt.Errorf("des: output buffer too small: %d < %d", len(dst), len(src))
	}
	return nil
}

package des

import "math/bits"

// Precomputed lookup tables, built once at init from the FIPS tables in
// tables.go, and the table-driven cipher core that uses them. This is
// the classic software-DES optimization lineage of the 1988 libdes
// generation, taken one step further than SP boxes alone:
//
//   - The P permutation is folded into the S-boxes ("SP boxes"), so a
//     round's nonlinear step is eight table lookups ORed together.
//   - The E expansion is never materialized. E replicates each 4-bit
//     group's neighbours, so its eight overlapping 6-bit windows split
//     into two sets of four *disjoint* windows: the even windows read
//     directly from R rotated right by one bit, the odd windows from
//     that word rotated left four more. Each round therefore XORs two
//     pre-positioned 32-bit key words and extracts eight 6-bit indices
//     with plain shifts — no expansion tables, 8 loads per round
//     instead of 12.
//   - The key schedule is stored twice: as the 16 48-bit subkeys
//     (subkeys, the format the reference core and the bitsliced core
//     derive from) and as 32 window-positioned 32-bit words (ks, what
//     the round above consumes).
//
// The straightforward bit-by-bit permute() in des.go remains the
// reference implementation; TestFastMatchesReference cross-checks the
// two and the FIPS/stdlib vectors validate the result.

var (
	// spBox[i][v] is S-box i applied to the 6-bit value v, already run
	// through the round permutation P and positioned in the 32-bit word.
	spBox [8][64]uint32

	// ipTab[b][v] is the contribution of input byte b holding value v to
	// the 64-bit output of the initial permutation; fpTab likewise for
	// the final permutation.
	ipTab [8][256]uint64
	fpTab [8][256]uint64
)

func init() {
	// SP boxes: for each S-box output nibble, apply P.
	for box := 0; box < 8; box++ {
		for v := 0; v < 64; v++ {
			row := (v>>4)&2 | v&1
			col := (v >> 1) & 0xf
			nibble := uint64(sBoxes[box][row*16+col])
			// Position the nibble in the 32-bit pre-P word.
			pre := nibble << uint(28-4*box)
			spBox[box][v] = uint32(permute(pre, 32, roundPermutation[:]))
		}
	}
	// Byte-indexed linear permutations: a permutation distributes over
	// OR across disjoint input bits, so per-byte contributions combine.
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			in := uint64(v) << uint(56-8*b)
			ipTab[b][v] = permute(in, 64, initialPermutation[:])
			fpTab[b][v] = permute(in, 64, finalPermutation[:])
		}
	}
}

// permuteIP applies the initial permutation via tables.
func permuteIP(v uint64) uint64 {
	return ipTab[0][v>>56] | ipTab[1][v>>48&0xff] | ipTab[2][v>>40&0xff] |
		ipTab[3][v>>32&0xff] | ipTab[4][v>>24&0xff] | ipTab[5][v>>16&0xff] |
		ipTab[6][v>>8&0xff] | ipTab[7][v&0xff]
}

// permuteFP applies the final permutation via tables.
func permuteFP(v uint64) uint64 {
	return fpTab[0][v>>56] | fpTab[1][v>>48&0xff] | fpTab[2][v>>40&0xff] |
		fpTab[3][v>>32&0xff] | fpTab[4][v>>24&0xff] | fpTab[5][v>>16&0xff] |
		fpTab[6][v>>8&0xff] | fpTab[7][v&0xff]
}

// expandRoundWords derives ks, the window-positioned round-key words,
// from the 48-bit subkeys. E's eight 6-bit windows cover, in the
// cyclic bit sequence (32, 1, 2, ..., 31) of R, positions 4j..4j+5 for
// window j. With R2 = R rotated right by one (so R2's MSB is bit 32),
// the even windows j = 0,2,4,6 are the disjoint 6-bit fields of R2 at
// shifts 26,18,10,2; the odd windows are the same fields of R2 rotated
// left by four. Each round key is split the same way so one XOR per
// word aligns key and data.
func (c *Cipher) expandRoundWords() {
	for r := 0; r < 16; r++ {
		k := c.subkeys[r]
		c.ks[2*r] = uint32(k>>42&0x3f)<<26 | uint32(k>>30&0x3f)<<18 |
			uint32(k>>18&0x3f)<<10 | uint32(k>>6&0x3f)<<2
		c.ks[2*r+1] = uint32(k>>36&0x3f)<<26 | uint32(k>>24&0x3f)<<18 |
			uint32(k>>12&0x3f)<<10 | uint32(k&0x3f)<<2
	}
}

// round is one Feistel round on (l, r) with the two window-positioned
// key words, returning the new (l, r).
func round(l, r, ku, kt uint32) (uint32, uint32) {
	r2 := bits.RotateLeft32(r, 31)
	u := r2 ^ ku
	t := bits.RotateLeft32(r2, 4) ^ kt
	f := spBox[0][u>>26] | spBox[2][u>>18&0x3f] |
		spBox[4][u>>10&0x3f] | spBox[6][u>>2&0x3f] |
		spBox[1][t>>26] | spBox[3][t>>18&0x3f] |
		spBox[5][t>>10&0x3f] | spBox[7][t>>2&0x3f]
	return r, l ^ f
}

// cryptFast is the table-driven cipher core used by all block
// operations.
func (c *Cipher) cryptFast(block uint64, decrypt bool) uint64 {
	v := permuteIP(block)
	l := uint32(v >> 32)
	r := uint32(v)
	ks := &c.ks
	if decrypt {
		for i := 30; i >= 0; i -= 2 {
			l, r = round(l, r, ks[i], ks[i+1])
		}
	} else {
		for i := 0; i < 32; i += 2 {
			l, r = round(l, r, ks[i], ks[i+1])
		}
	}
	return permuteFP(uint64(r)<<32 | uint64(l))
}

package des

// Precomputed lookup tables, built once at init from the FIPS tables in
// tables.go. This is the classic software-DES optimization the 1988
// libdes generation used: fold the P permutation into the S-boxes
// ("SP boxes") and turn the bit permutations IP, IP⁻¹ and E into
// byte-indexed table ORs. The straightforward bit-by-bit permute() in
// des.go remains the reference implementation; TestFastTablesMatchSpec
// cross-checks them and the FIPS/stdlib vectors validate the result.

var (
	// spBox[i][v] is S-box i applied to the 6-bit value v, already run
	// through the round permutation P and positioned in the 32-bit word.
	spBox [8][64]uint32

	// ipTab[b][v] is the contribution of input byte b holding value v to
	// the 64-bit output of the initial permutation; fpTab likewise for
	// the final permutation.
	ipTab [8][256]uint64
	fpTab [8][256]uint64

	// expTab[b][v] is the contribution of byte b of the 32-bit half
	// block to the 48-bit expansion E.
	expTab [4][256]uint64
)

func init() {
	// SP boxes: for each S-box output nibble, apply P.
	for box := 0; box < 8; box++ {
		for v := 0; v < 64; v++ {
			row := (v>>4)&2 | v&1
			col := (v >> 1) & 0xf
			nibble := uint64(sBoxes[box][row*16+col])
			// Position the nibble in the 32-bit pre-P word.
			pre := nibble << uint(28-4*box)
			spBox[box][v] = uint32(permute(pre, 32, roundPermutation[:]))
		}
	}
	// Byte-indexed linear permutations: a permutation distributes over
	// OR across disjoint input bits, so per-byte contributions combine.
	for b := 0; b < 8; b++ {
		for v := 0; v < 256; v++ {
			in := uint64(v) << uint(56-8*b)
			ipTab[b][v] = permute(in, 64, initialPermutation[:])
			fpTab[b][v] = permute(in, 64, finalPermutation[:])
		}
	}
	for b := 0; b < 4; b++ {
		for v := 0; v < 256; v++ {
			in := uint64(v) << uint(24-8*b)
			expTab[b][v] = permute(in, 32, expansion[:])
		}
	}
}

// permuteIP applies the initial permutation via tables.
func permuteIP(v uint64) uint64 {
	return ipTab[0][v>>56] | ipTab[1][v>>48&0xff] | ipTab[2][v>>40&0xff] |
		ipTab[3][v>>32&0xff] | ipTab[4][v>>24&0xff] | ipTab[5][v>>16&0xff] |
		ipTab[6][v>>8&0xff] | ipTab[7][v&0xff]
}

// permuteFP applies the final permutation via tables.
func permuteFP(v uint64) uint64 {
	return fpTab[0][v>>56] | fpTab[1][v>>48&0xff] | fpTab[2][v>>40&0xff] |
		fpTab[3][v>>32&0xff] | fpTab[4][v>>24&0xff] | fpTab[5][v>>16&0xff] |
		fpTab[6][v>>8&0xff] | fpTab[7][v&0xff]
}

// feistelFast is f(R, K) with table-driven expansion and SP boxes.
func feistelFast(r uint32, subkey uint64) uint32 {
	x := (expTab[0][r>>24] | expTab[1][r>>16&0xff] |
		expTab[2][r>>8&0xff] | expTab[3][r&0xff]) ^ subkey
	return spBox[0][x>>42&0x3f] | spBox[1][x>>36&0x3f] |
		spBox[2][x>>30&0x3f] | spBox[3][x>>24&0x3f] |
		spBox[4][x>>18&0x3f] | spBox[5][x>>12&0x3f] |
		spBox[6][x>>6&0x3f] | spBox[7][x&0x3f]
}

// cryptFast is the table-driven cipher core used by all block
// operations.
func (c *Cipher) cryptFast(block uint64, decrypt bool) uint64 {
	v := permuteIP(block)
	l := uint32(v >> 32)
	r := uint32(v)
	if decrypt {
		for round := 15; round >= 0; round-- {
			l, r = r, l^feistelFast(r, c.subkeys[round])
		}
	} else {
		for round := 0; round < 16; round++ {
			l, r = r, l^feistelFast(r, c.subkeys[round])
		}
	}
	return permuteFP(uint64(r)<<32 | uint64(l))
}

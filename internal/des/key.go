package des

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"sync"
)

// This file covers the paper's key-handling needs: "Each Kerberos principal
// is assigned a large number, its private key ... In the case of a user,
// the private key is the result of a one-way function applied to the user's
// password" (Conventions; §2.1), and the session keys the authentication
// server generates at random.

// weakKeys are the four weak and twelve semi-weak DES keys (FIPS 74),
// which the key generator and StringToKey must avoid: under a weak key
// encryption is its own inverse.
var weakKeys = [][8]byte{
	// Weak.
	{0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01},
	{0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe},
	{0x1f, 0x1f, 0x1f, 0x1f, 0x0e, 0x0e, 0x0e, 0x0e},
	{0xe0, 0xe0, 0xe0, 0xe0, 0xf1, 0xf1, 0xf1, 0xf1},
	// Semi-weak pairs.
	{0x01, 0xfe, 0x01, 0xfe, 0x01, 0xfe, 0x01, 0xfe},
	{0xfe, 0x01, 0xfe, 0x01, 0xfe, 0x01, 0xfe, 0x01},
	{0x1f, 0xe0, 0x1f, 0xe0, 0x0e, 0xf1, 0x0e, 0xf1},
	{0xe0, 0x1f, 0xe0, 0x1f, 0xf1, 0x0e, 0xf1, 0x0e},
	{0x01, 0xe0, 0x01, 0xe0, 0x01, 0xf1, 0x01, 0xf1},
	{0xe0, 0x01, 0xe0, 0x01, 0xf1, 0x01, 0xf1, 0x01},
	{0x1f, 0xfe, 0x1f, 0xfe, 0x0e, 0xfe, 0x0e, 0xfe},
	{0xfe, 0x1f, 0xfe, 0x1f, 0xfe, 0x0e, 0xfe, 0x0e},
	{0x01, 0x1f, 0x01, 0x1f, 0x01, 0x0e, 0x01, 0x0e},
	{0x1f, 0x01, 0x1f, 0x01, 0x0e, 0x01, 0x0e, 0x01},
	{0xe0, 0xfe, 0xe0, 0xfe, 0xf1, 0xfe, 0xf1, 0xfe},
	{0xfe, 0xe0, 0xfe, 0xe0, 0xfe, 0xf1, 0xfe, 0xf1},
}

// oddParity returns b with its low bit set so the byte has odd parity
// over all eight bits.
func oddParity(b byte) byte {
	x := b >> 1
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return b&0xfe | ^x&1
}

// FixParity returns k with each byte forced to odd parity.
func FixParity(k Key) Key {
	for i := range k {
		k[i] = oddParity(k[i])
	}
	return k
}

// HasOddParity reports whether every byte of k has odd parity. The
// comparison is constant-time: parity checks run on candidate keys.
func HasOddParity(k Key) bool {
	fp := FixParity(k)
	defer clear(fp[:])
	return subtle.ConstantTimeCompare(k[:], fp[:]) == 1
}

// weakKeys64 is weakKeys as big-endian words, for the word-wide
// constant-time scan in IsWeak.
var weakKeys64 = func() [16]uint64 {
	var w [16]uint64
	for i := range weakKeys {
		w[i] = binary.BigEndian.Uint64(weakKeys[i][:])
	}
	return w
}()

// IsWeak reports whether k is one of the weak or semi-weak DES keys.
// Every entry is compared in constant time so the scan's duration does
// not depend on the candidate key's value: each comparison is a single
// branch-free word test, and all sixteen always run.
func IsWeak(k Key) bool {
	kw := binary.BigEndian.Uint64(k[:])
	match := uint64(0)
	for i := range weakKeys64 {
		d := kw ^ weakKeys64[i]
		// (d | -d) has its top bit set exactly when d is nonzero, so
		// this adds 1 for a match and 0 otherwise, without branching.
		match |= ^(d | -d) >> 63
	}
	return match == 1
}

// fixWeak nudges a weak key into a strong one the way the Kerberos
// library did: by flipping the low nibble of the last byte (0xf0 XOR),
// then restoring parity.
func fixWeak(k Key) Key {
	if IsWeak(k) {
		k[7] ^= 0xf0
		k = FixParity(k)
	}
	return k
}

// randBuf batches CSPRNG reads: one operating-system read refills 64
// keys' worth of bits, so a KDC issuing a session key per ticket (§4.2)
// does not pay a system call per issue. Buffers live in a sync.Pool, so
// concurrent issuers draw from distinct buffers without contending.
type randBuf struct {
	b   [64 * KeySize]byte
	off int
}

var randPool = sync.Pool{
	// A fresh buffer starts exhausted so first use fills it.
	New: func() any { return &randBuf{off: 64 * KeySize} },
}

// randKeyBytes fills k with CSPRNG bytes from a pooled buffer. Handed-out
// bytes are wiped from the buffer so a pooled buffer never retains key
// material.
func randKeyBytes(k *Key) error {
	rb := randPool.Get().(*randBuf)
	if rb.off+KeySize > len(rb.b) {
		if _, err := rand.Read(rb.b[:]); err != nil {
			randPool.Put(rb)
			return err
		}
		rb.off = 0
	}
	copy(k[:], rb.b[rb.off:rb.off+KeySize])
	clear(rb.b[rb.off : rb.off+KeySize])
	rb.off += KeySize
	randPool.Put(rb)
	return nil
}

// NewRandomKey generates a fresh session key: random bits from the
// operating system (batched through a pooled buffer), odd parity, never
// weak. The authentication server calls this for every ticket it issues
// (§4.2).
func NewRandomKey() (Key, error) {
	var k Key
	for {
		if err := randKeyBytes(&k); err != nil {
			return Key{}, fmt.Errorf("des: generating session key: %w", err)
		}
		k = fixWeak(FixParity(k))
		if !IsWeak(k) {
			return k, nil
		}
	}
}

// reverse7 reverses the low 7 bits of b (the key bits; parity excluded).
// Used by the fan-fold step of StringToKey, matching the Kerberos v4
// convention of bit-reversing every other 8-byte group.
func reverse7(b byte) byte {
	var out byte
	for i := 0; i < 7; i++ {
		out = out<<1 | (b>>uint(i))&1
	}
	return out
}

// StringToKey converts a user's password into a DES key — the "one-way
// function applied to the user's password" of the paper's Conventions
// section. The algorithm follows the Kerberos v4 scheme: the password is
// zero-padded to a multiple of 8 bytes and fan-folded with XOR, with every
// other 8-byte group bit-reversed; the folded value (with parity) then
// keys a CBC checksum over the padded password, and the checksum — with
// parity fixed and weak keys corrected — is the key.
//
// Realm and name salt the password so equal passwords in different realms
// yield different keys.
func StringToKey(password, salt string) Key {
	input := []byte(password + salt)
	if len(input) == 0 {
		input = []byte{0}
	}
	padded := Pad(input)

	var k Key
	for g := 0; g*BlockSize < len(padded); g++ {
		block := padded[g*BlockSize : (g+1)*BlockSize]
		if g%2 == 0 {
			for i := 0; i < BlockSize; i++ {
				k[i] ^= block[i] << 1 // shift key bits into the high 7
			}
		} else {
			// Odd groups are folded in reversed, byte- and bit-wise.
			for i := 0; i < BlockSize; i++ {
				k[i] ^= reverse7(block[BlockSize-1-i]) << 1
			}
		}
	}
	k = fixWeak(FixParity(k))

	c := NewCipher(k)
	sum := c.cbcChecksum(padded, k[:])
	clear(k[:]) // the fold buffer holds password-derived bits
	clear(padded)
	clear(input)
	var out Key
	binary.BigEndian.PutUint64(out[:], sum)
	return fixWeak(FixParity(out))
}

// cbcChecksum computes the DES-CBC checksum of data (already padded to
// whole blocks): the final ciphertext block of a CBC encryption under the
// cipher's key with the given IV.
func (c *Cipher) cbcChecksum(data, iv []byte) uint64 {
	prev := binary.BigEndian.Uint64(iv)
	for i := 0; i < len(data); i += BlockSize {
		p := binary.BigEndian.Uint64(data[i:])
		prev = c.crypt(p^prev, false)
	}
	return prev
}

// CBCChecksum computes the DES-CBC message authentication code of data
// under the cipher's key, using the key as IV (the Kerberos convention).
// data need not be block-aligned; a short final block is zero-extended in
// place, without allocating a padded copy.
func (c *Cipher) CBCChecksum(data []byte) uint64 {
	prev := binary.BigEndian.Uint64(c.key[:])
	n := len(data) / BlockSize * BlockSize
	for i := 0; i < n; i += BlockSize {
		p := binary.BigEndian.Uint64(data[i:])
		prev = c.crypt(p^prev, false)
	}
	if n < len(data) {
		var last [BlockSize]byte
		copy(last[:], data[n:])
		prev = c.crypt(binary.BigEndian.Uint64(last[:])^prev, false)
	}
	return prev
}

// CBCChecksum computes the DES-CBC message authentication code of data
// under key, reusing key's cached schedule.
func CBCChecksum(key Key, data []byte) uint64 {
	return sched.For(key).CBCChecksum(data)
}

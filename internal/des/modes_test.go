package des

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func randomKeyT(t testing.TB) Key {
	t.Helper()
	k, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestModesRoundTrip checks that every mode decrypts what it encrypted.
func TestModesRoundTrip(t *testing.T) {
	key := randomKeyT(t)
	c := NewCipher(key)
	iv := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for _, mode := range []Mode{ModeECB, ModeCBC, ModePCBC} {
		for _, blocks := range []int{1, 2, 7, 64} {
			src := make([]byte, blocks*BlockSize)
			if _, err := rand.Read(src); err != nil {
				t.Fatal(err)
			}
			ct := make([]byte, len(src))
			if err := c.Encrypt(mode, ct, src, iv); err != nil {
				t.Fatalf("%v encrypt: %v", mode, err)
			}
			if bytes.Equal(ct, src) {
				t.Fatalf("%v: ciphertext equals plaintext", mode)
			}
			pt := make([]byte, len(src))
			if err := c.Decrypt(mode, pt, ct, iv); err != nil {
				t.Fatalf("%v decrypt: %v", mode, err)
			}
			if !bytes.Equal(pt, src) {
				t.Errorf("%v with %d blocks: round trip mismatch", mode, blocks)
			}
		}
	}
}

// TestModeInputValidation checks block alignment and IV length errors.
func TestModeInputValidation(t *testing.T) {
	c := NewCipher(randomKeyT(t))
	iv := make([]byte, 8)
	if err := c.EncryptCBC(make([]byte, 9), make([]byte, 9), iv); err == nil {
		t.Error("unaligned input accepted")
	}
	if err := c.EncryptCBC(make([]byte, 8), make([]byte, 8), iv[:4]); err == nil {
		t.Error("short IV accepted")
	}
	if err := c.EncryptPCBC(make([]byte, 4), make([]byte, 8), iv); err == nil {
		t.Error("short dst accepted")
	}
	if err := c.Encrypt(Mode(99), nil, nil, nil); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := c.Decrypt(Mode(99), nil, nil, nil); err == nil {
		t.Error("unknown mode accepted for decrypt")
	}
}

// TestCBCErrorPropagationIsLocal reproduces the §2.2 contrast: in CBC a
// single corrupted ciphertext block garbles only that block and the next
// one after decryption.
func TestCBCErrorPropagationIsLocal(t *testing.T) {
	key := randomKeyT(t)
	c := NewCipher(key)
	iv := make([]byte, 8)
	const blocks = 16
	src := bytes.Repeat([]byte{0xAA}, blocks*BlockSize)
	ct := make([]byte, len(src))
	if err := c.EncryptCBC(ct, src, iv); err != nil {
		t.Fatal(err)
	}
	ct[3*BlockSize] ^= 0x01 // corrupt block 3
	pt := make([]byte, len(src))
	if err := c.DecryptCBC(pt, ct, iv); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < blocks; b++ {
		got := pt[b*BlockSize : (b+1)*BlockSize]
		want := src[b*BlockSize : (b+1)*BlockSize]
		damaged := !bytes.Equal(got, want)
		switch b {
		case 3, 4:
			if !damaged {
				t.Errorf("CBC: block %d should be damaged", b)
			}
		default:
			if damaged {
				t.Errorf("CBC: block %d damaged; corruption not local", b)
			}
		}
	}
}

// TestPCBCErrorPropagation reproduces the property the paper relies on:
// in PCBC a single corrupted block propagates "throughout the message",
// rendering the entire tail useless.
func TestPCBCErrorPropagation(t *testing.T) {
	key := randomKeyT(t)
	c := NewCipher(key)
	iv := make([]byte, 8)
	const blocks = 16
	src := bytes.Repeat([]byte{0x55}, blocks*BlockSize)
	ct := make([]byte, len(src))
	if err := c.EncryptPCBC(ct, src, iv); err != nil {
		t.Fatal(err)
	}
	ct[3*BlockSize+5] ^= 0x80
	pt := make([]byte, len(src))
	if err := c.DecryptPCBC(pt, ct, iv); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		if !bytes.Equal(pt[b*BlockSize:(b+1)*BlockSize], src[b*BlockSize:(b+1)*BlockSize]) {
			t.Errorf("PCBC: block %d before corruption damaged", b)
		}
	}
	// Every block from the corruption to the end must be garbled (each
	// with probability 1-2^-64; a clean block indicates broken chaining).
	for b := 3; b < blocks; b++ {
		if bytes.Equal(pt[b*BlockSize:(b+1)*BlockSize], src[b*BlockSize:(b+1)*BlockSize]) {
			t.Errorf("PCBC: block %d survived corruption; error did not propagate", b)
		}
	}
}

// TestPCBCRoundTripProperty is a property test over arbitrary messages.
func TestPCBCRoundTripProperty(t *testing.T) {
	key := randomKeyT(t)
	c := NewCipher(key)
	f := func(data []byte, iv [8]byte) bool {
		src := Pad(data)
		if len(src) == 0 {
			src = make([]byte, BlockSize)
		}
		ct := make([]byte, len(src))
		if err := c.EncryptPCBC(ct, src, iv[:]); err != nil {
			return false
		}
		pt := make([]byte, len(src))
		if err := c.DecryptPCBC(pt, ct, iv[:]); err != nil {
			return false
		}
		return bytes.Equal(pt, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPad(t *testing.T) {
	for n, want := range map[int]int{0: 0, 1: 8, 7: 8, 8: 8, 9: 16, 16: 16} {
		if got := len(Pad(make([]byte, n))); got != want {
			t.Errorf("Pad(%d bytes) has length %d, want %d", n, got, want)
		}
	}
	// Pad must copy, never alias.
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	p := Pad(data)
	p[0] = 99
	if data[0] == 99 {
		t.Error("Pad aliased its input")
	}
}

func TestModeString(t *testing.T) {
	if ModeECB.String() != "ECB" || ModeCBC.String() != "CBC" || ModePCBC.String() != "PCBC" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() != "unknown-mode" {
		t.Error("unknown mode name wrong")
	}
}

func BenchmarkModes(b *testing.B) {
	key := Key{0x13, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1}
	c := NewCipher(key)
	iv := make([]byte, 8)
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	for _, mode := range []Mode{ModeECB, ModeCBC, ModePCBC} {
		b.Run(mode.String(), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if err := c.Encrypt(mode, dst, src, iv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package des

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// bsCryptLanes runs the bitsliced core over len(in) lanes (≤ 64), lane i
// keyed by keys[i], and returns the per-lane outputs. It is the test
// harness around the transpose–crypt–transpose sequence batch.go drives.
func bsCryptLanes(keys []Key, in [][8]byte, decrypt bool) [][8]byte {
	var planes, kp [64]uint64
	for i := range in {
		planes[i] = binary.BigEndian.Uint64(in[i][:])
	}
	transpose64(&planes)
	for i, k := range keys {
		kp[i] = bsPackKey(k)
	}
	transpose64(&kp)
	bsCrypt(&planes, &kp, decrypt)
	transpose64(&planes)
	out := make([][8]byte, len(in))
	for i := range out {
		binary.BigEndian.PutUint64(out[i][:], planes[i])
	}
	return out
}

// TestTranspose64 checks the bit-matrix transpose against a naive bit
// scatter and that it is an involution.
func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, orig, naive [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
	}
	orig = a
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			bit := orig[r] >> uint(63-c) & 1
			naive[c] |= bit << uint(63-r)
		}
	}
	transpose64(&a)
	if a != naive {
		t.Fatal("transpose64 disagrees with the naive bit scatter")
	}
	transpose64(&a)
	if a != orig {
		t.Fatal("transpose64 is not an involution")
	}
}

// TestBsSubkeyIdx checks the relabeled key schedule: for random keys,
// every subkey bit selected through bsSubkeyIdx must equal the bit the
// scalar key expansion computed.
func TestBsSubkeyIdx(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 64; trial++ {
		var k Key
		rng.Read(k[:])
		c := NewCipher(k)
		k64 := binary.BigEndian.Uint64(k[:])
		for r := 0; r < 16; r++ {
			for i := 0; i < 48; i++ {
				want := c.subkeys[r] >> uint(47-i) & 1
				got := k64 >> uint(63-bsSubkeyIdx[r][i]) & 1
				if got != want {
					t.Fatalf("key %x round %d subkey bit %d: schedule says plane %d (bit %d), want %d",
						k, r, i, bsSubkeyIdx[r][i], got, want)
				}
			}
		}
	}
}

// TestBitsliceKnownVectors runs the published DES known-answer vectors
// (the same ones TestDESKnownVectors uses) through a single bitslice
// lane, both directions.
func TestBitsliceKnownVectors(t *testing.T) {
	vectors := []struct{ key, plain, cipher string }{
		{"133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"},
		{"0e329232ea6d0d73", "8787878787878787", "0000000000000000"},
		{"0123456789abcdef", "4e6f772069732074", "3fa40e8a984d4815"},
		{"0101010101010101", "0000000000000000", "8ca64de9c1b123a7"},
		{"fedcba9876543210", "0123456789abcdef", "ed39d950fa74bcc4"},
	}
	for _, v := range vectors {
		key := keyFrom(mustHex(t, v.key))
		var plain, cipher [8]byte
		copy(plain[:], mustHex(t, v.plain))
		copy(cipher[:], mustHex(t, v.cipher))
		enc := bsCryptLanes([]Key{key}, [][8]byte{plain}, false)
		if enc[0] != cipher {
			t.Errorf("bitslice encrypt key %s plain %s: got %x, want %s", v.key, v.plain, enc[0], v.cipher)
		}
		dec := bsCryptLanes([]Key{key}, [][8]byte{cipher}, true)
		if dec[0] != plain {
			t.Errorf("bitslice decrypt key %s cipher %s: got %x, want %s", v.key, v.cipher, dec[0], v.plain)
		}
	}
}

// TestBitsliceMatchesScalar is the differential test of the tentpole: for
// every batch size 1..64, random per-lane keys (weak and semi-weak keys
// included) and random blocks, the bitsliced core must produce byte-for-
// byte the scalar core's output in both directions, and lanes beyond the
// fill must not perturb the live ones.
func TestBitsliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= bsLanes; n++ {
		keys := make([]Key, n)
		in := make([][8]byte, n)
		for i := range keys {
			switch {
			case i%17 == 5:
				// Exercise weak and semi-weak keys too: the cipher must
				// agree on them even though key generation avoids them.
				keys[i] = Key(weakKeys[rng.Intn(len(weakKeys))])
			default:
				rng.Read(keys[i][:])
				keys[i] = FixParity(keys[i])
			}
			rng.Read(in[i][:])
		}
		for _, decrypt := range []bool{false, true} {
			got := bsCryptLanes(keys, in, decrypt)
			for i := range got {
				var want [8]byte
				c := NewCipher(keys[i])
				if decrypt {
					c.DecryptBlock(want[:], in[i][:])
				} else {
					c.EncryptBlock(want[:], in[i][:])
				}
				if got[i] != want {
					t.Fatalf("n=%d lane %d decrypt=%v key %x block %x: bitslice %x, scalar %x",
						n, i, decrypt, keys[i], in[i], got[i], want)
				}
			}
		}
	}
}

// TestBitsliceRoundTrip encrypts and decrypts 64 full lanes and checks
// the round trip is the identity.
func TestBitsliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := make([]Key, bsLanes)
	in := make([][8]byte, bsLanes)
	for i := range keys {
		rng.Read(keys[i][:])
		rng.Read(in[i][:])
	}
	ct := bsCryptLanes(keys, in, false)
	pt := bsCryptLanes(keys, ct, true)
	for i := range pt {
		if pt[i] != in[i] {
			t.Fatalf("lane %d: round trip %x -> %x -> %x", i, in[i], ct[i], pt[i])
		}
	}
}

// BenchmarkScalarDES is the scalar core's per-block cost, the baseline
// for BenchmarkBitsliceDES.
func BenchmarkScalarDES(b *testing.B) {
	var k Key
	rand.New(rand.NewSource(5)).Read(k[:])
	c := NewCipher(FixParity(k))
	var buf [8]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.EncryptBlock(buf[:], buf[:])
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/block")
}

// BenchmarkBitsliceDES is the bitsliced core's per-block cost at full
// fill: one pass of 64 blocks, including the data transposes in and out
// (the key planes are built once, as batch.go does per batch).
func BenchmarkBitsliceDES(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var planes, kp [64]uint64
	for i := range planes {
		planes[i] = rng.Uint64()
		kp[i] = rng.Uint64()
	}
	transpose64(&kp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		transpose64(&planes)
		bsCrypt(&planes, &kp, false)
		transpose64(&planes)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bsLanes), "ns/block")
}

package des

import (
	"bytes"
	"math/rand"
	"testing"
)

// forceBitslice drops the batch threshold so even one-lane batches run
// the bitsliced engine, restoring it when the test ends.
func forceBitslice(t *testing.T) {
	t.Helper()
	old := bsBatchMin
	bsBatchMin = 1
	t.Cleanup(func() { bsBatchMin = old })
}

func randomSealReqs(rng *rand.Rand, n int) []SealRequest {
	reqs := make([]SealRequest, n)
	for i := range reqs {
		rng.Read(reqs[i].Key[:])
		reqs[i].Key = FixParity(reqs[i].Key)
		// Ragged lengths, including empty and non-block-aligned.
		pt := make([]byte, rng.Intn(101))
		rng.Read(pt)
		reqs[i].Plaintext = pt
	}
	return reqs
}

// TestSealBatchMatchesSeal checks, for every batch size 1..64 on the
// bitsliced engine, that SealBatch output is byte-identical to Seal's.
func TestSealBatchMatchesSeal(t *testing.T) {
	forceBitslice(t)
	rng := rand.New(rand.NewSource(10))
	for n := 1; n <= bsLanes; n++ {
		reqs := randomSealReqs(rng, n)
		SealBatch(reqs)
		for i := range reqs {
			want := Seal(reqs[i].Key, reqs[i].Plaintext)
			if !bytes.Equal(reqs[i].Sealed, want) {
				t.Fatalf("n=%d lane %d: SealBatch %x, Seal %x", n, i, reqs[i].Sealed, want)
			}
		}
	}
}

// TestSealBatchScalarFallback checks the thin-batch path produces the
// same bytes as the bitsliced one.
func TestSealBatchScalarFallback(t *testing.T) {
	old := bsBatchMin
	bsBatchMin = 1 << 20
	defer func() { bsBatchMin = old }()
	rng := rand.New(rand.NewSource(11))
	reqs := randomSealReqs(rng, 8)
	SealBatch(reqs)
	for i := range reqs {
		want := Seal(reqs[i].Key, reqs[i].Plaintext)
		if !bytes.Equal(reqs[i].Sealed, want) {
			t.Fatalf("lane %d: fallback SealBatch %x, Seal %x", i, reqs[i].Sealed, want)
		}
	}
}

// TestSealBatchChunks checks batches larger than the lane count are
// split and every chunk still seals correctly.
func TestSealBatchChunks(t *testing.T) {
	forceBitslice(t)
	rng := rand.New(rand.NewSource(12))
	reqs := randomSealReqs(rng, 3*bsLanes/2)
	SealBatch(reqs)
	for i := range reqs {
		want := Seal(reqs[i].Key, reqs[i].Plaintext)
		if !bytes.Equal(reqs[i].Sealed, want) {
			t.Fatalf("lane %d: SealBatch %x, Seal %x", i, reqs[i].Sealed, want)
		}
	}
}

// TestUnsealBatch checks batched unsealing across sizes: valid lanes
// recover their plaintext, corrupted or truncated lanes fail with
// ErrIntegrity without disturbing their neighbours.
func TestUnsealBatch(t *testing.T) {
	forceBitslice(t)
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= bsLanes; n++ {
		sreqs := randomSealReqs(rng, n)
		SealBatch(sreqs)
		ureqs := make([]UnsealRequest, n)
		for i := range ureqs {
			ureqs[i].Key = sreqs[i].Key
			ureqs[i].Ciphertext = sreqs[i].Sealed
		}
		// Sabotage a few lanes: flipped byte, truncation, wrong key.
		bad := map[int]bool{}
		if n >= 2 {
			ureqs[1].Ciphertext = append([]byte(nil), ureqs[1].Ciphertext...)
			ureqs[1].Ciphertext[len(ureqs[1].Ciphertext)-1] ^= 0x80
			bad[1] = true
		}
		if n >= 5 {
			ureqs[4].Ciphertext = ureqs[4].Ciphertext[:4]
			bad[4] = true
		}
		if n >= 9 {
			rng.Read(ureqs[8].Key[:])
			bad[8] = true
		}
		UnsealBatch(ureqs)
		for i := range ureqs {
			if bad[i] {
				if ureqs[i].Err == nil || ureqs[i].Plaintext != nil {
					t.Fatalf("n=%d lane %d: corrupt lane unsealed: err=%v", n, i, ureqs[i].Err)
				}
				continue
			}
			if ureqs[i].Err != nil {
				t.Fatalf("n=%d lane %d: unexpected error %v", n, i, ureqs[i].Err)
			}
			if !bytes.Equal(ureqs[i].Plaintext, sreqs[i].Plaintext) {
				t.Fatalf("n=%d lane %d: got %x, want %x", n, i, ureqs[i].Plaintext, sreqs[i].Plaintext)
			}
		}
	}
}

// TestCBCChecksumBatchMatchesScalar checks batched CBC MACs across
// sizes and ragged lengths against the scalar CBCChecksum.
func TestCBCChecksumBatchMatchesScalar(t *testing.T) {
	forceBitslice(t)
	rng := rand.New(rand.NewSource(14))
	for n := 1; n <= bsLanes; n++ {
		reqs := make([]ChecksumRequest, n)
		for i := range reqs {
			rng.Read(reqs[i].Key[:])
			reqs[i].Key = FixParity(reqs[i].Key)
			data := make([]byte, rng.Intn(101))
			rng.Read(data)
			reqs[i].Data = data
		}
		CBCChecksumBatch(reqs)
		for i := range reqs {
			if want := CBCChecksum(reqs[i].Key, reqs[i].Data); reqs[i].Sum != want {
				t.Fatalf("n=%d lane %d len %d: batch %016x, scalar %016x",
					n, i, len(reqs[i].Data), reqs[i].Sum, want)
			}
		}
	}
}

// TestSealBatchAllocs guards SealBatch's allocation budget: one output
// buffer per request and nothing else — the planes, chains, and key
// schedules all come from pooled scratch.
func TestSealBatchAllocs(t *testing.T) {
	forceBitslice(t)
	rng := rand.New(rand.NewSource(15))
	reqs := randomSealReqs(rng, bsLanes)
	SealBatch(reqs) // warm the scratch pool
	allocs := testing.AllocsPerRun(100, func() {
		SealBatch(reqs)
	})
	if allocs > float64(bsLanes) {
		t.Fatalf("SealBatch of %d: %.1f allocs/run, want <= %d (one output buffer per request)",
			bsLanes, allocs, bsLanes)
	}
}

// TestUnsealBatchAllocs guards UnsealBatch's allocation budget: one
// plaintext buffer per request and nothing else.
func TestUnsealBatchAllocs(t *testing.T) {
	forceBitslice(t)
	rng := rand.New(rand.NewSource(16))
	sreqs := randomSealReqs(rng, bsLanes)
	SealBatch(sreqs)
	ureqs := make([]UnsealRequest, bsLanes)
	for i := range ureqs {
		ureqs[i].Key = sreqs[i].Key
		ureqs[i].Ciphertext = sreqs[i].Sealed
	}
	UnsealBatch(ureqs)
	allocs := testing.AllocsPerRun(100, func() {
		UnsealBatch(ureqs)
	})
	if allocs > float64(bsLanes) {
		t.Fatalf("UnsealBatch of %d: %.1f allocs/run, want <= %d (one plaintext buffer per request)",
			bsLanes, allocs, bsLanes)
	}
}

// TestCBCChecksumBatchAllocs guards the zero-allocation batch MAC path.
func TestCBCChecksumBatchAllocs(t *testing.T) {
	forceBitslice(t)
	rng := rand.New(rand.NewSource(17))
	reqs := make([]ChecksumRequest, bsLanes)
	for i := range reqs {
		rng.Read(reqs[i].Key[:])
		data := make([]byte, 40)
		rng.Read(data)
		reqs[i].Data = data
	}
	CBCChecksumBatch(reqs)
	allocs := testing.AllocsPerRun(100, func() {
		CBCChecksumBatch(reqs)
	})
	if allocs != 0 {
		t.Fatalf("CBCChecksumBatch of %d: %.1f allocs/run, want 0", bsLanes, allocs)
	}
}

// TestBatchScratchWiped checks the keyzero contract on pooled scratch:
// after a batch completes, released scratch holds no key or plaintext
// planes.
func TestBatchScratchWiped(t *testing.T) {
	forceBitslice(t)
	rng := rand.New(rand.NewSource(18))
	reqs := randomSealReqs(rng, bsLanes)
	SealBatch(reqs)
	// The pool is not deterministic in general, but in a single
	// goroutine Get returns the just-Put scratch.
	st := bsScratchPool.Get().(*bsScratch)
	defer bsScratchPool.Put(st)
	if *st != (bsScratch{}) {
		t.Fatal("released bitslice scratch still holds data; key/plaintext planes must be wiped")
	}
}

// BenchmarkSealBatch64 measures sealing 64 independent 64-byte
// plaintexts under distinct keys through the bitsliced engine, the shape
// of a KDC flushing a full gather window; per-message cost is the
// comparable number to BenchmarkSeal's scalar path.
func BenchmarkSealBatch64(b *testing.B) {
	old := bsBatchMin
	bsBatchMin = 1
	defer func() { bsBatchMin = old }()
	rng := rand.New(rand.NewSource(19))
	reqs := make([]SealRequest, bsLanes)
	for i := range reqs {
		rng.Read(reqs[i].Key[:])
		reqs[i].Key = FixParity(reqs[i].Key)
		pt := make([]byte, 64)
		rng.Read(pt)
		reqs[i].Plaintext = pt
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SealBatch(reqs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bsLanes), "ns/msg")
}

// BenchmarkSealSerial64 is the scalar baseline for BenchmarkSealBatch64:
// the same 64 messages sealed one at a time.
func BenchmarkSealSerial64(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	reqs := make([]SealRequest, bsLanes)
	for i := range reqs {
		rng.Read(reqs[i].Key[:])
		reqs[i].Key = FixParity(reqs[i].Key)
		pt := make([]byte, 64)
		rng.Read(pt)
		reqs[i].Plaintext = pt
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			reqs[j].Sealed = Seal(reqs[j].Key, reqs[j].Plaintext)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bsLanes), "ns/msg")
}

package des

import "encoding/binary"

// The paper (§2.2): "Several methods of encryption are provided, with
// tradeoffs between speed and security. An extension to the DES Cypher
// Block Chaining (CBC) mode, called the Propagating CBC mode, is also
// provided. In CBC, an error is propagated only through the current block
// of the cipher, whereas in PCBC, the error is propagated throughout the
// message."

// Mode selects one of the encryption library's block modes.
type Mode int

const (
	// ModeECB is electronic codebook: fastest, no chaining, weakest.
	ModeECB Mode = iota
	// ModeCBC is cipher block chaining: an error affects two blocks.
	ModeCBC
	// ModePCBC is propagating CBC: an error garbles the whole tail of
	// the message, rendering it useless — the property Kerberos wants
	// for authenticated messages.
	ModePCBC
)

// String returns the mode's conventional name.
func (m Mode) String() string {
	switch m {
	case ModeECB:
		return "ECB"
	case ModeCBC:
		return "CBC"
	case ModePCBC:
		return "PCBC"
	default:
		return "unknown-mode"
	}
}

// EncryptECB encrypts src into dst block by block. len(src) must be a
// multiple of BlockSize and dst must be at least as long.
func (c *Cipher) EncryptECB(dst, src []byte) error {
	if err := checkBlocks(dst, src); err != nil {
		return err
	}
	for i := 0; i < len(src); i += BlockSize {
		c.EncryptBlock(dst[i:i+BlockSize], src[i:i+BlockSize])
	}
	return nil
}

// DecryptECB decrypts src into dst block by block.
func (c *Cipher) DecryptECB(dst, src []byte) error {
	if err := checkBlocks(dst, src); err != nil {
		return err
	}
	for i := 0; i < len(src); i += BlockSize {
		c.DecryptBlock(dst[i:i+BlockSize], src[i:i+BlockSize])
	}
	return nil
}

// EncryptCBC encrypts src into dst in cipher block chaining mode with the
// given 8-byte initialization vector.
func (c *Cipher) EncryptCBC(dst, src, iv []byte) error {
	if err := checkBlocks(dst, src); err != nil {
		return err
	}
	if len(iv) != BlockSize {
		return ErrInput
	}
	prev := binary.BigEndian.Uint64(iv)
	for i := 0; i < len(src); i += BlockSize {
		p := binary.BigEndian.Uint64(src[i:])
		ct := c.crypt(p^prev, false)
		binary.BigEndian.PutUint64(dst[i:], ct)
		prev = ct
	}
	return nil
}

// DecryptCBC decrypts src into dst in cipher block chaining mode.
func (c *Cipher) DecryptCBC(dst, src, iv []byte) error {
	if err := checkBlocks(dst, src); err != nil {
		return err
	}
	if len(iv) != BlockSize {
		return ErrInput
	}
	prev := binary.BigEndian.Uint64(iv)
	for i := 0; i < len(src); i += BlockSize {
		ct := binary.BigEndian.Uint64(src[i:])
		binary.BigEndian.PutUint64(dst[i:], c.crypt(ct, true)^prev)
		prev = ct
	}
	return nil
}

// EncryptPCBC encrypts src into dst in propagating CBC mode: each input
// block is whitened with both the previous plaintext and the previous
// ciphertext block, so a transmission error propagates through the rest
// of the message.
func (c *Cipher) EncryptPCBC(dst, src, iv []byte) error {
	if err := checkBlocks(dst, src); err != nil {
		return err
	}
	if len(iv) != BlockSize {
		return ErrInput
	}
	chain := binary.BigEndian.Uint64(iv) // P(i-1) XOR C(i-1); IV seeds it
	for i := 0; i < len(src); i += BlockSize {
		p := binary.BigEndian.Uint64(src[i:])
		ct := c.crypt(p^chain, false)
		binary.BigEndian.PutUint64(dst[i:], ct)
		chain = p ^ ct
	}
	return nil
}

// DecryptPCBC decrypts src into dst in propagating CBC mode.
func (c *Cipher) DecryptPCBC(dst, src, iv []byte) error {
	if err := checkBlocks(dst, src); err != nil {
		return err
	}
	if len(iv) != BlockSize {
		return ErrInput
	}
	chain := binary.BigEndian.Uint64(iv)
	for i := 0; i < len(src); i += BlockSize {
		ct := binary.BigEndian.Uint64(src[i:])
		p := c.crypt(ct, true) ^ chain
		binary.BigEndian.PutUint64(dst[i:], p)
		chain = p ^ ct
	}
	return nil
}

// Encrypt runs the selected mode over whole blocks. ECB ignores iv.
func (c *Cipher) Encrypt(mode Mode, dst, src, iv []byte) error {
	switch mode {
	case ModeECB:
		return c.EncryptECB(dst, src)
	case ModeCBC:
		return c.EncryptCBC(dst, src, iv)
	case ModePCBC:
		return c.EncryptPCBC(dst, src, iv)
	default:
		return ErrInput
	}
}

// Decrypt runs the selected mode over whole blocks. ECB ignores iv.
func (c *Cipher) Decrypt(mode Mode, dst, src, iv []byte) error {
	switch mode {
	case ModeECB:
		return c.DecryptECB(dst, src)
	case ModeCBC:
		return c.DecryptCBC(dst, src, iv)
	case ModePCBC:
		return c.DecryptPCBC(dst, src, iv)
	default:
		return ErrInput
	}
}

// Pad returns data zero-padded to a whole number of blocks, always in a
// fresh slice. Kerberos messages carry their own length, so zero padding
// is unambiguous.
func Pad(data []byte) []byte {
	n := len(data)
	padded := make([]byte, (n+BlockSize-1)/BlockSize*BlockSize)
	copy(padded, data)
	return padded
}

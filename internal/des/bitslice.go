package des

// Bitsliced DES core: 64 independent blocks, each under its own key, are
// encrypted in one pass. The batch is held "sideways" — plane i is a
// uint64 whose bit L carries bit i+1 (FIPS numbering, MSB first) of lane
// L's block — so every boolean operation of the cipher acts on all 64
// lanes at once.
//
// In this representation the bit-shuffling that dominates a scalar DES —
// IP, E, P, FP, PC-1, the key rotations, PC-2 — costs nothing: a
// permutation of bits is a relabeling of planes. Only the S-boxes remain,
// and those run as boolean circuits (sbox_bitslice.go, generated from the
// FIPS tables) over the planes. The key schedule collapses the same way:
// PC-1, the per-round rotations, and PC-2 compose into bsSubkeyIdx, a
// static table mapping each of the 768 subkey bits straight to a key-bit
// plane, so per-lane keys need one 64×64 transpose and nothing else.
//
// The transposes in and out are the price of admission (~one boolean op
// per block bit); they amortize once a pass carries more than a handful
// of blocks. batch.go decides when that is worth it.

// bsLanes is the lane count of the bitsliced core: one bit of a uint64
// plane per lane.
const bsLanes = 64

// bsSubkeyIdx[r][i] is the plane index (0-based from the key's most
// significant bit) of the key bit that becomes bit i+1 of round r's
// 48-bit subkey. It composes PC-1, the cumulative left rotations of the
// C and D halves, and PC-2 into a single relabeling, shared by all keys.
var bsSubkeyIdx [16][48]uint8

func init() {
	// cd[p] is the 0-based key-bit index sitting at CD position p before
	// any rotation (PC-1).
	var cd [56]byte
	for p := 0; p < 56; p++ {
		cd[p] = permutedChoice1[p] - 1
	}
	rot := 0
	for r := 0; r < 16; r++ {
		rot += int(keyRotations[r])
		for i := 0; i < 48; i++ {
			// Position in CD selected by PC-2, unrotated within its half:
			// a left rotation by rot means position p reads from p+rot.
			p := int(permutedChoice2[i]) - 1
			var q int
			if p < 28 {
				q = (p + rot) % 28
			} else {
				q = 28 + (p-28+rot)%28
			}
			bsSubkeyIdx[r][i] = cd[q]
		}
	}
}

// transpose64 transposes a, viewed as a 64×64 bit matrix with a[r]'s most
// significant bit as column 0. It is its own inverse. (The recursive
// block-swap formulation of Hacker's Delight §7-3, six levels of masked
// exchanges.)
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000ffffffff)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k] ^ (a[k+j] >> uint(j))) & m
			a[k] ^= t
			a[k+j] ^= t << uint(j)
		}
		m ^= m << uint(j>>1)
	}
}

// bsCrypt runs the DES cipher over the 64 lanes of p, each lane keyed by
// its own column of the key planes kp. p holds bit planes on entry (plane
// i = block bit i+1 across lanes) and bit planes of the result on exit;
// kp is the transpose of the lanes' 8-byte keys, as built by bsLoadKeys.
func bsCrypt(p *[64]uint64, kp *[64]uint64, decrypt bool) {
	// The initial permutation is a relabeling: round state plane i of L
	// is input plane IP(i).
	var a, b [32]uint64
	for i := 0; i < 32; i++ {
		a[i] = p[initialPermutation[i]-1]
		b[i] = p[initialPermutation[32+i]-1]
	}
	// Each bsFeistel XORs f(R) into L, making it the next round's R; the
	// pointer swap is the Feistel crossover.
	l, r := &a, &b
	if decrypt {
		for i := 15; i >= 0; i-- {
			bsFeistel(l, r, kp, &bsSubkeyIdx[i])
			l, r = r, l
		}
	} else {
		for i := 0; i < 16; i++ {
			bsFeistel(l, r, kp, &bsSubkeyIdx[i])
			l, r = r, l
		}
	}
	// Pre-output swap and final permutation, again as relabelings: the
	// pre-output's bits 1..32 come from R, 33..64 from L.
	for i := 0; i < 64; i++ {
		f := int(finalPermutation[i]) - 1
		if f < 32 {
			p[i] = r[f]
		} else {
			p[i] = l[f-32]
		}
	}
}

// bsPackKey packs a key into the lane word a caller stores before
// transposing the lane keys into key planes. The packed word — and the
// planes made from it — are key material and must be wiped after use.
func bsPackKey(k Key) uint64 {
	return uint64(k[0])<<56 | uint64(k[1])<<48 | uint64(k[2])<<40 |
		uint64(k[3])<<32 | uint64(k[4])<<24 | uint64(k[5])<<16 |
		uint64(k[6])<<8 | uint64(k[7])
}

package des

import (
	"bytes"
	stddes "crypto/des"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func keyFrom(b []byte) Key {
	var k Key
	copy(k[:], b)
	return k
}

// TestDESKnownVectors checks the cipher core against published DES test
// vectors.
func TestDESKnownVectors(t *testing.T) {
	vectors := []struct{ key, plain, cipher string }{
		{"133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"},
		{"0e329232ea6d0d73", "8787878787878787", "0000000000000000"},
		{"0123456789abcdef", "4e6f772069732074", "3fa40e8a984d4815"},
		{"0101010101010101", "0000000000000000", "8ca64de9c1b123a7"},
		{"fedcba9876543210", "0123456789abcdef", "ed39d950fa74bcc4"},
	}
	for _, v := range vectors {
		c := NewCipher(keyFrom(mustHex(t, v.key)))
		got := make([]byte, 8)
		c.EncryptBlock(got, mustHex(t, v.plain))
		if hex.EncodeToString(got) != v.cipher {
			t.Errorf("key %s: encrypt(%s) = %x, want %s", v.key, v.plain, got, v.cipher)
		}
		back := make([]byte, 8)
		c.DecryptBlock(back, got)
		if hex.EncodeToString(back) != v.plain {
			t.Errorf("key %s: decrypt round trip = %x, want %s", v.key, back, v.plain)
		}
	}
}

// TestDESMatchesStdlib cross-validates our from-scratch implementation
// against the standard library's crypto/des over random keys and blocks.
func TestDESMatchesStdlib(t *testing.T) {
	f := func(key [8]byte, block [8]byte) bool {
		ours := NewCipher(key)
		std, err := stddes.NewCipher(key[:])
		if err != nil {
			return false
		}
		a := make([]byte, 8)
		b := make([]byte, 8)
		ours.EncryptBlock(a, block[:])
		std.Encrypt(b, block[:])
		if !bytes.Equal(a, b) {
			return false
		}
		ours.DecryptBlock(a, a)
		return bytes.Equal(a, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWeakKeysSelfInverse verifies the defining property of the four weak
// keys: encryption is its own inverse.
func TestWeakKeysSelfInverse(t *testing.T) {
	block := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 4; i++ {
		k := Key(weakKeys[i])
		c := NewCipher(k)
		out := make([]byte, 8)
		c.EncryptBlock(out, block)
		c.EncryptBlock(out, out)
		if !bytes.Equal(out, block) {
			t.Errorf("weak key %x: double encryption is not identity", k)
		}
	}
}

// TestSemiWeakPairs verifies that each semi-weak key pair inverts the
// other's encryption.
func TestSemiWeakPairs(t *testing.T) {
	block := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04}
	for i := 4; i < len(weakKeys); i += 2 {
		c1 := NewCipher(Key(weakKeys[i]))
		c2 := NewCipher(Key(weakKeys[i+1]))
		out := make([]byte, 8)
		c1.EncryptBlock(out, block)
		c2.EncryptBlock(out, out)
		if !bytes.Equal(out, block) {
			t.Errorf("semi-weak pair %d/%d does not invert", i, i+1)
		}
	}
}

func TestNewCipherBytesLength(t *testing.T) {
	if _, err := NewCipherBytes(make([]byte, 7)); err == nil {
		t.Error("7-byte key accepted")
	}
	if _, err := NewCipherBytes(make([]byte, 8)); err != nil {
		t.Errorf("8-byte key rejected: %v", err)
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c := NewCipher(Key{0x13, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1})
	buf := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.EncryptBlock(buf, buf)
	}
}

func BenchmarkSealUnseal1K(b *testing.B) {
	key, _ := NewRandomKey()
	msg := bytes.Repeat([]byte("athena!!"), 128)
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		sealed := Seal(key, msg)
		if _, err := Unseal(key, sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFastMatchesReference cross-checks the table-driven cipher core
// against the bit-by-bit transcription of FIPS 46.
func TestFastMatchesReference(t *testing.T) {
	f := func(key [8]byte, block uint64) bool {
		c := NewCipher(Key(key))
		return c.cryptFast(block, false) == c.cryptReference(block, false) &&
			c.cryptFast(block, true) == c.cryptReference(block, true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// BenchmarkAblationFastVsReference quantifies the table-driven core
// against the bit-by-bit FIPS transcription — the implementation choice
// that sets the cost of every protocol operation.
func BenchmarkAblationFastVsReference(b *testing.B) {
	c := NewCipher(Key{0x13, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1})
	b.Run("fast-tables", func(b *testing.B) {
		b.SetBytes(8)
		v := uint64(0x0123456789abcdef)
		for i := 0; i < b.N; i++ {
			v = c.cryptFast(v, false)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.SetBytes(8)
		v := uint64(0x0123456789abcdef)
		for i := 0; i < b.N; i++ {
			v = c.cryptReference(v, false)
		}
	})
}

// BenchmarkAblationSealOverhead separates the sealed-message envelope
// (length + keyed checksum + PCBC) from bare CBC encryption, pricing the
// integrity layer every protocol structure pays for.
func BenchmarkAblationSealOverhead(b *testing.B) {
	key, _ := NewRandomKey()
	c := NewCipher(key)
	msg := make([]byte, 1024)
	dst := make([]byte, 1024)
	b.Run("seal-pcbc-cksum", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			Seal(key, msg)
		}
	})
	b.Run("bare-cbc", func(b *testing.B) {
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			if err := c.EncryptCBC(dst, msg, key[:]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package des

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Batched sealed-message operations over the bitsliced core. A KDC under
// load holds many independent requests at once — each sealed under a
// different key — and the bitsliced cipher (bitslice.go) encrypts up to
// 64 such messages per pass. These entry points take a whole batch,
// decide whether the fill justifies the transpose overhead, and either
// drive the planes or fall back to the scalar path request by request.
//
// A bitsliced pass costs roughly the same regardless of how many lanes
// carry live data, so it beats the scalar core only when enough messages
// advance together: below bsBatchMin lanes the batch runs scalar. Both
// outcomes are counted (BatchCounters) so the KDC's metrics can show
// which engine is doing the work.
//
// Chaining stays in the block domain: each lane's PCBC or CBC state is a
// uint64 updated between passes, so only the cipher itself runs
// transposed. All scratch — key planes, data planes, chain values — is
// pooled and wiped on release; it is key and plaintext material, merely
// sliced sideways.

// SealRequest is one message of a SealBatch: a plaintext to seal under
// its own key. Sealed is set by the call, in a fresh buffer (the only
// per-request allocation), and holds exactly what Seal would produce.
type SealRequest struct {
	Key       Key
	Plaintext []byte
	Sealed    []byte
}

// UnsealRequest is one message of an UnsealBatch. On success Plaintext
// holds the recovered payload and Err is nil; any integrity failure
// leaves Plaintext nil and Err set to ErrIntegrity, exactly as Unseal
// would report it.
type UnsealRequest struct {
	Key        Key
	Ciphertext []byte
	Plaintext  []byte
	Err        error
}

// ChecksumRequest is one message of a CBCChecksumBatch: Sum is set to
// the DES-CBC message authentication code of Data under Key, identical
// to CBCChecksum's result.
type ChecksumRequest struct {
	Key  Key
	Data []byte
	Sum  uint64
}

// bsBatchMin is the lane count below which the batch entry points run
// the scalar path instead: a bitsliced pass costs about the same however
// many lanes are live (~36 scalar blocks' worth on the reference
// machine), so thin batches are faster block-at-a-time. Variable so
// tests can force either engine.
var bsBatchMin = 40

var (
	bitslicePassCount  atomic.Uint64
	scalarFallbackOpCt atomic.Uint64
)

// BatchCounters reports how the batch entry points have run since start:
// completed bitsliced passes, and individual requests served by the
// scalar fallback. The KDC exposes both through its metrics registry.
func BatchCounters() (bitslicePasses, scalarFallbackOps uint64) {
	return bitslicePassCount.Load(), scalarFallbackOpCt.Load()
}

// bsScratch is the reusable working set of one batch: lane keys and
// blocks (transposed in place into planes), per-lane chain state, and
// per-lane block counts. Released scratch is wiped before pooling.
type bsScratch struct {
	keys   [bsLanes]uint64
	planes [bsLanes]uint64
	chain  [bsLanes]uint64
	prev   [bsLanes]uint64
	blocks [bsLanes]int32
}

var bsScratchPool = sync.Pool{New: func() any { return new(bsScratch) }}

// release wipes the scratch — key planes, plaintext planes, and chain
// values are all secret-bearing — and returns it to the pool.
func (st *bsScratch) release() {
	*st = bsScratch{}
	bsScratchPool.Put(st)
}

// SealBatch seals every request's plaintext under its own key,
// encrypting up to 64 messages per bitsliced pass. Each request gets a
// fresh Sealed buffer byte-identical to what Seal would return.
//
//kerb:hotpath
func SealBatch(reqs []SealRequest) {
	for len(reqs) > bsLanes {
		sealLanes(reqs[:bsLanes])
		reqs = reqs[bsLanes:]
	}
	if len(reqs) > 0 {
		sealLanes(reqs)
	}
}

func sealLanes(reqs []SealRequest) {
	if len(reqs) < bsBatchMin {
		for i := range reqs {
			reqs[i].Sealed = Seal(reqs[i].Key, reqs[i].Plaintext)
		}
		scalarFallbackOpCt.Add(uint64(len(reqs)))
		return
	}
	st := bsScratchPool.Get().(*bsScratch)
	defer st.release()
	maxBlocks := 0
	for i := range reqs {
		buf := make([]byte, SealedLen(len(reqs[i].Plaintext)))
		binary.BigEndian.PutUint32(buf[0:4], uint32(len(reqs[i].Plaintext)))
		binary.BigEndian.PutUint32(buf[4:8], QuadChecksum(reqs[i].Key, reqs[i].Plaintext))
		copy(buf[sealHeaderLen:], reqs[i].Plaintext)
		reqs[i].Sealed = buf
		n := len(buf) / BlockSize
		st.blocks[i] = int32(n)
		if n > maxBlocks {
			maxBlocks = n
		}
		st.keys[i] = bsPackKey(reqs[i].Key)
		st.chain[i] = st.keys[i] // PCBC chains from the key as IV
	}
	transpose64(&st.keys)
	for b := 0; b < maxBlocks; b++ {
		for i := range reqs {
			if b < int(st.blocks[i]) {
				p := binary.BigEndian.Uint64(reqs[i].Sealed[b*BlockSize:])
				st.prev[i] = p
				st.planes[i] = p ^ st.chain[i]
			}
		}
		transpose64(&st.planes)
		bsCrypt(&st.planes, &st.keys, false)
		bitslicePassCount.Add(1)
		transpose64(&st.planes)
		for i := range reqs {
			if b < int(st.blocks[i]) {
				ct := st.planes[i]
				binary.BigEndian.PutUint64(reqs[i].Sealed[b*BlockSize:], ct)
				st.chain[i] = st.prev[i] ^ ct // P(i) XOR C(i)
			}
		}
	}
}

// UnsealBatch decrypts and verifies every request's sealed ciphertext
// under its own key, decrypting up to 64 messages per bitsliced pass.
// Per-request failures are independent: a corrupt lane gets ErrIntegrity
// while the rest of the batch proceeds.
//
//kerb:hotpath
func UnsealBatch(reqs []UnsealRequest) {
	for len(reqs) > bsLanes {
		unsealLanes(reqs[:bsLanes])
		reqs = reqs[bsLanes:]
	}
	if len(reqs) > 0 {
		unsealLanes(reqs)
	}
}

func unsealLanes(reqs []UnsealRequest) {
	if len(reqs) < bsBatchMin {
		for i := range reqs {
			reqs[i].Plaintext, reqs[i].Err = Unseal(reqs[i].Key, reqs[i].Ciphertext)
		}
		scalarFallbackOpCt.Add(uint64(len(reqs)))
		return
	}
	st := bsScratchPool.Get().(*bsScratch)
	defer st.release()
	maxBlocks := 0
	for i := range reqs {
		ct := reqs[i].Ciphertext
		reqs[i].Plaintext, reqs[i].Err = nil, nil
		st.blocks[i] = 0
		if len(ct) < sealHeaderLen || len(ct)%BlockSize != 0 {
			reqs[i].Err = ErrIntegrity
			continue
		}
		reqs[i].Plaintext = make([]byte, len(ct))
		n := len(ct) / BlockSize
		st.blocks[i] = int32(n)
		if n > maxBlocks {
			maxBlocks = n
		}
		st.keys[i] = bsPackKey(reqs[i].Key)
		st.chain[i] = st.keys[i]
	}
	transpose64(&st.keys)
	for b := 0; b < maxBlocks; b++ {
		for i := range reqs {
			if b < int(st.blocks[i]) {
				st.planes[i] = binary.BigEndian.Uint64(reqs[i].Ciphertext[b*BlockSize:])
			}
		}
		transpose64(&st.planes)
		bsCrypt(&st.planes, &st.keys, true)
		bitslicePassCount.Add(1)
		transpose64(&st.planes)
		for i := range reqs {
			if b < int(st.blocks[i]) {
				ct := binary.BigEndian.Uint64(reqs[i].Ciphertext[b*BlockSize:])
				p := st.planes[i] ^ st.chain[i]
				binary.BigEndian.PutUint64(reqs[i].Plaintext[b*BlockSize:], p)
				st.chain[i] = p ^ ct
			}
		}
	}
	// Structure checks, mirroring Unseal exactly.
	for i := range reqs {
		if st.blocks[i] == 0 {
			continue
		}
		buf := reqs[i].Plaintext
		n := binary.BigEndian.Uint32(buf[0:4])
		if int(n) > len(buf)-sealHeaderLen {
			reqs[i].Plaintext, reqs[i].Err = nil, ErrIntegrity
			continue
		}
		plaintext := buf[sealHeaderLen : sealHeaderLen+int(n)]
		if !ChecksumEqual(QuadChecksum(reqs[i].Key, plaintext), binary.BigEndian.Uint32(buf[4:8])) {
			reqs[i].Plaintext, reqs[i].Err = nil, ErrIntegrity
			continue
		}
		ok := true
		for _, b := range buf[sealHeaderLen+int(n):] {
			if b != 0 {
				ok = false
			}
		}
		if !ok {
			reqs[i].Plaintext, reqs[i].Err = nil, ErrIntegrity
			continue
		}
		reqs[i].Plaintext = plaintext
	}
}

// CBCChecksumBatch computes every request's DES-CBC message
// authentication code under its own key, up to 64 messages per
// bitsliced pass. Short trailing blocks are zero-extended, as
// CBCChecksum does.
//
//kerb:hotpath
func CBCChecksumBatch(reqs []ChecksumRequest) {
	for len(reqs) > bsLanes {
		checksumLanes(reqs[:bsLanes])
		reqs = reqs[bsLanes:]
	}
	if len(reqs) > 0 {
		checksumLanes(reqs)
	}
}

func checksumLanes(reqs []ChecksumRequest) {
	if len(reqs) < bsBatchMin {
		for i := range reqs {
			reqs[i].Sum = CBCChecksum(reqs[i].Key, reqs[i].Data)
		}
		scalarFallbackOpCt.Add(uint64(len(reqs)))
		return
	}
	st := bsScratchPool.Get().(*bsScratch)
	defer st.release()
	maxBlocks := 0
	for i := range reqs {
		n := (len(reqs[i].Data) + BlockSize - 1) / BlockSize
		st.blocks[i] = int32(n)
		if n > maxBlocks {
			maxBlocks = n
		}
		st.keys[i] = bsPackKey(reqs[i].Key)
		st.chain[i] = st.keys[i] // CBC chains from the key as IV
	}
	transpose64(&st.keys)
	for b := 0; b < maxBlocks; b++ {
		for i := range reqs {
			if b < int(st.blocks[i]) {
				data := reqs[i].Data
				var w uint64
				if (b+1)*BlockSize <= len(data) {
					w = binary.BigEndian.Uint64(data[b*BlockSize:])
				} else {
					var last [BlockSize]byte
					copy(last[:], data[b*BlockSize:])
					w = binary.BigEndian.Uint64(last[:])
				}
				st.planes[i] = w ^ st.chain[i]
			}
		}
		transpose64(&st.planes)
		bsCrypt(&st.planes, &st.keys, false)
		bitslicePassCount.Add(1)
		transpose64(&st.planes)
		for i := range reqs {
			if b < int(st.blocks[i]) {
				st.chain[i] = st.planes[i] // CBC: the MAC is the last ciphertext
			}
		}
	}
	for i := range reqs {
		reqs[i].Sum = st.chain[i]
	}
}

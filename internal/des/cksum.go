package des

import (
	"crypto/subtle"
	"encoding/binary"
)

// QuadChecksum is the keyed quadratic checksum used by Kerberos safe
// messages (§2.1 "safe messages": "authentication of each message, but do
// not care whether the content of the message is disclosed").
//
// Following the Kerberos v4 quad_cksum design, the data is processed as a
// sequence of 32-bit little-endian words through a quadratic congruential
// hash modulo the Mersenne prime 2³¹−1, seeded from the session key so
// that only the two key holders can produce or verify it. The result is a
// 32-bit checksum.
func QuadChecksum(key Key, data []byte) uint32 {
	const prime = 0x7fffffff // 2^31 - 1

	seed := binary.LittleEndian.Uint64(key[:])
	z := seed & prime
	z2 := (seed >> 32) & prime

	// Process whole 4-byte words with direct loads; the short trailing
	// word, if any, is zero-extended byte by byte.
	n := len(data) &^ 3
	for i := 0; i < n; i += 4 {
		// x = (z + w) mod p ; then the quadratic step
		// z = (x^2 + z2^2) mod p ; z2 = x.
		x := (z + uint64(binary.LittleEndian.Uint32(data[i:]))) % prime
		z = (mulmod(x, x) + mulmod(z2, z2)) % prime
		z2 = x
	}
	if n < len(data) {
		var w uint32
		for j, b := range data[n:] {
			w |= uint32(b) << uint(8*j)
		}
		x := (z + uint64(w)) % prime
		z = (mulmod(x, x) + mulmod(z2, z2)) % prime
		z2 = x
	}
	return uint32(z)
}

// mulmod multiplies two values below 2³¹ modulo 2³¹−1 without overflow
// (the product fits in 62 bits, within uint64).
func mulmod(a, b uint64) uint64 {
	return (a * b) % 0x7fffffff
}

// ChecksumEqual compares two keyed checksums in constant time. A
// data-dependent comparison would let an attacker forging safe messages
// learn the checksum byte-by-byte from timing; §2.1's integrity argument
// assumes the verifier leaks nothing about the expected value.
func ChecksumEqual(a, b uint32) bool {
	return subtle.ConstantTimeEq(int32(a), int32(b)) == 1
}

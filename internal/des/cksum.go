package des

import (
	"crypto/subtle"
	"encoding/binary"
)

// QuadChecksum is the keyed quadratic checksum used by Kerberos safe
// messages (§2.1 "safe messages": "authentication of each message, but do
// not care whether the content of the message is disclosed").
//
// Following the Kerberos v4 quad_cksum design, the data is processed as a
// sequence of 32-bit little-endian words through a quadratic congruential
// hash modulo the Mersenne prime 2³¹−1, seeded from the session key so
// that only the two key holders can produce or verify it. The result is a
// 32-bit checksum.
func QuadChecksum(key Key, data []byte) uint32 {
	const prime = 0x7fffffff // 2^31 - 1

	seed := binary.LittleEndian.Uint64(key[:])
	z := seed & prime
	z2 := (seed >> 32) & prime

	// Process in 4-byte words; a short trailing word is zero-extended.
	for i := 0; i < len(data); i += 4 {
		var w uint32
		for j := 0; j < 4 && i+j < len(data); j++ {
			w |= uint32(data[i+j]) << uint(8*j)
		}
		// x = (z + w) mod p ; then the quadratic step
		// z = (x^2 + z2^2) mod p ; z2 = x.
		x := (z + uint64(w)) % prime
		x2 := z2
		z = (mulmod(x, x) + mulmod(x2, x2)) % prime
		z2 = x
	}
	return uint32(z)
}

// mulmod multiplies two values below 2³¹ modulo 2³¹−1 without overflow
// (the product fits in 62 bits, within uint64).
func mulmod(a, b uint64) uint64 {
	return (a * b) % 0x7fffffff
}

// ChecksumEqual compares two keyed checksums in constant time. A
// data-dependent comparison would let an attacker forging safe messages
// learn the checksum byte-by-byte from timing; §2.1's integrity argument
// assumes the verifier leaks nothing about the expected value.
func ChecksumEqual(a, b uint32) bool {
	return subtle.ConstantTimeEq(int32(a), int32(b)) == 1
}

package des

import (
	"testing"
	"testing/quick"
)

func TestQuadChecksumDeterministic(t *testing.T) {
	key := StringToKey("session", "R")
	data := []byte("the quick brown fox jumps over the lazy dog")
	if QuadChecksum(key, data) != QuadChecksum(key, data) {
		t.Error("checksum not deterministic")
	}
}

func TestQuadChecksumSensitivity(t *testing.T) {
	key := StringToKey("session", "R")
	base := QuadChecksum(key, []byte("hello, athena"))
	if base == QuadChecksum(key, []byte("hello, athenb")) {
		t.Error("content flip not detected")
	}
	if base == QuadChecksum(key, []byte("hello, athen")) {
		t.Error("truncation not detected")
	}
	other := StringToKey("other", "R")
	if base == QuadChecksum(other, []byte("hello, athena")) {
		t.Error("checksum independent of key; safe messages would be forgeable")
	}
}

func TestQuadChecksumLengths(t *testing.T) {
	key := StringToKey("k", "R")
	// All small lengths must be accepted, including empty and non-word-
	// aligned data.
	for n := 0; n <= 17; n++ {
		QuadChecksum(key, make([]byte, n))
	}
}

// TestQuadChecksumKeyedProperty: flipping any single byte changes the sum
// with very high probability; the quick test tolerates none over its
// sample since a 32-bit collision in 100 samples is vanishingly unlikely
// for single-byte flips of short messages.
func TestQuadChecksumKeyedProperty(t *testing.T) {
	key := StringToKey("property", "R")
	f := func(data []byte, idx uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := int(idx) % len(data)
		orig := QuadChecksum(key, data)
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		return orig != QuadChecksum(key, mut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQuadChecksum1K(b *testing.B) {
	key := StringToKey("bench", "R")
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		QuadChecksum(key, data)
	}
}

package des

import (
	"sync"
	"sync/atomic"
)

// Key-schedule caching. Expanding a DES key into its 16 round subkeys
// costs more than encrypting several blocks, and the KDC re-uses a small
// set of long-lived keys (the master key, the TGS key, service keys, and
// each client's private key during a login storm) for every ticket it
// issues. A SchedCache remembers expansions so each key is expanded once.
//
// The cache is bounded: ephemeral session keys flow through the package
// Seal/Unseal helpers too, and without a cap they would accumulate
// forever. When the cap is exceeded an arbitrary fraction of entries is
// evicted — exact LRU is not worth a lock on the hit path.

// DefaultSchedCap is the capacity of the package-level schedule cache:
// generously above the working set of a busy realm (master + TGS +
// service keys + recently active client keys) but small enough that dead
// session keys are recycled quickly.
const DefaultSchedCap = 4096

// SchedCache is a concurrency-safe cache of expanded key schedules.
// Hits are lock-free reads; only misses and eviction take the fill lock.
type SchedCache struct {
	m     sync.Map // Key -> *Cipher
	count atomic.Int64
	max   int64
	fill  sync.Mutex // serializes eviction scans
}

// NewSchedCache creates a cache holding at most max expanded schedules.
func NewSchedCache(max int) *SchedCache {
	if max < 1 {
		max = 1
	}
	return &SchedCache{max: int64(max)}
}

// For returns the expanded schedule for key, expanding and caching it on
// first use. Concurrent callers for the same key converge on one Cipher.
//
//kerb:hotpath
func (s *SchedCache) For(key Key) *Cipher {
	if c, ok := s.m.Load(key); ok {
		return c.(*Cipher)
	}
	c := NewCipher(key)
	actual, loaded := s.m.LoadOrStore(key, c)
	if loaded {
		return actual.(*Cipher)
	}
	if s.count.Add(1) > s.max {
		s.evict()
	}
	return c
}

// Forget drops the cached schedule for key, if any — for keys that must
// not outlive their use (a client's password-derived key, §4.2's "the
// user's password and DES key are erased from memory") and for key
// changes.
func (s *SchedCache) Forget(key Key) {
	if _, ok := s.m.LoadAndDelete(key); ok {
		s.count.Add(-1)
	}
}

// Len reports the number of cached schedules (approximate under
// concurrent use).
func (s *SchedCache) Len() int { return int(s.count.Load()) }

// evict removes an arbitrary quarter of the cache. Amortized over the
// insertions that refilled it, the scan is O(1) per miss.
func (s *SchedCache) evict() {
	s.fill.Lock()
	defer s.fill.Unlock()
	target := s.max - s.max/4
	if s.count.Load() <= target {
		return // another goroutine already evicted
	}
	s.m.Range(func(k, _ any) bool {
		if _, ok := s.m.LoadAndDelete(k); ok {
			if s.count.Add(-1) <= target {
				return false
			}
		}
		return true
	})
}

// sched is the package-level cache used by the Seal, Unseal, and
// CBCChecksum convenience functions.
var sched = NewSchedCache(DefaultSchedCap)

// CipherFor returns a cached expanded schedule for key from the
// package-level cache.
func CipherFor(key Key) *Cipher { return sched.For(key) }

// ForgetKey drops key's schedule from the package-level cache. Callers
// that erase a sensitive key from memory should also call ForgetKey so
// the expanded schedule does not survive the erasure.
func ForgetKey(key Key) { sched.Forget(key) }

package vfs

import (
	"errors"
	"testing"
	"testing/quick"
)

var (
	alice = Cred{UID: 1001, GIDs: []uint32{100}}
	bob   = Cred{UID: 1002, GIDs: []uint32{100, 200}}
	eve   = Cred{UID: 6666}
)

func newHome(t testing.TB) *FS {
	t.Helper()
	fs := New()
	if err := fs.MkdirAll("/mit/alice", Root, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown("/mit/alice", Root, alice.UID, 100); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod("/mit/alice", Root, 0o750); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newHome(t)
	data := []byte("\\documentclass{thesis}")
	if err := fs.Write("/mit/alice/thesis.tex", alice, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("/mit/alice/thesis.tex", alice)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("read %q", got)
	}
	// Overwrite.
	if err := fs.Write("/mit/alice/thesis.tex", alice, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.Read("/mit/alice/thesis.tex", alice)
	if string(got) != "v2" {
		t.Errorf("after overwrite: %q", got)
	}
	// Append.
	if err := fs.Append("/mit/alice/thesis.tex", alice, []byte("+more")); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.Read("/mit/alice/thesis.tex", alice)
	if string(got) != "v2+more" {
		t.Errorf("after append: %q", got)
	}
}

func TestPermissionChecks(t *testing.T) {
	fs := newHome(t)
	if err := fs.Write("/mit/alice/private", alice, []byte("secret"), 0o600); err != nil {
		t.Fatal(err)
	}
	// Group member bob can search the 0750 home but not read the 0600 file.
	if _, err := fs.Read("/mit/alice/private", bob); !errors.Is(err, ErrPerm) {
		t.Errorf("bob read = %v", err)
	}
	// Eve (not in group) cannot even search the home directory.
	if _, err := fs.Read("/mit/alice/private", eve); !errors.Is(err, ErrPerm) {
		t.Errorf("eve read = %v", err)
	}
	// Eve cannot write into alice's home.
	if err := fs.Write("/mit/alice/troll", eve, []byte("x"), 0o644); !errors.Is(err, ErrPerm) {
		t.Errorf("eve write = %v", err)
	}
	// Bob cannot write either (0750: group has no w).
	if err := fs.Write("/mit/alice/gift", bob, []byte("x"), 0o644); !errors.Is(err, ErrPerm) {
		t.Errorf("bob write = %v", err)
	}
	// Root reads everything.
	if _, err := fs.Read("/mit/alice/private", Root); err != nil {
		t.Errorf("root read = %v", err)
	}
	// A group-readable file is readable by bob.
	if err := fs.Write("/mit/alice/shared", alice, []byte("hi"), 0o640); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/mit/alice/shared", bob); err != nil {
		t.Errorf("bob group read = %v", err)
	}
}

// TestNobodyHasNoPrivilege: the appendix's friendly-mode fallback maps
// strangers to nobody, "who has no privileged access".
func TestNobodyHasNoPrivilege(t *testing.T) {
	fs := newHome(t)
	if err := fs.Write("/mit/alice/file", alice, []byte("x"), 0o640); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/mit/alice/file", Nobody); !errors.Is(err, ErrPerm) {
		t.Errorf("nobody read = %v", err)
	}
	// World-readable paths still work for nobody.
	if err := fs.Write("/motd", Root, []byte("welcome to athena"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/motd", Nobody); err != nil {
		t.Errorf("nobody motd read = %v", err)
	}
}

func TestStatAndReadDir(t *testing.T) {
	fs := newHome(t)
	fs.Write("/mit/alice/a.txt", alice, []byte("aaa"), 0o644)
	fs.Write("/mit/alice/b.txt", alice, []byte("b"), 0o644)
	fs.Mkdir("/mit/alice/src", alice, 0o755)

	info, err := fs.Stat("/mit/alice/a.txt", alice)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 3 || info.UID != alice.UID || info.GID != 100 || info.IsDir {
		t.Errorf("stat = %+v", info)
	}
	list, err := fs.ReadDir("/mit/alice", alice)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].Name != "a.txt" || list[2].Name != "src" || !list[2].IsDir {
		t.Errorf("readdir = %+v", list)
	}
	// Stat on the root works.
	if _, err := fs.Stat("/", alice); err != nil {
		t.Errorf("stat / = %v", err)
	}
	// ReadDir on a file fails.
	if _, err := fs.ReadDir("/mit/alice/a.txt", alice); !errors.Is(err, ErrNotDir) {
		t.Errorf("readdir file = %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := newHome(t)
	fs.Write("/mit/alice/tmp", alice, []byte("x"), 0o644)
	if err := fs.Remove("/mit/alice/tmp", alice); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/mit/alice/tmp", alice); !errors.Is(err, ErrNotExist) {
		t.Error("file survived remove")
	}
	// Non-empty directory refuses.
	fs.Mkdir("/mit/alice/d", alice, 0o755)
	fs.Write("/mit/alice/d/f", alice, nil, 0o644)
	if err := fs.Remove("/mit/alice/d", alice); err == nil {
		t.Error("non-empty dir removed")
	}
	fs.Remove("/mit/alice/d/f", alice)
	if err := fs.Remove("/mit/alice/d", alice); err != nil {
		t.Errorf("empty dir remove = %v", err)
	}
	// Eve cannot remove alice's files.
	fs.Write("/mit/alice/keep", alice, nil, 0o644)
	if err := fs.Remove("/mit/alice/keep", eve); !errors.Is(err, ErrPerm) {
		t.Errorf("eve remove = %v", err)
	}
}

func TestErrorsOnBadPaths(t *testing.T) {
	fs := newHome(t)
	if _, err := fs.Read("/nonexistent", alice); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing read = %v", err)
	}
	if _, err := fs.Read("/mit/alice", alice); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir = %v", err)
	}
	fs.Write("/mit/alice/f", alice, nil, 0o644)
	if err := fs.Mkdir("/mit/alice/f/sub", alice, 0o755); !errors.Is(err, ErrNotDir) {
		t.Errorf("mkdir under file = %v", err)
	}
	if err := fs.Mkdir("/mit/alice/f", alice, 0o755); !errors.Is(err, ErrExist) {
		t.Errorf("mkdir over file = %v", err)
	}
	if err := fs.Append("/mit/alice/nope", alice, nil); !errors.Is(err, ErrNotExist) {
		t.Errorf("append missing = %v", err)
	}
}

func TestChownChmodAuthorization(t *testing.T) {
	fs := newHome(t)
	fs.Write("/mit/alice/f", alice, nil, 0o644)
	if err := fs.Chown("/mit/alice/f", alice, bob.UID, 200); !errors.Is(err, ErrPerm) {
		t.Errorf("non-root chown = %v", err)
	}
	if err := fs.Chmod("/mit/alice/f", bob, 0o777); !errors.Is(err, ErrPerm) {
		t.Errorf("non-owner chmod = %v", err)
	}
	if err := fs.Chmod("/mit/alice/f", alice, 0o600); err != nil {
		t.Errorf("owner chmod = %v", err)
	}
	if err := fs.Chown("/mit/alice/f", Root, bob.UID, 200); err != nil {
		t.Errorf("root chown = %v", err)
	}
	info, _ := fs.Stat("/mit/alice/f", Root)
	if info.UID != bob.UID || info.GID != 200 || info.Mode != 0o600 {
		t.Errorf("after chown/chmod: %+v", info)
	}
}

func TestPathNormalization(t *testing.T) {
	fs := newHome(t)
	fs.Write("/mit/alice/f", alice, []byte("x"), 0o644)
	for _, p := range []string{"/mit/alice/f", "mit/alice/f", "/mit//alice/./f", "/mit/bob/../alice/f"} {
		if _, err := fs.Read(p, alice); err != nil {
			t.Errorf("Read(%q) = %v", p, err)
		}
	}
}

// TestWriteReadProperty: whatever bytes are written come back for the
// owner, regardless of content.
func TestWriteReadProperty(t *testing.T) {
	fs := newHome(t)
	i := 0
	f := func(data []byte) bool {
		i++
		p := "/mit/alice/file" + string(rune('a'+i%26))
		if err := fs.Write(p, alice, data, 0o600); err != nil {
			return false
		}
		got, err := fs.Read(p, alice)
		return err == nil && string(got) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := newHome(t)
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			p := "/mit/alice/conc" + string(rune('a'+g))
			for i := 0; i < 50; i++ {
				if err := fs.Write(p, alice, []byte{byte(i)}, 0o644); err != nil {
					done <- err
					return
				}
				if _, err := fs.Read(p, alice); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

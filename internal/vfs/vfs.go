// Package vfs is an in-memory UNIX-like filesystem with uid/gid/mode
// permission checking — the file-server substrate beneath the NFS case
// study of the paper's appendix. It stands in for the VAX 11/750 file
// servers that held Athena home directories; what matters to the
// reproduction is that every operation is checked against an NFS-style
// credential (UID + GID list), which is exactly what the credential-
// mapping experiment exercises.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Cred is the identity an operation runs as: "This credential contains
// information about the unique user identifier (UID) of the requester
// and a list of the group identifiers (GIDs) of the requester's
// membership" (appendix).
type Cred struct {
	UID  uint32
	GIDs []uint32
}

// Root is the superuser credential.
var Root = Cred{UID: 0}

// NobodyUID is the unprivileged fallback identity: "we default the
// unmappable requests into the credentials for the user 'nobody' who has
// no privileged access and has a unique UID" (appendix).
const NobodyUID = 65534

// Nobody is the unmapped-request credential.
var Nobody = Cred{UID: NobodyUID}

// inGroup reports whether the credential carries gid.
func (c Cred) inGroup(gid uint32) bool {
	for _, g := range c.GIDs {
		if g == gid {
			return true
		}
	}
	return false
}

// Mode is a permission bit set (the low nine bits of a UNIX mode).
type Mode uint16

// Permission bit groups.
const (
	permR = 4
	permW = 2
	permX = 1
)

// Errors.
var (
	ErrNotExist = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrPerm     = errors.New("vfs: permission denied")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
)

// FileInfo describes one file.
type FileInfo struct {
	Name    string
	Size    int
	Mode    Mode
	IsDir   bool
	UID     uint32
	GID     uint32
	ModTime time.Time
	Inode   uint64
}

type node struct {
	ino      uint64
	dir      bool
	mode     Mode
	uid, gid uint32
	data     []byte
	children map[string]*node
	mtime    time.Time
}

// FS is the filesystem. The zero value is not usable; call New. All
// methods are safe for concurrent use.
type FS struct {
	mu      sync.RWMutex
	root    *node
	nextIno uint64
	clock   func() time.Time
}

// New creates a filesystem whose root is owned by root with mode 0755.
func New() *FS {
	fs := &FS{clock: time.Now, nextIno: 1}
	fs.root = &node{ino: 1, dir: true, mode: 0o755, children: map[string]*node{}}
	return fs
}

// SetClock substitutes the timestamp source.
func (fs *FS) SetClock(clock func() time.Time) { fs.clock = clock }

// splitPath normalizes and splits an absolute path.
func splitPath(p string) ([]string, error) {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return nil, nil
	}
	return strings.Split(clean[1:], "/"), nil
}

// access checks one permission bit (permR/permW/permX) on n for cred.
func access(n *node, cred Cred, want Mode) bool {
	if cred.UID == 0 {
		// Root bypasses permission bits, as UNIX does; execute on files
		// still requires some x bit, irrelevant here.
		return true
	}
	var shift uint
	switch {
	case cred.UID == n.uid:
		shift = 6
	case cred.inGroup(n.gid):
		shift = 3
	default:
		shift = 0
	}
	return (n.mode>>shift)&want == want
}

// walk resolves all but the last component, checking execute (search)
// permission on every directory crossed.
func (fs *FS) walk(parts []string, cred Cred) (*node, error) {
	cur := fs.root
	for _, part := range parts {
		if !cur.dir {
			return nil, ErrNotDir
		}
		if !access(cur, cred, permX) {
			return nil, fmt.Errorf("%w: search %q", ErrPerm, part)
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// resolve returns (parent, leaf name, node or nil).
func (fs *FS) resolve(p string, cred Cred) (*node, string, *node, error) {
	parts, err := splitPath(p)
	if err != nil {
		return nil, "", nil, err
	}
	if len(parts) == 0 {
		return nil, "", fs.root, nil
	}
	parent, err := fs.walk(parts[:len(parts)-1], cred)
	if err != nil {
		return nil, "", nil, err
	}
	if !parent.dir {
		return nil, "", nil, ErrNotDir
	}
	if !access(parent, cred, permX) {
		return nil, "", nil, ErrPerm
	}
	name := parts[len(parts)-1]
	return parent, name, parent.children[name], nil
}

// Mkdir creates a directory owned by cred.
func (fs *FS) Mkdir(p string, cred Cred, mode Mode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, existing, err := fs.resolve(p, cred)
	if err != nil {
		return err
	}
	if parent == nil {
		return ErrExist // mkdir "/"
	}
	if existing != nil {
		return ErrExist
	}
	if !access(parent, cred, permW) {
		return ErrPerm
	}
	fs.nextIno++
	gid := uint32(0)
	if len(cred.GIDs) > 0 {
		gid = cred.GIDs[0]
	}
	parent.children[name] = &node{
		ino: fs.nextIno, dir: true, mode: mode & 0o777,
		uid: cred.UID, gid: gid,
		children: map[string]*node{}, mtime: fs.clock(),
	}
	parent.mtime = fs.clock()
	return nil
}

// MkdirAll creates a directory chain as cred.
func (fs *FS) MkdirAll(p string, cred Cred, mode Mode) error {
	parts, _ := splitPath(p)
	cur := ""
	for _, part := range parts {
		cur += "/" + part
		if err := fs.Mkdir(cur, cred, mode); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Write creates or replaces a file's contents as cred.
func (fs *FS) Write(p string, cred Cred, data []byte, mode Mode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, existing, err := fs.resolve(p, cred)
	if err != nil {
		return err
	}
	if existing == nil {
		if parent == nil {
			return ErrIsDir
		}
		if !access(parent, cred, permW) {
			return ErrPerm
		}
		fs.nextIno++
		gid := uint32(0)
		if len(cred.GIDs) > 0 {
			gid = cred.GIDs[0]
		}
		parent.children[name] = &node{
			ino: fs.nextIno, mode: mode & 0o777,
			uid: cred.UID, gid: gid,
			data: append([]byte(nil), data...), mtime: fs.clock(),
		}
		parent.mtime = fs.clock()
		return nil
	}
	if existing.dir {
		return ErrIsDir
	}
	if !access(existing, cred, permW) {
		return ErrPerm
	}
	existing.data = append([]byte(nil), data...)
	existing.mtime = fs.clock()
	return nil
}

// Append adds data to the end of an existing file as cred.
func (fs *FS) Append(p string, cred Cred, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _, n, err := fs.resolve(p, cred)
	if err != nil {
		return err
	}
	if n == nil {
		return ErrNotExist
	}
	if n.dir {
		return ErrIsDir
	}
	if !access(n, cred, permW) {
		return ErrPerm
	}
	n.data = append(n.data, data...)
	n.mtime = fs.clock()
	return nil
}

// Read returns a file's contents as cred.
func (fs *FS) Read(p string, cred Cred) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, _, n, err := fs.resolve(p, cred)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return nil, ErrNotExist
	}
	if n.dir {
		return nil, ErrIsDir
	}
	if !access(n, cred, permR) {
		return nil, ErrPerm
	}
	return append([]byte(nil), n.data...), nil
}

// Stat returns file metadata (no read permission required, as in UNIX —
// only search permission on the path).
func (fs *FS) Stat(p string, cred Cred) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, name, n, err := fs.resolve(p, cred)
	if err != nil {
		return FileInfo{}, err
	}
	if n == nil {
		return FileInfo{}, ErrNotExist
	}
	if name == "" {
		name = "/"
	}
	return FileInfo{
		Name: name, Size: len(n.data), Mode: n.mode, IsDir: n.dir,
		UID: n.uid, GID: n.gid, ModTime: n.mtime, Inode: n.ino,
	}, nil
}

// ReadDir lists a directory as cred.
func (fs *FS) ReadDir(p string, cred Cred) ([]FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, _, n, err := fs.resolve(p, cred)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return nil, ErrNotExist
	}
	if !n.dir {
		return nil, ErrNotDir
	}
	if !access(n, cred, permR) {
		return nil, ErrPerm
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FileInfo, len(names))
	for i, name := range names {
		c := n.children[name]
		out[i] = FileInfo{
			Name: name, Size: len(c.data), Mode: c.mode, IsDir: c.dir,
			UID: c.uid, GID: c.gid, ModTime: c.mtime, Inode: c.ino,
		}
	}
	return out, nil
}

// Remove deletes a file or empty directory as cred.
func (fs *FS) Remove(p string, cred Cred) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, n, err := fs.resolve(p, cred)
	if err != nil {
		return err
	}
	if n == nil {
		return ErrNotExist
	}
	if parent == nil {
		return ErrPerm // removing "/"
	}
	if !access(parent, cred, permW) {
		return ErrPerm
	}
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("vfs: directory not empty")
	}
	delete(parent.children, name)
	parent.mtime = fs.clock()
	return nil
}

// Chown changes ownership; only root may.
func (fs *FS) Chown(p string, cred Cred, uid, gid uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if cred.UID != 0 {
		return ErrPerm
	}
	_, _, n, err := fs.resolve(p, cred)
	if err != nil {
		return err
	}
	if n == nil {
		return ErrNotExist
	}
	n.uid, n.gid = uid, gid
	return nil
}

// Chmod changes permission bits; owner or root only.
func (fs *FS) Chmod(p string, cred Cred, mode Mode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _, n, err := fs.resolve(p, cred)
	if err != nil {
		return err
	}
	if n == nil {
		return ErrNotExist
	}
	if cred.UID != 0 && cred.UID != n.uid {
		return ErrPerm
	}
	n.mode = mode & 0o777
	return nil
}

package login

import (
	"strings"
	"testing"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/hesiod"
)

// TestLoginFileServerDown: Kerberos and Hesiod succeed but the file
// server is unreachable; login fails cleanly at the mount step and no
// tickets leak into a half-built session.
func TestLoginFileServerDown(t *testing.T) {
	e := newEnv(t)
	// Point jis's filsys record at a dead address.
	dir := hesiod.NewDirectory()
	dir.AddPasswd(hesiod.PasswdEntry{
		Username: "jis", UID: 1001, GID: 100,
		RealName: "Jeffrey I. Schiller", HomeDir: "/mit/jis", Shell: "/bin/csh",
	})
	dir.AddFilsys(hesiod.Filsys{
		Username: "jis", Server: "127.0.0.1:1", ServerPath: "/export/jis", MountPoint: "/mit/jis",
	})
	hs, err := hesiod.Serve(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	cfg := e.cfg
	cfg.HesiodAddr = hs.Addr()

	_, err = Login(cfg, "jis", "zanzibar")
	if err == nil {
		t.Fatal("login succeeded with the file server down")
	}
	if !strings.Contains(err.Error(), "file server") && !strings.Contains(err.Error(), "mounting") {
		t.Errorf("error does not name the failing step: %v", err)
	}
}

// TestLoginKDCDown: nothing answers the KDC address; the failure names
// authentication, and neither Hesiod nor NFS is consulted.
func TestLoginKDCDown(t *testing.T) {
	e := newEnv(t)
	cfg := e.cfg
	cfg.Krb = &client.Config{
		Realms:  map[string][]string{e.realm.Name: {"127.0.0.1:1"}},
		Timeout: 300 * time.Millisecond,
	}
	if _, err := Login(cfg, "jis", "zanzibar"); err == nil {
		t.Fatal("login succeeded with the KDC down")
	}
	if e.server.CredMap().Len() != 0 {
		t.Error("mapping appeared despite failed authentication")
	}
}

package login

import (
	"strings"
	"testing"

	"kerberos"
	"kerberos/internal/core"
	"kerberos/internal/hesiod"
	"kerberos/internal/nfs"
	"kerberos/internal/vfs"
)

// env is a workstation's whole world: realm, Hesiod, file server.
type env struct {
	realm  *kerberos.Realm
	cfg    Config
	server *nfs.Server
}

func newEnv(t testing.TB) *env {
	t.Helper()
	realm, err := kerberos.NewRealm(kerberos.RealmConfig{
		Name: "ATHENA.MIT.EDU", MasterPassword: "master",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { realm.Close() })
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	nfsTab, err := realm.AddService("nfs", "helen")
	if err != nil {
		t.Fatal(err)
	}
	nfsPrincipal := core.Principal{Name: "nfs", Instance: "helen", Realm: realm.Name}

	// File server with jis's home directory.
	fs := vfs.New()
	fs.MkdirAll("/export/jis", vfs.Root, 0o755)
	fs.Chown("/export/jis", vfs.Root, 1001, 100)
	fs.Chmod("/export/jis", vfs.Root, 0o700)
	fs.Write("/export/jis/.cshrc", vfs.Cred{UID: 1001, GIDs: []uint32{100}},
		[]byte("setenv ATHENA yes"), 0o644)

	server := nfs.NewServer(nfs.ServerConfig{
		Realm:     realm.Name,
		FS:        fs,
		Mode:      nfs.ModeMapped,
		Friendly:  true,
		Principal: nfsPrincipal,
		Keytab:    nfsTab,
		Accounts:  []nfs.Account{{Username: "jis", Cred: vfs.Cred{UID: 1001, GIDs: []uint32{100}}}},
	})
	nl, err := nfs.Serve(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nl.Close() })

	// Hesiod knows where jis's home lives.
	dir := hesiod.NewDirectory()
	dir.AddPasswd(hesiod.PasswdEntry{
		Username: "jis", UID: 1001, GID: 100,
		RealName: "Jeffrey I. Schiller", HomeDir: "/mit/jis", Shell: "/bin/csh",
	})
	dir.AddFilsys(hesiod.Filsys{
		Username: "jis", Server: nl.Addr(), ServerPath: "/export/jis", MountPoint: "/mit/jis",
	})
	hs, err := hesiod.Serve(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })

	return &env{
		realm:  realm,
		server: server,
		cfg: Config{
			Realm:      realm.Name,
			Krb:        realm.ClientConfig(),
			HesiodAddr: hs.Addr(),
			NFSService: nfsPrincipal,
			WSAddr:     core.Addr{127, 0, 0, 1},
		},
	}
}

// TestLoginFlow is the appendix end to end: Kerberos authentication,
// Hesiod lookups, Kerberized NFS mount, passwd-line construction — then
// real file access under the mapped credential.
func TestLoginFlow(t *testing.T) {
	e := newEnv(t)
	sess, err := Login(e.cfg, "jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	if sess.MountPoint != "/mit/jis" {
		t.Errorf("mount point = %q", sess.MountPoint)
	}
	if !strings.HasPrefix(sess.PasswdLine, "jis:*:1001:100:") {
		t.Errorf("passwd line = %q", sess.PasswdLine)
	}
	// "the traditional per-user customization files" are reachable.
	data, err := sess.NFS.Read("/export/jis/.cshrc")
	if err != nil || string(data) != "setenv ATHENA yes" {
		t.Fatalf("reading .cshrc: %q %v", data, err)
	}
	// And writable: the session really runs as jis on the server.
	if err := sess.NFS.Write("/export/jis/newfile", []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	if e.server.CredMap().Len() != 1 {
		t.Error("mapping not installed")
	}
	// The TGT is in the cache.
	if sess.Client.Cache.Len() == 0 {
		t.Error("no tickets after login")
	}

	// Logout flushes the mapping and destroys tickets.
	if err := sess.Logout(); err != nil {
		t.Fatal(err)
	}
	if e.server.CredMap().Len() != 0 {
		t.Error("mapping survived logout")
	}
	if sess.Client.Cache.Len() != 0 {
		t.Error("tickets survived logout")
	}
}

// TestLoginWrongPassword: the AS reply does not decrypt, so login fails
// before Hesiod or NFS are ever involved.
func TestLoginWrongPassword(t *testing.T) {
	e := newEnv(t)
	if _, err := Login(e.cfg, "jis", "wrong"); err == nil {
		t.Fatal("wrong password logged in")
	}
	if e.server.CredMap().Len() != 0 {
		t.Error("mapping installed despite failed login")
	}
}

// TestLoginUnknownUser fails at the KDC.
func TestLoginUnknownUser(t *testing.T) {
	e := newEnv(t)
	if _, err := Login(e.cfg, "ghost", "whatever"); err == nil {
		t.Fatal("unknown user logged in")
	}
}

// TestLoginNoHesiodRecord: a Kerberos principal without Hesiod records
// cannot complete the workstation login.
func TestLoginNoHesiodRecord(t *testing.T) {
	e := newEnv(t)
	if err := e.realm.AddUser("newbie", "secret123"); err != nil {
		t.Fatal(err)
	}
	if _, err := Login(e.cfg, "newbie", "secret123"); err == nil || !strings.Contains(err.Error(), "resolving account") {
		t.Errorf("login without hesiod = %v", err)
	}
}

// Package login reproduces the Athena workstation login of the paper's
// appendix: "When a user logs in to one of these publicly available
// workstations, rather than validate her/his name and password against a
// locally resident password file, we use Kerberos to determine her/his
// authenticity. ... If decryption is successful, the user's home
// directory is located by consulting the Hesiod naming service and
// mounted through NFS. ... The Hesiod service is also used to construct
// an entry in the local password file."
package login

import (
	"fmt"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/hesiod"
	"kerberos/internal/nfs"
)

// Config describes the workstation's environment.
type Config struct {
	Realm      string           // local Kerberos realm
	Krb        *client.Config   // KDC addresses
	HesiodAddr string           // Hesiod nameserver
	NFSService core.Principal   // file server's Kerberos identity
	WSAddr     core.Addr        // this workstation's address
	Clock      func() time.Time // optional fake clock
}

// Session is a logged-in user's workstation state.
type Session struct {
	Client     *client.Client     // holds the TGT and service tickets
	Passwd     hesiod.PasswdEntry // non-sensitive account data
	PasswdLine string             // the constructed /etc/passwd entry
	NFS        *nfs.Client        // connection to the home-directory server
	MountPoint string             // where the home directory is attached
	uid        uint32
}

// Login runs the full appendix flow. The password is used only to
// decrypt the authentication server's reply and is not retained.
func Login(cfg Config, username, password string) (*Session, error) {
	// 1. "This username is used to fetch a Kerberos ticket-granting
	// ticket." Note the order: the request goes out before the password
	// is needed.
	krb := client.New(core.Principal{Name: username, Realm: cfg.Realm}, cfg.Krb)
	krb.Addr = cfg.WSAddr
	krb.Clock = cfg.Clock
	if _, err := krb.Login(password); err != nil {
		return nil, fmt.Errorf("login: incorrect password or unknown user: %w", err)
	}

	// 2. Hesiod supplies the non-sensitive account information and the
	// location of the home directory.
	pw, err := hesiod.ResolvePasswd(cfg.HesiodAddr, username, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("login: resolving account: %w", err)
	}
	fsys, err := hesiod.ResolveFilsys(cfg.HesiodAddr, username, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("login: locating home directory: %w", err)
	}

	// 3. Mount the home directory through NFS with the Kerberos mapping
	// request, so the file server maps <WS-address, local-uid> to the
	// user's server credential.
	nc, err := nfs.Dial(fsys.Server)
	if err != nil {
		return nil, fmt.Errorf("login: reaching file server: %w", err)
	}
	nc.Cred = nfs.Credential{UID: pw.UID, GIDs: []uint32{pw.GID}}
	nc.Krb = krb
	nc.Service = cfg.NFSService
	if err := nc.Mount(fsys.ServerPath, pw.UID); err != nil {
		nc.Close()
		return nil, fmt.Errorf("login: mounting home directory: %w", err)
	}

	// 4. "The Hesiod service is also used to construct an entry in the
	// local password file."
	return &Session{
		Client:     krb,
		Passwd:     pw,
		PasswdLine: pw.Line(),
		NFS:        nc,
		MountPoint: fsys.MountPoint,
		uid:        pw.UID,
	}, nil
}

// Logout tears the session down: the NFS mapping is removed ("it is also
// possible to send a request at log-out time to invalidate all mappings
// for the current user"), and the Kerberos tickets are destroyed
// ("Kerberos tickets are automatically destroyed when a user logs out",
// §6.1).
func (s *Session) Logout() error {
	var firstErr error
	if err := s.NFS.Unmount(s.uid); err != nil {
		firstErr = err
	}
	if err := s.NFS.FlushUID(s.uid); err != nil && firstErr == nil {
		firstErr = err
	}
	s.NFS.Close()
	s.Client.Cache.Destroy()
	return firstErr
}

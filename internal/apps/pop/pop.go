// Package pop is the Kerberized Post Office Protocol of §7.1: "We have
// modified the Post Office Protocol to use Kerberos for authenticating
// users who wish to retrieve their electronic mail from the 'post
// office'." The mailbox a connection may read is decided entirely by the
// Kerberos-authenticated identity — no mailbox passwords.
package pop

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kdc"
)

// Office is the post office: mailboxes keyed by principal name.
type Office struct {
	mu    sync.Mutex
	boxes map[string][]string
}

// NewOffice returns an empty post office.
func NewOffice() *Office {
	return &Office{boxes: make(map[string][]string)}
}

// Deliver appends a message to a user's mailbox.
func (o *Office) Deliver(user, message string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.boxes[user] = append(o.boxes[user], message)
}

// messages returns a copy of a mailbox.
func (o *Office) messages(user string) []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.boxes[user]...)
}

// delete removes message i (0-based) from a mailbox.
func (o *Office) delete(user string, i int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	box := o.boxes[user]
	if i < 0 || i >= len(box) {
		return false
	}
	o.boxes[user] = append(box[:i:i], box[i+1:]...)
	return true
}

// Server is the Kerberized POP daemon.
type Server struct {
	Office *Office
	Svc    *client.Service // pop.<host> identity
}

// HandleConn authenticates the client (with mutual authentication, so
// mail is never handed to an impostor server's victim), then serves
// STAT/RETR/DELE/QUIT commands in safe messages: each command and reply
// is integrity-protected with the session key.
func (s *Server) HandleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	from := core.Addr{}
	if t, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		from = core.AddrFromIP(t.IP)
	}
	apReq, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	sess, err := s.Svc.ReadRequest(apReq, from)
	if err != nil {
		kdc.WriteFrame(conn, (&core.ErrorMessage{
			Code: core.ErrNotAuthenticated, Text: err.Error()}).Encode())
		return
	}
	if len(sess.Reply) != 0 {
		if err := kdc.WriteFrame(conn, sess.Reply); err != nil {
			return
		}
	}
	user := sess.Client.Name // mailbox = authenticated primary name
	for {
		frame, err := kdc.ReadFrame(conn)
		if err != nil {
			return
		}
		cmdBytes, err := sess.RdSafe(frame)
		if err != nil {
			return
		}
		reply, quit := s.command(user, string(cmdBytes))
		if err := kdc.WriteFrame(conn, sess.MkSafe([]byte(reply))); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

func (s *Server) command(user, cmd string) (string, bool) {
	switch {
	case cmd == "STAT":
		return fmt.Sprintf("+OK %d messages", len(s.Office.messages(user))), false
	case strings.HasPrefix(cmd, "RETR "):
		i, err := strconv.Atoi(strings.TrimPrefix(cmd, "RETR "))
		box := s.Office.messages(user)
		if err != nil || i < 1 || i > len(box) {
			return "-ERR no such message", false
		}
		return "+OK " + box[i-1], false
	case strings.HasPrefix(cmd, "DELE "):
		i, err := strconv.Atoi(strings.TrimPrefix(cmd, "DELE "))
		if err != nil || !s.Office.delete(user, i-1) {
			return "-ERR no such message", false
		}
		return "+OK deleted", false
	case cmd == "QUIT":
		return "+OK bye", true
	default:
		return "-ERR unknown command", false
	}
}

// Listener serves POP over TCP.
type Listener struct {
	tcp    net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Serve binds the POP server on addr.
func Serve(s *Server, addr string) (*Listener, error) {
	tcp, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("pop: binding: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Listener{tcp: tcp, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := tcp.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				s.HandleConn(conn)
			}()
		}
	}()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.tcp.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error {
	l.cancel()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

// Session is a client's authenticated POP connection.
type Session struct {
	conn net.Conn
	sess *client.AppSession
}

// Connect authenticates to the post office.
func Connect(krb *client.Client, addr string, service core.Principal) (*Session, error) {
	apReq, appSess, err := krb.MkReq(service, 0, true)
	if err != nil {
		return nil, fmt.Errorf("pop: obtaining credentials: %w", err)
	}
	conn, err := net.DialTimeout("tcp4", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := kdc.WriteFrame(conn, apReq); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := kdc.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if e := core.IfErrorMessage(reply); e != nil {
		conn.Close()
		return nil, e
	}
	if err := appSess.VerifyReply(reply); err != nil {
		conn.Close()
		return nil, fmt.Errorf("pop: server failed mutual authentication: %w", err)
	}
	return &Session{conn: conn, sess: appSess}, nil
}

// Command sends one POP command and returns the reply line.
func (s *Session) Command(cmd string) (string, error) {
	if err := kdc.WriteFrame(s.conn, s.sess.MkSafe([]byte(cmd))); err != nil {
		return "", err
	}
	frame, err := kdc.ReadFrame(s.conn)
	if err != nil {
		return "", err
	}
	reply, err := s.sess.RdSafe(frame, core.Addr{})
	if err != nil {
		return "", fmt.Errorf("pop: tampered reply: %w", err)
	}
	return string(reply), nil
}

// Close quits the session.
func (s *Session) Close() error {
	s.Command("QUIT")
	return s.conn.Close()
}

package pop

import (
	"strings"
	"testing"

	"kerberos"
	"kerberos/internal/core"
)

type env struct {
	realm   *kerberos.Realm
	office  *Office
	lst     *Listener
	service core.Principal
}

func newEnv(t testing.TB) *env {
	t.Helper()
	realm, err := kerberos.NewRealm(kerberos.RealmConfig{
		Name: "ATHENA.MIT.EDU", MasterPassword: "master",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { realm.Close() })
	for _, u := range []string{"jis", "bcn"} {
		if err := realm.AddUser(u, u+"-pw"); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := realm.AddService("pop", "po10")
	if err != nil {
		t.Fatal(err)
	}
	office := NewOffice()
	office.Deliver("jis", "From: bcn\n\nlunch at walker?")
	office.Deliver("jis", "From: treese\n\nreview ready")
	office.Deliver("bcn", "From: jis\n\nsure, noon")

	server := &Server{Office: office, Svc: realm.NewServiceContext("pop", "po10", tab)}
	l, err := Serve(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return &env{realm: realm, office: office, lst: l,
		service: core.Principal{Name: "pop", Instance: "po10", Realm: realm.Name}}
}

// TestFetchOwnMail: the authenticated user reads exactly their mailbox.
func TestFetchOwnMail(t *testing.T) {
	e := newEnv(t)
	krb, err := e.realm.NewLoggedInClient("jis", "jis-pw")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Connect(krb, e.lst.Addr(), e.service)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	stat, err := sess.Command("STAT")
	if err != nil || stat != "+OK 2 messages" {
		t.Fatalf("STAT = %q, %v", stat, err)
	}
	msg, err := sess.Command("RETR 1")
	if err != nil || !strings.Contains(msg, "lunch at walker?") {
		t.Fatalf("RETR 1 = %q, %v", msg, err)
	}
	// jis's mailbox never contains bcn's mail.
	msg, _ = sess.Command("RETR 2")
	if strings.Contains(msg, "sure, noon") {
		t.Error("read another user's message")
	}
	if reply, err := sess.Command("DELE 1"); err != nil || reply != "+OK deleted" {
		t.Fatalf("DELE = %q, %v", reply, err)
	}
	if stat, _ := sess.Command("STAT"); stat != "+OK 1 messages" {
		t.Errorf("after delete: %q", stat)
	}
	// Bad indexes and unknown commands.
	if reply, _ := sess.Command("RETR 99"); !strings.HasPrefix(reply, "-ERR") {
		t.Errorf("RETR 99 = %q", reply)
	}
	if reply, _ := sess.Command("DELE 0"); !strings.HasPrefix(reply, "-ERR") {
		t.Errorf("DELE 0 = %q", reply)
	}
	if reply, _ := sess.Command("NOOP?"); !strings.HasPrefix(reply, "-ERR") {
		t.Errorf("unknown = %q", reply)
	}
}

// TestNoTicketsNoMail: a client that never authenticated gets nothing.
func TestNoTicketsNoMail(t *testing.T) {
	e := newEnv(t)
	c := kerberos.NewClient(core.Principal{Name: "jis", Realm: e.realm.Name}, e.realm.ClientConfig())
	c.Addr = core.Addr{127, 0, 0, 1}
	// No Login: MkReq will fail for lack of a TGT.
	if _, err := Connect(c, e.lst.Addr(), e.service); err == nil {
		t.Fatal("connected without tickets")
	}
}

// TestMailboxIsolation: bcn authenticates as bcn and cannot see jis's
// mail, even by asking.
func TestMailboxIsolation(t *testing.T) {
	e := newEnv(t)
	krb, err := e.realm.NewLoggedInClient("bcn", "bcn-pw")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Connect(krb, e.lst.Addr(), e.service)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	stat, err := sess.Command("STAT")
	if err != nil || stat != "+OK 1 messages" {
		t.Fatalf("bcn STAT = %q, %v", stat, err)
	}
	msg, _ := sess.Command("RETR 1")
	if !strings.Contains(msg, "sure, noon") {
		t.Errorf("bcn RETR = %q", msg)
	}
}

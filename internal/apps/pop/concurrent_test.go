package pop

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSessions: many users read their mailboxes at once; each
// sees exactly their own mail and the server's per-session state never
// crosses wires.
func TestConcurrentSessions(t *testing.T) {
	e := newEnv(t)
	const users = 8
	// Give each synthetic user a distinct mailbox and an account.
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("conc%02d", i)
		if err := e.realm.AddUser(name, name+"-pw"); err != nil {
			t.Fatal(err)
		}
		for m := 0; m <= i; m++ {
			e.office.Deliver(name, fmt.Sprintf("msg %d for %s", m, name))
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("conc%02d", i)
			krb, err := e.realm.NewLoggedInClient(name, name+"-pw")
			if err != nil {
				errs <- err
				return
			}
			sess, err := Connect(krb, e.lst.Addr(), e.service)
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			stat, err := sess.Command("STAT")
			if err != nil {
				errs <- err
				return
			}
			want := fmt.Sprintf("+OK %d messages", i+1)
			if stat != want {
				errs <- fmt.Errorf("%s: STAT = %q, want %q", name, stat, want)
				return
			}
			msg, err := sess.Command("RETR 1")
			if err != nil {
				errs <- err
				return
			}
			if !strings.Contains(msg, "for "+name) {
				errs <- fmt.Errorf("%s read someone else's mail: %q", name, msg)
				return
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

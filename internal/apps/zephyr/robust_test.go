package zephyr

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSlowSubscriberDoesNotBlockDelivery: a subscriber that never drains
// its stream only loses its own notices (dropped past the buffer); other
// subscribers and the sender are unaffected.
func TestSlowSubscriberDoesNotBlockDelivery(t *testing.T) {
	e := newEnv(t)
	bcn, err := e.realm.NewLoggedInClient("bcn", "bcn-pw")
	if err != nil {
		t.Fatal(err)
	}
	// The "slow" subscriber: we subscribe but never read sub.Notices, so
	// after the channel buffer (16) fills, deliveries to it are dropped.
	slow, err := Subscribe(bcn, e.lst.Addr(), e.service)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	healthy, err := Subscribe(bcn, e.lst.Addr(), e.service)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	jis, err := e.realm.NewLoggedInClient("jis", "jis-pw")
	if err != nil {
		t.Fatal(err)
	}
	const notices = 40 // beyond any buffer
	received := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range healthy.Notices {
			received++
			if received == notices {
				return
			}
		}
	}()
	for i := 0; i < notices; i++ {
		if _, err := Send(jis, e.lst.Addr(), e.service, "bcn", fmt.Sprintf("n%d", i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("healthy subscriber stalled at %d/%d notices", received, notices)
	}
}

// TestSubscriberDisconnectCleansUp: closing a subscription frees the
// server-side registration so later sends report fewer deliveries.
func TestSubscriberDisconnectCleansUp(t *testing.T) {
	e := newEnv(t)
	bcn, err := e.realm.NewLoggedInClient("bcn", "bcn-pw")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Subscribe(bcn, e.lst.Addr(), e.service)
	if err != nil {
		t.Fatal(err)
	}
	jis, err := e.realm.NewLoggedInClient("jis", "jis-pw")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := Send(jis, e.lst.Addr(), e.service, "bcn", "one"); err != nil || n != 1 {
		t.Fatalf("first send: n=%d err=%v", n, err)
	}
	sub.Close()
	// The server notices the disconnect asynchronously; poll until the
	// registration is gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err := Send(jis, e.lst.Addr(), e.service, "bcn", "two")
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("closed subscription still registered")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

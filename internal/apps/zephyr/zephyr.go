// Package zephyr is a small reproduction of the Zephyr notification
// system of §7.1: "A message delivery program, called Zephyr, has been
// recently developed at Athena, and it uses Kerberos for authentication
// as well." Senders and subscribers authenticate with Kerberos; notices
// carry the sender's authenticated identity, so a notice from
// "jis@ATHENA.MIT.EDU" really came from jis.
package zephyr

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kdc"
	"kerberos/internal/wire"
)

// Notice is one delivered notification.
type Notice struct {
	From string // authenticated sender principal
	To   string // recipient username
	Body string
}

func encodeNotice(n Notice) []byte {
	var w wire.Writer
	w.Str(n.From)
	w.Str(n.To)
	w.Str(n.Body)
	return w.Buf
}

func decodeNotice(data []byte) (Notice, error) {
	r := wire.NewReader(data)
	n := Notice{From: r.Str(), To: r.Str(), Body: r.Str()}
	if err := r.Done(); err != nil {
		return Notice{}, err
	}
	return n, nil
}

// Server is the zephyr hub: it verifies every client, records
// subscriptions by authenticated name, and routes notices.
type Server struct {
	Svc *client.Service // zephyr.<host> identity

	mu   sync.Mutex
	subs map[string][]chan Notice
}

// NewServer creates a hub.
func NewServer(svc *client.Service) *Server {
	return &Server{Svc: svc, subs: make(map[string][]chan Notice)}
}

func (s *Server) subscribe(user string) chan Notice {
	ch := make(chan Notice, 16)
	s.mu.Lock()
	s.subs[user] = append(s.subs[user], ch)
	s.mu.Unlock()
	return ch
}

// unsubscribe removes and closes a subscription channel. It is
// idempotent: the channel is only closed if it was still registered, and
// routing sends under the same lock, so no send can race the close.
func (s *Server) unsubscribe(user string, ch chan Notice) {
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.subs[user]
	for i, c := range list {
		if c == ch {
			s.subs[user] = append(list[:i:i], list[i+1:]...)
			close(ch)
			return
		}
	}
}

// route delivers a notice to every live subscription of the recipient,
// returning how many got it.
func (s *Server) route(n Notice) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	delivered := 0
	for _, ch := range s.subs[n.To] {
		select {
		case ch <- n:
			delivered++
		default: // subscriber too slow; drop, as a notice service does
		}
	}
	return delivered
}

// HandleConn authenticates a client and then serves either one SEND or a
// long-lived SUB stream, chosen by the first safe message.
func (s *Server) HandleConn(conn net.Conn) {
	defer conn.Close()
	from := core.Addr{}
	if t, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		from = core.AddrFromIP(t.IP)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	apReq, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	sess, err := s.Svc.ReadRequest(apReq, from)
	if err != nil {
		kdc.WriteFrame(conn, (&core.ErrorMessage{
			Code: core.ErrNotAuthenticated, Text: err.Error()}).Encode())
		return
	}
	if len(sess.Reply) != 0 {
		if err := kdc.WriteFrame(conn, sess.Reply); err != nil {
			return
		}
	}
	frame, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	cmd, err := sess.RdPriv(frame)
	if err != nil {
		return
	}
	r := wire.NewReader(cmd)
	switch r.Str() {
	case "SEND":
		to := r.Str()
		body := r.Str()
		if r.Done() != nil {
			return
		}
		// The From field is the *authenticated* identity — a client
		// cannot send as someone else.
		n := Notice{From: sess.Client.String(), To: to, Body: body}
		delivered := s.route(n)
		kdc.WriteFrame(conn, sess.MkSafe([]byte(fmt.Sprintf("DELIVERED %d", delivered))))

	case "SUB":
		if r.Done() != nil {
			return
		}
		user := sess.Client.Name
		ch := s.subscribe(user)
		defer s.unsubscribe(user, ch)
		kdc.WriteFrame(conn, sess.MkSafe([]byte("SUBSCRIBED")))
		conn.SetDeadline(time.Time{}) // stream until the client goes away
		// Watch for the client hanging up: subscribers send nothing
		// after the handshake, so any read completion means disconnect.
		gone := make(chan struct{})
		go func() {
			defer close(gone)
			buf := make([]byte, 1)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}()
		for {
			select {
			case n, ok := <-ch:
				if !ok {
					return
				}
				if err := kdc.WriteFrame(conn, sess.MkSafe(encodeNotice(n))); err != nil {
					return
				}
			case <-gone:
				return
			}
		}
	}
}

// Listener serves the hub over TCP.
type Listener struct {
	tcp    net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Serve binds the hub on addr.
func Serve(s *Server, addr string) (*Listener, error) {
	tcp, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("zephyr: binding: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Listener{tcp: tcp, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := tcp.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				s.HandleConn(conn)
			}()
		}
	}()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.tcp.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error {
	l.cancel()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

// connect authenticates and sends the initial private command.
func connect(krb *client.Client, addr string, service core.Principal, cmd []byte) (net.Conn, *client.AppSession, error) {
	apReq, sess, err := krb.MkReq(service, 0, true)
	if err != nil {
		return nil, nil, err
	}
	conn, err := net.DialTimeout("tcp4", addr, 5*time.Second)
	if err != nil {
		return nil, nil, err
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := kdc.WriteFrame(conn, apReq); err != nil {
		conn.Close()
		return nil, nil, err
	}
	reply, err := kdc.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if e := core.IfErrorMessage(reply); e != nil {
		conn.Close()
		return nil, nil, e
	}
	if err := sess.VerifyReply(reply); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if err := kdc.WriteFrame(conn, sess.MkPriv(cmd)); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, sess, nil
}

// Send delivers one notice, returning how many subscribers received it.
func Send(krb *client.Client, addr string, service core.Principal, to, body string) (int, error) {
	var w wire.Writer
	w.Str("SEND")
	w.Str(to)
	w.Str(body)
	conn, sess, err := connect(krb, addr, service, w.Buf)
	if err != nil {
		return 0, fmt.Errorf("zephyr: send: %w", err)
	}
	defer conn.Close()
	frame, err := kdc.ReadFrame(conn)
	if err != nil {
		return 0, err
	}
	reply, err := sess.RdSafe(frame, core.Addr{})
	if err != nil {
		return 0, err
	}
	var n int
	if _, err := fmt.Sscanf(string(reply), "DELIVERED %d", &n); err != nil {
		return 0, fmt.Errorf("zephyr: unexpected reply %q", reply)
	}
	return n, nil
}

// Subscription is a live notice stream.
type Subscription struct {
	Notices <-chan Notice
	conn    net.Conn
}

// Close terminates the stream.
func (s *Subscription) Close() error { return s.conn.Close() }

// Subscribe opens an authenticated notice stream for the user.
func Subscribe(krb *client.Client, addr string, service core.Principal) (*Subscription, error) {
	var w wire.Writer
	w.Str("SUB")
	conn, sess, err := connect(krb, addr, service, w.Buf)
	if err != nil {
		return nil, fmt.Errorf("zephyr: subscribe: %w", err)
	}
	frame, err := kdc.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if ack, err := sess.RdSafe(frame, core.Addr{}); err != nil || string(ack) != "SUBSCRIBED" {
		conn.Close()
		return nil, fmt.Errorf("zephyr: subscription not acknowledged: %v", err)
	}
	ch := make(chan Notice, 16)
	go func() {
		defer close(ch)
		conn.SetDeadline(time.Time{})
		for {
			frame, err := kdc.ReadFrame(conn)
			if err != nil {
				return
			}
			data, err := sess.RdSafe(frame, core.Addr{})
			if err != nil {
				return
			}
			n, err := decodeNotice(data)
			if err != nil {
				return
			}
			ch <- n
		}
	}()
	return &Subscription{Notices: ch, conn: conn}, nil
}

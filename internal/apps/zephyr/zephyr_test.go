package zephyr

import (
	"testing"
	"time"

	"kerberos"
	"kerberos/internal/core"
)

type env struct {
	realm   *kerberos.Realm
	lst     *Listener
	service core.Principal
}

func newEnv(t testing.TB) *env {
	t.Helper()
	realm, err := kerberos.NewRealm(kerberos.RealmConfig{
		Name: "ATHENA.MIT.EDU", MasterPassword: "master",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { realm.Close() })
	for _, u := range []string{"jis", "bcn", "steiner"} {
		if err := realm.AddUser(u, u+"-pw"); err != nil {
			t.Fatal(err)
		}
	}
	tab, err := realm.AddService("zephyr", "hub")
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(realm.NewServiceContext("zephyr", "hub", tab))
	l, err := Serve(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return &env{realm: realm, lst: l,
		service: core.Principal{Name: "zephyr", Instance: "hub", Realm: realm.Name}}
}

// TestNotificationDelivery: bcn subscribes; jis sends; the notice
// arrives carrying jis's *authenticated* identity.
func TestNotificationDelivery(t *testing.T) {
	e := newEnv(t)
	bcn, err := e.realm.NewLoggedInClient("bcn", "bcn-pw")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Subscribe(bcn, e.lst.Addr(), e.service)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	jis, err := e.realm.NewLoggedInClient("jis", "jis-pw")
	if err != nil {
		t.Fatal(err)
	}
	n, err := Send(jis, e.lst.Addr(), e.service, "bcn", "your build is green")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("delivered to %d subscribers, want 1", n)
	}
	select {
	case notice := <-sub.Notices:
		if notice.From != "jis@ATHENA.MIT.EDU" {
			t.Errorf("From = %q; identity not authenticated", notice.From)
		}
		if notice.To != "bcn" || notice.Body != "your build is green" {
			t.Errorf("notice = %+v", notice)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notice never arrived")
	}
}

// TestSenderCannotForgeIdentity: the From field comes from the ticket,
// not from anything the sender claims.
func TestSenderCannotForgeIdentity(t *testing.T) {
	e := newEnv(t)
	bcn, err := e.realm.NewLoggedInClient("bcn", "bcn-pw")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Subscribe(bcn, e.lst.Addr(), e.service)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// steiner sends; whatever the payload, the notice says steiner.
	steiner, err := e.realm.NewLoggedInClient("steiner", "steiner-pw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Send(steiner, e.lst.Addr(), e.service, "bcn", "hi, this is totally jis"); err != nil {
		t.Fatal(err)
	}
	select {
	case notice := <-sub.Notices:
		if notice.From != "steiner@ATHENA.MIT.EDU" {
			t.Errorf("From = %q, want the authenticated sender", notice.From)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notice never arrived")
	}
}

// TestNoSubscribers: a send to an offline user delivers to zero
// subscribers but succeeds.
func TestNoSubscribers(t *testing.T) {
	e := newEnv(t)
	jis, err := e.realm.NewLoggedInClient("jis", "jis-pw")
	if err != nil {
		t.Fatal(err)
	}
	n, err := Send(jis, e.lst.Addr(), e.service, "nobody-online", "hello?")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("delivered = %d", n)
	}
}

// TestUnauthenticatedRejected: no tickets, no zephyrgrams.
func TestUnauthenticatedRejected(t *testing.T) {
	e := newEnv(t)
	c := kerberos.NewClient(core.Principal{Name: "jis", Realm: e.realm.Name}, e.realm.ClientConfig())
	c.Addr = core.Addr{127, 0, 0, 1}
	if _, err := Send(c, e.lst.Addr(), e.service, "bcn", "spam"); err == nil {
		t.Fatal("sent without tickets")
	}
	if _, err := Subscribe(c, e.lst.Addr(), e.service); err == nil {
		t.Fatal("subscribed without tickets")
	}
}

// TestMultipleSubscribers: fan-out to several subscriptions of the same
// user.
func TestMultipleSubscribers(t *testing.T) {
	e := newEnv(t)
	bcn, err := e.realm.NewLoggedInClient("bcn", "bcn-pw")
	if err != nil {
		t.Fatal(err)
	}
	var subs []*Subscription
	for i := 0; i < 3; i++ {
		sub, err := Subscribe(bcn, e.lst.Addr(), e.service)
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs = append(subs, sub)
	}
	jis, err := e.realm.NewLoggedInClient("jis", "jis-pw")
	if err != nil {
		t.Fatal(err)
	}
	n, err := Send(jis, e.lst.Addr(), e.service, "bcn", "fan-out")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("delivered = %d, want 3", n)
	}
	for i, sub := range subs {
		select {
		case notice := <-sub.Notices:
			if notice.Body != "fan-out" {
				t.Errorf("sub %d notice = %+v", i, notice)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("sub %d never got the notice", i)
		}
	}
}

package rsh

import (
	"strings"
	"testing"

	"kerberos"
	"kerberos/internal/core"
	"kerberos/internal/wire"
)

type env struct {
	realm   *kerberos.Realm
	lst     *Listener
	service core.Principal
	rhosts  *Rhosts
}

func newEnv(t testing.TB) *env {
	t.Helper()
	realm, err := kerberos.NewRealm(kerberos.RealmConfig{
		Name: "ATHENA.MIT.EDU", MasterPassword: "master",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { realm.Close() })
	if err := realm.AddUser("jis", "zanzibar"); err != nil {
		t.Fatal(err)
	}
	tab, err := realm.AddService("rcmd", "priam")
	if err != nil {
		t.Fatal(err)
	}
	service := core.Principal{Name: "rcmd", Instance: "priam", Realm: realm.Name}

	rhosts := NewRhosts()
	server := &Server{
		Hostname: "priam",
		Svc:      realm.NewServiceContext("rcmd", "priam", tab),
		Rhosts:   rhosts,
	}
	l, err := Serve(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return &env{realm: realm, lst: l, service: service, rhosts: rhosts}
}

// TestKerberosPath: a user with valid tickets runs commands without any
// .rhosts entry (§7.1).
func TestKerberosPath(t *testing.T) {
	e := newEnv(t)
	krb, err := e.realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(krb, e.lst.Addr(), e.service, "jis", "whoami")
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodKerberos {
		t.Errorf("method = %v, want kerberos", res.Method)
	}
	if res.As != "jis@ATHENA.MIT.EDU" {
		t.Errorf("ran as %q", res.As)
	}
	if !strings.Contains(res.Output, "jis@ATHENA.MIT.EDU via kerberos") {
		t.Errorf("output = %q", res.Output)
	}
	// Other commands.
	res, err = RunKerberos(krb, e.lst.Addr(), e.service, "echo hello athena")
	if err != nil || res.Output != "hello athena" {
		t.Errorf("echo: %q %v", res.Output, err)
	}
	res, err = RunKerberos(krb, e.lst.Addr(), e.service, "hostname")
	if err != nil || res.Output != "priam" {
		t.Errorf("hostname: %q %v", res.Output, err)
	}
}

// TestFallbackToRhosts: without tickets the client falls back to the
// address check, which succeeds only with an .rhosts entry.
func TestFallbackToRhosts(t *testing.T) {
	e := newEnv(t)
	// No Kerberos client at all; .rhosts trusts jis from loopback.
	e.rhosts.Allow(core.Addr{127, 0, 0, 1}, "jis")
	res, err := Run(nil, e.lst.Addr(), e.service, "jis", "whoami")
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodRhosts {
		t.Errorf("method = %v, want rhosts", res.Method)
	}
	if !strings.Contains(res.Output, "via rhosts") {
		t.Errorf("output = %q", res.Output)
	}
}

// TestFallbackDenied: no tickets and no .rhosts entry means no access.
func TestFallbackDenied(t *testing.T) {
	e := newEnv(t)
	if _, err := Run(nil, e.lst.Addr(), e.service, "jis", "whoami"); err == nil {
		t.Fatal("access granted with neither kerberos nor .rhosts")
	}
}

// TestRhostsSpoofWeakness: the fallback trusts the claimed username —
// anyone on a trusted host can claim to be jis. This is the §1 weakness
// that motivates Kerberos; the Kerberos path does not have it.
func TestRhostsSpoofWeakness(t *testing.T) {
	e := newEnv(t)
	e.rhosts.Allow(core.Addr{127, 0, 0, 1}, "jis")
	// Mallory, on the same trusted host, claims to be jis.
	res, err := RunRhosts(e.lst.Addr(), "jis", "whoami")
	if err != nil {
		t.Fatal(err)
	}
	if res.As != "jis" {
		t.Errorf("rhosts ran as %q", res.As)
	}
	// The Kerberos path is immune: mallory has no jis tickets. (She has
	// no tickets at all here, so the kerberos attempt fails outright.)
	if _, err := RunKerberos(nil2(t), e.lst.Addr(), e.service, "whoami"); err == nil {
		t.Error("kerberos path succeeded without credentials")
	}
}

// nil2 builds a client with no TGT (never logged in).
func nil2(t testing.TB) *kerberos.Client {
	t.Helper()
	return kerberos.NewClient(core.Principal{Name: "mallory", Realm: "ATHENA.MIT.EDU"},
		&kerberos.Config{Realms: map[string][]string{"ATHENA.MIT.EDU": {"127.0.0.1:1"}}})
}

// TestUnknownCommandAndMethod: server answers garbage gracefully.
func TestUnknownCommandAndMethod(t *testing.T) {
	e := newEnv(t)
	krb, err := e.realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunKerberos(krb, e.lst.Addr(), e.service, "rm -rf /")
	if err != nil || !strings.Contains(res.Output, "unknown command") {
		t.Errorf("unknown command: %q %v", res.Output, err)
	}
	if Method(9).String() != "unknown" {
		t.Error("method name wrong")
	}
	if MethodKerberos.String() != "kerberos" || MethodRhosts.String() != "rhosts" {
		t.Error("method names wrong")
	}
}

// TestReplayedRequestRejected: capturing jis's rsh request and replaying
// it gets caught by the server's replay cache.
func TestReplayedRequestRejected(t *testing.T) {
	e := newEnv(t)
	krb, err := e.realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	apReq, _, err := krb.MkReq(e.service, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	send := func() (Result, error) {
		var w wire.Writer
		w.U8(uint8(MethodKerberos))
		w.Bytes(apReq)
		w.Str("whoami")
		return exchange(e.lst.Addr(), w.Buf)
	}
	if _, err := send(); err != nil {
		t.Fatalf("first use failed: %v", err)
	}
	if _, err := send(); err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Errorf("replay = %v", err)
	}
}

// TestPrivateSession is the encrypted (-x) mode: mutual authentication,
// command and output as private messages, nothing readable on the wire.
func TestPrivateSession(t *testing.T) {
	e := newEnv(t)
	krb, err := e.realm.NewLoggedInClient("jis", "zanzibar")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPrivate(krb, e.lst.Addr(), e.service, "echo secret-output")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "secret-output" {
		t.Errorf("output = %q", res.Output)
	}
	if res.Method != MethodKerberosPrivate {
		t.Errorf("method = %v", res.Method)
	}
	if MethodKerberosPrivate.String() != "kerberos-private" {
		t.Error("method name wrong")
	}
}

// TestPrivateSessionNoTickets: without credentials the encrypted mode
// cannot even start.
func TestPrivateSessionNoTickets(t *testing.T) {
	e := newEnv(t)
	if _, err := RunPrivate(nil2(t), e.lst.Addr(), e.service, "whoami"); err == nil {
		t.Fatal("private session without tickets succeeded")
	}
}

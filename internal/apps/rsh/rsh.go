// Package rsh is the Kerberized remote shell of §7.1: "The rlogin and
// rsh commands first try to authenticate using Kerberos. A user with
// valid Kerberos tickets can rlogin to another Athena machine without
// having to set up .rhosts files. If the Kerberos authentication fails,
// the programs fall back on their usual methods of authorization, in
// this case, the .rhosts files."
//
// The "shell" is simulated: the server executes a tiny command set
// (whoami, echo, hostname) as the authenticated identity — enough to
// observe which authentication path ran and as whom.
package rsh

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kdc"
	"kerberos/internal/wire"
)

// Method is the authentication path a request took.
type Method uint8

// Authentication methods.
const (
	MethodKerberos Method = 1 // ticket + authenticator
	MethodRhosts   Method = 2 // address-based .rhosts check (the fallback)
	// MethodKerberosPrivate is the encrypted session (the -x mode of
	// Athena's rlogin): mutual authentication, then the command and its
	// output travel as private messages — nothing readable on the wire.
	MethodKerberosPrivate Method = 3
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodKerberos:
		return "kerberos"
	case MethodRhosts:
		return "rhosts"
	case MethodKerberosPrivate:
		return "kerberos-private"
	default:
		return "unknown"
	}
}

// Rhosts is the classic address-based authorization database: which
// (client address, claimed username) pairs a host trusts.
type Rhosts struct {
	mu      sync.RWMutex
	allowed map[string]bool // "addr/user"
}

// NewRhosts builds the database.
func NewRhosts() *Rhosts {
	return &Rhosts{allowed: make(map[string]bool)}
}

// Allow trusts user connecting from addr.
func (r *Rhosts) Allow(addr core.Addr, user string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.allowed[addr.String()+"/"+user] = true
}

// Check reports whether the pair is trusted.
func (r *Rhosts) Check(addr core.Addr, user string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.allowed[addr.String()+"/"+user]
}

// Server is krshd: one host's remote-shell daemon.
type Server struct {
	Hostname string
	Svc      *client.Service // rcmd.<host> identity; nil disables Kerberos
	Rhosts   *Rhosts         // nil disables the fallback
}

// Result is what a command execution reports.
type Result struct {
	Output string
	Method Method
	As     string // identity the command ran as
}

// run executes the simulated command set as the given identity.
func (s *Server) run(command, identity string, method Method) Result {
	out := ""
	switch {
	case command == "whoami":
		out = identity + " via " + method.String()
	case command == "hostname":
		out = s.Hostname
	case strings.HasPrefix(command, "echo "):
		out = strings.TrimPrefix(command, "echo ")
	default:
		out = "krshd: unknown command: " + command
	}
	return Result{Output: out, Method: method, As: identity}
}

// HandleConn runs one remote-shell session.
func (s *Server) HandleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	from := core.Addr{}
	if t, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		from = core.AddrFromIP(t.IP)
	}

	msg, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	r := wire.NewReader(msg)
	method := Method(r.U8())
	switch method {
	case MethodKerberos:
		apReq := r.BytesCopy()
		command := r.Str()
		if r.Done() != nil || s.Svc == nil {
			kdc.WriteFrame(conn, fail("kerberos not available"))
			return
		}
		sess, err := s.Svc.ReadRequest(apReq, from)
		if err != nil {
			kdc.WriteFrame(conn, fail("kerberos authentication failed: "+err.Error()))
			return
		}
		res := s.run(command, sess.Client.String(), MethodKerberos)
		kdc.WriteFrame(conn, ok(res))

	case MethodKerberosPrivate:
		apReq := r.BytesCopy()
		if r.Done() != nil || s.Svc == nil {
			kdc.WriteFrame(conn, fail("kerberos not available"))
			return
		}
		sess, err := s.Svc.ReadRequest(apReq, from)
		if err != nil {
			kdc.WriteFrame(conn, fail("kerberos authentication failed: "+err.Error()))
			return
		}
		// The client demanded mutual authentication: prove ourselves
		// before it sends the (encrypted) command.
		if len(sess.Reply) == 0 {
			kdc.WriteFrame(conn, fail("private session requires mutual authentication"))
			return
		}
		if err := kdc.WriteFrame(conn, sess.Reply); err != nil {
			return
		}
		frame, err := kdc.ReadFrame(conn)
		if err != nil {
			return
		}
		cmdBytes, err := sess.RdPriv(frame)
		if err != nil {
			return
		}
		res := s.run(string(cmdBytes), sess.Client.String(), MethodKerberosPrivate)
		kdc.WriteFrame(conn, sess.MkPriv(ok(res)))

	case MethodRhosts:
		user := r.Str()
		command := r.Str()
		if r.Done() != nil {
			kdc.WriteFrame(conn, fail("malformed request"))
			return
		}
		// "authentication is done by checking the Internet address from
		// which a connection has been established" (§1) — exactly the
		// mechanism Kerberos replaces.
		if s.Rhosts == nil || !s.Rhosts.Check(from, user) {
			kdc.WriteFrame(conn, fail("permission denied (no .rhosts entry)"))
			return
		}
		res := s.run(command, user, MethodRhosts)
		kdc.WriteFrame(conn, ok(res))

	default:
		kdc.WriteFrame(conn, fail("unknown method"))
	}
}

func ok(res Result) []byte {
	var w wire.Writer
	w.Bool(true)
	w.Str(res.Output)
	w.U8(uint8(res.Method))
	w.Str(res.As)
	return w.Buf
}

func fail(msg string) []byte {
	var w wire.Writer
	w.Bool(false)
	w.Str(msg)
	return w.Buf
}

func parseReply(data []byte) (Result, error) {
	r := wire.NewReader(data)
	if !r.Bool() {
		msg := r.Str()
		if err := r.Done(); err != nil {
			return Result{}, err
		}
		return Result{}, fmt.Errorf("rsh: %s", msg)
	}
	res := Result{Output: r.Str(), Method: Method(r.U8()), As: r.Str()}
	if err := r.Done(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// Listener serves krshd over TCP.
type Listener struct {
	tcp    net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Serve binds krshd on addr.
func Serve(s *Server, addr string) (*Listener, error) {
	tcp, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("rsh: binding: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Listener{tcp: tcp, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := tcp.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				s.HandleConn(conn)
			}()
		}
	}()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.tcp.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error {
	l.cancel()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

func exchange(addr string, msg []byte) (Result, error) {
	conn, err := net.DialTimeout("tcp4", addr, 5*time.Second)
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := kdc.WriteFrame(conn, msg); err != nil {
		return Result{}, err
	}
	reply, err := kdc.ReadFrame(conn)
	if err != nil {
		return Result{}, err
	}
	return parseReply(reply)
}

// RunKerberos executes a command authenticated by Kerberos only.
func RunKerberos(krb *client.Client, addr string, service core.Principal, command string) (Result, error) {
	apReq, _, err := krb.MkReq(service, 0, false)
	if err != nil {
		return Result{}, fmt.Errorf("rsh: obtaining credentials: %w", err)
	}
	var w wire.Writer
	w.U8(uint8(MethodKerberos))
	w.Bytes(apReq)
	w.Str(command)
	return exchange(addr, w.Buf)
}

// RunPrivate executes a command over an encrypted session (the -x
// mode): mutual authentication first, then the command and its output as
// private messages — an eavesdropper learns nothing but lengths.
func RunPrivate(krb *client.Client, addr string, service core.Principal, command string) (Result, error) {
	apReq, sess, err := krb.MkReq(service, 0, true)
	if err != nil {
		return Result{}, fmt.Errorf("rsh: obtaining credentials: %w", err)
	}
	conn, err := net.DialTimeout("tcp4", addr, 5*time.Second)
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	var w wire.Writer
	w.U8(uint8(MethodKerberosPrivate))
	w.Bytes(apReq)
	if err := kdc.WriteFrame(conn, w.Buf); err != nil {
		return Result{}, err
	}
	apReply, err := kdc.ReadFrame(conn)
	if err != nil {
		return Result{}, err
	}
	// Never send the command to a server that can't prove itself.
	if err := sess.VerifyReply(apReply); err != nil {
		if r, perr := parseReply(apReply); perr == nil {
			_ = r // the server sent a cleartext refusal instead
		}
		return Result{}, fmt.Errorf("rsh: server failed mutual authentication: %w", err)
	}
	if err := kdc.WriteFrame(conn, sess.MkPriv([]byte(command))); err != nil {
		return Result{}, err
	}
	frame, err := kdc.ReadFrame(conn)
	if err != nil {
		return Result{}, err
	}
	plain, err := sess.RdPriv(frame, core.Addr{})
	if err != nil {
		return Result{}, fmt.Errorf("rsh: tampered reply: %w", err)
	}
	return parseReply(plain)
}

// RunRhosts executes a command via the address-based fallback only.
func RunRhosts(addr, localUser, command string) (Result, error) {
	var w wire.Writer
	w.U8(uint8(MethodRhosts))
	w.Str(localUser)
	w.Str(command)
	return exchange(addr, w.Buf)
}

// Run is the user-facing command: "first try to authenticate using
// Kerberos ... fall back on ... the .rhosts files." krb may be nil
// (no tickets at all), forcing the fallback.
func Run(krb *client.Client, addr string, service core.Principal, localUser, command string) (Result, error) {
	if krb != nil {
		res, err := RunKerberos(krb, addr, service, command)
		if err == nil {
			return res, nil
		}
	}
	return RunRhosts(addr, localUser, command)
}

package register

import (
	"errors"
	"testing"
	"time"

	"kerberos"
	"kerberos/internal/core"
)

func newEnv(t testing.TB) (*kerberos.Realm, *Registrar) {
	t.Helper()
	realm, err := kerberos.NewRealm(kerberos.RealmConfig{
		Name: "ATHENA.MIT.EDU", MasterPassword: "master",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { realm.Close() })
	sms := NewSMS(
		Student{Name: "Jennifer G. Steiner", MITID: "900000001"},
		Student{Name: "Clifford Neuman", MITID: "900000002"},
	)
	return realm, &Registrar{SMS: sms, DB: realm.DB, Realm: realm.Name}
}

// TestRegisterNewUser: valid SMS record + unique username ⇒ a working
// Kerberos principal.
func TestRegisterNewUser(t *testing.T) {
	realm, reg := newEnv(t)
	if err := reg.Register("Jennifer G. Steiner", "900000001", "steiner", "moria-gate"); err != nil {
		t.Fatal(err)
	}
	// The new user can immediately kinit.
	c, err := realm.NewLoggedInClient("steiner", "moria-gate")
	if err != nil {
		t.Fatalf("new user cannot log in: %v", err)
	}
	if c.Cache.Len() != 1 {
		t.Error("no TGT after first login")
	}
}

// TestRegisterInvalidSMS: "it determines whether the information
// entered ... is valid."
func TestRegisterInvalidSMS(t *testing.T) {
	_, reg := newEnv(t)
	if err := reg.Register("Not A Student", "999999999", "fake", "password1"); !errors.Is(err, ErrNotAStudent) {
		t.Errorf("invalid SMS = %v", err)
	}
	// Right ID, wrong name.
	if err := reg.Register("Wrong Name", "900000001", "steiner", "password1"); !errors.Is(err, ErrNotAStudent) {
		t.Errorf("mismatched name = %v", err)
	}
}

// TestRegisterUniqueness: "It then checks with Kerberos to see if the
// requested username is unique."
func TestRegisterUniqueness(t *testing.T) {
	_, reg := newEnv(t)
	if err := reg.Register("Jennifer G. Steiner", "900000001", "steiner", "moria-gate"); err != nil {
		t.Fatal(err)
	}
	err := reg.Register("Clifford Neuman", "900000002", "steiner", "seattle-rain")
	if !errors.Is(err, ErrTaken) {
		t.Errorf("duplicate username = %v", err)
	}
}

// TestRegisterValidation: bad usernames and weak passwords are refused.
func TestRegisterValidation(t *testing.T) {
	_, reg := newEnv(t)
	if err := reg.Register("Jennifer G. Steiner", "900000001", "bad@name", "longenough"); err == nil {
		t.Error("invalid username accepted")
	}
	if err := reg.Register("Jennifer G. Steiner", "900000001", "steiner", "abc"); !errors.Is(err, ErrWeak) {
		t.Errorf("weak password = %v", err)
	}
}

// TestRegisterReadOnlySlave: signups need the master database.
func TestRegisterReadOnlySlave(t *testing.T) {
	realm, reg := newEnv(t)
	realm.DB.SetReadOnly(true)
	defer realm.DB.SetReadOnly(false)
	if err := reg.Register("Jennifer G. Steiner", "900000001", "steiner", "moria-gate"); err == nil {
		t.Error("registered against a read-only database")
	}
}

// TestRegistrarClock: injected clocks stamp the entry.
func TestRegistrarClock(t *testing.T) {
	realm, reg := newEnv(t)
	fixed := time.Date(1988, 2, 9, 12, 0, 0, 0, time.UTC)
	reg.Clock = func() time.Time { return fixed }
	if err := reg.Register("Jennifer G. Steiner", "900000001", "steiner", "moria-gate"); err != nil {
		t.Fatal(err)
	}
	e, err := realm.DB.Get("steiner", "")
	if err != nil {
		t.Fatal(err)
	}
	if !e.ModTime.Equal(fixed) || e.ModBy != "register" {
		t.Errorf("entry admin info = %+v", e)
	}
	_ = core.Principal{}
}

// Package register reproduces the new-user signup program of §7.1: "The
// program for signing up new users, called register, uses both the
// Service Management System (SMS) and Kerberos. From SMS, it determines
// whether the information entered by the would-be new Athena user, such
// as name and MIT identification number, is valid. It then checks with
// Kerberos to see if the requested username is unique. If all goes well,
// a new entry is made to the Kerberos database, containing the username
// and password."
package register

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kdb"
)

// Student is an SMS record: the institutional data a signup is checked
// against.
type Student struct {
	Name  string // legal name
	MITID string // MIT identification number
}

// SMS is the Service Management System stub: the validity oracle the
// paper's register consults. (The real SMS is a separate Athena service;
// only this lookup is needed here.)
type SMS struct {
	mu      sync.RWMutex
	records map[string]Student // keyed by MITID
}

// NewSMS builds an SMS with the given student body.
func NewSMS(students ...Student) *SMS {
	s := &SMS{records: make(map[string]Student)}
	for _, st := range students {
		s.records[st.MITID] = st
	}
	return s
}

// Validate checks that (name, mitID) matches an institutional record.
func (s *SMS) Validate(name, mitID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.records[mitID]
	return ok && st.Name == name
}

// Errors.
var (
	ErrNotAStudent = errors.New("register: name and MIT ID do not match any record")
	ErrTaken       = errors.New("register: username already taken")
	ErrWeak        = errors.New("register: password too short")
)

// Registrar performs signups against one realm's master database. The
// register program ran with database access on Athena; this type is that
// privileged program.
type Registrar struct {
	SMS   *SMS
	DB    *kdb.Database
	Realm string
	Clock func() time.Time // optional
}

func (r *Registrar) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now()
}

// Register signs up a new user: SMS validity check, Kerberos uniqueness
// check, then the database insertion with the password-derived key.
func (r *Registrar) Register(name, mitID, username, password string) error {
	if !r.SMS.Validate(name, mitID) {
		return ErrNotAStudent
	}
	p := core.Principal{Name: username, Realm: r.Realm}
	if !p.Valid() {
		return fmt.Errorf("register: invalid username %q", username)
	}
	if len(password) < 6 {
		return ErrWeak
	}
	if _, err := r.DB.Get(username, ""); err == nil {
		return fmt.Errorf("%w: %s", ErrTaken, username)
	}
	key := client.PasswordKey(p, password)
	defer clear(key[:])
	if err := r.DB.Add(username, "", key, 0, "register", r.now()); err != nil {
		return fmt.Errorf("register: adding principal: %w", err)
	}
	return nil
}

package workload

// Temporal workload specs: the servegen-style vocabulary the realm
// simulator (internal/sim) uses to turn the flat §9 population into a
// day with a shape — 9am login storms, ticket-lifetime renewal waves,
// a cohort whose clocks have drifted. The flat generators above answer
// "who exists"; these answer "when they act".

import (
	"math/rand"
	"sort"
	"time"
)

// Window is a span of simulated time with an arrival process inside it:
// N arrivals spread across [Start, Start+Dur) relative to scenario
// start. Arrivals are evenly paced with seeded per-slot jitter — the
// deterministic stand-in for a Poisson process that keeps traces
// byte-reproducible while still de-synchronizing the cohort.
type Window struct {
	Start time.Duration // offset from scenario start
	Dur   time.Duration // length of the arrival window
}

// Rate returns the offered arrival rate of n arrivals across the
// window, in arrivals per second.
func (w Window) Rate(n int) float64 {
	if w.Dur <= 0 {
		return 0
	}
	return float64(n) / w.Dur.Seconds()
}

// Arrivals returns n deterministic arrival offsets (from scenario
// start, ascending) inside the window: slot i sits at its even-pacing
// position plus seeded jitter of up to ±40% of a slot, so same-seed
// runs replay the exact same storm while no two principals share an
// instant by construction.
func (w Window) Arrivals(seed int64, n int) []time.Duration {
	if n <= 0 {
		return nil
	}
	if w.Dur <= 0 {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = w.Start
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	slot := w.Dur / time.Duration(n)
	out := make([]time.Duration, n)
	for i := range out {
		center := w.Start + time.Duration(i)*slot + slot/2
		jitter := time.Duration((rng.Float64() - 0.5) * 0.8 * float64(slot))
		out[i] = center + jitter
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Cohort is a slice of the population with one temporal behavior: its
// members log in during Storm, follow each login with TGS exchanges,
// and re-key as a wave RenewAfter later. A cohort whose workstation
// clocks have drifted carries the offset in Skew; past ±core.ClockSkew
// the KDC rejects its authenticators, and Retries models the rejected
// clients hammering the realm again — the epidemic, not the cure.
type Cohort struct {
	Name string

	// FirstUser and Users select the population slice [FirstUser,
	// FirstUser+Users) of the Spec this cohort animates.
	FirstUser int
	Users     int

	// Storm is the login-arrival window.
	Storm Window

	// TicketsPerLogin is how many TGS exchanges follow each login.
	TicketsPerLogin int

	// RenewAfter, when positive, schedules a renewal (a TGS exchange on
	// the by-then-aging TGT) RenewAfter after each member's login, plus
	// per-member jitter of up to RenewJitter — the §9 "everyone's 8-hour
	// ticket expires at once" wave.
	RenewAfter  time.Duration
	RenewJitter time.Duration

	// Skew offsets every timestamp this cohort's workstations produce.
	Skew time.Duration

	// Retries is how many times a member whose exchange was rejected
	// for skew retries before giving up.
	Retries int
}

// User maps the cohort-local index j to the Spec user index.
func (c Cohort) User(j int) int { return c.FirstUser + j }

// ArrivalSeed derives the cohort's arrival-jitter seed from the
// scenario seed and the cohort's position, so cohorts de-correlate
// without any shared rng state.
func ArrivalSeed(scenarioSeed int64, cohortIndex int) int64 {
	return scenarioSeed*1_000_003 + int64(cohortIndex)*7919
}

package workload

import (
	"testing"
	"time"
)

func TestWindowArrivalsDeterministic(t *testing.T) {
	w := Window{Start: 9 * time.Hour, Dur: 30 * time.Minute}
	a := w.Arrivals(42, 500)
	b := w.Arrivals(42, 500)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
	}
	c := w.Arrivals(43, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestWindowArrivalsBoundsAndOrder(t *testing.T) {
	w := Window{Start: time.Hour, Dur: 10 * time.Minute}
	arr := w.Arrivals(7, 200)
	lo, hi := w.Start, w.Start+w.Dur
	for i, at := range arr {
		if at < lo-w.Dur/200 || at > hi {
			t.Fatalf("arrival %d = %v outside window [%v, %v]", i, at, lo, hi)
		}
		if i > 0 && arr[i] < arr[i-1] {
			t.Fatalf("arrivals not ascending at %d: %v < %v", i, arr[i], arr[i-1])
		}
	}
	if got := w.Rate(200); got < 0.32 || got > 0.35 {
		t.Errorf("Rate = %v, want ~0.333", got)
	}
}

func TestWindowArrivalsDegenerate(t *testing.T) {
	if got := (Window{}).Arrivals(1, 0); got != nil {
		t.Errorf("zero arrivals = %v", got)
	}
	point := Window{Start: time.Minute}
	arr := point.Arrivals(1, 3)
	for _, at := range arr {
		if at != time.Minute {
			t.Errorf("zero-duration window arrival = %v, want 1m", at)
		}
	}
}

func TestCohortUserMapping(t *testing.T) {
	c := Cohort{FirstUser: 100, Users: 50}
	if c.User(0) != 100 || c.User(49) != 149 {
		t.Errorf("User mapping wrong: %d, %d", c.User(0), c.User(49))
	}
	if ArrivalSeed(1, 0) == ArrivalSeed(1, 1) {
		t.Error("cohort seeds collide")
	}
	if ArrivalSeed(1, 0) == ArrivalSeed(2, 0) {
		t.Error("scenario seeds collide")
	}
}

package workload

import (
	"io"
	"net"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/kdc"
)

// blackholeKDC is a crashed-but-routed master: a UDP socket that
// swallows datagrams and a TCP listener on the same port that accepts
// and never answers.
func blackholeKDC(t *testing.T) string {
	t.Helper()
	var pc net.PacketConn
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		var err error
		pc, err = net.ListenPacket("udp4", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ln, err = net.Listen("tcp4", pc.LocalAddr().String())
		if err == nil {
			break
		}
		pc.Close()
		if attempt >= 16 {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { pc.Close(); ln.Close() })
	go func() {
		buf := make([]byte, 8192)
		for {
			if _, _, err := pc.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(io.Discard, conn) }()
		}
	}()
	return pc.LocalAddr().String()
}

// TestAthenaDaySurvivesLossAndDeadMaster replays the §9 workday over
// real sockets with the network misbehaving: the realm's master KDC is
// a blackhole, the path to the live slave drops 20% of request
// datagrams, and every workstation shares one sticky selector — the
// deployment shape of §5.3. Every login and every service ticket must
// still come through.
func TestAthenaDaySurvivesLossAndDeadMaster(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection soak skipped in -short mode")
	}
	const realm = "ATHENA.MIT.EDU"
	server, _, err := NewRealmServer(Small, realm)
	if err != nil {
		t.Fatal(err)
	}
	l, err := kdc.Serve(server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	inj := kdc.NewFaultInjector(kdc.FaultSpec{LossRate: 0.2, Seed: 1988})
	sel := kdc.NewSelector(blackholeKDC(t), l.Addr())
	sel.HeadStart = 100 * time.Millisecond
	sel.DialUDP = inj.DialUDP

	d := &Driver{
		Spec:            Small,
		Realm:           realm,
		Exchange:        func(req []byte) ([]byte, error) { return sel.Exchange(req, 2*time.Second) },
		Addr:            core.Addr{127, 0, 0, 1},
		TicketsPerLogin: 2,
	}
	m := d.Run(8)

	if got := m.Failures.Load(); got != 0 {
		t.Errorf("failures = %d, want 0: the workday must survive loss and a dead master", got)
	}
	if got := m.ASExchanges.Load(); got != uint64(Small.Users) {
		t.Errorf("AS exchanges = %d, want %d", got, Small.Users)
	}
	if got := m.TGSExchanges.Load(); got != uint64(2*Small.Users) {
		t.Errorf("TGS exchanges = %d, want %d", got, 2*Small.Users)
	}
	if got := inj.Dropped.Load(); got == 0 {
		t.Error("fault injector dropped nothing; the soak exercised no recovery")
	}
	t.Logf("%d users in %v: %d datagrams sent, %d dropped, %d duplicated",
		Small.Users, m.Elapsed, inj.Sent.Load(), inj.Dropped.Load(), inj.Duplicated.Load())
}

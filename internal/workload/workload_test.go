package workload

import (
	"testing"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kdb"
)

func TestSpecDeterminism(t *testing.T) {
	a := Spec{Users: 10, Workstations: 3, Services: 2, Seed: 7}
	b := Spec{Users: 10, Workstations: 3, Services: 2, Seed: 7}
	for i := 0; i < 10; i++ {
		if a.UserName(i) != b.UserName(i) || a.UserPassword(i) != b.UserPassword(i) {
			t.Fatal("user generation not deterministic")
		}
	}
	if a.WorkstationAddr(1) == a.WorkstationAddr(2) {
		t.Error("workstation addresses collide")
	}
	// Different seeds give different passwords.
	c := Spec{Users: 10, Seed: 8}
	if a.UserPassword(3) == c.UserPassword(3) {
		t.Error("seed does not affect passwords")
	}
	// Service principals carry per-host instances (§3 convention).
	s0 := a.ServicePrincipal(0, "R")
	s1 := a.ServicePrincipal(1, "R")
	if s0.Instance == s1.Instance {
		t.Error("service instances collide")
	}
}

func TestInstallPopulation(t *testing.T) {
	spec := Spec{Users: 25, Workstations: 5, Services: 4, Seed: 1}
	db := kdb.New(client.PasswordKey(core.Principal{Name: "K"}, "m"))
	if err := Install(db, spec, "TEST.REALM", time.Now()); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 25+4 {
		t.Errorf("installed %d entries, want 29", db.Len())
	}
	// Installing twice fails on duplicates, proving entries landed.
	if err := Install(db, spec, "TEST.REALM", time.Now()); err == nil {
		t.Error("double install succeeded")
	}
}

// TestAthenaScalePopulation runs the §9 workload at reduced size in
// normal test runs; the full 5,000-user day lives in the benchmark
// suite (BenchmarkS9AthenaScale).
func TestAthenaScalePopulation(t *testing.T) {
	spec := Small
	if !testing.Short() {
		spec = Spec{Users: 400, Workstations: 65, Services: 20, Seed: 9}
	}
	server, _, err := NewRealmServer(spec, "ATHENA.MIT.EDU")
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{
		Spec:            spec,
		Realm:           "ATHENA.MIT.EDU",
		Handle:          server.Handle,
		TicketsPerLogin: 3,
	}
	m := d.Run(8)
	if got := m.ASExchanges.Load(); got != uint64(spec.Users) {
		t.Errorf("AS exchanges = %d, want %d", got, spec.Users)
	}
	if got := m.TGSExchanges.Load(); got != uint64(spec.Users*3) {
		t.Errorf("TGS exchanges = %d, want %d", got, spec.Users*3)
	}
	if m.Failures.Load() != 0 {
		t.Errorf("failures = %d", m.Failures.Load())
	}
	// Cross-check against the server's own counters.
	if server.Metrics().ASRequests.Load() != uint64(spec.Users) {
		t.Error("server AS counter disagrees")
	}
	if server.Metrics().Errors.Load() != 0 {
		t.Errorf("server error counter = %d", server.Metrics().Errors.Load())
	}
}

// TestDriverDetectsFailure: a user with a wrong password shows up in the
// failure counter, not as silent success.
func TestDriverDetectsFailure(t *testing.T) {
	spec := Spec{Users: 3, Workstations: 1, Services: 1, Seed: 4}
	server, db, err := NewRealmServer(spec, "ATHENA.MIT.EDU")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt user 1's key behind the driver's back.
	k := client.PasswordKey(core.Principal{Name: spec.UserName(1), Realm: "ATHENA.MIT.EDU"}, "different")
	if err := db.SetKey(spec.UserName(1), "", k, "test", time.Now()); err != nil {
		t.Fatal(err)
	}
	d := &Driver{Spec: spec, Realm: "ATHENA.MIT.EDU", Handle: server.Handle, TicketsPerLogin: 1}
	m := d.Run(2)
	if m.Failures.Load() != 1 {
		t.Errorf("failures = %d, want 1", m.Failures.Load())
	}
	if m.ASExchanges.Load() != 2 {
		t.Errorf("AS exchanges = %d, want 2", m.ASExchanges.Load())
	}
}

// TestChurnIsDeterministicAndJournaled: two identical churn rounds on
// identical databases journal identical change sequences, and the
// change count matches what Churn reports.
func TestChurnIsDeterministicAndJournaled(t *testing.T) {
	now := time.Unix(1_500_000_000, 0)
	build := func() *kdb.Database {
		db := kdb.New(client.PasswordKey(core.Principal{Name: "K", Instance: "M", Realm: "R"}, "m"))
		if err := Install(db, Small, "R", now); err != nil {
			t.Fatal(err)
		}
		return db
	}
	a, b := build(), build()
	base := a.Serial()
	na, err := Churn(a, Small, "R", 0.10, 7, now)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Churn(b, Small, "R", 0.10, 7, now)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || na < Small.Users/10 {
		t.Fatalf("churn counts: %d vs %d", na, nb)
	}
	if got := a.Serial() - base; got != uint64(na) {
		t.Errorf("journal advanced %d serials, Churn reported %d", got, na)
	}
	if a.Digest() != b.Digest() {
		t.Errorf("identical churn produced digests %x vs %x", a.Digest(), b.Digest())
	}
	// Different rounds touch different users/keys.
	if _, err := Churn(b, Small, "R", 0.10, 8, now); err != nil {
		t.Fatal(err)
	}
	if a.Digest() == b.Digest() {
		t.Error("distinct rounds converged to the same digest")
	}
}

// Package workload generates the synthetic Athena-scale population used
// to reproduce §9 of the paper: "Since January of 1987, Kerberos has
// been Project Athena's sole means of authenticating its 5,000 users,
// 650 workstations, and 65 servers."
//
// The population is deterministic in its seed, so experiment runs are
// repeatable. The driver replays a synthetic workday against a KDC
// in-process (message level), measuring authentication throughput the
// way the deployment would experience it.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/obs"
)

// Spec sizes a synthetic deployment.
type Spec struct {
	Users        int
	Workstations int
	Services     int
	Seed         int64
}

// Athena is the §9 deployment: 5,000 users, 650 workstations, 65
// servers.
var Athena = Spec{Users: 5000, Workstations: 650, Services: 65}

// Small is a laptop-friendly smoke-test population.
var Small = Spec{Users: 50, Workstations: 10, Services: 5}

// UserName returns the i-th synthetic username.
func (s Spec) UserName(i int) string { return fmt.Sprintf("u%05d", i) }

// UserPassword returns the i-th user's password (deterministic).
func (s Spec) UserPassword(i int) string {
	return fmt.Sprintf("pw-%d-%d", s.Seed, i)
}

// UserPrincipal returns the i-th user principal in realm.
func (s Spec) UserPrincipal(i int, realm string) core.Principal {
	return core.Principal{Name: s.UserName(i), Realm: realm}
}

// WorkstationAddr returns the i-th workstation's address, spread over a
// 10.0.0.0/8-style space as Athena's subnets were over MITnet.
func (s Spec) WorkstationAddr(i int) core.Addr {
	return core.Addr{10, byte(i >> 16), byte(i >> 8), byte(i)}
}

// ServicePrincipal returns the i-th service principal: one service type
// per host, mirroring the instance-per-machine convention of §3.
func (s Spec) ServicePrincipal(i int, realm string) core.Principal {
	kinds := []string{"rlogin", "rsh", "pop", "nfs", "zephyr"}
	return core.Principal{
		Name:     kinds[i%len(kinds)],
		Instance: fmt.Sprintf("host%03d", i),
		Realm:    realm,
	}
}

// Install registers the whole population in a realm database: every
// user with a password-derived key, every service with a random key.
func Install(db *kdb.Database, spec Spec, realm string, now time.Time) error {
	for i := 0; i < spec.Users; i++ {
		if err := installUser(db, spec, realm, i, now); err != nil {
			return fmt.Errorf("workload: installing user %d: %w", i, err)
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	for i := 0; i < spec.Services; i++ {
		if err := installService(db, spec, realm, i, rng.Int63(), now); err != nil {
			return fmt.Errorf("workload: installing service %d: %w", i, err)
		}
	}
	return nil
}

// installUser registers one user, wiping the derived key before the
// loop moves on (one helper call per principal keeps the wipe scoped).
func installUser(db *kdb.Database, spec Spec, realm string, i int, now time.Time) error {
	p := spec.UserPrincipal(i, realm)
	key := client.PasswordKey(p, spec.UserPassword(i))
	defer clear(key[:])
	return db.Add(p.Name, p.Instance, key, 0, "register", now)
}

// installService registers one service with a deterministic per-seed
// key, derived like a password.
func installService(db *kdb.Database, spec Spec, realm string, i int, seed int64, now time.Time) error {
	p := spec.ServicePrincipal(i, realm)
	key := des.StringToKey(fmt.Sprintf("svc-%d-%d", seed, i), realm)
	defer clear(key[:])
	return db.Add(p.Name, p.Instance, key, 0, "kadmin", now)
}

// Churn mutates a fraction of the user population, modeling the write
// traffic a live realm feeds into incremental propagation (§5.3): the
// dominant operation is a password change (SetKey), with an occasional
// deregistration and re-registration. Deterministic in (Seed, round) so
// benchmark and test runs are repeatable; returns how many journal
// changes the round produced.
func Churn(db *kdb.Database, spec Spec, realm string, fraction float64, round int64, now time.Time) (int, error) {
	if spec.Users == 0 || fraction <= 0 {
		return 0, nil
	}
	start, n := churnSpan(spec, fraction, round)
	changes := 0
	for j := 0; j < n; j++ {
		i := (start + j) % spec.Users
		p := spec.UserPrincipal(i, realm)
		if err := churnUser(db, spec, p, i, round, j%10 == 3, now); err != nil {
			return changes, fmt.Errorf("workload: churn round %d user %d: %w", round, i, err)
		}
		changes++
		if j%10 == 3 {
			changes++ // delete + re-add journals two changes
		}
	}
	return changes, nil
}

// churnSpan picks the pseudo-random user range a churn round touches.
// Deterministic in (Seed, round) so Revert can retrace the same span.
func churnSpan(spec Spec, fraction float64, round int64) (start, n int) {
	n = int(float64(spec.Users) * fraction)
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed*1_000_003 + round))
	return rng.Intn(spec.Users), n
}

// Revert undoes a Churn round: every user in the round's span gets the
// install-time password back. Benchmarks that measure churn propagation
// use it so the population's keys match the Driver's again afterwards
// (the KVNOs keep climbing, as they would in a live realm).
func Revert(db *kdb.Database, spec Spec, realm string, fraction float64, round int64, now time.Time) (int, error) {
	if spec.Users == 0 || fraction <= 0 {
		return 0, nil
	}
	start, n := churnSpan(spec, fraction, round)
	for j := 0; j < n; j++ {
		i := (start + j) % spec.Users
		if err := revertUser(db, spec, spec.UserPrincipal(i, realm), i, now); err != nil {
			return j, fmt.Errorf("workload: revert round %d user %d: %w", round, i, err)
		}
	}
	return n, nil
}

// revertUser restores one user's original key — a helper call per
// principal so the derived key is wiped before the loop moves on.
func revertUser(db *kdb.Database, spec Spec, p core.Principal, i int, now time.Time) error {
	key := client.PasswordKey(p, spec.UserPassword(i))
	defer clear(key[:])
	return db.SetKey(p.Name, p.Instance, key, "kadmin", now)
}

// churnUser applies one user's churn — a helper call per principal so
// the derived key is wiped before the loop moves on.
func churnUser(db *kdb.Database, spec Spec, p core.Principal, i int, round int64, reregister bool, now time.Time) error {
	key := client.PasswordKey(p, fmt.Sprintf("%s-r%d", spec.UserPassword(i), round))
	defer clear(key[:])
	if reregister {
		if err := db.Delete(p.Name, p.Instance); err != nil {
			return err
		}
		return db.Add(p.Name, p.Instance, key, 0, "kadmin", now)
	}
	return db.SetKey(p.Name, p.Instance, key, "kadmin", now)
}

// Metrics aggregates a driver run. Beyond the exchange counts, the
// latency histograms capture the client-observed distribution of each
// round trip — the §9 experience is shaped by its tail, not its mean.
type Metrics struct {
	ASExchanges  atomic.Uint64
	TGSExchanges atomic.Uint64
	Failures     atomic.Uint64
	Elapsed      time.Duration
	ASLatency    obs.Histogram
	TGSLatency   obs.Histogram
}

// Summary renders the run in one line, with p50/p95/p99 per exchange.
func (m *Metrics) Summary() string {
	as, tgs := m.ASLatency.Snapshot(), m.TGSLatency.Snapshot()
	return fmt.Sprintf(
		"AS %d (p50 %v p95 %v p99 %v) TGS %d (p50 %v p95 %v p99 %v) failures %d in %v",
		m.ASExchanges.Load(), as.Quantile(0.50), as.Quantile(0.95), as.Quantile(0.99),
		m.TGSExchanges.Load(), tgs.Quantile(0.50), tgs.Quantile(0.95), tgs.Quantile(0.99),
		m.Failures.Load(), m.Elapsed)
}

// Driver replays user sessions against a KDC handler.
type Driver struct {
	Spec  Spec
	Realm string
	// Handle is the KDC entry point (master or slave); message-level so
	// the experiment measures the server, not the socket stack.
	Handle func(msg []byte, from core.Addr) []byte
	// Exchange, when set, carries each message to the KDC instead of
	// Handle — e.g. a kdc.Selector closure over real sockets, so
	// resilience experiments can inject packet loss, duplication, and
	// dead masters between the workstation and the KDC.
	Exchange func(req []byte) ([]byte, error)
	// Addr, when nonzero, overrides the synthetic per-user workstation
	// address. Required when driving real sockets: the KDC then sees the
	// true source address, and authenticators must carry it too.
	Addr core.Addr
	// TicketsPerLogin is how many TGS exchanges follow each login.
	TicketsPerLogin int

	seq atomic.Uint32
}

// send carries one encoded request to the KDC via whichever path the
// driver is configured with.
func (d *Driver) send(msg []byte, from core.Addr) ([]byte, error) {
	if d.Exchange != nil {
		return d.Exchange(msg)
	}
	return d.Handle(msg, from), nil
}

// wsAddr picks the workstation address user i authenticates from.
func (d *Driver) wsAddr(i int) core.Addr {
	if d.Addr != (core.Addr{}) {
		return d.Addr
	}
	return d.Spec.WorkstationAddr(i % max(d.Spec.Workstations, 1))
}

// RunUser performs one user's session: an AS exchange (the login of
// §4.2) followed by TicketsPerLogin TGS exchanges (§4.4), verifying
// every reply cryptographically as a real workstation would.
func (d *Driver) RunUser(i int, m *Metrics) error {
	userP := d.Spec.UserPrincipal(i, d.Realm)
	userKey := client.PasswordKey(userP, d.Spec.UserPassword(i))
	defer clear(userKey[:])
	ws := d.wsAddr(i)
	now := time.Now()

	// Phase 1: initial ticket.
	asReq := &core.AuthRequest{
		Client:  userP,
		Service: core.TGSPrincipal(d.Realm, d.Realm),
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(now),
	}
	asStart := time.Now()
	raw, err := d.send(asReq.Encode(), ws)
	if err != nil {
		m.Failures.Add(1)
		return err
	}
	m.ASLatency.Observe(time.Since(asStart))
	if err := core.IfErrorMessage(raw); err != nil {
		m.Failures.Add(1)
		return err
	}
	rep, err := core.DecodeAuthReply(raw)
	if err != nil {
		m.Failures.Add(1)
		return err
	}
	tgt, err := rep.Open(userKey)
	if err != nil {
		m.Failures.Add(1)
		return err
	}
	m.ASExchanges.Add(1)

	// Phases 2+3 repeated: service tickets via the TGS.
	for t := 0; t < d.TicketsPerLogin; t++ {
		svc := d.Spec.ServicePrincipal((i+t)%max(d.Spec.Services, 1), d.Realm)
		// The sequence number rides in the checksum so simultaneous
		// requests never collide in the replay cache.
		auth := core.NewAuthenticator(userP, ws, time.Now(), d.seq.Add(1))
		tgsReq := &core.TGSRequest{
			APReq: core.APRequest{
				TicketRealm:   d.Realm,
				Ticket:        tgt.Ticket,
				Authenticator: auth.Seal(tgt.SessionKey),
			},
			Service: svc,
			Life:    core.MaxLife,
			Time:    core.TimeFromGo(time.Now()),
		}
		tgsStart := time.Now()
		raw, err := d.send(tgsReq.Encode(), ws)
		if err != nil {
			m.Failures.Add(1)
			return err
		}
		m.TGSLatency.Observe(time.Since(tgsStart))
		if err := core.IfErrorMessage(raw); err != nil {
			m.Failures.Add(1)
			return err
		}
		tgsRep, err := core.DecodeAuthReply(raw)
		if err != nil {
			m.Failures.Add(1)
			return err
		}
		if _, err := tgsRep.Open(tgt.SessionKey); err != nil {
			m.Failures.Add(1)
			return err
		}
		m.TGSExchanges.Add(1)
	}
	return nil
}

// Run replays sessions for every user with the given concurrency,
// returning aggregate metrics.
func (d *Driver) Run(concurrency int) *Metrics {
	if concurrency < 1 {
		concurrency = 1
	}
	m := &Metrics{}
	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				_ = d.RunUser(i, m)
			}
		}()
	}
	for i := 0; i < d.Spec.Users; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	m.Elapsed = time.Since(start)
	return m
}

// NewRealmServer builds a KDC over a freshly installed population —
// convenience for tests and benchmarks.
func NewRealmServer(spec Spec, realm string) (*kdc.Server, *kdb.Database, error) {
	db := kdb.New(client.PasswordKey(core.Principal{Name: "K", Instance: "M", Realm: realm}, "master"))
	now := time.Now()
	tgsKey, err := des.NewRandomKey()
	defer clear(tgsKey[:]) // before the error check: cover every exit path
	if err != nil {
		return nil, nil, err
	}
	if err := db.Add(core.TGSName, realm, tgsKey, 0, "kdb_init", now); err != nil {
		return nil, nil, err
	}
	if err := Install(db, spec, realm, now); err != nil {
		return nil, nil, err
	}
	return kdc.New(realm, db), db, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package kadm

import (
	"bytes"
	"errors"
	"log"
	"strings"
	"sync"
	"testing"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/testclock"
)

const testRealm = "ATHENA.MIT.EDU"

var t0 = time.Date(1988, 2, 9, 12, 0, 0, 0, time.UTC)

// syncBuffer is a logger sink safe to read while server goroutines may
// still be writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// env is a full realm: KDC, KDBM, database, ACL, adjustable clock.
type env struct {
	db       *kdb.Database
	acl      *ACL
	kdcL     *kdc.Listener
	kdbmL    *Listener
	server   *Server
	clk      *testclock.Clock
	logBuf   *syncBuffer
	adminKey des.Key
}

func (e *env) clock() time.Time { return e.clk.Now() }

func newEnv(t testing.TB) *env {
	t.Helper()
	e := &env{clk: testclock.New(t0), logBuf: &syncBuffer{}}

	e.db = kdb.New(des.StringToKey("master", testRealm))
	mustAdd := func(name, inst string, key des.Key, life core.Lifetime) {
		t.Helper()
		if err := e.db.Add(name, inst, key, life, "kdb_init", t0); err != nil {
			t.Fatal(err)
		}
	}
	tgsKey, _ := des.NewRandomKey()
	mustAdd(core.TGSName, testRealm, tgsKey, 0)
	cpKey, _ := des.NewRandomKey()
	mustAdd(core.ChangePwName, core.ChangePwInstance, cpKey, 12)
	mustAdd("jis", "", client.PasswordKey(core.Principal{Name: "jis", Realm: testRealm}, "zanzibar"), 0)
	mustAdd("bcn", "", client.PasswordKey(core.Principal{Name: "bcn", Realm: testRealm}, "seattle"), 0)
	e.adminKey = client.PasswordKey(core.Principal{Name: "jis", Instance: "admin", Realm: testRealm}, "sekrit")
	mustAdd("jis", "admin", e.adminKey, 0)

	var err error
	e.acl, err = NewACL(core.Principal{Name: "jis", Instance: "admin", Realm: testRealm})
	if err != nil {
		t.Fatal(err)
	}

	kdcServer := kdc.New(testRealm, e.db, kdc.WithClock(e.clock))
	e.kdcL, err = kdc.Serve(kdcServer, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.kdcL.Close() })

	e.server = NewServer(testRealm, e.db, e.acl,
		WithClock(e.clock), WithLogger(log.New(e.logBuf, "", 0)))
	e.kdbmL, err = Serve(e.server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.kdbmL.Close() })
	return e
}

func (e *env) client(t testing.TB, name, instance string) *client.Client {
	t.Helper()
	c := client.New(core.Principal{Name: name, Instance: instance, Realm: testRealm}, &client.Config{
		Realms:  map[string][]string{testRealm: {e.kdcL.Addr()}},
		Timeout: 2 * time.Second,
	})
	c.Addr = core.Addr{127, 0, 0, 1}
	c.Clock = e.clock
	return c
}

// step advances the shared clock so consecutive authenticators differ.
func (e *env) step() { e.clk.Advance(3 * time.Second) }

// TestKpasswdSelfService reproduces the §5.2 kpasswd flow: the user
// proves the old password, the new key is installed, old logins fail and
// new ones work.
func TestKpasswdSelfService(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "jis", "")
	if err := ChangePassword(c, e.kdbmL.Addr(), "zanzibar", "new-secret"); err != nil {
		t.Fatal(err)
	}
	e.step()
	// Old password no longer logs in.
	if _, err := e.client(t, "jis", "").Login("zanzibar"); err == nil {
		t.Error("old password still valid")
	}
	e.step()
	if _, err := e.client(t, "jis", "").Login("new-secret"); err != nil {
		t.Errorf("new password rejected: %v", err)
	}
	// KVNO bumped.
	entry, _ := e.db.Get("jis", "")
	if entry.KVNO != 2 {
		t.Errorf("kvno = %d", entry.KVNO)
	}
	if !strings.Contains(e.logBuf.String(), "PERMITTED change_password") {
		t.Error("password change not logged")
	}
}

// TestKpasswdWrongOldPassword: without the old password no changepw
// ticket can be fetched.
func TestKpasswdWrongOldPassword(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "jis", "")
	if err := ChangePassword(c, e.kdbmL.Addr(), "bad-guess", "new-secret"); err == nil {
		t.Fatal("password changed with wrong old password")
	}
	// Database untouched.
	entry, _ := e.db.Get("jis", "")
	if entry.KVNO != 1 {
		t.Error("kvno changed")
	}
}

// TestUserCannotChangeOthers: "a passerby could walk up and change
// her/his password" is exactly what the design prevents; a non-admin
// changing someone else's password is denied and logged.
func TestUserCannotChangeOthers(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "jis", "") // plain user, not on the ACL
	key := client.PasswordKey(core.Principal{Name: "bcn", Realm: testRealm}, "stolen")
	err := ChangeOtherPassword(c, e.kdbmL.Addr(), "zanzibar",
		core.Principal{Name: "bcn", Realm: testRealm}, key)
	var pe *core.ProtocolError
	if !errors.As(err, &pe) || pe.Code != core.ErrNotAuthorized {
		t.Errorf("cross-user change error = %v", err)
	}
	if !strings.Contains(e.logBuf.String(), "DENIED change_password") {
		t.Error("denial not logged")
	}
}

// TestAdminOperations: the admin instance (on the ACL) can add
// principals and change any password (§5.1, §5.2, Figure 12).
func TestAdminOperations(t *testing.T) {
	e := newEnv(t)
	admin := e.client(t, "jis", "admin")

	// Add a new service principal.
	newKey, _ := des.NewRandomKey()
	rcmd := core.Principal{Name: "rcmd", Instance: "helen", Realm: testRealm}
	if err := AddPrincipal(admin, e.kdbmL.Addr(), "sekrit", rcmd, newKey, 0); err != nil {
		t.Fatal(err)
	}
	entry, err := e.db.Get("rcmd", "helen")
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := e.db.Key(entry); k != newKey {
		t.Error("stored key mismatch")
	}
	// Adding it again fails.
	e.step()
	if err := AddPrincipal(admin, e.kdbmL.Addr(), "sekrit", rcmd, newKey, 0); err == nil {
		t.Error("duplicate principal added")
	}
	// Admin resets bcn's password.
	e.step()
	bcnKey := client.PasswordKey(core.Principal{Name: "bcn", Realm: testRealm}, "reset-1")
	if err := ChangeOtherPassword(admin, e.kdbmL.Addr(), "sekrit",
		core.Principal{Name: "bcn", Realm: testRealm}, bcnKey); err != nil {
		t.Fatal(err)
	}
	e.step()
	if _, err := e.client(t, "bcn", "").Login("reset-1"); err != nil {
		t.Errorf("reset password rejected: %v", err)
	}
	// Extract a service key (ext_srvtab).
	e.step()
	k, kvno, err := ExtractKey(admin, e.kdbmL.Addr(), "sekrit", rcmd)
	if err != nil {
		t.Fatal(err)
	}
	if k != newKey || kvno != 1 {
		t.Error("extracted key mismatch")
	}
	// Listing.
	e.step()
	listing, err := ListPrincipals(admin, e.kdbmL.Addr(), "sekrit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listing, "rcmd.helen") || !strings.Contains(listing, "jis.admin") {
		t.Errorf("listing incomplete:\n%s", listing)
	}
}

// TestNonAdminPrivilegedOps: plain users cannot add, extract, or list.
func TestNonAdminPrivilegedOps(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "jis", "") // jis without the admin instance
	key, _ := des.NewRandomKey()
	var pe *core.ProtocolError

	err := AddPrincipal(c, e.kdbmL.Addr(), "zanzibar",
		core.Principal{Name: "evil", Realm: testRealm}, key, 0)
	if !errors.As(err, &pe) || pe.Code != core.ErrNotAuthorized {
		t.Errorf("add error = %v", err)
	}
	e.step()
	_, _, err = ExtractKey(c, e.kdbmL.Addr(), "zanzibar",
		core.Principal{Name: "rlogin", Instance: "priam", Realm: testRealm})
	if !errors.As(err, &pe) || pe.Code != core.ErrNotAuthorized {
		t.Errorf("extract error = %v", err)
	}
	e.step()
	if _, err := ListPrincipals(c, e.kdbmL.Addr(), "zanzibar"); err == nil {
		t.Error("non-admin listed the database")
	}
}

// TestAdminMasterOnly reproduces Figure 11: "administration requests
// cannot be serviced" against a read-only (slave) database.
func TestAdminMasterOnly(t *testing.T) {
	e := newEnv(t)
	e.db.SetReadOnly(true)
	c := e.client(t, "jis", "")
	err := ChangePassword(c, e.kdbmL.Addr(), "zanzibar", "new-secret")
	var pe *core.ProtocolError
	if !errors.As(err, &pe) || pe.Code != core.ErrSlaveReadOnly {
		t.Errorf("slave admin error = %v", err)
	}
}

// TestGetEntry: self and admin may read; others may not.
func TestGetEntry(t *testing.T) {
	e := newEnv(t)
	// Self-read via Execute (in-process, already authenticated).
	rep := e.server.Execute(core.Principal{Name: "jis", Realm: testRealm},
		&Request{Op: OpGetEntry, Name: "jis"})
	if !rep.OK || rep.KVNO != 1 {
		t.Errorf("self get = %+v", rep)
	}
	rep = e.server.Execute(core.Principal{Name: "jis", Realm: testRealm},
		&Request{Op: OpGetEntry, Name: "bcn"})
	if rep.OK {
		t.Error("cross-user get permitted")
	}
	rep = e.server.Execute(core.Principal{Name: "jis", Instance: "admin", Realm: testRealm},
		&Request{Op: OpGetEntry, Name: "bcn"})
	if !rep.OK {
		t.Errorf("admin get denied: %v", rep.Text)
	}
	rep = e.server.Execute(core.Principal{Name: "jis", Instance: "admin", Realm: testRealm},
		&Request{Op: OpGetEntry, Name: "ghost"})
	if rep.OK || rep.Code != core.ErrPrincipalUnknown {
		t.Errorf("missing-entry get = %+v", rep)
	}
}

// TestForeignRealmRequesterDenied: an identity authenticated in another
// realm cannot administer this one.
func TestForeignRealmRequesterDenied(t *testing.T) {
	e := newEnv(t)
	rep := e.server.Execute(core.Principal{Name: "jis", Instance: "admin", Realm: "LCS.MIT.EDU"},
		&Request{Op: OpChangePassword, Name: "jis"})
	if rep.OK || rep.Code != core.ErrNotAuthorized {
		t.Errorf("foreign admin = %+v", rep)
	}
}

// TestExecuteUnknownOpAndBadTarget covers protocol edge cases.
func TestExecuteUnknownOpAndBadTarget(t *testing.T) {
	e := newEnv(t)
	admin := core.Principal{Name: "jis", Instance: "admin", Realm: testRealm}
	if rep := e.server.Execute(admin, &Request{Op: Op(77), Name: "x"}); rep.OK {
		t.Error("unknown op permitted")
	}
	if rep := e.server.Execute(admin, &Request{Op: OpChangePassword, Name: ""}); rep.OK {
		t.Error("empty target permitted")
	}
}

func TestRequestReplyCodec(t *testing.T) {
	key, _ := des.NewRandomKey()
	req := &Request{Op: OpAddPrincipal, Name: "rcmd", Instance: "helen", Key: key, MaxLife: 95}
	got, err := DecodeRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *req {
		t.Errorf("request round trip: %+v", got)
	}
	rep := &Reply{OK: true, Code: core.ErrNone, Text: "fine", KVNO: 3, Key: key,
		Expiration: core.TimeFromGo(t0)}
	gotR, err := DecodeReply(rep.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *gotR != *rep {
		t.Errorf("reply round trip: %+v", gotR)
	}
	// Truncations.
	enc := req.Encode()
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeRequest(enc[:n]); err == nil {
			t.Fatalf("truncated request (%d bytes) accepted", n)
		}
	}
	if _, err := DecodeReply([]byte{1}); err == nil {
		t.Error("truncated reply accepted")
	}
	failRep := &Reply{Code: core.ErrNotAuthorized, Text: "no"}
	if failRep.Err() == nil {
		t.Error("failed reply has nil Err")
	}
	if (&Reply{OK: true}).Err() != nil {
		t.Error("ok reply has non-nil Err")
	}
}

func TestOpString(t *testing.T) {
	for op := OpChangePassword; op <= OpListPrincipals; op++ {
		if op.String() == "unknown-op" {
			t.Errorf("op %d has no name", op)
		}
	}
	if Op(99).String() != "unknown-op" {
		t.Error("unknown op name wrong")
	}
}

func TestACL(t *testing.T) {
	adm := core.Principal{Name: "jis", Instance: "admin", Realm: testRealm}
	a, err := NewACL(adm)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Allowed(adm) {
		t.Error("listed admin denied")
	}
	if a.Allowed(core.Principal{Name: "jis", Realm: testRealm}) {
		t.Error("NULL instance allowed; ACL must require admin instances")
	}
	if a.Allowed(core.Principal{Name: "jis", Instance: "admin", Realm: "LCS.MIT.EDU"}) {
		t.Error("foreign-realm admin allowed")
	}
	// The §5.1 convention is enforced at insertion too.
	if _, err := NewACL(core.Principal{Name: "jis", Realm: testRealm}); err == nil {
		t.Error("NULL-instance ACL entry accepted")
	}
}

func TestACLFile(t *testing.T) {
	a, _ := NewACL(
		core.Principal{Name: "jis", Instance: "admin", Realm: testRealm},
		core.Principal{Name: "bcn", Instance: "admin", Realm: testRealm},
	)
	path := t.TempDir() + "/kadm_acl"
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadACL(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("loaded %d entries", got.Len())
	}
	if !got.Allowed(core.Principal{Name: "bcn", Instance: "admin", Realm: testRealm}) {
		t.Error("entry lost in round trip")
	}
	if _, err := LoadACL(path + ".missing"); err == nil {
		t.Error("missing ACL loaded")
	}
}

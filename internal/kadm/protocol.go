// Package kadm implements the Kerberos Database Management Service of
// §5 — the administration server (KDBM) with its kpasswd and kadmin
// client sides.
//
// The KDBM server "accepts requests to add principals to the database or
// change the passwords for existing principals" (§5.1). It is reachable
// only with a ticket for changepw.kerberos, which the ticket-granting
// service refuses to issue — the authentication service itself must be
// used, forcing the user to enter a password. Authorization is
// self-service or by ACL of admin instances; every request, permitted or
// denied, is logged.
package kadm

import (
	"encoding/binary"
	"errors"

	"kerberos/internal/core"
	"kerberos/internal/des"
)

// Op is a KDBM command opcode.
type Op uint8

// KDBM operations.
const (
	// OpChangePassword sets the requester's (or, for admins, anyone's)
	// key. kpasswd uses it (§5.2).
	OpChangePassword Op = iota + 1
	// OpAddPrincipal registers a new principal (kadmin, §5.2).
	OpAddPrincipal
	// OpGetEntry fetches a principal's public record (no key).
	OpGetEntry
	// OpExtractKey returns a service's key for srvtab installation
	// (ext_srvtab, §6.3). Admin-only.
	OpExtractKey
	// OpListPrincipals lists database entries. Admin-only.
	OpListPrincipals
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpChangePassword:
		return "change_password"
	case OpAddPrincipal:
		return "add_principal"
	case OpGetEntry:
		return "get_entry"
	case OpExtractKey:
		return "extract_key"
	case OpListPrincipals:
		return "list_principals"
	default:
		return "unknown-op"
	}
}

// Request is one KDBM command. It travels inside a private message
// (§2.1: private messages carry passwords), so new keys never cross the
// network in the clear.
type Request struct {
	Op       Op
	Name     string  // target principal name
	Instance string  // target principal instance
	Key      des.Key // new key for change/add; zero otherwise
	MaxLife  core.Lifetime
}

// Reply is the KDBM answer, also carried in a private message.
type Reply struct {
	OK         bool
	Code       core.ErrorCode // set when !OK
	Text       string         // human-readable detail or listing
	KVNO       uint8          // for get/extract
	Key        des.Key        // for extract
	Expiration core.KerberosTime
}

// ErrBadAdminMessage reports a malformed KDBM payload.
var ErrBadAdminMessage = errors.New("kadm: malformed admin message")

// Encode renders the request payload.
func (r *Request) Encode() []byte {
	var buf []byte
	buf = append(buf, byte(r.Op))
	buf = appendStr(buf, r.Name)
	buf = appendStr(buf, r.Instance)
	buf = append(buf, r.Key[:]...)
	buf = append(buf, byte(r.MaxLife))
	return buf
}

// DecodeRequest parses a request payload.
func DecodeRequest(data []byte) (*Request, error) {
	r := &payloadReader{data: data}
	req := &Request{Op: Op(r.u8()), Name: r.str(), Instance: r.str()}
	copy(req.Key[:], r.bytesN(des.KeySize))
	req.MaxLife = core.Lifetime(r.u8())
	if err := r.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// Encode renders the reply payload.
func (r *Reply) Encode() []byte {
	var buf []byte
	if r.OK {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Code))
	buf = appendStr(buf, r.Text)
	buf = append(buf, r.KVNO)
	buf = append(buf, r.Key[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Expiration))
	return buf
}

// DecodeReply parses a reply payload.
func DecodeReply(data []byte) (*Reply, error) {
	r := &payloadReader{data: data}
	rep := &Reply{OK: r.u8() != 0, Code: core.ErrorCode(r.u32()), Text: r.str()}
	rep.KVNO = r.u8()
	copy(rep.Key[:], r.bytesN(des.KeySize))
	rep.Expiration = core.KerberosTime(r.u32())
	if err := r.done(); err != nil {
		return nil, err
	}
	return rep, nil
}

// Err converts a failed reply into a ProtocolError, nil when OK.
func (r *Reply) Err() error {
	if r.OK {
		return nil
	}
	return &core.ProtocolError{Code: r.Code, Text: r.Text}
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type payloadReader struct {
	data []byte
	err  error
}

func (r *payloadReader) fail() {
	if r.err == nil {
		r.err = ErrBadAdminMessage
	}
}

func (r *payloadReader) u8() uint8 {
	if r.err != nil || len(r.data) < 1 {
		r.fail()
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.err != nil || len(r.data) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.data)
	r.data = r.data[4:]
	return v
}

func (r *payloadReader) bytesN(n int) []byte {
	if r.err != nil || len(r.data) < n {
		r.fail()
		return make([]byte, n)
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *payloadReader) str() string {
	if r.err != nil {
		return ""
	}
	n, used := binary.Uvarint(r.data)
	if used <= 0 || n > 1<<16 || uint64(len(r.data)-used) < n {
		r.fail()
		return ""
	}
	s := string(r.data[used : used+int(n)])
	r.data = r.data[used+int(n):]
	return s
}

func (r *payloadReader) done() error {
	if r.err == nil && len(r.data) != 0 {
		r.fail()
	}
	return r.err
}

package kadm

import (
	"net"
	"strings"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/kdc"
)

// TestConnGarbageAPRequest: an unauthenticated or garbled first frame
// gets an error reply (and a log line), never a hang or a crash.
func TestConnGarbageAPRequest(t *testing.T) {
	e := newEnv(t)
	conn, err := net.Dial("tcp4", e.kdbmL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := kdc.WriteFrame(conn, []byte("not an AP request")); err != nil {
		t.Fatal(err)
	}
	reply, err := kdc.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if core.IfErrorMessage(reply) == nil {
		t.Error("garbage accepted by KDBM")
	}
	if !strings.Contains(e.logBuf.String(), "DENIED") {
		t.Error("denial not logged")
	}
}

// TestConnDropAfterAuth: a client that authenticates and vanishes leaves
// no stuck goroutines (the deadline closes the connection); the server
// still works afterwards.
func TestConnDropAfterAuth(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "jis", "")
	// Authenticate but never send the command.
	if _, err := c.LoginService("zanzibar", core.ChangePwPrincipal(testRealm), 0); err != nil {
		t.Fatal(err)
	}
	apMsg, _, err := c.MkReq(core.ChangePwPrincipal(testRealm), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp4", e.kdbmL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	kdc.WriteFrame(conn, apMsg)
	kdc.ReadFrame(conn) // mutual-auth reply
	conn.Close()        // vanish

	// Server is still healthy: a real password change succeeds.
	e.step()
	c2 := e.client(t, "jis", "")
	if err := ChangePassword(c2, e.kdbmL.Addr(), "zanzibar", "still-works"); err != nil {
		t.Fatal(err)
	}
}

// TestReplayedAPRequestToKDBM: a captured KDBM authentication replayed
// verbatim is rejected by the replay cache.
func TestReplayedAPRequestToKDBM(t *testing.T) {
	e := newEnv(t)
	c := e.client(t, "jis", "")
	if _, err := c.LoginService("zanzibar", core.ChangePwPrincipal(testRealm), 0); err != nil {
		t.Fatal(err)
	}
	apMsg, _, err := c.MkReq(core.ChangePwPrincipal(testRealm), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	send := func() []byte {
		conn, err := net.Dial("tcp4", e.kdbmL.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		kdc.WriteFrame(conn, apMsg)
		reply, err := kdc.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}
	if core.IfErrorMessage(send()) != nil {
		t.Fatal("first presentation rejected")
	}
	if core.IfErrorMessage(send()) == nil {
		t.Error("replayed KDBM authentication accepted")
	}
}

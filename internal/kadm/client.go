package kadm

import (
	"fmt"
	"net"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdc"
)

// Client sides of the administration protocol (§5.2, Figure 12): the
// kpasswd and kadmin programs. Both "are required to enter the password
// ... This password is used to fetch a ticket for the KDBM server" — the
// ticket comes from the authentication service, never the TGS.

// Do runs one authenticated KDBM command: fetch a changepw ticket with
// the password, connect to the KDBM server, prove identity (with mutual
// authentication, so passwords are never sent to an impostor), and
// exchange the command inside private messages.
func Do(c *client.Client, kdbmAddr, password string, req *Request) (*Reply, error) {
	// Fresh ticket via the AS (the TGS refuses changepw tickets, §5.1).
	if _, err := c.LoginService(password,
		core.ChangePwPrincipal(c.Principal.Realm), core.Lifetime(0)); err != nil {
		return nil, fmt.Errorf("kadm: authenticating to KDBM: %w", err)
	}
	apMsg, sess, err := c.MkReq(core.ChangePwPrincipal(c.Principal.Realm), 0, true)
	if err != nil {
		return nil, fmt.Errorf("kadm: building request: %w", err)
	}

	conn, err := net.DialTimeout("tcp4", kdbmAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("kadm: connecting to KDBM at %s: %w", kdbmAddr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	if err := kdc.WriteFrame(conn, apMsg); err != nil {
		return nil, err
	}
	apReply, err := kdc.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("kadm: reading KDBM auth reply: %w", err)
	}
	if e := core.IfErrorMessage(apReply); e != nil {
		return nil, e
	}
	// The server must prove itself before we ship a new password to it.
	if err := sess.VerifyReply(apReply); err != nil {
		return nil, fmt.Errorf("kadm: KDBM failed mutual authentication: %w", err)
	}
	if err := kdc.WriteFrame(conn, sess.MkPriv(req.Encode())); err != nil {
		return nil, err
	}
	privReply, err := kdc.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("kadm: reading KDBM reply: %w", err)
	}
	payload, err := sess.RdPriv(privReply, core.Addr{})
	if err != nil {
		return nil, fmt.Errorf("kadm: decrypting KDBM reply: %w", err)
	}
	return DecodeReply(payload)
}

// ChangePassword is kpasswd: the user proves knowledge of the old
// password and installs a new one (§5.2).
func ChangePassword(c *client.Client, kdbmAddr, oldPassword, newPassword string) error {
	newKey := client.PasswordKey(c.Principal, newPassword)
	rep, err := Do(c, kdbmAddr, oldPassword, &Request{
		Op:       OpChangePassword,
		Name:     c.Principal.Name,
		Instance: c.Principal.Instance,
		Key:      newKey,
	})
	if err != nil {
		return err
	}
	return rep.Err()
}

// AddPrincipal is kadmin's add: an administrator (authenticated with the
// admin-instance password) registers a new principal with the given key.
func AddPrincipal(admin *client.Client, kdbmAddr, adminPassword string,
	target core.Principal, key des.Key, maxLife core.Lifetime) error {
	rep, err := Do(admin, kdbmAddr, adminPassword, &Request{
		Op:       OpAddPrincipal,
		Name:     target.Name,
		Instance: target.Instance,
		Key:      key,
		MaxLife:  maxLife,
	})
	if err != nil {
		return err
	}
	return rep.Err()
}

// ChangeOtherPassword is kadmin's cpw: an administrator sets another
// principal's key.
func ChangeOtherPassword(admin *client.Client, kdbmAddr, adminPassword string,
	target core.Principal, key des.Key) error {
	rep, err := Do(admin, kdbmAddr, adminPassword, &Request{
		Op:       OpChangePassword,
		Name:     target.Name,
		Instance: target.Instance,
		Key:      key,
	})
	if err != nil {
		return err
	}
	return rep.Err()
}

// ExtractKey is ext_srvtab (§6.3): an administrator pulls a service's
// key out of the database for installation in the server's srvtab file.
func ExtractKey(admin *client.Client, kdbmAddr, adminPassword string,
	service core.Principal) (des.Key, uint8, error) {
	rep, err := Do(admin, kdbmAddr, adminPassword, &Request{
		Op:       OpExtractKey,
		Name:     service.Name,
		Instance: service.Instance,
	})
	if err != nil {
		return des.Key{}, 0, err
	}
	if err := rep.Err(); err != nil {
		return des.Key{}, 0, err
	}
	return rep.Key, rep.KVNO, nil
}

// ListPrincipals returns the database listing (admin only).
func ListPrincipals(admin *client.Client, kdbmAddr, adminPassword string) (string, error) {
	rep, err := Do(admin, kdbmAddr, adminPassword, &Request{Op: OpListPrincipals})
	if err != nil {
		return "", err
	}
	if err := rep.Err(); err != nil {
		return "", err
	}
	return rep.Text, nil
}

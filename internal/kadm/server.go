package kadm

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/obs"
)

// Server is the KDBM administration server. Unlike the authentication
// server it performs write operations, so "the KDBM server may only run
// on the master Kerberos machine" (§5, Figure 11); against a read-only
// database every request fails with ErrSlaveReadOnly.
type Server struct {
	realm  string
	db     *kdb.Database
	acl    *ACL
	clock  func() time.Time
	logger *log.Logger

	metrics Metrics
	sink    obs.Sink

	svcMu sync.Mutex
	svc   *client.Service // changepw.kerberos verifier, rebuilt on key change
	kvno  uint8
}

// Metrics counts and times admin operations. Denied covers both
// authorization failures and operational errors (every non-OK reply);
// per §5.1 both dispositions are equally log-worthy.
type Metrics struct {
	Ops       obs.Counter
	Denied    obs.Counter
	OpLatency obs.Histogram
}

func (m *Metrics) register(reg *obs.Registry) {
	reg.RegisterCounter("kadm_ops", &m.Ops)
	reg.RegisterCounter("kadm_denied", &m.Denied)
	reg.RegisterHistogram("kadm_op_latency", &m.OpLatency)
}

// Option customizes a Server.
type Option func(*Server)

// WithClock substitutes the time source.
func WithClock(clock func() time.Time) Option {
	return func(s *Server) { s.clock = clock }
}

// WithLogger directs the request log. "All requests to the KDBM program,
// whether permitted or denied, are logged" (§5.1).
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithRegistry publishes the server's metrics on reg under the kadm_
// prefix.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics.register(reg) }
}

// WithTraceSink emits one obs.KadmOp event per executed admin command.
func WithTraceSink(sink obs.Sink) Option {
	return func(s *Server) { s.sink = sink }
}

// Metrics exposes the operation counters and latency histogram.
func (s *Server) Metrics() *Metrics { return &s.metrics }

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// NewServer creates a KDBM server for realm over the master database.
func NewServer(realm string, db *kdb.Database, acl *ACL, opts ...Option) *Server {
	s := &Server{
		realm:  realm,
		db:     db,
		acl:    acl,
		clock:  time.Now,
		logger: log.New(discard{}, "", 0),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// service returns the AP-request verifier for changepw.kerberos, backed
// by the current database key.
func (s *Server) service() (*client.Service, error) {
	entry, err := s.db.Get(core.ChangePwName, core.ChangePwInstance)
	if err != nil {
		return nil, core.NewError(core.ErrDatabase, "KDBM service key missing: %v", err)
	}
	key, err := s.db.Key(entry)
	defer clear(key[:]) // before the error check: cover every exit path
	if err != nil {
		return nil, core.NewError(core.ErrDatabase, "KDBM service key undecryptable")
	}
	s.svcMu.Lock()
	defer s.svcMu.Unlock()
	if s.svc == nil || s.kvno != entry.KVNO {
		tab := client.NewSrvtab()
		sp := core.ChangePwPrincipal(s.realm)
		tab.Set(sp, entry.KVNO, key)
		svc := client.NewService(sp, tab)
		svc.Clock = s.clock
		s.svc = svc
		s.kvno = entry.KVNO
	}
	return s.svc, nil
}

// HandleConn runs the KDBM protocol on one connection (Figure 12):
// AP request in, mutual-auth reply out, then one private-message command
// and its private-message reply.
func (s *Server) HandleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	from := core.Addr{}
	if t, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		from = core.AddrFromIP(t.IP)
	}

	apMsg, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	svc, err := s.service()
	if err != nil {
		s.logger.Printf("kdbm %s: unserviceable: %v", s.realm, err)
		return
	}
	sess, err := svc.ReadRequest(apMsg, from)
	if err != nil {
		s.logger.Printf("kdbm %s: DENIED unauthenticated request from %v: %v", s.realm, from, err)
		var pe *core.ProtocolError
		if !errors.As(err, &pe) {
			pe = core.NewError(core.ErrNotAuthenticated, "%v", err)
		}
		kdc.WriteFrame(conn, (&core.ErrorMessage{Code: pe.Code, Text: pe.Text}).Encode())
		return
	}
	if len(sess.Reply) != 0 {
		if err := kdc.WriteFrame(conn, sess.Reply); err != nil {
			return
		}
	}

	privMsg, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	payload, err := sess.RdPriv(privMsg)
	if err != nil {
		s.logger.Printf("kdbm %s: DENIED garbled command from %v: %v", s.realm, sess.Client, err)
		return
	}
	req, err := DecodeRequest(payload)
	var reply *Reply
	if err != nil {
		reply = &Reply{Code: core.ErrMsgTypeCode, Text: err.Error()}
	} else {
		reply = s.Execute(sess.Client, req)
	}
	kdc.WriteFrame(conn, sess.MkPriv(reply.Encode()))
}

// Execute authorizes and performs one admin command on behalf of the
// authenticated requester. Exported for in-process tests and benches.
func (s *Server) Execute(requester core.Principal, req *Request) *Reply {
	s.metrics.Ops.Inc()
	start := time.Now()
	reply := s.execute(requester, req)
	d := time.Since(start)
	s.metrics.OpLatency.Observe(d)
	verdict := "PERMITTED"
	if !reply.OK {
		verdict = "DENIED"
		s.metrics.Denied.Inc()
	}
	s.logger.Printf("kdbm %s: %s %s %s.%s by %v: %s",
		s.realm, verdict, req.Op, req.Name, req.Instance, requester, reply.Text)
	if s.sink != nil {
		ev := obs.Event{
			Kind:      obs.KadmOp,
			Time:      start,
			Duration:  d,
			Principal: requester.String(),
			Service:   fmt.Sprintf("%s %s.%s", req.Op, req.Name, req.Instance),
			KVNO:      reply.KVNO,
		}
		if !reply.OK {
			ev.Err = reply.Code.String()
		}
		s.sink.Emit(ev)
	}
	return reply
}

func fail(code core.ErrorCode, format string, args ...any) *Reply {
	return &Reply{Code: code, Text: fmt.Sprintf(format, args...)}
}

func (s *Server) execute(requester core.Principal, req *Request) *Reply {
	if s.db.ReadOnly() {
		return fail(core.ErrSlaveReadOnly, "administration requests require the master machine")
	}
	if requester.Realm != s.realm {
		return fail(core.ErrNotAuthorized, "requester %v is not of realm %s", requester, s.realm)
	}
	target := core.Principal{Name: req.Name, Instance: req.Instance, Realm: s.realm}
	if !target.Valid() && req.Op != OpListPrincipals {
		return fail(core.ErrMsgTypeCode, "invalid target principal")
	}

	// "it authorizes it by comparing the authenticated principal name of
	// the requester of the change to the principal name of the target of
	// the request. If they are the same, the request is permitted. If
	// they are not the same, the KDBM server consults an access control
	// list" (§5.1).
	self := requester.Name == target.Name && requester.Instance == target.Instance
	admin := s.acl.Allowed(requester)

	now := s.clock()
	switch req.Op {
	case OpChangePassword:
		if !self && !admin {
			return fail(core.ErrNotAuthorized, "%v may not change the password of %v", requester, target)
		}
		if err := s.db.SetKey(req.Name, req.Instance, req.Key, requester.String(), now); err != nil {
			return fail(core.ErrDatabase, "%v", err)
		}
		e, _ := s.db.Get(req.Name, req.Instance)
		return &Reply{OK: true, Text: "password changed", KVNO: e.KVNO}

	case OpAddPrincipal:
		if !admin {
			return fail(core.ErrNotAuthorized, "%v is not a Kerberos administrator", requester)
		}
		if err := s.db.Add(req.Name, req.Instance, req.Key, req.MaxLife, requester.String(), now); err != nil {
			return fail(core.ErrDuplicatePrincipa, "%v", err)
		}
		return &Reply{OK: true, Text: "principal added", KVNO: 1}

	case OpGetEntry:
		if !self && !admin {
			return fail(core.ErrNotAuthorized, "%v may not read %v", requester, target)
		}
		e, err := s.db.Get(req.Name, req.Instance)
		if err != nil {
			return fail(core.ErrPrincipalUnknown, "%v", err)
		}
		return &Reply{OK: true, Text: "entry found", KVNO: e.KVNO,
			Expiration: core.TimeFromGo(e.Expiration)}

	case OpExtractKey:
		if !admin {
			return fail(core.ErrNotAuthorized, "%v may not extract keys", requester)
		}
		e, err := s.db.Get(req.Name, req.Instance)
		if err != nil {
			return fail(core.ErrPrincipalUnknown, "%v", err)
		}
		key, err := s.db.Key(e)
		if err != nil {
			return fail(core.ErrDatabase, "key undecryptable")
		}
		return &Reply{OK: true, Text: "key extracted", KVNO: e.KVNO, Key: key}

	case OpListPrincipals:
		if !admin {
			return fail(core.ErrNotAuthorized, "%v may not list the database", requester)
		}
		text := ""
		for _, id := range s.db.List() {
			text += id + "\n"
		}
		return &Reply{OK: true, Text: text}

	default:
		return fail(core.ErrMsgTypeCode, "unknown operation %d", req.Op)
	}
}

// Listener serves KDBM over TCP.
type Listener struct {
	tcp    net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Serve binds the KDBM server on addr.
func Serve(s *Server, addr string) (*Listener, error) {
	tcp, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("kadm: binding: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Listener{tcp: tcp, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := tcp.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				s.HandleConn(conn)
			}()
		}
	}()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.tcp.Addr().String() }

// Close stops the listener and waits for in-flight connections.
func (l *Listener) Close() error {
	l.cancel()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

package kadm

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"sync"

	"kerberos/internal/core"
)

// ACL is the KDBM access control list (§5.1): "If they are not the same,
// the KDBM server consults an access control list (stored in a file on
// the master Kerberos system). If the requester's principal name is
// found in this file, the request is permitted, otherwise it is denied."
//
// "By convention, names with a NULL instance (the default instance) do
// not appear in the access control list file; instead, an admin instance
// is used."
type ACL struct {
	mu      sync.RWMutex
	allowed map[string]bool // canonical principal strings
}

// NewACL builds an ACL from principals. Entries without the admin
// instance are rejected, enforcing the §5.1 convention.
func NewACL(admins ...core.Principal) (*ACL, error) {
	a := &ACL{allowed: make(map[string]bool)}
	for _, p := range admins {
		if err := a.Add(p); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Add inserts a principal into the list.
func (a *ACL) Add(p core.Principal) error {
	if !p.IsAdmin() {
		return fmt.Errorf("kadm: ACL entries must carry the %q instance, got %v",
			core.AdminInstance, p)
	}
	a.mu.Lock()
	a.allowed[p.String()] = true
	a.mu.Unlock()
	return nil
}

// Allowed reports whether the (authenticated) principal is on the list.
func (a *ACL) Allowed(p core.Principal) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.allowed[p.String()]
}

// Len reports the number of entries.
func (a *ACL) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.allowed)
}

// LoadACL reads an ACL file: one principal per line, '#' comments and
// blank lines ignored.
func LoadACL(path string) (*ACL, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kadm: opening ACL: %w", err)
	}
	defer f.Close()
	a, _ := NewACL()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p, err := core.ParsePrincipal(text)
		if err != nil {
			return nil, fmt.Errorf("kadm: ACL line %d: %w", line, err)
		}
		if err := a.Add(p); err != nil {
			return nil, fmt.Errorf("kadm: ACL line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kadm: reading ACL: %w", err)
	}
	return a, nil
}

// Save writes the ACL file.
func (a *ACL) Save(path string) error {
	a.mu.RLock()
	var b strings.Builder
	b.WriteString("# KDBM access control list: admin instances only\n")
	for p := range a.allowed {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	a.mu.RUnlock()
	return os.WriteFile(path, []byte(b.String()), 0o600)
}

package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(7)
	w.U16(300)
	w.U32(70000)
	w.U64(1 << 40)
	w.Bool(true)
	w.Bool(false)
	w.Str("hello")
	w.Bytes([]byte{1, 2, 3})
	w.Raw([]byte{9, 9})

	r := NewReader(w.Buf)
	if r.U8() != 7 || r.U16() != 300 || r.U32() != 70000 || r.U64() != 1<<40 {
		t.Error("integer round trip failed")
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool round trip failed")
	}
	if r.Str() != "hello" {
		t.Error("string round trip failed")
	}
	if !bytes.Equal(r.Bytes(), []byte{1, 2, 3}) {
		t.Error("bytes round trip failed")
	}
	if !bytes.Equal(r.RawN(2), []byte{9, 9}) {
		t.Error("raw round trip failed")
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done = %v", err)
	}
}

func TestTruncation(t *testing.T) {
	var w Writer
	w.U32(1)
	w.Str("payload")
	enc := w.Buf
	for n := 0; n < len(enc); n++ {
		r := NewReader(enc[:n])
		r.U32()
		r.Str()
		if r.Done() == nil {
			t.Errorf("prefix of %d bytes decoded cleanly", n)
		}
	}
	// Trailing garbage.
	r := NewReader(append(append([]byte(nil), enc...), 0xFF))
	r.U32()
	r.Str()
	if r.Done() == nil {
		t.Error("trailing garbage not detected")
	}
}

func TestErrorLatching(t *testing.T) {
	r := NewReader(nil)
	r.U8() // fails; error latches
	if r.Err() == nil {
		t.Fatal("no latched error")
	}
	// All further reads return zero values without panicking.
	if r.U32() != 0 || r.Str() != "" || r.Bytes() != nil || r.Bool() {
		t.Error("post-error reads returned non-zero")
	}
	if len(r.RawN(4)) != 4 {
		t.Error("RawN after error must still return n bytes")
	}
}

func TestHostileLength(t *testing.T) {
	// A uvarint length far beyond the data must not allocate or crash.
	r := NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	if r.Bytes() != nil || r.Err() == nil {
		t.Error("hostile length accepted")
	}
}

func TestBytesCopyIsolation(t *testing.T) {
	var w Writer
	w.Bytes([]byte("shared"))
	r := NewReader(w.Buf)
	cp := r.BytesCopy()
	cp[0] = 'X'
	if w.Buf[1] == 'X' {
		t.Error("BytesCopy aliased the input")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(a uint8, b uint32, s string, data []byte, flag bool) bool {
		var w Writer
		w.U8(a)
		w.U32(b)
		w.Str(s)
		w.Bytes(data)
		w.Bool(flag)
		r := NewReader(w.Buf)
		ok := r.U8() == a && r.U32() == b && r.Str() == s &&
			bytes.Equal(r.Bytes(), data) && r.Bool() == flag
		return ok && r.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		r := NewReader(data)
		r.U8()
		r.Bytes()
		r.U64()
		r.Str()
		r.RawN(3)
		r.Done()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

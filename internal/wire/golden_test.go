package wire_test

// Golden wire-format vectors. Every protocol structure the system puts
// on the network is encoded here from fixed inputs (fixed keys, fixed
// timestamps — des.Seal has no random confounder, so sealed structures
// are reproducible bit for bit) and compared byte-for-byte against the
// checked-in testdata/*.golden files. A failing test means the wire
// format changed: either an accidental break in compatibility, or an
// intentional protocol revision that must re-record the vectors with
//
//	go test ./internal/wire -run TestGolden -update
//
// The same vectors seed the fuzz targets in fuzz_test.go and the
// checked-in corpora under testdata/fuzz/.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/wire"
)

var update = flag.Bool("update", false, "rewrite testdata/*.golden and the fuzz seed corpora")

// Fixed inputs: the paper's own example cast (jis logging in from an
// MITnet workstation to reach rlogin.priam), pinned to January 1988.
var (
	goldenRealm   = "ATHENA.MIT.EDU"
	goldenTime    = time.Unix(567705600, 123456000)
	goldenClient  = core.Principal{Name: "jis", Realm: goldenRealm}
	goldenService = core.Principal{Name: "rlogin", Instance: "priam", Realm: goldenRealm}
	goldenAddr    = core.Addr{18, 72, 0, 3}

	clientKey  = des.StringToKey("golden-client-pw", goldenRealm)
	serviceKey = des.StringToKey("golden-service-pw", goldenRealm)
	tgsKey     = des.StringToKey("golden-tgs-pw", goldenRealm)
	sessionKey = des.StringToKey("golden-session", goldenRealm)
)

func goldenTicket() *core.Ticket {
	return &core.Ticket{
		Server:     goldenService,
		Client:     goldenClient,
		Addr:       goldenAddr,
		Issued:     core.TimeFromGo(goldenTime),
		Life:       core.DefaultTGTLife,
		SessionKey: sessionKey,
	}
}

func goldenAuthenticator() *core.Authenticator {
	return core.NewAuthenticator(goldenClient, goldenAddr, goldenTime, 0xdeadbeef)
}

// wireComposite exercises every Writer primitive in one buffer — the
// canonical vector for the wire package itself.
func wireComposite() []byte {
	var w wire.Writer
	w.U8(0x12)
	w.U16(0x3456)
	w.U32(0x789abcde)
	w.U64(0x0123456789abcdef)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{0xca, 0xfe})
	w.Str("jis@ATHENA.MIT.EDU")
	w.Bytes(nil)
	w.Raw([]byte{0xff, 0x00})
	return w.Buf
}

// vectors returns every golden vector by file name.
func vectors() map[string][]byte {
	tkt := goldenTicket()
	auth := goldenAuthenticator()
	sealedTicket := tkt.Seal(serviceKey)
	tgt := goldenTicket()
	tgt.Server = core.TGSPrincipal(goldenRealm, goldenRealm)
	sealedTGT := tgt.Seal(tgsKey)

	return map[string][]byte{
		"authrequest.golden": (&core.AuthRequest{
			Client:  goldenClient,
			Service: core.TGSPrincipal(goldenRealm, goldenRealm),
			Life:    core.DefaultTGTLife,
			Time:    core.TimeFromGo(goldenTime),
		}).Encode(),
		"ticket.golden":        sealedTicket,
		"authenticator.golden": auth.Seal(sessionKey),
		"authreply.golden": core.NewAuthReply(goldenClient, 1, clientKey, &core.EncTicketReply{
			SessionKey:  sessionKey,
			Server:      goldenService,
			Life:        core.DefaultTGTLife,
			KVNO:        1,
			Issued:      core.TimeFromGo(goldenTime),
			RequestTime: core.TimeFromGo(goldenTime),
			Ticket:      sealedTicket,
		}).Encode(),
		"aprequest.golden": (&core.APRequest{
			KVNO:          1,
			TicketRealm:   goldenRealm,
			Ticket:        sealedTicket,
			Authenticator: auth.Seal(sessionKey),
			MutualAuth:    true,
		}).Encode(),
		"apreply.golden": core.NewAPReply(sessionKey, auth).Encode(),
		"tgsrequest.golden": (&core.TGSRequest{
			APReq: core.APRequest{
				TicketRealm:   goldenRealm,
				Ticket:        sealedTGT,
				Authenticator: auth.Seal(sessionKey),
			},
			Service: goldenService,
			Life:    core.MaxLife,
			Time:    core.TimeFromGo(goldenTime),
		}).Encode(),
		"errormessage.golden": (&core.ErrorMessage{
			Code: core.ErrRepeat,
			Text: "authenticator already presented",
		}).Encode(),
		"safe.golden":           core.MakeSafe(sessionKey, []byte("safe payload"), goldenAddr, goldenTime),
		"priv.golden":           core.MakePriv(sessionKey, []byte("priv payload"), goldenAddr, goldenTime),
		"wire-composite.golden": wireComposite(),
	}
}

func TestGoldenVectors(t *testing.T) {
	vecs := vectors()
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range vecs {
			if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		writeFuzzCorpora(t, vecs)
	}
	for name, want := range vecs {
		got, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("%s: %v (run with -update to record)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: encoding diverged from the recorded vector (%d vs %d bytes); "+
				"if the wire format change is intentional, re-record with -update",
				name, len(want), len(got))
		}
	}
}

// writeFuzzCorpora records each vector as a seed-corpus entry for the
// matching fuzz target, in the `go test fuzz v1` file format.
func writeFuzzCorpora(t *testing.T, vecs map[string][]byte) {
	t.Helper()
	targets := map[string][]string{
		"FuzzReader":        {"wire-composite.golden"},
		"FuzzTicket":        {"ticket.golden"},
		"FuzzAuthenticator": {"authenticator.golden"},
		"FuzzKDCMessages": {"authrequest.golden", "authreply.golden", "tgsrequest.golden",
			"aprequest.golden", "apreply.golden", "errormessage.golden", "safe.golden", "priv.golden"},
	}
	for target, names := range targets {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, name := range names {
			entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", vecs[name])
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestGoldenRoundTrip proves the recorded vectors still decode to the
// original structures and survive a decode→encode→decode cycle.
func TestGoldenRoundTrip(t *testing.T) {
	read := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("%v (run with -update to record)", err)
		}
		return data
	}

	t.Run("ticket", func(t *testing.T) {
		tkt, err := core.OpenTicket(serviceKey, read("ticket.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tkt, goldenTicket()) {
			t.Errorf("decoded ticket = %+v", tkt)
		}
		again, err := core.OpenTicket(serviceKey, tkt.Seal(serviceKey))
		if err != nil || !reflect.DeepEqual(again, tkt) {
			t.Errorf("re-seal round trip: %v", err)
		}
	})

	t.Run("authenticator", func(t *testing.T) {
		auth, err := core.OpenAuthenticator(sessionKey, read("authenticator.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(auth, goldenAuthenticator()) {
			t.Errorf("decoded authenticator = %+v", auth)
		}
	})

	t.Run("authrequest", func(t *testing.T) {
		m, err := core.DecodeAuthRequest(read("authrequest.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if m.Client != goldenClient || m.Life != core.DefaultTGTLife {
			t.Errorf("decoded = %+v", m)
		}
		if !bytes.Equal(m.Encode(), read("authrequest.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})

	t.Run("authreply", func(t *testing.T) {
		m, err := core.DecodeAuthReply(read("authreply.golden"))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := m.Open(clientKey)
		if err != nil {
			t.Fatal(err)
		}
		if enc.SessionKey != sessionKey || enc.Server != goldenService || enc.KVNO != 1 {
			t.Errorf("opened reply = %+v", enc)
		}
		tkt, err := core.OpenTicket(serviceKey, enc.Ticket)
		if err != nil || !reflect.DeepEqual(tkt, goldenTicket()) {
			t.Errorf("nested ticket: %v / %+v", err, tkt)
		}
		if !bytes.Equal(m.Encode(), read("authreply.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})

	t.Run("aprequest", func(t *testing.T) {
		m, err := core.DecodeAPRequest(read("aprequest.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if !m.MutualAuth || m.KVNO != 1 || m.TicketRealm != goldenRealm {
			t.Errorf("decoded = %+v", m)
		}
		auth, err := core.OpenAuthenticator(sessionKey, m.Authenticator)
		if err != nil || !reflect.DeepEqual(auth, goldenAuthenticator()) {
			t.Errorf("nested authenticator: %v", err)
		}
		if !bytes.Equal(m.Encode(), read("aprequest.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})

	t.Run("apreply", func(t *testing.T) {
		m, err := core.DecodeAPReply(read("apreply.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Verify(sessionKey, goldenAuthenticator()); err != nil {
			t.Errorf("mutual-auth proof rejected: %v", err)
		}
	})

	t.Run("tgsrequest", func(t *testing.T) {
		m, err := core.DecodeTGSRequest(read("tgsrequest.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if m.Service != goldenService || m.APReq.TicketRealm != goldenRealm {
			t.Errorf("decoded = %+v", m)
		}
		tgt, err := core.OpenTicket(tgsKey, m.APReq.Ticket)
		if err != nil || !tgt.Server.IsTGS() {
			t.Errorf("nested TGT: %v", err)
		}
		if !bytes.Equal(m.Encode(), read("tgsrequest.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})

	t.Run("errormessage", func(t *testing.T) {
		m, err := core.DecodeErrorMessage(read("errormessage.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if m.Code != core.ErrRepeat {
			t.Errorf("decoded = %+v", m)
		}
	})

	t.Run("safe", func(t *testing.T) {
		data, err := core.ReadSafe(sessionKey, read("safe.golden"), goldenAddr, goldenTime)
		if err != nil || string(data) != "safe payload" {
			t.Errorf("safe = %q, %v", data, err)
		}
	})

	t.Run("priv", func(t *testing.T) {
		data, err := core.ReadPriv(sessionKey, read("priv.golden"), goldenAddr, goldenTime)
		if err != nil || string(data) != "priv payload" {
			t.Errorf("priv = %q, %v", data, err)
		}
	})

	t.Run("wire-composite", func(t *testing.T) {
		r := wire.NewReader(read("wire-composite.golden"))
		if r.U8() != 0x12 || r.U16() != 0x3456 || r.U32() != 0x789abcde ||
			r.U64() != 0x0123456789abcdef || !r.Bool() || r.Bool() {
			t.Error("scalar fields diverged")
		}
		if !bytes.Equal(r.Bytes(), []byte{0xca, 0xfe}) || r.Str() != "jis@ATHENA.MIT.EDU" {
			t.Error("length-prefixed fields diverged")
		}
		if len(r.Bytes()) != 0 || !bytes.Equal(r.RawN(2), []byte{0xff, 0x00}) {
			t.Error("tail fields diverged")
		}
		if err := r.Done(); err != nil {
			t.Errorf("Done: %v", err)
		}
	})
}

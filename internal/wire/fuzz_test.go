package wire_test

// Native fuzz targets over the wire substrate and the protocol
// decoders, seeded from the golden vectors so exploration starts from
// valid messages. Checked-in corpora live under testdata/fuzz/<Target>/
// and run on every ordinary `go test`; `go test -fuzz=<Target>
// ./internal/wire` explores further.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/wire"
)

// seedGoldens adds the named golden vectors (those already recorded) as
// fuzz seeds.
func seedGoldens(f *testing.F, names ...string) {
	f.Helper()
	for _, name := range names {
		if data, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // maximal uvarint length prefixes
}

// FuzzReader drives every Reader primitive over arbitrary input: no
// input may panic, reads after an error must return zero values, and
// whatever a Writer wrote must read back verbatim.
func FuzzReader(f *testing.F) {
	seedGoldens(f, "wire-composite.golden")
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		r.U8()
		r.U16()
		b1 := r.Bytes()
		if uint64(len(b1)) > wire.MaxBytes {
			t.Fatalf("Bytes returned %d bytes, over MaxBytes", len(b1))
		}
		r.U32()
		r.Str()
		r.Bool()
		r.U64()
		r.RawN(3)
		r.BytesCopy()
		if r.Err() != nil {
			// A latched error must stick and force zero values.
			if r.U32() != 0 || r.Str() != "" || len(r.Bytes()) != 0 {
				t.Fatal("reads after error returned data")
			}
			if r.Done() == nil {
				t.Fatal("Done cleared a latched error")
			}
		}

		// Round trip: encode the decoded-ish fields and read them back.
		var w wire.Writer
		w.Bytes(data)
		w.U32(uint32(len(data)))
		w.Str("tail")
		rr := wire.NewReader(w.Buf)
		if !bytes.Equal(rr.Bytes(), data) || rr.U32() != uint32(len(data)) || rr.Str() != "tail" {
			t.Fatal("Writer/Reader round trip diverged")
		}
		if err := rr.Done(); err != nil {
			t.Fatalf("round trip Done: %v", err)
		}
	})
}

// FuzzTicket reaches the unexported ticket decoder by sealing arbitrary
// plaintext: OpenTicket(key, Seal(key, data)) exercises decodeTicket on
// exactly the attacker-controlled bytes. No plaintext may panic it, and
// anything it accepts must survive a re-seal round trip.
func FuzzTicket(f *testing.F) {
	seedGoldens(f, "ticket.golden")
	key := des.StringToKey("fuzz-service", "R")
	f.Fuzz(func(t *testing.T, data []byte) {
		core.OpenTicket(key, data) // arbitrary ciphertext
		tkt, err := core.OpenTicket(key, des.Seal(key, data))
		if err != nil {
			return
		}
		again, err := core.OpenTicket(key, tkt.Seal(key))
		if err != nil {
			t.Fatalf("accepted ticket failed re-seal: %v", err)
		}
		if !reflect.DeepEqual(again, tkt) {
			t.Fatalf("re-seal round trip diverged: %+v vs %+v", again, tkt)
		}
	})
}

// FuzzAuthenticator is FuzzTicket for the authenticator decoder.
func FuzzAuthenticator(f *testing.F) {
	seedGoldens(f, "authenticator.golden")
	key := des.StringToKey("fuzz-session", "R")
	f.Fuzz(func(t *testing.T, data []byte) {
		core.OpenAuthenticator(key, data)
		auth, err := core.OpenAuthenticator(key, des.Seal(key, data))
		if err != nil {
			return
		}
		again, err := core.OpenAuthenticator(key, auth.Seal(key))
		if err != nil {
			t.Fatalf("accepted authenticator failed re-seal: %v", err)
		}
		if !reflect.DeepEqual(again, auth) {
			t.Fatalf("re-seal round trip diverged")
		}
	})
}

// FuzzKDCMessages covers every KDC request/reply decoder plus the
// sealed-message readers, with the decode→encode→decode consistency
// property on each.
func FuzzKDCMessages(f *testing.F) {
	seedGoldens(f, "authrequest.golden", "authreply.golden", "tgsrequest.golden",
		"aprequest.golden", "apreply.golden", "errormessage.golden",
		"safe.golden", "priv.golden")
	key := des.StringToKey("fuzz-kdc", "R")
	now := time.Unix(567705600, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		core.PeekType(data)
		if m, err := core.DecodeAuthRequest(data); err == nil {
			if again, err := core.DecodeAuthRequest(m.Encode()); err != nil || !reflect.DeepEqual(again, m) {
				t.Errorf("AuthRequest re-decode: %v", err)
			}
		}
		if m, err := core.DecodeAuthReply(data); err == nil {
			if again, err := core.DecodeAuthReply(m.Encode()); err != nil || !reflect.DeepEqual(again, m) {
				t.Errorf("AuthReply re-decode: %v", err)
			}
			m.Open(key)
		}
		if m, err := core.DecodeTGSRequest(data); err == nil {
			if again, err := core.DecodeTGSRequest(m.Encode()); err != nil || !reflect.DeepEqual(again, m) {
				t.Errorf("TGSRequest re-decode: %v", err)
			}
		}
		if m, err := core.DecodeAPRequest(data); err == nil {
			if again, err := core.DecodeAPRequest(m.Encode()); err != nil || !reflect.DeepEqual(again, m) {
				t.Errorf("APRequest re-decode: %v", err)
			}
		}
		if m, err := core.DecodeAPReply(data); err == nil {
			if again, err := core.DecodeAPReply(m.Encode()); err != nil || !reflect.DeepEqual(again, m) {
				t.Errorf("APReply re-decode: %v", err)
			}
		}
		if m, err := core.DecodeErrorMessage(data); err == nil {
			if again, err := core.DecodeErrorMessage(m.Encode()); err != nil || !reflect.DeepEqual(again, m) {
				t.Errorf("ErrorMessage re-decode: %v", err)
			}
		}
		core.IfErrorMessage(data)
		core.ReadSafe(key, data, core.Addr{}, now)
		core.ReadPriv(key, data, core.Addr{}, now)
	})
}

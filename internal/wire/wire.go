// Package wire provides the small length-prefixed binary codec shared by
// the application-level protocols (NFS, mount daemon, the Kerberized
// applications). The Kerberos core keeps its own codec in internal/core;
// this one is for everything above it.
package wire

import (
	"encoding/binary"
	"errors"
)

// ErrTruncated reports input that ended before its structure did, a
// hostile length field, or trailing garbage.
var ErrTruncated = errors.New("wire: truncated or malformed message")

// MaxBytes bounds any length-prefixed field.
const MaxBytes = 1 << 24

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct{ Buf []byte }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.Buf = append(w.Buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.Buf = binary.BigEndian.AppendUint16(w.Buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.Buf = binary.BigEndian.AppendUint32(w.Buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.Buf = binary.BigEndian.AppendUint64(w.Buf, v) }

// Bool appends a boolean byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Buf = binary.AppendUvarint(w.Buf, uint64(len(b)))
	w.Buf = append(w.Buf, b...)
}

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) { w.Bytes([]byte(s)) }

// Raw appends bytes with no prefix.
func (w *Writer) Raw(b []byte) { w.Buf = append(w.Buf, b...) }

// Reader decodes an encoded message, latching the first error.
type Reader struct {
	Data []byte
	err  error
}

// NewReader wraps data.
func NewReader(data []byte) *Reader { return &Reader{Data: data} }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	if r.err != nil || len(r.Data) < 1 {
		r.fail()
		return 0
	}
	v := r.Data[0]
	r.Data = r.Data[1:]
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if r.err != nil || len(r.Data) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.Data)
	r.Data = r.Data[2:]
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil || len(r.Data) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.Data)
	r.Data = r.Data[4:]
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil || len(r.Data) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.Data)
	r.Data = r.Data[8:]
	return v
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes reads a length-prefixed byte string (aliasing the input).
func (r *Reader) Bytes() []byte {
	if r.err != nil {
		return nil
	}
	n, used := binary.Uvarint(r.Data)
	if used <= 0 || n > MaxBytes || uint64(len(r.Data)-used) < n {
		r.fail()
		return nil
	}
	b := r.Data[used : used+int(n)]
	r.Data = r.Data[used+int(n):]
	return b
}

// BytesCopy reads a length-prefixed byte string into fresh storage.
func (r *Reader) BytesCopy() []byte {
	return append([]byte(nil), r.Bytes()...)
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }

// RawN reads exactly n unprefixed bytes.
func (r *Reader) RawN(n int) []byte {
	if r.err != nil || len(r.Data) < n {
		r.fail()
		return make([]byte, n)
	}
	b := r.Data[:n]
	r.Data = r.Data[n:]
	return b
}

// Err returns the latched error.
func (r *Reader) Err() error { return r.err }

// Done returns the latched error, also failing on trailing bytes.
func (r *Reader) Done() error {
	if r.err == nil && len(r.Data) != 0 {
		r.fail()
	}
	return r.err
}

package kprop

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// kprop v2 wire format. Every message is one length-prefixed frame (the
// same u32 big-endian framing the KDC TCP transport uses, with a larger
// cap because full dumps outgrow KDC messages). A v2 conversation is:
//
//	master → slave   MasterHello   (serial + digest the master is at)
//	slave  → master  SlaveHello    (serial + digest the slave is at)
//	master → slave   DeltaMsg      (journal segment)  — or FullDumpMsg
//	slave  → master  AckMsg        (ok, or need-full)
//	master → slave   FullDumpMsg   (only if the ack asked for one)
//	slave  → master  AckMsg
//
// A first frame that does not begin with the v2 magic is handled as the
// legacy §5.3 exchange (sealed checksum frame, dump frame, "OK" ack), so
// old masters keep working against new slaves.
//
// Payloads (journal segments and dumps) travel flate-compressed; the
// keyed checksum of §5.3 is computed over the *uncompressed* bytes, so
// compression is transparent to integrity. Change serials ride inside
// the encoded segment and are therefore covered by its checksum.

// MaxMessage bounds one framed propagation message: large enough for a
// million-principal compressed dump, small enough to stop a hostile
// length prefix from ballooning memory.
const MaxMessage = 64 << 20

// MaxInflate bounds decompression output: adversarial deflate streams
// can expand ~1000×, so the inflater stops at this many bytes.
const MaxInflate = 64 << 20

// Message kind bytes (fifth byte of every v2 message, after the magic).
const (
	kindMasterHello = 0x01
	kindSlaveHello  = 0x02
	kindDelta       = 0x03
	kindFullDump    = 0x04
	kindAck         = 0x05
)

// Protocol revisions carried in MasterHello. v2 is the whole-database
// delta plane; v3 scopes one conversation to one shard of a sharded
// database (the hello gains the shard index and the master's shard
// count), so the per-shard deltas of a large realm ship in parallel over
// independent connections. A v3 master falls back to v2 framing when the
// database has a single shard, so unsharded deployments are untouched.
const (
	wireVersion   = 2
	wireVersionV3 = 3
)

var wireMagic = [4]byte{'K', 'P', 'v', '2'}

// ErrBadMessage reports a propagation message that failed structural
// validation.
var ErrBadMessage = errors.New("kprop: malformed propagation message")

// readFrame reads one length-prefixed message (layout-compatible with
// kdc.ReadFrame, higher cap for dumps).
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxMessage {
		return nil, fmt.Errorf("kprop: bad frame length %d", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// writeFrame writes one length-prefixed message.
func writeFrame(w io.Writer, msg []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// isV2 reports whether a first frame opens a v2 conversation.
func isV2(frame []byte) bool {
	return len(frame) >= 5 && [4]byte(frame[:4]) == wireMagic && frame[4] == kindMasterHello
}

// wireReader consumes v2 message bodies.
type wireReader struct {
	data []byte
	err  error
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || len(r.data) < 8 {
		r.err = ErrBadMessage
		return 0
	}
	v := binary.BigEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

func (r *wireReader) u32() uint32 {
	if r.err != nil || len(r.data) < 4 {
		r.err = ErrBadMessage
		return 0
	}
	v := binary.BigEndian.Uint32(r.data)
	r.data = r.data[4:]
	return v
}

func (r *wireReader) u8() uint8 {
	if r.err != nil || len(r.data) < 1 {
		r.err = ErrBadMessage
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

func (r *wireReader) blob() []byte {
	if r.err != nil {
		return nil
	}
	n, used := binary.Uvarint(r.data)
	if used <= 0 || n > MaxMessage || uint64(len(r.data)-used) < n {
		r.err = ErrBadMessage
		return nil
	}
	b := r.data[used : used+int(n)]
	r.data = r.data[used+int(n):]
	return b
}

func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.data))
	}
	return nil
}

func appendBlob(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// header emits magic + kind, the shared prefix of every v2 message.
func header(kind byte) []byte {
	return append(append(make([]byte, 0, 64), wireMagic[:]...), kind)
}

// body strips a validated magic + kind prefix.
func body(data []byte, kind byte) ([]byte, error) {
	if len(data) < 5 || [4]byte(data[:4]) != wireMagic || data[4] != kind {
		return nil, ErrBadMessage
	}
	return data[5:], nil
}

// MasterHello opens a conversation: the protocol version and the
// (serial, digest) the master is at. In a v3 hello the serial and digest
// are those of one shard, named by Shard out of the master's Shards; a
// v2 hello covers the whole database and carries no shard fields.
type MasterHello struct {
	Version uint8
	Serial  uint64
	Digest  uint64
	Shard   uint32 // v3 only: which shard this conversation covers
	Shards  uint32 // v3 only: the master's total shard count
}

// Encode serializes the hello.
func (h MasterHello) Encode() []byte {
	buf := header(kindMasterHello)
	buf = append(buf, h.Version)
	buf = binary.BigEndian.AppendUint64(buf, h.Serial)
	buf = binary.BigEndian.AppendUint64(buf, h.Digest)
	if h.Version >= wireVersionV3 {
		buf = binary.BigEndian.AppendUint32(buf, h.Shard)
		buf = binary.BigEndian.AppendUint32(buf, h.Shards)
	}
	return buf
}

// DecodeMasterHello parses a MasterHello message.
func DecodeMasterHello(data []byte) (MasterHello, error) {
	var h MasterHello
	b, err := body(data, kindMasterHello)
	if err != nil {
		return h, err
	}
	r := wireReader{data: b}
	h.Version = r.u8()
	h.Serial = r.u64()
	h.Digest = r.u64()
	if h.Version >= wireVersionV3 {
		h.Shard = r.u32()
		h.Shards = r.u32()
	}
	if err := r.done(); err != nil {
		return h, err
	}
	switch h.Version {
	case wireVersion:
	case wireVersionV3:
		if h.Shards == 0 || h.Shard >= h.Shards {
			return h, fmt.Errorf("%w: shard %d of %d", ErrBadMessage, h.Shard, h.Shards)
		}
	default:
		return h, fmt.Errorf("%w: unsupported version %d", ErrBadMessage, h.Version)
	}
	return h, nil
}

// SlaveHello is the slave's reply: the (serial, digest) its copy is at,
// plus its principal count for the master's logs.
type SlaveHello struct {
	Serial     uint64
	Digest     uint64
	Principals uint32
}

// Encode serializes the hello.
func (h SlaveHello) Encode() []byte {
	buf := header(kindSlaveHello)
	buf = binary.BigEndian.AppendUint64(buf, h.Serial)
	buf = binary.BigEndian.AppendUint64(buf, h.Digest)
	return binary.BigEndian.AppendUint32(buf, h.Principals)
}

// DecodeSlaveHello parses a SlaveHello message.
func DecodeSlaveHello(data []byte) (SlaveHello, error) {
	var h SlaveHello
	b, err := body(data, kindSlaveHello)
	if err != nil {
		return h, err
	}
	r := wireReader{data: b}
	h.Serial = r.u64()
	h.Digest = r.u64()
	h.Principals = r.u32()
	return h, r.done()
}

// DeltaMsg carries a compressed journal segment advancing the slave from
// serial From to serial To. SealedSum is the §5.3 keyed checksum of the
// *uncompressed* segment, sealed in the master database key; the change
// serials ride inside the segment and are covered by it.
type DeltaMsg struct {
	From      uint64
	To        uint64
	SealedSum []byte
	Payload   []byte // flate-compressed kdb.EncodeChanges output
}

// Encode serializes the delta message.
func (d DeltaMsg) Encode() []byte {
	buf := header(kindDelta)
	buf = binary.BigEndian.AppendUint64(buf, d.From)
	buf = binary.BigEndian.AppendUint64(buf, d.To)
	buf = appendBlob(buf, d.SealedSum)
	return appendBlob(buf, d.Payload)
}

// DecodeDeltaMsg parses a DeltaMsg.
func DecodeDeltaMsg(data []byte) (DeltaMsg, error) {
	var d DeltaMsg
	b, err := body(data, kindDelta)
	if err != nil {
		return d, err
	}
	r := wireReader{data: b}
	d.From = r.u64()
	d.To = r.u64()
	d.SealedSum = append([]byte(nil), r.blob()...)
	d.Payload = append([]byte(nil), r.blob()...)
	if err := r.done(); err != nil {
		return d, err
	}
	if d.To < d.From {
		return d, fmt.Errorf("%w: delta runs backwards (%d → %d)", ErrBadMessage, d.From, d.To)
	}
	return d, nil
}

// FullDumpMsg carries a compressed full database dump. SealedSum is the
// keyed checksum of the *uncompressed* dump — exactly the legacy §5.3
// integrity check.
type FullDumpMsg struct {
	SealedSum []byte
	Payload   []byte // flate-compressed kdb dump
}

// Encode serializes the full-dump message.
func (f FullDumpMsg) Encode() []byte {
	buf := header(kindFullDump)
	buf = appendBlob(buf, f.SealedSum)
	return appendBlob(buf, f.Payload)
}

// DecodeFullDumpMsg parses a FullDumpMsg.
func DecodeFullDumpMsg(data []byte) (FullDumpMsg, error) {
	var f FullDumpMsg
	b, err := body(data, kindFullDump)
	if err != nil {
		return f, err
	}
	r := wireReader{data: b}
	f.SealedSum = append([]byte(nil), r.blob()...)
	f.Payload = append([]byte(nil), r.blob()...)
	return f, r.done()
}

// Ack flag bits.
const (
	ackOK       = 0x01
	ackNeedFull = 0x02
)

// AckMsg is the slave's verdict on an update: the serial its database is
// now at, whether the update applied, and — when a delta could not be
// applied — a request for a full resync on the same connection.
type AckMsg struct {
	Serial   uint64
	OK       bool
	NeedFull bool
	Err      string
}

// Encode serializes the ack.
func (a AckMsg) Encode() []byte {
	buf := header(kindAck)
	buf = binary.BigEndian.AppendUint64(buf, a.Serial)
	var flags byte
	if a.OK {
		flags |= ackOK
	}
	if a.NeedFull {
		flags |= ackNeedFull
	}
	buf = append(buf, flags)
	return appendBlob(buf, []byte(a.Err))
}

// DecodeAckMsg parses an AckMsg.
func DecodeAckMsg(data []byte) (AckMsg, error) {
	var a AckMsg
	b, err := body(data, kindAck)
	if err != nil {
		return a, err
	}
	r := wireReader{data: b}
	a.Serial = r.u64()
	flags := r.u8()
	a.OK = flags&ackOK != 0
	a.NeedFull = flags&ackNeedFull != 0
	a.Err = string(r.blob())
	if err := r.done(); err != nil {
		return a, err
	}
	if flags&^(ackOK|ackNeedFull) != 0 {
		return a, fmt.Errorf("%w: unknown ack flags %#x", ErrBadMessage, flags)
	}
	return a, nil
}

// deflate compresses a payload for the wire.
func deflate(data []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		panic(err) // only on invalid level
	}
	if _, err := w.Write(data); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// inflate decompresses a payload, refusing to expand past MaxInflate so
// a hostile stream cannot balloon memory.
func inflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, MaxInflate+1))
	if err != nil {
		return nil, fmt.Errorf("kprop: inflating payload: %w", err)
	}
	if len(out) > MaxInflate {
		return nil, fmt.Errorf("kprop: payload inflates past %d bytes", MaxInflate)
	}
	return out, nil
}

package kprop

// Behavior tests for the kprop v2 delta plane: delta rounds, the four
// full-dump fallbacks, on-connection resync recovery, retry/backoff,
// and bounded-concurrency fan-out.

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/obs"
)

// TestDeltaRound: after one full sync, subsequent rounds ship only the
// churn, and both sides agree on serial and digest.
func TestDeltaRound(t *testing.T) {
	master := masterDB(t, 40)
	reg := obs.NewRegistry()
	sreg := obs.NewRegistry()
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil, WithRegistry(sreg))
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	m := NewMaster(master, []string{l.Addr()}, nil, WithRegistry(reg))
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	// A fresh slave whose history is fully inside retention syncs via
	// delta-from-zero; either way both sides now agree.
	if slaveDB.Serial() != master.Serial() || slaveDB.Digest() != master.Digest() {
		t.Fatalf("slave at (%d,%x), master at (%d,%x)",
			slaveDB.Serial(), slaveDB.Digest(), master.Serial(), master.Digest())
	}

	key, _ := des.NewRandomKey()
	if err := master.Add("fresh", "", key, 0, "kadmin", t0); err != nil {
		t.Fatal(err)
	}
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := slaveDB.Get("fresh", ""); err != nil {
		t.Fatalf("churn did not propagate: %v", err)
	}
	if got := reg.Counter("kprop_delta_rounds").Load(); got < 1 {
		t.Errorf("kprop_delta_rounds = %d", got)
	}
	if got := sreg.Counter("kpropd_deltas").Load(); got < 1 {
		t.Errorf("kpropd_deltas = %d", got)
	}
	if got := m.AckedSerial(l.Addr()); got != master.Serial() {
		t.Errorf("acked serial = %d, master at %d", got, master.Serial())
	}
	if got := sreg.Gauge("kpropd_serial").Load(); uint64(got) != master.Serial() {
		t.Errorf("kpropd_serial gauge = %d", got)
	}
}

// TestRetentionFallback: a slave that has fallen behind the journal
// horizon is healed with a full dump and converges.
func TestRetentionFallback(t *testing.T) {
	master := masterDB(t, 10)
	master.SetJournalCap(4)
	reg := obs.NewRegistry()
	sreg := obs.NewRegistry()
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil, WithRegistry(sreg))
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// The fresh slave is at serial 0, 11 writes behind a 4-deep journal.
	m := NewMaster(master, []string{l.Addr()}, nil, WithRegistry(reg))
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("kprop_fallback_retention").Load() != 1 {
		t.Errorf("fallback_retention = %d", reg.Counter("kprop_fallback_retention").Load())
	}
	if reg.Counter("kprop_full_rounds").Load() != 1 {
		t.Errorf("full_rounds = %d", reg.Counter("kprop_full_rounds").Load())
	}
	if sreg.Counter("kpropd_fulls").Load() != 1 {
		t.Errorf("kpropd_fulls = %d", sreg.Counter("kpropd_fulls").Load())
	}
	if slaveDB.Serial() != master.Serial() || slaveDB.Len() != master.Len() {
		t.Fatal("slave did not converge after retention fallback")
	}

	// Now in retention: the next churn goes out as a delta.
	key, _ := des.NewRandomKey()
	if err := master.SetKey("useraaa", "", key, "kadmin", t0); err != nil {
		t.Fatal(err)
	}
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("kprop_delta_rounds").Load() != 1 {
		t.Errorf("delta_rounds = %d", reg.Counter("kprop_delta_rounds").Load())
	}
	if slaveDB.Digest() != master.Digest() {
		t.Fatal("digest mismatch after delta round")
	}
}

// TestDivergentSlaveHealsViaFullResync: a slave whose history differs
// from the master's at the same serial — the dangerous silent-drift case
// — is detected by the digest chain and healed with a full dump.
func TestDivergentSlaveHealsViaFullResync(t *testing.T) {
	// Two masters with the same key and the same number of writes but
	// different contents: same serial, different digest.
	masterA := masterDB(t, 10)
	masterB := kdb.New(masterA.MasterKey())
	for i := 0; i < int(masterA.Serial()); i++ {
		key, _ := des.NewRandomKey()
		if err := masterB.Add("other"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26)), "", key, 0, "x", t0); err != nil {
			t.Fatal(err)
		}
	}
	if masterA.Serial() != masterB.Serial() {
		t.Fatalf("serials differ: %d vs %d", masterA.Serial(), masterB.Serial())
	}
	if masterA.Digest() == masterB.Digest() {
		t.Fatal("digest collision between different histories")
	}

	reg := obs.NewRegistry()
	sreg := obs.NewRegistry()
	slaveDB := kdb.New(masterA.MasterKey())
	slave := NewSlave(slaveDB, nil, WithRegistry(sreg))
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Slave syncs from B, then A takes over (a failover to a rebuilt
	// master with a different history).
	if err := NewMaster(masterB, []string{l.Addr()}, nil).PropagateAll(); err != nil {
		t.Fatal(err)
	}
	mA := NewMaster(masterA, []string{l.Addr()}, nil, WithRegistry(reg))
	if err := mA.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("kprop_fallback_divergence").Load() != 1 {
		t.Errorf("fallback_divergence = %d", reg.Counter("kprop_fallback_divergence").Load())
	}
	if slaveDB.Serial() != masterA.Serial() || slaveDB.Digest() != masterA.Digest() {
		t.Fatal("diverged slave did not converge to the new master")
	}
	if _, err := slaveDB.Get("useraaa", ""); err != nil {
		t.Errorf("slave lacks master A's principals: %v", err)
	}
}

// TestAheadSlaveFallsBack: a slave claiming a serial beyond the master's
// (the master restarted from an older backup) is reset via full dump.
func TestAheadSlaveFallsBack(t *testing.T) {
	big := masterDB(t, 20)
	small := masterDB(t, 5) // same key, fewer writes: "restored from backup"

	reg := obs.NewRegistry()
	slaveDB := kdb.New(big.MasterKey())
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := NewMaster(big, []string{l.Addr()}, nil).PropagateAll(); err != nil {
		t.Fatal(err)
	}
	m := NewMaster(small, []string{l.Addr()}, nil, WithRegistry(reg))
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("kprop_fallback_ahead").Load() != 1 {
		t.Errorf("fallback_ahead = %d", reg.Counter("kprop_fallback_ahead").Load())
	}
	if slaveDB.Serial() != small.Serial() || slaveDB.Len() != small.Len() {
		t.Fatal("slave did not adopt the older master's state")
	}
}

// TestNeedFullRecoveryOnConnection: a slave that NACKs a delta receives
// the full dump on the same connection and converges — the self-healing
// resync state machine, exercised by hand-rolling the master side.
func TestNeedFullRecoveryOnConnection(t *testing.T) {
	master := masterDB(t, 10)
	sreg := obs.NewRegistry()
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil, WithRegistry(sreg))
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := NewMaster(master, []string{l.Addr()}, nil).PropagateAll(); err != nil {
		t.Fatal(err)
	}

	// Hand-roll a push whose delta has a serial gap; the slave must NACK
	// with NeedFull and accept the dump that follows.
	churnKey, _ := des.NewRandomKey()
	if err := master.SetKey("useraaa", "", churnKey, "kadmin", t0); err != nil {
		t.Fatal(err)
	}
	conn, err := dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := MasterHello{Version: wireVersion, Serial: master.Serial(), Digest: master.Digest()}
	if err := writeFrame(conn, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	frame, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := DecodeSlaveHello(frame)
	if err != nil {
		t.Fatal(err)
	}
	// A gapped delta: claim it starts two serials ahead of the slave.
	changes, verdict := master.ChangesSince(sh.Serial, sh.Digest)
	if verdict != kdb.DeltaOK || len(changes) != 1 {
		t.Fatalf("changes = %d, %v", len(changes), verdict)
	}
	gapped := []kdb.Change{{Serial: changes[0].Serial + 2, Op: changes[0].Op, Entry: changes[0].Entry}}
	seg := kdb.EncodeChanges(gapped)
	d := DeltaMsg{
		From:      sh.Serial + 2,
		To:        sh.Serial + 3,
		SealedSum: sealSum(master.MasterKey(), seg),
		Payload:   deflate(seg),
	}
	if err := writeFrame(conn, d.Encode()); err != nil {
		t.Fatal(err)
	}
	frame, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := DecodeAckMsg(frame)
	if err != nil {
		t.Fatal(err)
	}
	if ack.OK || !ack.NeedFull {
		t.Fatalf("gapped delta ack = %+v", ack)
	}
	// Heal with the full dump on the same connection.
	dump := master.Dump()
	full := FullDumpMsg{SealedSum: sealSum(master.MasterKey(), dump), Payload: deflate(dump)}
	if err := writeFrame(conn, full.Encode()); err != nil {
		t.Fatal(err)
	}
	frame, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	ack, err = DecodeAckMsg(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.OK || ack.Serial != master.Serial() {
		t.Fatalf("recovery ack = %+v", ack)
	}
	if slave.Resyncs() != 1 {
		t.Errorf("resyncs = %d", slave.Resyncs())
	}
	if sreg.Counter("kpropd_resyncs").Load() != 1 {
		t.Errorf("kpropd_resyncs = %d", sreg.Counter("kpropd_resyncs").Load())
	}
	if slaveDB.Serial() != master.Serial() || slaveDB.Digest() != master.Digest() {
		t.Fatal("slave did not converge after on-connection resync")
	}
}

// TestRetryBackoff: transient dial failures are retried with backoff and
// eventually succeed within the same round.
func TestRetryBackoff(t *testing.T) {
	master := masterDB(t, 5)
	reg := obs.NewRegistry()
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var attempts atomic.Int64
	flaky := func(addr string, timeout time.Duration) (net.Conn, error) {
		if attempts.Add(1) <= 2 {
			return nil, errors.New("injected dial failure")
		}
		return net.DialTimeout("tcp4", addr, timeout)
	}
	m := NewMaster(master, []string{l.Addr()}, nil,
		WithRegistry(reg), WithRetry(3, time.Millisecond), WithDialer(flaky))
	if err := m.PropagateAll(); err != nil {
		t.Fatalf("round failed despite retries: %v", err)
	}
	if slave.Updates() != 1 {
		t.Errorf("updates = %d", slave.Updates())
	}
	if got := reg.Counter("kprop_retries").Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	// Retries exhausted: the round reports the failure.
	attempts.Store(0)
	dead := NewMaster(master, []string{l.Addr()}, nil,
		WithRetry(1, time.Millisecond),
		WithDialer(func(string, time.Duration) (net.Conn, error) {
			return nil, errors.New("always down")
		}))
	if err := dead.PropagateAll(); err == nil {
		t.Error("exhausted retries not reported")
	}
}

// TestParallelFanOut: a round with fan-out 8 updates every slave; the
// dead one is still reported without blocking the rest.
func TestParallelFanOut(t *testing.T) {
	master := masterDB(t, 20)
	var slaves []*Slave
	addrs := []string{"127.0.0.1:1"}
	for i := 0; i < 8; i++ {
		sdb := kdb.New(master.MasterKey())
		s := NewSlave(sdb, nil)
		l, err := Serve(s, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		slaves = append(slaves, s)
		addrs = append(addrs, l.Addr())
	}
	m := NewMaster(master, addrs, nil, WithFanout(8))
	if err := m.PropagateAll(); err == nil {
		t.Error("dead slave not reported")
	}
	for i, s := range slaves {
		if s.Updates() != 1 {
			t.Errorf("slave %d updates = %d", i, s.Updates())
		}
	}
}

// TestForceFull: the escape hatch ships a (compressed) full dump every
// round, the paper's original behaviour.
func TestForceFull(t *testing.T) {
	master := masterDB(t, 10)
	reg := obs.NewRegistry()
	sreg := obs.NewRegistry()
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil, WithRegistry(sreg))
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	m := NewMaster(master, []string{l.Addr()}, nil, WithRegistry(reg), WithForceFull())
	for i := 0; i < 2; i++ {
		if err := m.PropagateAll(); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("kprop_full_rounds").Load(); got != 2 {
		t.Errorf("full_rounds = %d, want 2", got)
	}
	if got := reg.Counter("kprop_delta_rounds").Load(); got != 0 {
		t.Errorf("delta_rounds = %d, want 0", got)
	}
	if got := sreg.Counter("kpropd_fulls").Load(); got != 2 {
		t.Errorf("kpropd_fulls = %d, want 2", got)
	}
}

// TestLegacyPushStillAccepted: the original two-frame §5.3 exchange
// keeps working against a v2 slave.
func TestLegacyPushStillAccepted(t *testing.T) {
	master := masterDB(t, 5)
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	dump := master.Dump()
	sealed := sealSum(master.MasterKey(), dump)
	conn, err := dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, sealed); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, dump); err != nil {
		t.Fatal(err)
	}
	ack, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(ack) != "OK" {
		t.Fatalf("legacy push rejected: %s", ack)
	}
	if slave.Updates() != 1 || slaveDB.Len() != master.Len() {
		t.Errorf("updates=%d len=%d/%d", slave.Updates(), slaveDB.Len(), master.Len())
	}
	// The legacy dump is v2 on disk, so the slave even has the serial.
	if slaveDB.Serial() != master.Serial() {
		t.Errorf("slave serial = %d, master %d", slaveDB.Serial(), master.Serial())
	}
}

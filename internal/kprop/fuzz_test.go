package kprop

import (
	"testing"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
)

// FuzzDelta drives adversarial bytes through every v2 decoder and the
// full slave-side delta apply path: no panics, no unbounded allocation
// from hostile length prefixes or deflate bombs, and anything that
// survives decoding must re-encode byte-identically (canonical form).
func FuzzDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("KPv2"))
	f.Add(MasterHello{Version: wireVersion, Serial: 1, Digest: 2}.Encode())
	f.Add(MasterHello{Version: wireVersionV3, Serial: 1, Digest: 2, Shard: 3, Shards: 8}.Encode())
	f.Add(AckMsg{Serial: 9, NeedFull: true, Err: "gap"}.Encode())
	// A hostile count prefix on a tiny change set: DecodeChanges must
	// reject it before pre-allocating count slots (amplification guard).
	f.Add(append([]byte{'K', 'C', 'H', '1', 0xff, 0xff, 0xff, 0xff}, make([]byte, 32)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := DecodeMasterHello(data); err == nil {
			roundTrip(t, h.Encode(), data)
		}
		if h, err := DecodeSlaveHello(data); err == nil {
			roundTrip(t, h.Encode(), data)
		}
		if d, err := DecodeDeltaMsg(data); err == nil {
			roundTrip(t, d.Encode(), data)
			if seg, err := inflate(d.Payload); err == nil {
				if changes, err := kdb.DecodeChanges(seg); err == nil {
					// Canonical: decoded changes re-encode identically.
					if got := kdb.EncodeChanges(changes); string(got) != string(seg) {
						t.Fatalf("change set not canonical: %d vs %d bytes", len(got), len(seg))
					}
				}
			}
		}
		if fd, err := DecodeFullDumpMsg(data); err == nil {
			roundTrip(t, fd.Encode(), data)
			if dump, err := inflate(fd.Payload); err == nil {
				_, _, _ = kdb.ParseDumpFull(dump)
			}
		}
		if a, err := DecodeAckMsg(data); err == nil {
			roundTrip(t, a.Encode(), data)
		}
		// The raw change-set decoder sees uncompressed attacker bytes
		// when a hostile master controls the payload.
		if changes, err := kdb.DecodeChanges(data); err == nil {
			db := kdb.New(des.StringToKey("fuzz", "FUZZ.REALM"))
			db.SetReadOnly(true)
			_ = db.ApplyChanges(changes, 0)
		}
	})
}

func roundTrip(t *testing.T, reencoded, original []byte) {
	t.Helper()
	if string(reencoded) != string(original) {
		t.Fatalf("decode→encode not byte-identical: %d vs %d bytes", len(reencoded), len(original))
	}
}

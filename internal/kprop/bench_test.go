package kprop

// Propagation benchmarks backing BENCH_kprop.json (scripts/
// bench_kprop.sh): full-dump vs delta bytes-on-wire and wall-clock at
// 5k and 100k principals with 1% churn per round, and serial vs
// parallel fan-out to 8 slaves over a simulated WAN. Each round is a
// complete master↔slave conversation over real TCP sockets; the
// wirebytes/op metric is the master's kprop_bytes counter, i.e. the
// compressed payload the network actually carries.

import (
	"net"
	"testing"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/obs"
	"kerberos/internal/workload"
)

const benchChurn = 0.01 // 1% of principals change per round, §5.3 scale

// benchRealm builds a master database of n principals plus a connected,
// already-seeded slave, returning the master, its registry, and the
// slave address.
func benchRealm(b *testing.B, n int, opts ...Option) (*Master, *kdb.Database, workload.Spec, *obs.Registry, string) {
	b.Helper()
	db := kdb.New(des.StringToKey("bench-master-pw", testRealm))
	spec := workload.Spec{Users: n, Workstations: 8, Services: 5, Seed: 424242}
	if err := workload.Install(db, spec, testRealm, t0); err != nil {
		b.Fatal(err)
	}
	// Retain at least one full churn round so steady state stays on the
	// delta path.
	db.SetJournalCap(n)

	slaveDB := kdb.New(des.StringToKey("bench-master-pw", testRealm))
	l, err := Serve(NewSlave(slaveDB, nil), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	addr := l.Addr()

	reg := obs.NewRegistry()
	m := NewMaster(db, []string{addr}, nil, append([]Option{WithRegistry(reg)}, opts...)...)
	// Seed the slave so the measured rounds are steady-state churn, not
	// the initial bootstrap.
	if err := m.PropagateTo(addr); err != nil {
		b.Fatal(err)
	}
	return m, db, spec, reg, addr
}

// benchRound measures one propagation round per iteration: churn 1% of
// the population (off the clock), then push to the slave.
func benchRound(b *testing.B, users int, opts ...Option) {
	m, db, spec, reg, addr := benchRealm(b, users, opts...)
	wire := reg.Counter("kprop_bytes")
	start := wire.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := workload.Churn(db, spec, testRealm, benchChurn, int64(i), t0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.PropagateTo(addr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(wire.Load()-start)/float64(b.N), "wirebytes/op")
}

func BenchmarkKpropFull5k(b *testing.B)  { benchRound(b, 5000, WithForceFull()) }
func BenchmarkKpropDelta5k(b *testing.B) { benchRound(b, 5000) }

func BenchmarkKpropFull100k(b *testing.B)  { benchRound(b, 100_000, WithForceFull()) }
func BenchmarkKpropDelta100k(b *testing.B) { benchRound(b, 100_000) }

// delayConn models a WAN hop: every master→slave message pays half an
// RTT before it is written. Serial fan-out pays the latency once per
// slave in sequence; parallel fan-out overlaps it.
type delayConn struct {
	net.Conn
	delay time.Duration
}

func (c *delayConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(p)
}

// benchFanOut measures a full PropagateAll round to 8 slaves behind a
// simulated 25ms-RTT WAN, with the given concurrency bound.
func benchFanOut(b *testing.B, fanout int) {
	const slaves = 8
	const rtt = 25 * time.Millisecond

	db := kdb.New(des.StringToKey("bench-master-pw", testRealm))
	spec := workload.Spec{Users: 1000, Workstations: 8, Services: 5, Seed: 7}
	if err := workload.Install(db, spec, testRealm, t0); err != nil {
		b.Fatal(err)
	}
	db.SetJournalCap(spec.Users)

	addrs := make([]string, slaves)
	for i := range addrs {
		slaveDB := kdb.New(des.StringToKey("bench-master-pw", testRealm))
		l, err := Serve(NewSlave(slaveDB, nil), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { l.Close() })
		addrs[i] = l.Addr()
	}

	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp4", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &delayConn{Conn: c, delay: rtt / 2}, nil
	}
	m := NewMaster(db, addrs, nil, WithFanout(fanout), WithDialer(dial))
	if err := m.PropagateAll(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := workload.Churn(db, spec, testRealm, benchChurn, int64(i), t0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.PropagateAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKpropFanOutSerial8(b *testing.B)   { benchFanOut(b, 1) }
func BenchmarkKpropFanOutParallel8(b *testing.B) { benchFanOut(b, 8) }

// TestBenchSetupConverges keeps the benchmark harness honest under
// plain `go test`: one churn round propagates and converges.
func TestBenchSetupConverges(t *testing.T) {
	db := kdb.New(des.StringToKey("bench-master-pw", testRealm))
	spec := workload.Spec{Users: 100, Workstations: 4, Services: 5, Seed: 1}
	if err := workload.Install(db, spec, testRealm, t0); err != nil {
		t.Fatal(err)
	}
	slaveDB := kdb.New(des.StringToKey("bench-master-pw", testRealm))
	l, err := Serve(NewSlave(slaveDB, nil), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	m := NewMaster(db, []string{l.Addr()}, nil)
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Churn(db, spec, testRealm, 0.05, 1, t0); err != nil {
		t.Fatal(err)
	}
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if slaveDB.Serial() != db.Serial() || slaveDB.Digest() != db.Digest() {
		t.Fatalf("slave at (%d, %x), master at (%d, %x)",
			slaveDB.Serial(), slaveDB.Digest(), db.Serial(), db.Digest())
	}
}

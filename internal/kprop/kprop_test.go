package kprop

import (
	"context"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
)

const testRealm = "ATHENA.MIT.EDU"

var t0 = time.Date(1988, 2, 9, 12, 0, 0, 0, time.UTC)

func masterDB(t testing.TB, n int) *kdb.Database {
	t.Helper()
	db := kdb.New(des.StringToKey("master", testRealm))
	key, _ := des.NewRandomKey()
	if err := db.Add(core.TGSName, testRealm, key, 0, "kdb_init", t0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		uk, _ := des.NewRandomKey()
		name := "user" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		if err := db.Add(name, "", uk, 0, "register", t0); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestPropagation reproduces Figure 13 over real sockets: dump, encrypted
// checksum, transfer, verify, swap.
func TestPropagation(t *testing.T) {
	master := masterDB(t, 50)
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	m := NewMaster(master, []string{l.Addr()}, nil)
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if slaveDB.Len() != master.Len() {
		t.Errorf("slave has %d principals, master %d", slaveDB.Len(), master.Len())
	}
	if slave.Updates() != 1 || slave.Rejected() != 0 {
		t.Errorf("updates=%d rejected=%d", slave.Updates(), slave.Rejected())
	}
	// The slave stays read-only after the update (§5).
	if !slaveDB.ReadOnly() {
		t.Error("slave database became writable")
	}
	// Incremental change on the master propagates on the next push.
	nk, _ := des.NewRandomKey()
	if err := master.Add("newuser", "", nk, 0, "kadmin", t0); err != nil {
		t.Fatal(err)
	}
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := slaveDB.Get("newuser", ""); err != nil {
		t.Errorf("new principal missing on slave: %v", err)
	}
}

// TestSlaveServesAuthAfterPropagation: the end goal — a KDC over the
// propagated copy can authenticate users (Figure 10).
func TestSlaveServesAuthAfterPropagation(t *testing.T) {
	master := masterDB(t, 1)
	userKey := des.StringToKey("pw", testRealm+"alice")
	if err := master.Add("alice", "", userKey, 0, "register", t0); err != nil {
		t.Fatal(err)
	}
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := NewMaster(master, []string{l.Addr()}, nil).PropagateAll(); err != nil {
		t.Fatal(err)
	}

	kdcSrv := kdc.New(testRealm, slaveDB, kdc.WithClock(func() time.Time { return t0 }))
	req := (&core.AuthRequest{
		Client:  core.Principal{Name: "alice", Realm: testRealm},
		Service: core.TGSPrincipal(testRealm, testRealm),
		Life:    core.DefaultTGTLife,
		Time:    core.TimeFromGo(t0),
	}).Encode()
	raw := kdcSrv.Handle(req, core.Addr{127, 0, 0, 1})
	if err := core.IfErrorMessage(raw); err != nil {
		t.Fatalf("slave KDC failed: %v", err)
	}
	rep, _ := core.DecodeAuthReply(raw)
	if _, err := rep.Open(userKey); err != nil {
		t.Errorf("slave-issued reply undecryptable: %v", err)
	}
}

// TestTamperedDumpRejected: bit flips in transit are caught by the
// checksum and the old database survives.
func TestTamperedDumpRejected(t *testing.T) {
	master := masterDB(t, 10)
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)

	dump := master.Dump()
	var sumBytes [8]byte
	binary.BigEndian.PutUint64(sumBytes[:], kdb.DumpChecksum(master.MasterKey(), dump))
	sealed := des.Seal(master.MasterKey(), sumBytes[:])

	mut := append([]byte(nil), dump...)
	mut[len(mut)/3] ^= 0x01
	if err := slave.Install(sealed, mut); err == nil {
		t.Fatal("tampered dump installed")
	}
	if slaveDB.Len() != 0 {
		t.Error("tampered dump modified the database")
	}
}

// TestForgedChecksumRejected: "it is essential that only information
// from the master host be accepted" — an attacker without the master key
// cannot seal an acceptable checksum.
func TestForgedChecksumRejected(t *testing.T) {
	master := masterDB(t, 5)
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)

	// The attacker builds their own database and seals its checksum in
	// their own key.
	evil := kdb.New(des.StringToKey("evil", "EVIL"))
	ek, _ := des.NewRandomKey()
	evil.Add("mallory", "", ek, 0, "evil", t0)
	dump := evil.Dump()
	var sumBytes [8]byte
	binary.BigEndian.PutUint64(sumBytes[:], kdb.DumpChecksum(evil.MasterKey(), dump))
	sealed := des.Seal(evil.MasterKey(), sumBytes[:])

	if err := slave.Install(sealed, dump); err == nil {
		t.Fatal("forged propagation accepted")
	}
	if slave.Rejected() != 1 { // every failed verification counts, even off-socket
		t.Error("unexpected rejected count")
	}
	if slaveDB.Len() != 0 {
		t.Error("forged dump modified the database")
	}
}

// TestFanOutToMultipleSlaves: one master updates several slaves; a dead
// slave doesn't block the others.
func TestFanOutToMultipleSlaves(t *testing.T) {
	master := masterDB(t, 20)
	var slaves []*Slave
	addrs := []string{"127.0.0.1:1"} // dead address first
	for i := 0; i < 3; i++ {
		sdb := kdb.New(master.MasterKey())
		s := NewSlave(sdb, nil)
		l, err := Serve(s, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		slaves = append(slaves, s)
		addrs = append(addrs, l.Addr())
	}
	m := NewMaster(master, addrs, nil)
	err := m.PropagateAll()
	if err == nil {
		t.Error("dead slave not reported")
	}
	for i, s := range slaves {
		if s.Updates() != 1 {
			t.Errorf("slave %d updates = %d", i, s.Updates())
		}
	}
}

// TestRunLoop: the periodic kick-off pushes at the configured interval.
func TestRunLoop(t *testing.T) {
	master := masterDB(t, 5)
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	m := NewMaster(master, []string{l.Addr()}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		m.Run(ctx, 20*time.Millisecond)
		close(done)
	}()
	deadline := time.After(5 * time.Second)
	for slave.Updates() < 2 {
		select {
		case <-deadline:
			t.Fatal("timed out waiting for periodic propagation")
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	<-done
}

// TestSocketRejectionPath: a tampered dump over the real socket gets a
// non-OK ack and bumps the rejected counter.
func TestSocketRejectionPath(t *testing.T) {
	master := masterDB(t, 5)
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Hand-roll a kprop push with a corrupted dump.
	dump := master.Dump()
	var sumBytes [8]byte
	binary.BigEndian.PutUint64(sumBytes[:], kdb.DumpChecksum(master.MasterKey(), dump))
	sealed := des.Seal(master.MasterKey(), sumBytes[:])
	dump[0] ^= 0xff

	conn, err := dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := kdc.WriteFrame(conn, sealed); err != nil {
		t.Fatal(err)
	}
	if err := kdc.WriteFrame(conn, dump); err != nil {
		t.Fatal(err)
	}
	ack, err := kdc.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(ack) == "OK" {
		t.Error("corrupted dump acknowledged OK")
	}
	if slave.Rejected() != 1 {
		t.Errorf("rejected = %d", slave.Rejected())
	}
}

// dial is a tiny helper for hand-rolled pushes.
func dial(addr string) (net.Conn, error) {
	return net.Dial("tcp4", addr)
}

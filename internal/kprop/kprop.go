// Package kprop implements the database propagation software of §5.3
// (Figure 13): "A program on the master host, called kprop, sends the
// update to a peer program, called kpropd, running on each of the slave
// machines. First kprop sends a checksum of the new database it is about
// to send. The checksum is encrypted in the Kerberos master database
// key, which both the master and slave Kerberos machines possess. The
// data is then transferred over the network ... The slave propagation
// server calculates a checksum of the data it has received, and if it
// matches the checksum sent by the master, the new information is used
// to update the slave's database."
package kprop

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
)

// DefaultInterval is how often the master pushes the database: "The
// master database is dumped every hour" (§5.3).
const DefaultInterval = time.Hour

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Master is the kprop side: it dumps the master database and pushes it
// to slaves.
type Master struct {
	db     *kdb.Database
	slaves []string
	logger *log.Logger
}

// NewMaster creates the propagation client for the master database.
func NewMaster(db *kdb.Database, slaveAddrs []string, logger *log.Logger) *Master {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	return &Master{db: db, slaves: slaveAddrs, logger: logger}
}

// PropagateTo pushes one full dump to a single kpropd.
func (m *Master) PropagateTo(addr string) error {
	dump := m.db.Dump()
	var sumBytes [8]byte
	binary.BigEndian.PutUint64(sumBytes[:], kdb.DumpChecksum(m.db.MasterKey(), dump))
	sealedSum := des.Seal(m.db.MasterKey(), sumBytes[:])

	conn, err := net.DialTimeout("tcp4", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("kprop: connecting to %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	if err := kdc.WriteFrame(conn, sealedSum); err != nil {
		return fmt.Errorf("kprop: sending checksum: %w", err)
	}
	if err := kdc.WriteFrame(conn, dump); err != nil {
		return fmt.Errorf("kprop: sending dump: %w", err)
	}
	ack, err := kdc.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("kprop: reading acknowledgement: %w", err)
	}
	if string(ack) != "OK" {
		return fmt.Errorf("kprop: slave %s rejected update: %s", addr, ack)
	}
	m.logger.Printf("kprop: propagated %d bytes (%d principals) to %s",
		len(dump), m.db.Len(), addr)
	return nil
}

// PropagateAll pushes to every configured slave, collecting errors; one
// sick slave does not block the others.
func (m *Master) PropagateAll() error {
	var errs []error
	for _, addr := range m.slaves {
		if err := m.PropagateTo(addr); err != nil {
			m.logger.Printf("kprop: %v", err)
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Run pushes on the given interval until the context is cancelled — the
// periodic kick-off the administrator arranges (§6.3). A zero interval
// means DefaultInterval.
func (m *Master) Run(ctx context.Context, interval time.Duration) {
	if interval == 0 {
		interval = DefaultInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_ = m.PropagateAll()
		}
	}
}

// Slave is the kpropd side: it receives dumps, verifies them against the
// encrypted checksum, and swaps them into the local read-only database.
type Slave struct {
	db     *kdb.Database
	logger *log.Logger

	updates   atomic.Uint64
	rejected  atomic.Uint64
	lastBytes atomic.Uint64
}

// NewSlave creates the propagation server over a slave database. The
// database is forced read-only: only propagation may modify it (§5).
func NewSlave(db *kdb.Database, logger *log.Logger) *Slave {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	db.SetReadOnly(true)
	return &Slave{db: db, logger: logger}
}

// Updates reports how many dumps have been installed.
func (s *Slave) Updates() uint64 { return s.updates.Load() }

// Rejected reports how many dumps failed verification.
func (s *Slave) Rejected() uint64 { return s.rejected.Load() }

// handleConn processes one kprop connection.
func (s *Slave) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))

	sealedSum, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	dump, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	if err := s.Install(sealedSum, dump); err != nil {
		s.rejected.Add(1)
		s.logger.Printf("kpropd: rejected update: %v", err)
		kdc.WriteFrame(conn, []byte(err.Error()))
		return
	}
	kdc.WriteFrame(conn, []byte("OK"))
}

// Install verifies a (sealed checksum, dump) pair and swaps it into the
// database. "it is essential that only information from the master host
// be accepted by the slaves, and that tampering of data be detected,
// thus the checksum" (§5.3).
func (s *Slave) Install(sealedSum, dump []byte) error {
	sumBytes, err := des.Unseal(s.db.MasterKey(), sealedSum)
	if err != nil || len(sumBytes) != 8 {
		return errors.New("kpropd: checksum not sealed in the master database key")
	}
	want := binary.BigEndian.Uint64(sumBytes)
	if got := kdb.DumpChecksum(s.db.MasterKey(), dump); got != want {
		return fmt.Errorf("kpropd: dump checksum %x does not match master's %x", got, want)
	}
	if err := s.db.LoadDump(dump); err != nil {
		return fmt.Errorf("kpropd: installing dump: %w", err)
	}
	s.updates.Add(1)
	s.lastBytes.Store(uint64(len(dump)))
	s.logger.Printf("kpropd: installed %d bytes (%d principals)", len(dump), s.db.Len())
	return nil
}

// Listener serves kpropd over TCP.
type Listener struct {
	tcp    net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Serve binds kpropd on addr.
func Serve(s *Slave, addr string) (*Listener, error) {
	tcp, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("kpropd: binding: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Listener{tcp: tcp, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := tcp.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				s.handleConn(conn)
			}()
		}
	}()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.tcp.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error {
	l.cancel()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

// Package kprop implements the database propagation software of §5.3
// (Figure 13): "A program on the master host, called kprop, sends the
// update to a peer program, called kpropd, running on each of the slave
// machines. First kprop sends a checksum of the new database it is about
// to send. The checksum is encrypted in the Kerberos master database
// key, which both the master and slave Kerberos machines possess. The
// data is then transferred over the network ... The slave propagation
// server calculates a checksum of the data it has received, and if it
// matches the checksum sent by the master, the new information is used
// to update the slave's database."
//
// On top of the paper's full-dump scheme this package speaks kprop v2:
// the slave advertises the (serial, digest) its copy is at and the
// master ships only the flate-compressed journal segment it is missing —
// O(churn) instead of O(database) per round — falling back to a
// compressed full dump whenever the slave's state cannot be verified
// (out of retention, diverged, ahead, or the slave rejects the delta).
// Fan-out to the slave set runs with bounded concurrency and optional
// per-slave retry/backoff instead of one serial round per slave.
package kprop

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/obs"
)

// DefaultInterval is how often the master pushes the database: "The
// master database is dumped every hour" (§5.3).
const DefaultInterval = time.Hour

// DefaultFanout bounds how many slaves one round updates concurrently.
const DefaultFanout = 4

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Option customizes a Master or a Slave.
type Option func(*options)

type options struct {
	reg       *obs.Registry
	sink      obs.Sink
	fanout    int
	forceFull bool
	retries   int
	backoff   time.Duration
	dial      func(addr string, timeout time.Duration) (net.Conn, error)
}

// WithRegistry publishes propagation metrics on reg (kprop_* for the
// master side, kpropd_* for the slave side).
func WithRegistry(reg *obs.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// WithTraceSink emits one obs.KpropRound event per push (master side)
// to sink.
func WithTraceSink(sink obs.Sink) Option {
	return func(o *options) { o.sink = sink }
}

// WithFanout bounds the number of slaves updated concurrently per round
// (master side). n < 1 means DefaultFanout; 1 restores serial rounds.
func WithFanout(n int) Option {
	return func(o *options) { o.fanout = n }
}

// WithForceFull disables deltas: every push ships a full (still
// compressed) dump, the paper's original behaviour.
func WithForceFull() Option {
	return func(o *options) { o.forceFull = true }
}

// WithRetry retries a failed slave push up to retries more times within
// the same round, sleeping backoff (with jitter, doubling per attempt)
// in between. The default is no retries.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(o *options) { o.retries, o.backoff = retries, backoff }
}

// WithDialer replaces the TCP dialer (master side) — used by tests and
// benchmarks to inject latency or failures.
func WithDialer(dial func(addr string, timeout time.Duration) (net.Conn, error)) Option {
	return func(o *options) { o.dial = dial }
}

// masterMetrics tracks the kprop side: how many rounds went out as
// deltas versus full dumps, why full dumps happened, how many bytes hit
// the wire for each, and how long pushes and whole fan-out rounds take.
type masterMetrics struct {
	pushes       obs.Counter
	failures     obs.Counter
	retries      obs.Counter
	bytes        obs.Counter // total wire bytes, delta + full
	deltaRounds  obs.Counter
	fullRounds   obs.Counter
	deltaBytes   obs.Counter
	fullBytes    obs.Counter
	fbRetention  obs.Counter // slave behind the journal horizon
	fbAhead      obs.Counter // slave ahead of the master (other lineage)
	fbDivergence obs.Counter // digest mismatch at a known serial
	fbReject     obs.Counter // slave NACKed a delta and asked for full
	lastSuccess  obs.Gauge   // unix seconds of the last successful push
	roundLatency obs.Histogram
	fanoutLat    obs.Histogram
}

func (m *masterMetrics) register(reg *obs.Registry) {
	reg.RegisterCounter("kprop_pushes", &m.pushes)
	reg.RegisterCounter("kprop_failures", &m.failures)
	reg.RegisterCounter("kprop_retries", &m.retries)
	reg.RegisterCounter("kprop_bytes", &m.bytes)
	reg.RegisterCounter("kprop_delta_rounds", &m.deltaRounds)
	reg.RegisterCounter("kprop_full_rounds", &m.fullRounds)
	reg.RegisterCounter("kprop_delta_bytes", &m.deltaBytes)
	reg.RegisterCounter("kprop_full_bytes", &m.fullBytes)
	reg.RegisterCounter("kprop_fallback_retention", &m.fbRetention)
	reg.RegisterCounter("kprop_fallback_ahead", &m.fbAhead)
	reg.RegisterCounter("kprop_fallback_divergence", &m.fbDivergence)
	reg.RegisterCounter("kprop_fallback_reject", &m.fbReject)
	reg.RegisterGauge("kprop_last_success_unix", &m.lastSuccess)
	reg.RegisterHistogram("kprop_round_latency", &m.roundLatency)
	reg.RegisterHistogram("kprop_fanout_latency", &m.fanoutLat)
}

// Master is the kprop side: it tracks what each slave has acknowledged
// and pushes deltas (or full dumps) to bring them current.
type Master struct {
	db        *kdb.Database
	slaves    []string
	logger    *log.Logger
	metrics   masterMetrics
	sink      obs.Sink
	fanout    int
	forceFull bool
	retries   int
	backoff   time.Duration
	dial      func(addr string, timeout time.Duration) (net.Conn, error)

	mu    sync.Mutex
	acked map[string]uint64 // slave addr → last acked serial
}

// NewMaster creates the propagation client for the master database.
func NewMaster(db *kdb.Database, slaveAddrs []string, logger *log.Logger, opts ...Option) *Master {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	o := options{fanout: DefaultFanout, backoff: 250 * time.Millisecond}
	for _, opt := range opts {
		opt(&o)
	}
	if o.fanout < 1 {
		o.fanout = DefaultFanout
	}
	if o.dial == nil {
		o.dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp4", addr, timeout)
		}
	}
	m := &Master{
		db: db, slaves: slaveAddrs, logger: logger, sink: o.sink,
		fanout: o.fanout, forceFull: o.forceFull,
		retries: o.retries, backoff: o.backoff, dial: o.dial,
		acked: make(map[string]uint64, len(slaveAddrs)),
	}
	if o.reg != nil {
		m.metrics.register(o.reg)
		o.reg.GaugeFunc("kprop_serial", func() int64 { return int64(db.Serial()) })
		for _, addr := range slaveAddrs {
			addr := addr
			o.reg.GaugeFunc(fmt.Sprintf("kprop_slave_lag{slave=%q}", addr), func() int64 {
				return int64(db.Serial() - m.AckedSerial(addr))
			})
		}
	}
	return m
}

// shardKey renders the acked-map key for one slave's shard (the bare
// address for a v2 whole-database exchange).
func shardKey(addr string, shard int) string {
	if shard < 0 {
		return addr
	}
	return fmt.Sprintf("%s#%d", addr, shard)
}

// AckedSerial reports the last serial a slave acknowledged (0 before the
// first successful push this process made to it). Against a sharded
// database this is the sum of the per-shard acked serials, comparable to
// Database.Serial.
func (m *Master) AckedSerial(addr string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.db.Shards() == 1 {
		return m.acked[addr]
	}
	var sum uint64
	for i := 0; i < m.db.Shards(); i++ {
		sum += m.acked[shardKey(addr, i)]
	}
	return sum
}

// AckedShardSerial reports the last serial a slave acknowledged for one
// shard.
func (m *Master) AckedShardSerial(addr string, shard int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acked[shardKey(addr, shard)]
}

func (m *Master) setAcked(addr string, shard int, serial uint64) {
	key := shardKey(addr, shard)
	m.mu.Lock()
	if serial > m.acked[key] {
		m.acked[key] = serial
	}
	m.mu.Unlock()
}

// sealSum computes the §5.3 keyed checksum of data and seals it in the
// master database key.
func sealSum(key des.Key, data []byte) []byte {
	var sumBytes [8]byte
	binary.BigEndian.PutUint64(sumBytes[:], kdb.DumpChecksum(key, data))
	return des.Seal(key, sumBytes[:])
}

// openSum unseals a §5.3 checksum.
func openSum(key des.Key, sealed []byte) (uint64, error) {
	sumBytes, err := des.Unseal(key, sealed)
	if err != nil || len(sumBytes) != 8 {
		return 0, errors.New("kprop: checksum not sealed in the master database key")
	}
	return binary.BigEndian.Uint64(sumBytes), nil
}

// round caches the expensive full-dump artifacts so one fan-out round
// dumps, checksums, and compresses each dump unit (the whole database,
// or one shard of it) at most once no matter how many slaves need the
// full path.
type round struct {
	m     *Master
	fulls []roundFull // index shard+1 (0 is the whole-database unit)
}

type roundFull struct {
	once    sync.Once
	msg     []byte // encoded FullDumpMsg
	rawLen  int    // uncompressed dump size
	wireLen int    // compressed payload size
}

func newRound(m *Master) *round {
	return &round{m: m, fulls: make([]roundFull, m.db.Shards()+1)}
}

// fullMsg returns the cached full-dump message for one unit: shard < 0
// is the whole database (v2), otherwise one shard's v2 dump.
func (r *round) fullMsg(shard int) ([]byte, int, int) {
	rf := &r.fulls[shard+1]
	rf.once.Do(func() {
		var dump []byte
		if shard < 0 {
			dump = r.m.db.Dump()
		} else {
			dump = r.m.db.DumpShard(shard)
		}
		payload := deflate(dump)
		f := FullDumpMsg{SealedSum: sealSum(r.m.db.MasterKey(), dump), Payload: payload}
		rf.msg = f.Encode()
		rf.rawLen = len(dump)
		rf.wireLen = len(payload)
	})
	return rf.msg, rf.rawLen, rf.wireLen
}

// pushResult describes what one push shipped.
type pushResult struct {
	kind      string // "delta" or "full"
	fallback  string // why a full dump was sent, "" for a chosen delta
	wireBytes int    // payload bytes on the wire (compressed)
	changes   int    // delta changes shipped
	serial    uint64 // serial the slave acked
}

// shardUnits lists the exchange units for this database: the single
// whole-database unit (-1, the v2 conversation) for an unsharded
// database, one unit per shard otherwise.
func (m *Master) shardUnits() []int {
	if m.db.Shards() == 1 {
		return []int{-1}
	}
	units := make([]int, m.db.Shards())
	for i := range units {
		units[i] = i
	}
	return units
}

// PropagateTo pushes one update (delta if possible) to a single kpropd —
// every shard of a sharded database, in parallel bounded by the fanout.
//
//kerb:clockadapter -- propagation latency metrics and dial deadlines are wall-clock
func (m *Master) PropagateTo(addr string) error {
	rnd := newRound(m)
	units := m.shardUnits()
	if len(units) == 1 {
		return m.push(addr, units[0], rnd)
	}
	sem := make(chan struct{}, m.fanout)
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs []error
	)
	for _, shard := range units {
		wg.Add(1)
		sem <- struct{}{}
		go func(shard int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := m.push(addr, shard, rnd); err != nil {
				emu.Lock()
				errs = append(errs, err)
				emu.Unlock()
			}
		}(shard)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// push runs one instrumented exchange with one slave (one shard of it,
// for a sharded database).
//
//kerb:clockadapter -- propagation latency metrics are wall-clock observability
func (m *Master) push(addr string, shard int, rnd *round) error {
	start := time.Now()
	res, err := m.exchange(addr, shard, rnd)
	d := time.Since(start)
	m.metrics.pushes.Inc()
	m.metrics.roundLatency.Observe(d)
	if err != nil {
		m.metrics.failures.Inc()
	} else {
		m.metrics.bytes.Add(uint64(res.wireBytes))
		m.metrics.lastSuccess.Set(time.Now().Unix())
		m.setAcked(addr, shard, res.serial)
		switch res.kind {
		case "delta":
			m.metrics.deltaRounds.Inc()
			m.metrics.deltaBytes.Add(uint64(res.wireBytes))
			m.logger.Printf("kprop: delta %d changes (%d bytes) to %s, serial %d",
				res.changes, res.wireBytes, addr, res.serial)
		case "full":
			m.metrics.fullRounds.Inc()
			m.metrics.fullBytes.Add(uint64(res.wireBytes))
			m.logger.Printf("kprop: full dump (%d bytes, %d principals) to %s (%s), serial %d",
				res.wireBytes, m.db.Len(), addr, res.fallback, res.serial)
		}
	}
	switch res.fallback {
	case kdb.FallbackRetention.String():
		m.metrics.fbRetention.Inc()
	case kdb.FallbackAhead.String():
		m.metrics.fbAhead.Inc()
	case kdb.FallbackDivergence.String():
		m.metrics.fbDivergence.Inc()
	case "reject":
		m.metrics.fbReject.Inc()
	}
	if m.sink != nil {
		ev := obs.Event{
			Kind:     obs.KpropRound,
			Time:     start,
			Duration: d,
			Service:  addr,
			Bytes:    res.wireBytes,
			Detail:   res.kind,
		}
		if res.fallback != "" {
			ev.Detail = res.kind + ":" + res.fallback
		}
		if err != nil {
			ev.Err = err.Error()
		}
		m.sink.Emit(ev)
	}
	return err
}

// exchange speaks one conversation with a slave: v2 when shard < 0 (the
// whole database), v3 scoped to one shard otherwise.
//
//kerb:clockadapter -- connection deadlines are wall-clock I/O timeouts
func (m *Master) exchange(addr string, shard int, rnd *round) (pushResult, error) {
	var res pushResult
	conn, err := m.dial(addr, 5*time.Second)
	if err != nil {
		return res, fmt.Errorf("kprop: connecting to %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))

	var hello MasterHello
	if shard < 0 {
		hello = MasterHello{Version: wireVersion, Serial: m.db.Serial(), Digest: m.db.Digest()}
	} else {
		hello = MasterHello{
			Version: wireVersionV3,
			Serial:  m.db.ShardSerial(shard),
			Digest:  m.db.ShardDigest(shard),
			Shard:   uint32(shard),
			Shards:  uint32(m.db.Shards()),
		}
	}
	if err := writeFrame(conn, hello.Encode()); err != nil {
		return res, fmt.Errorf("kprop: sending hello to %s: %w", addr, err)
	}
	frame, err := readFrame(conn)
	if err != nil {
		return res, fmt.Errorf("kprop: reading hello from %s: %w", addr, err)
	}
	sh, err := DecodeSlaveHello(frame)
	if err != nil {
		return res, fmt.Errorf("kprop: slave %s hello: %w", addr, err)
	}

	sendFull := m.forceFull
	if !sendFull {
		var changes []kdb.Change
		var verdict kdb.DeltaVerdict
		if shard < 0 {
			changes, verdict = m.db.ChangesSince(sh.Serial, sh.Digest)
		} else {
			changes, verdict = m.db.ChangesSinceShard(shard, sh.Serial, sh.Digest)
		}
		if verdict != kdb.DeltaOK {
			sendFull = true
			res.fallback = verdict.String()
		} else {
			seg := kdb.EncodeChanges(changes)
			to := sh.Serial + uint64(len(changes))
			d := DeltaMsg{
				From:      sh.Serial,
				To:        to,
				SealedSum: sealSum(m.db.MasterKey(), seg),
				Payload:   deflate(seg),
			}
			if err := writeFrame(conn, d.Encode()); err != nil {
				return res, fmt.Errorf("kprop: sending delta to %s: %w", addr, err)
			}
			res.kind = "delta"
			res.changes = len(changes)
			res.wireBytes = len(d.Payload)
			ack, err := m.readAck(conn, addr)
			if err != nil {
				return res, err
			}
			if ack.OK {
				res.serial = ack.Serial
				return res, nil
			}
			if !ack.NeedFull {
				return res, fmt.Errorf("kprop: slave %s rejected delta: %s", addr, ack.Err)
			}
			// The slave could not apply the delta (e.g. it restarted into
			// a diverged copy between hello and apply) and asked for a
			// full resync on this connection.
			sendFull = true
			res.fallback = "reject"
		}
	}

	msg, _, wireLen := rnd.fullMsg(shard)
	if err := writeFrame(conn, msg); err != nil {
		return res, fmt.Errorf("kprop: sending dump to %s: %w", addr, err)
	}
	res.kind = "full"
	res.wireBytes += wireLen
	ack, err := m.readAck(conn, addr)
	if err != nil {
		return res, err
	}
	if !ack.OK {
		return res, fmt.Errorf("kprop: slave %s rejected dump: %s", addr, ack.Err)
	}
	res.serial = ack.Serial
	return res, nil
}

func (m *Master) readAck(conn net.Conn, addr string) (AckMsg, error) {
	frame, err := readFrame(conn)
	if err != nil {
		return AckMsg{}, fmt.Errorf("kprop: reading ack from %s: %w", addr, err)
	}
	ack, err := DecodeAckMsg(frame)
	if err != nil {
		return AckMsg{}, fmt.Errorf("kprop: slave %s ack: %w", addr, err)
	}
	return ack, nil
}

// pushWithRetry retries transient failures with jittered, doubling
// backoff — one sick slave costs its own retries, never the round.
//
//kerb:clockadapter -- retry backoff sleeps are wall-clock by nature
func (m *Master) pushWithRetry(addr string, shard int, rnd *round) error {
	err := m.push(addr, shard, rnd)
	for attempt := 0; err != nil && attempt < m.retries; attempt++ {
		m.metrics.retries.Inc()
		sleep := m.backoff << attempt
		sleep += time.Duration(rand.Int63n(int64(sleep)/2 + 1))
		time.Sleep(sleep)
		err = m.push(addr, shard, rnd)
	}
	return err
}

// PropagateAll pushes to every configured slave with bounded
// concurrency, collecting errors; one sick slave does not block the
// others. Against a sharded database the work units are (slave, shard)
// pairs, so independent shards of independent slaves ship in parallel.
// Each full dump unit, if any slave needs it, is computed once.
//
//kerb:clockadapter -- fan-out round latency metric is wall-clock observability
func (m *Master) PropagateAll() error {
	start := time.Now()
	rnd := newRound(m)
	units := m.shardUnits()
	sem := make(chan struct{}, m.fanout)
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs []error
	)
	for _, addr := range m.slaves {
		for _, shard := range units {
			wg.Add(1)
			sem <- struct{}{}
			go func(addr string, shard int) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := m.pushWithRetry(addr, shard, rnd); err != nil {
					m.logger.Printf("kprop: %v", err)
					emu.Lock()
					errs = append(errs, err)
					emu.Unlock()
				}
			}(addr, shard)
		}
	}
	wg.Wait()
	m.metrics.fanoutLat.Observe(time.Since(start))
	return errors.Join(errs...)
}

// Run pushes on the given interval until the context is cancelled — the
// periodic kick-off the administrator arranges (§6.3). A zero interval
// means DefaultInterval.
func (m *Master) Run(ctx context.Context, interval time.Duration) {
	if interval == 0 {
		interval = DefaultInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_ = m.PropagateAll()
		}
	}
}

// slaveMetrics tracks the kpropd side: installed and rejected updates,
// the delta/full split, resync recoveries, bytes received, and how long
// an install (verify + swap) takes.
type slaveMetrics struct {
	updates        obs.Counter
	rejected       obs.Counter
	deltas         obs.Counter
	fulls          obs.Counter
	resyncs        obs.Counter // deltas that failed and healed via full dump
	bytes          obs.Counter
	lastBytes      obs.Gauge
	serial         obs.Gauge
	installLatency obs.Histogram
}

func (m *slaveMetrics) register(reg *obs.Registry) {
	reg.RegisterCounter("kpropd_updates", &m.updates)
	reg.RegisterCounter("kpropd_rejected", &m.rejected)
	reg.RegisterCounter("kpropd_deltas", &m.deltas)
	reg.RegisterCounter("kpropd_fulls", &m.fulls)
	reg.RegisterCounter("kpropd_resyncs", &m.resyncs)
	reg.RegisterCounter("kpropd_bytes", &m.bytes)
	reg.RegisterGauge("kpropd_last_bytes", &m.lastBytes)
	reg.RegisterGauge("kpropd_serial", &m.serial)
	reg.RegisterHistogram("kpropd_install_latency", &m.installLatency)
}

// Slave is the kpropd side: it receives updates, verifies them against
// the encrypted checksum, and applies them to the local read-only
// database — deltas atomically in place, full dumps as a swap.
type Slave struct {
	db      *kdb.Database
	logger  *log.Logger
	metrics slaveMetrics
}

// NewSlave creates the propagation server over a slave database. The
// database is forced read-only: only propagation may modify it (§5).
func NewSlave(db *kdb.Database, logger *log.Logger, opts ...Option) *Slave {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	db.SetReadOnly(true)
	s := &Slave{db: db, logger: logger}
	if o.reg != nil {
		s.metrics.register(o.reg)
	}
	return s
}

// Updates reports how many updates (deltas or dumps) have been installed.
func (s *Slave) Updates() uint64 { return s.metrics.updates.Load() }

// Rejected reports how many updates failed verification.
func (s *Slave) Rejected() uint64 { return s.metrics.rejected.Load() }

// Resyncs reports how many failed deltas were healed by a full dump.
func (s *Slave) Resyncs() uint64 { return s.metrics.resyncs.Load() }

// Fulls reports how many full-dump installs have been applied.
func (s *Slave) Fulls() uint64 { return s.metrics.fulls.Load() }

// handleConn processes one kprop connection: v2 if the first frame is a
// MasterHello, the paper's original two-frame exchange otherwise.
//
//kerb:clockadapter -- connection read deadlines are wall-clock I/O timeouts
func (s *Slave) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))

	first, err := readFrame(conn)
	if err != nil {
		return
	}
	if !isV2(first) {
		s.handleLegacy(conn, first)
		return
	}
	hello, err := DecodeMasterHello(first)
	if err != nil {
		return
	}
	// A v3 hello scopes the conversation to one shard; it is only valid
	// when the slave's shard shape matches the master's. On a mismatch
	// the slave still answers the handshake but NACKs the update — the
	// operator re-shards deliberately, never by propagation accident.
	shard := -1
	mismatch := ""
	if hello.Version >= wireVersionV3 {
		if int(hello.Shards) != s.db.Shards() {
			mismatch = fmt.Sprintf("kpropd: master has %d shards, slave has %d", hello.Shards, s.db.Shards())
		} else {
			shard = int(hello.Shard)
		}
	}
	var sh SlaveHello
	switch {
	case mismatch != "":
		// Zero state: never tempt the master into a delta it would build
		// against the wrong shard shape.
		sh = SlaveHello{}
	case shard >= 0:
		sh = SlaveHello{
			Serial:     s.db.ShardSerial(shard),
			Digest:     s.db.ShardDigest(shard),
			Principals: uint32(s.db.ShardLen(shard)),
		}
	default:
		sh = SlaveHello{
			Serial:     s.db.Serial(),
			Digest:     s.db.Digest(),
			Principals: uint32(s.db.Len()),
		}
	}
	if err := writeFrame(conn, sh.Encode()); err != nil {
		return
	}
	msg, err := readFrame(conn)
	if err != nil {
		return
	}
	var ack AckMsg
	if mismatch != "" {
		s.metrics.rejected.Inc()
		s.logger.Printf("%s", mismatch)
		ack = AckMsg{Err: mismatch}
	} else {
		ack = s.applyUpdate(hello, msg, shard)
	}
	if err := writeFrame(conn, ack.Encode()); err != nil {
		return
	}
	if !ack.NeedFull {
		return
	}
	// The delta could not be applied; the master sends a full dump on
	// the same connection and the slave heals from it.
	msg, err = readFrame(conn)
	if err != nil {
		return
	}
	ack = s.applyUpdate(hello, msg, shard)
	if ack.OK {
		s.metrics.resyncs.Inc()
	}
	writeFrame(conn, ack.Encode())
}

// handleLegacy speaks the original §5.3 exchange: a sealed checksum
// frame, a dump frame, and a textual ack.
func (s *Slave) handleLegacy(conn net.Conn, sealedSum []byte) {
	dump, err := readFrame(conn)
	if err != nil {
		return
	}
	if err := s.Install(sealedSum, dump); err != nil {
		s.logger.Printf("kpropd: rejected update: %v", err)
		writeFrame(conn, []byte(err.Error()))
		return
	}
	writeFrame(conn, []byte("OK"))
}

// ackSerial is the serial an ack reports: the shard's for a v3
// conversation, the database's for v2.
func (s *Slave) ackSerial(shard int) uint64 {
	if shard >= 0 {
		return s.db.ShardSerial(shard)
	}
	return s.db.Serial()
}

// applyUpdate dispatches one update message and returns the ack. shard
// scopes a v3 conversation; -1 is the whole database (v2).
func (s *Slave) applyUpdate(hello MasterHello, msg []byte, shard int) AckMsg {
	if len(msg) >= 5 && [4]byte(msg[:4]) == wireMagic {
		switch msg[4] {
		case kindDelta:
			return s.applyDelta(hello, msg, shard)
		case kindFullDump:
			return s.applyFull(msg, shard)
		}
	}
	s.metrics.rejected.Inc()
	return AckMsg{Serial: s.ackSerial(shard), Err: "kpropd: unknown update message"}
}

// applyDelta verifies and atomically applies a journal segment. Any
// failure asks the master for a full resync: stale or out-of-order
// serials, a checksum that does not open under the master key, or a
// digest chain that does not land where the master said it would.
func (s *Slave) applyDelta(hello MasterHello, msg []byte, shard int) AckMsg {
	changes, payloadLen, wantDigest, err := s.verifyDelta(hello, msg)
	if err != nil {
		s.metrics.rejected.Inc() // install() was never reached
	} else {
		apply := func() error { return s.db.ApplyChanges(changes, wantDigest) }
		if shard >= 0 {
			apply = func() error { return s.db.ApplyChangesShard(shard, changes, wantDigest) }
		}
		err = s.install(apply, payloadLen)
	}
	if err != nil {
		s.logger.Printf("kpropd: delta rejected: %v", err)
		return AckMsg{Serial: s.ackSerial(shard), NeedFull: true, Err: err.Error()}
	}
	s.metrics.deltas.Inc()
	s.logger.Printf("kpropd: applied delta of %d changes, serial %d", len(changes), s.db.Serial())
	return AckMsg{Serial: s.ackSerial(shard), OK: true}
}

// verifyDelta decodes, decompresses, and checksum-verifies a delta
// message without touching the database.
func (s *Slave) verifyDelta(hello MasterHello, msg []byte) (changes []kdb.Change, payloadLen int, wantDigest uint64, err error) {
	d, err := DecodeDeltaMsg(msg)
	if err != nil {
		return nil, 0, 0, err
	}
	seg, err := inflate(d.Payload)
	if err != nil {
		return nil, 0, 0, err
	}
	want, err := openSum(s.db.MasterKey(), d.SealedSum)
	if err != nil {
		return nil, 0, 0, err
	}
	if got := kdb.DumpChecksum(s.db.MasterKey(), seg); got != want {
		return nil, 0, 0, fmt.Errorf("kpropd: delta checksum %x does not match master's %x", got, want)
	}
	changes, err = kdb.DecodeChanges(seg)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(changes) > 0 && changes[0].Serial != d.From+1 {
		return nil, 0, 0, fmt.Errorf("kpropd: delta starts at serial %d, header says %d", changes[0].Serial, d.From+1)
	}
	// When the delta lands exactly on the master's advertised state, the
	// applied digest chain must land on the master's digest — the
	// divergence check that catches same-serial different-history copies.
	if d.To == hello.Serial {
		wantDigest = hello.Digest
	}
	return changes, len(d.Payload), wantDigest, nil
}

// applyFull verifies and installs a compressed full dump (of the whole
// database, or of one shard in a v3 conversation).
func (s *Slave) applyFull(msg []byte, shard int) AckMsg {
	f, err := DecodeFullDumpMsg(msg)
	var dump []byte
	if err == nil {
		dump, err = inflate(f.Payload)
	}
	if err != nil {
		s.metrics.rejected.Inc() // Install() was never reached
		s.logger.Printf("kpropd: rejected update: %v", err)
		return AckMsg{Serial: s.ackSerial(shard), Err: err.Error()}
	}
	if shard >= 0 {
		err = s.InstallShard(shard, f.SealedSum, dump)
	} else {
		err = s.Install(f.SealedSum, dump)
	}
	if err != nil {
		s.logger.Printf("kpropd: rejected update: %v", err)
		return AckMsg{Serial: s.ackSerial(shard), Err: err.Error()}
	}
	s.metrics.fulls.Inc()
	return AckMsg{Serial: s.ackSerial(shard), OK: true}
}

// Install verifies a (sealed checksum, uncompressed dump) pair and swaps
// it into the database. "it is essential that only information from the
// master host be accepted by the slaves, and that tampering of data be
// detected, thus the checksum" (§5.3).
//
//kerb:clockadapter -- install latency metrics are wall-clock observability, not protocol time
func (s *Slave) Install(sealedSum, dump []byte) error {
	return s.install(func() error {
		want, err := openSum(s.db.MasterKey(), sealedSum)
		if err != nil {
			return err
		}
		if got := kdb.DumpChecksum(s.db.MasterKey(), dump); got != want {
			return fmt.Errorf("kpropd: dump checksum %x does not match master's %x", got, want)
		}
		if err := s.db.LoadDump(dump); err != nil {
			return fmt.Errorf("kpropd: installing dump: %w", err)
		}
		return nil
	}, len(dump))
}

// InstallShard is Install scoped to one shard: the checksum is verified
// the same way, and the dump replaces only that shard's contents and
// lineage.
//
//kerb:clockadapter -- install latency metrics are wall-clock observability, not protocol time
func (s *Slave) InstallShard(shard int, sealedSum, dump []byte) error {
	return s.install(func() error {
		want, err := openSum(s.db.MasterKey(), sealedSum)
		if err != nil {
			return err
		}
		if got := kdb.DumpChecksum(s.db.MasterKey(), dump); got != want {
			return fmt.Errorf("kpropd: dump checksum %x does not match master's %x", got, want)
		}
		if err := s.db.LoadDumpShard(shard, dump); err != nil {
			return fmt.Errorf("kpropd: installing shard dump: %w", err)
		}
		return nil
	}, len(dump))
}

// install runs one verified apply under the install metrics.
//
//kerb:clockadapter -- install latency metrics are wall-clock observability, not protocol time
func (s *Slave) install(apply func() error, wireBytes int) error {
	start := time.Now()
	err := apply()
	s.metrics.installLatency.Observe(time.Since(start))
	if err != nil {
		s.metrics.rejected.Inc()
		return err
	}
	s.metrics.updates.Inc()
	s.metrics.bytes.Add(uint64(wireBytes))
	s.metrics.lastBytes.Set(int64(wireBytes))
	s.metrics.serial.Set(int64(s.db.Serial()))
	s.logger.Printf("kpropd: installed update (%d wire bytes, %d principals, serial %d)",
		wireBytes, s.db.Len(), s.db.Serial())
	return nil
}

// Listener serves kpropd over TCP.
type Listener struct {
	tcp    net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Serve binds kpropd on addr.
func Serve(s *Slave, addr string) (*Listener, error) {
	tcp, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("kpropd: binding: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Listener{tcp: tcp, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := tcp.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				s.handleConn(conn)
			}()
		}
	}()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.tcp.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error {
	l.cancel()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

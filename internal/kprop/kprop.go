// Package kprop implements the database propagation software of §5.3
// (Figure 13): "A program on the master host, called kprop, sends the
// update to a peer program, called kpropd, running on each of the slave
// machines. First kprop sends a checksum of the new database it is about
// to send. The checksum is encrypted in the Kerberos master database
// key, which both the master and slave Kerberos machines possess. The
// data is then transferred over the network ... The slave propagation
// server calculates a checksum of the data it has received, and if it
// matches the checksum sent by the master, the new information is used
// to update the slave's database."
package kprop

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/obs"
)

// DefaultInterval is how often the master pushes the database: "The
// master database is dumped every hour" (§5.3).
const DefaultInterval = time.Hour

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Option customizes a Master or a Slave with observability hooks.
type Option func(*options)

type options struct {
	reg  *obs.Registry
	sink obs.Sink
}

// WithRegistry publishes propagation metrics on reg (kprop_* for the
// master side, kpropd_* for the slave side).
func WithRegistry(reg *obs.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// WithTraceSink emits one obs.KpropRound event per push (master side)
// to sink.
func WithTraceSink(sink obs.Sink) Option {
	return func(o *options) { o.sink = sink }
}

// masterMetrics tracks the kprop side: how often dumps go out, how
// large they are, and how stale the slaves can be (lag is derivable
// from kprop_last_success_unix).
type masterMetrics struct {
	pushes       obs.Counter
	failures     obs.Counter
	bytes        obs.Counter
	lastSuccess  obs.Gauge // unix seconds of the last successful push
	roundLatency obs.Histogram
}

func (m *masterMetrics) register(reg *obs.Registry) {
	reg.RegisterCounter("kprop_pushes", &m.pushes)
	reg.RegisterCounter("kprop_failures", &m.failures)
	reg.RegisterCounter("kprop_bytes", &m.bytes)
	reg.RegisterGauge("kprop_last_success_unix", &m.lastSuccess)
	reg.RegisterHistogram("kprop_round_latency", &m.roundLatency)
}

// Master is the kprop side: it dumps the master database and pushes it
// to slaves.
type Master struct {
	db      *kdb.Database
	slaves  []string
	logger  *log.Logger
	metrics masterMetrics
	sink    obs.Sink
}

// NewMaster creates the propagation client for the master database.
func NewMaster(db *kdb.Database, slaveAddrs []string, logger *log.Logger, opts ...Option) *Master {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	m := &Master{db: db, slaves: slaveAddrs, logger: logger, sink: o.sink}
	if o.reg != nil {
		m.metrics.register(o.reg)
	}
	return m
}

// PropagateTo pushes one full dump to a single kpropd.
//
//kerb:clockadapter -- propagation latency metrics and dial deadlines are wall-clock
func (m *Master) PropagateTo(addr string) error {
	start := time.Now()
	dump := m.db.Dump()
	err := m.propagateTo(addr, dump)
	d := time.Since(start)
	m.metrics.pushes.Inc()
	m.metrics.roundLatency.Observe(d)
	if err != nil {
		m.metrics.failures.Inc()
	} else {
		m.metrics.bytes.Add(uint64(len(dump)))
		m.metrics.lastSuccess.Set(time.Now().Unix())
	}
	if m.sink != nil {
		ev := obs.Event{
			Kind:     obs.KpropRound,
			Time:     start,
			Duration: d,
			Service:  addr,
			Bytes:    len(dump),
		}
		if err != nil {
			ev.Err = err.Error()
		}
		m.sink.Emit(ev)
	}
	return err
}

//kerb:clockadapter -- connection deadlines are wall-clock I/O timeouts
func (m *Master) propagateTo(addr string, dump []byte) error {
	var sumBytes [8]byte
	binary.BigEndian.PutUint64(sumBytes[:], kdb.DumpChecksum(m.db.MasterKey(), dump))
	sealedSum := des.Seal(m.db.MasterKey(), sumBytes[:])

	conn, err := net.DialTimeout("tcp4", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("kprop: connecting to %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	if err := kdc.WriteFrame(conn, sealedSum); err != nil {
		return fmt.Errorf("kprop: sending checksum: %w", err)
	}
	if err := kdc.WriteFrame(conn, dump); err != nil {
		return fmt.Errorf("kprop: sending dump: %w", err)
	}
	ack, err := kdc.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("kprop: reading acknowledgement: %w", err)
	}
	if string(ack) != "OK" {
		return fmt.Errorf("kprop: slave %s rejected update: %s", addr, ack)
	}
	m.logger.Printf("kprop: propagated %d bytes (%d principals) to %s",
		len(dump), m.db.Len(), addr)
	return nil
}

// PropagateAll pushes to every configured slave, collecting errors; one
// sick slave does not block the others.
func (m *Master) PropagateAll() error {
	var errs []error
	for _, addr := range m.slaves {
		if err := m.PropagateTo(addr); err != nil {
			m.logger.Printf("kprop: %v", err)
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Run pushes on the given interval until the context is cancelled — the
// periodic kick-off the administrator arranges (§6.3). A zero interval
// means DefaultInterval.
func (m *Master) Run(ctx context.Context, interval time.Duration) {
	if interval == 0 {
		interval = DefaultInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_ = m.PropagateAll()
		}
	}
}

// slaveMetrics tracks the kpropd side: installed and rejected dumps,
// bytes received, and how long an install (verify + swap) takes.
type slaveMetrics struct {
	updates        obs.Counter
	rejected       obs.Counter
	bytes          obs.Counter
	lastBytes      obs.Gauge
	installLatency obs.Histogram
}

func (m *slaveMetrics) register(reg *obs.Registry) {
	reg.RegisterCounter("kpropd_updates", &m.updates)
	reg.RegisterCounter("kpropd_rejected", &m.rejected)
	reg.RegisterCounter("kpropd_bytes", &m.bytes)
	reg.RegisterGauge("kpropd_last_bytes", &m.lastBytes)
	reg.RegisterHistogram("kpropd_install_latency", &m.installLatency)
}

// Slave is the kpropd side: it receives dumps, verifies them against the
// encrypted checksum, and swaps them into the local read-only database.
type Slave struct {
	db      *kdb.Database
	logger  *log.Logger
	metrics slaveMetrics
}

// NewSlave creates the propagation server over a slave database. The
// database is forced read-only: only propagation may modify it (§5).
func NewSlave(db *kdb.Database, logger *log.Logger, opts ...Option) *Slave {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	db.SetReadOnly(true)
	s := &Slave{db: db, logger: logger}
	if o.reg != nil {
		s.metrics.register(o.reg)
	}
	return s
}

// Updates reports how many dumps have been installed.
func (s *Slave) Updates() uint64 { return s.metrics.updates.Load() }

// Rejected reports how many dumps failed verification.
func (s *Slave) Rejected() uint64 { return s.metrics.rejected.Load() }

// handleConn processes one kprop connection.
//
//kerb:clockadapter -- connection read deadlines are wall-clock I/O timeouts
func (s *Slave) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))

	sealedSum, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	dump, err := kdc.ReadFrame(conn)
	if err != nil {
		return
	}
	if err := s.Install(sealedSum, dump); err != nil {
		s.logger.Printf("kpropd: rejected update: %v", err)
		kdc.WriteFrame(conn, []byte(err.Error()))
		return
	}
	kdc.WriteFrame(conn, []byte("OK"))
}

// Install verifies a (sealed checksum, dump) pair and swaps it into the
// database. "it is essential that only information from the master host
// be accepted by the slaves, and that tampering of data be detected,
// thus the checksum" (§5.3).
//
//kerb:clockadapter -- install latency metrics are wall-clock observability, not protocol time
func (s *Slave) Install(sealedSum, dump []byte) error {
	start := time.Now()
	err := s.install(sealedSum, dump)
	s.metrics.installLatency.Observe(time.Since(start))
	if err != nil {
		s.metrics.rejected.Inc()
		return err
	}
	s.metrics.updates.Inc()
	s.metrics.bytes.Add(uint64(len(dump)))
	s.metrics.lastBytes.Set(int64(len(dump)))
	s.logger.Printf("kpropd: installed %d bytes (%d principals)", len(dump), s.db.Len())
	return nil
}

func (s *Slave) install(sealedSum, dump []byte) error {
	sumBytes, err := des.Unseal(s.db.MasterKey(), sealedSum)
	if err != nil || len(sumBytes) != 8 {
		return errors.New("kpropd: checksum not sealed in the master database key")
	}
	want := binary.BigEndian.Uint64(sumBytes)
	if got := kdb.DumpChecksum(s.db.MasterKey(), dump); got != want {
		return fmt.Errorf("kpropd: dump checksum %x does not match master's %x", got, want)
	}
	if err := s.db.LoadDump(dump); err != nil {
		return fmt.Errorf("kpropd: installing dump: %w", err)
	}
	return nil
}

// Listener serves kpropd over TCP.
type Listener struct {
	tcp    net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Serve binds kpropd on addr.
func Serve(s *Slave, addr string) (*Listener, error) {
	tcp, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("kpropd: binding: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Listener{tcp: tcp, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := tcp.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				s.handleConn(conn)
			}()
		}
	}()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.tcp.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error {
	l.cancel()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

package kprop

// Golden wire vectors for the kprop v2 messages, recorded next to the
// other protocol vectors under internal/wire/testdata (the wiresym
// analyzer checks for them there). All inputs are fixed — des.Seal has
// no random confounder and flate is deterministic for a pinned Go
// toolchain — so the vectors pin the byte format exactly. Re-record an
// intentional protocol revision with
//
//	go test ./internal/kprop -run TestKpropGolden -update

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdb"
)

var update = flag.Bool("update", false, "rewrite wire goldens and the FuzzDelta seed corpus")

var goldenDir = filepath.Join("..", "wire", "testdata")

var goldenMasterKey = des.StringToKey("golden-master-pw", testRealm)

func goldenEntry() *kdb.Entry {
	return &kdb.Entry{
		Name:     "jis",
		Instance: "",
		EncKey: []byte{
			0x10, 0x32, 0x54, 0x76, 0x98, 0xba, 0xdc, 0xfe,
			0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
		},
		KVNO:       3,
		Expiration: t0.AddDate(4, 0, 0),
		MaxLife:    core.DefaultTGTLife,
		ModTime:    t0,
		ModBy:      "kadmin",
	}
}

func goldenChangeSet() []kdb.Change {
	return []kdb.Change{
		{Serial: 42, Op: kdb.ChangeUpsert, Entry: goldenEntry()},
		{Serial: 43, Op: kdb.ChangeDelete, Entry: &kdb.Entry{Name: "old", Instance: "priam"}},
	}
}

func goldenDeltaMsg() DeltaMsg {
	seg := kdb.EncodeChanges(goldenChangeSet())
	return DeltaMsg{
		From:      41,
		To:        43,
		SealedSum: sealSum(goldenMasterKey, seg),
		Payload:   deflate(seg),
	}
}

func goldenFullDumpMsg() FullDumpMsg {
	dump := kdb.EncodeEntriesAt([]*kdb.Entry{goldenEntry()}, kdb.DumpMeta{Serial: 43, Digest: 0x1122334455667788})
	return FullDumpMsg{
		SealedSum: sealSum(goldenMasterKey, dump),
		Payload:   deflate(dump),
	}
}

func kpropVectors() map[string][]byte {
	return map[string][]byte{
		"masterhello.golden": MasterHello{Version: wireVersion, Serial: 43, Digest: 0xfeedfacecafef00d}.Encode(),
		"slavehello.golden":  SlaveHello{Serial: 41, Digest: 0x0123456789abcdef, Principals: 5000}.Encode(),
		"deltamsg.golden":    goldenDeltaMsg().Encode(),
		"fulldumpmsg.golden": goldenFullDumpMsg().Encode(),
		"ackmsg.golden":      AckMsg{Serial: 43, OK: true}.Encode(),
	}
}

func TestKpropGoldenVectors(t *testing.T) {
	vecs := kpropVectors()
	if *update {
		for name, data := range vecs {
			if err := os.WriteFile(filepath.Join(goldenDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		writeDeltaFuzzCorpus(t, vecs)
	}
	for name, want := range vecs {
		got, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatalf("%s: %v (run with -update to record)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: encoding diverged from the recorded vector (%d vs %d bytes); "+
				"if the wire format change is intentional, re-record with -update",
				name, len(want), len(got))
		}
	}
}

// writeDeltaFuzzCorpus seeds FuzzDelta with every v2 message plus the
// raw (uncompressed) change-set encoding.
func writeDeltaFuzzCorpus(t *testing.T, vecs map[string][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzDelta")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := [][]byte{
		vecs["masterhello.golden"],
		vecs["slavehello.golden"],
		vecs["deltamsg.golden"],
		vecs["fulldumpmsg.golden"],
		vecs["ackmsg.golden"],
		kdb.EncodeChanges(goldenChangeSet()),
	}
	for i, seed := range seeds {
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKpropGoldenRoundTrip proves each recorded vector decodes to the
// original structure and re-encodes byte-identically.
func TestKpropGoldenRoundTrip(t *testing.T) {
	read := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatalf("%v (run with -update to record)", err)
		}
		return data
	}

	t.Run("masterhello", func(t *testing.T) {
		h, err := DecodeMasterHello(read("masterhello.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if h.Version != wireVersion || h.Serial != 43 || h.Digest != 0xfeedfacecafef00d {
			t.Errorf("decoded = %+v", h)
		}
		if !bytes.Equal(h.Encode(), read("masterhello.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})

	t.Run("slavehello", func(t *testing.T) {
		h, err := DecodeSlaveHello(read("slavehello.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if h.Serial != 41 || h.Digest != 0x0123456789abcdef || h.Principals != 5000 {
			t.Errorf("decoded = %+v", h)
		}
		if !bytes.Equal(h.Encode(), read("slavehello.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})

	t.Run("deltamsg", func(t *testing.T) {
		d, err := DecodeDeltaMsg(read("deltamsg.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if d.From != 41 || d.To != 43 {
			t.Errorf("decoded header = %+v", d)
		}
		seg, err := inflate(d.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := openSum(goldenMasterKey, d.SealedSum); err != nil ||
			got != kdb.DumpChecksum(goldenMasterKey, seg) {
			t.Errorf("sealed checksum does not verify: %v", err)
		}
		changes, err := kdb.DecodeChanges(seg)
		if err != nil {
			t.Fatal(err)
		}
		want := goldenChangeSet()
		if len(changes) != len(want) {
			t.Fatalf("decoded %d changes, want %d", len(changes), len(want))
		}
		for i := range want {
			if changes[i].Serial != want[i].Serial || changes[i].Op != want[i].Op ||
				changes[i].Entry.Name != want[i].Entry.Name {
				t.Errorf("change %d = %+v", i, changes[i])
			}
		}
		if changes[0].Entry.KVNO != 3 || !bytes.Equal(changes[0].Entry.EncKey, goldenEntry().EncKey) {
			t.Errorf("upsert entry body diverged: %+v", changes[0].Entry)
		}
		if !bytes.Equal(d.Encode(), read("deltamsg.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})

	t.Run("fulldumpmsg", func(t *testing.T) {
		f, err := DecodeFullDumpMsg(read("fulldumpmsg.golden"))
		if err != nil {
			t.Fatal(err)
		}
		dump, err := inflate(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := openSum(goldenMasterKey, f.SealedSum); err != nil ||
			got != kdb.DumpChecksum(goldenMasterKey, dump) {
			t.Errorf("sealed checksum does not verify: %v", err)
		}
		entries, meta, err := kdb.ParseDumpFull(dump)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Serial != 43 || meta.Digest != 0x1122334455667788 || len(entries) != 1 {
			t.Errorf("dump meta = %+v, %d entries", meta, len(entries))
		}
		if entries[0].Name != "jis" || entries[0].KVNO != 3 {
			t.Errorf("dump entry = %+v", entries[0])
		}
		if !bytes.Equal(f.Encode(), read("fulldumpmsg.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})

	t.Run("ackmsg", func(t *testing.T) {
		a, err := DecodeAckMsg(read("ackmsg.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if a.Serial != 43 || !a.OK || a.NeedFull || a.Err != "" {
			t.Errorf("decoded = %+v", a)
		}
		if !bytes.Equal(a.Encode(), read("ackmsg.golden")) {
			t.Error("re-encode is not byte-identical")
		}
	})
}

// TestWireMessageRejectsCorruption: structural validation on every
// decoder, including hostile lengths.
func TestWireMessageRejectsCorruption(t *testing.T) {
	vecs := kpropVectors()
	decoders := map[string]func([]byte) error{
		"masterhello.golden": func(b []byte) error { _, err := DecodeMasterHello(b); return err },
		"slavehello.golden":  func(b []byte) error { _, err := DecodeSlaveHello(b); return err },
		"deltamsg.golden":    func(b []byte) error { _, err := DecodeDeltaMsg(b); return err },
		"fulldumpmsg.golden": func(b []byte) error { _, err := DecodeFullDumpMsg(b); return err },
		"ackmsg.golden":      func(b []byte) error { _, err := DecodeAckMsg(b); return err },
	}
	for name, decode := range decoders {
		good := vecs[name]
		if err := decode(good); err != nil {
			t.Fatalf("%s: good vector rejected: %v", name, err)
		}
		if err := decode(nil); err == nil {
			t.Errorf("%s: empty input accepted", name)
		}
		if err := decode(good[:4]); err == nil {
			t.Errorf("%s: truncated input accepted", name)
		}
		if err := decode(append(append([]byte(nil), good...), 0x00)); err == nil {
			t.Errorf("%s: trailing garbage accepted", name)
		}
		wrongKind := append([]byte(nil), good...)
		wrongKind[4] ^= 0x40
		if err := decode(wrongKind); err == nil {
			t.Errorf("%s: wrong kind byte accepted", name)
		}
	}
	// Wrong version in an otherwise valid MasterHello.
	bad := MasterHello{Version: 9, Serial: 1, Digest: 2}.Encode()
	if _, err := DecodeMasterHello(bad); err == nil {
		t.Error("unsupported hello version accepted")
	}
	// A delta running backwards.
	d := goldenDeltaMsg()
	d.From, d.To = d.To, d.From
	if _, err := DecodeDeltaMsg(d.Encode()); err == nil {
		t.Error("backwards delta accepted")
	}
}

// TestInflateBound: a tiny hostile deflate stream that expands beyond
// MaxInflate must be refused, not buffered.
func TestInflateBound(t *testing.T) {
	huge := deflate(make([]byte, 1<<20)) // ~1 KiB compressed, 1 MiB inflated
	out, err := inflate(huge)
	if err != nil || len(out) != 1<<20 {
		t.Fatalf("legitimate payload refused: %v", err)
	}
	if _, err := inflate([]byte{0xff, 0x00, 0x01}); err == nil {
		t.Error("garbage deflate stream accepted")
	}
}

// TestDeflateRoundTrip: compression is transparent.
func TestDeflateRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 1000, 1 << 16} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 7)
		}
		out, err := inflate(deflate(data))
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("size %d: round trip failed: %v", size, err)
		}
	}
}

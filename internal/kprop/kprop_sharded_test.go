package kprop

import (
	"fmt"
	"strings"
	"testing"

	"kerberos/internal/des"
	"kerberos/internal/kdb"
)

func newShardedSlaveDB(key des.Key, shards int) *kdb.Database {
	stores := make([]kdb.Store, shards)
	for i := range stores {
		stores[i] = kdb.NewMemStore()
	}
	return kdb.NewSharded(key, stores)
}

func shardedMasterDB(t testing.TB, shards, n int) *kdb.Database {
	t.Helper()
	stores := make([]kdb.Store, shards)
	for i := range stores {
		stores[i] = kdb.NewMemStore()
	}
	db := kdb.NewSharded(des.StringToKey("master", testRealm), stores)
	for i := 0; i < n; i++ {
		uk, _ := des.NewRandomKey()
		if err := db.Add(fmt.Sprintf("user%04d", i), "", uk, 0, "register", t0); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestShardedPropagation runs the v3 wire protocol end to end: a 4-shard
// master pushes per-shard conversations (full dumps, then deltas) to a
// 4-shard slave over real sockets.
func TestShardedPropagation(t *testing.T) {
	const shards = 4
	master := shardedMasterDB(t, shards, 60)
	slaveDB := newShardedSlaveDB(master.MasterKey(), shards)
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	m := NewMaster(master, []string{l.Addr()}, nil)
	// First push: every shard needs a full dump (slave is empty).
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if slaveDB.Len() != master.Len() {
		t.Fatalf("slave has %d principals, master %d", slaveDB.Len(), master.Len())
	}
	if slaveDB.Digest() != master.Digest() {
		t.Fatal("slave digest diverges after full sync")
	}
	if got := int(slave.Updates()); got != shards {
		t.Errorf("first push: %d shard updates, want %d", got, shards)
	}
	if !slaveDB.ReadOnly() {
		t.Error("slave database became writable")
	}
	for i := 0; i < shards; i++ {
		if m.AckedShardSerial(l.Addr(), i) != master.ShardSerial(i) {
			t.Errorf("shard %d acked serial %d, master at %d",
				i, m.AckedShardSerial(l.Addr(), i), master.ShardSerial(i))
		}
	}
	if m.AckedSerial(l.Addr()) != master.Serial() {
		t.Errorf("aggregate acked %d, master serial %d", m.AckedSerial(l.Addr()), master.Serial())
	}

	// Incremental change: only touched shards ship deltas; untouched
	// shards are already current and ship nothing.
	fullsBefore := slave.Fulls()
	nk, _ := des.NewRandomKey()
	if err := master.Add("newuser", "", nk, 0, "kadmin", t0); err != nil {
		t.Fatal(err)
	}
	if err := master.Delete("user0000", ""); err != nil {
		t.Fatal(err)
	}
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if slave.Fulls() != fullsBefore {
		t.Errorf("incremental push used %d full installs", slave.Fulls()-fullsBefore)
	}
	if _, err := slaveDB.Get("newuser", ""); err != nil {
		t.Errorf("new principal missing on slave: %v", err)
	}
	if _, err := slaveDB.Get("user0000", ""); err == nil {
		t.Error("deleted principal survives on slave")
	}
	if slaveDB.Digest() != master.Digest() {
		t.Fatal("slave digest diverges after delta")
	}
}

// TestShardedFullResync: a slave whose shard has diverged (different
// history, same serial ballpark) is healed by a per-shard full dump.
func TestShardedFullResync(t *testing.T) {
	const shards = 2
	master := shardedMasterDB(t, shards, 20)
	// The slave starts with an unrelated history: every shard diverges.
	slaveDB := shardedMasterDB(t, shards, 7)
	slaveDB.SetReadOnly(true)
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	m := NewMaster(master, []string{l.Addr()}, nil)
	if err := m.PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if slaveDB.Len() != master.Len() || slaveDB.Digest() != master.Digest() {
		t.Fatalf("divergent slave not healed: len %d vs %d", slaveDB.Len(), master.Len())
	}
	if slave.Fulls() == 0 {
		t.Error("divergence healed without a full install?")
	}
}

// TestShardCountMismatchNACKed: a v3 master pushing to a slave with a
// different shard count gets a clean refusal, not a corrupted database.
func TestShardCountMismatchNACKed(t *testing.T) {
	master := shardedMasterDB(t, 4, 10)
	slaveDB := newShardedSlaveDB(master.MasterKey(), 2)
	slaveDB.SetReadOnly(true)
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	m := NewMaster(master, []string{l.Addr()}, nil)
	err = m.PropagateAll()
	if err == nil {
		t.Fatal("shard-count mismatch propagated silently")
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("mismatch error does not name the cause: %v", err)
	}
	if slaveDB.Len() != 0 && slaveDB.Len() == master.Len() {
		t.Error("mismatched slave absorbed the master's database")
	}
	if slave.Rejected() == 0 {
		t.Error("slave did not count the rejection")
	}
}

// TestShardedToFlatStaysV2: a single-shard master speaks plain v2 — the
// sharded machinery must not leak into the wire when there is one shard.
func TestShardedToFlatStaysV2(t *testing.T) {
	master := masterDB(t, 12)
	slaveDB := kdb.New(master.MasterKey())
	slave := NewSlave(slaveDB, nil)
	l, err := Serve(slave, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := NewMaster(master, []string{l.Addr()}, nil).PropagateAll(); err != nil {
		t.Fatal(err)
	}
	if slaveDB.Len() != master.Len() || slaveDB.Digest() != master.Digest() {
		t.Fatal("v2 path broken for single-shard databases")
	}
}

package testclock

import (
	"fmt"
	"testing"
	"time"
)

var epoch = time.Unix(567993600, 0).UTC()

// TestSameInstantFIFO is the regression test the sim engine depends on:
// timers scheduled for the same instant must fire in FIFO order of
// scheduling, regardless of how they interleave with other deadlines or
// in what order the heap happens to shuffle them.
func TestSameInstantFIFO(t *testing.T) {
	c := New(epoch)
	var got []int
	// Schedule out of deadline order on purpose: 40 timers across four
	// deadlines, interleaved, so same-deadline FIFO is actually tested
	// against heap reordering rather than insertion luck.
	deadlines := []time.Duration{time.Second, 3 * time.Second, time.Second, 2 * time.Second}
	for i := 0; i < 40; i++ {
		i := i
		c.AfterFunc(deadlines[i%len(deadlines)], func() { got = append(got, i) })
	}
	c.Advance(5 * time.Second)

	var want []int
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		for i := 0; i < 40; i++ {
			if deadlines[i%len(deadlines)] == d {
				want = append(want, i)
			}
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("firing order:\n got %v\nwant %v", got, want)
	}
}

// TestCallbackObservesOwnDeadline: during a fire the clock reads as the
// timer's deadline, and advances between deadlines.
func TestCallbackObservesOwnDeadline(t *testing.T) {
	c := New(epoch)
	var seen []time.Time
	for _, d := range []time.Duration{2 * time.Second, time.Second, 3 * time.Second} {
		c.AfterFunc(d, func() { seen = append(seen, c.Now()) })
	}
	c.Advance(10 * time.Second)
	want := []time.Time{epoch.Add(time.Second), epoch.Add(2 * time.Second), epoch.Add(3 * time.Second)}
	for i := range want {
		if !seen[i].Equal(want[i]) {
			t.Errorf("callback %d saw %v, want %v", i, seen[i], want[i])
		}
	}
	if now := c.Now(); !now.Equal(epoch.Add(10 * time.Second)) {
		t.Errorf("final time %v, want %v", now, epoch.Add(10*time.Second))
	}
}

// TestCallbackSchedulesWithinAdvance: a timer scheduled from inside a
// callback, due before the advance target, fires in the same Advance —
// and at the current instant it fires after already-queued timers for
// that instant (it was scheduled later: FIFO).
func TestCallbackSchedulesWithinAdvance(t *testing.T) {
	c := New(epoch)
	var got []string
	c.AfterFunc(time.Second, func() {
		got = append(got, "a")
		c.AfterFunc(0, func() { got = append(got, "chained-now") })
		c.AfterFunc(time.Second, func() { got = append(got, "chained-later") })
	})
	c.AfterFunc(time.Second, func() { got = append(got, "b") })
	c.Advance(5 * time.Second)
	want := "[a b chained-now chained-later]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestSetFiresDueTimers: Set across deadlines fires them; Set to the
// same instant fires zero-delay timers; stopped timers never fire.
func TestSetFiresDueTimers(t *testing.T) {
	c := New(epoch)
	fired := map[string]bool{}
	c.AfterFunc(time.Minute, func() { fired["early"] = true })
	stop := c.AfterFunc(time.Minute, func() { fired["stopped"] = true })
	c.At(epoch.Add(time.Hour), func() { fired["late"] = true })
	if !stop.Stop(c) {
		t.Fatal("Stop on pending timer = false")
	}
	if stop.Stop(c) {
		t.Fatal("second Stop = true")
	}
	c.Set(epoch.Add(30 * time.Minute))
	if !fired["early"] || fired["stopped"] || fired["late"] {
		t.Fatalf("after partial Set: %v", fired)
	}
	if n := c.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers = %d, want 1", n)
	}
	c.Set(epoch.Add(2 * time.Hour))
	if !fired["late"] || fired["stopped"] {
		t.Fatalf("after full Set: %v", fired)
	}
}

// TestNextTimer steps like the sim engine: repeatedly query the next
// deadline and Set onto it.
func TestNextTimer(t *testing.T) {
	c := New(epoch)
	if _, ok := c.NextTimer(); ok {
		t.Fatal("NextTimer on empty clock = true")
	}
	var order []int
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func() {
		order = append(order, 2)
		c.AfterFunc(2*time.Second, func() { order = append(order, 4) })
	})
	steps := 0
	for {
		next, ok := c.NextTimer()
		if !ok {
			break
		}
		c.Set(next)
		if steps++; steps > 10 {
			t.Fatal("runaway event loop")
		}
	}
	if fmt.Sprint(order) != "[1 2 3 4]" {
		t.Fatalf("order = %v", order)
	}
	if now := c.Now(); !now.Equal(epoch.Add(4 * time.Second)) {
		t.Errorf("final time %v", now)
	}
}

// TestConcurrentNowWhileFiring: goroutines reading Now while the driver
// advances must not race (run under -race).
func TestConcurrentNowWhileFiring(t *testing.T) {
	c := New(epoch)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			_ = c.Now()
		}
		close(done)
	}()
	for i := 0; i < 100; i++ {
		c.AfterFunc(time.Duration(i)*time.Millisecond, func() {})
	}
	c.Advance(time.Second)
	<-done
}

// Package testclock provides a race-free adjustable clock for tests and
// simulations: tests advance it while server goroutines read it through
// their injected clock functions.
//
// Beyond the adjustable instant, the clock carries deterministic timers
// for discrete-event simulation (internal/sim). Timers fire when the
// clock is moved across their deadline by Set or Advance, in a fully
// deterministic order: earlier deadlines first, and timers sharing a
// deadline in FIFO order of scheduling. That tie-break is load-bearing —
// an event engine that schedules "login" then "renewal" at the same
// instant must observe them in that order on every run, or simulated
// traces stop being reproducible.
package testclock

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is an adjustable time source safe for concurrent use. Reading
// (Now) is a single atomic load and may happen from any goroutine;
// moving the clock (Set, Advance) fires due timers synchronously and is
// meant to be driven from one goroutine — the test body or the event
// engine — as in any discrete-event system.
type Clock struct {
	ns atomic.Int64

	mu     sync.Mutex
	timers timerHeap
	seq    uint64 // scheduling order; the FIFO tie-break at equal deadlines
}

// New creates a clock set to t.
func New(t time.Time) *Clock {
	c := &Clock{}
	c.ns.Store(t.UnixNano())
	return c
}

// Now returns the current simulated time; pass c.Now as a clock func.
func (c *Clock) Now() time.Time {
	return time.Unix(0, c.ns.Load()).UTC()
}

// Set jumps the clock to t, firing every pending timer with a deadline
// at or before t (in deadline order, FIFO within a deadline). While a
// timer fires the clock reads as that timer's deadline, so callbacks
// observe the instant they were scheduled for.
func (c *Clock) Set(t time.Time) {
	c.advanceTo(t.UnixNano())
}

// Advance moves the clock forward by d and returns the new time, firing
// due timers exactly as Set does.
func (c *Clock) Advance(d time.Duration) time.Time {
	return c.advanceTo(c.ns.Load() + int64(d))
}

// Timer is a pending callback scheduled on a Clock.
type Timer struct {
	when    int64
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
	index   int // heap position; -1 once popped
}

// Stop cancels the timer. It reports whether the stop prevented the
// timer from firing (false if it already fired or was stopped).
func (t *Timer) Stop(c *Clock) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	return true
}

// AfterFunc schedules fn to run when the clock has advanced by d.
// Non-positive d schedules for the current instant: the timer fires on
// the next Set or Advance (including a Set to the same time), after any
// earlier-scheduled timers at that instant.
func (c *Clock) AfterFunc(d time.Duration, fn func()) *Timer {
	return c.at(c.ns.Load()+int64(d), fn)
}

// At schedules fn to run when the clock reaches t.
func (c *Clock) At(t time.Time, fn func()) *Timer {
	return c.at(t.UnixNano(), fn)
}

func (c *Clock) at(when int64, fn func()) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Timer{when: when, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.timers, t)
	return t
}

// NextTimer reports the earliest pending timer deadline, if any — the
// event engine's "what happens next" query.
func (c *Clock) NextTimer() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.timers.Len() > 0 {
		if c.timers[0].stopped {
			heap.Pop(&c.timers)
			continue
		}
		return time.Unix(0, c.timers[0].when).UTC(), true
	}
	return time.Time{}, false
}

// PendingTimers returns how many unstopped timers are scheduled.
func (c *Clock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// advanceTo moves the clock to target, firing due timers one at a time.
// The lock is never held across a callback, so callbacks may schedule
// further timers; ones due at or before target fire in the same call.
func (c *Clock) advanceTo(target int64) time.Time {
	for {
		t := c.popDue(target)
		if t == nil {
			break
		}
		// The callback observes its own deadline as "now". Deadlines pop
		// in nondecreasing order, so time never runs backward here.
		if t.when > c.ns.Load() {
			c.ns.Store(t.when)
		}
		t.fn()
	}
	c.ns.Store(target)
	return time.Unix(0, target).UTC()
}

// popDue removes and returns the next unstopped timer with deadline at
// or before target, or nil.
func (c *Clock) popDue(target int64) *Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.timers.Len() > 0 {
		top := c.timers[0]
		if top.stopped {
			heap.Pop(&c.timers)
			continue
		}
		if top.when > target {
			return nil
		}
		heap.Pop(&c.timers)
		top.fired = true
		return top
	}
	return nil
}

// timerHeap orders timers by (deadline, scheduling sequence): the heap
// invariant plus the seq tie-break is exactly the deterministic firing
// order the package documents.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

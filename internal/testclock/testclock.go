// Package testclock provides a race-free adjustable clock for tests and
// simulations: tests advance it while server goroutines read it through
// their injected clock functions.
package testclock

import (
	"sync/atomic"
	"time"
)

// Clock is an adjustable time source safe for concurrent use.
type Clock struct {
	ns atomic.Int64
}

// New creates a clock set to t.
func New(t time.Time) *Clock {
	c := &Clock{}
	c.ns.Store(t.UnixNano())
	return c
}

// Now returns the current simulated time; pass c.Now as a clock func.
func (c *Clock) Now() time.Time {
	return time.Unix(0, c.ns.Load()).UTC()
}

// Set jumps the clock to t.
func (c *Clock) Set(t time.Time) {
	c.ns.Store(t.UnixNano())
}

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	return time.Unix(0, c.ns.Add(int64(d))).UTC()
}

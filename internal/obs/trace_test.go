package obs

import (
	"log"
	"strings"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		ExchangeAS:  "AS",
		ExchangeTGS: "TGS",
		AppAuth:     "APP_AUTH",
		MutualAuth:  "MUTUAL_AUTH",
		KadmOp:      "KADM_OP",
		KpropRound:  "KPROP_ROUND",
		Kind(99):    "KIND(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestEventOutcome(t *testing.T) {
	ok := Event{Kind: ExchangeAS}
	if !ok.OK() || ok.Outcome() != "ok" {
		t.Errorf("success outcome = %q", ok.Outcome())
	}
	retr := Event{Kind: ExchangeTGS, Detail: "retransmit"}
	if retr.Outcome() != "retransmit" {
		t.Errorf("retransmit outcome = %q", retr.Outcome())
	}
	bad := Event{Kind: ExchangeAS, Err: "PRINCIPAL_UNKNOWN"}
	if bad.OK() || bad.Outcome() != "error" {
		t.Errorf("failure outcome = %q", bad.Outcome())
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Kind:      ExchangeTGS,
		Duration:  3 * time.Millisecond,
		Principal: "jis@ATHENA.MIT.EDU",
		Service:   "rlogin.priam@ATHENA.MIT.EDU",
		KVNO:      2,
		Bytes:     128,
		Err:       "EXPIRED",
	}
	s := e.String()
	for _, want := range []string{"TGS", "error", "jis@", "rlogin.priam", "kvno=2", "bytes=128", "err=EXPIRED"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Kind: ExchangeAS})
	c.Emit(Event{Kind: ExchangeTGS})
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	evs := c.Events()
	if evs[0].Kind != ExchangeAS || evs[1].Kind != ExchangeTGS {
		t.Errorf("events out of order: %v", evs)
	}
	// Events returns a copy.
	evs[0].Kind = KadmOp
	if c.Events()[0].Kind != ExchangeAS {
		t.Error("Events did not copy")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset left events behind")
	}
}

func TestFuncLogMultiSinks(t *testing.T) {
	var got []Event
	fs := FuncSink(func(e Event) { got = append(got, e) })
	var b strings.Builder
	ls := LogSink{L: log.New(&b, "", 0)}
	m := MultiSink{fs, ls, nil}
	m.Emit(Event{Kind: KpropRound, Bytes: 42})
	if len(got) != 1 || got[0].Bytes != 42 {
		t.Errorf("func sink got %v", got)
	}
	if !strings.Contains(b.String(), "KPROP_ROUND") {
		t.Errorf("log sink wrote %q", b.String())
	}
	LogSink{}.Emit(Event{}) // nil logger is a no-op
}

// Package obs is the realm-wide observability layer: a stdlib-only,
// allocation-light metrics registry (counters, gauges, fixed-bucket
// latency histograms), structured per-exchange trace events, and an
// operator surface (a /metrics-style text snapshot plus pprof wiring,
// served by the admin listener in admin.go and rendered live by
// cmd/kstat).
//
// The §9 deployment claim — one realm carrying 5,000 users, 650
// workstations, and 65 servers — is only reproducible if the realm's
// behaviour under load is visible, so every server-side package (kdc,
// kprop, kadm, replay, the workload driver) reports through this one.
//
// Design constraints, in order:
//
//  1. The hot path pays almost nothing. Counter.Add, Gauge.Set, and
//     Histogram.Observe are a handful of atomic operations — no locks,
//     no allocations, no interface dispatch — so the PR 1 zero-alloc
//     AS/TGS path is preserved (guarded by AllocsPerRun in the tests).
//  2. Zero values work. A Counter, Gauge, or Histogram embedded by
//     value in another package's struct is usable without construction
//     and can be registered afterwards.
//  3. Reading is lock-free on the writers. Snapshots and quantiles are
//     computed from atomic loads; a scrape never blocks a request.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
// The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
//
//kerb:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//kerb:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, last-success
// timestamp). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//kerb:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of histogram buckets: 27 exponential
// latency bounds from 1µs to ~67s, plus one overflow bucket.
const HistBuckets = 28

// BucketBound returns the inclusive upper bound of bucket i
// (1µs << i), or a negative duration for the overflow bucket.
func BucketBound(i int) time.Duration {
	if i >= HistBuckets-1 {
		return -1 // +Inf
	}
	return time.Microsecond << uint(i)
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 1µs<<i, saturating at the overflow bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	us := uint64((d + time.Microsecond - 1) / time.Microsecond)
	if us <= 1 {
		return 0
	}
	idx := bits.Len64(us - 1)
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	return idx
}

// Histogram is a fixed-bucket latency distribution. Observation is a
// few atomic adds — no locks, no allocation — and p50/p95/p99 are
// derivable from any snapshot without stopping the writers. The zero
// value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
//
//kerb:hotpath
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns how many observations have been recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures a consistent-enough view for monitoring: buckets
// are loaded atomically one by one, so a scrape racing observations may
// be off by the requests in flight — never torn, never blocking.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNS: h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile is shorthand for Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.Snapshot()
	return s.Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	SumNS   int64
	MaxNS   int64
	Buckets [HistBuckets]uint64
}

// Mean returns the average observed duration.
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// bound of the first bucket whose cumulative count reaches q·Count.
// Observations in the overflow bucket report the recorded maximum.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	cum := uint64(0)
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			if b := BucketBound(i); b >= 0 {
				return b
			}
			return time.Duration(s.MaxNS)
		}
	}
	return time.Duration(s.MaxNS)
}

// Registry is a named collection of metrics. Registration takes a
// mutex (setup-time only); the metrics themselves are lock-free, so
// holding pre-resolved pointers keeps the request path cold-cache-free
// of the registry entirely.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]entry
}

type entry struct {
	c  *Counter
	g  *Gauge
	gf func() int64
	h  *Histogram
	sh *SizeHistogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]entry)}
}

// Counter returns the named counter, creating it on first use.
// A nil registry returns an unregistered counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok && e.c != nil {
		return e.c
	}
	c := &Counter{}
	r.entries[name] = entry{c: c}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok && e.g != nil {
		return e.g
	}
	g := &Gauge{}
	r.entries[name] = entry{g: g}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok && e.h != nil {
		return e.h
	}
	h := &Histogram{}
	r.entries[name] = entry{h: h}
	return h
}

// RegisterCounter attaches an existing counter (typically a zero-value
// field embedded in another package's struct) under name.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = entry{c: c}
}

// RegisterGauge attaches an existing gauge under name.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = entry{g: g}
}

// RegisterHistogram attaches an existing histogram under name.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = entry{h: h}
}

// GaugeFunc registers a derived gauge computed at scrape time (cache
// sizes, database length, uptime). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = entry{gf: fn}
}

// WriteText renders the /metrics snapshot: one "name value" line per
// counter and gauge; histograms expand to _count, _sum_ns, _max_ns,
// quantile (_p50_ns, _p95_ns, _p99_ns) and cumulative
// name_bucket{le_ns="bound"} lines. Names are sorted, so the output is
// diffable and trivially parseable (cmd/kstat consumes it).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	entries := make([]entry, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entries = append(entries, r.entries[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for i, name := range names {
		e := entries[i]
		switch {
		case e.c != nil:
			fmt.Fprintf(&b, "%s %d\n", name, e.c.Load())
		case e.g != nil:
			fmt.Fprintf(&b, "%s %d\n", name, e.g.Load())
		case e.gf != nil:
			fmt.Fprintf(&b, "%s %d\n", name, e.gf())
		case e.h != nil:
			writeHistogramText(&b, name, e.h.Snapshot())
		case e.sh != nil:
			writeSizeHistogramText(&b, name, e.sh.Snapshot())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogramText(b *strings.Builder, name string, s HistogramSnapshot) {
	fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
	fmt.Fprintf(b, "%s_sum_ns %d\n", name, s.SumNS)
	fmt.Fprintf(b, "%s_max_ns %d\n", name, s.MaxNS)
	fmt.Fprintf(b, "%s_p50_ns %d\n", name, s.Quantile(0.50).Nanoseconds())
	fmt.Fprintf(b, "%s_p95_ns %d\n", name, s.Quantile(0.95).Nanoseconds())
	fmt.Fprintf(b, "%s_p99_ns %d\n", name, s.Quantile(0.99).Nanoseconds())
	// Emit cumulative buckets from the first through the last nonzero
	// one, so an empty histogram costs no bucket lines and a fast one
	// does not print dozens of saturated tail buckets.
	last := -1
	for i, n := range s.Buckets {
		if n != 0 {
			last = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		if bound := BucketBound(i); bound >= 0 {
			fmt.Fprintf(b, "%s_bucket{le_ns=\"%d\"} %d\n", name, bound.Nanoseconds(), cum)
		} else {
			fmt.Fprintf(b, "%s_bucket{le_ns=\"+Inf\"} %d\n", name, cum)
		}
	}
}

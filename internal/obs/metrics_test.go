package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter // zero value usable
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(-7)
	g.Add(10)
	if got := g.Load(); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, HistBuckets - 1}, // overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's bound maps into that bucket (inclusive upper bound).
	for i := 0; i < HistBuckets-1; i++ {
		if got := bucketIndex(BucketBound(i)); got != i {
			t.Errorf("bucketIndex(BucketBound(%d)) = %d", i, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram // zero value usable
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(40 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 > 16*time.Microsecond {
		t.Errorf("p50 = %v, want <= 16µs bucket", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 32*time.Millisecond {
		t.Errorf("p99 = %v, want >= 32ms", p99)
	}
	if s.MaxNS != (40 * time.Millisecond).Nanoseconds() {
		t.Errorf("max = %d", s.MaxNS)
	}
	if mean := s.Mean(); mean < 3*time.Millisecond || mean > 6*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	// Overflow observations report the recorded max.
	var o Histogram
	o.Observe(time.Hour)
	if got := o.Quantile(0.99); got != time.Hour {
		t.Errorf("overflow quantile = %v, want 1h", got)
	}
}

func TestHistogramNegativeObservation(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNS != 0 || s.Buckets[0] != 1 {
		t.Errorf("negative observation recorded as %+v", s)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total")
	c2 := reg.Counter("x_total")
	if c1 != c2 {
		t.Error("same name returned distinct counters")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Error("same name returned distinct histograms")
	}
	if reg.Gauge("g") != reg.Gauge("g") {
		t.Error("same name returned distinct gauges")
	}
	// A nil registry hands out working, unregistered metrics.
	var nilReg *Registry
	nilReg.Counter("a").Inc()
	nilReg.Gauge("b").Set(1)
	nilReg.Histogram("c").Observe(time.Millisecond)
	if err := nilReg.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
}

func TestWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("kdc_as_requests").Add(3)
	reg.Gauge("kdc_db_principals").Set(5000)
	reg.GaugeFunc("derived", func() int64 { return 17 })
	var ext Counter
	ext.Add(9)
	reg.RegisterCounter("external_total", &ext)
	h := reg.Histogram("kdc_as_latency")
	h.Observe(3 * time.Microsecond)
	h.Observe(900 * time.Microsecond)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"kdc_as_requests 3\n",
		"kdc_db_principals 5000\n",
		"derived 17\n",
		"external_total 9\n",
		"kdc_as_latency_count 2\n",
		"kdc_as_latency_p50_ns ",
		"kdc_as_latency_p95_ns ",
		"kdc_as_latency_p99_ns ",
		`kdc_as_latency_bucket{le_ns="4000"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// Sorted output: derived < external_total < kdc_...
	if strings.Index(out, "derived") > strings.Index(out, "external_total") {
		t.Error("output not sorted")
	}
}

func TestRegisterExistingMetrics(t *testing.T) {
	reg := NewRegistry()
	var g Gauge
	g.Set(11)
	reg.RegisterGauge("g", &g)
	var h Histogram
	h.Observe(time.Microsecond)
	reg.RegisterHistogram("h", &h)
	var b strings.Builder
	reg.WriteText(&b)
	if !strings.Contains(b.String(), "g 11\n") || !strings.Contains(b.String(), "h_count 1\n") {
		t.Errorf("registered metrics missing:\n%s", b.String())
	}
	// Nil arguments are ignored rather than panicking.
	reg.RegisterCounter("nil", nil)
	reg.RegisterGauge("nil", nil)
	reg.RegisterHistogram("nil", nil)
	reg.GaugeFunc("nil", nil)
}

// TestHotPathAllocs pins the observability hot path at zero
// allocations, so instrumenting the PR 1 zero-alloc AS/TGS path does
// not regress it.
func TestHotPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	var sh SizeHistogram
	reg.RegisterSizeHistogram("sh", &sh)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(4)
		h.Observe(123 * time.Microsecond)
		sh.Observe(17)
	})
	if allocs != 0 {
		t.Errorf("hot-path metric ops allocate %v times per run, want 0", allocs)
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per || c.Load() != workers*per {
		t.Errorf("count = %d / %d", h.Count(), c.Load())
	}
	s := h.Snapshot()
	total := uint64(0)
	for _, n := range s.Buckets {
		total += n
	}
	if total != workers*per {
		t.Errorf("bucket sum = %d", total)
	}
}

// TestSizeHistogram exercises the unitless histogram: bucketing, the
// snapshot statistics, and the text rendering's le= bucket lines.
func TestSizeHistogram(t *testing.T) {
	var h SizeHistogram
	for _, n := range []int64{-3, 0, 1, 1, 2, 3, 17, 64, 5000} {
		h.Observe(n)
	}
	s := h.Snapshot()
	if s.Count != 9 {
		t.Errorf("count = %d, want 9", s.Count)
	}
	if s.Max != 5000 {
		t.Errorf("max = %d, want 5000", s.Max)
	}
	if s.Sum != 1+1+2+3+17+64+5000 {
		t.Errorf("sum = %d", s.Sum)
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %d, want 2", got)
	}
	if got := s.Quantile(1); got != 5000 {
		t.Errorf("p100 = %d, want 5000 (overflow reports max)", got)
	}
	// Bucketing: 3 lands in the le=4 bucket, 17 in le=32, 64 in le=64.
	for _, c := range []struct {
		n   int64
		idx int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {17, 5}, {64, 6}, {1024, 10}, {5000, SizeHistBuckets - 1},
	} {
		if got := sizeBucketIndex(c.n); got != c.idx {
			t.Errorf("sizeBucketIndex(%d) = %d, want %d", c.n, got, c.idx)
		}
	}
	reg := NewRegistry()
	reg.RegisterSizeHistogram("batch_size", &h)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"batch_size_count 9\n",
		"batch_size_max 5000\n",
		"batch_size_p50 2\n",
		`batch_size_bucket{le="1"} 4`,
		`batch_size_bucket{le="64"} 8`,
		`batch_size_bucket{le="+Inf"} 9`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, text)
		}
	}
}

package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// The operator surface: an opt-in HTTP listener serving the metrics
// snapshot and the Go profiling endpoints. It is deliberately separate
// from the protocol listeners — the paper's KDC answers only the
// authentication protocols on its ports; monitoring rides on an admin
// address the operator chooses (and firewalls) explicitly.

// Admin is a running admin listener.
type Admin struct {
	lis net.Listener
	srv *http.Server
}

// ServeAdmin binds the admin listener on addr and serves:
//
//	/metrics        the registry's text snapshot (what kstat polls)
//	/healthz        liveness probe ("ok")
//	/debug/pprof/   the standard Go profiling endpoints
//
// Pass "127.0.0.1:0" to pick a free port (tests); the bound address is
// available from Addr.
func ServeAdmin(addr string, reg *Registry) (*Admin, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: binding admin listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{
		lis: lis,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go a.srv.Serve(lis)
	return a, nil
}

// Addr returns the bound address, suitable for kstat's -addr flag.
func (a *Admin) Addr() string { return a.lis.Addr().String() }

// Close stops the listener and any in-flight scrapes.
func (a *Admin) Close() error { return a.srv.Close() }

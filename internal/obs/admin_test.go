package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminListener(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("as_requests").Add(7)
	reg.Histogram("as_latency").Observe(2 * time.Millisecond)

	a, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	base := "http://" + a.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{"as_requests 7\n", "as_latency_count 1\n", "as_latency_p99_ns "} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// pprof wiring: the index and a profile endpoint both answer.
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestAdminListenerBadAddr(t *testing.T) {
	if _, err := ServeAdmin("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Error("expected bind error")
	}
}

func TestAdminClose(t *testing.T) {
	a, err := ServeAdmin("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("listener still serving after Close")
	}
}

package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// SizeHistogram is the unitless sibling of Histogram: a fixed-bucket
// distribution of small counts (batch sizes, gather-window occupancy,
// queue drains) rather than durations. Buckets are powers of two from 1
// to 1024 plus an overflow bucket, matching the shapes the KDC's batch
// pipeline produces (1..64 lanes per bitsliced pass). Observation is a
// few atomic adds — no locks, no allocation — and the zero value is
// ready to use, like the other metric kinds.

// SizeHistBuckets is the number of size-histogram buckets: bounds
// 1<<i for i in 0..10, plus one overflow bucket.
const SizeHistBuckets = 12

// SizeBucketBound returns the inclusive upper bound of bucket i, or -1
// for the overflow bucket.
func SizeBucketBound(i int) int64 {
	if i >= SizeHistBuckets-1 {
		return -1 // +Inf
	}
	return 1 << uint(i)
}

// sizeBucketIndex maps a value to the smallest bucket whose bound holds
// it, saturating at the overflow bucket.
func sizeBucketIndex(n int64) int {
	if n <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(n - 1))
	if idx >= SizeHistBuckets {
		idx = SizeHistBuckets - 1
	}
	return idx
}

// SizeHistogram records a distribution of counts. The zero value is
// ready to use.
type SizeHistogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [SizeHistBuckets]atomic.Uint64
}

// Observe records one count. Negative values count as zero.
//
//kerb:hotpath
func (h *SizeHistogram) Observe(n int64) {
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sum.Add(n)
	for {
		old := h.max.Load()
		if n <= old || h.max.CompareAndSwap(old, n) {
			break
		}
	}
	h.buckets[sizeBucketIndex(n)].Add(1)
}

// Count returns how many observations have been recorded.
func (h *SizeHistogram) Count() uint64 { return h.count.Load() }

// SizeHistogramSnapshot is a point-in-time copy of a SizeHistogram.
type SizeHistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Max     int64
	Buckets [SizeHistBuckets]uint64
}

// Snapshot captures a monitoring view; like Histogram.Snapshot it loads
// buckets one by one — never torn, never blocking the writers.
func (h *SizeHistogram) Snapshot() SizeHistogramSnapshot {
	s := SizeHistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed count.
func (s *SizeHistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the
// bound of the first bucket whose cumulative count reaches q·Count.
// Observations in the overflow bucket report the recorded maximum.
func (s *SizeHistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	cum := uint64(0)
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			if b := SizeBucketBound(i); b >= 0 {
				return b
			}
			return s.Max
		}
	}
	return s.Max
}

// RegisterSizeHistogram attaches an existing size histogram (typically a
// zero-value field embedded in another package's struct) under name.
func (r *Registry) RegisterSizeHistogram(name string, h *SizeHistogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = entry{sh: h}
}

// writeSizeHistogramText renders a size histogram in the /metrics text
// format: _count/_sum/_max/_p50/_p99 scalars plus cumulative
// name_bucket{le="bound"} lines — the unitless analogue of the duration
// histogram's le_ns buckets, distinguished by the label name so
// cmd/kstat can render each kind appropriately.
func writeSizeHistogramText(b *strings.Builder, name string, s SizeHistogramSnapshot) {
	fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
	fmt.Fprintf(b, "%s_sum %d\n", name, s.Sum)
	fmt.Fprintf(b, "%s_max %d\n", name, s.Max)
	fmt.Fprintf(b, "%s_p50 %d\n", name, s.Quantile(0.50))
	fmt.Fprintf(b, "%s_p99 %d\n", name, s.Quantile(0.99))
	last := -1
	for i, n := range s.Buckets {
		if n != 0 {
			last = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		if bound := SizeBucketBound(i); bound >= 0 {
			fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
		} else {
			fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		}
	}
}

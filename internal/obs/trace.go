package obs

import (
	"fmt"
	"log"
	"sync"
	"time"
)

// Per-exchange tracing. Every protocol exchange a server completes —
// an AS or TGS exchange, a service-side application authentication
// (with or without the Figure 7 mutual-auth proof), a KDBM admin
// operation, a kprop propagation round — can emit one structured Event
// through a pluggable Sink. Tests assert on exact event sequences
// (the Figure 9 trace), operators feed them to a log.
//
// Emission is strictly opt-in: a server holding a nil Sink builds no
// event and renders no strings, so the traced and untraced hot paths
// differ only by one nil check.

// Kind identifies which protocol exchange an Event describes.
type Kind uint8

// Event kinds, one per exchange the paper describes.
const (
	ExchangeAS  Kind = iota + 1 // initial ticket exchange (Figure 5)
	ExchangeTGS                 // ticket-granting exchange (Figure 8)
	AppAuth                     // service-side krb_rd_req (Figure 6)
	MutualAuth                  // application auth with the Figure 7 proof
	KadmOp                      // one KDBM administration operation (Figure 12)
	KpropRound                  // one database propagation round (Figure 13)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ExchangeAS:
		return "AS"
	case ExchangeTGS:
		return "TGS"
	case AppAuth:
		return "APP_AUTH"
	case MutualAuth:
		return "MUTUAL_AUTH"
	case KadmOp:
		return "KADM_OP"
	case KpropRound:
		return "KPROP_ROUND"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Event is one completed exchange: who asked, what for, under which
// key version, how long it took, and how it ended.
type Event struct {
	Kind      Kind
	Time      time.Time     // when the exchange started
	Duration  time.Duration // how long the server spent on it
	Principal string        // requesting principal ("" if never identified)
	Service   string        // target service, admin op, or peer address
	KVNO      uint8         // key version the reply/ticket is bound to
	Bytes     int           // payload size where meaningful (kprop dumps)
	Err       string        // "" on success, else the protocol error
	Detail    string        // qualifier, e.g. "retransmit" for memoized TGS replies
}

// OK reports whether the exchange succeeded.
func (e Event) OK() bool { return e.Err == "" }

// Outcome renders the success/failure disposition.
func (e Event) Outcome() string {
	if e.Err == "" {
		if e.Detail != "" {
			return e.Detail
		}
		return "ok"
	}
	return "error"
}

// String renders the event on one line for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s", e.Kind, e.Outcome())
	if e.Principal != "" {
		s += " principal=" + e.Principal
	}
	if e.Service != "" {
		s += " service=" + e.Service
	}
	if e.KVNO != 0 {
		s += fmt.Sprintf(" kvno=%d", e.KVNO)
	}
	if e.Bytes != 0 {
		s += fmt.Sprintf(" bytes=%d", e.Bytes)
	}
	s += fmt.Sprintf(" dur=%v", e.Duration)
	if e.Err != "" {
		s += " err=" + e.Err
	}
	return s
}

// Sink receives trace events. Implementations must be safe for
// concurrent use; Emit is called from request goroutines and must not
// block for long.
type Sink interface {
	Emit(Event)
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Event)

// Emit calls the function.
func (f FuncSink) Emit(e Event) { f(e) }

// Collector is a test Sink that records every event in order.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends the event.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len reports how many events have been collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards all collected events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// LogSink writes each event as one line to a standard logger.
type LogSink struct{ L *log.Logger }

// Emit logs the event.
func (s LogSink) Emit(e Event) {
	if s.L != nil {
		s.L.Printf("trace: %s", e)
	}
}

// MultiSink fans one event out to several sinks.
type MultiSink []Sink

// Emit forwards to every sink in order.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}

// Package nfs reproduces the appendix of the paper: Sun's Network File
// System modified for the Athena environment, where "NFS servers must
// accept credentials from a workstation if and only if the credentials
// indicate the UID of the workstation's user, and no other."
//
// The package implements all three designs the appendix discusses:
//
//   - the unmodified, trusted-workstation NFS (full masquerade possible),
//   - the rejected design that attaches a full Kerberos authentication
//     to every NFS operation (benchmarked as the paper's envelope
//     calculation), and
//   - the hybrid the authors shipped: a kernel-resident map from
//     <CLIENT-IP-ADDRESS, UID-ON-CLIENT> to a server credential,
//     installed at mount time by a Kerberos-moderated exchange with the
//     mount daemon.
package nfs

import (
	"sync"
	"sync/atomic"

	"kerberos/internal/core"
	"kerberos/internal/vfs"
)

// MapKey is the tuple the kernel maps: "<CLIENT-IP-ADDRESS,
// UID-ON-CLIENT> ... The CLIENT-IP-ADDRESS is extracted from the NFS
// request packet and the UID-ON-CLIENT is extracted from the credential
// supplied by the client system. Note: all information in the
// client-generated credential except the UID-ON-CLIENT is discarded."
type MapKey struct {
	Addr core.Addr
	UID  uint32
}

// CredMap is the kernel-resident mapping table, manipulated through the
// operations of the new system call the appendix describes: add, delete,
// flush-by-server-UID, and flush-by-client-address. It is consulted on
// every NFS transaction, so lookups are cheap (one mutex, one map read).
type CredMap struct {
	mu sync.RWMutex
	m  map[MapKey]vfs.Cred

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewCredMap returns an empty mapping table.
func NewCredMap() *CredMap {
	return &CredMap{m: make(map[MapKey]vfs.Cred)}
}

// Add installs (or replaces) a mapping — mount time.
func (c *CredMap) Add(key MapKey, cred vfs.Cred) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := cred
	cp.GIDs = append([]uint32(nil), cred.GIDs...)
	c.m[key] = cp
}

// Delete removes one mapping — unmount time.
func (c *CredMap) Delete(key MapKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, key)
}

// FlushUID removes every mapping that maps to the given server UID —
// log-out time cleanup: "the ability to flush all entries that map to a
// specific UID on the server system."
func (c *CredMap) FlushUID(serverUID uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, cred := range c.m {
		if cred.UID == serverUID {
			delete(c.m, k)
			n++
		}
	}
	return n
}

// FlushAddr removes every mapping from a client address — making a
// public workstation safe "before the workstation is made available for
// the next user."
func (c *CredMap) FlushAddr(addr core.Addr) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k := range c.m {
		if k.Addr == addr {
			delete(c.m, k)
			n++
		}
	}
	return n
}

// Lookup resolves a request tuple to the server credential, performed
// "in the server's kernel on each NFS transaction."
func (c *CredMap) Lookup(key MapKey) (vfs.Cred, bool) {
	c.mu.RLock()
	cred, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		cp := cred
		cp.GIDs = append([]uint32(nil), cred.GIDs...)
		return cp, true
	}
	c.misses.Add(1)
	return vfs.Cred{}, false
}

// Len reports the number of live mappings.
func (c *CredMap) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats reports lookup hit/miss counters.
func (c *CredMap) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

package nfs

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kdc"
	"kerberos/internal/vfs"
)

// AuthMode selects how the server derives the effective credential for
// each file operation — the three designs the appendix weighs.
type AuthMode int

const (
	// ModeTrusted is unmodified NFS between trusted systems: the
	// client-supplied credential is believed outright. "it is possible
	// from a trusted workstation to masquerade as any valid user of the
	// file service system."
	ModeTrusted AuthMode = iota
	// ModePerOpKerberos attaches a full Kerberos authentication to every
	// NFS operation — the design the authors rejected: "a significant
	// performance penalty would be paid if this solution were adopted.
	// Credentials are exchanged on every NFS operation including all
	// disk read and write activities."
	ModePerOpKerberos
	// ModeMapped is the shipped hybrid: the kernel maps
	// <CLIENT-IP-ADDRESS, UID-ON-CLIENT> to a server credential; the
	// mapping is installed at mount time by a Kerberos-moderated
	// exchange with the mount daemon.
	ModeMapped
)

// String names the mode.
func (m AuthMode) String() string {
	switch m {
	case ModeTrusted:
		return "trusted"
	case ModePerOpKerberos:
		return "per-op-kerberos"
	case ModeMapped:
		return "mapped"
	default:
		return "unknown"
	}
}

// Account is a row of the mount daemon's account file: "This username is
// then looked up in a special file to yield the user's UID and GIDs
// list. For efficiency, this file is a ndbm database file with the
// username as the key."
type Account struct {
	Username string
	Cred     vfs.Cred
}

// Stats counts server decisions, for the appendix experiments.
type Stats struct {
	Ops          atomic.Uint64
	NobodyServed atomic.Uint64
	Denied       atomic.Uint64
	MapsAdded    atomic.Uint64
}

// Server is the modified NFS file server plus its mount daemon.
type Server struct {
	realm    string
	fs       *vfs.FS
	mode     AuthMode
	friendly bool // unmapped → nobody (friendly) vs access error (unfriendly)

	cmap     *CredMap
	accounts map[string]vfs.Cred
	svc      *client.Service // verifies AP requests (mountd, per-op mode)
	logger   *log.Logger
	stats    Stats
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// ServerConfig assembles a Server.
type ServerConfig struct {
	Realm     string           // local Kerberos realm
	FS        *vfs.FS          // exported filesystem
	Mode      AuthMode         // authentication design
	Friendly  bool             // friendly (nobody) vs unfriendly (error) for unmapped requests
	Principal core.Principal   // service identity, e.g. nfs.fileserver@REALM
	Keytab    *client.Srvtab   // holds the service key
	Accounts  []Account        // local account database
	Logger    *log.Logger      // optional
	Clock     func() time.Time // optional; fake clocks in tests
}

// NewServer builds the server.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{
		realm:    cfg.Realm,
		fs:       cfg.FS,
		mode:     cfg.Mode,
		friendly: cfg.Friendly,
		cmap:     NewCredMap(),
		accounts: make(map[string]vfs.Cred),
		logger:   cfg.Logger,
	}
	if s.logger == nil {
		s.logger = log.New(discard{}, "", 0)
	}
	for _, a := range cfg.Accounts {
		cred := a.Cred
		cred.GIDs = append([]uint32(nil), a.Cred.GIDs...)
		s.accounts[a.Username] = cred
	}
	if cfg.Keytab != nil {
		s.svc = client.NewService(cfg.Principal, cfg.Keytab)
		s.svc.Clock = cfg.Clock
	}
	return s
}

// Mode returns the configured authentication design.
func (s *Server) Mode() AuthMode { return s.mode }

// Stats exposes the decision counters.
func (s *Server) Stats() *Stats { return &s.stats }

// CredMap exposes the kernel mapping table (tests, logout flushes).
func (s *Server) CredMap() *CredMap { return s.cmap }

func errResp(format string, args ...any) []byte {
	return (&Response{Err: fmt.Sprintf(format, args...)}).Encode()
}

// Handle processes one encoded request arriving from the given address.
func (s *Server) Handle(msg []byte, from core.Addr) []byte {
	req, err := DecodeRequest(msg)
	if err != nil {
		return errResp("malformed request: %v", err)
	}
	switch req.Op {
	case OpMount, OpKrbMap, OpUnmap, OpFlushUID, OpFlushAddr:
		return s.handleMountd(req, from)
	default:
		return s.handleFileOp(req, from)
	}
}

// effectiveCred derives the credential an operation runs as, per mode.
func (s *Server) effectiveCred(req *Request, from core.Addr) (vfs.Cred, []byte) {
	switch s.mode {
	case ModeTrusted:
		// Unmodified NFS: believe the packet.
		return vfs.Cred{UID: req.Cred.UID, GIDs: req.Cred.GIDs}, nil

	case ModePerOpKerberos:
		if s.svc == nil {
			return vfs.Cred{}, errResp("server has no Kerberos identity")
		}
		sess, err := s.svc.ReadRequest(req.Auth, from)
		if err != nil {
			s.stats.Denied.Add(1)
			return vfs.Cred{}, errResp("kerberos authentication failed: %v", err)
		}
		cred, ok := s.lookupAccount(sess.Client)
		if !ok {
			s.stats.Denied.Add(1)
			return vfs.Cred{}, errResp("no local account for %v", sess.Client)
		}
		return cred, nil

	case ModeMapped:
		// "The basic mapping function maps the tuple <CLIENT-IP-ADDRESS,
		// UID-ON-CLIENT> to a valid NFS credential on the server system."
		cred, ok := s.cmap.Lookup(MapKey{Addr: from, UID: req.Cred.UID})
		if ok {
			return cred, nil
		}
		if s.friendly {
			// "In our friendly configuration we default the unmappable
			// requests into the credentials for the user nobody."
			s.stats.NobodyServed.Add(1)
			return vfs.Nobody, nil
		}
		// "Unfriendly servers return an NFS access error when no valid
		// mapping can be found."
		s.stats.Denied.Add(1)
		return vfs.Cred{}, errResp("NFS access error: no credential mapping")

	default:
		return vfs.Cred{}, errResp("unknown auth mode")
	}
}

// lookupAccount converts a Kerberos principal into a local credential.
// Only principals of the local realm have accounts; the instance is not
// part of the username.
func (s *Server) lookupAccount(p core.Principal) (vfs.Cred, bool) {
	if p.Realm != s.realm || p.Instance != "" {
		return vfs.Cred{}, false
	}
	cred, ok := s.accounts[p.Name]
	if !ok {
		return vfs.Cred{}, false
	}
	cred.GIDs = append([]uint32(nil), cred.GIDs...)
	return cred, true
}

func (s *Server) handleFileOp(req *Request, from core.Addr) []byte {
	s.stats.Ops.Add(1)
	cred, errReply := s.effectiveCred(req, from)
	if errReply != nil {
		return errReply
	}
	switch req.Op {
	case OpGetAttr:
		fi, err := s.fs.Stat(req.Path, cred)
		if err != nil {
			return errResp("%v", err)
		}
		return (&Response{OK: true, Infos: []EntryInfo{infoFrom(fi)}}).Encode()
	case OpRead:
		data, err := s.fs.Read(req.Path, cred)
		if err != nil {
			return errResp("%v", err)
		}
		return (&Response{OK: true, Data: data}).Encode()
	case OpWrite:
		if err := s.fs.Write(req.Path, cred, req.Data, vfs.Mode(req.Mode)); err != nil {
			return errResp("%v", err)
		}
		return (&Response{OK: true}).Encode()
	case OpAppend:
		if err := s.fs.Append(req.Path, cred, req.Data); err != nil {
			return errResp("%v", err)
		}
		return (&Response{OK: true}).Encode()
	case OpMkdir:
		if err := s.fs.Mkdir(req.Path, cred, vfs.Mode(req.Mode)); err != nil {
			return errResp("%v", err)
		}
		return (&Response{OK: true}).Encode()
	case OpRemove:
		if err := s.fs.Remove(req.Path, cred); err != nil {
			return errResp("%v", err)
		}
		return (&Response{OK: true}).Encode()
	case OpReadDir:
		fis, err := s.fs.ReadDir(req.Path, cred)
		if err != nil {
			return errResp("%v", err)
		}
		resp := &Response{OK: true}
		for _, fi := range fis {
			resp.Infos = append(resp.Infos, infoFrom(fi))
		}
		return resp.Encode()
	default:
		return errResp("unknown operation %d", req.Op)
	}
}

// handleMountd serves the mount daemon transactions.
func (s *Server) handleMountd(req *Request, from core.Addr) []byte {
	switch req.Op {
	case OpMount:
		// Classic export check: the path must exist and be a directory.
		fi, err := s.fs.Stat(req.Path, vfs.Root)
		if err != nil || !fi.IsDir {
			return errResp("mountd: %s not exported", req.Path)
		}
		return (&Response{OK: true}).Encode()

	case OpKrbMap:
		// "as part of the mounting process, the client system provides a
		// Kerberos authenticator along with an indication of her/his
		// UID-ON-CLIENT (encrypted in the Kerberos authenticator)."
		if s.svc == nil {
			return errResp("mountd: server has no Kerberos identity")
		}
		sess, err := s.svc.ReadRequest(req.Auth, from)
		if err != nil {
			return errResp("mountd: kerberos authentication failed: %v", err)
		}
		uidOnClient := sess.Checksum // sealed inside the authenticator
		// "The server's mount daemon converts the Kerberos principal
		// name into a local username ... From this information, an NFS
		// credential is constructed and handed to the kernel as the
		// valid mapping."
		cred, ok := s.lookupAccount(sess.Client)
		if !ok {
			return errResp("mountd: no local account for %v", sess.Client)
		}
		s.cmap.Add(MapKey{Addr: from, UID: uidOnClient}, cred)
		s.stats.MapsAdded.Add(1)
		s.logger.Printf("mountd: mapped <%v,%d> -> uid %d for %v",
			from, uidOnClient, cred.UID, sess.Client)
		return (&Response{OK: true}).Encode()

	case OpUnmap:
		// "At unmount time a request is sent to the mount daemon to
		// remove the previously added mapping from the kernel."
		s.cmap.Delete(MapKey{Addr: from, UID: req.Cred.UID})
		return (&Response{OK: true}).Encode()

	case OpFlushUID:
		// "flush all entries that map to a specific UID on the server."
		n := s.cmap.FlushUID(req.Cred.UID)
		s.logger.Printf("mountd: flushed %d mappings to uid %d", n, req.Cred.UID)
		return (&Response{OK: true}).Encode()

	case OpFlushAddr:
		n := s.cmap.FlushAddr(from)
		s.logger.Printf("mountd: flushed %d mappings from %v", n, from)
		return (&Response{OK: true}).Encode()

	default:
		return errResp("unknown mountd operation")
	}
}

// Listener serves the NFS server over TCP with the shared frame codec.
type Listener struct {
	tcp    net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// Serve binds the server on addr.
func Serve(s *Server, addr string) (*Listener, error) {
	tcp, err := net.Listen("tcp4", addr)
	if err != nil {
		return nil, fmt.Errorf("nfs: binding: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := &Listener{tcp: tcp, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := tcp.Accept()
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				defer conn.Close()
				from := core.Addr{}
				if t, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
					from = core.AddrFromIP(t.IP)
				}
				for {
					msg, err := kdc.ReadFrame(conn)
					if err != nil {
						return
					}
					if err := kdc.WriteFrame(conn, s.Handle(msg, from)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.tcp.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error {
	l.cancel()
	l.tcp.Close()
	l.wg.Wait()
	return nil
}

package nfs

import (
	"strings"
	"testing"

	"kerberos/internal/core"
)

// TestPerOpReplayRejected: in the per-op design, a captured NFS request
// (with its embedded AP request) replayed from the same address is
// refused by the server's replay cache.
func TestPerOpReplayRejected(t *testing.T) {
	e := newEnv(t, ModePerOpKerberos, true)
	alice := e.krbClient(t, "alice")
	apReq, _, err := alice.MkReq(core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	req := (&Request{Op: OpGetAttr, Path: "/motd",
		Cred: Credential{UID: aliceCred.UID}, Auth: apReq}).Encode()

	first := e.server.Handle(req, loopback)
	resp, _ := DecodeResponse(first)
	if !resp.OK {
		t.Fatalf("first request failed: %s", resp.Err)
	}
	replayed := e.server.Handle(req, loopback)
	resp, _ = DecodeResponse(replayed)
	if resp.OK {
		t.Fatal("replayed per-op request served")
	}
	if !strings.Contains(resp.Err, "authentication failed") {
		t.Errorf("replay error = %q", resp.Err)
	}
}

// TestPerOpStolenRequestFromOtherHost: per-op requests captured and
// re-sent from a different address fail the ticket's address check.
func TestPerOpStolenRequestFromOtherHost(t *testing.T) {
	e := newEnv(t, ModePerOpKerberos, true)
	alice := e.krbClient(t, "alice")
	apReq, _, err := alice.MkReq(core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	req := (&Request{Op: OpGetAttr, Path: "/motd",
		Cred: Credential{UID: aliceCred.UID}, Auth: apReq}).Encode()
	resp, _ := DecodeResponse(e.server.Handle(req, core.Addr{10, 66, 66, 66}))
	if resp.OK {
		t.Fatal("stolen per-op request served from wrong host")
	}
}

// TestMountFromWrongHost: the Kerberos mapping request is bound to the
// workstation address inside the ticket; relayed mounts fail.
func TestMountFromWrongHost(t *testing.T) {
	e := newEnv(t, ModeMapped, true)
	alice := e.krbClient(t, "alice")
	apReq, _, err := alice.MkReq(core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}, 501, false)
	if err != nil {
		t.Fatal(err)
	}
	req := (&Request{Op: OpKrbMap, Auth: apReq, Cred: Credential{UID: 501}}).Encode()
	resp, _ := DecodeResponse(e.server.Handle(req, core.Addr{10, 66, 66, 66}))
	if resp.OK {
		t.Fatal("relayed mapping request accepted")
	}
	if e.server.CredMap().Len() != 0 {
		t.Error("mapping installed from wrong host")
	}
}

// TestMappingIsPerHost: a mapping installed for workstation A does not
// serve the same client UID arriving from workstation B.
func TestMappingIsPerHost(t *testing.T) {
	e := newEnv(t, ModeMapped, false) // unfriendly: misses are errors
	wsA := core.Addr{10, 1, 1, 1}
	e.server.CredMap().Add(MapKey{Addr: wsA, UID: 501}, aliceCred)

	req := (&Request{Op: OpGetAttr, Path: "/motd", Cred: Credential{UID: 501}}).Encode()
	resp, _ := DecodeResponse(e.server.Handle(req, wsA))
	if !resp.OK {
		t.Fatalf("mapped host denied: %s", resp.Err)
	}
	resp, _ = DecodeResponse(e.server.Handle(req, core.Addr{10, 2, 2, 2}))
	if resp.OK {
		t.Fatal("other host rode workstation A's mapping")
	}
}

// TestFriendlyVsUnfriendlyCounters: the two configurations differ only
// in how unmapped requests fail, and the stats show which path ran.
func TestFriendlyVsUnfriendlyCounters(t *testing.T) {
	friendly := newEnv(t, ModeMapped, true)
	req := (&Request{Op: OpGetAttr, Path: "/motd", Cred: Credential{UID: 9}}).Encode()
	resp, _ := DecodeResponse(friendly.server.Handle(req, loopback))
	if !resp.OK { // /motd is world-readable; nobody can stat it
		t.Fatalf("friendly stat failed: %s", resp.Err)
	}
	if friendly.server.Stats().NobodyServed.Load() != 1 {
		t.Error("friendly path not counted")
	}
	unfriendly := newEnv(t, ModeMapped, false)
	resp, _ = DecodeResponse(unfriendly.server.Handle(req, loopback))
	if resp.OK {
		t.Fatal("unfriendly served an unmapped request")
	}
	if unfriendly.server.Stats().Denied.Load() != 1 {
		t.Error("unfriendly denial not counted")
	}
}

// TestServerOverSocketsKeepsAddressBinding: the TCP listener extracts
// the true peer address, so loopback clients get loopback mappings.
func TestServerOverSocketsKeepsAddressBinding(t *testing.T) {
	e := newEnv(t, ModeMapped, true)
	alice := e.krbClient(t, "alice")
	nc, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Cred = Credential{UID: 501}
	nc.Krb = alice
	nc.Service = core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}
	if err := nc.Mount("/mit/alice", 501); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.server.CredMap().Lookup(MapKey{Addr: loopback, UID: 501}); !ok {
		t.Error("mapping not keyed by the socket peer address")
	}
}

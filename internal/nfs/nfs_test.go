package nfs

import (
	"strings"
	"testing"
	"time"

	kclient "kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/des"
	"kerberos/internal/kdb"
	"kerberos/internal/kdc"
	"kerberos/internal/vfs"
)

const testRealm = "ATHENA.MIT.EDU"

var (
	aliceCred = vfs.Cred{UID: 1001, GIDs: []uint32{100}}
	bobCred   = vfs.Cred{UID: 1002, GIDs: []uint32{100}}
	loopback  = core.Addr{127, 0, 0, 1}
)

// TestCredMapOps reproduces the appendix's new-system-call operations.
func TestCredMapOps(t *testing.T) {
	cm := NewCredMap()
	ws1 := core.Addr{18, 72, 0, 3}
	ws2 := core.Addr{18, 72, 0, 4}

	cm.Add(MapKey{ws1, 501}, aliceCred)
	cm.Add(MapKey{ws2, 501}, bobCred) // same client uid, different host
	cm.Add(MapKey{ws1, 502}, bobCred)
	if cm.Len() != 3 {
		t.Fatalf("len = %d", cm.Len())
	}
	got, ok := cm.Lookup(MapKey{ws1, 501})
	if !ok || got.UID != aliceCred.UID {
		t.Errorf("lookup = %+v %v", got, ok)
	}
	if _, ok := cm.Lookup(MapKey{ws1, 999}); ok {
		t.Error("phantom mapping found")
	}
	// Delete one mapping (unmount).
	cm.Delete(MapKey{ws1, 501})
	if _, ok := cm.Lookup(MapKey{ws1, 501}); ok {
		t.Error("mapping survived delete")
	}
	// Flush by server UID (logout of bob everywhere).
	if n := cm.FlushUID(bobCred.UID); n != 2 {
		t.Errorf("FlushUID removed %d", n)
	}
	if cm.Len() != 0 {
		t.Errorf("len after flush = %d", cm.Len())
	}
	// Flush by address (workstation handed to next user).
	cm.Add(MapKey{ws1, 501}, aliceCred)
	cm.Add(MapKey{ws1, 502}, bobCred)
	cm.Add(MapKey{ws2, 501}, aliceCred)
	if n := cm.FlushAddr(ws1); n != 2 {
		t.Errorf("FlushAddr removed %d", n)
	}
	if _, ok := cm.Lookup(MapKey{ws2, 501}); !ok {
		t.Error("other host's mapping lost")
	}
	hits, misses := cm.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	// Mutating a looked-up cred must not corrupt the table.
	got, _ = cm.Lookup(MapKey{ws2, 501})
	if len(got.GIDs) > 0 {
		got.GIDs[0] = 9999
	}
	again, _ := cm.Lookup(MapKey{ws2, 501})
	if len(again.GIDs) > 0 && again.GIDs[0] == 9999 {
		t.Error("lookup aliased table internals")
	}
}

func TestRequestResponseCodec(t *testing.T) {
	req := &Request{
		Op: OpWrite, Path: "/mit/alice/f", Data: []byte("hello"),
		Mode: 0o644, Cred: Credential{UID: 1001, GIDs: []uint32{100, 200}},
		Auth: []byte("ap-request"),
	}
	got, err := DecodeRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Path != req.Path || string(got.Data) != "hello" ||
		got.Mode != req.Mode || got.Cred.UID != 1001 || len(got.Cred.GIDs) != 2 ||
		string(got.Auth) != "ap-request" {
		t.Errorf("round trip: %+v", got)
	}
	resp := &Response{OK: true, Data: []byte("contents"), Infos: []EntryInfo{
		{Name: "f", Size: 8, Mode: 0o644, IsDir: false, UID: 1001, GID: 100},
		{Name: "d", IsDir: true, UID: 0, GID: 0},
	}}
	gotR, err := DecodeResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !gotR.OK || string(gotR.Data) != "contents" || len(gotR.Infos) != 2 ||
		gotR.Infos[1].Name != "d" || !gotR.Infos[1].IsDir {
		t.Errorf("response round trip: %+v", gotR)
	}
	// Truncation safety.
	enc := req.Encode()
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeRequest(enc[:n]); err == nil {
			t.Fatalf("truncated request accepted at %d", n)
		}
	}
}

// env is a live realm + file server.
type env struct {
	kdcL   *kdc.Listener
	nfsL   *Listener
	server *Server
	db     *kdb.Database
	cfg    *kclient.Config
}

func newEnv(t testing.TB, mode AuthMode, friendly bool) *env {
	t.Helper()
	e := &env{}
	e.db = kdb.New(des.StringToKey("master", testRealm))
	tgsKey, _ := des.NewRandomKey()
	if err := e.db.Add(core.TGSName, testRealm, tgsKey, 0, "kdb_init", time.Now()); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob", "stranger"} {
		key := kclient.PasswordKey(core.Principal{Name: u, Realm: testRealm}, u+"-pw")
		if err := e.db.Add(u, "", key, 0, "register", time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	nfsPrincipal := core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}
	nfsKey, _ := des.NewRandomKey()
	if err := e.db.Add("nfs", "fileserver", nfsKey, 0, "kadmin", time.Now()); err != nil {
		t.Fatal(err)
	}

	kdcSrv := kdc.New(testRealm, e.db)
	kl, err := kdc.Serve(kdcSrv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kl.Close() })
	e.kdcL = kl
	e.cfg = &kclient.Config{Realms: map[string][]string{testRealm: {kl.Addr()}}, Timeout: 2 * time.Second}

	fs := vfs.New()
	if err := fs.MkdirAll("/mit/alice", vfs.Root, 0o755); err != nil {
		t.Fatal(err)
	}
	fs.Chown("/mit/alice", vfs.Root, aliceCred.UID, 100)
	fs.Chmod("/mit/alice", vfs.Root, 0o700)
	fs.Write("/motd", vfs.Root, []byte("welcome"), 0o644)

	tab := kclient.NewSrvtab()
	tab.Set(nfsPrincipal, 1, nfsKey)
	e.server = NewServer(ServerConfig{
		Realm:     testRealm,
		FS:        fs,
		Mode:      mode,
		Friendly:  friendly,
		Principal: nfsPrincipal,
		Keytab:    tab,
		Accounts: []Account{
			{Username: "alice", Cred: aliceCred},
			{Username: "bob", Cred: bobCred},
			// "stranger" has a Kerberos principal but no local account.
		},
	})
	nl, err := Serve(e.server, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nl.Close() })
	e.nfsL = nl
	return e
}

// krbClient logs a user in and returns their Kerberos client.
func (e *env) krbClient(t testing.TB, user string) *kclient.Client {
	t.Helper()
	c := kclient.New(core.Principal{Name: user, Realm: testRealm}, e.cfg)
	c.Addr = loopback
	if _, err := c.Login(user + "-pw"); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMappedModeEndToEnd walks the whole appendix flow: kerberized
// mount, mapped operations, unmount, nobody fallback.
func TestMappedModeEndToEnd(t *testing.T) {
	e := newEnv(t, ModeMapped, true)
	alice := e.krbClient(t, "alice")

	nc, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	const uidOnClient = 501 // alice's uid on the workstation
	nc.Cred = Credential{UID: uidOnClient}
	nc.Krb = alice
	nc.Service = core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}

	// Before the mount: friendly server maps to nobody, so alice's 0700
	// home is inaccessible but the world-readable motd works.
	if _, err := nc.Read("/mit/alice/secret"); err == nil {
		t.Error("unmapped request reached a private home")
	}
	if data, err := nc.Read("/motd"); err != nil || string(data) != "welcome" {
		t.Errorf("nobody motd read: %q %v", data, err)
	}
	if e.server.Stats().NobodyServed.Load() == 0 {
		t.Error("nobody counter not bumped")
	}

	// Kerberized mount installs the mapping.
	if err := nc.Mount("/mit/alice", uidOnClient); err != nil {
		t.Fatal(err)
	}
	if e.server.CredMap().Len() != 1 {
		t.Error("mapping not installed")
	}
	// Now operations run as alice's server credential.
	if err := nc.Write("/mit/alice/thesis.tex", []byte("ch1"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := nc.Read("/mit/alice/thesis.tex")
	if err != nil || string(data) != "ch1" {
		t.Fatalf("read after mount: %q %v", data, err)
	}
	if err := nc.Append("/mit/alice/thesis.tex", []byte("+ch2")); err != nil {
		t.Fatal(err)
	}
	if err := nc.Mkdir("/mit/alice/src", 0o755); err != nil {
		t.Fatal(err)
	}
	infos, err := nc.ReadDir("/mit/alice")
	if err != nil || len(infos) != 2 {
		t.Fatalf("readdir: %v %v", infos, err)
	}
	fi, err := nc.GetAttr("/mit/alice/thesis.tex")
	if err != nil || fi.UID != aliceCred.UID || fi.Size != 7 {
		t.Fatalf("getattr: %+v %v", fi, err)
	}
	if err := nc.Remove("/mit/alice/src"); err != nil {
		t.Fatal(err)
	}

	// Unmount removes the mapping; the same requests fall back to nobody.
	if err := nc.Unmount(uidOnClient); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Read("/mit/alice/thesis.tex"); err == nil {
		t.Error("mapping survived unmount")
	}
}

// TestMappedDiscardsClientGIDs: "all information in the client-generated
// credential except the UID-ON-CLIENT is discarded" — claiming root's
// groups gains nothing once mapped.
func TestMappedDiscardsClientGIDs(t *testing.T) {
	e := newEnv(t, ModeMapped, true)
	alice := e.krbClient(t, "alice")
	nc, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Cred = Credential{UID: 501, GIDs: []uint32{0}} // claims wheel!
	nc.Krb = alice
	nc.Service = core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}
	if err := nc.Mount("/mit/alice", 501); err != nil {
		t.Fatal(err)
	}
	// A root-group-only file stays out of reach: the mapping yields
	// alice's groups, not the claimed ones.
	e.server.fs.Write("/wheel-only", vfs.Root, []byte("x"), 0o640)
	if _, err := nc.Read("/wheel-only"); err == nil {
		t.Error("claimed GIDs were honored in mapped mode")
	}
}

// TestUnfriendlyMode: "Unfriendly servers return an NFS access error
// when no valid mapping can be found."
func TestUnfriendlyMode(t *testing.T) {
	e := newEnv(t, ModeMapped, false)
	nc, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Cred = Credential{UID: 501}
	if _, err := nc.Read("/motd"); err == nil || !strings.Contains(err.Error(), "access error") {
		t.Errorf("unfriendly unmapped read = %v", err)
	}
	if e.server.Stats().Denied.Load() == 0 {
		t.Error("denied counter not bumped")
	}
}

// TestTrustedModeMasquerade demonstrates the vulnerability the appendix
// describes in unmodified NFS: a "trusted" workstation can claim any
// UID and read anyone's files.
func TestTrustedModeMasquerade(t *testing.T) {
	e := newEnv(t, ModeTrusted, true)
	e.server.fs.Write("/mit/alice/secret", vfs.Cred{UID: aliceCred.UID, GIDs: []uint32{100}}, []byte("grades"), 0o600)

	nc, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Mallory simply claims alice's UID; no Kerberos anywhere.
	nc.Cred = Credential{UID: aliceCred.UID, GIDs: []uint32{100}}
	data, err := nc.Read("/mit/alice/secret")
	if err != nil || string(data) != "grades" {
		t.Fatalf("trusted-mode masquerade should succeed (that's the bug): %v", err)
	}
}

// TestPerOpMode: every operation authenticated; works for account
// holders, fails without Kerberos, and replays are caught.
func TestPerOpMode(t *testing.T) {
	e := newEnv(t, ModePerOpKerberos, true)
	alice := e.krbClient(t, "alice")
	nc, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Cred = Credential{UID: 501}
	nc.Krb = alice
	nc.Service = core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}
	nc.PerOp = true

	if err := nc.Write("/mit/alice/f", []byte("data"), 0o600); err != nil {
		t.Fatal(err)
	}
	if data, err := nc.Read("/mit/alice/f"); err != nil || string(data) != "data" {
		t.Fatalf("per-op read: %q %v", data, err)
	}
	// Without per-op auth, the same server denies everything.
	raw, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Cred = Credential{UID: aliceCred.UID}
	if _, err := raw.Read("/mit/alice/f"); err == nil {
		t.Error("unauthenticated request served in per-op mode")
	}
}

// TestKrbMapDeniedForUnknownAccount: a principal with no local account
// cannot establish a mapping.
func TestKrbMapDeniedForUnknownAccount(t *testing.T) {
	e := newEnv(t, ModeMapped, true)
	stranger := e.krbClient(t, "stranger")
	nc, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Cred = Credential{UID: 777}
	nc.Krb = stranger
	nc.Service = core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}
	if err := nc.Mount("/mit/alice", 777); err == nil || !strings.Contains(err.Error(), "no local account") {
		t.Errorf("stranger mount = %v", err)
	}
	if e.server.CredMap().Len() != 0 {
		t.Error("mapping installed for stranger")
	}
}

// TestFlushAddrClearsWorkstation: before the next user sits down, all
// the previous user's mappings from that workstation vanish.
func TestFlushAddrClearsWorkstation(t *testing.T) {
	e := newEnv(t, ModeMapped, true)
	alice := e.krbClient(t, "alice")
	nc, err := Dial(e.nfsL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Cred = Credential{UID: 501}
	nc.Krb = alice
	nc.Service = core.Principal{Name: "nfs", Instance: "fileserver", Realm: testRealm}
	if err := nc.Mount("/mit/alice", 501); err != nil {
		t.Fatal(err)
	}
	if err := nc.FlushAddr(); err != nil {
		t.Fatal(err)
	}
	if e.server.CredMap().Len() != 0 {
		t.Error("mappings survived FlushAddr")
	}
}

// TestGarbageRequest: malformed frames get error responses, not crashes.
func TestGarbageRequest(t *testing.T) {
	e := newEnv(t, ModeMapped, true)
	reply := e.server.Handle([]byte{0xff, 0x01}, loopback)
	resp, err := DecodeResponse(reply)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Error("garbage request succeeded")
	}
	reply = e.server.Handle((&Request{Op: Op(99), Path: "/x"}).Encode(), loopback)
	resp, _ = DecodeResponse(reply)
	if resp.OK {
		t.Error("unknown op succeeded")
	}
}

package nfs

import (
	"kerberos/internal/vfs"
	"kerberos/internal/wire"
)

// Op is an NFS or mount-daemon operation code.
type Op uint8

// File operations (served by the NFS server proper) and mount-daemon
// transactions (served by mountd; the appendix adds "a new transaction
// type, the Kerberos authentication mapping request").
const (
	OpGetAttr Op = iota + 1
	OpRead
	OpWrite
	OpAppend
	OpMkdir
	OpRemove
	OpReadDir

	OpMount     // classic mount check
	OpKrbMap    // Kerberos authentication mapping request (appendix)
	OpUnmap     // remove the caller's mapping at unmount time
	OpFlushUID  // invalidate all mappings to a server UID (logout)
	OpFlushAddr // invalidate all mappings from the caller's address
)

// String names the operation.
func (o Op) String() string {
	names := map[Op]string{
		OpGetAttr: "getattr", OpRead: "read", OpWrite: "write",
		OpAppend: "append", OpMkdir: "mkdir", OpRemove: "remove",
		OpReadDir: "readdir", OpMount: "mount", OpKrbMap: "krb_map",
		OpUnmap: "unmap", OpFlushUID: "flush_uid", OpFlushAddr: "flush_addr",
	}
	if n, ok := names[o]; ok {
		return n
	}
	return "unknown-op"
}

// Credential is the NFS credential included in each request: claimed
// UID and GIDs. Under the hybrid design everything but the UID is
// discarded by the server.
type Credential struct {
	UID  uint32
	GIDs []uint32
}

// Request is one NFS/mountd request.
type Request struct {
	Op   Op
	Path string
	Data []byte
	Mode uint16
	Cred Credential
	// Auth carries Kerberos proof where the mode demands it: an AP
	// request on every operation in per-op mode, or on the OpKrbMap
	// mount transaction in hybrid mode.
	Auth []byte
}

// Encode renders the request.
func (r *Request) Encode() []byte {
	var w wire.Writer
	w.U8(uint8(r.Op))
	w.Str(r.Path)
	w.Bytes(r.Data)
	w.U16(r.Mode)
	w.U32(r.Cred.UID)
	w.U8(uint8(len(r.Cred.GIDs)))
	for _, g := range r.Cred.GIDs {
		w.U32(g)
	}
	w.Bytes(r.Auth)
	return w.Buf
}

// DecodeRequest parses a request.
func DecodeRequest(data []byte) (*Request, error) {
	r := wire.NewReader(data)
	req := &Request{Op: Op(r.U8()), Path: r.Str()}
	req.Data = r.BytesCopy()
	req.Mode = r.U16()
	req.Cred.UID = r.U32()
	n := int(r.U8())
	for i := 0; i < n; i++ {
		req.Cred.GIDs = append(req.Cred.GIDs, r.U32())
	}
	req.Auth = r.BytesCopy()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return req, nil
}

// EntryInfo is directory-listing metadata on the wire.
type EntryInfo struct {
	Name  string
	Size  uint32
	Mode  uint16
	IsDir bool
	UID   uint32
	GID   uint32
}

func infoFrom(fi vfs.FileInfo) EntryInfo {
	return EntryInfo{
		Name: fi.Name, Size: uint32(fi.Size), Mode: uint16(fi.Mode),
		IsDir: fi.IsDir, UID: fi.UID, GID: fi.GID,
	}
}

// Response is the server's answer.
type Response struct {
	OK    bool
	Err   string
	Data  []byte
	Infos []EntryInfo
}

// Encode renders the response.
func (r *Response) Encode() []byte {
	var w wire.Writer
	w.Bool(r.OK)
	w.Str(r.Err)
	w.Bytes(r.Data)
	w.U16(uint16(len(r.Infos)))
	for _, fi := range r.Infos {
		w.Str(fi.Name)
		w.U32(fi.Size)
		w.U16(fi.Mode)
		w.Bool(fi.IsDir)
		w.U32(fi.UID)
		w.U32(fi.GID)
	}
	return w.Buf
}

// DecodeResponse parses a response.
func DecodeResponse(data []byte) (*Response, error) {
	r := wire.NewReader(data)
	resp := &Response{OK: r.Bool(), Err: r.Str()}
	resp.Data = r.BytesCopy()
	n := int(r.U16())
	for i := 0; i < n; i++ {
		resp.Infos = append(resp.Infos, EntryInfo{
			Name: r.Str(), Size: r.U32(), Mode: r.U16(),
			IsDir: r.Bool(), UID: r.U32(), GID: r.U32(),
		})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return resp, nil
}

package nfs

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	kclient "kerberos/internal/client"
	"kerberos/internal/core"
	"kerberos/internal/kdc"
)

// Client is a workstation's view of the file server: a persistent
// connection carrying framed NFS requests, each stamped with the local
// user's claimed credential. For the Kerberized variants it also holds
// the user's Kerberos client, used once at mount time (hybrid) or on
// every operation (per-op).
type Client struct {
	mu   sync.Mutex
	conn net.Conn

	// Cred is the NFS credential placed in every request.
	Cred Credential
	// Krb authenticates mount transactions and per-op requests.
	Krb *kclient.Client
	// Service is the file server's principal (nfs.<host>@realm).
	Service core.Principal
	// PerOp makes every file operation carry a fresh AP request.
	PerOp bool

	seq atomic.Uint32
}

// Dial connects to the file server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp4", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("nfs: dialing %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := kdc.WriteFrame(c.conn, req.Encode()); err != nil {
		return nil, err
	}
	raw, err := kdc.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(raw)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, errors.New(resp.Err)
	}
	return resp, nil
}

// do runs one file operation, attaching per-op Kerberos proof when
// configured. The sequence number rides in the authenticator checksum so
// every request is distinct for the server's replay cache.
func (c *Client) do(req *Request) (*Response, error) {
	req.Cred = c.Cred
	if c.PerOp {
		if c.Krb == nil {
			return nil, errors.New("nfs: per-op mode requires a Kerberos client")
		}
		auth, _, err := c.Krb.MkReq(c.Service, c.seq.Add(1), false)
		if err != nil {
			return nil, fmt.Errorf("nfs: per-op authentication: %w", err)
		}
		req.Auth = auth
	}
	return c.roundTrip(req)
}

// Read fetches a file.
func (c *Client) Read(path string) ([]byte, error) {
	resp, err := c.do(&Request{Op: OpRead, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Write stores a file.
func (c *Client) Write(path string, data []byte, mode uint16) error {
	_, err := c.do(&Request{Op: OpWrite, Path: path, Data: data, Mode: mode})
	return err
}

// Append extends a file.
func (c *Client) Append(path string, data []byte) error {
	_, err := c.do(&Request{Op: OpAppend, Path: path, Data: data})
	return err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, mode uint16) error {
	_, err := c.do(&Request{Op: OpMkdir, Path: path, Mode: mode})
	return err
}

// Remove deletes a file or empty directory.
func (c *Client) Remove(path string) error {
	_, err := c.do(&Request{Op: OpRemove, Path: path})
	return err
}

// GetAttr stats a file.
func (c *Client) GetAttr(path string) (EntryInfo, error) {
	resp, err := c.do(&Request{Op: OpGetAttr, Path: path})
	if err != nil {
		return EntryInfo{}, err
	}
	if len(resp.Infos) != 1 {
		return EntryInfo{}, errors.New("nfs: malformed getattr response")
	}
	return resp.Infos[0], nil
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]EntryInfo, error) {
	resp, err := c.do(&Request{Op: OpReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Infos, nil
}

// Mount performs the classic export check followed by the Kerberos
// authentication mapping request of the appendix: the user proves their
// identity to the mount daemon, shipping their UID-ON-CLIENT sealed
// inside the authenticator, and the daemon installs the kernel mapping.
// Not needed in trusted or per-op modes.
func (c *Client) Mount(path string, uidOnClient uint32) error {
	if _, err := c.roundTrip(&Request{Op: OpMount, Path: path, Cred: c.Cred}); err != nil {
		return fmt.Errorf("nfs: mount check: %w", err)
	}
	if c.Krb == nil {
		return errors.New("nfs: kerberized mount requires a Kerberos client")
	}
	auth, _, err := c.Krb.MkReq(c.Service, uidOnClient, false)
	if err != nil {
		return fmt.Errorf("nfs: mount authentication: %w", err)
	}
	if _, err := c.roundTrip(&Request{Op: OpKrbMap, Auth: auth, Cred: c.Cred}); err != nil {
		return fmt.Errorf("nfs: kerberos mapping request: %w", err)
	}
	return nil
}

// Unmount removes this user's kernel mapping.
func (c *Client) Unmount(uidOnClient uint32) error {
	_, err := c.roundTrip(&Request{Op: OpUnmap, Cred: Credential{UID: uidOnClient}})
	return err
}

// FlushUID invalidates all mappings to a server UID (logout cleanup).
func (c *Client) FlushUID(serverUID uint32) error {
	_, err := c.roundTrip(&Request{Op: OpFlushUID, Cred: Credential{UID: serverUID}})
	return err
}

// FlushAddr invalidates all mappings from this workstation (handing the
// machine to the next user).
func (c *Client) FlushAddr() error {
	_, err := c.roundTrip(&Request{Op: OpFlushAddr})
	return err
}

// Package hotpath polices functions annotated //kerb:hotpath — the
// PR 1 zero-allocation AS/TGS request path, whose alloc counts are
// pinned by AllocsPerRun guards. Inside an annotated function the
// analyzer forbids the constructs that silently reintroduce
// allocations or nondeterminism:
//
//   - any fmt.* call (interface boxing and formatting state allocate),
//   - map creation (make(map...) or a map literal),
//   - function literals (closures capture and usually escape),
//   - ranging over a map (iteration order is random; if the order
//     reaches the wire or a checksum, replies become nondeterministic).
//
// Reading or writing existing map entries is fine — the replay cache
// and key caches index maps on the hot path by design.
package hotpath

import (
	"go/ast"
	"go/types"

	"kerberos/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//kerb:hotpath functions may not call fmt, build maps or closures, or range over maps",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Pkg.Directives.FuncHas(fn, "hotpath") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := analysis.Callee(info, n); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(),
					"hot-path function %s calls fmt.%s, which allocates; format off the hot path or drop the annotation", name, f.Name())
			}
			if analysis.IsBuiltin(info, n, "make") && len(n.Args) > 0 && isMapType(info, n.Args[0]) {
				pass.Reportf(n.Pos(), "hot-path function %s allocates a map with make", name)
			}
		case *ast.CompositeLit:
			if isMapType(info, n) {
				pass.Reportf(n.Pos(), "hot-path function %s allocates a map literal", name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"hot-path function %s creates a closure, which captures and typically escapes", name)
			return false // inner violations would be double-reported
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"hot-path function %s ranges over a map; iteration order is random and must not reach the wire", name)
				}
			}
		}
		return true
	})
}

// isMapType reports whether the expression's type (for a composite
// literal) or the type expression itself (for make's first argument)
// denotes a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	if t := info.TypeOf(e); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	return false
}

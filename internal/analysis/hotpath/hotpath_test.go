package hotpath_test

import (
	"path/filepath"
	"testing"

	"kerberos/internal/analysis/analysistest"
	"kerberos/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, filepath.Join("testdata", "src", "a"))
}

// Package a is the hotpath fixture.
package a

import "fmt"

func sink(...any) {}

// hot is annotated, so every forbidden construct inside it is flagged.
//
//kerb:hotpath
func hot(m map[string]int, xs []int) int {
	fmt.Println("served") // want `calls fmt\.Println`
	n := make(map[int]int) // want `allocates a map with make`
	lit := map[string]bool{"a": true} // want `allocates a map literal`
	f := func() int { return 1 } // want `creates a closure`
	total := 0
	for k := range m { // want `ranges over a map`
		total += m[k]
	}
	sink(n, lit, f)
	// Allowed on the hot path: map reads/writes and slice ranges.
	m["hit"]++
	for _, x := range xs {
		total += x
	}
	return total
}

// hotIgnored: a justified suppression for a cold error branch.
//
//kerb:hotpath
func hotIgnored(fail bool) error {
	if fail {
		return fmt.Errorf("cold error path") //kerb:ignore hotpath -- fixture: error branch never taken on the hot path
	}
	return nil
}

// --- cases that must stay silent ---

// cold is not annotated: identical constructs are fine elsewhere.
func cold(m map[string]int) {
	fmt.Println(len(m))
	n := map[string]int{}
	for k := range m {
		n[k] = m[k]
	}
	sink(n, func() {})
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// Shared syntax/type helpers for the analyzers.

// Callee resolves the function object a call invokes, or nil for
// builtins, type conversions, and indirect calls through variables.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the named function from the
// named package (path form, e.g. "bytes", "Equal").
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// IsBuiltin reports whether call invokes the named builtin (make,
// clear, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// Words splits an identifier into lower-cased words at case changes,
// underscores, and digits: "sessionKeyKVNO" -> [session key kvno],
// "monkey" -> [monkey]. Word-wise matching is what keeps "monkey" from
// matching "key".
func Words(name string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r):
			// Boundary before an upper rune, except inside an acronym
			// run ("KVNO"); an acronym ends before "Xx" (upper followed
			// by lower).
			if i > 0 && (!unicode.IsUpper(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
				flush()
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return words
}

// HasWord reports whether any word of name is in set.
func HasWord(name string, set map[string]bool) bool {
	for _, w := range Words(name) {
		if set[w] {
			return true
		}
	}
	return false
}

// IsByteMaterial reports whether t is a byte slice or byte array
// (possibly behind a named type), i.e. raw material a timing-safe
// compare could apply to.
func IsByteMaterial(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByte(u.Elem())
	case *types.Array:
		return isByte(u.Elem())
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// NamedName returns the name of t's named type (unwrapping pointers),
// or "".
func NamedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ExprName extracts the rightmost identifier of an expression —
// "m.Checksum" -> "Checksum", "key" -> "key" — or "".
func ExprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return ExprName(e.X)
	case *ast.SliceExpr:
		return ExprName(e.X)
	}
	return ""
}

// EnclosingFuncDecl returns the top-level FuncDecl containing n (Go
// function declarations do not nest; function literals inside a decl
// belong to it), or nil for package-level positions.
func EnclosingFuncDecl(file *ast.File, n ast.Node) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= n.Pos() && n.Pos() <= fd.End() {
			return fd
		}
	}
	return nil
}

package kerflow

import "go/ast"

// Dataflow is one analysis over a CFG: a lattice of facts F plus a
// transfer function over nodes. The solver owns iteration order and
// convergence; the analysis owns meaning.
//
// The lattice contract: Merge must be monotone and the fact space of
// finite height (every chain of Merge-growth stabilizes), or the
// worklist will not terminate. Merge returns the joined fact and
// whether it differs from dst; the solver re-queues a block only when
// its input actually changed. Transfer may mutate and return its
// argument — the solver clones at block boundaries.
type Dataflow[F any] interface {
	// Boundary is the fact at the entry block (forward) or exit block
	// (backward).
	Boundary() F
	// Transfer applies one node's effect to the fact.
	Transfer(n ast.Node, fact F) F
	// Merge joins src into dst, reporting whether dst changed.
	Merge(dst, src F) (F, bool)
	// Clone returns an independent copy of fact.
	Clone(fact F) F
}

// Result holds the per-block input facts of a converged analysis.
// Blocks unreachable from the boundary are absent.
type Result[F any] struct {
	CFG      *CFG
	In       map[*Block]F
	analysis Dataflow[F]
	forward  bool
}

// Forward runs d to fixpoint over cfg, facts flowing entry → exit.
func Forward[F any](cfg *CFG, d Dataflow[F]) *Result[F] {
	return solve(cfg, d, true)
}

// Backward runs d to fixpoint over cfg, facts flowing exit → entry and
// each block's nodes visited in reverse order.
func Backward[F any](cfg *CFG, d Dataflow[F]) *Result[F] {
	return solve(cfg, d, false)
}

func solve[F any](cfg *CFG, d Dataflow[F], forward bool) *Result[F] {
	boundary := cfg.Entry
	if !forward {
		boundary = cfg.Exit
	}
	in := map[*Block]F{boundary: d.Boundary()}
	work := []*Block{boundary}
	queued := map[*Block]bool{boundary: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := flowBlock(d, blk, d.Clone(in[blk]), forward)
		next := blk.Succs
		if !forward {
			next = blk.Preds
		}
		for _, s := range next {
			cur, ok := in[s]
			if !ok {
				in[s] = d.Clone(out)
			} else {
				merged, changed := d.Merge(cur, out)
				if !changed {
					continue
				}
				in[s] = merged
			}
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return &Result[F]{CFG: cfg, In: in, analysis: d, forward: forward}
}

// flowBlock pushes a fact through one block's nodes.
func flowBlock[F any](d Dataflow[F], blk *Block, fact F, forward bool) F {
	if forward {
		for _, n := range blk.Nodes {
			fact = d.Transfer(n, fact)
		}
	} else {
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			fact = d.Transfer(blk.Nodes[i], fact)
		}
	}
	return fact
}

// Walk replays the converged analysis in deterministic block order,
// calling visit with the fact in force immediately before each node
// (immediately after, for a backward analysis). This is how analyzers
// turn fixpoint facts into positioned diagnostics.
func (r *Result[F]) Walk(visit func(n ast.Node, fact F)) {
	for _, blk := range r.CFG.Blocks {
		fact, ok := r.In[blk]
		if !ok {
			continue // unreachable
		}
		fact = r.analysis.Clone(fact)
		if r.forward {
			for _, n := range blk.Nodes {
				visit(n, fact)
				fact = r.analysis.Transfer(n, fact)
			}
		} else {
			for i := len(blk.Nodes) - 1; i >= 0; i-- {
				visit(blk.Nodes[i], fact)
				fact = r.analysis.Transfer(blk.Nodes[i], fact)
			}
		}
	}
}

// ExitFact returns the converged fact entering the exit block (forward
// analyses) and whether the exit is reachable at all.
func (r *Result[F]) ExitFact() (F, bool) {
	f, ok := r.In[r.CFG.Exit]
	return f, ok
}

package kerflow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// parseFunc type-checks src (a file body) and returns the named
// function's declaration and type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package t\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	cfg := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := cfg.Check("t", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("no func %s", name)
	return nil, nil
}

// markFlow is a toy forward analysis: the fact is the set of marker
// strings passed to calls of mark("..."); merge is set union. Exit facts
// therefore name every marker that MAY have executed on some path —
// exactly the may-reach semantics the real analyzers build on.
type markFlow struct{}

type markFact map[string]bool

func (markFlow) Boundary() markFact { return markFact{} }
func (markFlow) Clone(f markFact) markFact {
	c := make(markFact, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}
func (markFlow) Merge(dst, src markFact) (markFact, bool) {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return dst, changed
}
func (markFlow) Transfer(n ast.Node, f markFact) markFact {
	for _, n := range Unwrap(n) {
		markInspect(n, f)
	}
	return f
}

func markInspect(n ast.Node, f markFact) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				f[strings.Trim(lit.Value, `"`)] = true
			}
		}
		return true
	})
}

func exitMarks(t *testing.T, src string) string {
	t.Helper()
	fd, info := parseFunc(t, "func mark(s string) {}\n"+src, "f")
	cfg := New(fd, info)
	res := Forward[markFact](cfg, markFlow{})
	fact, ok := res.ExitFact()
	if !ok {
		return "<exit unreachable>"
	}
	var keys []string
	for k := range fact {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

func TestForwardPaths(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"straightline", `func f() { mark("a"); mark("b") }`, "a b"},
		{"if-merge", `func f(c bool) {
			if c { mark("then") } else { mark("else") }
			mark("after")
		}`, "after else then"},
		{"early-return", `func f(c bool) {
			if c { mark("early"); return }
			mark("late")
		}`, "early late"},
		{"for-loop", `func f(n int) {
			for i := 0; i < n; i++ { mark("body") }
			mark("done")
		}`, "body done"},
		{"range-body-not-inlined", `func f(xs []int) {
			for range xs { mark("body") }
		}`, "body"},
		{"switch-fallthrough", `func f(n int) {
			switch n {
			case 0:
				mark("zero")
				fallthrough
			case 1:
				mark("one")
			default:
				mark("other")
			}
		}`, "one other zero"},
		{"goto", `func f(c bool) {
			if c { goto out }
			mark("mid")
		out:
			mark("out")
		}`, "mid out"},
		{"labeled-break", `func f(xs []int) {
		outer:
			for range xs {
				for {
					mark("inner")
					break outer
				}
			}
			mark("done")
		}`, "done inner"},
		{"panic-exits", `func f(c bool) {
			if c { mark("pre"); panic("boom") }
			mark("normal")
		}`, "normal pre"},
		{"select", `func f(ch chan int) {
			select {
			case <-ch:
				mark("recv")
			default:
				mark("default")
			}
			mark("after")
		}`, "after default recv"},
		{"dead-after-return", `func f() {
			mark("live")
			return
			mark("dead") //nolint
		}`, "live"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := exitMarks(t, tc.src); got != tc.want {
				t.Errorf("exit marks = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestPanicEdgeSeparatesPaths pins the property the deferwipe analyzer
// depends on: a fact set only on the panic path must not contaminate
// the straight-line exit fact of a block AFTER the panicking branch.
func TestPanicEdgeSeparatesPaths(t *testing.T) {
	src := `func f(c bool) {
		if c {
			mark("pre-panic")
			panic("boom")
		}
		mark("tail")
	}`
	fd, info := parseFunc(t, "func mark(s string) {}\n"+src, "f")
	cfg := New(fd, info)
	res := Forward[markFact](cfg, markFlow{})
	// The block holding mark("tail") must not carry "pre-panic" on
	// entry: the panic path bypassed it.
	found := false
	res.Walk(func(n ast.Node, fact markFact) {
		call, ok := nodeCallNamed(n, "mark")
		if !ok {
			return
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == `"tail"` {
			found = true
			if fact["pre-panic"] {
				t.Error(`fact "pre-panic" leaked past the panic edge into the tail block`)
			}
		}
	})
	if !found {
		t.Fatal("tail mark not visited")
	}
}

func nodeCallNamed(n ast.Node, name string) (*ast.CallExpr, bool) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return nil, false
	}
	return call, true
}

// TestBackwardLiveness exercises the backward direction with a tiny
// liveness analysis: a variable is live-in at entry iff some path reads
// it before writing it.
type liveFlow struct{ info *types.Info }

func (liveFlow) Boundary() markFact { return markFact{} }
func (l liveFlow) Clone(f markFact) markFact {
	return markFlow{}.Clone(f)
}
func (liveFlow) Merge(dst, src markFact) (markFact, bool) {
	return markFlow{}.Merge(dst, src)
}
func (l liveFlow) Transfer(n ast.Node, f markFact) markFact {
	// Backward: kill writes, then gen reads.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				delete(f, id.Name)
			}
		}
		for _, rhs := range as.Rhs {
			ast.Inspect(rhs, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if _, isVar := l.info.Uses[id].(*types.Var); isVar {
						f[id.Name] = true
					}
				}
				return true
			})
		}
		return f
	}
	for _, n := range Unwrap(n) {
		ast.Inspect(n, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if _, isVar := l.info.Uses[id].(*types.Var); isVar {
					f[id.Name] = true
				}
			}
			return true
		})
	}
	return f
}

func TestBackwardLiveness(t *testing.T) {
	src := `func f(a, b, c int) int {
		x := a
		if x > 0 {
			x = b // a's value dead here, b read
		}
		return x + c
	}`
	fd, info := parseFunc(t, src, "f")
	cfg := New(fd, info)
	lf := liveFlow{info: info}
	res := Backward[markFact](cfg, lf)
	fact, ok := res.In[cfg.Entry]
	if !ok {
		t.Fatal("entry unreachable backward")
	}
	// res.In holds the fact at the entry block's end; push it back
	// through the block's own nodes to reach the function entry.
	fact = lf.Clone(fact)
	for i := len(cfg.Entry.Nodes) - 1; i >= 0; i-- {
		fact = lf.Transfer(cfg.Entry.Nodes[i], fact)
	}
	for _, want := range []string{"a", "b", "c"} {
		if !fact[want] {
			t.Errorf("param %s should be live-in at entry", want)
		}
	}
}

func TestDeterministicBlockOrder(t *testing.T) {
	src := `func f(c bool) {
		if c { mark("a") } else { mark("b") }
		for i := 0; i < 3; i++ { mark("c") }
	}`
	var orders []string
	for i := 0; i < 5; i++ {
		fd, info := parseFunc(t, "func mark(s string) {}\n"+src, "f")
		cfg := New(fd, info)
		res := Forward[markFact](cfg, markFlow{})
		var visit []string
		res.Walk(func(n ast.Node, fact markFact) {
			visit = append(visit, fmt.Sprintf("%T", n))
		})
		orders = append(orders, strings.Join(visit, ","))
	}
	for _, o := range orders[1:] {
		if o != orders[0] {
			t.Fatalf("Walk order varies between runs:\n%s\n%s", orders[0], o)
		}
	}
}

package kerflow

import (
	"go/ast"
	"go/types"

	"kerberos/internal/analysis"
)

// The call-summary layer. A full inter-procedural analysis is out of
// scope for a lint suite that must stay fast and stdlib-only, but the
// repository's idiom leans on small same-package helpers — a wipe(b)
// here, a release() there — and a purely intra-procedural analyzer
// would either miss real bugs through them or flag their callers
// falsely. Summaries close that gap: each analyzer computes one small,
// comparable fact per function (bottom-up, to fixpoint, so helpers that
// call helpers resolve), then consults those facts at call sites.

// Decls indexes a package's function and method declarations by their
// types.Func object, the key a call site's Callee resolves to.
func Decls(pkg *analysis.Package) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	info := pkg.Info
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// Fixpoint computes a summary for every function in decls, re-running
// compute until no summary changes. compute receives a lookup for the
// current summaries of same-package callees (zero value for functions
// with no declaration — externals, interface methods); because S is
// comparable and summaries only grow toward a finite fact, iteration
// terminates.
func Fixpoint[S comparable](decls map[*types.Func]*ast.FuncDecl,
	compute func(fn *types.Func, decl *ast.FuncDecl, get func(*types.Func) S) S) map[*types.Func]S {

	sums := make(map[*types.Func]S, len(decls))
	get := func(fn *types.Func) S { return sums[fn] }
	// Deterministic order keeps diagnostics stable run to run.
	order := make([]*types.Func, 0, len(decls))
	for fn := range decls {
		order = append(order, fn)
	}
	sortFuncs(order, decls)
	for {
		changed := false
		for _, fn := range order {
			s := compute(fn, decls[fn], get)
			if s != sums[fn] {
				sums[fn] = s
				changed = true
			}
		}
		if !changed {
			return sums
		}
	}
}

// sortFuncs orders functions by source position.
func sortFuncs(fns []*types.Func, decls map[*types.Func]*ast.FuncDecl) {
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && decls[fns[j]].Pos() < decls[fns[j-1]].Pos(); j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
}

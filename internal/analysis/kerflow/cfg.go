// Package kerflow is the control-flow and dataflow layer of the kervet
// analysis framework. PR 4's analyzers are syntactic — one statement,
// one function, no notion of "on every path" — but the invariants that
// actually bite are path properties: key bytes reaching a log sink three
// calls later, a shard lock released on one error path but not another.
// kerflow supplies the three pieces a flow-sensitive analyzer needs:
//
//   - an intra-procedural CFG over go/ast (cfg.go): basic blocks with
//     edges for if/for/range/switch/select/goto and labeled
//     break/continue, explicit panic and os.Exit/log.Fatal edges to the
//     exit block, and defer statements kept in-line so analyzers can
//     model "runs at every exit";
//   - a generic worklist solver over lattice facts (solver.go), forward
//     and backward, with a replay helper that hands analyzers the fact
//     in force immediately before every node;
//   - a same-package call-summary fixpoint (summary.go), so taint and
//     lock effects track through one level of local helpers without an
//     inter-procedural engine.
//
// Block node contract: a block's Nodes slice holds ordinary statements
// and control-condition expressions in execution order. Ordinary
// statements are safe to ast.Inspect (they contain no nested control
// flow except function literals, which analyzers must skip — a FuncLit
// body is a different function with its own CFG). Range statements are
// the one exception: their loop variables and operand appear as a
// *RangeHead node so an Inspect never wanders into the loop body.
package kerflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	Fn     *ast.FuncDecl
	Blocks []*Block // in creation order; Blocks[0] == Entry, Blocks[1] == Exit
	Entry  *Block
	Exit   *Block // every return, explicit panic, and fall-off-the-end edge lands here
}

// Block is one basic block: straight-line nodes, then a branch.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.body", ... (debugging aid)
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// RangeHead stands in for the header of a range statement: the
// evaluation of the operand and the per-iteration assignment of the
// key/value variables, without the loop body.
type RangeHead struct {
	Range *ast.RangeStmt
}

func (r *RangeHead) Pos() token.Pos { return r.Range.Pos() }
func (r *RangeHead) End() token.Pos { return r.Range.X.End() }

// Parts returns the header's real AST constituents (operand, then key
// and value when present). ast.Inspect does not understand the
// synthetic RangeHead node itself; transfer functions unwrap it with
// Parts (or the Unwrap helper) before walking.
func (r *RangeHead) Parts() []ast.Node {
	parts := []ast.Node{r.Range.X}
	if r.Range.Key != nil {
		parts = append(parts, r.Range.Key)
	}
	if r.Range.Value != nil {
		parts = append(parts, r.Range.Value)
	}
	return parts
}

// Unwrap expands a block node into the real AST nodes it stands for:
// the identity for ordinary nodes, the header constituents for a
// RangeHead. Inspect-based transfer functions iterate over Unwrap(n).
func Unwrap(n ast.Node) []ast.Node {
	if rh, ok := n.(*RangeHead); ok {
		return rh.Parts()
	}
	return []ast.Node{n}
}

// New builds the CFG of fn. info is used to recognize the panic builtin
// and no-return callees (os.Exit, log.Fatal*, runtime.Goexit); it may be
// nil, in which case those constructs fall through like ordinary calls.
func New(fn *ast.FuncDecl, info *types.Info) *CFG {
	cfg := &CFG{Fn: fn}
	cfg.Entry = cfg.newBlock("entry")
	cfg.Exit = cfg.newBlock("exit")
	b := &builder{cfg: cfg, info: info, labels: map[string]*Block{}}
	b.cur = cfg.Entry
	if fn.Body != nil {
		b.stmtList(fn.Body.List)
	}
	b.jump(cfg.Exit) // falling off the end returns
	return cfg
}

func (c *CFG) newBlock(kind string) *Block {
	blk := &Block{Index: len(c.Blocks), Kind: kind}
	c.Blocks = append(c.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// builder threads the "current block" through a recursive statement
// walk. cur == nil means the walker is in dead code (after a return or
// jump); the next reachable statement starts a fresh, predecessor-less
// block so goto labels inside dead regions still resolve.
type builder struct {
	cfg    *CFG
	info   *types.Info
	cur    *Block
	frames []frame // enclosing break/continue targets, innermost last
	labels map[string]*Block
}

// frame is one enclosing breakable construct.
type frame struct {
	label      string // enclosing statement label, "" if none
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

// add appends a node to the current block, reviving a dead walker into
// an unreachable block.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.cfg.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
	}
	b.cur = nil
}

// start makes blk current, with a fall-through edge from the previous
// current block.
func (b *builder) start(blk *Block) {
	if b.cur != nil {
		edge(b.cur, blk)
	}
	b.cur = blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// label resolves (or forward-declares) a goto/label target block.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.cfg.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		blk := b.labelBlock(s.Label.Name)
		b.start(blk)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.jump(b.labelBlock(s.Label.Name))
		case token.BREAK:
			for i := len(b.frames) - 1; i >= 0; i-- {
				f := b.frames[i]
				if s.Label == nil || f.label == s.Label.Name {
					b.jump(f.breakTo)
					return
				}
			}
			b.cur = nil // break outside any frame: malformed, treat as dead
		case token.CONTINUE:
			for i := len(b.frames) - 1; i >= 0; i-- {
				f := b.frames[i]
				if f.continueTo != nil && (s.Label == nil || f.label == s.Label.Name) {
					b.jump(f.continueTo)
					return
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder, which links the clause to
			// its successor; the statement itself is a no-op here.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		done := b.cfg.newBlock("if.done")
		then := b.cfg.newBlock("if.then")
		edge(cond, then)
		b.cur = then
		b.stmt(s.Body, "")
		b.jump(done)
		if s.Else != nil {
			els := b.cfg.newBlock("if.else")
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			b.jump(done)
		} else {
			edge(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.cfg.newBlock("for.head")
		body := b.cfg.newBlock("for.body")
		done := b.cfg.newBlock("for.done")
		b.start(head)
		if s.Cond != nil {
			b.add(s.Cond)
			edge(b.cur, done)
		}
		edge(b.cur, body)
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.cfg.newBlock("for.post")
			continueTo = post
		}
		b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: continueTo})
		b.cur = body
		b.stmt(s.Body, "")
		if post != nil {
			b.start(post)
			b.add(s.Post)
		}
		b.jump(head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.RangeStmt:
		head := b.cfg.newBlock("range.head")
		body := b.cfg.newBlock("range.body")
		done := b.cfg.newBlock("range.done")
		b.start(head)
		b.add(&RangeHead{Range: s})
		edge(head, body)
		edge(head, done)
		b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: head})
		b.cur = body
		b.stmt(s.Body, "")
		b.jump(head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, len(cc.List))
			for i, e := range cc.List {
				nodes[i] = e
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.cfg.newBlock("unreachable")
			b.cur = head
		}
		done := b.cfg.newBlock("select.done")
		b.frames = append(b.frames, frame{label: label, breakTo: done})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.cfg.newBlock("select.case")
			edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.jump(done)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no default blocks until a case is ready; every
		// path still leaves through a case, so head has no edge to done.
		b.cur = done

	case *ast.ExprStmt:
		b.add(s)
		if b.isNoReturn(s.X) {
			b.jump(b.cfg.Exit)
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		b.add(s)
	}
}

// switchClauses builds the shared clause topology of value and type
// switches, including fallthrough edges.
func (b *builder) switchClauses(clauses []ast.Stmt, label string, guards func(*ast.CaseClause) []ast.Node) {
	head := b.cur
	if head == nil {
		head = b.cfg.newBlock("unreachable")
		b.cur = head
	}
	done := b.cfg.newBlock("switch.done")
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		blocks[i] = b.cfg.newBlock("switch.case")
		edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, done)
	}
	b.frames = append(b.frames, frame{label: label, breakTo: done})
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, g := range guards(cc) {
			b.add(g)
		}
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(done)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// isNoReturn reports whether the expression statement is a call that
// never returns: the panic builtin, os.Exit, runtime.Goexit, or a
// log.Fatal*/log.Panic* variant. Ordinary calls that merely may panic
// are treated as returning — modeling "anything can panic" would erase
// every path distinction the CFG exists to draw.
func (b *builder) isNoReturn(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || b.info == nil {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := b.info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, _ := b.info.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

package deferwipe_test

import (
	"testing"

	"kerberos/internal/analysis/analysistest"
	"kerberos/internal/analysis/deferwipe"
)

func TestDeferwipe(t *testing.T) {
	analysistest.Run(t, deferwipe.Analyzer, "testdata/src/a")
}

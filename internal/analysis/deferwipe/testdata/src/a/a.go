// Package a is the deferwipe fixture: path-sensitive wipe coverage.
// Every // want here is a path the syntactic keyzero rule could not
// judge; every silent case is a shape the old multi-return heuristic
// would have flagged falsely (or a known false-positive shape that must
// stay silent).
package a

import "errors"

// Key mimics des.Key.
type Key [8]byte

var errBad = errors.New("bad")

func use(...any)        {}
func fill(b []byte)     { _ = b }
func derive() Key       { var k Key; k[0] = 1; return k }
func check(k Key) error { return nil }

// earlyReturn leaks on the error path: the inline clear is only on the
// fallthrough path.
func earlyReturn(cond bool) error {
	k := derive() // want `reaches a function exit un-zeroized`
	if cond {
		return errBad // leaks k
	}
	use(k)
	clear(k[:])
	return nil
}

// panicPath leaks through the explicit panic edge.
func panicPath(err error) {
	k := derive() // want `reaches a function exit un-zeroized`
	use(k)
	if err != nil {
		panic(err) // leaks k
	}
	clear(k[:])
}

// branchMergeLeak: one arm wipes, the other does not, and the function
// has a single return — the old keyzero heuristic (inline wipe + one
// return = fine) missed exactly this.
func branchMergeLeak(cond bool) {
	k := derive() // want `reaches a function exit un-zeroized`
	if cond {
		clear(k[:])
	} else {
		use(k)
	}
}

// condDefer: the deferred wipe is only registered on one branch.
func condDefer(cond bool) error {
	k := derive() // want `reaches a function exit un-zeroized`
	if cond {
		defer clear(k[:])
		use(k)
		return nil
	}
	use(k)
	return errBad
}

// wipedThenReused: the wipe happens, but the buffer is re-exposed
// afterwards and reaches the exit hot.
func wipedThenReused() {
	k := derive() // want `reaches a function exit un-zeroized`
	use(k)
	clear(k[:])
	k = derive()
	use(k)
}

// --- shapes that must stay silent ---

// inlineBothPaths: inline wipes dominating every return. The old
// syntactic rule demanded defer here; the CFG proves it safe.
func inlineBothPaths(cond bool) int {
	var k Key
	k = derive()
	use(k)
	if cond {
		clear(k[:])
		return 1
	}
	clear(k[:])
	return 0
}

// deferred: the canonical form.
func deferred(cond bool) int {
	k := derive()
	defer clear(k[:])
	use(k)
	if cond {
		return 1
	}
	return 0
}

// deferThenReassign: a deferred wipe covers later re-assignments too —
// the defer runs at exit, after the last store.
func deferThenReassign() {
	k := derive()
	defer clear(k[:])
	use(k)
	k = derive()
	use(k)
}

// reset clears its argument but carries no wipe word in its name; the
// same-package summary layer must still recognize it.
func reset(b []byte) { clear(b) }

// viaQuietHelper: wiped through the summary-recognized helper.
func viaQuietHelper() {
	k := derive()
	use(k)
	reset(k[:])
}

// resetChain forwards to reset; summaries compose through the fixpoint.
func resetChain(b []byte) { reset(b) }

func viaChainedHelper() {
	k := derive()
	use(k)
	resetChain(k[:])
}

// deferHelper: a deferred summary-recognized helper covers every path.
func deferHelper(cond bool) int {
	k := derive()
	defer reset(k[:])
	use(k)
	if cond {
		return 1
	}
	return 0
}

// wipeLoop: the explicit zeroing loop counts as a wipe of the whole
// buffer (a zero-length buffer holds no secret, so the zero-iteration
// path is covered by construction).
func wipeLoop() {
	sessionKey := make([]byte, 8)
	fill(sessionKey)
	for i := range sessionKey {
		sessionKey[i] = 0
	}
}

// escapes: returned values are the caller's to wipe; stored values are
// the store's. deferwipe must not second-guess ownership transfer.
func escapes(cond bool) Key {
	k := derive()
	use(k)
	return k
}

// neverWiped is keyzero's finding ("not zeroized at all"), not
// deferwipe's; exactly one analyzer must own each defect. Silent HERE.
func neverWiped() {
	k := derive()
	use(k)
}

// lenOnly: len/cap reads carry no secret out; a candidate whose only
// "use" after the wipe is len() must stay silent.
func lenOnly(cond bool) error {
	k := derive()
	defer clear(k[:])
	if cond {
		return errBad
	}
	if len(k) != 8 {
		return errBad
	}
	use(k)
	return nil
}

// ignored: a justified suppression silences the finding.
func ignored(cond bool) error {
	k := derive() //kerb:ignore deferwipe -- fixture: exercising the suppression path
	if cond {
		return errBad
	}
	clear(k[:])
	return nil
}

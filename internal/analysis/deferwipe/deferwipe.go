// Package deferwipe is the flow-sensitive half of the §4.1 key-wiping
// rule: every key-material local (as identified by keyzero.Candidates)
// must be dead or wiped on EVERY path to function exit — ordinary
// returns, explicit panics, and fall-off-the-end alike.
//
// keyzero's original return-path heuristic demanded a deferred wipe
// whenever a function had more than one return statement, because a
// purely syntactic check cannot prove an inline wipe dominates every
// exit. deferwipe replaces that heuristic with the real property over
// the kerflow CFG: a candidate is "exposed" from its first non-wipe use
// onward, a wipe (clear, zero-store, wipe-word helper, a same-package
// helper that provably clears its parameter, or a zeroing loop over the
// buffer) clears the exposure, and a deferred wipe covers every exit
// reachable after the defer executes. A finding means some concrete
// path — typically an early error return or a panic branch — leaks the
// secret bytes in place.
//
// The same-package helper summaries are what keeps honestly-factored
// code silent: a helper with no wipe word in its name that does nothing
// but clear(b) still counts as a wipe at its call sites.
package deferwipe

import (
	"go/ast"
	"go/token"
	"go/types"

	"kerberos/internal/analysis"
	"kerberos/internal/analysis/kerflow"
	"kerberos/internal/analysis/keyzero"
)

var Analyzer = &analysis.Analyzer{
	Name: "deferwipe",
	Doc:  "key material must be dead or wiped on every exit path (flow-sensitive keyzero)",
	Run:  run,
}

// state bits per candidate object.
const (
	exposed    uint8 = 1 << iota // holds un-wiped secret bytes on this path
	deferWiped                   // a deferred wipe will run at this path's exit
)

func run(pass *analysis.Pass) error {
	wipes := wipeSummaries(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, wipes)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, wipes map[*types.Func]uint32) {
	info := pass.Pkg.Info
	cands := map[types.Object]*keyzero.Candidate{}
	for obj, c := range keyzero.Candidates(info, fn) {
		if !c.Escapes {
			cands[obj] = c
		}
	}
	if len(cands) == 0 {
		return
	}
	fl := &flow{
		info:      info,
		cands:     cands,
		wipes:     wipes,
		wipeLoops: wipeLoops(info, fn, cands),
	}
	cfg := kerflow.New(fn, info)
	res := kerflow.Forward[fact](cfg, fl)
	exit, ok := res.ExitFact()
	if !ok {
		return // no reachable exit (infinite loop)
	}
	// Candidates with no wipe anywhere are keyzero's finding ("not
	// zeroized at all"); deferwipe judges only whether the wipes that do
	// exist cover every path, so the two analyzers never double-report.
	everWiped := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, obj := range fl.wipeCallTargets(call) {
				everWiped[obj] = true
			}
		}
		return true
	})
	for obj, c := range cands {
		if !c.Wiped && !everWiped[obj] {
			continue
		}
		if exit[obj]&exposed != 0 {
			pass.Reportf(c.Decl.Pos(),
				"key material %q is wiped on some paths but reaches a function exit un-zeroized on another (early return or panic path); wipe it on every path or defer the wipe",
				c.Decl.Name)
		}
	}
}

// fact maps each candidate to its path state.
type fact map[types.Object]uint8

// flow is the forward dataflow: exposure is a may-property (a secret
// leaked on ANY path is a finding), so the merge is a pointwise OR of
// exposed and AND of deferWiped — a deferred wipe only counts where
// every joining path registered it.
type flow struct {
	info      *types.Info
	cands     map[types.Object]*keyzero.Candidate
	wipes     map[*types.Func]uint32
	wipeLoops map[*ast.RangeStmt]types.Object
}

func (f *flow) Boundary() fact { return fact{} }

func (f *flow) Clone(s fact) fact {
	c := make(fact, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (f *flow) Merge(dst, src fact) (fact, bool) {
	changed := false
	for obj := range f.cands {
		a, b := dst[obj], src[obj]
		merged := (a | b) & exposed
		if a&b&deferWiped != 0 {
			merged |= deferWiped
		}
		// A path whose exit is covered by a deferred wipe is not exposed.
		if merged&deferWiped != 0 {
			merged &^= exposed
		}
		if merged != a {
			dst[obj] = merged
			changed = true
		}
	}
	return dst, changed
}

func (f *flow) Transfer(n ast.Node, s fact) fact {
	switch n := n.(type) {
	case *kerflow.RangeHead:
		if obj, ok := f.wipeLoops[n.Range]; ok {
			// A zeroing loop over the buffer itself: treat the whole
			// loop as a wipe (a zero-length buffer holds no secret, so
			// the zero-iteration path is covered too).
			f.wipe(s, obj)
			return s
		}
		for _, part := range n.Parts() {
			f.scanUses(part, s)
		}
		return s
	case *ast.DeferStmt:
		if objs := f.wipeCallTargets(n.Call); objs != nil {
			for _, obj := range objs {
				if _, ok := f.cands[obj]; ok {
					s[obj] = deferWiped
				}
			}
			return s
		}
		f.scanUses(n.Call, s)
		return s
	}
	f.scanStmt(n, s)
	return s
}

// scanStmt walks an ordinary statement in syntactic order, applying
// wipes, zero-stores, and exposures.
func (f *flow) scanStmt(n ast.Node, s fact) {
	if as, ok := n.(*ast.AssignStmt); ok {
		f.assign(as, s)
		return
	}
	f.scanUses(n, s)
}

func (f *flow) assign(as *ast.AssignStmt, s fact) {
	// RHS uses first: `k2 := k` exposes both.
	for _, rhs := range as.Rhs {
		f.scanUses(rhs, s)
	}
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		lhs = ast.Unparen(lhs)
		// Whole-variable stores.
		if obj := keyzero.ResolveObj(f.info, lhs); obj != nil {
			if _, ok := f.cands[obj]; ok {
				if rhs != nil && keyzero.IsZeroComposite(rhs) {
					f.wipe(s, obj)
				} else {
					f.expose(s, obj)
				}
				continue
			}
		}
		// Element stores: k[i] = 0 wipes (the explicit zeroing loop);
		// k[i] = secret exposes.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if obj := keyzero.ResolveObj(f.info, idx.X); obj != nil {
				if _, ok := f.cands[obj]; ok {
					if rhs != nil && keyzero.IsZeroLiteral(rhs) {
						f.wipe(s, obj)
					} else {
						f.expose(s, obj)
					}
				}
			}
		}
	}
}

// scanUses marks candidates exposed by any appearance inside n, except
// appearances inside recognized wipe calls and len/cap reads, which
// carry no secret out. Function literals are skipped: they are separate
// functions (and a capture already marks the candidate as escaping in
// keyzero, removing it from scrutiny here).
func (f *flow) scanUses(n ast.Node, s fact) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if objs := f.wipeCallTargets(n); objs != nil {
				for _, obj := range objs {
					if _, ok := f.cands[obj]; ok {
						f.wipe(s, obj)
					}
				}
				return false
			}
			if analysis.IsBuiltin(f.info, n, "len") || analysis.IsBuiltin(f.info, n, "cap") {
				return false
			}
			return true
		case *ast.Ident:
			if obj := f.info.Uses[n]; obj != nil {
				if _, ok := f.cands[obj]; ok {
					f.expose(s, obj)
				}
			}
		}
		return true
	})
}

func (f *flow) wipe(s fact, obj types.Object) {
	s[obj] &^= exposed
}

func (f *flow) expose(s fact, obj types.Object) {
	if s[obj]&deferWiped == 0 {
		s[obj] |= exposed
	}
}

// wipeCallTargets resolves the objects a call zeroizes: the clear
// builtin and wipe-word helpers (keyzero.WipeTargets), plus same-package
// helpers whose summary proves they clear a parameter regardless of
// what their name says.
func (f *flow) wipeCallTargets(call *ast.CallExpr) []types.Object {
	if objs := keyzero.WipeTargets(f.info, call); objs != nil {
		return objs
	}
	callee := analysis.Callee(f.info, call)
	if callee == nil {
		return nil
	}
	mask, ok := f.wipes[callee]
	if !ok || mask == 0 {
		return nil
	}
	var objs []types.Object
	for i, arg := range call.Args {
		if i >= 32 || mask&(1<<uint(i)) == 0 {
			continue
		}
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = u.X
		}
		if obj := keyzero.ResolveObj(f.info, arg); obj != nil {
			objs = append(objs, obj)
		}
	}
	return objs
}

// wipeLoops finds range loops that are nothing but a zeroing pass over
// a candidate buffer: `for i := range k { k[i] = 0 }`.
func wipeLoops(info *types.Info, fn *ast.FuncDecl, cands map[types.Object]*keyzero.Candidate) map[*ast.RangeStmt]types.Object {
	loops := map[*ast.RangeStmt]types.Object{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		obj := keyzero.ResolveObj(info, rs.X)
		if obj == nil {
			return true
		}
		if _, isCand := cands[obj]; !isCand {
			return true
		}
		if len(rs.Body.List) != 1 {
			return true
		}
		as, ok := rs.Body.List[0].(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || !keyzero.IsZeroLiteral(as.Rhs[0]) {
			return true
		}
		idx, ok := ast.Unparen(as.Lhs[0]).(*ast.IndexExpr)
		if !ok || keyzero.ResolveObj(info, idx.X) != obj {
			return true
		}
		loops[rs] = obj
		return true
	})
	return loops
}

// wipeSummaries computes, for every same-package function, the bitmask
// of byte-material parameters the function provably clears on all exit
// paths. The proof is syntactic per function — a deferred wipe, or an
// inline wipe in a single-return body — but composes through the
// fixpoint: a helper that forwards to another wiping helper inherits
// the effect.
func wipeSummaries(pkg *analysis.Package) map[*types.Func]uint32 {
	decls := kerflow.Decls(pkg)
	info := pkg.Info
	return kerflow.Fixpoint(decls, func(fn *types.Func, decl *ast.FuncDecl, get func(*types.Func) uint32) uint32 {
		if decl.Body == nil {
			return 0
		}
		params := map[types.Object]int{}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return 0
		}
		for i := 0; i < sig.Params().Len() && i < 32; i++ {
			p := sig.Params().At(i)
			if analysis.IsByteMaterial(p.Type()) {
				params[p] = i
			}
		}
		if len(params) == 0 {
			return 0
		}
		returns := 0
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
			return true
		})
		var mask uint32
		record := func(call *ast.CallExpr, inDefer bool) {
			if !inDefer && returns > 1 {
				return
			}
			targets := keyzero.WipeTargets(info, call)
			if targets == nil {
				if callee := analysis.Callee(info, call); callee != nil {
					if sub := get(callee); sub != 0 {
						for i, arg := range call.Args {
							if i >= 32 || sub&(1<<uint(i)) == 0 {
								continue
							}
							if obj := keyzero.ResolveObj(info, arg); obj != nil {
								targets = append(targets, obj)
							}
						}
					}
				}
			}
			for _, obj := range targets {
				if i, ok := params[obj]; ok {
					mask |= 1 << uint(i)
				}
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				record(n.Call, true)
				return false
			case *ast.CallExpr:
				record(n, false)
			}
			return true
		})
		return mask
	})
}

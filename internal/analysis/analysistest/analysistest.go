// Package analysistest runs a kervet analyzer over a fixture package
// and checks its diagnostics against // want "regexp" expectation
// comments, the same contract golang.org/x/tools/go/analysis uses —
// reimplemented here against the stdlib so the analysis suite stays
// dependency-free.
//
// A fixture is an ordinary Go package under the analyzer's
// testdata/src/<name> directory. Every line that must produce a
// diagnostic carries a trailing comment of the form
//
//	bad() // want "regexp" "second regexp"
//
// with one quoted regexp per expected diagnostic on that line. Lines
// without a want comment must stay silent — which is how each
// analyzer's known-false-positive cases are pinned.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"kerberos/internal/analysis"
)

// wantRE matches one quoted expectation inside a want comment, with
// backquoted and double-quoted forms.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package rooted at dir (e.g. "testdata/src/a"),
// applies the analyzer, filters //kerb:ignore suppressions exactly as
// the kervet driver does, and reports any mismatch between diagnostics
// and // want comments as test failures.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	analysis.RegisterIgnorable(a.Name)
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/"+a.Name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	expects := collectWants(t, pkg)

	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("%s: unexpected diagnostic (no matching // want): %s", d.Pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: no diagnostic matched // want %s", e.file, e.line, e.raw)
		}
	}
}

// claim marks the first unconsumed expectation matching d, if any.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if !e.hit && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
			e.hit = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment in the fixture.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				expects = append(expects, parseWant(t, pkg.Fset, c)...)
			}
		}
	}
	return expects
}

func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil
	}
	// Only comments whose body is quoted regexps are expectations; prose
	// that happens to start with "want" is not.
	if t := strings.TrimSpace(text); t == "" || (t[0] != '"' && t[0] != '`') {
		return nil
	}
	pos := fset.Position(c.Pos())
	var expects []*expectation
	for _, q := range wantRE.FindAllString(text, -1) {
		pattern := q[1 : len(q)-1]
		if q[0] == '"' {
			var err error
			pattern, err = strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", pos, q, err)
			}
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %s: %v", pos, q, err)
		}
		expects = append(expects, &expectation{
			file: pos.Filename, line: pos.Line, re: re, raw: q,
		})
	}
	if len(expects) == 0 {
		t.Fatalf("%s: // want comment with no quoted regexps", pos)
	}
	return expects
}

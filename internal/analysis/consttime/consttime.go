// Package consttime flags comparisons of secret byte material — keys,
// keyed checksums, sealed authenticator bytes — performed with
// bytes.Equal or the == / != operators, which short-circuit on the
// first differing byte and therefore leak how much of the secret an
// attacker has matched. The paper's replay and integrity defenses
// (§2.1 safe messages, §4.3 authenticators) assume the checksum verdict
// itself is the only observable; timing must not be a second channel.
// Use crypto/subtle.ConstantTimeCompare for byte material and
// crypto/subtle.ConstantTimeEq for fixed-width keyed checksums.
package consttime

import (
	"go/ast"
	"go/token"
	"go/types"

	"kerberos/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "consttime",
	Doc:  "secret keys and keyed checksums must be compared in constant time (crypto/subtle)",
	Run:  run,
}

// secretWords are identifier words that mark a value as secret-bearing.
// Matching is word-wise ("monkey" does not match "key"; "sessionKey"
// does). "digest" is deliberately absent: the replay cache's request
// digest is a documented non-cryptographic fingerprint.
var secretWords = map[string]bool{
	"key": true, "cksum": true, "checksum": true, "mac": true,
	"secret": true, "password": true, "passwd": true,
}

// checksumWords mark integer-typed values as keyed checksums; integers
// need name evidence because most uint32s (lengths, counters, KVNOs)
// are public.
var checksumWords = map[string]bool{
	"cksum": true, "checksum": true, "mac": true,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if analysis.IsPkgFunc(info, n, "bytes", "Equal") && len(n.Args) == 2 &&
					(secretBytes(pass, n.Args[0]) || secretBytes(pass, n.Args[1])) {
					pass.Reportf(n.Pos(),
						"secret byte material compared with bytes.Equal; use crypto/subtle.ConstantTimeCompare")
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				switch {
				case secretBytes(pass, n.X) || secretBytes(pass, n.Y):
					pass.Reportf(n.Pos(),
						"secret byte material compared with %s; use crypto/subtle.ConstantTimeCompare", n.Op)
				case secretChecksum(pass, n.X) || secretChecksum(pass, n.Y):
					pass.Reportf(n.Pos(),
						"keyed checksum compared with %s; use crypto/subtle.ConstantTimeEq", n.Op)
				}
			}
			return true
		})
	}
	return nil
}

// secretBytes reports whether e is byte material carrying a secret: a
// value of a Key-named byte-array type, or a byte slice/array whose
// identifier names it as key/checksum/secret material.
func secretBytes(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.Pkg.Info.TypeOf(e)
	if t == nil || !analysis.IsByteMaterial(t) {
		return false
	}
	if analysis.HasWord(analysis.NamedName(t), secretWords) {
		return true
	}
	if _, isCall := ast.Unparen(e).(*ast.CallExpr); isCall {
		return false // a call result's name is the function, handled below
	}
	return analysis.HasWord(analysis.ExprName(e), secretWords)
}

// secretChecksum reports whether e is an integer-typed keyed checksum:
// the result of a *Checksum function (QuadChecksum, CBCChecksum), or a
// variable/field whose name words say checksum/cksum/mac.
func secretChecksum(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if fn := analysis.Callee(pass.Pkg.Info, call); fn != nil {
			return analysis.HasWord(fn.Name(), checksumWords)
		}
		return false
	}
	t := pass.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	return analysis.HasWord(analysis.ExprName(e), checksumWords)
}

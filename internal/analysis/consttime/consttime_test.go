package consttime_test

import (
	"path/filepath"
	"testing"

	"kerberos/internal/analysis/analysistest"
	"kerberos/internal/analysis/consttime"
)

func TestConsttime(t *testing.T) {
	analysistest.Run(t, consttime.Analyzer, filepath.Join("testdata", "src", "a"))
}

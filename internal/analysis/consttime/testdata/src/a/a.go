// Package a is the consttime fixture: each flagged line carries a
// want expectation; the silent lines pin known false-positive shapes.
package a

import (
	"bytes"
	"crypto/subtle"
)

// Key mimics des.Key: a named byte array whose name marks it secret.
type Key [8]byte

func use(...any) {}

// QuadChecksum mimics the keyed checksum helpers.
func QuadChecksum(key Key, data []byte) uint32 { return uint32(len(data)) ^ uint32(key[0]) }

func keyEqual(a, b Key) bool {
	return a == b // want `secret byte material compared with ==`
}

func keyNotEqual(a, b Key) bool {
	return a != b // want `secret byte material compared with !=`
}

func keyBytesEqual(sessionKey, other []byte) bool {
	return bytes.Equal(sessionKey, other) // want `bytes\.Equal`
}

func checksumCall(k Key, msg []byte, wire uint32) bool {
	return QuadChecksum(k, msg) == wire // want `keyed checksum compared with ==`
}

func checksumField(m struct{ Checksum uint32 }, sum uint32) bool {
	return m.Checksum != sum // want `keyed checksum compared with !=`
}

// --- cases that must stay silent ---

// goodCompare: the blessed constant-time form. The == 1 comparison on
// subtle's int result must not itself be flagged.
func goodCompare(a, b Key) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// lenOfKey: len() yields a public int even when its operand is secret.
func lenOfKey(key []byte) bool { return len(key) == 8 }

// monkey: word-wise matching — "monkey" must not match "key".
func monkey(monkeyBytes, donkeyBytes []byte) bool {
	return bytes.Equal(monkeyBytes, donkeyBytes)
}

// kvno: public metadata with an integer type and no checksum words.
func kvno(reqKVNO, dbKVNO uint8) bool { return reqKVNO != dbKVNO }

// names: principal strings are identities, not byte material.
func names(client, server string) bool { return client == server }

// ignored: a justified suppression silences the finding.
func ignored(a, b Key) bool {
	return a == b //kerb:ignore consttime -- fixture: public test vectors, not live keys
}

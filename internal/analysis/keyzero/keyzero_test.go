package keyzero_test

import (
	"path/filepath"
	"testing"

	"kerberos/internal/analysis/analysistest"
	"kerberos/internal/analysis/keyzero"
)

func TestKeyzero(t *testing.T) {
	analysistest.Run(t, keyzero.Analyzer, filepath.Join("testdata", "src", "a"))
}
